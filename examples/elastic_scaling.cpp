// Elastic scaling: the paper's headline scenario. An application provisions
// its *optimal* thread count (32) once; the cloud provider then resizes its
// container at runtime. With VB+BWD, oversubscribed threads cost little when
// cores are scarce and immediately exploit cores when they are added —
// without any application change.
//
//   $ ./examples/elastic_scaling
#include <cstdio>

#include "kern/kernel.h"
#include "metrics/experiment.h"
#include "workloads/suite.h"

using namespace eo;

namespace {

double run(int threads, bool optimized, const std::vector<std::pair<SimTime, int>>& plan) {
  const auto& spec = workloads::find_benchmark("ocean");
  metrics::RunConfig rc;
  rc.cpus = 32;
  rc.sockets = 2;
  rc.features = optimized ? core::Features::optimized()
                          : core::Features::vanilla();
  rc.ref_footprint = spec.ref_footprint();
  kern::Kernel kernel(metrics::make_kernel_config(rc));
  kernel.set_online_cores(8);  // startup allocation
  workloads::spawn_benchmark(kernel, spec, threads, /*seed=*/11, 0.3);
  for (const auto& [when, cores] : plan) {
    kernel.run_until(when);
    if (kernel.live_tasks() == 0) break;
    kernel.set_online_cores(cores);
  }
  kernel.run_to_exit(60_s);
  return to_ms(kernel.last_exit_time());
}

}  // namespace

int main() {
  std::printf("elastic_scaling: ocean model, container resized at runtime\n");
  // The provider halves the allocation at 50 ms, then quadruples it at 150 ms.
  const std::vector<std::pair<SimTime, int>> plan = {{50_ms, 4}, {150_ms, 16}};

  const double t8 = run(8, false, plan);
  std::printf("   8 threads, vanilla   : %7.1f ms  (cannot use the added cores)\n", t8);
  const double t32v = run(32, false, plan);
  std::printf("  32 threads, vanilla   : %7.1f ms  (elastic but pays oversubscription)\n", t32v);
  const double t32o = run(32, true, plan);
  std::printf("  32 threads, optimized : %7.1f ms  (elastic AND efficient)\n", t32o);
  std::printf("\nprovisioning 32 threads + VB/BWD vs 8 threads: %.2fx faster\n",
              t8 / t32o);
  return 0;
}
