// Quickstart: build a simulated 4-core machine, run a few threads that
// compute and synchronize on a barrier, and compare the vanilla kernel with
// the paper's optimized kernel (virtual blocking + busy-waiting detection).
//
//   $ ./examples/quickstart
#include <cstdio>
#include <memory>

#include "kern/kernel.h"
#include "runtime/barrier.h"
#include "runtime/sim_thread.h"

using namespace eo;
using runtime::Env;
using runtime::SimThread;

namespace {

// A simulated thread is a C++20 coroutine: co_await advances simulated time.
SimThread worker(Env env, std::shared_ptr<runtime::SimBarrier> barrier,
                 int rounds) {
  for (int r = 0; r < rounds; ++r) {
    co_await env.compute(200_us);     // do some work
    co_await barrier->wait(env);      // synchronize (futex-based barrier)
  }
  co_return;
}

SimDuration run(bool optimized) {
  kern::KernelConfig cfg;
  cfg.topo = hw::Topology::make_cores(4, 1);
  cfg.features = optimized ? core::Features::optimized()
                           : core::Features::vanilla();
  kern::Kernel kernel(cfg);

  // 16 threads on 4 cores: an oversubscription ratio of 4.
  const int threads = 16;
  auto barrier = std::make_shared<runtime::SimBarrier>(kernel, threads);
  for (int i = 0; i < threads; ++i) {
    runtime::spawn(kernel, "worker-" + std::to_string(i),
                   [barrier](Env env) { return worker(env, barrier, 100); });
  }
  kernel.run_to_exit(/*deadline=*/10_s);
  std::printf("  %-9s: %6.2f ms, %llu context switches, %llu migrations, "
              "%llu VB parks\n",
              optimized ? "optimized" : "vanilla",
              to_ms(kernel.last_exit_time()),
              static_cast<unsigned long long>(kernel.stats().context_switches),
              static_cast<unsigned long long>(
                  kernel.stats().total_migrations()),
              static_cast<unsigned long long>(kernel.stats().vb_parks));
  return kernel.last_exit_time();
}

}  // namespace

int main() {
  std::printf("quickstart: 16 barrier-synchronized threads on 4 cores\n");
  const auto vanilla = run(false);
  const auto optimized = run(true);
  std::printf("speedup from VB+BWD: %.2fx\n",
              static_cast<double>(vanilla) / static_cast<double>(optimized));
  return 0;
}
