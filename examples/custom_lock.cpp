// Custom lock: using the public lock library and writing your own
// synchronization against the simulated-atomics API, then watching BWD
// neutralize the spin waste under oversubscription.
//
//   $ ./examples/custom_lock
#include <cstdio>
#include <memory>

#include "kern/kernel.h"
#include "locks/spinlocks.h"
#include "runtime/sim_thread.h"
#include "runtime/spin.h"

using namespace eo;
using runtime::Env;
using runtime::SimCall;
using runtime::SimThread;

namespace {

// A hand-rolled test-and-test-and-set lock written directly against the
// simulated atomic operations — the "user-customized spinning" the paper's
// Figure 6 shows (a plain busy loop, no PAUSE, invisible to PLE).
class MyLock {
 public:
  explicit MyLock(kern::Kernel& k)
      : word_(k.alloc_word(0)), site_(runtime::next_spin_site()) {}

  SimCall<void> lock(Env env) {
    for (;;) {
      const std::uint64_t won = co_await env.cas(word_, 0, 1);
      if (won) co_return;
      co_await env.spin_until_eq(word_, 0, site_);  // plain busy loop
    }
  }
  SimCall<void> unlock(Env env) {
    co_await env.store(word_, 0);
    co_return;
  }

 private:
  kern::SimWord* word_;
  hw::BranchSite site_;
};

SimDuration run(bool bwd) {
  kern::KernelConfig cfg;
  cfg.topo = hw::Topology::make_cores(2, 1);
  cfg.features.bwd = bwd;
  kern::Kernel kernel(cfg);
  auto lock = std::make_shared<MyLock>(kernel);
  for (int i = 0; i < 8; ++i) {
    runtime::spawn(kernel, "t" + std::to_string(i),
                   [lock](Env env) -> SimThread {
                     for (int r = 0; r < 100; ++r) {
                       co_await lock->lock(env);
                       co_await env.compute(5_us);
                       co_await lock->unlock(env);
                       co_await env.compute(20_us);
                     }
                     co_return;
                   });
  }
  kernel.run_to_exit(60_s);
  std::printf("  BWD %-3s: %7.2f ms  (spin burned: %7.2f ms, detections: %llu)\n",
              bwd ? "on" : "off", to_ms(kernel.last_exit_time()),
              to_ms(kernel.total_spin_busy()),
              static_cast<unsigned long long>(kernel.stats().bwd_descheduled));
  return kernel.last_exit_time();
}

}  // namespace

int main() {
  std::printf("custom_lock: 8 threads, hand-rolled TTAS lock, 2 cores\n");
  const auto vanilla = run(false);
  const auto bwd = run(true);
  std::printf("BWD speedup on the custom spin: %.2fx\n",
              static_cast<double>(vanilla) / static_cast<double>(bwd));
  return 0;
}
