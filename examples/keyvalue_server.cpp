// Key-value server: the memcached scenario of the paper's Section 4.2.
// Worker threads block in epoll_wait; a mutilate-style client injects
// open-loop Poisson load. Oversubscribing workers (16 on 4 cores) hurts
// vanilla tail latency badly; VB-for-epoll recovers it.
//
//   $ ./examples/keyvalue_server
#include <cstdio>

#include "kern/kernel.h"
#include "metrics/experiment.h"
#include "workloads/memcached.h"
#include "workloads/mutilate.h"

using namespace eo;

namespace {

void run(const char* label, int workers, bool optimized) {
  metrics::RunConfig rc;
  rc.cpus = 4;
  rc.sockets = 1;
  rc.features = optimized ? core::Features::optimized()
                          : core::Features::vanilla();
  kern::Kernel kernel(metrics::make_kernel_config(rc));

  workloads::MemcachedConfig mc;
  mc.n_workers = workers;
  workloads::MemcachedSim server(kernel, mc);
  server.start();

  workloads::MutilateConfig cc;
  cc.rate_ops_per_sec = 480000;  // near the 4-core saturation knee
  cc.until = 900_ms;
  workloads::MutilateClient client(server, cc);
  client.start();

  kernel.run_until(300_ms);   // warmup
  server.reset_measurement();
  kernel.run_until(900_ms);
  server.stop();
  kernel.run_to_exit(kernel.now() + 1_s);

  std::printf("  %-24s tput=%7.0f ops/s  avg=%6.1fus  p95=%7.1fus  p99=%7.1fus\n",
              label, server.latencies().throughput(600_ms),
              server.latencies().mean_us(), server.latencies().p95_us(),
              server.latencies().p99_us());
}

}  // namespace

int main() {
  std::printf("keyvalue_server: memcached model on 4 cores, 480k ops/s offered\n");
  run("4 workers, vanilla", 4, false);
  run("16 workers, vanilla", 16, false);
  run("16 workers, optimized", 16, true);
  std::printf("\n16 oversubscribed workers keep the elasticity to expand to more\n"
              "cores; VB keeps their tail latency near the 4-worker baseline.\n");
  return 0;
}
