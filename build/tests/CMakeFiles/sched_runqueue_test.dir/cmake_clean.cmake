file(REMOVE_RECURSE
  "CMakeFiles/sched_runqueue_test.dir/sched_runqueue_test.cc.o"
  "CMakeFiles/sched_runqueue_test.dir/sched_runqueue_test.cc.o.d"
  "sched_runqueue_test"
  "sched_runqueue_test.pdb"
  "sched_runqueue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_runqueue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
