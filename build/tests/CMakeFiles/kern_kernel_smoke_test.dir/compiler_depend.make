# Empty compiler generated dependencies file for kern_kernel_smoke_test.
# This may be replaced when dependencies are built.
