file(REMOVE_RECURSE
  "CMakeFiles/workloads_memcached_test.dir/workloads_memcached_test.cc.o"
  "CMakeFiles/workloads_memcached_test.dir/workloads_memcached_test.cc.o.d"
  "workloads_memcached_test"
  "workloads_memcached_test.pdb"
  "workloads_memcached_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_memcached_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
