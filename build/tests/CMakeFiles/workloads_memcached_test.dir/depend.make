# Empty dependencies file for workloads_memcached_test.
# This may be replaced when dependencies are built.
