# Empty dependencies file for futex_table_test.
# This may be replaced when dependencies are built.
