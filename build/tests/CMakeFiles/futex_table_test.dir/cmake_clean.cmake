file(REMOVE_RECURSE
  "CMakeFiles/futex_table_test.dir/futex_table_test.cc.o"
  "CMakeFiles/futex_table_test.dir/futex_table_test.cc.o.d"
  "futex_table_test"
  "futex_table_test.pdb"
  "futex_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/futex_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
