# Empty dependencies file for integration_bwd_test.
# This may be replaced when dependencies are built.
