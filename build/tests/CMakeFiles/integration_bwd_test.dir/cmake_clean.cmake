file(REMOVE_RECURSE
  "CMakeFiles/integration_bwd_test.dir/integration_bwd_test.cc.o"
  "CMakeFiles/integration_bwd_test.dir/integration_bwd_test.cc.o.d"
  "integration_bwd_test"
  "integration_bwd_test.pdb"
  "integration_bwd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_bwd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
