# Empty compiler generated dependencies file for core_bwd_test.
# This may be replaced when dependencies are built.
