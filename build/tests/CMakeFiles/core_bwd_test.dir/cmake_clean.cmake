file(REMOVE_RECURSE
  "CMakeFiles/core_bwd_test.dir/core_bwd_test.cc.o"
  "CMakeFiles/core_bwd_test.dir/core_bwd_test.cc.o.d"
  "core_bwd_test"
  "core_bwd_test.pdb"
  "core_bwd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_bwd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
