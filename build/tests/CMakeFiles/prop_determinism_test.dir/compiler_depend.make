# Empty compiler generated dependencies file for prop_determinism_test.
# This may be replaced when dependencies are built.
