file(REMOVE_RECURSE
  "CMakeFiles/prop_determinism_test.dir/prop_determinism_test.cc.o"
  "CMakeFiles/prop_determinism_test.dir/prop_determinism_test.cc.o.d"
  "prop_determinism_test"
  "prop_determinism_test.pdb"
  "prop_determinism_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop_determinism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
