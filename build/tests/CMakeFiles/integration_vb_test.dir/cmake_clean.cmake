file(REMOVE_RECURSE
  "CMakeFiles/integration_vb_test.dir/integration_vb_test.cc.o"
  "CMakeFiles/integration_vb_test.dir/integration_vb_test.cc.o.d"
  "integration_vb_test"
  "integration_vb_test.pdb"
  "integration_vb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_vb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
