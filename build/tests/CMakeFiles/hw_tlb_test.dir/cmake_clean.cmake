file(REMOVE_RECURSE
  "CMakeFiles/hw_tlb_test.dir/hw_tlb_test.cc.o"
  "CMakeFiles/hw_tlb_test.dir/hw_tlb_test.cc.o.d"
  "hw_tlb_test"
  "hw_tlb_test.pdb"
  "hw_tlb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_tlb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
