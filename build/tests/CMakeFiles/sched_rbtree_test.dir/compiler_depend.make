# Empty compiler generated dependencies file for sched_rbtree_test.
# This may be replaced when dependencies are built.
