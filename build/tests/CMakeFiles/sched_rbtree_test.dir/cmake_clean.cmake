file(REMOVE_RECURSE
  "CMakeFiles/sched_rbtree_test.dir/sched_rbtree_test.cc.o"
  "CMakeFiles/sched_rbtree_test.dir/sched_rbtree_test.cc.o.d"
  "sched_rbtree_test"
  "sched_rbtree_test.pdb"
  "sched_rbtree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_rbtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
