file(REMOVE_RECURSE
  "CMakeFiles/locks_blocking_test.dir/locks_blocking_test.cc.o"
  "CMakeFiles/locks_blocking_test.dir/locks_blocking_test.cc.o.d"
  "locks_blocking_test"
  "locks_blocking_test.pdb"
  "locks_blocking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locks_blocking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
