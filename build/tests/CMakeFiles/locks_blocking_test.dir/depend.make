# Empty dependencies file for locks_blocking_test.
# This may be replaced when dependencies are built.
