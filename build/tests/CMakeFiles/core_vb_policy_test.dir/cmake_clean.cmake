file(REMOVE_RECURSE
  "CMakeFiles/core_vb_policy_test.dir/core_vb_policy_test.cc.o"
  "CMakeFiles/core_vb_policy_test.dir/core_vb_policy_test.cc.o.d"
  "core_vb_policy_test"
  "core_vb_policy_test.pdb"
  "core_vb_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_vb_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
