# Empty compiler generated dependencies file for core_vb_policy_test.
# This may be replaced when dependencies are built.
