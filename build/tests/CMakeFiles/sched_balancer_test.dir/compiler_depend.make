# Empty compiler generated dependencies file for sched_balancer_test.
# This may be replaced when dependencies are built.
