file(REMOVE_RECURSE
  "CMakeFiles/sched_balancer_test.dir/sched_balancer_test.cc.o"
  "CMakeFiles/sched_balancer_test.dir/sched_balancer_test.cc.o.d"
  "sched_balancer_test"
  "sched_balancer_test.pdb"
  "sched_balancer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_balancer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
