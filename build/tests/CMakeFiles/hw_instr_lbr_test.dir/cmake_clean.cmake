file(REMOVE_RECURSE
  "CMakeFiles/hw_instr_lbr_test.dir/hw_instr_lbr_test.cc.o"
  "CMakeFiles/hw_instr_lbr_test.dir/hw_instr_lbr_test.cc.o.d"
  "hw_instr_lbr_test"
  "hw_instr_lbr_test.pdb"
  "hw_instr_lbr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_instr_lbr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
