# Empty dependencies file for hw_instr_lbr_test.
# This may be replaced when dependencies are built.
