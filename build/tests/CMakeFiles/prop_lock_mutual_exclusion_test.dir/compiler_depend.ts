# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for prop_lock_mutual_exclusion_test.
