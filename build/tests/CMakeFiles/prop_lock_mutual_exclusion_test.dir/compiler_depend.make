# Empty compiler generated dependencies file for prop_lock_mutual_exclusion_test.
# This may be replaced when dependencies are built.
