file(REMOVE_RECURSE
  "CMakeFiles/prop_lock_mutual_exclusion_test.dir/prop_lock_mutual_exclusion_test.cc.o"
  "CMakeFiles/prop_lock_mutual_exclusion_test.dir/prop_lock_mutual_exclusion_test.cc.o.d"
  "prop_lock_mutual_exclusion_test"
  "prop_lock_mutual_exclusion_test.pdb"
  "prop_lock_mutual_exclusion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop_lock_mutual_exclusion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
