file(REMOVE_RECURSE
  "CMakeFiles/integration_elasticity_test.dir/integration_elasticity_test.cc.o"
  "CMakeFiles/integration_elasticity_test.dir/integration_elasticity_test.cc.o.d"
  "integration_elasticity_test"
  "integration_elasticity_test.pdb"
  "integration_elasticity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_elasticity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
