# Empty compiler generated dependencies file for integration_elasticity_test.
# This may be replaced when dependencies are built.
