file(REMOVE_RECURSE
  "CMakeFiles/locks_spinlock_test.dir/locks_spinlock_test.cc.o"
  "CMakeFiles/locks_spinlock_test.dir/locks_spinlock_test.cc.o.d"
  "locks_spinlock_test"
  "locks_spinlock_test.pdb"
  "locks_spinlock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locks_spinlock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
