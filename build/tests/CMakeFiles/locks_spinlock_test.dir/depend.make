# Empty dependencies file for locks_spinlock_test.
# This may be replaced when dependencies are built.
