file(REMOVE_RECURSE
  "CMakeFiles/kern_kernel_edge_test.dir/kern_kernel_edge_test.cc.o"
  "CMakeFiles/kern_kernel_edge_test.dir/kern_kernel_edge_test.cc.o.d"
  "kern_kernel_edge_test"
  "kern_kernel_edge_test.pdb"
  "kern_kernel_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kern_kernel_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
