# Empty dependencies file for kern_kernel_edge_test.
# This may be replaced when dependencies are built.
