file(REMOVE_RECURSE
  "CMakeFiles/hw_topology_test.dir/hw_topology_test.cc.o"
  "CMakeFiles/hw_topology_test.dir/hw_topology_test.cc.o.d"
  "hw_topology_test"
  "hw_topology_test.pdb"
  "hw_topology_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_topology_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
