# Empty compiler generated dependencies file for runtime_primitives_test.
# This may be replaced when dependencies are built.
