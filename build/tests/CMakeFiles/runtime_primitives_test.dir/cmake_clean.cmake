file(REMOVE_RECURSE
  "CMakeFiles/runtime_primitives_test.dir/runtime_primitives_test.cc.o"
  "CMakeFiles/runtime_primitives_test.dir/runtime_primitives_test.cc.o.d"
  "runtime_primitives_test"
  "runtime_primitives_test.pdb"
  "runtime_primitives_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_primitives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
