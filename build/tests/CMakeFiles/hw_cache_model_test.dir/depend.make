# Empty dependencies file for hw_cache_model_test.
# This may be replaced when dependencies are built.
