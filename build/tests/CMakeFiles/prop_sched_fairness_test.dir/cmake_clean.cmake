file(REMOVE_RECURSE
  "CMakeFiles/prop_sched_fairness_test.dir/prop_sched_fairness_test.cc.o"
  "CMakeFiles/prop_sched_fairness_test.dir/prop_sched_fairness_test.cc.o.d"
  "prop_sched_fairness_test"
  "prop_sched_fairness_test.pdb"
  "prop_sched_fairness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop_sched_fairness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
