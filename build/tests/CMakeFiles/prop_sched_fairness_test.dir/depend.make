# Empty dependencies file for prop_sched_fairness_test.
# This may be replaced when dependencies are built.
