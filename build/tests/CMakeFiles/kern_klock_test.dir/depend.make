# Empty dependencies file for kern_klock_test.
# This may be replaced when dependencies are built.
