file(REMOVE_RECURSE
  "CMakeFiles/kern_klock_test.dir/kern_klock_test.cc.o"
  "CMakeFiles/kern_klock_test.dir/kern_klock_test.cc.o.d"
  "kern_klock_test"
  "kern_klock_test.pdb"
  "kern_klock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kern_klock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
