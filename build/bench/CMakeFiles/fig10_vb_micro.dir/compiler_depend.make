# Empty compiler generated dependencies file for fig10_vb_micro.
# This may be replaced when dependencies are built.
