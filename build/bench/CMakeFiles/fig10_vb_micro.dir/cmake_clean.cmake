file(REMOVE_RECURSE
  "CMakeFiles/fig10_vb_micro.dir/fig10_vb_micro.cc.o"
  "CMakeFiles/fig10_vb_micro.dir/fig10_vb_micro.cc.o.d"
  "fig10_vb_micro"
  "fig10_vb_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_vb_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
