file(REMOVE_RECURSE
  "CMakeFiles/ablation_vb.dir/ablation_vb.cc.o"
  "CMakeFiles/ablation_vb.dir/ablation_vb.cc.o.d"
  "ablation_vb"
  "ablation_vb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
