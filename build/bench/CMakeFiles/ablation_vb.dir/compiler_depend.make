# Empty compiler generated dependencies file for ablation_vb.
# This may be replaced when dependencies are built.
