# Empty compiler generated dependencies file for fig02_direct_cost.
# This may be replaced when dependencies are built.
