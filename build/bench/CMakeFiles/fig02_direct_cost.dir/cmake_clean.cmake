file(REMOVE_RECURSE
  "CMakeFiles/fig02_direct_cost.dir/fig02_direct_cost.cc.o"
  "CMakeFiles/fig02_direct_cost.dir/fig02_direct_cost.cc.o.d"
  "fig02_direct_cost"
  "fig02_direct_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_direct_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
