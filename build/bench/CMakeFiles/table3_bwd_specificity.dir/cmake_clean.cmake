file(REMOVE_RECURSE
  "CMakeFiles/table3_bwd_specificity.dir/table3_bwd_specificity.cc.o"
  "CMakeFiles/table3_bwd_specificity.dir/table3_bwd_specificity.cc.o.d"
  "table3_bwd_specificity"
  "table3_bwd_specificity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_bwd_specificity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
