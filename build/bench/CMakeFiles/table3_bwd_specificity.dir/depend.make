# Empty dependencies file for table3_bwd_specificity.
# This may be replaced when dependencies are built.
