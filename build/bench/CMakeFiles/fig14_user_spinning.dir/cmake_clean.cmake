file(REMOVE_RECURSE
  "CMakeFiles/fig14_user_spinning.dir/fig14_user_spinning.cc.o"
  "CMakeFiles/fig14_user_spinning.dir/fig14_user_spinning.cc.o.d"
  "fig14_user_spinning"
  "fig14_user_spinning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_user_spinning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
