# Empty dependencies file for fig14_user_spinning.
# This may be replaced when dependencies are built.
