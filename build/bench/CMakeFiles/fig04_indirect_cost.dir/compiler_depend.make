# Empty compiler generated dependencies file for fig04_indirect_cost.
# This may be replaced when dependencies are built.
