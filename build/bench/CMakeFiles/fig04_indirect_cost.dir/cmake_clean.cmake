file(REMOVE_RECURSE
  "CMakeFiles/fig04_indirect_cost.dir/fig04_indirect_cost.cc.o"
  "CMakeFiles/fig04_indirect_cost.dir/fig04_indirect_cost.cc.o.d"
  "fig04_indirect_cost"
  "fig04_indirect_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_indirect_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
