# Empty dependencies file for fig01_oversubscription.
# This may be replaced when dependencies are built.
