file(REMOVE_RECURSE
  "CMakeFiles/fig01_oversubscription.dir/fig01_oversubscription.cc.o"
  "CMakeFiles/fig01_oversubscription.dir/fig01_oversubscription.cc.o.d"
  "fig01_oversubscription"
  "fig01_oversubscription.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_oversubscription.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
