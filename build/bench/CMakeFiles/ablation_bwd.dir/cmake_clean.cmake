file(REMOVE_RECURSE
  "CMakeFiles/ablation_bwd.dir/ablation_bwd.cc.o"
  "CMakeFiles/ablation_bwd.dir/ablation_bwd.cc.o.d"
  "ablation_bwd"
  "ablation_bwd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bwd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
