# Empty compiler generated dependencies file for ablation_bwd.
# This may be replaced when dependencies are built.
