file(REMOVE_RECURSE
  "CMakeFiles/fig13_bwd_spinlocks.dir/fig13_bwd_spinlocks.cc.o"
  "CMakeFiles/fig13_bwd_spinlocks.dir/fig13_bwd_spinlocks.cc.o.d"
  "fig13_bwd_spinlocks"
  "fig13_bwd_spinlocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_bwd_spinlocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
