# Empty compiler generated dependencies file for fig13_bwd_spinlocks.
# This may be replaced when dependencies are built.
