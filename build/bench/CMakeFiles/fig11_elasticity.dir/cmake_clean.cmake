file(REMOVE_RECURSE
  "CMakeFiles/fig11_elasticity.dir/fig11_elasticity.cc.o"
  "CMakeFiles/fig11_elasticity.dir/fig11_elasticity.cc.o.d"
  "fig11_elasticity"
  "fig11_elasticity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_elasticity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
