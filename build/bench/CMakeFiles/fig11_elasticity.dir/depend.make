# Empty dependencies file for fig11_elasticity.
# This may be replaced when dependencies are built.
