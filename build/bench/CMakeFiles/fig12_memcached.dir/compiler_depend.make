# Empty compiler generated dependencies file for fig12_memcached.
# This may be replaced when dependencies are built.
