# Empty compiler generated dependencies file for table1_runtime_stats.
# This may be replaced when dependencies are built.
