# Empty compiler generated dependencies file for fig09_vb_blocking.
# This may be replaced when dependencies are built.
