file(REMOVE_RECURSE
  "CMakeFiles/fig09_vb_blocking.dir/fig09_vb_blocking.cc.o"
  "CMakeFiles/fig09_vb_blocking.dir/fig09_vb_blocking.cc.o.d"
  "fig09_vb_blocking"
  "fig09_vb_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_vb_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
