file(REMOVE_RECURSE
  "CMakeFiles/fig15_shfllock.dir/fig15_shfllock.cc.o"
  "CMakeFiles/fig15_shfllock.dir/fig15_shfllock.cc.o.d"
  "fig15_shfllock"
  "fig15_shfllock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_shfllock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
