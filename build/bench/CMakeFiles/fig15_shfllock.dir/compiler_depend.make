# Empty compiler generated dependencies file for fig15_shfllock.
# This may be replaced when dependencies are built.
