file(REMOVE_RECURSE
  "CMakeFiles/fig03_sync_interval.dir/fig03_sync_interval.cc.o"
  "CMakeFiles/fig03_sync_interval.dir/fig03_sync_interval.cc.o.d"
  "fig03_sync_interval"
  "fig03_sync_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_sync_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
