# Empty dependencies file for fig03_sync_interval.
# This may be replaced when dependencies are built.
