file(REMOVE_RECURSE
  "libeo_core.a"
)
