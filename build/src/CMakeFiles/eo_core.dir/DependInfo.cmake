
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/histogram.cc" "src/CMakeFiles/eo_core.dir/common/histogram.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/common/histogram.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/eo_core.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/eo_core.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/common/rng.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/eo_core.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/core/bwd.cc" "src/CMakeFiles/eo_core.dir/core/bwd.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/core/bwd.cc.o.d"
  "/root/repo/src/core/config.cc" "src/CMakeFiles/eo_core.dir/core/config.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/core/config.cc.o.d"
  "/root/repo/src/core/vb_policy.cc" "src/CMakeFiles/eo_core.dir/core/vb_policy.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/core/vb_policy.cc.o.d"
  "/root/repo/src/epollsim/epoll.cc" "src/CMakeFiles/eo_core.dir/epollsim/epoll.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/epollsim/epoll.cc.o.d"
  "/root/repo/src/futex/futex.cc" "src/CMakeFiles/eo_core.dir/futex/futex.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/futex/futex.cc.o.d"
  "/root/repo/src/hw/cache_model.cc" "src/CMakeFiles/eo_core.dir/hw/cache_model.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/hw/cache_model.cc.o.d"
  "/root/repo/src/hw/instr_stream.cc" "src/CMakeFiles/eo_core.dir/hw/instr_stream.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/hw/instr_stream.cc.o.d"
  "/root/repo/src/hw/lbr.cc" "src/CMakeFiles/eo_core.dir/hw/lbr.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/hw/lbr.cc.o.d"
  "/root/repo/src/hw/ple.cc" "src/CMakeFiles/eo_core.dir/hw/ple.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/hw/ple.cc.o.d"
  "/root/repo/src/hw/pmc.cc" "src/CMakeFiles/eo_core.dir/hw/pmc.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/hw/pmc.cc.o.d"
  "/root/repo/src/hw/tlb_model.cc" "src/CMakeFiles/eo_core.dir/hw/tlb_model.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/hw/tlb_model.cc.o.d"
  "/root/repo/src/hw/topology.cc" "src/CMakeFiles/eo_core.dir/hw/topology.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/hw/topology.cc.o.d"
  "/root/repo/src/kern/kernel.cc" "src/CMakeFiles/eo_core.dir/kern/kernel.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/kern/kernel.cc.o.d"
  "/root/repo/src/kern/klock.cc" "src/CMakeFiles/eo_core.dir/kern/klock.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/kern/klock.cc.o.d"
  "/root/repo/src/kern/task.cc" "src/CMakeFiles/eo_core.dir/kern/task.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/kern/task.cc.o.d"
  "/root/repo/src/kern/wake_q.cc" "src/CMakeFiles/eo_core.dir/kern/wake_q.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/kern/wake_q.cc.o.d"
  "/root/repo/src/locks/blocking_locks.cc" "src/CMakeFiles/eo_core.dir/locks/blocking_locks.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/locks/blocking_locks.cc.o.d"
  "/root/repo/src/locks/spinlocks.cc" "src/CMakeFiles/eo_core.dir/locks/spinlocks.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/locks/spinlocks.cc.o.d"
  "/root/repo/src/metrics/experiment.cc" "src/CMakeFiles/eo_core.dir/metrics/experiment.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/metrics/experiment.cc.o.d"
  "/root/repo/src/metrics/latency_recorder.cc" "src/CMakeFiles/eo_core.dir/metrics/latency_recorder.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/metrics/latency_recorder.cc.o.d"
  "/root/repo/src/metrics/table_printer.cc" "src/CMakeFiles/eo_core.dir/metrics/table_printer.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/metrics/table_printer.cc.o.d"
  "/root/repo/src/runtime/barrier.cc" "src/CMakeFiles/eo_core.dir/runtime/barrier.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/runtime/barrier.cc.o.d"
  "/root/repo/src/runtime/condvar.cc" "src/CMakeFiles/eo_core.dir/runtime/condvar.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/runtime/condvar.cc.o.d"
  "/root/repo/src/runtime/env.cc" "src/CMakeFiles/eo_core.dir/runtime/env.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/runtime/env.cc.o.d"
  "/root/repo/src/runtime/mutex.cc" "src/CMakeFiles/eo_core.dir/runtime/mutex.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/runtime/mutex.cc.o.d"
  "/root/repo/src/runtime/semaphore.cc" "src/CMakeFiles/eo_core.dir/runtime/semaphore.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/runtime/semaphore.cc.o.d"
  "/root/repo/src/runtime/sim_thread.cc" "src/CMakeFiles/eo_core.dir/runtime/sim_thread.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/runtime/sim_thread.cc.o.d"
  "/root/repo/src/runtime/spin.cc" "src/CMakeFiles/eo_core.dir/runtime/spin.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/runtime/spin.cc.o.d"
  "/root/repo/src/sched/cfs.cc" "src/CMakeFiles/eo_core.dir/sched/cfs.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/sched/cfs.cc.o.d"
  "/root/repo/src/sched/hrtimer.cc" "src/CMakeFiles/eo_core.dir/sched/hrtimer.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/sched/hrtimer.cc.o.d"
  "/root/repo/src/sched/load_balancer.cc" "src/CMakeFiles/eo_core.dir/sched/load_balancer.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/sched/load_balancer.cc.o.d"
  "/root/repo/src/sched/runqueue.cc" "src/CMakeFiles/eo_core.dir/sched/runqueue.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/sched/runqueue.cc.o.d"
  "/root/repo/src/sched/sched_stats.cc" "src/CMakeFiles/eo_core.dir/sched/sched_stats.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/sched/sched_stats.cc.o.d"
  "/root/repo/src/sim/engine.cc" "src/CMakeFiles/eo_core.dir/sim/engine.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/sim/engine.cc.o.d"
  "/root/repo/src/workloads/memcached.cc" "src/CMakeFiles/eo_core.dir/workloads/memcached.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/workloads/memcached.cc.o.d"
  "/root/repo/src/workloads/microbench.cc" "src/CMakeFiles/eo_core.dir/workloads/microbench.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/workloads/microbench.cc.o.d"
  "/root/repo/src/workloads/mutilate.cc" "src/CMakeFiles/eo_core.dir/workloads/mutilate.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/workloads/mutilate.cc.o.d"
  "/root/repo/src/workloads/pipeline.cc" "src/CMakeFiles/eo_core.dir/workloads/pipeline.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/workloads/pipeline.cc.o.d"
  "/root/repo/src/workloads/suite.cc" "src/CMakeFiles/eo_core.dir/workloads/suite.cc.o" "gcc" "src/CMakeFiles/eo_core.dir/workloads/suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
