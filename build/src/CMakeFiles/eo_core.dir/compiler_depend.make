# Empty compiler generated dependencies file for eo_core.
# This may be replaced when dependencies are built.
