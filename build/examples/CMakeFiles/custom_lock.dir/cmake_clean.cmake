file(REMOVE_RECURSE
  "CMakeFiles/custom_lock.dir/custom_lock.cpp.o"
  "CMakeFiles/custom_lock.dir/custom_lock.cpp.o.d"
  "custom_lock"
  "custom_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
