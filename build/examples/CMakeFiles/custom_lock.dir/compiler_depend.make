# Empty compiler generated dependencies file for custom_lock.
# This may be replaced when dependencies are built.
