# Empty dependencies file for keyvalue_server.
# This may be replaced when dependencies are built.
