file(REMOVE_RECURSE
  "CMakeFiles/keyvalue_server.dir/keyvalue_server.cpp.o"
  "CMakeFiles/keyvalue_server.dir/keyvalue_server.cpp.o.d"
  "keyvalue_server"
  "keyvalue_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keyvalue_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
