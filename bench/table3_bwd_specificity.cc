// Table 3: BWD false-positive rate (specificity). Eight blocking NPB
// benchmark models with no user/kernel spinning run with BWD enabled; any
// detection is a false positive (the benchmarks' rare tight register loops
// are the only trigger). Also reports the FP-induced overhead (exec time
// with BWD vs without) — expected under ~1% — and the timer overhead.
#include <iostream>

#include "bench_util.h"
#include "workloads/suite.h"

using namespace eo;

int main(int argc, char** argv) {
  const bench::CliSpec spec{
      .id = "table3_bwd_specificity",
      .summary = "BWD specificity on blocking NPB benchmarks",
      .default_scale = 0.3};
  const bench::Cli cli = bench::Cli::parse(argc, argv, spec);

  const std::vector<std::string> names = {"is", "ep", "cg", "mg",
                                          "ft", "sp", "bt", "ua"};

  metrics::RunConfig base;
  base.cpus = 8;
  base.sockets = 2;
  base.deadline = 600_s;
  bench::apply_metrics(cli, &base);
  bench::apply_sched(cli, &base);

  exp::Sweep sweep("bwd_specificity");
  sweep.base(base)
      .axis("benchmark", names)
      .axis("bwd", {"on", "off"},
            [](metrics::RunConfig& rc, std::size_t i) {
              core::Features f;  // vanilla blocking, no VB — isolate BWD
              f.bwd = i == 0;
              rc.features = f;
            });

  exp::ExperimentRunner runner(sweep, cli.runner_options());
  if (cli.list) {
    runner.list(std::cout);
    return 0;
  }

  bench::print_header("Table 3", "BWD specificity on blocking NPB benchmarks");
  exp::Outcomes out = runner.run(
      [&](const exp::Cell& cell, const metrics::RunConfig& cfg) {
        const auto& bspec = workloads::find_benchmark(names[cell.at(0)]);
        metrics::RunConfig rc = cfg;
        rc.ref_footprint = bspec.ref_footprint();
        return metrics::run_experiment(rc, [&](kern::Kernel& k) {
          workloads::spawn_benchmark(k, bspec, 32, cli.seed, cli.scale);
        });
      });

  metrics::TablePrinter t({"App", "# of Tries", "# of FPs", "Specificity(%)",
                           "FP+timer overhead(%)"});
  for (std::size_t bi = 0; bi < names.size(); ++bi) {
    exp::CellOutcome& on = out.at({bi, 0});
    const exp::CellOutcome& off = out.at({bi, 1});
    if (!on.ran() || !off.ran()) continue;
    const auto negatives = on.run.bwd.windows;  // no true spinning here
    const double spec_pct =
        negatives ? 100.0 * static_cast<double>(negatives - on.run.bwd.fp) /
                        static_cast<double>(negatives)
                  : 0.0;
    const double overhead =
        off.ms() > 0 ? (on.ms() - off.ms()) / off.ms() * 100.0 : 0.0;
    on.set("specificity_pct", spec_pct);
    on.set("overhead_pct", overhead);
    t.add_row({names[bi], std::to_string(negatives),
               std::to_string(on.run.bwd.fp),
               metrics::TablePrinter::num(spec_pct),
               metrics::TablePrinter::num(overhead)});
  }
  t.print();

  exp::ResultDoc doc(spec.id, cli.scale, cli.seed);
  doc.add_sweep(sweep, out);
  bool ok = bench::write_results(cli, doc);
  if (cli.metrics) {
    ok = bench::check_sweep_metrics(out, cli) && ok;
  }
  return ok ? 0 : 1;
}
