// Table 3: BWD false-positive rate (specificity). Eight blocking NPB
// benchmark models with no user/kernel spinning run with BWD enabled; any
// detection is a false positive (the benchmarks' rare tight register loops
// are the only trigger). Also reports the FP-induced overhead (exec time
// with BWD vs without) — expected under ~1% — and the timer overhead.
#include "bench_util.h"
#include "common/thread_pool.h"
#include "workloads/suite.h"

using namespace eo;

int main(int argc, char** argv) {
  const double scale = bench::parse_scale(argc, argv, 0.3);
  bench::print_header("Table 3", "BWD specificity on blocking NPB benchmarks");

  const std::vector<std::string> names = {"is", "ep", "cg", "mg",
                                          "ft", "sp", "bt", "ua"};
  struct Out {
    std::uint64_t tries = 0, fps = 0;
    double t_bwd = 0, t_plain = 0;
  };
  std::vector<Out> out(names.size());
  ThreadPool::parallel_for(names.size() * 2, [&](std::size_t job) {
    const auto bi = job / 2;
    const bool with_bwd = job % 2 == 0;
    const auto& spec = workloads::find_benchmark(names[bi]);
    metrics::RunConfig rc;
    rc.cpus = 8;
    rc.sockets = 2;
    core::Features f;  // vanilla blocking, no VB — isolate BWD's effect
    f.bwd = with_bwd;
    rc.features = f;
    rc.ref_footprint = spec.ref_footprint();
    rc.deadline = 600_s;
    const auto r = metrics::run_experiment(rc, [&](kern::Kernel& k) {
      workloads::spawn_benchmark(k, spec, 32, 7, scale);
    });
    if (with_bwd) {
      out[bi].tries = r.bwd.windows;
      out[bi].fps = r.bwd.fp;
      out[bi].t_bwd = to_ms(r.exec_time);
    } else {
      out[bi].t_plain = to_ms(r.exec_time);
    }
  });

  metrics::TablePrinter t({"App", "# of Tries", "# of FPs", "Specificity(%)",
                           "FP+timer overhead(%)"});
  for (std::size_t bi = 0; bi < names.size(); ++bi) {
    const auto negatives = out[bi].tries;  // no true spinning in these apps
    const double spec_pct =
        negatives ? 100.0 * static_cast<double>(negatives - out[bi].fps) /
                        static_cast<double>(negatives)
                  : 0.0;
    const double overhead =
        out[bi].t_plain > 0
            ? (out[bi].t_bwd - out[bi].t_plain) / out[bi].t_plain * 100.0
            : 0.0;
    t.add_row({names[bi], std::to_string(out[bi].tries),
               std::to_string(out[bi].fps),
               metrics::TablePrinter::num(spec_pct),
               metrics::TablePrinter::num(overhead)});
  }
  t.print();
  return 0;
}
