// Shared helpers for the bench harnesses.
//
// Every bench binary regenerates one table or figure from the paper. The
// binaries take an optional positional argument: a duration scale factor
// (default chosen per bench) that multiplies the simulated round counts, so
// `./fig09_vb_blocking 1.0` runs the full-length experiment and the default
// keeps `for b in build/bench/*; do $b; done` quick.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/thread_pool.h"
#include "metrics/experiment.h"
#include "metrics/table_printer.h"

namespace eo::bench {

inline double parse_scale(int argc, char** argv, double def) {
  if (argc > 1) {
    const double s = std::atof(argv[1]);
    if (s > 0) return s;
  }
  return def;
}

inline void print_header(const char* id, const char* what) {
  std::printf("=== %s: %s ===\n", id, what);
}

inline std::string ratio(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

inline std::string ms(SimDuration d) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", to_ms(d));
  return buf;
}

}  // namespace eo::bench
