// Shared helpers for the bench harnesses.
//
// Every bench binary regenerates one table or figure from the paper. The
// binaries take an optional positional argument: a duration scale factor
// (default chosen per bench) that multiplies the simulated round counts, so
// `./fig09_vb_blocking 1.0` runs the full-length experiment and the default
// keeps `for b in build/bench/*; do $b; done` quick.
//
// Benches wired for tracing additionally accept:
//   --trace=<path>         capture an event trace of one representative run
//   --trace-format=json|csv  export format (default json, Perfetto-loadable)
//   --trace-only           skip the figure grid, run only the traced config
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "metrics/experiment.h"
#include "metrics/table_printer.h"
#include "trace/export.h"
#include "trace/timeline.h"
#include "trace/trace.h"

namespace eo::bench {

inline double parse_scale(int argc, char** argv, double def) {
  // Flags (--trace=...) may precede or follow the positional scale.
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-') continue;
    const double s = std::atof(argv[i]);
    if (s > 0) return s;
  }
  return def;
}

/// Parsed command line for the trace-wired benches.
struct BenchArgs {
  double scale = 1.0;
  std::string trace_path;  ///< empty = tracing off
  std::string trace_format = "json";
  bool trace_only = false;

  bool tracing() const { return !trace_path.empty(); }
};

inline BenchArgs parse_args(int argc, char** argv, double def_scale) {
  BenchArgs a;
  a.scale = parse_scale(argc, argv, def_scale);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      a.trace_path = arg.substr(8);
      if (a.trace_path.empty()) {
        std::fprintf(stderr,
                     "warning: empty --trace= path, tracing stays off\n");
      }
    } else if (arg.rfind("--trace-format=", 0) == 0) {
      a.trace_format = arg.substr(15);
      if (a.trace_format != "json" && a.trace_format != "csv") {
        std::fprintf(stderr,
                     "error: --trace-format must be 'json' or 'csv' (got "
                     "'%s')\n",
                     a.trace_format.c_str());
        std::exit(2);
      }
    } else if (arg == "--trace-only") {
      a.trace_only = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "warning: unknown flag '%s' ignored\n",
                   arg.c_str());
    }
  }
  return a;
}

/// Exports the run's trace per `args` and cross-checks it: every kind in
/// `required` must be present, and the TimelineAnalyzer's wakeup-latency
/// quantiles must agree with the kernel's own histogram within 1%. Returns
/// false (after printing the reason) on any failure; true when tracing is
/// off or everything checks out.
inline bool export_and_check_trace(
    const metrics::RunResult& r, const BenchArgs& args,
    std::initializer_list<trace::EventKind> required) {
  if (!args.tracing()) return true;
  if (!r.trace) {
    std::fprintf(stderr, "trace: run captured no trace (EO_TRACE=OFF build "
                         "or tracing not enabled on the run)\n");
    return false;
  }
  const trace::Trace& tr = *r.trace;
  std::string err;
  if (!trace::export_to_file(tr, args.trace_path, args.trace_format, &err)) {
    std::fprintf(stderr, "trace: export failed: %s\n", err.c_str());
    return false;
  }
  std::printf("trace: wrote %zu events (%llu dropped) to %s [%s]\n",
              tr.events.size(),
              static_cast<unsigned long long>(tr.dropped),
              args.trace_path.c_str(), args.trace_format.c_str());

  bool ok = true;
  std::vector<std::uint64_t> counts(
      static_cast<std::size_t>(trace::EventKind::kCount), 0);
  for (const auto& e : tr.events) {
    if (e.kind < counts.size()) ++counts[e.kind];
  }
  for (const trace::EventKind k : required) {
    if (counts[static_cast<std::size_t>(k)] == 0) {
      std::fprintf(stderr, "trace: required event kind '%s' is absent\n",
                   trace::to_string(k));
      ok = false;
    }
  }

  const trace::TimelineStats tl = trace::TimelineAnalyzer::analyze(tr);
  const auto close = [](std::int64_t a, std::int64_t b) {
    const double da = static_cast<double>(a);
    const double db = static_cast<double>(b);
    return std::fabs(da - db) <=
           0.01 * std::max(std::fabs(da), std::fabs(db)) + 1e-9;
  };
  std::printf("trace: wakeup latency p50=%lld ns p99=%lld ns over %llu "
              "wakeups (kernel: p50=%lld p99=%lld over %llu)\n",
              static_cast<long long>(tl.wakeup_latency.p50()),
              static_cast<long long>(tl.wakeup_latency.p99()),
              static_cast<unsigned long long>(tl.wakeup_latency.total_count()),
              static_cast<long long>(r.wakeup_latency.p50()),
              static_cast<long long>(r.wakeup_latency.p99()),
              static_cast<unsigned long long>(
                  r.wakeup_latency.total_count()));
  if (tr.dropped == 0) {
    // With no ring overwrites the trace holds every wakeup, so the analyzer
    // must reproduce the kernel's histogram.
    if (!close(tl.wakeup_latency.p50(), r.wakeup_latency.p50()) ||
        !close(tl.wakeup_latency.p99(), r.wakeup_latency.p99())) {
      std::fprintf(stderr,
                   "trace: analyzer wakeup-latency quantiles diverge >1%% "
                   "from the kernel histogram\n");
      ok = false;
    }
  }
  return ok;
}

inline void print_header(const char* id, const char* what) {
  std::printf("=== %s: %s ===\n", id, what);
}

inline std::string ratio(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

inline std::string ms(SimDuration d) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", to_ms(d));
  return buf;
}

}  // namespace eo::bench
