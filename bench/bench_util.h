// Shared helpers for the bench harnesses.
//
// Every bench binary regenerates one table or figure from the paper. All of
// them share the `exp::Cli` command line (see src/exp/cli.h):
//
//   <bench> [scale] [--json=<path>] [--jobs=N] [--filter=<substr>] [--list]
//           [--seed=N] [--sched=cfs|fifo|rr|pcfs] [--trace=<path>]
//           [--trace-format=json|csv] [--trace-only] [--metrics[=<path>]]
//           [--metrics-interval=<us>] [--metrics-format=json|csv|report]
//           [--fleet-metrics[=<path>]] [--taskstats[=<path>]]
//           [--progress=none|line|jsonl] [--help]
//
// The positional scale multiplies the simulated round counts, so
// `./fig09_vb_blocking 1.0` runs the full-length experiment and the default
// keeps `for b in build/bench/*; do $b; done` quick. `--json` writes the
// result grid as a schema-validated document (see src/exp/result.h).
#pragma once

#include <cmath>
#include <cstdio>
#include <initializer_list>
#include <string>
#include <vector>

#include <memory>

#include "exp/cli.h"
#include "exp/result.h"
#include "exp/runner.h"
#include "exp/sweep.h"
#include "metrics/experiment.h"
#include "metrics/table_printer.h"
#include "obs/export.h"
#include "obs/fleet_agg.h"
#include "obs/sampler.h"
#include "trace/export.h"
#include "trace/timeline.h"
#include "trace/trace.h"

namespace eo::bench {

using Cli = exp::Cli;
using CliSpec = exp::CliSpec;

/// Writes the result document when `--json` was given. Returns false (after
/// printing the reason) if the document fails validation or the write fails;
/// true when `--json` is off or the write succeeds.
inline bool write_results(const Cli& cli, const exp::ResultDoc& doc) {
  if (cli.json_path.empty()) return true;
  std::string err;
  if (!doc.write(cli.json_path, &err)) {
    std::fprintf(stderr, "json: writing %s failed: %s\n",
                 cli.json_path.c_str(), err.c_str());
    return false;
  }
  std::printf("json: wrote %s\n", cli.json_path.c_str());
  return true;
}

/// Exports the run's trace per the --trace* flags and cross-checks it: every
/// kind in `required` must be present, and the TimelineAnalyzer's
/// wakeup-latency quantiles must agree with the kernel's own histogram
/// within 1%. Returns false (after printing the reason) on any failure; true
/// when tracing is off or everything checks out.
inline bool export_and_check_trace(
    const metrics::RunResult& r, const Cli& cli,
    std::initializer_list<trace::EventKind> required) {
  if (!cli.tracing()) return true;
  if (!r.trace) {
    std::fprintf(stderr, "trace: run captured no trace (EO_TRACE=OFF build "
                         "or tracing not enabled on the run)\n");
    return false;
  }
  const trace::Trace& tr = *r.trace;
  std::string err;
  if (!trace::export_to_file(tr, cli.trace_path, cli.trace_format, &err)) {
    std::fprintf(stderr, "trace: export failed: %s\n", err.c_str());
    return false;
  }
  std::printf("trace: wrote %zu events (%llu dropped) to %s [%s]\n",
              tr.events.size(),
              static_cast<unsigned long long>(tr.dropped),
              cli.trace_path.c_str(), cli.trace_format.c_str());

  bool ok = true;
  std::vector<std::uint64_t> counts(
      static_cast<std::size_t>(trace::EventKind::kCount), 0);
  for (const auto& e : tr.events) {
    if (e.kind < counts.size()) ++counts[e.kind];
  }
  for (const trace::EventKind k : required) {
    if (counts[static_cast<std::size_t>(k)] == 0) {
      std::fprintf(stderr, "trace: required event kind '%s' is absent\n",
                   trace::to_string(k));
      ok = false;
    }
  }

  const trace::TimelineStats tl = trace::TimelineAnalyzer::analyze(tr);
  const auto close = [](std::int64_t a, std::int64_t b) {
    const double da = static_cast<double>(a);
    const double db = static_cast<double>(b);
    return std::fabs(da - db) <=
           0.01 * std::max(std::fabs(da), std::fabs(db)) + 1e-9;
  };
  std::printf("trace: wakeup latency p50=%lld ns p99=%lld ns over %llu "
              "wakeups (kernel: p50=%lld p99=%lld over %llu)\n",
              static_cast<long long>(tl.wakeup_latency.p50()),
              static_cast<long long>(tl.wakeup_latency.p99()),
              static_cast<unsigned long long>(tl.wakeup_latency.total_count()),
              static_cast<long long>(r.wakeup_latency.p50()),
              static_cast<long long>(r.wakeup_latency.p99()),
              static_cast<unsigned long long>(
                  r.wakeup_latency.total_count()));
  if (tr.dropped == 0) {
    // With no ring overwrites the trace holds every wakeup, so the analyzer
    // must reproduce the kernel's histogram.
    if (!close(tl.wakeup_latency.p50(), r.wakeup_latency.p50()) ||
        !close(tl.wakeup_latency.p99(), r.wakeup_latency.p99())) {
      std::fprintf(stderr,
                   "trace: analyzer wakeup-latency quantiles diverge >1%% "
                   "from the kernel histogram\n");
      ok = false;
    }
  }
  return ok;
}

/// Sampler configuration per the --metrics* flags (disabled when --metrics
/// was not given).
inline obs::SamplerConfig metrics_config(const Cli& cli) {
  obs::SamplerConfig mc;
  mc.enabled = cli.metrics;
  mc.interval = static_cast<SimDuration>(cli.metrics_interval_us) * 1_us;
  return mc;
}

/// Applies the --metrics* flags to a RunConfig (for benches building sweeps).
inline void apply_metrics(const Cli& cli, metrics::RunConfig* cfg) {
  cfg->metrics = metrics_config(cli);
  cfg->taskstats = cli.taskstats;
}

/// Exports the folded-stack state flamegraph when --taskstats=<path> was
/// given. `workload` becomes the root frame. Returns true when no path was
/// requested or the export succeeds.
inline bool export_taskstats_folded(
    const std::shared_ptr<obs::TaskstatsDoc>& doc, const Cli& cli,
    const std::string& workload) {
  if (cli.taskstats_path.empty()) return true;
  if (!doc) {
    std::fprintf(stderr, "taskstats: run captured no per-task accounting\n");
    return false;
  }
  std::string err;
  if (!obs::export_folded_to_file(*doc, workload, cli.taskstats_path, &err)) {
    std::fprintf(stderr, "taskstats: export failed: %s\n", err.c_str());
    return false;
  }
  std::printf("taskstats: wrote folded stacks for %zu task(s) to %s\n",
              doc->tasks.size(), cli.taskstats_path.c_str());
  return true;
}

/// Applies the --sched flag to a RunConfig, so every kernel the bench builds
/// runs under the selected policy plugin.
inline void apply_sched(const Cli& cli, metrics::RunConfig* cfg) {
  cfg->sched = cli.sched;
}

/// Checks the run's telemetry and, when --metrics=<path> was given, exports
/// the eo-metrics document in the requested format. Any recorded watchdog
/// violation fails the bench. Returns true when --metrics is off or
/// everything checks out.
inline bool export_and_check_metrics(const metrics::RunResult& r,
                                     const Cli& cli) {
  if (!cli.metrics) return true;
  if (!r.metrics) {
    std::fprintf(stderr, "metrics: run captured no telemetry (sampler not "
                         "enabled on the run)\n");
    return false;
  }
  const obs::MetricsDoc& m = *r.metrics;
  if (m.watchdog_violations != 0) {
    std::fprintf(stderr,
                 "metrics: watchdog recorded %llu invariant violation(s) "
                 "over %llu checks\n",
                 static_cast<unsigned long long>(m.watchdog_violations),
                 static_cast<unsigned long long>(m.watchdog_checks));
    for (const auto& v : m.violation_records) {
      std::fprintf(stderr, "metrics:   t=%lld %s: %s\n",
                   static_cast<long long>(v.ts), v.invariant.c_str(),
                   v.detail.c_str());
    }
    return false;
  }
  std::printf("metrics: %llu samples (%llu dropped), %llu watchdog checks, "
              "0 violations\n",
              static_cast<unsigned long long>(m.ticks),
              static_cast<unsigned long long>(m.dropped_ticks),
              static_cast<unsigned long long>(m.watchdog_checks));
  if (cli.metrics_path.empty()) return true;
  std::string err;
  if (!obs::export_to_file(m, cli.metrics_path, cli.metrics_format, &err)) {
    std::fprintf(stderr, "metrics: export failed: %s\n", err.c_str());
    return false;
  }
  std::printf("metrics: wrote %s [%s]\n", cli.metrics_path.c_str(),
              cli.metrics_format.c_str());
  return true;
}

/// Sweep-level telemetry check: every ran cell must report zero watchdog
/// violations, and one representative cell's document is exported per the
/// --metrics* flags. Returns true when --metrics is off or all cells pass.
inline bool check_sweep_metrics(const exp::Outcomes& out, const Cli& cli) {
  if (!cli.metrics) return true;
  const metrics::RunResult* rep = nullptr;
  bool ok = true;
  for (const auto& o : out) {
    if (!o.ran() || !o.run.metrics) continue;
    if (!rep) rep = &o.run;
    const obs::MetricsDoc& m = *o.run.metrics;
    if (m.watchdog_violations != 0) {
      std::fprintf(stderr,
                   "metrics: cell '%s': %llu watchdog violation(s)\n",
                   o.cell.id().c_str(),
                   static_cast<unsigned long long>(m.watchdog_violations));
      ok = false;
    }
  }
  if (!rep) {
    std::fprintf(stderr, "metrics: no cell captured telemetry\n");
    return false;
  }
  return export_and_check_metrics(*rep, cli) && ok;
}

/// Fleet-level telemetry check (--fleet-metrics benches): every ran cell
/// must carry a merged eo-metrics-fleet document with zero watchdog
/// violations; one representative document (first ran cell in flat order) is
/// summarized for imbalance and exported when a path was given. `docs` is
/// indexed by cell flat index. Returns true when --fleet-metrics is off or
/// everything checks out.
inline bool check_fleet_metrics(
    const std::vector<std::shared_ptr<obs::FleetMetricsDoc>>& docs,
    const exp::Outcomes& out, const Cli& cli) {
  if (!cli.fleet_metrics) return true;
  const obs::FleetMetricsDoc* rep = nullptr;
  bool ok = true;
  for (const auto& o : out) {
    if (!o.ran()) continue;
    const auto& d = docs[o.cell.flat];
    if (!d) {
      std::fprintf(stderr, "fleet-metrics: cell '%s' captured no fleet "
                           "telemetry\n",
                   o.cell.id().c_str());
      ok = false;
      continue;
    }
    if (!rep) rep = d.get();
    if (d->watchdog_violations != 0) {
      std::fprintf(stderr,
                   "fleet-metrics: cell '%s': %llu watchdog violation(s)\n",
                   o.cell.id().c_str(),
                   static_cast<unsigned long long>(d->watchdog_violations));
      for (const auto& v : d->violation_records) {
        std::fprintf(stderr, "fleet-metrics:   t=%lld %s: %s\n",
                     static_cast<long long>(v.ts), v.invariant.c_str(),
                     v.detail.c_str());
      }
      ok = false;
    }
  }
  if (!rep) {
    std::fprintf(stderr, "fleet-metrics: no cell captured fleet telemetry\n");
    return false;
  }
  // Imbalance summary across the representative cell's hosts.
  std::int64_t p99_min = 0, p99_max = 0;
  std::uint64_t shed_max = 0;
  for (std::size_t h = 0; h < rep->hosts.size(); ++h) {
    const obs::FleetHostEntry& e = rep->hosts[h];
    if (h == 0 || e.p99_ns < p99_min) p99_min = e.p99_ns;
    if (h == 0 || e.p99_ns > p99_max) p99_max = e.p99_ns;
    if (e.shed > shed_max) shed_max = e.shed;
  }
  std::printf("fleet-metrics: %d hosts, host p99 %.1f-%.1f us, max "
              "host shed %llu, %llu watchdog checks\n",
              rep->n_hosts, static_cast<double>(p99_min) / 1e3,
              static_cast<double>(p99_max) / 1e3,
              static_cast<unsigned long long>(shed_max),
              static_cast<unsigned long long>(rep->watchdog_checks));
  if (cli.fleet_metrics_path.empty()) return ok;
  std::string err;
  if (!obs::export_fleet_to_file(*rep, cli.fleet_metrics_path, "json",
                                 &err)) {
    std::fprintf(stderr, "fleet-metrics: export failed: %s\n", err.c_str());
    return false;
  }
  std::printf("fleet-metrics: wrote %s\n", cli.fleet_metrics_path.c_str());
  return ok;
}

inline void print_header(const char* id, const char* what) {
  std::printf("=== %s: %s ===\n", id, what);
}

inline std::string ratio(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

inline std::string ms(SimDuration d) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", to_ms(d));
  return buf;
}

}  // namespace eo::bench
