// Host-performance microbenchmarks of the simulator machinery itself:
// event-engine throughput, red-black-tree churn, end-to-end simulated
// context-switch rate, and futex round trips. These guard against simulator
// regressions that would make the figure benches impractically slow.
//
// The JSON cells carry only deterministic simulator counters (items
// processed, context switches); the host-side ns/op timings are volatile and
// therefore reported in the document's `meta` block.
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_util.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "kern/kernel.h"
#include "obs/fleet_agg.h"
#include "runtime/sim_thread.h"
#include "sched/entity.h"
#include "sched/rbtree.h"
#include "sim/engine.h"

using namespace eo;

namespace {

struct MicroResult {
  std::uint64_t items = 0;          // deterministic work count per rep
  std::uint64_t sim_switches = 0;   // deterministic, kernel benches only
};

MicroResult engine_schedule_fire() {
  sim::Engine e;
  int sink = 0;
  for (int i = 0; i < 1000; ++i) {
    e.schedule_at(i, [&sink] { ++sink; });
  }
  e.run();
  return {static_cast<std::uint64_t>(sink), 0};
}

MicroResult engine_schedule_cancel() {
  // Half the events are canceled before the run: exercises the O(1)
  // generation-checked cancel path plus free-list slot recycling.
  sim::Engine e;
  int sink = 0;
  std::vector<sim::EventId> ids;
  ids.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(e.schedule_at(i, [&sink] { ++sink; }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) e.cancel(ids[i]);
  e.run();
  return {static_cast<std::uint64_t>(ids.size()), 0};
}

MicroResult engine_periodic_timer() {
  // A tight periodic timer rides the in-place re-arm path: no slot churn,
  // no callback reconstruction per fire.
  sim::Engine e;
  std::uint64_t sink = 0;
  const sim::EventId id = e.schedule_periodic(1, 1, [&sink] { ++sink; });
  e.run_until(1000);
  e.cancel(id);
  return {sink, 0};
}

MicroResult rbtree_insert_erase() {
  struct Item {
    sched::RbNode node;
    long key;
  };
  struct Less {
    bool operator()(const Item& a, const Item& b) const {
      return a.key < b.key;
    }
  };
  std::vector<Item> items(256);
  Rng rng(1);
  for (auto& i : items) i.key = static_cast<long>(rng.next_below(10000));
  sched::RbTree<Item, &Item::node, Less> tree;
  for (auto& i : items) tree.insert(&i);
  std::uint64_t n = 0;
  while (tree.leftmost() != nullptr) {
    tree.erase(tree.leftmost());
    ++n;
  }
  return {n, 0};
}

MicroResult kernel_context_switches() {
  kern::KernelConfig c;
  c.topo = hw::Topology::make_cores(1, 1);
  kern::Kernel k(c);
  for (int i = 0; i < 4; ++i) {
    runtime::spawn(k, "t", [](runtime::Env env) -> runtime::SimThread {
      for (int r = 0; r < 50; ++r) {
        co_await env.compute(10_us);
        co_await env.yield();
      }
      co_return;
    });
  }
  k.run_to_exit(10_s);
  return {200, k.stats().context_switches};
}

MicroResult obs_sample_tick() {
  // Per-tick cost of the obs sampler: a 4-core kernel with a handful of
  // compute/yield threads sampled every 10 simulated microseconds. Items =
  // sampler ticks, so ns/item is the host cost of one full sample frame
  // (collect + ring push + watchdog cross-check).
  kern::KernelConfig c;
  c.topo = hw::Topology::make_cores(4, 1);
  c.metrics.enabled = true;
  c.metrics.interval = 10_us;
  kern::Kernel k(c);
  for (int i = 0; i < 8; ++i) {
    runtime::spawn(k, "t", [](runtime::Env env) -> runtime::SimThread {
      for (int r = 0; r < 50; ++r) {
        co_await env.compute(20_us);
        co_await env.yield();
      }
      co_return;
    });
  }
  k.run_to_exit(10_s);
  return {k.sampler().ticks(), k.stats().context_switches};
}

MicroResult obs_fleet_merge() {
  // Host cost of folding a full 32-host fleet's telemetry into one
  // eo-metrics-fleet document (FleetAggregator::add_host x32 + finish()).
  // Items = hosts merged, so ns/item is the per-host share of the merge.
  // Inputs are synthetic but sized like a real serve-host snapshot: 6
  // counters, 4 gauges, 4 histograms with thousands of observations, and a
  // retained 8-core sample ring. Built once; every rep re-runs the merge.
  struct HostInput {
    obs::MetricsDoc doc;
    std::vector<Histogram> hists;
  };
  static const std::vector<HostInput> inputs = [] {
    std::vector<HostInput> v(32);
    Rng rng(7);
    for (int h = 0; h < 32; ++h) {
      HostInput& in = v[static_cast<std::size_t>(h)];
      in.doc.n_cores = 8;
      in.doc.interval = 1_ms;
      in.doc.ticks = 55;
      for (int c = 0; c < 6; ++c) {
        in.doc.counters.push_back(
            {"ctr" + std::to_string(c), rng.next_below(1 << 20)});
      }
      for (int g = 0; g < 4; ++g) {
        in.doc.gauges.push_back(
            {"gauge" + std::to_string(g),
             static_cast<std::int64_t>(rng.next_below(256))});
      }
      in.doc.core_series.resize(55 * 8);
      for (auto& cs : in.doc.core_series) {
        cs.rq_depth = static_cast<std::int32_t>(rng.next_below(16));
      }
      in.doc.watchdog_checks = 55;
      in.hists.resize(4);
      for (auto& hist : in.hists) {
        for (int i = 0; i < 4096; ++i) {
          hist.add(static_cast<std::int64_t>(1000 + rng.next_below(1 << 22)));
        }
      }
    }
    return v;
  }();
  obs::FleetAggregator agg;
  for (int h = 0; h < 32; ++h) {
    const HostInput& in = inputs[static_cast<std::size_t>(h)];
    obs::FleetHostSample s;
    s.host = h;
    s.doc = &in.doc;
    for (std::size_t i = 0; i < in.hists.size(); ++i) {
      s.histograms.emplace_back("hist" + std::to_string(i), &in.hists[i]);
    }
    s.issued = 1000;
    s.completed = 990;
    s.shed = 10;
    agg.add_host(s);
  }
  const obs::FleetMetricsDoc doc = agg.finish();
  return {static_cast<std::uint64_t>(doc.n_hosts), 0};
}

MicroResult futex_round_trip() {
  kern::KernelConfig c;
  c.topo = hw::Topology::make_cores(2, 1);
  kern::Kernel k(c);
  kern::SimWord* w = k.alloc_word(0);
  runtime::spawn(k, "waiter", [w](runtime::Env env) -> runtime::SimThread {
    for (int r = 0; r < 100; ++r) {
      co_await env.futex_wait(w, 0);
    }
    co_return;
  });
  runtime::spawn(k, "waker", [w](runtime::Env env) -> runtime::SimThread {
    for (int r = 0; r < 100; ++r) {
      co_await env.compute(5_us);
      // Publish before waking so a not-yet-parked waiter sees EWOULDBLOCK
      // instead of sleeping through a lost wake.
      co_await env.store(w, 1);
      co_await env.futex_wake(w, 1);
    }
    co_return;
  });
  k.run_to_exit(10_s);
  return {100, k.stats().context_switches};
}

struct Micro {
  const char* name;
  MicroResult (*fn)();
};

const std::vector<Micro> kMicros = {
    {"engine_schedule_fire", engine_schedule_fire},
    {"engine_schedule_cancel", engine_schedule_cancel},
    {"engine_periodic_timer", engine_periodic_timer},
    {"rbtree_insert_erase", rbtree_insert_erase},
    {"kernel_context_switches", kernel_context_switches},
    {"futex_round_trip", futex_round_trip},
    {"obs_sample_tick", obs_sample_tick},
    {"obs_fleet_merge", obs_fleet_merge},
};

// engine_schedule_fire ns/item on the reference host immediately before the
// event-engine overhaul (std::function callbacks + unordered_set pending
// tracking), mean of three scale-1.0 runs: 204.8 / 184.7 / 188.8. Kept in
// meta next to the live number so the improvement is visible in the JSON.
constexpr double kPreOverhaulEngineScheduleFireNs = 192.8;
// Pre-flattening baselines for the two paths the intrusive-waiter /
// lazy-sampler pass attacked (recorded in BENCH_simcore.json meta next to
// the live numbers, like the engine baseline above).
constexpr double kPreFlattenContextSwitchNs = 554.2;
constexpr double kPreFlattenFutexRoundTripNs = 785.4;

// --gate: hard ns/item ceilings for the simulator hot paths. Reference-host
// numbers at the time the gate was recorded (engine 65, obs tick 550 after
// the unchanged-core watchdog trim; context switches ~190 and futex round
// trips ~330 after the intrusive-waiter-link + lazy-sampler flattening;
// fleet merge ~18500 per host, i.e. ~0.6ms for a full 32-host document —
// far below 1% of any fleet window's host runtime), with headroom so slower
// or noisy CI hosts don't flake; a breach means a real algorithmic
// regression, not scatter.
struct GateLimit {
  const char* name;
  double limit_ns;
};
const std::vector<GateLimit> kGates = {
    {"engine_schedule_fire", 204.0},
    {"kernel_context_switches", 300.0},
    {"futex_round_trip", 450.0},
    {"obs_sample_tick", 1650.0},
    {"obs_fleet_merge", 40000.0},
};

}  // namespace

int main(int argc, char** argv) {
  const bench::CliSpec spec{
      .id = "simcore_microbench",
      .summary = "host-performance microbenchmarks of the simulator core",
      .default_scale = 1.0};
  // --gate and --stamp=<label> are this bench's own flags (the uniform Cli
  // rejects unknown arguments): strip them before parsing. --stamp labels
  // the perf-trajectory history entry recorded on gated runs.
  bool gate = false;
  std::string stamp = "unstamped";
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string a(argv[i]);
    if (a == "--gate") {
      gate = true;
      continue;
    }
    if (a.rfind("--stamp=", 0) == 0) {
      stamp = a.substr(8);
      if (stamp.empty()) stamp = "unstamped";
      continue;
    }
    args.push_back(argv[i]);
  }
  const bench::Cli cli =
      bench::Cli::parse(static_cast<int>(args.size()), args.data(), spec);
  const int reps = std::max(3, static_cast<int>(50 * cli.scale));

  std::vector<std::string> names;
  for (const auto& m : kMicros) names.emplace_back(m.name);
  exp::Sweep sweep("simcore");
  sweep.axis("microbench", names);

  exp::ExperimentRunner runner(sweep, cli.runner_options());
  if (cli.list) {
    runner.list(std::cout);
    return 0;
  }

  bench::print_header("simcore", "simulator-core microbenchmarks");
  // Host ns/item per microbench, collected outside the cells (volatile).
  std::vector<double> host_ns_per_item(kMicros.size(), 0.0);
  const exp::Outcomes out = runner.run(
      [&](const exp::Cell& cell, const metrics::RunConfig&) {
        const Micro& m = kMicros[cell.at(0)];
        MicroResult last{};
        const auto t0 = std::chrono::steady_clock::now();
        for (int r = 0; r < reps; ++r) last = m.fn();
        const auto t1 = std::chrono::steady_clock::now();
        const double total_items =
            static_cast<double>(last.items) * static_cast<double>(reps);
        host_ns_per_item[cell.at(0)] =
            total_items > 0
                ? static_cast<double>(
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          t1 - t0)
                          .count()) /
                      total_items
                : 0.0;
        exp::CellRun res;
        res.run.completed = true;
        res.set("items_per_rep", static_cast<double>(last.items))
            .set("reps", static_cast<double>(reps))
            .set("sim_context_switches",
                 static_cast<double>(last.sim_switches));
        return res;
      });

  metrics::TablePrinter t(
      {"microbench", "items/rep", "sim CS", "host ns/item"});
  for (std::size_t i = 0; i < kMicros.size(); ++i) {
    const exp::CellOutcome& o = out.at({i});
    if (!o.ran()) continue;
    t.add_row({kMicros[i].name,
               std::to_string(
                   static_cast<std::uint64_t>(o.value("items_per_rep"))),
               std::to_string(static_cast<std::uint64_t>(
                   o.value("sim_context_switches"))),
               metrics::TablePrinter::num(host_ns_per_item[i], 1)});
  }
  t.print();

  exp::ResultDoc doc(spec.id, cli.scale, cli.seed);
  doc.add_sweep(sweep, out);
  // Host timings are machine-dependent: meta only, never in the cells.
  for (std::size_t i = 0; i < kMicros.size(); ++i) {
    if (out.at({i}).ran()) {
      doc.set_meta(std::string("host_ns_per_item_") + kMicros[i].name,
                   host_ns_per_item[i]);
    }
  }
  doc.set_meta("baseline_main_ns_per_item_engine_schedule_fire",
               kPreOverhaulEngineScheduleFireNs);
  doc.set_meta("baseline_main_ns_per_item_kernel_context_switches",
               kPreFlattenContextSwitchNs);
  doc.set_meta("baseline_main_ns_per_item_futex_round_trip",
               kPreFlattenFutexRoundTripNs);

  bool gate_ok = true;
  if (gate) {
    for (const GateLimit& gl : kGates) {
      std::size_t idx = kMicros.size();
      for (std::size_t i = 0; i < kMicros.size(); ++i) {
        if (std::string(kMicros[i].name) == gl.name) idx = i;
      }
      if (idx == kMicros.size() || !out.at({idx}).ran()) {
        std::fprintf(stderr, "gate: %s did not run (filtered out?)\n",
                     gl.name);
        gate_ok = false;
        continue;
      }
      const double got = host_ns_per_item[idx];
      const bool ok = got <= gl.limit_ns;
      std::printf("gate: %-26s %8.1f ns/item (limit %.0f) %s\n", gl.name,
                  got, gl.limit_ns, ok ? "OK" : "FAIL");
      gate_ok &= ok;
    }
    if (!gate_ok) {
      std::fprintf(stderr,
                   "gate: simulator hot-path regression (see limits above)\n");
    }
    // Gated runs record a perf-trajectory point under meta.history: prior
    // entries are carried forward from any existing document at --json's
    // path (capped at ResultDoc::kMaxHistory), then this run's gated
    // ns/item numbers are appended, stamped with the revision and --stamp.
    if (!cli.json_path.empty()) {
      std::ifstream prev(cli.json_path, std::ios::binary);
      if (prev) {
        std::ostringstream buf;
        buf << prev.rdbuf();
        for (auto& e : exp::parse_history(buf.str())) {
          doc.add_history(std::move(e));
        }
      }
      exp::PerfHistoryEntry e;
      e.git_rev = exp::current_git_rev();
      e.stamp = stamp;
      for (const GateLimit& gl : kGates) {
        for (std::size_t i = 0; i < kMicros.size(); ++i) {
          if (std::string(kMicros[i].name) == gl.name && out.at({i}).ran()) {
            e.ns_per_item.emplace_back(gl.name, host_ns_per_item[i]);
          }
        }
      }
      doc.add_history(std::move(e));
    }
  }
  return bench::write_results(cli, doc) && gate_ok ? 0 : 1;
}
