// Host-performance microbenchmarks of the simulator machinery itself
// (google-benchmark): event-engine throughput, red-black-tree churn, and
// end-to-end simulated context-switch rate. These guard against simulator
// regressions that would make the figure benches impractically slow.
#include <benchmark/benchmark.h>

#include "kern/kernel.h"
#include "runtime/sim_thread.h"
#include "sched/entity.h"
#include "sched/rbtree.h"
#include "sim/engine.h"

using namespace eo;

static void BM_EngineScheduleFire(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      e.schedule_at(i, [&sink] { ++sink; });
    }
    e.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleFire);

static void BM_RbTreeInsertErase(benchmark::State& state) {
  struct Item {
    sched::RbNode node;
    long key;
  };
  struct Less {
    bool operator()(const Item& a, const Item& b) const { return a.key < b.key; }
  };
  std::vector<Item> items(256);
  Rng rng(1);
  for (auto& i : items) i.key = static_cast<long>(rng.next_below(10000));
  for (auto _ : state) {
    sched::RbTree<Item, &Item::node, Less> tree;
    for (auto& i : items) tree.insert(&i);
    while (tree.leftmost() != nullptr) tree.erase(tree.leftmost());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_RbTreeInsertErase);

static void BM_KernelContextSwitches(benchmark::State& state) {
  for (auto _ : state) {
    kern::KernelConfig c;
    c.topo = hw::Topology::make_cores(1, 1);
    kern::Kernel k(c);
    for (int i = 0; i < 4; ++i) {
      runtime::spawn(k, "t", [](runtime::Env env) -> runtime::SimThread {
        for (int r = 0; r < 50; ++r) {
          co_await env.compute(10_us);
          co_await env.yield();
        }
        co_return;
      });
    }
    k.run_to_exit(10_s);
    benchmark::DoNotOptimize(k.stats().context_switches);
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_KernelContextSwitches);

static void BM_FutexRoundTrip(benchmark::State& state) {
  for (auto _ : state) {
    kern::KernelConfig c;
    c.topo = hw::Topology::make_cores(2, 1);
    kern::Kernel k(c);
    kern::SimWord* w = k.alloc_word(0);
    runtime::spawn(k, "waiter", [w](runtime::Env env) -> runtime::SimThread {
      for (int r = 0; r < 100; ++r) {
        co_await env.futex_wait(w, 0);
      }
      co_return;
    });
    runtime::spawn(k, "waker", [w](runtime::Env env) -> runtime::SimThread {
      for (int r = 0; r < 100; ++r) {
        co_await env.compute(5_us);
        // Publish before waking so a not-yet-parked waiter sees EWOULDBLOCK
        // instead of sleeping through a lost wake.
        co_await env.store(w, 1);
        co_await env.futex_wake(w, 1);
      }
      co_return;
    });
    k.run_to_exit(10_s);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_FutexRoundTrip);

BENCHMARK_MAIN();
