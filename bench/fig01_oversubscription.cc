// Figure 1: performance of the 32 PARSEC/SPLASH-2/NPB benchmark models with
// (32T) and without (8T) thread oversubscription on 8 cores, vanilla kernel.
// Values are 32T execution time normalized to 8T; the paper's three groups
// should appear: ~1.0 (unaffected), <1.0 (benefit), and >1 up to ~25x
// (suffering; dedup/cholesky/lu are the annotated outliers).
#include "bench_util.h"
#include "common/thread_pool.h"
#include "workloads/suite.h"

using namespace eo;

int main(int argc, char** argv) {
  const double scale = bench::parse_scale(argc, argv, 0.2);
  bench::print_header("Figure 1", "normalized execution time, 32T vs 8T on 8 cores");

  const auto& all = workloads::suite();
  struct Row {
    double t8 = 0, t32 = 0;
  };
  std::vector<Row> rows(all.size());

  ThreadPool::parallel_for(all.size() * 2, [&](std::size_t job) {
    const auto& spec = all[job / 2];
    const int threads = (job % 2 == 0) ? 8 : 32;
    metrics::RunConfig rc;
    rc.cpus = 8;
    rc.sockets = 2;
    rc.features = core::Features::vanilla();
    rc.ref_footprint = spec.ref_footprint();
    rc.deadline = 600_s;
    const auto r = metrics::run_experiment(rc, [&](kern::Kernel& k) {
      workloads::spawn_benchmark(k, spec, threads, /*seed=*/7, scale);
    });
    if (job % 2 == 0) {
      rows[job / 2].t8 = to_ms(r.exec_time);
    } else {
      rows[job / 2].t32 = to_ms(r.exec_time);
    }
  });

  metrics::TablePrinter table(
      {"benchmark", "suite", "sync", "8T(ms)", "32T(ms)", "normalized"});
  for (std::size_t i = 0; i < all.size(); ++i) {
    table.add_row({all[i].name, all[i].origin,
                   workloads::to_string(all[i].sync),
                   metrics::TablePrinter::num(rows[i].t8, 1),
                   metrics::TablePrinter::num(rows[i].t32, 1),
                   metrics::TablePrinter::num(rows[i].t32 / rows[i].t8)});
  }
  table.print();
  return 0;
}
