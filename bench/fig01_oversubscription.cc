// Figure 1: performance of the 32 PARSEC/SPLASH-2/NPB benchmark models with
// (32T) and without (8T) thread oversubscription on 8 cores, vanilla kernel.
// Values are 32T execution time normalized to 8T; the paper's three groups
// should appear: ~1.0 (unaffected), <1.0 (benefit), and >1 up to ~25x
// (suffering; dedup/cholesky/lu are the annotated outliers).
#include <iostream>

#include "bench_util.h"
#include "workloads/suite.h"

using namespace eo;

int main(int argc, char** argv) {
  const bench::CliSpec spec{
      .id = "fig01_oversubscription",
      .summary = "normalized execution time, 32T vs 8T on 8 cores",
      .default_scale = 0.2};
  const bench::Cli cli = bench::Cli::parse(argc, argv, spec);

  const auto& all = workloads::suite();
  std::vector<std::string> names;
  for (const auto& s : all) names.push_back(s.name);

  metrics::RunConfig base;
  base.cpus = 8;
  base.sockets = 2;
  base.features = core::Features::vanilla();
  base.deadline = 600_s;
  bench::apply_metrics(cli, &base);
  bench::apply_sched(cli, &base);

  exp::Sweep sweep("oversubscription");
  sweep.base(base)
      .axis("benchmark", names)
      .axis("threads", {"8T", "32T"});

  exp::ExperimentRunner runner(sweep, cli.runner_options());
  if (cli.list) {
    runner.list(std::cout);
    return 0;
  }

  bench::print_header("Figure 1",
                      "normalized execution time, 32T vs 8T on 8 cores");
  const exp::Outcomes out = runner.run(
      [&](const exp::Cell& cell, const metrics::RunConfig& cfg) {
        const auto& bspec = all[cell.at(0)];
        const int threads = cell.at(1) == 0 ? 8 : 32;
        metrics::RunConfig rc = cfg;
        rc.ref_footprint = bspec.ref_footprint();
        return metrics::run_experiment(rc, [&](kern::Kernel& k) {
          workloads::spawn_benchmark(k, bspec, threads, cli.seed, cli.scale);
        });
      });

  metrics::TablePrinter table(
      {"benchmark", "suite", "sync", "8T(ms)", "32T(ms)", "normalized"});
  for (std::size_t i = 0; i < all.size(); ++i) {
    const auto& r8 = out.at({i, 0});
    const auto& r32 = out.at({i, 1});
    if (!r8.ran() || !r32.ran()) continue;
    table.add_row({all[i].name, all[i].origin,
                   workloads::to_string(all[i].sync),
                   metrics::TablePrinter::num(r8.ms(), 1),
                   metrics::TablePrinter::num(r32.ms(), 1),
                   metrics::TablePrinter::num(r32.ms() / r8.ms())});
  }
  table.print();

  exp::ResultDoc doc(spec.id, cli.scale, cli.seed);
  doc.add_sweep(sweep, out);
  bool ok = bench::write_results(cli, doc);
  if (cli.metrics) {
    ok = bench::check_sweep_metrics(out, cli) && ok;
  }
  return ok ? 0 : 1;
}
