// Table 1: runtime statistics under thread oversubscription — CPU
// utilization (of 800%: 8 cores) and in-node / cross-node migration counts,
// for the 13 blocking benchmarks under 8T vanilla, 32T vanilla, and 32T
// optimized. Expected: vanilla 32T loses utilization and racks up orders of
// magnitude more migrations; VB restores utilization and nearly eliminates
// migrations (sometimes below the 8T baseline, since parked threads are
// never balanced).
#include <iostream>

#include "bench_util.h"
#include "workloads/suite.h"

using namespace eo;

int main(int argc, char** argv) {
  const bench::CliSpec spec{
      .id = "table1_runtime_stats",
      .summary = "CPU utilization and migrations under oversubscription",
      .default_scale = 0.2};
  const bench::Cli cli = bench::Cli::parse(argc, argv, spec);

  const auto names = workloads::fig9_benchmarks();
  struct Cfg {
    int threads;
    bool optimized;
  };
  const std::vector<Cfg> cfgs = {{8, false}, {32, false}, {32, true}};
  const std::vector<std::string> cfg_labels = {"8T", "32T", "Opt"};

  metrics::RunConfig base;
  base.cpus = 8;
  base.sockets = 2;
  base.deadline = 600_s;
  bench::apply_metrics(cli, &base);
  bench::apply_sched(cli, &base);

  exp::Sweep sweep("runtime_stats");
  sweep.base(base)
      .axis("benchmark", names)
      .axis("config", cfg_labels,
            [&](metrics::RunConfig& rc, std::size_t ci) {
              rc.features = cfgs[ci].optimized ? core::Features::optimized()
                                               : core::Features::vanilla();
            });

  exp::ExperimentRunner runner(sweep, cli.runner_options());
  if (cli.list) {
    runner.list(std::cout);
    return 0;
  }

  bench::print_header("Table 1", "CPU utilization and migrations");
  const exp::Outcomes out = runner.run(
      [&](const exp::Cell& cell, const metrics::RunConfig& cfg) {
        const auto& bspec = workloads::find_benchmark(names[cell.at(0)]);
        metrics::RunConfig rc = cfg;
        rc.ref_footprint = bspec.ref_footprint();
        return metrics::run_experiment(rc, [&](kern::Kernel& k) {
          workloads::spawn_benchmark(k, bspec, cfgs[cell.at(1)].threads,
                                     cli.seed, cli.scale);
        });
      });

  metrics::TablePrinter t({"App", "util 8T", "util 32T", "util Opt",
                           "in-migr 8T", "in-migr 32T", "in-migr Opt",
                           "x-migr 8T", "x-migr 32T", "x-migr Opt"});
  for (std::size_t bi = 0; bi < names.size(); ++bi) {
    if (!out.at({bi, 0}).ran() || !out.at({bi, 1}).ran() ||
        !out.at({bi, 2}).ran()) {
      continue;
    }
    std::vector<std::string> row = {names[bi]};
    for (std::size_t ci = 0; ci < cfgs.size(); ++ci) {
      row.push_back(metrics::TablePrinter::num(
          out.at({bi, ci}).run.utilization_percent, 0));
    }
    for (std::size_t ci = 0; ci < cfgs.size(); ++ci) {
      row.push_back(std::to_string(out.at({bi, ci}).run.stats.migrations_in_node));
    }
    for (std::size_t ci = 0; ci < cfgs.size(); ++ci) {
      row.push_back(
          std::to_string(out.at({bi, ci}).run.stats.migrations_cross_node));
    }
    t.add_row(row);
  }
  t.print();

  exp::ResultDoc doc(spec.id, cli.scale, cli.seed);
  doc.add_sweep(sweep, out);
  bool ok = bench::write_results(cli, doc);
  if (cli.metrics) {
    ok = bench::check_sweep_metrics(out, cli) && ok;
  }
  return ok ? 0 : 1;
}
