// Table 1: runtime statistics under thread oversubscription — CPU
// utilization (of 800%: 8 cores) and in-node / cross-node migration counts,
// for the 13 blocking benchmarks under 8T vanilla, 32T vanilla, and 32T
// optimized. Expected: vanilla 32T loses utilization and racks up orders of
// magnitude more migrations; VB restores utilization and nearly eliminates
// migrations (sometimes below the 8T baseline, since parked threads are
// never balanced).
#include "bench_util.h"
#include "common/thread_pool.h"
#include "workloads/suite.h"

using namespace eo;

int main(int argc, char** argv) {
  const double scale = bench::parse_scale(argc, argv, 0.2);
  bench::print_header("Table 1", "CPU utilization and migrations");

  const auto names = workloads::fig9_benchmarks();
  struct Cfg {
    int threads;
    bool optimized;
  };
  const std::vector<Cfg> cfgs = {{8, false}, {32, false}, {32, true}};
  struct Out {
    double util = 0;
    std::uint64_t in_node = 0, cross = 0;
  };
  std::vector<std::vector<Out>> grid(names.size(),
                                     std::vector<Out>(cfgs.size()));
  ThreadPool::parallel_for(names.size() * cfgs.size(), [&](std::size_t job) {
    const auto bi = job / cfgs.size();
    const auto ci = job % cfgs.size();
    const auto& spec = workloads::find_benchmark(names[bi]);
    metrics::RunConfig rc;
    rc.cpus = 8;
    rc.sockets = 2;
    rc.features = cfgs[ci].optimized ? core::Features::optimized()
                                     : core::Features::vanilla();
    rc.ref_footprint = spec.ref_footprint();
    rc.deadline = 600_s;
    const auto r = metrics::run_experiment(rc, [&](kern::Kernel& k) {
      workloads::spawn_benchmark(k, spec, cfgs[ci].threads, 7, scale);
    });
    grid[bi][ci] = Out{r.utilization_percent, r.stats.migrations_in_node,
                       r.stats.migrations_cross_node};
  });

  metrics::TablePrinter t({"App", "util 8T", "util 32T", "util Opt",
                           "in-migr 8T", "in-migr 32T", "in-migr Opt",
                           "x-migr 8T", "x-migr 32T", "x-migr Opt"});
  for (std::size_t bi = 0; bi < names.size(); ++bi) {
    t.add_row({names[bi],
               metrics::TablePrinter::num(grid[bi][0].util, 0),
               metrics::TablePrinter::num(grid[bi][1].util, 0),
               metrics::TablePrinter::num(grid[bi][2].util, 0),
               std::to_string(grid[bi][0].in_node),
               std::to_string(grid[bi][1].in_node),
               std::to_string(grid[bi][2].in_node),
               std::to_string(grid[bi][0].cross),
               std::to_string(grid[bi][1].cross),
               std::to_string(grid[bi][2].cross)});
  }
  t.print();
  return 0;
}
