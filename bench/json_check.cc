// json_check <file>... — validates machine-readable bench documents. The
// schema is dispatched on the document's own "schema" field:
//
//   "eo-bench-result"   result grids (src/exp/result.h)
//   "eo-metrics"        live-telemetry exports (src/obs/export.h)
//   "eo-metrics-fleet"  merged fleet telemetry (src/obs/fleet_agg.h)
//
// Beyond structure, any recorded watchdog violation fails the check — in
// eo-metrics documents (watchdog.violations) and in result-grid cells that
// embed an "obs" summary (obs.watchdog_violations). Exits nonzero unless
// every file passes. Used by the bench_json_smoke / obs_smoke ctests, and
// handy for checking archived BENCH_*.json documents by hand.
//
// json_check --golden=<golden> <file> — determinism mode: additionally
// requires <file> to be value-identical to <golden> outside the top-level
// "meta" block (which carries timestamps and host details). The sched_golden
// ctest uses this to pin the default-policy scheduler output to a document
// captured before the SchedPolicy refactor.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json.h"
#include "exp/result.h"
#include "obs/export.h"
#include "obs/fleet_agg.h"

namespace {

/// Fails result grids whose cells embed an obs summary with violations.
bool check_cell_watchdogs(const eo::json::Value& root, std::string* err) {
  const eo::json::Value* sweeps = root.get("sweeps");
  if (!sweeps) return true;
  for (const auto& s : sweeps->items) {
    const eo::json::Value* cells = s.get("cells");
    if (!cells) continue;
    for (const auto& cell : cells->items) {
      const eo::json::Value* obs = cell.get("obs");
      if (!obs) continue;
      const eo::json::Value* v = obs->get("watchdog_violations");
      if (v && v->num != 0) {
        *err = "cell reports " +
               std::to_string(static_cast<long long>(v->num)) +
               " watchdog violation(s)";
        return false;
      }
    }
  }
  return true;
}

bool check_file(const std::string& text, std::string* err) {
  eo::json::Value root;
  if (!eo::json::parse(text, &root, err)) return false;
  const eo::json::Value* schema =
      root.is_object() ? root.get("schema") : nullptr;
  if (!schema || !schema->is_string()) {
    *err = "document has no string 'schema' field";
    return false;
  }
  if (schema->str == eo::obs::kMetricsSchemaName ||
      schema->str == eo::obs::kFleetMetricsSchemaName) {
    const bool fleet = schema->str == eo::obs::kFleetMetricsSchemaName;
    if (fleet) {
      if (!eo::obs::validate_fleet_metrics_json(text, err)) return false;
    } else {
      if (!eo::obs::validate_metrics_json(text, err)) return false;
    }
    const eo::json::Value* wd = root.get("watchdog");
    const eo::json::Value* v = wd ? wd->get("violations") : nullptr;
    if (v && v->num != 0) {
      *err = "watchdog recorded " +
             std::to_string(static_cast<long long>(v->num)) + " violation(s)";
      return false;
    }
    return true;
  }
  if (!eo::exp::validate_result_json(text, err)) return false;
  return check_cell_watchdogs(root, err);
}

/// Value-level equality with a path-annotated reason on mismatch.
bool values_equal(const eo::json::Value& a, const eo::json::Value& b,
                  const std::string& path, std::string* err) {
  if (a.type != b.type) {
    *err = path + ": type mismatch";
    return false;
  }
  switch (a.type) {
    case eo::json::Value::kNull:
      return true;
    case eo::json::Value::kBool:
      if (a.b != b.b) {
        *err = path + ": bool mismatch";
        return false;
      }
      return true;
    case eo::json::Value::kNumber:
      if (a.num != b.num) {
        *err = path + ": " + std::to_string(a.num) + " != " +
               std::to_string(b.num);
        return false;
      }
      return true;
    case eo::json::Value::kString:
      if (a.str != b.str) {
        *err = path + ": '" + a.str + "' != '" + b.str + "'";
        return false;
      }
      return true;
    case eo::json::Value::kArray:
      if (a.items.size() != b.items.size()) {
        *err = path + ": array length " + std::to_string(a.items.size()) +
               " != " + std::to_string(b.items.size());
        return false;
      }
      for (std::size_t i = 0; i < a.items.size(); ++i) {
        if (!values_equal(a.items[i], b.items[i],
                          path + "[" + std::to_string(i) + "]", err)) {
          return false;
        }
      }
      return true;
    case eo::json::Value::kObject:
      if (a.fields.size() != b.fields.size()) {
        *err = path + ": field count " + std::to_string(a.fields.size()) +
               " != " + std::to_string(b.fields.size());
        return false;
      }
      // Field order is part of the contract: the writer is deterministic.
      for (std::size_t i = 0; i < a.fields.size(); ++i) {
        if (a.fields[i].first != b.fields[i].first) {
          *err = path + ": key '" + a.fields[i].first + "' != '" +
                 b.fields[i].first + "'";
          return false;
        }
        if (!values_equal(a.fields[i].second, b.fields[i].second,
                          path + "." + a.fields[i].first, err)) {
          return false;
        }
      }
      return true;
  }
  return true;
}

/// Drops the top-level "meta" field (timestamps, host details).
void drop_meta(eo::json::Value* v) {
  if (!v->is_object()) return;
  for (auto it = v->fields.begin(); it != v->fields.end(); ++it) {
    if (it->first == "meta") {
      v->fields.erase(it);
      return;
    }
  }
}

bool check_golden(const std::string& golden_text, const std::string& text,
                  std::string* err) {
  eo::json::Value golden, doc;
  if (!eo::json::parse(golden_text, &golden, err)) {
    *err = "golden: " + *err;
    return false;
  }
  if (!eo::json::parse(text, &doc, err)) return false;
  drop_meta(&golden);
  drop_meta(&doc);
  return values_equal(golden, doc, "$", err);
}

}  // namespace

int main(int argc, char** argv) {
  std::string golden_path;
  int first_file = 1;
  if (argc >= 2 && std::string(argv[1]).rfind("--golden=", 0) == 0) {
    golden_path = std::string(argv[1]).substr(9);
    first_file = 2;
  }
  if (first_file >= argc || (first_file == 2 && golden_path.empty())) {
    std::fprintf(stderr,
                 "usage: json_check [--golden=<golden>] <file>...\n");
    return 2;
  }
  std::string golden_text;
  if (!golden_path.empty()) {
    std::ifstream g(golden_path, std::ios::binary);
    if (!g) {
      std::fprintf(stderr, "json_check: cannot open golden %s\n",
                   golden_path.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << g.rdbuf();
    golden_text = ss.str();
  }
  int failures = 0;
  for (int i = first_file; i < argc; ++i) {
    std::ifstream f(argv[i], std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "json_check: cannot open %s\n", argv[i]);
      ++failures;
      continue;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    std::string err;
    if (!check_file(ss.str(), &err)) {
      std::fprintf(stderr, "json_check: %s: INVALID: %s\n", argv[i],
                   err.c_str());
      ++failures;
    } else if (!golden_text.empty() &&
               !check_golden(golden_text, ss.str(), &err)) {
      std::fprintf(stderr, "json_check: %s: DIVERGES from %s: %s\n", argv[i],
                   golden_path.c_str(), err.c_str());
      ++failures;
    } else {
      std::printf("json_check: %s: ok\n", argv[i]);
    }
  }
  return failures == 0 ? 0 : 1;
}
