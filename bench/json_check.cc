// json_check <file>... — validates bench result documents against the
// eo-bench-result schema (src/exp/result.h). Exits nonzero unless every file
// parses and passes structural validation. Used by the bench_json_smoke
// ctest, and handy for checking archived BENCH_*.json documents by hand.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "exp/result.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: json_check <file>...\n");
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream f(argv[i], std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "json_check: cannot open %s\n", argv[i]);
      ++failures;
      continue;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    std::string err;
    if (!eo::exp::validate_result_json(ss.str(), &err)) {
      std::fprintf(stderr, "json_check: %s: INVALID: %s\n", argv[i],
                   err.c_str());
      ++failures;
    } else {
      std::printf("json_check: %s: ok\n", argv[i]);
    }
  }
  return failures == 0 ? 0 : 1;
}
