// json_check <file>... — validates machine-readable bench documents. The
// schema is dispatched on the document's own "schema" field:
//
//   "eo-bench-result"  result grids (src/exp/result.h)
//   "eo-metrics"       live-telemetry exports (src/obs/export.h)
//
// Beyond structure, any recorded watchdog violation fails the check — in
// eo-metrics documents (watchdog.violations) and in result-grid cells that
// embed an "obs" summary (obs.watchdog_violations). Exits nonzero unless
// every file passes. Used by the bench_json_smoke / obs_smoke ctests, and
// handy for checking archived BENCH_*.json documents by hand.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json.h"
#include "exp/result.h"
#include "obs/export.h"

namespace {

/// Fails result grids whose cells embed an obs summary with violations.
bool check_cell_watchdogs(const eo::json::Value& root, std::string* err) {
  const eo::json::Value* sweeps = root.get("sweeps");
  if (!sweeps) return true;
  for (const auto& s : sweeps->items) {
    const eo::json::Value* cells = s.get("cells");
    if (!cells) continue;
    for (const auto& cell : cells->items) {
      const eo::json::Value* obs = cell.get("obs");
      if (!obs) continue;
      const eo::json::Value* v = obs->get("watchdog_violations");
      if (v && v->num != 0) {
        *err = "cell reports " +
               std::to_string(static_cast<long long>(v->num)) +
               " watchdog violation(s)";
        return false;
      }
    }
  }
  return true;
}

bool check_file(const std::string& text, std::string* err) {
  eo::json::Value root;
  if (!eo::json::parse(text, &root, err)) return false;
  const eo::json::Value* schema =
      root.is_object() ? root.get("schema") : nullptr;
  if (!schema || !schema->is_string()) {
    *err = "document has no string 'schema' field";
    return false;
  }
  if (schema->str == eo::obs::kMetricsSchemaName) {
    if (!eo::obs::validate_metrics_json(text, err)) return false;
    const eo::json::Value* wd = root.get("watchdog");
    const eo::json::Value* v = wd ? wd->get("violations") : nullptr;
    if (v && v->num != 0) {
      *err = "watchdog recorded " +
             std::to_string(static_cast<long long>(v->num)) + " violation(s)";
      return false;
    }
    return true;
  }
  if (!eo::exp::validate_result_json(text, err)) return false;
  return check_cell_watchdogs(root, err);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: json_check <file>...\n");
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream f(argv[i], std::ios::binary);
    if (!f) {
      std::fprintf(stderr, "json_check: cannot open %s\n", argv[i]);
      ++failures;
      continue;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    std::string err;
    if (!check_file(ss.str(), &err)) {
      std::fprintf(stderr, "json_check: %s: INVALID: %s\n", argv[i],
                   err.c_str());
      ++failures;
    } else {
      std::printf("json_check: %s: ok\n", argv[i]);
    }
  }
  return failures == 0 ? 0 : 1;
}
