// Figure 14: BWD on user-customized spinning (NPB lu and SPLASH-2 volrend),
// with 8/16/32 threads on 8 cores, in containers and VMs. Expected: vanilla
// collapses as the oversubscription ratio grows; BWD contains the slowdown
// (worsening somewhat with the ratio — its detection interval is fixed);
// PLE is inapplicable in containers (∅) and ineffective in VMs because these
// spin loops contain no PAUSE/NOP.
#include "bench_util.h"
#include "common/thread_pool.h"
#include "workloads/suite.h"

using namespace eo;

namespace {

double run_one(const workloads::BenchmarkSpec& spec, int threads,
               core::Features f, double scale) {
  metrics::RunConfig rc;
  rc.cpus = 8;
  rc.sockets = 2;
  rc.features = f;
  rc.ref_footprint = spec.ref_footprint();
  rc.deadline = 2000_s;
  const auto r = metrics::run_experiment(rc, [&](kern::Kernel& k) {
    workloads::spawn_benchmark(k, spec, threads, 7, scale);
  });
  return to_ms(r.exec_time);
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::parse_scale(argc, argv, 0.15);
  bench::print_header("Figure 14", "user-customized spinning (exec ms)");

  const std::vector<int> threads = {8, 16, 32};
  for (const char* name : {"lu", "volrend"}) {
    const auto& spec = workloads::find_benchmark(name);
    struct Cfg {
      const char* label;
      bool vm;
      core::Features f;
    };
    const std::vector<Cfg> cfgs = {
        {"container-vanilla", false, core::Features::vanilla()},
        {"container-PLE", false, core::Features::vanilla()},  // ∅: N/A
        {"container-optimized", false, core::Features::optimized()},
        {"vm-vanilla", true, core::Features::vm_vanilla()},
        {"vm-PLE", true, core::Features::vm_ple()},
        {"vm-optimized", true, core::Features::vm_optimized()},
    };
    std::vector<std::vector<double>> t(cfgs.size(),
                                       std::vector<double>(threads.size()));
    ThreadPool::parallel_for(cfgs.size() * threads.size(), [&](std::size_t j) {
      const auto ci = j / threads.size();
      const auto ti = j % threads.size();
      if (!cfgs[ci].vm && std::string(cfgs[ci].label) == "container-PLE") {
        t[ci][ti] = -1;  // PLE is not applicable to containers
        return;
      }
      t[ci][ti] = run_one(spec, threads[ti], cfgs[ci].f, scale);
    });
    std::printf("\n--- %s ---\n", name);
    metrics::TablePrinter table({"config", "8t", "16t", "32t"});
    for (std::size_t ci = 0; ci < cfgs.size(); ++ci) {
      std::vector<std::string> row = {cfgs[ci].label};
      for (std::size_t ti = 0; ti < threads.size(); ++ti) {
        row.push_back(t[ci][ti] < 0
                          ? "n/a"
                          : metrics::TablePrinter::num(t[ci][ti], 1));
      }
      table.add_row(row);
    }
    table.print();
  }
  return 0;
}
