// Figure 14: BWD on user-customized spinning (NPB lu and SPLASH-2 volrend),
// with 8/16/32 threads on 8 cores, in containers and VMs. Expected: vanilla
// collapses as the oversubscription ratio grows; BWD contains the slowdown
// (worsening somewhat with the ratio — its detection interval is fixed);
// PLE is inapplicable in containers (∅) and ineffective in VMs because these
// spin loops contain no PAUSE/NOP.
#include <iostream>

#include "bench_util.h"
#include "workloads/suite.h"

using namespace eo;

namespace {

struct Cfg {
  const char* label;
  bool na;  // PLE in a container: not applicable
  core::Features f;
};

const std::vector<Cfg> kCfgs = {
    {"container-vanilla", false, core::Features::vanilla()},
    {"container-PLE", true, core::Features::vanilla()},  // ∅: N/A
    {"container-optimized", false, core::Features::optimized()},
    {"vm-vanilla", false, core::Features::vm_vanilla()},
    {"vm-PLE", false, core::Features::vm_ple()},
    {"vm-optimized", false, core::Features::vm_optimized()},
};

}  // namespace

int main(int argc, char** argv) {
  const bench::CliSpec spec{
      .id = "fig14_user_spinning",
      .summary = "BWD on user-customized spinning (exec ms)",
      .default_scale = 0.15};
  const bench::Cli cli = bench::Cli::parse(argc, argv, spec);

  const std::vector<std::string> names = {"lu", "volrend"};
  const std::vector<int> threads = {8, 16, 32};
  std::vector<std::string> cfg_labels;
  for (const auto& c : kCfgs) cfg_labels.emplace_back(c.label);
  std::vector<std::string> thread_labels;
  for (const int t : threads) thread_labels.push_back(std::to_string(t) + "t");

  metrics::RunConfig base;
  base.cpus = 8;
  base.sockets = 2;
  base.deadline = 2000_s;
  bench::apply_metrics(cli, &base);
  bench::apply_sched(cli, &base);

  exp::Sweep sweep("user_spinning");
  sweep.base(base)
      .axis("benchmark", names)
      .axis("config", cfg_labels,
            [](metrics::RunConfig& rc, std::size_t ci) {
              rc.features = kCfgs[ci].f;
            })
      .axis("threads", thread_labels);

  exp::ExperimentRunner runner(sweep, cli.runner_options());
  if (cli.list) {
    runner.list(std::cout);
    return 0;
  }

  bench::print_header("Figure 14", "user-customized spinning (exec ms)");
  const exp::Outcomes out = runner.run(
      [&](const exp::Cell& cell, const metrics::RunConfig& cfg) {
        if (kCfgs[cell.at(1)].na) return exp::CellRun::na();
        const auto& bspec = workloads::find_benchmark(names[cell.at(0)]);
        metrics::RunConfig rc = cfg;
        rc.ref_footprint = bspec.ref_footprint();
        return exp::CellRun(metrics::run_experiment(rc, [&](kern::Kernel& k) {
          workloads::spawn_benchmark(k, bspec, threads[cell.at(2)], cli.seed,
                                     cli.scale);
        }));
      });

  for (std::size_t bi = 0; bi < names.size(); ++bi) {
    std::printf("\n--- %s ---\n", names[bi].c_str());
    metrics::TablePrinter table({"config", "8t", "16t", "32t"});
    for (std::size_t ci = 0; ci < kCfgs.size(); ++ci) {
      std::vector<std::string> row = {kCfgs[ci].label};
      for (std::size_t ti = 0; ti < threads.size(); ++ti) {
        const exp::CellOutcome& o = out.at({bi, ci, ti});
        if (o.not_applicable) {
          row.push_back("n/a");
        } else {
          row.push_back(o.ran() ? metrics::TablePrinter::num(o.ms(), 1) : "-");
        }
      }
      table.add_row(row);
    }
    table.print();
  }

  exp::ResultDoc doc(spec.id, cli.scale, cli.seed);
  doc.add_sweep(sweep, out);
  bool ok = bench::write_results(cli, doc);
  if (cli.metrics) {
    ok = bench::check_sweep_metrics(out, cli) && ok;
  }
  return ok ? 0 : 1;
}
