// Policy zoo: the oversubscription experiment of Figure 9 repeated under
// every registered scheduler policy (cfs, fifo, rr, pcfs), vanilla and
// optimized. The zoo exists to exercise the SchedPolicy plugin boundary:
// every policy must run the same 32-thread/8-core blocking workloads to
// completion, keep VB parking and BWD skipping working (optimized column),
// and stay watchdog-clean under --metrics. Expected: cfs and pcfs behave
// near-identically (the predictive bias only breaks vruntime ties); fifo and
// rr finish the run but with visibly worse balance under oversubscription.
#include <iostream>

#include "bench_util.h"
#include "sched/policy.h"
#include "workloads/suite.h"

using namespace eo;

int main(int argc, char** argv) {
  const bench::CliSpec spec{
      .id = "fig_policy_zoo",
      .summary = "blocking benchmarks under every scheduler policy "
                 "(exec time, ms)",
      .default_scale = 0.2};
  const bench::Cli cli = bench::Cli::parse(argc, argv, spec);

  // cg mixes futex blocking (VB parks) with tight spin loops (BWD skips);
  // streamcluster is barrier-heavy. Together they exercise every contract a
  // policy has to uphold.
  const std::vector<std::string> names = {"cg", "streamcluster"};
  const std::vector<std::string> policies = sched::policy_names();
  const std::vector<std::string> feature_labels = {"32T(van-8c)",
                                                   "32T(opt-8c)"};

  metrics::RunConfig base;
  base.cpus = 8;
  base.sockets = 2;
  base.deadline = 600_s;
  bench::apply_metrics(cli, &base);
  bench::apply_sched(cli, &base);

  exp::Sweep sweep("policy_zoo");
  sweep.base(base)
      .axis("benchmark", names)
      .axis("policy", policies,
            [&](metrics::RunConfig& rc, std::size_t pi) {
              rc.sched = policies[pi];
            })
      .axis("config", feature_labels,
            [](metrics::RunConfig& rc, std::size_t fi) {
              rc.features = fi == 1 ? core::Features::optimized()
                                    : core::Features::vanilla();
            });

  exp::ExperimentRunner runner(sweep, cli.runner_options());
  if (cli.list) {
    runner.list(std::cout);
    return 0;
  }

  bench::print_header("Policy zoo",
                      "blocking benchmarks under every scheduler policy");
  const exp::Outcomes out = runner.run(
      [&](const exp::Cell& cell, const metrics::RunConfig& cfg) {
        const auto& bspec = workloads::find_benchmark(names[cell.at(0)]);
        metrics::RunConfig rc = cfg;
        rc.ref_footprint = bspec.ref_footprint();
        return metrics::run_experiment(rc, [&](kern::Kernel& k) {
          workloads::spawn_benchmark(k, bspec, 32, cli.seed, cli.scale);
        });
      });

  for (std::size_t bi = 0; bi < names.size(); ++bi) {
    metrics::TablePrinter table(
        {names[bi], "32T(van-8c)", "32T(opt-8c)", "opt/van"});
    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
      const auto& van = out.at({bi, pi, 0});
      const auto& opt = out.at({bi, pi, 1});
      std::vector<std::string> row = {policies[pi]};
      row.push_back(van.ran() ? bench::ms(van.run.exec_time) : "-");
      row.push_back(opt.ran() ? bench::ms(opt.run.exec_time) : "-");
      row.push_back(van.ran() && opt.ran() ? bench::ratio(opt.ms() / van.ms())
                                           : "-");
      table.add_row(row);
    }
    table.print();
  }
  std::printf("(exec time in ms; opt/van < 1 means VB+BWD helped under that "
              "policy)\n");

  exp::ResultDoc doc(spec.id, cli.scale, cli.seed);
  doc.add_sweep(sweep, out);
  bool ok = bench::write_results(cli, doc);
  if (cli.metrics) {
    ok = bench::check_sweep_metrics(out, cli) && ok;
  }
  return ok ? 0 : 1;
}
