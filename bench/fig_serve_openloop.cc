// Open-loop "planet-scale memcached" serving scenario (src/traffic).
//
// A fleet of simulated hosts, each running 16 epoll workers on 8 cores (2x
// thread oversubscription, the paper's memcached shape), serves open-loop
// arrivals across ~10^6 simulated connections at full scale. The headline
// comparison is VB/BWD on vs off across an offered-load sweep: closed-loop
// runs (fig12) hide queueing collapse because the client stops offering load
// when the server backs up, while the open-loop sweep shows tail latency
// (p99/p999) vs offered load directly — the regime where virtual blocking's
// cheap wakeups matter. Arrival axes cover Poisson, bursty on-off (MMPP),
// and diurnal-modulated intensity.
//
// `scale` multiplies fleet size (hosts x connections); 1.0 is the
// million-connection configuration (32 hosts x 32768 connections).
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "traffic/fleet.h"
#include "traffic/slo.h"

using namespace eo;

namespace {

struct LoadPt {
  const char* label;
  double frac;  ///< offered load as a fraction of per-host CPU capacity
};
const std::vector<LoadPt> kLoads = {{"0.4x", 0.4},
                                    {"0.6x", 0.6},
                                    {"0.8x", 0.8},
                                    {"0.95x", 0.95},
                                    {"1.1x", 1.1}};

const std::vector<traffic::ArrivalKind> kArrivals = {
    traffic::ArrivalKind::kPoisson, traffic::ArrivalKind::kOnOff,
    traffic::ArrivalKind::kDiurnal};

struct Cfg {
  const char* label;
  bool optimized;
};
const std::vector<Cfg> kCfgs = {{"vanilla", false}, {"optimized", true}};

traffic::FleetConfig fleet_config(traffic::ArrivalKind kind, double load_frac,
                                  const metrics::RunConfig& cfg,
                                  std::uint64_t seed, double scale,
                                  std::size_t jobs,
                                  obs::ProgressSink* progress) {
  traffic::FleetConfig fc;
  fc.n_hosts = std::max(1, static_cast<int>(std::llround(32 * scale)));
  fc.host.n_connections = static_cast<std::uint32_t>(
      std::max(1024.0, std::round(32768 * scale)));
  fc.kernel = metrics::make_kernel_config(cfg);
  fc.arrival.kind = kind;
  // Bursts at 2x the mean keep the ON-state rate below capacity at the low
  // end of the load sweep, so the on-off curve shows a knee instead of
  // saturating in every cell (at 3x even 0.4x load bursts past capacity).
  fc.arrival.burst_factor = 2.0;
  // Offered load is capacity-relative: per-host CPU capacity is
  // cores / mean-request-cost, so the same fractions hit the same queueing
  // regimes regardless of the cost model.
  const double capacity_ops_s =
      static_cast<double>(cfg.cpus) * 1e9 / traffic::mean_request_cost_ns(fc.host);
  fc.arrival.rate_per_sec = load_frac * capacity_ops_s;
  fc.warmup = 10_ms;
  fc.window = 40_ms;
  fc.drain = 5_ms;
  fc.seed = seed;
  // --jobs also fans the per-host kernels inside each cell out onto host
  // threads (hosts are seed-independent; results merge in host order, so the
  // JSON is byte-identical for any jobs value).
  fc.jobs = jobs;
  fc.progress = progress;
  return fc;
}

exp::CellRun run_one(
    const exp::Cell& cell, traffic::ArrivalKind kind, double load_frac,
    const metrics::RunConfig& cfg, std::uint64_t seed, double scale,
    std::size_t jobs, obs::ProgressSink* progress,
    std::vector<std::shared_ptr<obs::FleetMetricsDoc>>* fleet_docs,
    std::vector<std::shared_ptr<obs::TaskstatsDoc>>* taskstats_docs) {
  const traffic::FleetConfig fc =
      fleet_config(kind, load_frac, cfg, seed, scale, jobs, progress);
  traffic::ConnectionFleet fleet(fc);
  const traffic::FleetResult fr = fleet.run();
  const traffic::SloPoint p = traffic::SloReporter::summarize(
      fc.arrival.rate_per_sec * fc.n_hosts, fr, fc.window + fc.drain);

  exp::CellRun r;
  r.run.completed = true;  // open-loop: the window always closes
  r.run.exec_time = fc.warmup + fc.window + fc.drain;
  r.run.stats = fr.stats;
  r.run.metrics = fr.metrics;
  // Cells write disjoint flat-indexed slots, so the parallel runner needs no
  // lock here and the slot layout is identical for every --jobs value.
  if (fleet_docs != nullptr) (*fleet_docs)[cell.flat] = fr.fleet_metrics;
  if (taskstats_docs != nullptr) (*taskstats_docs)[cell.flat] = fr.taskstats;
  if (cfg.taskstats) {
    // The fleet-merged blame decomposition, pinned into the cell extras so
    // the blame table is part of the golden-checked document (host-order
    // merge keeps it byte-identical across --jobs values).
    r.set("blame_requests", static_cast<double>(fr.blame.requests));
#define EO_BLAME_EXTRA(name) \
    r.set("blame_" #name "_ns", static_cast<double>(fr.blame.name));
    EO_SERVE_BLAME_FIELDS(EO_BLAME_EXTRA)
#undef EO_BLAME_EXTRA
  }
  r.set("offered_ops_s", p.offered_ops_s)
      .set("achieved_ops_s", p.achieved_ops_s)
      .set("shed_pct", p.shed_fraction * 100.0)
      .set("mean_us", p.mean_us)
      .set("p50_us", p.p50_us)
      .set("p99_us", p.p99_us)
      .set("p999_us", p.p999_us)
      .set("queue_p99_us", p.queue_p99_us)
      .set("service_p99_us", p.service_p99_us)
      .set("sched_delay_p99_us", p.sched_delay_p99_us)
      .set("connections", static_cast<double>(fr.total_connections))
      .set("active_connections", static_cast<double>(fr.active_connections));
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::CliSpec spec{
      .id = "fig_serve_openloop",
      .summary =
          "open-loop million-connection serving: offered load vs tail latency",
      .default_scale = 0.1,
      .default_seed = 1234,
      .supports_fleet = true};
  const bench::Cli cli = bench::Cli::parse(argc, argv, spec);

  std::vector<std::string> arrival_labels;
  for (const auto k : kArrivals) arrival_labels.emplace_back(to_string(k));
  std::vector<std::string> cfg_labels;
  for (const auto& c : kCfgs) cfg_labels.emplace_back(c.label);
  std::vector<std::string> load_labels;
  for (const auto& l : kLoads) load_labels.emplace_back(l.label);

  metrics::RunConfig base;
  base.cpus = 8;
  base.sockets = 1;
  bench::apply_metrics(cli, &base);
  bench::apply_sched(cli, &base);

  exp::Sweep sweep("serve_openloop");
  sweep.base(base)
      .axis("arrival", arrival_labels)
      .axis("config", cfg_labels,
            [](metrics::RunConfig& rc, std::size_t ci) {
              rc.features = kCfgs[ci].optimized ? core::Features::optimized()
                                                : core::Features::vanilla();
            })
      .axis("load", load_labels);

  // One sink shared by the runner (cell events) and every fleet (host
  // events), so the feed is a single interleaved stream.
  std::shared_ptr<obs::ProgressSink> sink = cli.progress_sink();
  exp::RunnerOptions ropts = cli.runner_options();
  ropts.sink = sink;
  exp::ExperimentRunner runner(sweep, ropts);
  if (cli.list) {
    runner.list(std::cout);
    return 0;
  }

  bench::print_header("serve_openloop",
                      "open-loop serving: offered load vs p99/p999");
  const std::size_t n_cells =
      arrival_labels.size() * cfg_labels.size() * load_labels.size();
  std::vector<std::shared_ptr<obs::FleetMetricsDoc>> fleet_docs(n_cells);
  std::vector<std::shared_ptr<obs::TaskstatsDoc>> taskstats_docs(n_cells);
  const exp::Outcomes out = runner.run(
      [&](const exp::Cell& cell, const metrics::RunConfig& cfg) {
        return run_one(cell, kArrivals[cell.at(0)], kLoads[cell.at(2)].frac,
                       cfg, cli.seed, cli.scale, cli.jobs, sink.get(),
                       cli.metrics ? &fleet_docs : nullptr,
                       cli.taskstats ? &taskstats_docs : nullptr);
      });

  for (std::size_t ai = 0; ai < kArrivals.size(); ++ai) {
    bool any = false;
    for (std::size_t li = 0; li < kLoads.size() && !any; ++li) {
      for (std::size_t ci = 0; ci < kCfgs.size() && !any; ++ci) {
        any = out.at({ai, ci, li}).ran();
      }
    }
    if (!any) continue;
    std::printf("\n--- arrivals: %s ---\n", arrival_labels[ai].c_str());
    metrics::TablePrinter t({"load", "offered(Mops/s)", "p99 van(us)",
                             "p99 opt(us)", "p999 van(us)", "p999 opt(us)",
                             "shed% van", "shed% opt"});
    traffic::SloReporter rep_van;
    traffic::SloReporter rep_opt;
    for (std::size_t li = 0; li < kLoads.size(); ++li) {
      const exp::CellOutcome& van = out.at({ai, 0, li});
      const exp::CellOutcome& opt = out.at({ai, 1, li});
      const auto val = [](const exp::CellOutcome& o, const char* k) {
        return o.ran() ? metrics::TablePrinter::num(o.value(k), 1)
                       : std::string("-");
      };
      t.add_row({kLoads[li].label,
                 van.ran() ? metrics::TablePrinter::num(
                                 van.value("offered_ops_s") / 1e6, 2)
                           : "-",
                 val(van, "p99_us"), val(opt, "p99_us"), val(van, "p999_us"),
                 val(opt, "p999_us"), val(van, "shed_pct"),
                 val(opt, "shed_pct")});
      const auto point = [](const exp::CellOutcome& o) {
        traffic::SloPoint p;
        p.offered_ops_s = o.value("offered_ops_s");
        p.p99_us = o.value("p99_us");
        return p;
      };
      if (van.ran()) rep_van.add(point(van));
      if (opt.ran()) rep_opt.add(point(opt));
    }
    t.print();
    constexpr double kSloUs = 1000.0;  // 1 ms p99 SLO
    std::printf("SLO capacity (p99 <= %.0f us): vanilla %.2f Mops/s, "
                "optimized %.2f Mops/s\n",
                kSloUs, rep_van.max_load_within(kSloUs) / 1e6,
                rep_opt.max_load_within(kSloUs) / 1e6);

    if (cli.taskstats) {
      // Critical-path blame: where each config's request latency goes, as a
      // share of the summed latency over the window. Reading vanilla vs
      // optimized side by side shows WHY p99 moves — wake_sleep (vanilla
      // futex/epoll sleeps) turning into wake_park + smaller rq_wait under
      // VB, or skip_delay appearing when BWD fires.
      std::printf("\nlatency blame (%% of summed request latency):\n");
      metrics::TablePrinter bt({"load", "config", "backlog", "wake_park",
                                "wake_sleep", "rq_wait", "skip_delay",
                                "service_cpu", "other"});
      for (std::size_t li = 0; li < kLoads.size(); ++li) {
        for (std::size_t ci = 0; ci < kCfgs.size(); ++ci) {
          const exp::CellOutcome& o = out.at({ai, ci, li});
          if (!o.ran()) continue;
          double tot = 0;
#define EO_BLAME_TOT(name) tot += o.value("blame_" #name "_ns");
          EO_SERVE_BLAME_FIELDS(EO_BLAME_TOT)
#undef EO_BLAME_TOT
          const auto pct = [&](const char* key) {
            return tot > 0 ? metrics::TablePrinter::num(
                                 o.value(key) / tot * 100.0, 1)
                           : std::string("-");
          };
          bt.add_row({kLoads[li].label, kCfgs[ci].label,
                      pct("blame_backlog_ns"), pct("blame_wake_park_ns"),
                      pct("blame_wake_sleep_ns"), pct("blame_rq_wait_ns"),
                      pct("blame_skip_delay_ns"), pct("blame_service_cpu_ns"),
                      pct("blame_other_ns")});
        }
      }
      bt.print();
    }
  }

  exp::ResultDoc doc(spec.id, cli.scale, cli.seed);
  doc.add_sweep(sweep, out);
  bool ok = bench::write_results(cli, doc);
  ok = bench::check_sweep_metrics(out, cli) && ok;
  ok = bench::check_fleet_metrics(fleet_docs, out, cli) && ok;
  if (!cli.taskstats_path.empty()) {
    // Folded state flamegraph of the first ran cell's representative host.
    std::shared_ptr<obs::TaskstatsDoc> rep;
    for (const auto& o : out) {
      if (o.ran() && taskstats_docs[o.cell.flat]) {
        rep = taskstats_docs[o.cell.flat];
        break;
      }
    }
    ok = bench::export_taskstats_folded(rep, cli, "serve_openloop") && ok;
  }
  return ok ? 0 : 1;
}
