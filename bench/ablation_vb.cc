// Ablation: VB design choices (DESIGN.md Section 5).
//  (1) auto-disable threshold on/off: with the threshold off, VB parks even
//      single mutex waiters; the paper's rule avoids VB when all waiters can
//      get dedicated cores on wakeup.
//  (2) flag-check quantum sweep: the quantum trades responsiveness when all
//      threads on a core are parked against switch churn.
#include "bench_util.h"
#include "common/thread_pool.h"
#include "workloads/microbench.h"

using namespace eo;

namespace {

double run_prim(workloads::SyncPrimitive prim, int threads, int cores,
                core::Features f, core::CostModel costs, int iters) {
  metrics::RunConfig rc;
  rc.cpus = cores;
  rc.sockets = cores > 8 ? 2 : 1;
  rc.features = f;
  rc.costs = costs;
  rc.deadline = 600_s;
  const auto r = metrics::run_experiment(rc, [&](kern::Kernel& k) {
    workloads::spawn_sync_micro(k, threads, prim, iters);
  });
  return to_ms(r.exec_time);
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::parse_scale(argc, argv, 0.25);
  const int iters = std::max(200, static_cast<int>(6000 * scale));

  bench::print_header("Ablation (VB)", "auto-disable threshold");
  {
    metrics::TablePrinter t({"primitive", "vanilla(ms)", "VB+auto(ms)",
                             "VB-always(ms)"});
    for (const auto prim : {workloads::SyncPrimitive::kMutex,
                            workloads::SyncPrimitive::kBarrier,
                            workloads::SyncPrimitive::kCond}) {
      core::Features vb_auto = core::Features::optimized();
      core::Features vb_always = core::Features::optimized();
      vb_always.vb_auto_disable = false;
      const double v =
          run_prim(prim, 32, 8, core::Features::vanilla(), {}, iters);
      const double a = run_prim(prim, 32, 8, vb_auto, {}, iters);
      const double w = run_prim(prim, 32, 8, vb_always, {}, iters);
      t.add_row({workloads::to_string(prim), metrics::TablePrinter::num(v, 1),
                 metrics::TablePrinter::num(a, 1),
                 metrics::TablePrinter::num(w, 1)});
    }
    t.print();
  }

  bench::print_header("Ablation (VB)", "flag-check quantum sweep (barrier, 32T/8c)");
  {
    metrics::TablePrinter t({"quantum(us)", "exec(ms)"});
    for (const SimDuration q : {250_ns * 1, 500_ns * 1, 1_us, 2_us, 5_us, 20_us}) {
      core::CostModel costs;
      costs.vb_check_quantum = q;
      const double ms =
          run_prim(workloads::SyncPrimitive::kBarrier, 32, 8,
                   core::Features::optimized(), costs, iters);
      t.add_row({metrics::TablePrinter::num(static_cast<double>(q) / 1000.0, 2),
                 metrics::TablePrinter::num(ms, 1)});
    }
    t.print();
  }
  return 0;
}
