// Ablation: VB design choices (DESIGN.md Section 5).
//  (1) auto-disable threshold on/off: with the threshold off, VB parks even
//      single mutex waiters; the paper's rule avoids VB when all waiters can
//      get dedicated cores on wakeup.
//  (2) flag-check quantum sweep: the quantum trades responsiveness when all
//      threads on a core are parked against switch churn.
#include <iostream>

#include "bench_util.h"
#include "workloads/microbench.h"

using namespace eo;

namespace {

const std::vector<workloads::SyncPrimitive> kPrims = {
    workloads::SyncPrimitive::kMutex, workloads::SyncPrimitive::kBarrier,
    workloads::SyncPrimitive::kCond};

const std::vector<SimDuration> kQuanta = {250_ns, 500_ns, 1_us,
                                          2_us,   5_us,   20_us};

}  // namespace

int main(int argc, char** argv) {
  const bench::CliSpec spec{
      .id = "ablation_vb",
      .summary = "VB auto-disable and flag-check quantum ablations",
      .default_scale = 0.25};
  const bench::Cli cli = bench::Cli::parse(argc, argv, spec);
  const int iters = std::max(200, static_cast<int>(6000 * cli.scale));

  metrics::RunConfig base;
  base.cpus = 8;
  base.sockets = 1;
  base.deadline = 600_s;
  bench::apply_metrics(cli, &base);
  bench::apply_sched(cli, &base);

  std::vector<std::string> prim_labels;
  for (const auto p : kPrims) prim_labels.emplace_back(workloads::to_string(p));

  exp::Sweep sweep_a("auto_disable");
  sweep_a.base(base)
      .axis("primitive", prim_labels)
      .axis("policy", {"vanilla", "vb-auto", "vb-always"},
            [](metrics::RunConfig& rc, std::size_t i) {
              if (i == 0) {
                rc.features = core::Features::vanilla();
              } else {
                rc.features = core::Features::optimized();
                rc.features.vb_auto_disable = i == 1;
              }
            });

  std::vector<std::string> quantum_labels;
  for (const auto q : kQuanta) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fus",
                  static_cast<double>(q) / 1000.0);
    quantum_labels.emplace_back(buf);
  }
  exp::Sweep sweep_q("check_quantum");
  {
    metrics::RunConfig qbase = base;
    qbase.features = core::Features::optimized();
    sweep_q.base(qbase).axis("quantum", quantum_labels,
                             [](metrics::RunConfig& rc, std::size_t i) {
                               rc.costs.vb_check_quantum = kQuanta[i];
                             });
  }

  exp::ExperimentRunner runner_a(sweep_a, cli.runner_options());
  exp::ExperimentRunner runner_q(sweep_q, cli.runner_options());
  if (cli.list) {
    runner_a.list(std::cout);
    runner_q.list(std::cout);
    return 0;
  }

  bench::print_header("Ablation (VB)", "auto-disable threshold");
  const exp::Outcomes out_a = runner_a.run(
      [&](const exp::Cell& cell, const metrics::RunConfig& cfg) {
        return metrics::run_experiment(cfg, [&](kern::Kernel& k) {
          workloads::spawn_sync_micro(k, 32, kPrims[cell.at(0)], iters);
        });
      });
  {
    metrics::TablePrinter t({"primitive", "vanilla(ms)", "VB+auto(ms)",
                             "VB-always(ms)"});
    for (std::size_t pi = 0; pi < kPrims.size(); ++pi) {
      std::vector<std::string> row = {prim_labels[pi]};
      for (std::size_t ci = 0; ci < 3; ++ci) {
        const exp::CellOutcome& o = out_a.at({pi, ci});
        row.push_back(o.ran() ? metrics::TablePrinter::num(o.ms(), 1) : "-");
      }
      t.add_row(row);
    }
    t.print();
  }

  bench::print_header("Ablation (VB)",
                      "flag-check quantum sweep (barrier, 32T/8c)");
  const exp::Outcomes out_q = runner_q.run(
      [&](const exp::Cell&, const metrics::RunConfig& cfg) {
        return metrics::run_experiment(cfg, [&](kern::Kernel& k) {
          workloads::spawn_sync_micro(k, 32, workloads::SyncPrimitive::kBarrier,
                                      iters);
        });
      });
  {
    metrics::TablePrinter t({"quantum(us)", "exec(ms)"});
    for (std::size_t qi = 0; qi < kQuanta.size(); ++qi) {
      const exp::CellOutcome& o = out_q.at({qi});
      t.add_row({metrics::TablePrinter::num(
                     static_cast<double>(kQuanta[qi]) / 1000.0, 2),
                 o.ran() ? metrics::TablePrinter::num(o.ms(), 1) : "-"});
    }
    t.print();
  }

  exp::ResultDoc doc(spec.id, cli.scale, cli.seed);
  doc.add_sweep(sweep_a, out_a);
  doc.add_sweep(sweep_q, out_q);
  bool ok = bench::write_results(cli, doc);
  if (cli.metrics) {
    ok = bench::check_sweep_metrics(out_a, cli) &&
      bench::check_sweep_metrics(out_q, cli) && ok;
  }
  return ok ? 0 : 1;
}
