// Figure 13: applicability of BWD to the ten spinlock algorithms, in
// containers (a) and KVM VMs (b).
//
// The paper's microbenchmark is a multi-stage pipeline: each stage is a
// thread that busy-waits on the completion of the previous stage before
// starting its own work, with the waiting implemented by each of the ten
// spinlock algorithms. At pipeline steady state every stage has useful work
// queued, so the experiment measures how much CPU the waiting algorithm
// burns — which is what BWD eliminates. In the simulation all ten
// algorithms' waits execute as spin segments (differing in their PAUSE use,
// which is what PLE keys on), so the rows come out similar — exactly the
// paper's finding: "BWD can accurately identify busy-waiting in all spin
// algorithms", while PLE helps none of them (it detects only PAUSE bodies
// and acts at vCPU granularity).
//
// Expected shape: 32T vanilla is several-x slower than 8T vanilla; 32T
// optimized (BWD) is close to 8T; PLE tracks vanilla.
#include "bench_util.h"
#include "common/thread_pool.h"
#include "locks/spinlocks.h"
#include "workloads/pipeline.h"

using namespace eo;

namespace {

bool lock_uses_pause(locks::SpinLockKind k) {
  // glibc's pthread spinlock embeds PAUSE/NOP (paper Figure 6); TTAS
  // implementations typically do as well. The queue locks spin on plain
  // loads.
  return k == locks::SpinLockKind::kPthreadSpin ||
         k == locks::SpinLockKind::kTtas;
}

double run_one(locks::SpinLockKind kind, int threads, core::Features f,
               int items, SimDuration total_stage_work) {
  metrics::RunConfig rc;
  rc.cpus = 8;
  rc.sockets = 2;
  rc.features = f;
  rc.deadline = 2000_s;
  const auto r = metrics::run_experiment(rc, [&](kern::Kernel& k) {
    workloads::PipelineConfig pc;
    pc.n_stages = threads;
    pc.items = items;
    pc.stage_work = total_stage_work / threads;  // strong scaling
    pc.uses_pause = lock_uses_pause(kind);
    workloads::spawn_spin_pipeline(k, pc);
  });
  return to_ms(r.exec_time);
}

void run_mode(bool vm, int items) {
  const SimDuration total_stage_work = 2_ms;  // per item, across all stages
  const auto& kinds = locks::all_spinlock_kinds();
  struct Cfg {
    const char* label;
    int threads;
    core::Features f;
  };
  std::vector<Cfg> cfgs;
  if (!vm) {
    cfgs = {{"8T(vanilla)", 8, core::Features::vanilla()},
            {"32T(vanilla)", 32, core::Features::vanilla()},
            {"32T(optimized)", 32, core::Features::optimized()}};
  } else {
    cfgs = {{"8T(vanilla)", 8, core::Features::vm_vanilla()},
            {"32T(vanilla)", 32, core::Features::vm_vanilla()},
            {"32T(PLE)", 32, core::Features::vm_ple()},
            {"32T(optimized)", 32, core::Features::vm_optimized()}};
  }
  std::vector<std::vector<double>> t(kinds.size(),
                                     std::vector<double>(cfgs.size()));
  ThreadPool::parallel_for(kinds.size() * cfgs.size(), [&](std::size_t job) {
    const auto li = job / cfgs.size();
    const auto ci = job % cfgs.size();
    t[li][ci] = run_one(kinds[li], cfgs[ci].threads, cfgs[ci].f, items,
                        total_stage_work);
  });
  std::vector<std::string> headers = {"spinlock"};
  for (const auto& c : cfgs) headers.emplace_back(c.label);
  metrics::TablePrinter table(headers);
  for (std::size_t li = 0; li < kinds.size(); ++li) {
    std::vector<std::string> row = {locks::to_string(kinds[li])};
    for (std::size_t ci = 0; ci < cfgs.size(); ++ci) {
      row.push_back(metrics::TablePrinter::num(t[li][ci], 1));
    }
    table.add_row(row);
  }
  table.print();
}

// Traced configuration: the TTAS pipeline at 32 threads (optimized) in a
// container — the oversubscribed spin workload BWD exists to fix.
bool run_traced(const bench::BenchArgs& args, int items,
                SimDuration total_stage_work) {
  metrics::RunConfig rc;
  rc.cpus = 8;
  rc.sockets = 2;
  rc.features = core::Features::optimized();
  rc.deadline = 2000_s;
  rc.trace.enabled = true;
  rc.trace.ring_capacity = 1u << 20;
  const auto r = metrics::run_experiment(rc, [&](kern::Kernel& k) {
    workloads::PipelineConfig pc;
    pc.n_stages = 32;
    pc.items = items;
    pc.stage_work = total_stage_work / 32;
    pc.uses_pause = lock_uses_pause(locks::SpinLockKind::kTtas);
    workloads::spawn_spin_pipeline(k, pc);
  });
  std::printf("traced run: ttas 32T(opt) pipeline exec=%s ms\n",
              bench::ms(r.exec_time).c_str());
  return bench::export_and_check_trace(
      r, args,
      {trace::EventKind::kSwitchIn, trace::EventKind::kBwdSample,
       trace::EventKind::kBwdDesched});
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv, 0.2);
  const double scale = args.scale;
  const int items = std::max(40, static_cast<int>(600 * scale));
  if (args.tracing()) {
    if (!run_traced(args, items, 2_ms)) return 1;
    if (args.trace_only) return 0;
  }
  bench::print_header("Figure 13(a)",
                      "spin pipeline in a container (exec ms)");
  run_mode(false, items);
  bench::print_header("Figure 13(b)", "spin pipeline in a KVM VM (exec ms)");
  run_mode(true, items);
  return 0;
}
