// Figure 13: applicability of BWD to the ten spinlock algorithms, in
// containers (a) and KVM VMs (b).
//
// The paper's microbenchmark is a multi-stage pipeline: each stage is a
// thread that busy-waits on the completion of the previous stage before
// starting its own work, with the waiting implemented by each of the ten
// spinlock algorithms. At pipeline steady state every stage has useful work
// queued, so the experiment measures how much CPU the waiting algorithm
// burns — which is what BWD eliminates. In the simulation all ten
// algorithms' waits execute as spin segments (differing in their PAUSE use,
// which is what PLE keys on), so the rows come out similar — exactly the
// paper's finding: "BWD can accurately identify busy-waiting in all spin
// algorithms", while PLE helps none of them (it detects only PAUSE bodies
// and acts at vCPU granularity).
//
// Expected shape: 32T vanilla is several-x slower than 8T vanilla; 32T
// optimized (BWD) is close to 8T; PLE tracks vanilla.
#include <iostream>

#include "bench_util.h"
#include "locks/spinlocks.h"
#include "workloads/pipeline.h"

using namespace eo;

namespace {

bool lock_uses_pause(locks::SpinLockKind k) {
  // glibc's pthread spinlock embeds PAUSE/NOP (paper Figure 6); TTAS
  // implementations typically do as well. The queue locks spin on plain
  // loads.
  return k == locks::SpinLockKind::kPthreadSpin ||
         k == locks::SpinLockKind::kTtas;
}

// Config axis: the union of the container and VM column sets. PLE exists
// only under virtualization, so the container/PLE cells are not applicable.
struct Cfg {
  const char* label;
  int threads;
};
const std::vector<Cfg> kCfgs = {{"8T(vanilla)", 8},
                                {"32T(vanilla)", 32},
                                {"32T(PLE)", 32},
                                {"32T(optimized)", 32}};

core::Features features_for(bool vm, std::size_t ci) {
  if (!vm) {
    return ci == 3 ? core::Features::optimized() : core::Features::vanilla();
  }
  switch (ci) {
    case 2:
      return core::Features::vm_ple();
    case 3:
      return core::Features::vm_optimized();
    default:
      return core::Features::vm_vanilla();
  }
}

// Traced configuration: the TTAS pipeline at 32 threads (optimized) in a
// container — the oversubscribed spin workload BWD exists to fix.
bool run_traced(const bench::Cli& cli, int items,
                SimDuration total_stage_work) {
  metrics::RunConfig rc;
  rc.cpus = 8;
  rc.sockets = 2;
  rc.sched = cli.sched;
  rc.features = core::Features::optimized();
  rc.deadline = 2000_s;
  rc.trace.enabled = true;
  rc.trace.ring_capacity = 1u << 20;
  const auto r = metrics::run_experiment(rc, [&](kern::Kernel& k) {
    workloads::PipelineConfig pc;
    pc.n_stages = 32;
    pc.items = items;
    pc.stage_work = total_stage_work / 32;
    pc.uses_pause = lock_uses_pause(locks::SpinLockKind::kTtas);
    workloads::spawn_spin_pipeline(k, pc);
  });
  std::printf("traced run: ttas 32T(opt) pipeline exec=%s ms\n",
              bench::ms(r.exec_time).c_str());
  return bench::export_and_check_trace(
      r, cli,
      {trace::EventKind::kSwitchIn, trace::EventKind::kBwdSample,
       trace::EventKind::kBwdDesched});
}

}  // namespace

int main(int argc, char** argv) {
  const bench::CliSpec spec{
      .id = "fig13_bwd_spinlocks",
      .summary = "BWD on the ten spinlock algorithms (container and VM)",
      .default_scale = 0.2,
      .supports_trace = true};
  const bench::Cli cli = bench::Cli::parse(argc, argv, spec);
  const int items = std::max(40, static_cast<int>(600 * cli.scale));
  const SimDuration total_stage_work = 2_ms;  // per item, across all stages
  if (cli.tracing()) {
    if (!run_traced(cli, items, total_stage_work)) return 1;
    if (cli.trace_only) return 0;
  }

  const auto& kinds = locks::all_spinlock_kinds();
  std::vector<std::string> kind_labels;
  for (const auto k : kinds) kind_labels.emplace_back(locks::to_string(k));
  std::vector<std::string> cfg_labels;
  for (const auto& c : kCfgs) cfg_labels.emplace_back(c.label);

  metrics::RunConfig base;
  base.cpus = 8;
  base.sockets = 2;
  base.deadline = 2000_s;
  bench::apply_metrics(cli, &base);
  bench::apply_sched(cli, &base);

  exp::Sweep sweep("bwd_spinlocks");
  sweep.base(base)
      .axis("mode", {"container", "vm"})
      .axis("spinlock", kind_labels)
      .axis("config", cfg_labels);

  exp::ExperimentRunner runner(sweep, cli.runner_options());
  if (cli.list) {
    runner.list(std::cout);
    return 0;
  }

  const exp::Outcomes out = runner.run(
      [&](const exp::Cell& cell, const metrics::RunConfig& cfg) {
        const bool vm = cell.at(0) == 1;
        const std::size_t ci = cell.at(2);
        if (!vm && ci == 2) return exp::CellRun::na();  // PLE needs a VM
        metrics::RunConfig rc = cfg;
        rc.features = features_for(vm, ci);
        const auto kind = kinds[cell.at(1)];
        const int threads = kCfgs[ci].threads;
        return exp::CellRun(metrics::run_experiment(rc, [&](kern::Kernel& k) {
          workloads::PipelineConfig pc;
          pc.n_stages = threads;
          pc.items = items;
          pc.stage_work = total_stage_work / threads;  // strong scaling
          pc.uses_pause = lock_uses_pause(kind);
          workloads::spawn_spin_pipeline(k, pc);
        }));
      });

  const auto print_mode = [&](std::size_t mi, const char* header,
                              const char* what) {
    bench::print_header(header, what);
    std::vector<std::string> headers = {"spinlock"};
    for (const auto& c : kCfgs) {
      if (mi == 0 && std::string(c.label) == "32T(PLE)") continue;
      headers.emplace_back(c.label);
    }
    metrics::TablePrinter table(headers);
    for (std::size_t li = 0; li < kinds.size(); ++li) {
      std::vector<std::string> row = {kind_labels[li]};
      for (std::size_t ci = 0; ci < kCfgs.size(); ++ci) {
        const exp::CellOutcome& o = out.at({mi, li, ci});
        if (o.not_applicable) continue;
        row.push_back(o.ran() ? metrics::TablePrinter::num(o.ms(), 1) : "-");
      }
      table.add_row(row);
    }
    table.print();
  };
  print_mode(0, "Figure 13(a)", "spin pipeline in a container (exec ms)");
  print_mode(1, "Figure 13(b)", "spin pipeline in a KVM VM (exec ms)");

  exp::ResultDoc doc(spec.id, cli.scale, cli.seed);
  doc.add_sweep(sweep, out);
  bool ok = bench::write_results(cli, doc);
  if (cli.metrics) {
    ok = bench::check_sweep_metrics(out, cli) && ok;
  }
  return ok ? 0 : 1;
}
