// Figure 4: the indirect cost of context switches. Two threads pinned to one
// core traverse disjoint halves of an array (strong scaling), yielding after
// each pass; the indirect cost per switch is (t_2threads - t_1thread) / #CS.
// Expected shape (paper Section 2.3):
//  * seq-r / seq-rmw: cost climbs from ~512 KB (sub-arrays spill the L2 and
//    the prefetch streams restart cold), reaching ~1 ms/CS at 128 MB;
//  * rnd-r: negative (oversubscription HELPS) at 256-512 KB (sub-array
//    translations fit the L1 dTLB), positive between 1-4 MB (no TLB gain,
//    more L2 misses), negative again beyond 4 MB (sub-arrays fit the STLB);
//  * rnd-rmw: oversubscription always favorable beyond 256 KB (writebacks
//    make the L2 irrelevant).
#include "bench_util.h"
#include "common/thread_pool.h"
#include "workloads/microbench.h"

using namespace eo;

namespace {

struct Cell {
  double cost_us = 0;  // indirect cost per context switch, microseconds
};

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::parse_scale(argc, argv, 1.0);
  bench::print_header(
      "Figure 4", "indirect cost per context switch (us), 2 threads vs 1, one core");

  const std::vector<std::uint64_t> sizes = {
      64_KiB, 128_KiB, 256_KiB, 512_KiB, 1_MiB, 2_MiB,
      4_MiB,  8_MiB,   16_MiB,  32_MiB,  64_MiB, 128_MiB};
  const std::vector<hw::AccessPattern> patterns = {
      hw::AccessPattern::kSequentialRead, hw::AccessPattern::kSequentialRMW,
      hw::AccessPattern::kRandomRead, hw::AccessPattern::kRandomRMW};

  std::vector<std::vector<Cell>> grid(patterns.size(),
                                      std::vector<Cell>(sizes.size()));

  ThreadPool::parallel_for(patterns.size() * sizes.size(), [&](std::size_t job) {
    const auto pi = job / sizes.size();
    const auto si = job % sizes.size();
    const auto pattern = patterns[pi];
    const auto bytes = sizes[si];

    hw::CacheModel cm{hw::CacheParams{}, hw::TlbParams{}};
    const SimDuration pass = workloads::array_pass_duration(cm, pattern, bytes);
    // Enough passes for at least ~100 context switches but bounded total time.
    int passes = static_cast<int>(std::max<SimDuration>(1, 400_ms / std::max<SimDuration>(pass, 1)));
    passes = std::max(4, std::min(passes, 4000));
    passes = std::max(2, static_cast<int>(passes * scale));

    auto run = [&](int threads) {
      metrics::RunConfig rc;
      rc.cpus = 1;
      rc.sockets = 1;
      rc.ref_footprint = bytes;  // calibration: single-thread full-array rate
      rc.deadline = 3000_s;
      return metrics::run_experiment(rc, [&](kern::Kernel& k) {
        workloads::spawn_array_traversal(k, threads, pattern, bytes, passes);
      });
    };
    const auto r1 = run(1);
    const auto r2 = run(2);
    const auto switches = std::max<std::uint64_t>(1, r2.stats.context_switches);
    grid[pi][si].cost_us = to_us(r2.exec_time - r1.exec_time) /
                           static_cast<double>(switches);
  });

  std::vector<std::string> headers = {"array size"};
  for (const auto p : patterns) headers.emplace_back(hw::to_string(p));
  metrics::TablePrinter t(headers);
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    std::vector<std::string> row;
    const auto b = sizes[si];
    row.push_back(b >= 1_MiB ? std::to_string(b / (1_MiB)) + "MB"
                             : std::to_string(b / 1024) + "KB");
    for (std::size_t pi = 0; pi < patterns.size(); ++pi) {
      row.push_back(metrics::TablePrinter::num(grid[pi][si].cost_us));
    }
    t.add_row(row);
  }
  t.print();
  return 0;
}
