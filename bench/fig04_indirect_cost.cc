// Figure 4: the indirect cost of context switches. Two threads pinned to one
// core traverse disjoint halves of an array (strong scaling), yielding after
// each pass; the indirect cost per switch is (t_2threads - t_1thread) / #CS.
// Expected shape (paper Section 2.3):
//  * seq-r / seq-rmw: cost climbs from ~512 KB (sub-arrays spill the L2 and
//    the prefetch streams restart cold), reaching ~1 ms/CS at 128 MB;
//  * rnd-r: negative (oversubscription HELPS) at 256-512 KB (sub-array
//    translations fit the L1 dTLB), positive between 1-4 MB (no TLB gain,
//    more L2 misses), negative again beyond 4 MB (sub-arrays fit the STLB);
//  * rnd-rmw: oversubscription always favorable beyond 256 KB (writebacks
//    make the L2 irrelevant).
#include <iostream>

#include "bench_util.h"
#include "workloads/microbench.h"

using namespace eo;

int main(int argc, char** argv) {
  const bench::CliSpec spec{
      .id = "fig04_indirect_cost",
      .summary =
          "indirect cost per context switch (us), 2 threads vs 1, one core",
      .default_scale = 1.0};
  const bench::Cli cli = bench::Cli::parse(argc, argv, spec);

  const std::vector<std::uint64_t> sizes = {
      64_KiB, 128_KiB, 256_KiB, 512_KiB, 1_MiB, 2_MiB,
      4_MiB,  8_MiB,   16_MiB,  32_MiB,  64_MiB, 128_MiB};
  const std::vector<hw::AccessPattern> patterns = {
      hw::AccessPattern::kSequentialRead, hw::AccessPattern::kSequentialRMW,
      hw::AccessPattern::kRandomRead, hw::AccessPattern::kRandomRMW};

  std::vector<std::string> pattern_labels;
  for (const auto p : patterns) pattern_labels.emplace_back(hw::to_string(p));
  std::vector<std::string> size_labels;
  for (const auto b : sizes) {
    size_labels.push_back(b >= 1_MiB ? std::to_string(b / (1_MiB)) + "MB"
                                     : std::to_string(b / 1024) + "KB");
  }

  metrics::RunConfig base;
  base.cpus = 1;
  base.sockets = 1;
  base.deadline = 3000_s;
  bench::apply_metrics(cli, &base);
  bench::apply_sched(cli, &base);

  exp::Sweep sweep("indirect_cost");
  sweep.base(base)
      .axis("pattern", pattern_labels)
      .axis("size", size_labels)
      .axis("threads", {"1T", "2T"});

  exp::ExperimentRunner runner(sweep, cli.runner_options());
  if (cli.list) {
    runner.list(std::cout);
    return 0;
  }

  bench::print_header(
      "Figure 4",
      "indirect cost per context switch (us), 2 threads vs 1, one core");
  exp::Outcomes out = runner.run(
      [&](const exp::Cell& cell, const metrics::RunConfig& cfg) {
        const auto pattern = patterns[cell.at(0)];
        const auto bytes = sizes[cell.at(1)];
        const int threads = cell.at(2) == 0 ? 1 : 2;

        hw::CacheModel cm{hw::CacheParams{}, hw::TlbParams{}};
        const SimDuration pass =
            workloads::array_pass_duration(cm, pattern, bytes);
        // Enough passes for at least ~100 context switches but bounded total
        // time.
        int passes = static_cast<int>(std::max<SimDuration>(
            1, 400_ms / std::max<SimDuration>(pass, 1)));
        passes = std::max(4, std::min(passes, 4000));
        passes = std::max(2, static_cast<int>(passes * cli.scale));

        metrics::RunConfig rc = cfg;
        rc.ref_footprint = bytes;  // calibration: single-thread full-array rate
        return metrics::run_experiment(rc, [&](kern::Kernel& k) {
          workloads::spawn_array_traversal(k, threads, pattern, bytes, passes);
        });
      });

  // Indirect cost per switch, attached to each 2T cell.
  for (std::size_t pi = 0; pi < patterns.size(); ++pi) {
    for (std::size_t si = 0; si < sizes.size(); ++si) {
      const exp::CellOutcome& r1 = out.at({pi, si, 0});
      exp::CellOutcome& r2 = out.at({pi, si, 1});
      if (!r1.ran() || !r2.ran()) continue;
      const auto switches =
          std::max<std::uint64_t>(1, r2.run.stats.context_switches);
      r2.set("indirect_cost_us",
             to_us(r2.run.exec_time - r1.run.exec_time) /
                 static_cast<double>(switches));
    }
  }

  std::vector<std::string> headers = {"array size"};
  for (const auto& p : pattern_labels) headers.push_back(p);
  metrics::TablePrinter t(headers);
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    std::vector<std::string> row;
    row.push_back(size_labels[si]);
    for (std::size_t pi = 0; pi < patterns.size(); ++pi) {
      const exp::CellOutcome& o = out.at({pi, si, 1});
      row.push_back(o.ran()
                        ? metrics::TablePrinter::num(o.value("indirect_cost_us"))
                        : "-");
    }
    t.add_row(row);
  }
  t.print();

  exp::ResultDoc doc(spec.id, cli.scale, cli.seed);
  doc.add_sweep(sweep, out);
  bool ok = bench::write_results(cli, doc);
  if (cli.metrics) {
    ok = bench::check_sweep_metrics(out, cli) && ok;
  }
  return ok ? 0 : 1;
}
