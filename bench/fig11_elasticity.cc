// Figure 11: exploiting CPU elasticity. Five benchmarks with distinct
// characteristics start on 8 cores; the core count is changed at runtime to
// 2..32. Configurations: #core-matched threads (vanilla), 8T (vanilla),
// 32T (vanilla), 32T pinned, 32T optimized.
// Expected: with VB, 32 threads is never worse than 8 threads and scales to
// 32 cores; pinning cannot adapt (paper: programs crashed when the core
// count decreased — reported here as "crash"), and leaves added cores unused.
#include <iostream>
#include <memory>

#include "bench_util.h"
#include "runtime/sim_thread.h"
#include "workloads/suite.h"

using namespace eo;

namespace {

struct Cfg {
  const char* label;
  int threads;  // 0 = match core count
  bool pinned;
  bool optimized;
};

const std::vector<Cfg> kCfgs = {
    {"#core-T(vanilla)", 0, false, false},
    {"8T(vanilla)", 8, false, false},
    {"32T(vanilla)", 32, false, false},
    {"32T(pinned)", 32, true, false},
    {"32T(optimized)", 32, false, true},
};

// Drives the kernel manually: boot on 8 cores, resize at runtime.
exp::CellRun run_one(const workloads::BenchmarkSpec& spec, int threads,
                     int cores, bool pinned, const metrics::RunConfig& cfg,
                     std::uint64_t seed, double scale) {
  auto kc = metrics::make_kernel_config(cfg);
  kern::Kernel k(kc);
  k.set_online_cores(8);  // startup allocation
  workloads::spawn_benchmark(k, spec, threads, seed, scale);
  if (pinned) {
    // Pin threads round-robin over the startup cores.
    int i = 0;
    for (const auto& t : k.tasks()) {
      k.pin_task(t.get(), i++ % 8);
    }
  }
  // The provider resizes the container shortly after startup.
  k.run_until(5_ms);
  if (cores != 8) k.set_online_cores(cores);
  const bool done = k.run_to_exit(cfg.deadline);
  exp::CellRun res;
  res.run.completed = done;
  res.run.exec_time = done ? k.last_exit_time() : k.now();
  res.run.stats = k.stats();
  res.run.pinned_violation = k.pinned_violation();
  if (k.sampler().enabled()) {
    res.run.metrics = std::make_shared<obs::MetricsDoc>(k.snapshot_metrics());
  }
  // Pinning to a core that is taken away kills the run in practice.
  res.set("crashed", pinned && k.pinned_violation() ? 1.0 : 0.0);
  if (pinned && k.pinned_violation()) {
    // A crashed run is terminal — the deadline retry loop must not rerun it.
    res.run.completed = true;
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::CliSpec spec{
      .id = "fig11_elasticity",
      .summary = "runtime core-count adaptation (exec time, ms)",
      .default_scale = 0.15};
  const bench::Cli cli = bench::Cli::parse(argc, argv, spec);

  const std::vector<std::string> names = {"ep", "facesim", "streamcluster",
                                          "ocean", "cg"};
  const std::vector<int> cores = {2, 4, 8, 16, 32};
  std::vector<std::string> cfg_labels;
  for (const auto& c : kCfgs) cfg_labels.emplace_back(c.label);
  std::vector<std::string> core_labels;
  for (const int c : cores) core_labels.push_back(std::to_string(c) + "c");

  metrics::RunConfig base;
  base.cpus = 32;  // machine capacity; the container is resized at runtime
  base.sockets = 2;
  base.deadline = 600_s;
  bench::apply_metrics(cli, &base);
  bench::apply_sched(cli, &base);

  exp::Sweep sweep("elasticity");
  sweep.base(base)
      .axis("benchmark", names)
      .axis("config", cfg_labels,
            [](metrics::RunConfig& rc, std::size_t ci) {
              rc.features = kCfgs[ci].optimized ? core::Features::optimized()
                                                : core::Features::vanilla();
            })
      .axis("cores", core_labels);

  exp::ExperimentRunner runner(sweep, cli.runner_options());
  if (cli.list) {
    runner.list(std::cout);
    return 0;
  }

  bench::print_header("Figure 11",
                      "runtime core-count adaptation (exec time, ms)");
  const exp::Outcomes out = runner.run(
      [&](const exp::Cell& cell, const metrics::RunConfig& cfg) {
        const auto& bspec = workloads::find_benchmark(names[cell.at(0)]);
        const Cfg& c = kCfgs[cell.at(1)];
        const int n_cores = cores[cell.at(2)];
        const int threads = c.threads == 0 ? n_cores : c.threads;
        metrics::RunConfig rc = cfg;
        rc.ref_footprint = bspec.ref_footprint();
        return run_one(bspec, threads, n_cores, c.pinned, rc, cli.seed,
                       cli.scale);
      });

  for (std::size_t bi = 0; bi < names.size(); ++bi) {
    std::printf("\n--- %s ---\n", names[bi].c_str());
    std::vector<std::string> headers = {"config"};
    for (int c : cores) headers.push_back(std::to_string(c) + " cores");
    metrics::TablePrinter t(headers);
    for (std::size_t ci = 0; ci < kCfgs.size(); ++ci) {
      std::vector<std::string> row = {kCfgs[ci].label};
      for (std::size_t ki = 0; ki < cores.size(); ++ki) {
        const exp::CellOutcome& o = out.at({bi, ci, ki});
        if (!o.ran()) {
          row.push_back("-");
        } else if (o.value("crashed") > 0) {
          row.push_back("crash");
        } else {
          row.push_back(metrics::TablePrinter::num(o.ms(), 1));
        }
      }
      t.add_row(row);
    }
    t.print();
  }

  exp::ResultDoc doc(spec.id, cli.scale, cli.seed);
  doc.add_sweep(sweep, out);
  bool ok = bench::write_results(cli, doc);
  if (cli.metrics) {
    ok = bench::check_sweep_metrics(out, cli) && ok;
  }
  return ok ? 0 : 1;
}
