// Figure 11: exploiting CPU elasticity. Five benchmarks with distinct
// characteristics start on 8 cores; the core count is changed at runtime to
// 2..32. Configurations: #core-matched threads (vanilla), 8T (vanilla),
// 32T (vanilla), 32T pinned, 32T optimized.
// Expected: with VB, 32 threads is never worse than 8 threads and scales to
// 32 cores; pinning cannot adapt (paper: programs crashed when the core
// count decreased — reported here as "crash"), and leaves added cores unused.
#include "bench_util.h"
#include "common/thread_pool.h"
#include "runtime/sim_thread.h"
#include "workloads/suite.h"

using namespace eo;

namespace {

struct Result {
  double ms = 0;
  bool crashed = false;
};

Result run_one(const workloads::BenchmarkSpec& spec, int threads, int cores,
               bool pinned, bool optimized, double scale) {
  metrics::RunConfig rc;
  rc.cpus = 32;  // machine capacity; the container is resized below
  rc.sockets = 2;
  rc.features = optimized ? core::Features::optimized()
                          : core::Features::vanilla();
  rc.ref_footprint = spec.ref_footprint();
  auto kc = metrics::make_kernel_config(rc);
  kern::Kernel k(kc);
  k.set_online_cores(8);  // startup allocation
  workloads::spawn_benchmark(k, spec, threads, 7, scale);
  if (pinned) {
    // Pin threads round-robin over the startup cores.
    int i = 0;
    for (const auto& t : k.tasks()) {
      k.pin_task(t.get(), i++ % 8);
    }
  }
  // The provider resizes the container shortly after startup.
  k.run_until(5_ms);
  if (cores != 8) k.set_online_cores(cores);
  Result res;
  const bool done = k.run_to_exit(600_s);
  res.ms = to_ms(done ? k.last_exit_time() : k.now());
  // Pinning to a core that is taken away kills the run in practice.
  res.crashed = pinned && k.pinned_violation();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::parse_scale(argc, argv, 0.15);
  bench::print_header("Figure 11", "runtime core-count adaptation (exec time, ms)");

  const std::vector<std::string> names = {"ep", "facesim", "streamcluster",
                                          "ocean", "cg"};
  const std::vector<int> cores = {2, 4, 8, 16, 32};
  struct Cfg {
    const char* label;
    int threads;  // 0 = match core count
    bool pinned;
    bool optimized;
  };
  const std::vector<Cfg> cfgs = {
      {"#core-T(vanilla)", 0, false, false},
      {"8T(vanilla)", 8, false, false},
      {"32T(vanilla)", 32, false, false},
      {"32T(pinned)", 32, true, false},
      {"32T(optimized)", 32, false, true},
  };

  for (const auto& name : names) {
    const auto& spec = workloads::find_benchmark(name);
    std::vector<std::vector<Result>> grid(
        cfgs.size(), std::vector<Result>(cores.size()));
    ThreadPool::parallel_for(cfgs.size() * cores.size(), [&](std::size_t job) {
      const auto ci = job / cores.size();
      const auto ki = job % cores.size();
      const int threads = cfgs[ci].threads == 0 ? cores[ki] : cfgs[ci].threads;
      grid[ci][ki] = run_one(spec, threads, cores[ki], cfgs[ci].pinned,
                             cfgs[ci].optimized, scale);
    });
    std::printf("\n--- %s ---\n", name.c_str());
    std::vector<std::string> headers = {"config"};
    for (int c : cores) headers.push_back(std::to_string(c) + " cores");
    metrics::TablePrinter t(headers);
    for (std::size_t ci = 0; ci < cfgs.size(); ++ci) {
      std::vector<std::string> row = {cfgs[ci].label};
      for (std::size_t ki = 0; ki < cores.size(); ++ki) {
        row.push_back(grid[ci][ki].crashed
                          ? "crash"
                          : metrics::TablePrinter::num(grid[ci][ki].ms, 1));
      }
      t.add_row(row);
    }
    t.print();
  }
  return 0;
}
