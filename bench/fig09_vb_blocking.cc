// Figure 9: virtual blocking on the 13 blocking-synchronization benchmarks
// that suffer under oversubscription, on 8 cores and on 8 hyper-threads of 4
// cores. Expected: 32T(vanilla) is 5.5%-56.7% slower than 8T(vanilla);
// 32T(optimized) is close to the 8T baseline, and for freqmine/ocean/cg/mg
// even beats it; fluidanimate keeps a residual slowdown (its lock count
// scales with the thread count).
#include <iostream>

#include "bench_util.h"
#include "workloads/suite.h"

using namespace eo;

namespace {

// Representative traced configuration: "cg" at 32 threads (optimized) on 8
// cores. cg mixes futex blocking (so VB parks and flag-check quanta appear)
// with tight spin loops (so BWD samples and deschedules appear), making its
// trace exercise every subsystem the figure is about.
bool run_traced(const bench::Cli& cli) {
  const auto& spec = workloads::find_benchmark("cg");
  metrics::RunConfig rc;
  rc.cpus = 8;
  rc.sockets = 2;
  rc.sched = cli.sched;
  rc.features = core::Features::optimized();
  rc.ref_footprint = spec.ref_footprint();
  rc.deadline = 600_s;
  rc.trace.enabled = true;
  rc.trace.ring_capacity = 1u << 20;
  const auto r = metrics::run_experiment(rc, [&](kern::Kernel& k) {
    workloads::spawn_benchmark(k, spec, 32, cli.seed, cli.scale);
  });
  std::printf("traced run: cg 32T(opt-8c) exec=%s ms\n",
              bench::ms(r.exec_time).c_str());
  return bench::export_and_check_trace(
      r, cli,
      {trace::EventKind::kSwitchIn, trace::EventKind::kFutexWait,
       trace::EventKind::kFutexWake, trace::EventKind::kVbSkipQuantum,
       trace::EventKind::kBwdDesched});
}

struct Config {
  int threads;
  bool optimized;
  bool smt;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::CliSpec spec{
      .id = "fig09_vb_blocking",
      .summary = "VB on blocking benchmarks (normalized to 8T vanilla)",
      .default_scale = 0.2,
      .supports_trace = true};
  const bench::Cli cli = bench::Cli::parse(argc, argv, spec);
  if (cli.tracing()) {
    if (!run_traced(cli)) return 1;
    if (cli.trace_only) return 0;
  }

  const auto names = workloads::fig9_benchmarks();
  const std::vector<Config> configs = {
      {8, false, false},  {32, false, false}, {32, true, false},
      {8, false, true},   {32, false, true},  {32, true, true},
  };
  const std::vector<std::string> config_labels = {
      "8T(van-8c)", "32T(van-8c)", "32T(opt-8c)",
      "8T(van-8ht)", "32T(van-8ht)", "32T(opt-8ht)"};

  metrics::RunConfig base;
  base.cpus = 8;
  base.sockets = 2;
  base.deadline = 600_s;
  bench::apply_metrics(cli, &base);
  bench::apply_sched(cli, &base);

  exp::Sweep sweep("vb_blocking");
  sweep.base(base)
      .axis("benchmark", names)
      .axis("config", config_labels,
            [&](metrics::RunConfig& rc, std::size_t ci) {
              rc.smt = configs[ci].smt;
              rc.features = configs[ci].optimized
                                ? core::Features::optimized()
                                : core::Features::vanilla();
            });

  exp::ExperimentRunner runner(sweep, cli.runner_options());
  if (cli.list) {
    runner.list(std::cout);
    return 0;
  }

  bench::print_header("Figure 9",
                      "VB on blocking benchmarks (normalized to 8T vanilla)");
  const exp::Outcomes out = runner.run(
      [&](const exp::Cell& cell, const metrics::RunConfig& cfg) {
        const auto& bspec = workloads::find_benchmark(names[cell.at(0)]);
        const int threads = configs[cell.at(1)].threads;
        metrics::RunConfig rc = cfg;
        rc.ref_footprint = bspec.ref_footprint();
        return metrics::run_experiment(rc, [&](kern::Kernel& k) {
          workloads::spawn_benchmark(k, bspec, threads, cli.seed, cli.scale);
        });
      });

  metrics::TablePrinter table({"benchmark", "8T(van-8c)", "32T(van-8c)",
                               "32T(opt-8c)", "8T(van-8ht)", "32T(van-8ht)",
                               "32T(opt-8ht)"});
  for (std::size_t bi = 0; bi < names.size(); ++bi) {
    if (!out.at({bi, 0}).ran()) continue;
    const double base_c = out.at({bi, 0}).ms();
    std::vector<std::string> row = {names[bi]};
    for (std::size_t ci = 0; ci < configs.size(); ++ci) {
      const auto& o = out.at({bi, ci});
      row.push_back(o.ran() ? metrics::TablePrinter::num(o.ms() / base_c)
                            : "-");
    }
    table.add_row(row);
  }
  table.print();
  std::printf("(columns normalized to 8T vanilla on 8 full cores)\n");

  exp::ResultDoc doc(spec.id, cli.scale, cli.seed);
  doc.add_sweep(sweep, out);
  bool ok = bench::write_results(cli, doc);
  if (cli.metrics) {
    ok = bench::check_sweep_metrics(out, cli) && ok;
  }
  return ok ? 0 : 1;
}
