// Figure 9: virtual blocking on the 13 blocking-synchronization benchmarks
// that suffer under oversubscription, on 8 cores and on 8 hyper-threads of 4
// cores. Expected: 32T(vanilla) is 5.5%-56.7% slower than 8T(vanilla);
// 32T(optimized) is close to the 8T baseline, and for freqmine/ocean/cg/mg
// even beats it; fluidanimate keeps a residual slowdown (its lock count
// scales with the thread count).
#include "bench_util.h"
#include "common/thread_pool.h"
#include "workloads/suite.h"

using namespace eo;

namespace {

// Representative traced configuration: "cg" at 32 threads (optimized) on 8
// cores. cg mixes futex blocking (so VB parks and flag-check quanta appear)
// with tight spin loops (so BWD samples and deschedules appear), making its
// trace exercise every subsystem the figure is about.
bool run_traced(const bench::BenchArgs& args, double scale) {
  const auto& spec = workloads::find_benchmark("cg");
  metrics::RunConfig rc;
  rc.cpus = 8;
  rc.sockets = 2;
  rc.features = core::Features::optimized();
  rc.ref_footprint = spec.ref_footprint();
  rc.deadline = 600_s;
  rc.trace.enabled = true;
  rc.trace.ring_capacity = 1u << 20;
  const auto r = metrics::run_experiment(rc, [&](kern::Kernel& k) {
    workloads::spawn_benchmark(k, spec, 32, 7, scale);
  });
  std::printf("traced run: cg 32T(opt-8c) exec=%s ms\n",
              bench::ms(r.exec_time).c_str());
  return bench::export_and_check_trace(
      r, args,
      {trace::EventKind::kSwitchIn, trace::EventKind::kFutexWait,
       trace::EventKind::kFutexWake, trace::EventKind::kVbSkipQuantum,
       trace::EventKind::kBwdDesched});
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv, 0.2);
  const double scale = args.scale;
  if (args.tracing()) {
    if (!run_traced(args, scale)) return 1;
    if (args.trace_only) return 0;
  }
  bench::print_header("Figure 9",
                      "VB on blocking benchmarks (normalized to 8T vanilla)");

  const auto names = workloads::fig9_benchmarks();
  struct Config {
    int threads;
    bool optimized;
    bool smt;
  };
  const std::vector<Config> configs = {
      {8, false, false},  {32, false, false}, {32, true, false},
      {8, false, true},   {32, false, true},  {32, true, true},
  };
  std::vector<std::vector<double>> t(names.size(),
                                     std::vector<double>(configs.size(), 0));

  ThreadPool::parallel_for(names.size() * configs.size(), [&](std::size_t job) {
    const auto bi = job / configs.size();
    const auto ci = job % configs.size();
    const auto& spec = workloads::find_benchmark(names[bi]);
    metrics::RunConfig rc;
    rc.cpus = 8;
    rc.sockets = 2;
    rc.smt = configs[ci].smt;
    rc.features = configs[ci].optimized ? core::Features::optimized()
                                        : core::Features::vanilla();
    rc.ref_footprint = spec.ref_footprint();
    rc.deadline = 600_s;
    const auto r = metrics::run_experiment(rc, [&](kern::Kernel& k) {
      workloads::spawn_benchmark(k, spec, configs[ci].threads, 7, scale);
    });
    t[bi][ci] = to_ms(r.exec_time);
  });

  metrics::TablePrinter table({"benchmark", "8T(van-8c)", "32T(van-8c)",
                               "32T(opt-8c)", "8T(van-8ht)", "32T(van-8ht)",
                               "32T(opt-8ht)"});
  for (std::size_t bi = 0; bi < names.size(); ++bi) {
    const double base_c = t[bi][0];
    const double base_ht = t[bi][3];
    table.add_row({names[bi], metrics::TablePrinter::num(1.0),
                   metrics::TablePrinter::num(t[bi][1] / base_c),
                   metrics::TablePrinter::num(t[bi][2] / base_c),
                   metrics::TablePrinter::num(base_ht / base_c),
                   metrics::TablePrinter::num(t[bi][4] / base_c),
                   metrics::TablePrinter::num(t[bi][5] / base_c)});
  }
  table.print();
  std::printf("(columns normalized to 8T vanilla on 8 full cores)\n");
  return 0;
}
