// Figure 2: the direct cost of context switching.
//  (a) pure computation: N threads share one core, yielding every 750 µs;
//      the per-context-switch cost should be ~1.5 µs and the total overhead
//      ~0.2%, flat in the thread count.
//  (b) computation with synchronization: one shared atomic fetch-add per
//      chunk adds no extra oversubscription overhead.
#include <iostream>

#include "bench_util.h"
#include "workloads/microbench.h"

using namespace eo;

namespace {

// Traced configuration: 8 threads time-sharing one core with a shared
// atomic per chunk — a dense stream of context switches and wakeups.
bool run_traced(const bench::Cli& cli) {
  metrics::RunConfig rc;
  rc.cpus = 1;
  rc.sockets = 1;
  rc.sched = cli.sched;
  rc.deadline = 600_s;
  rc.trace.enabled = true;
  rc.trace.ring_capacity = 1u << 20;
  const auto work = static_cast<SimDuration>(2_s * cli.scale);
  const auto r = metrics::run_experiment(rc, [&](kern::Kernel& k) {
    workloads::spawn_compute_atomic(k, 8, work, 750_us);
  });
  std::printf("traced run: 8T atomic-yield on 1 core exec=%s ms\n",
              bench::ms(r.exec_time).c_str());
  return bench::export_and_check_trace(
      r, cli, {trace::EventKind::kSwitchIn, trace::EventKind::kSwitchOut});
}

}  // namespace

int main(int argc, char** argv) {
  const bench::CliSpec spec{
      .id = "fig02_direct_cost",
      .summary = "direct context-switch cost, 1..8 threads on 1 core",
      .default_scale = 1.0,
      .supports_trace = true};
  const bench::Cli cli = bench::Cli::parse(argc, argv, spec);
  if (cli.tracing()) {
    if (!run_traced(cli)) return 1;
    if (cli.trace_only) return 0;
  }

  metrics::RunConfig base;
  base.cpus = 1;
  base.sockets = 1;
  base.deadline = 600_s;
  bench::apply_metrics(cli, &base);
  bench::apply_sched(cli, &base);

  std::vector<std::string> thread_labels;
  for (int t = 1; t <= 8; ++t) thread_labels.push_back(std::to_string(t) + "T");

  exp::Sweep sweep("direct_cost");
  sweep.base(base)
      .axis("variant", {"pure", "atomic"})
      .axis("threads", thread_labels);

  exp::ExperimentRunner runner(sweep, cli.runner_options());
  if (cli.list) {
    runner.list(std::cout);
    return 0;
  }

  const auto work = static_cast<SimDuration>(2_s * cli.scale);
  exp::Outcomes out = runner.run(
      [&](const exp::Cell& cell, const metrics::RunConfig& cfg) {
        const bool with_atomic = cell.at(0) == 1;
        const int threads = static_cast<int>(cell.at(1)) + 1;
        return metrics::run_experiment(cfg, [&](kern::Kernel& k) {
          if (with_atomic) {
            workloads::spawn_compute_atomic(k, threads, work, 750_us);
          } else {
            workloads::spawn_compute_yield(k, threads, work, 750_us);
          }
        });
      });

  // Derived values: execution time normalized to the 1-thread cell of the
  // same variant, and the measured direct cost per context switch.
  for (std::size_t v = 0; v < 2; ++v) {
    const exp::CellOutcome& base_cell = out.at({v, 0});
    if (!base_cell.ran()) continue;
    const double t1 = base_cell.ms();
    for (std::size_t t = 0; t < thread_labels.size(); ++t) {
      exp::CellOutcome& o = out.at({v, t});
      if (!o.ran()) continue;
      const auto switches = o.run.stats.context_switches;
      o.set("normalized", o.ms() / t1);
      o.set("per_cs_us", switches > 0 ? (o.ms() - t1) * 1000.0 /
                                            static_cast<double>(switches)
                                      : 0.0);
    }
  }

  const auto print_variant = [&](std::size_t v, const char* header,
                                 const char* what) {
    bench::print_header(header, what);
    metrics::TablePrinter t({"threads", "normalized", "per-CS cost (us)"});
    for (std::size_t i = 0; i < thread_labels.size(); ++i) {
      const exp::CellOutcome& o = out.at({v, i});
      if (!o.ran()) continue;
      t.add_row({std::to_string(i + 1),
                 metrics::TablePrinter::num(o.value("normalized"), 3),
                 metrics::TablePrinter::num(o.value("per_cs_us"))});
    }
    t.print();
  };
  print_variant(0, "Figure 2(a)", "pure computation, yield every 750us, 1 core");
  print_variant(1, "Figure 2(b)",
                "computation with shared atomic fetch-add per chunk");

  exp::ResultDoc doc(spec.id, cli.scale, cli.seed);
  doc.add_sweep(sweep, out);
  bool ok = bench::write_results(cli, doc);
  if (cli.metrics) {
    ok = bench::check_sweep_metrics(out, cli) && ok;
  }
  return ok ? 0 : 1;
}
