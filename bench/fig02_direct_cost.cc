// Figure 2: the direct cost of context switching.
//  (a) pure computation: N threads share one core, yielding every 750 µs;
//      the per-context-switch cost should be ~1.5 µs and the total overhead
//      ~0.2%, flat in the thread count.
//  (b) computation with synchronization: one shared atomic fetch-add per
//      chunk adds no extra oversubscription overhead.
#include "bench_util.h"
#include "workloads/microbench.h"

using namespace eo;

namespace {

struct Point {
  int threads;
  double norm;          // execution time normalized to 1 thread
  double per_cs_us;     // measured direct cost per context switch
};

std::vector<Point> run_variant(bool with_atomic, SimDuration total_work,
                               double scale) {
  const auto work = static_cast<SimDuration>(total_work * scale);
  std::vector<Point> out;
  double t1 = 0;
  for (int threads = 1; threads <= 8; ++threads) {
    metrics::RunConfig rc;
    rc.cpus = 1;
    rc.sockets = 1;
    rc.deadline = 600_s;
    const auto r = metrics::run_experiment(rc, [&](kern::Kernel& k) {
      if (with_atomic) {
        workloads::spawn_compute_atomic(k, threads, work, 750_us);
      } else {
        workloads::spawn_compute_yield(k, threads, work, 750_us);
      }
    });
    const double t = to_ms(r.exec_time);
    if (threads == 1) t1 = t;
    const auto switches = r.stats.context_switches;
    const double per_cs =
        switches > 0 ? (t - t1) * 1000.0 / static_cast<double>(switches) : 0.0;
    out.push_back({threads, t / t1, per_cs});
  }
  return out;
}

// Traced configuration: 8 threads time-sharing one core with a shared
// atomic per chunk — a dense stream of context switches and wakeups.
bool run_traced(const bench::BenchArgs& args, double scale) {
  metrics::RunConfig rc;
  rc.cpus = 1;
  rc.sockets = 1;
  rc.deadline = 600_s;
  rc.trace.enabled = true;
  rc.trace.ring_capacity = 1u << 20;
  const auto work = static_cast<SimDuration>(2_s * scale);
  const auto r = metrics::run_experiment(rc, [&](kern::Kernel& k) {
    workloads::spawn_compute_atomic(k, 8, work, 750_us);
  });
  std::printf("traced run: 8T atomic-yield on 1 core exec=%s ms\n",
              bench::ms(r.exec_time).c_str());
  return bench::export_and_check_trace(
      r, args, {trace::EventKind::kSwitchIn, trace::EventKind::kSwitchOut});
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv, 1.0);
  const double scale = args.scale;
  if (args.tracing()) {
    if (!run_traced(args, scale)) return 1;
    if (args.trace_only) return 0;
  }
  bench::print_header("Figure 2(a)", "pure computation, yield every 750us, 1 core");
  {
    metrics::TablePrinter t({"threads", "normalized", "per-CS cost (us)"});
    for (const auto& p : run_variant(false, 2_s, scale)) {
      t.add_row({std::to_string(p.threads), metrics::TablePrinter::num(p.norm, 3),
                 metrics::TablePrinter::num(p.per_cs_us)});
    }
    t.print();
  }
  bench::print_header("Figure 2(b)",
                      "computation with shared atomic fetch-add per chunk");
  {
    metrics::TablePrinter t({"threads", "normalized", "per-CS cost (us)"});
    for (const auto& p : run_variant(true, 2_s, scale)) {
      t.add_row({std::to_string(p.threads), metrics::TablePrinter::num(p.norm, 3),
                 metrics::TablePrinter::num(p.per_cs_us)});
    }
    t.print();
  }
  return 0;
}
