// Figure 15: comparison with SHFLLOCK and the spin-then-park locks (Mutexee,
// MCS-TP) on five lock-intensive benchmark configurations at an
// oversubscription ratio of 4 (32 threads, 8 cores). The pthreads primitives
// are swapped for each library lock (all on the vanilla kernel); "optimized"
// is unmodified pthreads on the VB+BWD kernel.
// Expected: the spin-then-park locks still collapse (they spin away slices
// and park through the vanilla futex); SHFLLOCK is no better (bulk wakeups,
// NUMA-preferential wakes); the kernel-side fix wins by up to ~5x.
#include "bench_util.h"
#include "common/thread_pool.h"
#include "locks/blocking_locks.h"
#include "runtime/sim_thread.h"
#include "workloads/suite.h"

using namespace eo;
using runtime::Env;
using runtime::SimThread;

namespace {

/// Lock-substituted benchmark body: per round, compute a short parallel
/// chunk then run a critical section under the library lock. The grain is
/// finer than the benchmark's own (the paper replaced *all* pthread
/// primitives, making the lock the bottleneck at ratio 4).
void spawn_locked_benchmark(kern::Kernel& k,
                            const workloads::BenchmarkSpec& spec,
                            int n_threads,
                            std::shared_ptr<locks::BlockingLock> lock,
                            double scale) {
  const int rounds = std::max(
      1, static_cast<int>(8 * spec.rounds * scale));
  const SimDuration chunk = std::max<SimDuration>(
      1000, spec.interval * spec.opt_threads / n_threads / 8);
  for (int i = 0; i < n_threads; ++i) {
    runtime::spawn(
        k, spec.name + "-" + std::to_string(i),
        [lock, i, rounds, chunk](Env env) -> SimThread {
          for (int r = 0; r < rounds; ++r) {
            co_await env.compute(chunk);
            co_await lock->lock(env, i);
            co_await env.compute(3_us);
            co_await lock->unlock(env, i);
          }
          co_return;
        });
  }
}

double run_one(const workloads::BenchmarkSpec& spec,
               locks::BlockingLockKind kind, bool optimized, double scale) {
  metrics::RunConfig rc;
  rc.cpus = 8;
  rc.sockets = 2;
  rc.features =
      optimized ? core::Features::optimized() : core::Features::vanilla();
  rc.ref_footprint = spec.ref_footprint();
  rc.deadline = 2000_s;
  const auto r = metrics::run_experiment(rc, [&](kern::Kernel& k) {
    auto lock = std::shared_ptr<locks::BlockingLock>(
        locks::make_blocking_lock(kind, k, 32));
    spawn_locked_benchmark(k, spec, 32, std::move(lock), scale);
  });
  return to_ms(r.exec_time);
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::parse_scale(argc, argv, 0.25);
  bench::print_header(
      "Figure 15",
      "SHFLLOCK / spin-then-park locks vs our approach, 32T on 8 cores "
      "(normalized to optimized)");

  const std::vector<std::string> names = {"freqmine", "streamcluster", "lu_cb",
                                          "ocean", "radix"};
  struct Cfg {
    const char* label;
    locks::BlockingLockKind kind;
    bool optimized;
  };
  const std::vector<Cfg> cfgs = {
      {"pthread", locks::BlockingLockKind::kPthreadMutex, false},
      {"mutexee", locks::BlockingLockKind::kMutexee, false},
      {"mcstp", locks::BlockingLockKind::kMcsTp, false},
      {"shfllock", locks::BlockingLockKind::kShflLock, false},
      {"optimized", locks::BlockingLockKind::kPthreadMutex, true},
  };

  std::vector<std::vector<double>> t(names.size(),
                                     std::vector<double>(cfgs.size()));
  ThreadPool::parallel_for(names.size() * cfgs.size(), [&](std::size_t job) {
    const auto bi = job / cfgs.size();
    const auto ci = job % cfgs.size();
    t[bi][ci] = run_one(workloads::find_benchmark(names[bi]), cfgs[ci].kind,
                        cfgs[ci].optimized, scale);
  });

  std::vector<std::string> headers = {"benchmark"};
  for (const auto& c : cfgs) headers.emplace_back(c.label);
  metrics::TablePrinter table(headers);
  for (std::size_t bi = 0; bi < names.size(); ++bi) {
    std::vector<std::string> row = {names[bi]};
    const double base = t[bi].back();  // normalized to optimized
    for (std::size_t ci = 0; ci < cfgs.size(); ++ci) {
      row.push_back(metrics::TablePrinter::num(t[bi][ci] / base));
    }
    table.add_row(row);
  }
  table.print();
  return 0;
}
