// Figure 15: comparison with SHFLLOCK and the spin-then-park locks (Mutexee,
// MCS-TP) on five lock-intensive benchmark configurations at an
// oversubscription ratio of 4 (32 threads, 8 cores). The pthreads primitives
// are swapped for each library lock (all on the vanilla kernel); "optimized"
// is unmodified pthreads on the VB+BWD kernel.
// Expected: the spin-then-park locks still collapse (they spin away slices
// and park through the vanilla futex); SHFLLOCK is no better (bulk wakeups,
// NUMA-preferential wakes); the kernel-side fix wins by up to ~5x.
#include <iostream>

#include "bench_util.h"
#include "locks/blocking_locks.h"
#include "runtime/sim_thread.h"
#include "workloads/suite.h"

using namespace eo;
using runtime::Env;
using runtime::SimThread;

namespace {

/// Lock-substituted benchmark body: per round, compute a short parallel
/// chunk then run a critical section under the library lock. The grain is
/// finer than the benchmark's own (the paper replaced *all* pthread
/// primitives, making the lock the bottleneck at ratio 4).
void spawn_locked_benchmark(kern::Kernel& k,
                            const workloads::BenchmarkSpec& spec,
                            int n_threads,
                            std::shared_ptr<locks::BlockingLock> lock,
                            double scale) {
  const int rounds = std::max(
      1, static_cast<int>(8 * spec.rounds * scale));
  const SimDuration chunk = std::max<SimDuration>(
      1000, spec.interval * spec.opt_threads / n_threads / 8);
  for (int i = 0; i < n_threads; ++i) {
    runtime::spawn(
        k, spec.name + "-" + std::to_string(i),
        [lock, i, rounds, chunk](Env env) -> SimThread {
          for (int r = 0; r < rounds; ++r) {
            co_await env.compute(chunk);
            co_await lock->lock(env, i);
            co_await env.compute(3_us);
            co_await lock->unlock(env, i);
          }
          co_return;
        });
  }
}

struct Cfg {
  const char* label;
  locks::BlockingLockKind kind;
  bool optimized;
};

const std::vector<Cfg> kCfgs = {
    {"pthread", locks::BlockingLockKind::kPthreadMutex, false},
    {"mutexee", locks::BlockingLockKind::kMutexee, false},
    {"mcstp", locks::BlockingLockKind::kMcsTp, false},
    {"shfllock", locks::BlockingLockKind::kShflLock, false},
    {"optimized", locks::BlockingLockKind::kPthreadMutex, true},
};

}  // namespace

int main(int argc, char** argv) {
  const bench::CliSpec spec{
      .id = "fig15_shfllock",
      .summary =
          "SHFLLOCK / spin-then-park locks vs our approach, 32T on 8 cores",
      .default_scale = 0.25};
  const bench::Cli cli = bench::Cli::parse(argc, argv, spec);

  const std::vector<std::string> names = {"freqmine", "streamcluster", "lu_cb",
                                          "ocean", "radix"};
  std::vector<std::string> cfg_labels;
  for (const auto& c : kCfgs) cfg_labels.emplace_back(c.label);

  metrics::RunConfig base;
  base.cpus = 8;
  base.sockets = 2;
  base.deadline = 2000_s;
  bench::apply_metrics(cli, &base);
  bench::apply_sched(cli, &base);

  exp::Sweep sweep("shfllock");
  sweep.base(base)
      .axis("benchmark", names)
      .axis("lock", cfg_labels,
            [](metrics::RunConfig& rc, std::size_t ci) {
              rc.features = kCfgs[ci].optimized ? core::Features::optimized()
                                                : core::Features::vanilla();
            });

  exp::ExperimentRunner runner(sweep, cli.runner_options());
  if (cli.list) {
    runner.list(std::cout);
    return 0;
  }

  bench::print_header(
      "Figure 15",
      "SHFLLOCK / spin-then-park locks vs our approach, 32T on 8 cores "
      "(normalized to optimized)");
  const exp::Outcomes out = runner.run(
      [&](const exp::Cell& cell, const metrics::RunConfig& cfg) {
        const auto& bspec = workloads::find_benchmark(names[cell.at(0)]);
        const Cfg& c = kCfgs[cell.at(1)];
        metrics::RunConfig rc = cfg;
        rc.ref_footprint = bspec.ref_footprint();
        return metrics::run_experiment(rc, [&](kern::Kernel& k) {
          auto lock = std::shared_ptr<locks::BlockingLock>(
              locks::make_blocking_lock(c.kind, k, 32));
          spawn_locked_benchmark(k, bspec, 32, std::move(lock), cli.scale);
        });
      });

  std::vector<std::string> headers = {"benchmark"};
  for (const auto& c : kCfgs) headers.emplace_back(c.label);
  metrics::TablePrinter table(headers);
  for (std::size_t bi = 0; bi < names.size(); ++bi) {
    const exp::CellOutcome& opt = out.at({bi, kCfgs.size() - 1});
    if (!opt.ran()) continue;
    const double norm = opt.ms();  // normalized to optimized
    std::vector<std::string> row = {names[bi]};
    for (std::size_t ci = 0; ci < kCfgs.size(); ++ci) {
      const exp::CellOutcome& o = out.at({bi, ci});
      row.push_back(o.ran() ? metrics::TablePrinter::num(o.ms() / norm) : "-");
    }
    table.add_row(row);
  }
  table.print();

  exp::ResultDoc doc(spec.id, cli.scale, cli.seed);
  doc.add_sweep(sweep, out);
  bool ok = bench::write_results(cli, doc);
  if (cli.metrics) {
    ok = bench::check_sweep_metrics(out, cli) && ok;
  }
  return ok ? 0 : 1;
}
