// Ablation: BWD design choices (DESIGN.md Section 5).
//  (1) Heuristic ablation: which of the three signals (uniform LBR, zero L1D
//      misses, zero TLB misses) are needed? LBR alone has a measurable FP
//      rate on miss-free tight loops... actually tight loops defeat all
//      three; the misses distinguish ordinary code whose recent branches
//      happen to be uniform. We measure sensitivity/specificity per combo.
//  (2) Timer-interval sweep: detection latency vs timer overhead.
#include <iostream>

#include "bench_util.h"
#include "workloads/microbench.h"
#include "workloads/suite.h"

using namespace eo;

namespace {

struct Combo {
  const char* label;
  bool lbr, l1, tlb;
};

const std::vector<Combo> kCombos = {
    {"lbr-only", true, false, false},
    {"lbr+l1", true, true, false},
    {"lbr+tlb", true, false, true},
    {"all-three", true, true, true},
    {"misses-only", false, true, true},
};

const std::vector<SimDuration> kIntervals = {25_us, 50_us, 100_us,
                                             200_us, 400_us, 800_us};

}  // namespace

int main(int argc, char** argv) {
  const bench::CliSpec spec{
      .id = "ablation_bwd",
      .summary = "BWD heuristic-combination and timer-interval ablations",
      .default_scale = 0.3};
  const bench::Cli cli = bench::Cli::parse(argc, argv, spec);
  const double scale = cli.scale;

  // Sweep 1: heuristic combinations, each measured for sensitivity (spin
  // pair on one core) and specificity (blocking "is" at 32T on 8 cores).
  std::vector<std::string> combo_labels;
  for (const auto& c : kCombos) combo_labels.emplace_back(c.label);
  exp::Sweep sweep_h("heuristics");
  {
    metrics::RunConfig base;
    base.deadline = 600_s;
    bench::apply_metrics(cli, &base);
    bench::apply_sched(cli, &base);
    sweep_h.base(base)
        .axis("combo", combo_labels,
              [](metrics::RunConfig& rc, std::size_t ci) {
                core::Features f = core::Features::optimized();
                f.vb_futex = f.vb_epoll = false;
                f.bwd_use_lbr = kCombos[ci].lbr;
                f.bwd_use_l1 = kCombos[ci].l1;
                f.bwd_use_tlb = kCombos[ci].tlb;
                rc.features = f;
              })
        .axis("measure", {"sensitivity", "specificity"});
  }

  // Sweep 2: monitoring-interval sweep, with a no-BWD reference cell for the
  // timer-overhead column.
  std::vector<std::string> interval_labels;
  for (const auto iv : kIntervals) {
    interval_labels.push_back(std::to_string(iv / 1000) + "us");
  }
  exp::Sweep sweep_b("interval_baseline");
  {
    metrics::RunConfig base;
    base.cpus = 8;
    base.sockets = 2;
    base.deadline = 600_s;
    bench::apply_metrics(cli, &base);
    bench::apply_sched(cli, &base);
    sweep_b.base(base).axis("reference", {"ft-8T-nobwd"});
  }
  exp::Sweep sweep_i("interval");
  {
    metrics::RunConfig base;
    base.cpus = 8;
    base.sockets = 2;
    base.deadline = 2000_s;
    bench::apply_metrics(cli, &base);
    bench::apply_sched(cli, &base);
    sweep_i.base(base)
        .axis("interval", interval_labels,
              [](metrics::RunConfig& rc, std::size_t ii) {
                core::Features f;
                f.bwd = true;
                f.bwd_interval = kIntervals[ii];
                rc.features = f;
              })
        .axis("measure", {"lock", "overhead"});
  }

  exp::ExperimentRunner runner_h(sweep_h, cli.runner_options());
  exp::ExperimentRunner runner_b(sweep_b, cli.runner_options());
  exp::ExperimentRunner runner_i(sweep_i, cli.runner_options());
  if (cli.list) {
    runner_h.list(std::cout);
    runner_b.list(std::cout);
    runner_i.list(std::cout);
    return 0;
  }

  bench::print_header("Ablation (BWD)", "heuristic combinations");
  exp::Outcomes out_h = runner_h.run(
      [&](const exp::Cell& cell, const metrics::RunConfig& cfg) {
        const bool sens_run = cell.at(1) == 0;
        metrics::RunConfig rc = cfg;
        if (sens_run) {
          rc.cpus = 1;
          rc.sockets = 1;
          exp::CellRun r(metrics::run_experiment(rc, [&](kern::Kernel& k) {
            auto lock = std::shared_ptr<locks::SpinLock>(locks::make_spinlock(
                locks::SpinLockKind::kTicket, k, 2));
            workloads::spawn_tp_pair(
                k, lock, static_cast<SimDuration>(1_s * scale));
          }));
          r.set("sensitivity_pct", r.run.bwd.sensitivity() * 100.0);
          return r;
        }
        rc.cpus = 8;
        rc.sockets = 2;
        const auto& bspec = workloads::find_benchmark("is");
        rc.ref_footprint = bspec.ref_footprint();
        exp::CellRun r(metrics::run_experiment(rc, [&](kern::Kernel& k) {
          workloads::spawn_benchmark(k, bspec, 32, cli.seed, scale);
        }));
        r.set("specificity_pct", r.run.bwd.specificity() * 100.0);
        return r;
      });
  {
    metrics::TablePrinter t(
        {"heuristics", "sensitivity(%)", "specificity(%)"});
    for (std::size_t ci = 0; ci < kCombos.size(); ++ci) {
      const exp::CellOutcome& sens = out_h.at({ci, 0});
      const exp::CellOutcome& spc = out_h.at({ci, 1});
      t.add_row({kCombos[ci].label,
                 sens.ran()
                     ? metrics::TablePrinter::num(sens.value("sensitivity_pct"))
                     : "-",
                 spc.ran()
                     ? metrics::TablePrinter::num(spc.value("specificity_pct"))
                     : "-"});
    }
    t.print();
  }

  bench::print_header("Ablation (BWD)", "monitoring interval sweep");
  const auto run_ft = [&](const metrics::RunConfig& cfg) {
    const auto& bspec = workloads::find_benchmark("ft");
    metrics::RunConfig rc = cfg;
    rc.ref_footprint = bspec.ref_footprint();
    return metrics::run_experiment(rc, [&](kern::Kernel& k) {
      workloads::spawn_benchmark(k, bspec, 8, cli.seed, scale);
    });
  };
  exp::Outcomes out_b = runner_b.run(
      [&](const exp::Cell&, const metrics::RunConfig& cfg) {
        return run_ft(cfg);
      });
  const bool have_baseline = out_b.at({0}).ran();
  const double baseline_ms = have_baseline ? out_b.at({0}).ms() : 0.0;

  exp::Outcomes out_i = runner_i.run(
      [&](const exp::Cell& cell, const metrics::RunConfig& cfg) {
        const bool lock_run = cell.at(1) == 0;
        if (lock_run) {
          return exp::CellRun(
              metrics::run_experiment(cfg, [&](kern::Kernel& k) {
                auto lock = std::shared_ptr<locks::SpinLock>(
                    locks::make_spinlock(locks::SpinLockKind::kTicket, k, 32));
                workloads::spawn_lock_contention(
                    k, lock, 32, std::max(50, static_cast<int>(800 * scale)),
                    5_us, 15_us);
              }));
        }
        return exp::CellRun(run_ft(cfg));
      });
  // Timer overhead relative to the no-BWD reference.
  for (std::size_t ii = 0; ii < kIntervals.size() && have_baseline; ++ii) {
    exp::CellOutcome& o = out_i.at({ii, 1});
    if (!o.ran() || baseline_ms <= 0) continue;
    o.set("overhead_pct", (o.ms() - baseline_ms) / baseline_ms * 100.0);
  }
  {
    metrics::TablePrinter t({"interval(us)", "ticket-lock 32T (ms)",
                             "timer overhead on ft 8T (%)"});
    for (std::size_t ii = 0; ii < kIntervals.size(); ++ii) {
      const exp::CellOutcome& lock = out_i.at({ii, 0});
      const exp::CellOutcome& ovh = out_i.at({ii, 1});
      t.add_row({std::to_string(kIntervals[ii] / 1000),
                 lock.ran() ? metrics::TablePrinter::num(lock.ms(), 1) : "-",
                 ovh.ran() && have_baseline
                     ? metrics::TablePrinter::num(ovh.value("overhead_pct"))
                     : "-"});
    }
    t.print();
  }

  exp::ResultDoc doc(spec.id, cli.scale, cli.seed);
  doc.add_sweep(sweep_h, out_h);
  doc.add_sweep(sweep_b, out_b);
  doc.add_sweep(sweep_i, out_i);
  bool ok = bench::write_results(cli, doc);
  if (cli.metrics) {
    ok = bench::check_sweep_metrics(out_h, cli) &&
      bench::check_sweep_metrics(out_b, cli) &&
      bench::check_sweep_metrics(out_i, cli) && ok;
  }
  return ok ? 0 : 1;
}
