// Ablation: BWD design choices (DESIGN.md Section 5).
//  (1) Heuristic ablation: which of the three signals (uniform LBR, zero L1D
//      misses, zero TLB misses) are needed? LBR alone has a measurable FP
//      rate on miss-free tight loops... actually tight loops defeat all
//      three; the misses distinguish ordinary code whose recent branches
//      happen to be uniform. We measure sensitivity/specificity per combo.
//  (2) Timer-interval sweep: detection latency vs timer overhead.
#include "bench_util.h"
#include "common/thread_pool.h"
#include "workloads/microbench.h"
#include "workloads/suite.h"

using namespace eo;

namespace {

struct Combo {
  const char* label;
  bool lbr, l1, tlb;
};

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::parse_scale(argc, argv, 0.3);
  bench::print_header("Ablation (BWD)", "heuristic combinations");
  {
    const std::vector<Combo> combos = {
        {"lbr-only", true, false, false},
        {"lbr+l1", true, true, false},
        {"lbr+tlb", true, false, true},
        {"all-three", true, true, true},
        {"misses-only", false, true, true},
    };
    struct Out {
      double sens = 0, spec = 0;
    };
    std::vector<Out> out(combos.size());
    ThreadPool::parallel_for(combos.size() * 2, [&](std::size_t job) {
      const auto ci = job / 2;
      const bool sens_run = job % 2 == 0;
      core::Features f = core::Features::optimized();
      f.vb_futex = f.vb_epoll = false;
      f.bwd_use_lbr = combos[ci].lbr;
      f.bwd_use_l1 = combos[ci].l1;
      f.bwd_use_tlb = combos[ci].tlb;
      metrics::RunConfig rc;
      rc.features = f;
      rc.deadline = 600_s;
      if (sens_run) {
        rc.cpus = 1;
        rc.sockets = 1;
        const auto r = metrics::run_experiment(rc, [&](kern::Kernel& k) {
          auto lock = std::shared_ptr<locks::SpinLock>(locks::make_spinlock(
              locks::SpinLockKind::kTicket, k, 2));
          workloads::spawn_tp_pair(
              k, lock, static_cast<SimDuration>(1_s * scale));
        });
        out[ci].sens = r.bwd.sensitivity() * 100.0;
      } else {
        rc.cpus = 8;
        rc.sockets = 2;
        const auto& spec = workloads::find_benchmark("is");
        rc.ref_footprint = spec.ref_footprint();
        const auto r = metrics::run_experiment(rc, [&](kern::Kernel& k) {
          workloads::spawn_benchmark(k, spec, 32, 7, scale);
        });
        out[ci].spec = r.bwd.specificity() * 100.0;
      }
    });
    metrics::TablePrinter t({"heuristics", "sensitivity(%)", "specificity(%)"});
    for (std::size_t ci = 0; ci < combos.size(); ++ci) {
      t.add_row({combos[ci].label, metrics::TablePrinter::num(out[ci].sens),
                 metrics::TablePrinter::num(out[ci].spec)});
    }
    t.print();
  }

  bench::print_header("Ablation (BWD)", "monitoring interval sweep");
  {
    const std::vector<SimDuration> intervals = {25_us, 50_us, 100_us, 200_us,
                                                400_us, 800_us};
    struct Out {
      double lock_ms = 0, overhead_pct = 0;
    };
    std::vector<Out> out(intervals.size());
    double baseline_ms = 0;
    {
      // No-BWD reference for the timer-overhead column.
      metrics::RunConfig rc;
      rc.cpus = 8;
      rc.sockets = 2;
      rc.deadline = 600_s;
      const auto& spec = workloads::find_benchmark("ft");
      rc.ref_footprint = spec.ref_footprint();
      const auto r = metrics::run_experiment(rc, [&](kern::Kernel& k) {
        workloads::spawn_benchmark(k, spec, 8, 7, scale);
      });
      baseline_ms = to_ms(r.exec_time);
    }
    ThreadPool::parallel_for(intervals.size() * 2, [&](std::size_t job) {
      const auto ii = job / 2;
      const bool lock_run = job % 2 == 0;
      core::Features f;
      f.bwd = true;
      f.bwd_interval = intervals[ii];
      metrics::RunConfig rc;
      rc.features = f;
      rc.cpus = 8;
      rc.sockets = 2;
      rc.deadline = 2000_s;
      if (lock_run) {
        const auto r = metrics::run_experiment(rc, [&](kern::Kernel& k) {
          auto lock = std::shared_ptr<locks::SpinLock>(locks::make_spinlock(
              locks::SpinLockKind::kTicket, k, 32));
          workloads::spawn_lock_contention(
              k, lock, 32, std::max(50, static_cast<int>(800 * scale)), 5_us,
              15_us);
        });
        out[ii].lock_ms = to_ms(r.exec_time);
      } else {
        const auto& spec = workloads::find_benchmark("ft");
        rc.ref_footprint = spec.ref_footprint();
        const auto r = metrics::run_experiment(rc, [&](kern::Kernel& k) {
          workloads::spawn_benchmark(k, spec, 8, 7, scale);
        });
        out[ii].overhead_pct =
            (to_ms(r.exec_time) - baseline_ms) / baseline_ms * 100.0;
      }
    });
    metrics::TablePrinter t({"interval(us)", "ticket-lock 32T (ms)",
                             "timer overhead on ft 8T (%)"});
    for (std::size_t ii = 0; ii < intervals.size(); ++ii) {
      t.add_row({std::to_string(intervals[ii] / 1000),
                 metrics::TablePrinter::num(out[ii].lock_ms, 1),
                 metrics::TablePrinter::num(out[ii].overhead_pct)});
    }
    t.print();
  }
  return 0;
}
