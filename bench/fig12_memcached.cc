// Figure 12: memcached under thread oversubscription. Baseline 4 worker
// threads; oversubscribed 16 workers; 4/8/16 cores (oversubscription ratios
// 4/2/1). Client: mutilate-style open-loop Poisson, 10:1 GET:SET, 128 B keys
// and 2048 B values.
// Expected shape: oversubscription in vanilla Linux costs little average
// throughput/latency (~6%) but inflates p95/p99 tail latency ~8x; VB removes
// most of the tail inflation (92%/60%) and tracks the best config as cores
// scale.
#include "bench_util.h"
#include "common/thread_pool.h"
#include "workloads/memcached.h"
#include "workloads/mutilate.h"

using namespace eo;

namespace {

struct Out {
  double tput = 0, avg_us = 0, p95_us = 0, p99_us = 0;
};

Out run_one(int cores, int workers, bool optimized, double rate, double scale) {
  metrics::RunConfig rc;
  rc.cpus = cores;
  rc.sockets = cores > 8 ? 2 : 1;
  rc.features =
      optimized ? core::Features::optimized() : core::Features::vanilla();
  auto kc = metrics::make_kernel_config(rc);
  kern::Kernel k(kc);

  workloads::MemcachedConfig mc;
  mc.n_workers = workers;
  workloads::MemcachedSim server(k, mc);
  server.start();

  const SimTime warmup = static_cast<SimTime>(300_ms * scale);
  const SimTime window = static_cast<SimTime>(1500_ms * scale);
  workloads::MutilateConfig cc;
  cc.rate_ops_per_sec = rate;
  cc.until = warmup + window;
  cc.seed = 99;
  workloads::MutilateClient client(server, cc);
  client.start();

  k.run_until(warmup);
  server.reset_measurement();
  k.run_until(warmup + window);
  // Drain in-flight requests.
  k.run_until(warmup + window + 100_ms);
  server.stop();
  k.run_to_exit(k.now() + 1_s);

  Out o;
  o.tput = server.latencies().throughput(window + 100_ms);
  o.avg_us = server.latencies().mean_us();
  o.p95_us = server.latencies().p95_us();
  o.p99_us = server.latencies().p99_us();
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::parse_scale(argc, argv, 0.5);
  bench::print_header("Figure 12", "memcached throughput and latency");

  const std::vector<int> cores = {4, 8, 16};
  // Offered load scales with capacity; chosen near (not past) saturation of
  // the 4-worker baseline so queueing effects are visible.
  const std::vector<double> rates = {480000, 620000, 450000};
  struct Cfg {
    const char* label;
    int workers;
    bool optimized;
  };
  const std::vector<Cfg> cfgs = {{"4T(vanilla)", 4, false},
                                 {"16T(vanilla)", 16, false},
                                 {"16T(optimized)", 16, true}};

  std::vector<std::vector<Out>> grid(cores.size(),
                                     std::vector<Out>(cfgs.size()));
  ThreadPool::parallel_for(cores.size() * cfgs.size(), [&](std::size_t job) {
    const auto ki = job / cfgs.size();
    const auto ci = job % cfgs.size();
    grid[ki][ci] = run_one(cores[ki], cfgs[ci].workers, cfgs[ci].optimized,
                           rates[ki], scale);
  });

  for (const char* metric : {"throughput(ops/s)", "avg latency(us)",
                             "p95 latency(us)", "p99 latency(us)"}) {
    std::printf("\n--- %s ---\n", metric);
    metrics::TablePrinter t({"cores", cfgs[0].label, cfgs[1].label,
                             cfgs[2].label});
    for (std::size_t ki = 0; ki < cores.size(); ++ki) {
      std::vector<std::string> row = {std::to_string(cores[ki])};
      for (std::size_t ci = 0; ci < cfgs.size(); ++ci) {
        const Out& o = grid[ki][ci];
        double v = 0;
        if (std::string(metric).starts_with("throughput")) v = o.tput;
        else if (std::string(metric).starts_with("avg")) v = o.avg_us;
        else if (std::string(metric).starts_with("p95")) v = o.p95_us;
        else v = o.p99_us;
        row.push_back(metrics::TablePrinter::num(v, 0));
      }
      t.add_row(row);
    }
    t.print();
  }
  return 0;
}
