// Figure 12: memcached under thread oversubscription. Baseline 4 worker
// threads; oversubscribed 16 workers; 4/8/16 cores (oversubscription ratios
// 4/2/1). Client: mutilate-style open-loop Poisson, 10:1 GET:SET, 128 B keys
// and 2048 B values.
// Expected shape: oversubscription in vanilla Linux costs little average
// throughput/latency (~6%) but inflates p95/p99 tail latency ~8x; VB removes
// most of the tail inflation (92%/60%) and tracks the best config as cores
// scale.
#include <iostream>

#include "bench_util.h"
#include "workloads/memcached.h"
#include "workloads/mutilate.h"

using namespace eo;

namespace {

struct Cfg {
  const char* label;
  int workers;
  bool optimized;
};

const std::vector<Cfg> kCfgs = {{"4T(vanilla)", 4, false},
                                {"16T(vanilla)", 16, false},
                                {"16T(optimized)", 16, true}};

exp::CellRun run_one(int workers, double rate, const metrics::RunConfig& cfg,
                     std::uint64_t seed, double scale) {
  auto kc = metrics::make_kernel_config(cfg);
  kern::Kernel k(kc);

  workloads::MemcachedConfig mc;
  mc.n_workers = workers;
  workloads::MemcachedSim server(k, mc);
  server.start();

  const SimTime warmup = static_cast<SimTime>(300_ms * scale);
  const SimTime window = static_cast<SimTime>(1500_ms * scale);
  workloads::MutilateConfig cc;
  cc.rate_ops_per_sec = rate;
  cc.until = warmup + window;
  cc.seed = seed;
  workloads::MutilateClient client(server, cc);
  client.start();

  k.run_until(warmup);
  server.reset_measurement();
  k.run_until(warmup + window);
  // Drain in-flight requests.
  k.run_until(warmup + window + 100_ms);
  server.stop();
  k.run_to_exit(k.now() + 1_s);

  exp::CellRun r;
  r.run.completed = true;  // open-loop: the window always closes
  r.run.exec_time = window + 100_ms;
  r.run.stats = k.stats();
  if (k.sampler().enabled()) {
    r.run.metrics = std::make_shared<obs::MetricsDoc>(k.snapshot_metrics());
  }
  r.set("tput_ops_s", server.latencies().throughput(window + 100_ms))
      .set("avg_us", server.latencies().mean_us())
      .set("p95_us", server.latencies().p95_us())
      .set("p99_us", server.latencies().p99_us())
      .set("p999_us", server.latencies().p999_us());
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::CliSpec spec{
      .id = "fig12_memcached",
      .summary = "memcached throughput and latency under oversubscription",
      .default_scale = 0.5,
      .default_seed = 99};
  const bench::Cli cli = bench::Cli::parse(argc, argv, spec);

  const std::vector<int> cores = {4, 8, 16};
  // Offered load scales with capacity; chosen near (not past) saturation of
  // the 4-worker baseline so queueing effects are visible.
  const std::vector<double> rates = {480000, 620000, 450000};
  std::vector<std::string> core_labels;
  for (const int c : cores) core_labels.push_back(std::to_string(c) + "c");
  std::vector<std::string> cfg_labels;
  for (const auto& c : kCfgs) cfg_labels.emplace_back(c.label);

  metrics::RunConfig base;
  bench::apply_metrics(cli, &base);
  bench::apply_sched(cli, &base);

  exp::Sweep sweep("memcached");
  sweep.base(base)
      .axis("cores", core_labels,
             [&](metrics::RunConfig& rc, std::size_t ki) {
               rc.cpus = cores[ki];
               rc.sockets = cores[ki] > 8 ? 2 : 1;
             })
      .axis("config", cfg_labels,
            [](metrics::RunConfig& rc, std::size_t ci) {
              rc.features = kCfgs[ci].optimized ? core::Features::optimized()
                                                : core::Features::vanilla();
            });

  exp::ExperimentRunner runner(sweep, cli.runner_options());
  if (cli.list) {
    runner.list(std::cout);
    return 0;
  }

  bench::print_header("Figure 12", "memcached throughput and latency");
  const exp::Outcomes out = runner.run(
      [&](const exp::Cell& cell, const metrics::RunConfig& cfg) {
        return run_one(kCfgs[cell.at(1)].workers, rates[cell.at(0)], cfg,
                       cli.seed, cli.scale);
      });

  const std::vector<std::pair<const char*, const char*>> metrics_keys = {
      {"throughput(ops/s)", "tput_ops_s"},
      {"avg latency(us)", "avg_us"},
      {"p95 latency(us)", "p95_us"},
      {"p99 latency(us)", "p99_us"},
      {"p99.9 latency(us)", "p999_us"}};
  for (const auto& [title, key] : metrics_keys) {
    std::printf("\n--- %s ---\n", title);
    metrics::TablePrinter t({"cores", kCfgs[0].label, kCfgs[1].label,
                             kCfgs[2].label});
    for (std::size_t ki = 0; ki < cores.size(); ++ki) {
      std::vector<std::string> row = {std::to_string(cores[ki])};
      for (std::size_t ci = 0; ci < kCfgs.size(); ++ci) {
        const exp::CellOutcome& o = out.at({ki, ci});
        row.push_back(o.ran() ? metrics::TablePrinter::num(o.value(key), 0)
                              : "-");
      }
      t.add_row(row);
    }
    t.print();
  }

  exp::ResultDoc doc(spec.id, cli.scale, cli.seed);
  doc.add_sweep(sweep, out);
  const bool ok =
      bench::write_results(cli, doc) && bench::check_sweep_metrics(out, cli);
  return ok ? 0 : 1;
}
