// Figure 3: histogram of the interval between synchronizations across the
// PARSEC, SPLASH-2, and NPB benchmark models at their optimal thread counts.
// The paper's finding: most programs synchronize no more often than every
// 1000 µs (CS overhead < 0.15%); the most frequent is facesim at 160 µs
// (overhead still < 1%).
#include <map>

#include "bench_util.h"
#include "workloads/suite.h"

using namespace eo;

int main(int, char**) {
  bench::print_header("Figure 3",
                      "interval between synchronizations (at optimal threads)");
  // Bucket by 100 us up to 1 ms, then a single >=1000 us bucket, mirroring
  // the figure's x axis.
  std::map<int, int> hist;
  metrics::TablePrinter detail({"benchmark", "interval(us)", "CS overhead(%)"});
  for (const auto& spec : workloads::suite()) {
    if (spec.sync == workloads::SyncKind::kNone) continue;
    const double us = to_us(spec.interval);
    const int bucket = us >= 1000.0 ? 1000 : static_cast<int>(us / 100.0) * 100;
    hist[bucket]++;
    // Direct context-switch cost of 1.5 us once per interval.
    detail.add_row({spec.name, metrics::TablePrinter::num(us, 0),
                    metrics::TablePrinter::num(1.5 / us * 100.0, 3)});
  }
  metrics::TablePrinter t({"interval bucket (us)", "#programs"});
  for (const auto& [b, n] : hist) {
    const std::string label =
        b >= 1000 ? ">=1000" : std::to_string(b) + "-" + std::to_string(b + 99);
    t.add_row({label, std::to_string(n)});
  }
  t.print();
  std::printf("\nPer-benchmark detail:\n");
  detail.print();
  return 0;
}
