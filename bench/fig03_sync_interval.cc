// Figure 3: histogram of the interval between synchronizations across the
// PARSEC, SPLASH-2, and NPB benchmark models at their optimal thread counts.
// The paper's finding: most programs synchronize no more often than every
// 1000 µs (CS overhead < 0.15%); the most frequent is facesim at 160 µs
// (overhead still < 1%).
#include <iostream>
#include <map>

#include "bench_util.h"
#include "workloads/suite.h"

using namespace eo;

int main(int argc, char** argv) {
  const bench::CliSpec spec{
      .id = "fig03_sync_interval",
      .summary = "interval between synchronizations (at optimal threads)",
      .default_scale = 1.0};
  const bench::Cli cli = bench::Cli::parse(argc, argv, spec);

  std::vector<const workloads::BenchmarkSpec*> synced;
  std::vector<std::string> names;
  for (const auto& s : workloads::suite()) {
    if (s.sync == workloads::SyncKind::kNone) continue;
    synced.push_back(&s);
    names.push_back(s.name);
  }

  exp::Sweep sweep("sync_interval");
  sweep.axis("benchmark", names);
  exp::ExperimentRunner runner(sweep, cli.runner_options());
  if (cli.list) {
    runner.list(std::cout);
    return 0;
  }

  bench::print_header("Figure 3",
                      "interval between synchronizations (at optimal threads)");
  // No simulation: the intervals are properties of the workload models. The
  // cells carry the derived values so the JSON document mirrors the figure.
  const exp::Outcomes out = runner.run(
      [&](const exp::Cell& cell, const metrics::RunConfig&) {
        const auto& bspec = *synced[cell.at(0)];
        const double us = to_us(bspec.interval);
        exp::CellRun r;
        r.run.completed = true;
        // Direct context-switch cost of 1.5 us once per interval.
        r.set("interval_us", us).set("cs_overhead_pct", 1.5 / us * 100.0);
        return r;
      });

  // Bucket by 100 us up to 1 ms, then a single >=1000 us bucket, mirroring
  // the figure's x axis.
  std::map<int, int> hist;
  metrics::TablePrinter detail({"benchmark", "interval(us)", "CS overhead(%)"});
  for (std::size_t i = 0; i < synced.size(); ++i) {
    const exp::CellOutcome& o = out.at({i});
    if (!o.ran()) continue;
    const double us = o.value("interval_us");
    const int bucket = us >= 1000.0 ? 1000 : static_cast<int>(us / 100.0) * 100;
    hist[bucket]++;
    detail.add_row({synced[i]->name, metrics::TablePrinter::num(us, 0),
                    metrics::TablePrinter::num(o.value("cs_overhead_pct"), 3)});
  }
  metrics::TablePrinter t({"interval bucket (us)", "#programs"});
  for (const auto& [b, n] : hist) {
    const std::string label =
        b >= 1000 ? ">=1000" : std::to_string(b) + "-" + std::to_string(b + 99);
    t.add_row({label, std::to_string(n)});
  }
  t.print();
  std::printf("\nPer-benchmark detail:\n");
  detail.print();

  exp::ResultDoc doc(spec.id, cli.scale, cli.seed);
  doc.add_sweep(sweep, out);
  return bench::write_results(cli, doc) ? 0 : 1;
}
