// Figure 10: the effect of virtual blocking on pthreads primitives.
//  (a) varying thread counts on a single core: VB speedup over vanilla is
//      ~1x for mutex (one waiter wakes at a time), ~1.5x for barrier and
//      ~2.3x for condition variables (group wakeups).
//  (b) 32 threads on 1..32 cores: the group-synchronization speedups grow
//      (to ~3x barrier, ~5x cond).
#include "bench_util.h"
#include "common/thread_pool.h"
#include "workloads/microbench.h"

using namespace eo;

namespace {

double speedup(workloads::SyncPrimitive prim, int threads, int cores,
               int iterations) {
  double t[2] = {0, 0};
  for (int opt = 0; opt < 2; ++opt) {
    metrics::RunConfig rc;
    rc.cpus = cores;
    rc.sockets = cores > 8 ? 2 : 1;
    rc.features =
        opt ? core::Features::optimized() : core::Features::vanilla();
    rc.deadline = 600_s;
    const auto r = metrics::run_experiment(rc, [&](kern::Kernel& k) {
      workloads::spawn_sync_micro(k, threads, prim, iterations);
    });
    t[opt] = to_ms(r.exec_time);
  }
  return t[0] / t[1];
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = bench::parse_scale(argc, argv, 0.25);
  const int iters = std::max(200, static_cast<int>(10000 * scale));
  const std::vector<workloads::SyncPrimitive> prims = {
      workloads::SyncPrimitive::kMutex, workloads::SyncPrimitive::kCond,
      workloads::SyncPrimitive::kBarrier};

  bench::print_header("Figure 10(a)", "VB speedup, varying threads on one core");
  {
    const std::vector<int> threads = {1, 2, 4, 8, 16, 32};
    std::vector<std::vector<double>> s(prims.size(),
                                       std::vector<double>(threads.size()));
    ThreadPool::parallel_for(prims.size() * threads.size(), [&](std::size_t j) {
      s[j / threads.size()][j % threads.size()] =
          speedup(prims[j / threads.size()], threads[j % threads.size()], 1,
                  iters);
    });
    metrics::TablePrinter t(
        {"threads", "pthread_mutex", "pthread_cond", "pthread_barrier"});
    for (std::size_t ti = 0; ti < threads.size(); ++ti) {
      t.add_row({std::to_string(threads[ti]),
                 metrics::TablePrinter::num(s[0][ti]),
                 metrics::TablePrinter::num(s[1][ti]),
                 metrics::TablePrinter::num(s[2][ti])});
    }
    t.print();
  }

  bench::print_header("Figure 10(b)", "VB speedup, 32 threads on varying cores");
  {
    const std::vector<int> cores = {1, 2, 4, 8, 16, 32};
    std::vector<std::vector<double>> s(prims.size(),
                                       std::vector<double>(cores.size()));
    ThreadPool::parallel_for(prims.size() * cores.size(), [&](std::size_t j) {
      s[j / cores.size()][j % cores.size()] =
          speedup(prims[j / cores.size()], 32, cores[j % cores.size()], iters);
    });
    metrics::TablePrinter t(
        {"cores", "pthread_mutex", "pthread_cond", "pthread_barrier"});
    for (std::size_t ci = 0; ci < cores.size(); ++ci) {
      t.add_row({std::to_string(cores[ci]),
                 metrics::TablePrinter::num(s[0][ci]),
                 metrics::TablePrinter::num(s[1][ci]),
                 metrics::TablePrinter::num(s[2][ci])});
    }
    t.print();
  }
  return 0;
}
