// Figure 10: the effect of virtual blocking on pthreads primitives.
//  (a) varying thread counts on a single core: VB speedup over vanilla is
//      ~1x for mutex (one waiter wakes at a time), ~1.5x for barrier and
//      ~2.3x for condition variables (group wakeups).
//  (b) 32 threads on 1..32 cores: the group-synchronization speedups grow
//      (to ~3x barrier, ~5x cond).
#include <iostream>

#include "bench_util.h"
#include "workloads/microbench.h"

using namespace eo;

namespace {

const std::vector<workloads::SyncPrimitive> kPrims = {
    workloads::SyncPrimitive::kMutex, workloads::SyncPrimitive::kCond,
    workloads::SyncPrimitive::kBarrier};
const std::vector<std::string> kPrimLabels = {"pthread_mutex", "pthread_cond",
                                              "pthread_barrier"};

exp::Sweep make_sweep(const bench::Cli& cli, const std::string& name,
                      const std::string& vary_axis,
                      const std::vector<int>& counts, bool vary_cores) {
  std::vector<std::string> count_labels;
  for (const int c : counts) count_labels.push_back(std::to_string(c));
  exp::Sweep sweep(name);
  metrics::RunConfig base;
  base.cpus = 1;
  base.sockets = 1;
  base.deadline = 600_s;
  bench::apply_metrics(cli, &base);
  bench::apply_sched(cli, &base);
  sweep.base(base)
      .axis("primitive", kPrimLabels)
      .axis(vary_axis, count_labels,
            [&counts, vary_cores](metrics::RunConfig& rc, std::size_t i) {
              if (vary_cores) {
                rc.cpus = counts[i];
                rc.sockets = counts[i] > 8 ? 2 : 1;
              }
            })
      .axis("kernel", {"vanilla", "optimized"},
            [](metrics::RunConfig& rc, std::size_t i) {
              rc.features = i ? core::Features::optimized()
                              : core::Features::vanilla();
            });
  return sweep;
}

// Attaches vanilla/optimized speedups to the optimized cells and prints the
// figure table (rows = the varying axis, columns = primitives).
void finish_sweep(const std::string& row_header,
                  const std::vector<int>& counts, exp::Outcomes& out) {
  for (std::size_t pi = 0; pi < kPrims.size(); ++pi) {
    for (std::size_t i = 0; i < counts.size(); ++i) {
      const exp::CellOutcome& van = out.at({pi, i, 0});
      exp::CellOutcome& opt = out.at({pi, i, 1});
      if (!van.ran() || !opt.ran()) continue;
      opt.set("speedup", van.ms() / opt.ms());
    }
  }
  metrics::TablePrinter t(
      {row_header, "pthread_mutex", "pthread_cond", "pthread_barrier"});
  for (std::size_t i = 0; i < counts.size(); ++i) {
    std::vector<std::string> row = {std::to_string(counts[i])};
    for (std::size_t pi = 0; pi < kPrims.size(); ++pi) {
      const exp::CellOutcome& o = out.at({pi, i, 1});
      row.push_back(o.ran() ? metrics::TablePrinter::num(o.value("speedup"))
                            : "-");
    }
    t.add_row(row);
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::CliSpec spec{
      .id = "fig10_vb_micro",
      .summary = "VB speedup on pthreads primitives (micro)",
      .default_scale = 0.25};
  const bench::Cli cli = bench::Cli::parse(argc, argv, spec);
  const int iters = std::max(200, static_cast<int>(10000 * cli.scale));

  const std::vector<int> threads = {1, 2, 4, 8, 16, 32};
  const std::vector<int> cores = {1, 2, 4, 8, 16, 32};
  exp::Sweep sweep_a = make_sweep(cli, "threads_on_one_core", "threads", threads,
                                  /*vary_cores=*/false);
  exp::Sweep sweep_b = make_sweep(cli, "cores_at_32T", "cores", cores,
                                  /*vary_cores=*/true);

  exp::ExperimentRunner runner_a(sweep_a, cli.runner_options());
  exp::ExperimentRunner runner_b(sweep_b, cli.runner_options());
  if (cli.list) {
    runner_a.list(std::cout);
    runner_b.list(std::cout);
    return 0;
  }

  bench::print_header("Figure 10(a)",
                      "VB speedup, varying threads on one core");
  exp::Outcomes out_a = runner_a.run(
      [&](const exp::Cell& cell, const metrics::RunConfig& cfg) {
        return metrics::run_experiment(cfg, [&](kern::Kernel& k) {
          workloads::spawn_sync_micro(k, threads[cell.at(1)],
                                      kPrims[cell.at(0)], iters);
        });
      });
  finish_sweep("threads", threads, out_a);

  bench::print_header("Figure 10(b)",
                      "VB speedup, 32 threads on varying cores");
  exp::Outcomes out_b = runner_b.run(
      [&](const exp::Cell& cell, const metrics::RunConfig& cfg) {
        return metrics::run_experiment(cfg, [&](kern::Kernel& k) {
          workloads::spawn_sync_micro(k, 32, kPrims[cell.at(0)], iters);
        });
      });
  finish_sweep("cores", cores, out_b);

  exp::ResultDoc doc(spec.id, cli.scale, cli.seed);
  doc.add_sweep(sweep_a, out_a);
  doc.add_sweep(sweep_b, out_b);
  bool ok = bench::write_results(cli, doc);
  if (cli.metrics) {
    ok = bench::check_sweep_metrics(out_a, cli) &&
      bench::check_sweep_metrics(out_b, cli) && ok;
  }
  return ok ? 0 : 1;
}
