// Table 2: BWD true-positive rate (sensitivity). Two threads pinned to one
// core: thread #1 continuously holds each spinlock, thread #2 repeatedly
// tries to acquire it. Every monitoring window whose busy time is pure
// spinning is a "try"; sensitivity = detected / tries. Expected ~99.8%+ for
// all ten algorithms (the residual misses are windows where the spun-on
// cacheline was invalidated and recounted as an L1 miss).
#include <iostream>

#include "bench_util.h"
#include "workloads/microbench.h"

using namespace eo;

int main(int argc, char** argv) {
  const bench::CliSpec spec{
      .id = "table2_bwd_sensitivity",
      .summary = "BWD sensitivity on 10 spinlocks",
      .default_scale = 0.5};
  const bench::Cli cli = bench::Cli::parse(argc, argv, spec);
  const auto hold = static_cast<SimDuration>(4_s * cli.scale);

  const auto& kinds = locks::all_spinlock_kinds();
  std::vector<std::string> kind_labels;
  for (const auto k : kinds) kind_labels.emplace_back(locks::to_string(k));

  metrics::RunConfig base;
  base.cpus = 1;
  base.sockets = 1;
  base.features = core::Features::optimized();
  base.deadline = hold + 5_s;
  bench::apply_metrics(cli, &base);
  bench::apply_sched(cli, &base);

  exp::Sweep sweep("bwd_sensitivity");
  sweep.base(base).axis("spinlock", kind_labels);

  exp::ExperimentRunner runner(sweep, cli.runner_options());
  if (cli.list) {
    runner.list(std::cout);
    return 0;
  }

  bench::print_header("Table 2", "BWD sensitivity on 10 spinlocks");
  const exp::Outcomes out = runner.run(
      [&](const exp::Cell& cell, const metrics::RunConfig& cfg) {
        exp::CellRun r(metrics::run_experiment(cfg, [&](kern::Kernel& k) {
          auto lock = std::shared_ptr<locks::SpinLock>(
              locks::make_spinlock(kinds[cell.at(0)], k, 2));
          workloads::spawn_tp_pair(k, lock, hold);
        }));
        const auto tries = r.run.bwd.tp + r.run.bwd.fn;
        r.set("tries", static_cast<double>(tries))
            .set("tps", static_cast<double>(r.run.bwd.tp))
            .set("sensitivity_pct",
                 tries ? 100.0 * static_cast<double>(r.run.bwd.tp) /
                             static_cast<double>(tries)
                       : 0.0);
        return r;
      });

  metrics::TablePrinter t({"Spinlock", "# of Tries", "# of TPs",
                           "Sensitivity(%)"});
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    const exp::CellOutcome& o = out.at({i});
    if (!o.ran()) continue;
    t.add_row({kind_labels[i],
               std::to_string(static_cast<std::uint64_t>(o.value("tries"))),
               std::to_string(static_cast<std::uint64_t>(o.value("tps"))),
               metrics::TablePrinter::num(o.value("sensitivity_pct"))});
  }
  t.print();

  exp::ResultDoc doc(spec.id, cli.scale, cli.seed);
  doc.add_sweep(sweep, out);
  bool ok = bench::write_results(cli, doc);
  if (cli.metrics) {
    ok = bench::check_sweep_metrics(out, cli) && ok;
  }
  return ok ? 0 : 1;
}
