// Table 2: BWD true-positive rate (sensitivity). Two threads pinned to one
// core: thread #1 continuously holds each spinlock, thread #2 repeatedly
// tries to acquire it. Every monitoring window whose busy time is pure
// spinning is a "try"; sensitivity = detected / tries. Expected ~99.8%+ for
// all ten algorithms (the residual misses are windows where the spun-on
// cacheline was invalidated and recounted as an L1 miss).
#include "bench_util.h"
#include "common/thread_pool.h"
#include "workloads/microbench.h"

using namespace eo;

int main(int argc, char** argv) {
  const double scale = bench::parse_scale(argc, argv, 0.5);
  const auto hold = static_cast<SimDuration>(4_s * scale);
  bench::print_header("Table 2", "BWD sensitivity on 10 spinlocks");

  const auto& kinds = locks::all_spinlock_kinds();
  struct Out {
    std::uint64_t tries = 0, tps = 0;
  };
  std::vector<Out> out(kinds.size());
  ThreadPool::parallel_for(kinds.size(), [&](std::size_t i) {
    metrics::RunConfig rc;
    rc.cpus = 1;
    rc.sockets = 1;
    rc.features = core::Features::optimized();
    rc.deadline = hold + 5_s;
    const auto r = metrics::run_experiment(rc, [&](kern::Kernel& k) {
      auto lock = std::shared_ptr<locks::SpinLock>(
          locks::make_spinlock(kinds[i], k, 2));
      workloads::spawn_tp_pair(k, lock, hold);
    });
    out[i].tries = r.bwd.tp + r.bwd.fn;
    out[i].tps = r.bwd.tp;
  });

  metrics::TablePrinter t({"Spinlock", "# of Tries", "# of TPs",
                           "Sensitivity(%)"});
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    const double sens =
        out[i].tries
            ? 100.0 * static_cast<double>(out[i].tps) /
                  static_cast<double>(out[i].tries)
            : 0.0;
    t.add_row({locks::to_string(kinds[i]), std::to_string(out[i].tries),
               std::to_string(out[i].tps), metrics::TablePrinter::num(sens)});
  }
  t.print();
  return 0;
}
