// eo-metrics exporters and the structural validator (src/obs/export).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/export.h"

namespace eo::obs {
namespace {

MetricsDoc make_doc() {
  MetricsDoc doc;
  doc.n_cores = 2;
  doc.interval = 1000000;  // 1 ms
  doc.ticks = 3;
  doc.counters.push_back({"sched.context_switches", 12});
  doc.counters.push_back({"vb.decisions", 4});
  doc.gauges.push_back({"kern.live_tasks", 5});
  HistogramSummary h;
  h.name = "kern.wakeup_latency_ns";
  h.count = 2;
  h.min = 100;
  h.max = 300;
  h.mean = 200.0;
  h.p50 = 100;
  h.p95 = 300;
  h.p99 = 300;
  h.p999 = 300;
  doc.histograms.push_back(h);
  for (int f = 0; f < 3; ++f) {
    TickSample t;
    t.ts = (f + 1) * 1000000;
    t.live_tasks = 5;
    t.online_cores = 2;
    t.d_context_switches = f == 0 ? 0 : 2;
    doc.tick_series.push_back(t);
    for (int c = 0; c < 2; ++c) {
      CoreSample s;
      s.rq_depth = c + 1;
      s.schedulable = c + 1;
      s.running = 1;
      s.online = 1;
      doc.core_series.push_back(s);
    }
  }
  doc.watchdog_checks = 3;
  return doc;
}

TEST(ObsExport, JsonRendersAndValidates) {
  const std::string text = render(make_doc(), "json");
  std::string err;
  EXPECT_TRUE(validate_metrics_json(text, &err)) << err;
  EXPECT_NE(text.find("\"schema\":\"eo-metrics\""), std::string::npos);
}

TEST(ObsExport, JsonIsDeterministic) {
  // Same document -> byte-identical text (export order is registration
  // order; nothing host-dependent is rendered).
  EXPECT_EQ(render(make_doc(), "json"), render(make_doc(), "json"));
}

TEST(ObsExport, CsvHasGlobalAndPerCoreRows) {
  const std::string text = render(make_doc(), "csv");
  std::istringstream is(text);
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line.rfind("ts_ns,core,", 0), 0u);
  std::size_t rows = 0, global_rows = 0;
  while (std::getline(is, line)) {
    ++rows;
    if (line.find(",-1,") != std::string::npos) ++global_rows;
  }
  // 3 frames x (1 global + 2 core rows).
  EXPECT_EQ(rows, 9u);
  EXPECT_EQ(global_rows, 3u);
}

TEST(ObsExport, ReportSummarizes) {
  const std::string text = render(make_doc(), "report");
  EXPECT_NE(text.find("eo-metrics report: cores=2"), std::string::npos);
  EXPECT_NE(text.find("watchdog: checks=3 violations=0"), std::string::npos);
  EXPECT_NE(text.find("sched.context_switches 12"), std::string::npos);
  EXPECT_NE(text.find("p999=300"), std::string::npos);
}

TEST(ObsExport, ReportListsViolations) {
  MetricsDoc doc = make_doc();
  doc.watchdog_violations = 1;
  doc.violation_records.push_back({1000, "rq_depth_sum", "sum mismatch"});
  const std::string text = render(doc, "report");
  EXPECT_NE(text.find("VIOLATION"), std::string::npos);
  EXPECT_NE(text.find("rq_depth_sum"), std::string::npos);
}

TEST(ObsExport, ExportToFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "/eo_metrics_test.json";
  std::string err;
  ASSERT_TRUE(export_to_file(make_doc(), path, "json", &err)) << err;
  std::ifstream f(path, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  EXPECT_EQ(ss.str(), render(make_doc(), "json"));
  std::remove(path.c_str());
}

TEST(ObsExport, RejectsUnknownFormat) {
  std::string err;
  EXPECT_FALSE(export_to_file(make_doc(), "/tmp/x", "xml", &err));
  EXPECT_NE(err.find("unknown metrics format"), std::string::npos);
}

TEST(ObsExport, ValidatorRejectsWrongSchema) {
  std::string text = render(make_doc(), "json");
  const std::string from = "\"schema\":\"eo-metrics\"";
  text.replace(text.find(from), from.size(), "\"schema\":\"eo-other\"");
  std::string err;
  EXPECT_FALSE(validate_metrics_json(text, &err));
}

TEST(ObsExport, ValidatorRejectsMisalignedCoreSeries) {
  // A core's sample list shorter than the tick list must fail: the two
  // series are meaningful only frame-aligned.
  MetricsDoc doc = make_doc();
  std::string text = render(doc, "json");
  // Drop one core-sample object: find the last sample in the text.
  const std::string sample_marker = "{\"rq\":2,";
  const std::size_t last = text.rfind(sample_marker);
  ASSERT_NE(last, std::string::npos);
  const std::size_t end = text.find('}', last);
  // Also strip the separating comma before the removed object.
  std::size_t begin = last;
  while (begin > 0 && text[begin - 1] != ',') --begin;
  text.erase(begin - 1, end - begin + 2);
  std::string err;
  EXPECT_FALSE(validate_metrics_json(text, &err));
}

}  // namespace
}  // namespace eo::obs
