// Tests for the futex-based synchronization primitives (mutex, barrier,
// condition variable, semaphore) and the user-level spin helpers.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "kern/kernel.h"
#include "runtime/barrier.h"
#include "runtime/condvar.h"
#include "runtime/mutex.h"
#include "runtime/semaphore.h"
#include "runtime/sim_thread.h"
#include "runtime/spin.h"

namespace eo {
namespace {

using kern::Kernel;
using kern::KernelConfig;
using runtime::Env;
using runtime::SimThread;

KernelConfig cores(int n) {
  KernelConfig c;
  c.topo = hw::Topology::make_cores(n, 1);
  return c;
}

TEST(Mutex, MutualExclusionManyThreads) {
  Kernel k(cores(4));
  auto m = std::make_shared<runtime::SimMutex>(k);
  auto in_cs = std::make_shared<int>(0);
  auto max_in_cs = std::make_shared<int>(0);
  auto total = std::make_shared<int>(0);
  for (int i = 0; i < 16; ++i) {
    runtime::spawn(k, "m" + std::to_string(i),
                   [m, in_cs, max_in_cs, total](Env env) -> SimThread {
                     for (int r = 0; r < 20; ++r) {
                       co_await m->lock(env);
                       ++*in_cs;
                       *max_in_cs = std::max(*max_in_cs, *in_cs);
                       co_await env.compute(5_us);
                       --*in_cs;
                       ++*total;
                       co_await m->unlock(env);
                       co_await env.compute(10_us);
                     }
                     co_return;
                   });
  }
  ASSERT_TRUE(k.run_to_exit(10_s));
  EXPECT_EQ(*max_in_cs, 1) << "mutual exclusion violated";
  EXPECT_EQ(*total, 16 * 20);
}

TEST(Mutex, TryLock) {
  Kernel k(cores(1));
  auto m = std::make_shared<runtime::SimMutex>(k);
  std::vector<bool> results;
  runtime::spawn(k, "t", [m, &results](Env env) -> SimThread {
    results.push_back(co_await m->try_lock(env));  // true
    results.push_back(co_await m->try_lock(env));  // false (held)
    co_await m->unlock(env);
    results.push_back(co_await m->try_lock(env));  // true again
    co_await m->unlock(env);
    co_return;
  });
  ASSERT_TRUE(k.run_to_exit(1_s));
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0]);
  EXPECT_FALSE(results[1]);
  EXPECT_TRUE(results[2]);
}

TEST(Barrier, AllArriveBeforeAnyProceeds) {
  Kernel k(cores(4));
  const int n = 12;
  auto b = std::make_shared<runtime::SimBarrier>(k, n);
  auto arrived = std::make_shared<int>(0);
  auto violations = std::make_shared<int>(0);
  for (int i = 0; i < n; ++i) {
    runtime::spawn(k, "b" + std::to_string(i),
                   [b, arrived, violations, i, n](Env env) -> SimThread {
                     for (int r = 0; r < 10; ++r) {
                       co_await env.compute((i + 1) * 50_us);
                       ++*arrived;
                       co_await b->wait(env);
                       // After the barrier, everyone from this round arrived.
                       if (*arrived < n * (r + 1)) ++*violations;
                     }
                     co_return;
                   });
  }
  ASSERT_TRUE(k.run_to_exit(30_s));
  EXPECT_EQ(*violations, 0);
  EXPECT_EQ(*arrived, n * 10);
}

TEST(Barrier, ReusableAcrossGenerations) {
  Kernel k(cores(2));
  auto b = std::make_shared<runtime::SimBarrier>(k, 2);
  auto rounds_done = std::make_shared<int>(0);
  for (int i = 0; i < 2; ++i) {
    runtime::spawn(k, "g" + std::to_string(i),
                   [b, rounds_done](Env env) -> SimThread {
                     for (int r = 0; r < 100; ++r) {
                       co_await b->wait(env);
                       ++*rounds_done;
                     }
                     co_return;
                   });
  }
  ASSERT_TRUE(k.run_to_exit(10_s));
  EXPECT_EQ(*rounds_done, 200);
}

TEST(CondVar, BroadcastWakesAllWaiters) {
  Kernel k(cores(2));
  auto m = std::make_shared<runtime::SimMutex>(k);
  auto cv = std::make_shared<runtime::SimCond>(k);
  auto ready = std::make_shared<bool>(false);
  auto woken = std::make_shared<int>(0);
  for (int i = 0; i < 8; ++i) {
    runtime::spawn(k, "w" + std::to_string(i),
                   [m, cv, ready, woken](Env env) -> SimThread {
                     co_await m->lock(env);
                     while (!*ready) co_await cv->wait(env, *m);
                     ++*woken;
                     co_await m->unlock(env);
                     co_return;
                   });
  }
  runtime::spawn(k, "signaler", [m, cv, ready](Env env) -> SimThread {
    co_await env.compute(5_ms);
    co_await m->lock(env);
    *ready = true;
    co_await cv->broadcast(env);
    co_await m->unlock(env);
    co_return;
  });
  ASSERT_TRUE(k.run_to_exit(10_s));
  EXPECT_EQ(*woken, 8);
}

TEST(CondVar, SignalWakesAtLeastOne) {
  Kernel k(cores(2));
  auto m = std::make_shared<runtime::SimMutex>(k);
  auto cv = std::make_shared<runtime::SimCond>(k);
  auto tokens = std::make_shared<int>(0);
  auto consumed = std::make_shared<int>(0);
  for (int i = 0; i < 4; ++i) {
    runtime::spawn(k, "c" + std::to_string(i),
                   [m, cv, tokens, consumed](Env env) -> SimThread {
                     for (int r = 0; r < 5; ++r) {
                       co_await m->lock(env);
                       while (*tokens == 0) co_await cv->wait(env, *m);
                       --*tokens;
                       ++*consumed;
                       co_await m->unlock(env);
                     }
                     co_return;
                   });
  }
  runtime::spawn(k, "p", [m, cv, tokens](Env env) -> SimThread {
    for (int r = 0; r < 20; ++r) {
      co_await env.compute(100_us);
      co_await m->lock(env);
      ++*tokens;
      co_await cv->signal(env);
      co_await m->unlock(env);
    }
    co_return;
  });
  ASSERT_TRUE(k.run_to_exit(30_s));
  EXPECT_EQ(*consumed, 20);
}

TEST(Semaphore, CountingSemantics) {
  Kernel k(cores(4));
  auto sem = std::make_shared<runtime::SimSemaphore>(k, 2);
  auto inside = std::make_shared<int>(0);
  auto max_inside = std::make_shared<int>(0);
  for (int i = 0; i < 10; ++i) {
    runtime::spawn(k, "s" + std::to_string(i),
                   [sem, inside, max_inside](Env env) -> SimThread {
                     for (int r = 0; r < 5; ++r) {
                       co_await sem->wait(env);
                       ++*inside;
                       *max_inside = std::max(*max_inside, *inside);
                       co_await env.compute(20_us);
                       --*inside;
                       co_await sem->post(env);
                     }
                     co_return;
                   });
  }
  ASSERT_TRUE(k.run_to_exit(30_s));
  EXPECT_LE(*max_inside, 2);
  EXPECT_GE(*max_inside, 1);
}

TEST(SpinFlag, HandoffWorks) {
  Kernel k(cores(2));
  auto f = std::make_shared<runtime::SpinFlag>(k);
  SimTime waiter_done = -1;
  runtime::spawn(k, "w", [f, &waiter_done](Env env) -> SimThread {
    co_await f->wait_for(env, 3);
    waiter_done = env.now();
    co_return;
  });
  runtime::spawn(k, "s", [f](Env env) -> SimThread {
    co_await env.compute(1_ms);
    co_await f->set(env, 3);
    co_return;
  });
  ASSERT_TRUE(k.run_to_exit(5_s));
  EXPECT_GE(waiter_done, 1_ms);
  EXPECT_LE(waiter_done, 1_ms + 50_us);
}

TEST(SpinBarrier, SynchronizesRounds) {
  Kernel k(cores(4));
  const int n = 4;
  auto b = std::make_shared<runtime::SpinBarrier>(k, n);
  auto counter = std::make_shared<int>(0);
  auto errors = std::make_shared<int>(0);
  for (int i = 0; i < n; ++i) {
    runtime::spawn(k, "sb" + std::to_string(i),
                   [b, counter, errors, i, n](Env env) -> SimThread {
                     for (int r = 0; r < 20; ++r) {
                       co_await env.compute((i + 1) * 20_us);
                       ++*counter;
                       co_await b->wait(env);
                       if (*counter < n * (r + 1)) ++*errors;
                     }
                     co_return;
                   });
  }
  ASSERT_TRUE(k.run_to_exit(10_s));
  EXPECT_EQ(*errors, 0);
  EXPECT_EQ(*counter, n * 20);
}

}  // namespace
}  // namespace eo
