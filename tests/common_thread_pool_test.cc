#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace eo {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DestructorDrains) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&count] { count.fetch_add(1); });
  }  // destructor joins after draining
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  std::vector<std::atomic<int>> hits(64);
  ThreadPool::parallel_for(64, [&](std::size_t i) { hits[i].fetch_add(1); },
                           8);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroAndOne) {
  int calls = 0;
  ThreadPool::parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ThreadPool::parallel_for(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, TasksRunConcurrently) {
  // Two tasks that each wait for the other's side effect would deadlock on a
  // single thread; with 2 workers they complete.
  std::atomic<bool> a{false}, b{false};
  ThreadPool pool(2);
  pool.submit([&] {
    a = true;
    while (!b) std::this_thread::yield();
  });
  pool.submit([&] {
    b = true;
    while (!a) std::this_thread::yield();
  });
  pool.wait_idle();
  EXPECT_TRUE(a && b);
}

}  // namespace
}  // namespace eo
