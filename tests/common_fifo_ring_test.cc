// FifoRing tests: FIFO order across wraparound, growth re-linearization,
// erase_first semantics, and the zero-steady-state-allocation contract that
// justifies replacing std::deque on the epoll ready/waiter queues.
#include "common/fifo_ring.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>

// --- allocation-counting harness (whole test binary) ---
namespace {
std::atomic<std::uint64_t> g_news{0};
}  // namespace

void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace eo {
namespace {

TEST(FifoRing, PushPopPreservesFifoOrderAcrossWraparound) {
  FifoRing<int> q;
  // Oscillate so head_ laps the buffer many times at a small capacity.
  int next_in = 0, next_out = 0;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 5; ++i) q.push_back(next_in++);
    for (int i = 0; i < 5; ++i) {
      ASSERT_EQ(q.front(), next_out++);
      q.pop_front();
    }
  }
  EXPECT_TRUE(q.empty());
  EXPECT_LE(q.capacity(), 16u);  // never needed more than ~6 slots
}

TEST(FifoRing, GrowthRelinearizesAndKeepsOrder) {
  FifoRing<int> q;
  // Misalign head_ first so growth happens mid-wrap.
  for (int i = 0; i < 6; ++i) q.push_back(i);
  for (int i = 0; i < 6; ++i) q.pop_front();
  for (int i = 0; i < 100; ++i) q.push_back(i);  // forces several grows
  EXPECT_EQ(q.size(), 100u);
  EXPECT_EQ(q.capacity(), 128u);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(q.at(static_cast<std::size_t>(i)), i);
  }
}

TEST(FifoRing, SteadyStateIsAllocationFree) {
  FifoRing<std::uint64_t> q;
  q.reserve(64);
  const std::uint64_t before = g_news.load(std::memory_order_relaxed);
  for (int round = 0; round < 1000; ++round) {
    for (std::uint64_t i = 0; i < 64; ++i) q.push_back(i);
    while (!q.empty()) q.pop_front();
  }
  EXPECT_EQ(g_news.load(std::memory_order_relaxed) - before, 0u);
}

TEST(FifoRing, EraseFirstRemovesOneAndKeepsOrder) {
  FifoRing<int> q;
  for (int i = 0; i < 8; ++i) q.push_back(i);
  EXPECT_TRUE(q.erase_first([](int v) { return v == 3; }));
  EXPECT_FALSE(q.erase_first([](int v) { return v == 3; }));
  EXPECT_EQ(q.size(), 7u);
  const int expect[] = {0, 1, 2, 4, 5, 6, 7};
  for (std::size_t i = 0; i < 7; ++i) ASSERT_EQ(q.at(i), expect[i]);
}

TEST(FifoRing, PopAndClearDropPayloadReferences) {
  FifoRing<std::shared_ptr<int>> q;
  auto a = std::make_shared<int>(1);
  auto b = std::make_shared<int>(2);
  std::weak_ptr<int> wa = a, wb = b;
  q.push_back(std::move(a));
  q.push_back(std::move(b));
  q.pop_front();
  EXPECT_TRUE(wa.expired());  // popped slot is reset, not just skipped
  q.clear();
  EXPECT_TRUE(wb.expired());
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace eo
