#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace eo {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng r(9);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[r.next_below(10)];
  for (int c : counts) {
    EXPECT_GT(c, n / 10 - n / 50);
    EXPECT_LT(c, n / 10 + n / 50);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformInclusiveBounds) {
  Rng r(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMean) {
  Rng r(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(50.0);
  EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(Rng, PoissonSmallMean) {
  Rng r(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(Rng, PoissonLargeMean) {
  Rng r(19);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.poisson(6667.0));
  EXPECT_NEAR(sum / n, 6667.0, 15.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng r(23);
  EXPECT_EQ(r.poisson(0.0), 0u);
  EXPECT_EQ(r.poisson(-1.0), 0u);
}

TEST(Rng, NormalMoments) {
  Rng r(29);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ChanceExtremes) {
  Rng r(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceProbability) {
  Rng r(37);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, SplitIndependence) {
  Rng parent(41);
  Rng child = parent.split();
  // Child stream differs from the parent's continuation.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace eo
