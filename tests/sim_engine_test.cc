#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/units.h"

namespace eo::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0);
  EXPECT_FALSE(e.has_pending());
}

TEST(Engine, FiresInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
}

TEST(Engine, TieBreaksByInsertionOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int fired = 0;
  e.schedule_at(10, [&] { ++fired; });
  e.schedule_at(100, [&] { ++fired; });
  const auto n = e.run_until(50);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), 50);
  EXPECT_TRUE(e.has_pending());
  e.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.now(), 100);
}

TEST(Engine, ClockAdvancesToDeadlineWhenEmpty) {
  Engine e;
  e.run_until(1_ms);
  EXPECT_EQ(e.now(), 1_ms);
}

TEST(Engine, CancelPreventsFiring) {
  Engine e;
  int fired = 0;
  const EventId id = e.schedule_at(10, [&] { ++fired; });
  e.schedule_at(20, [&] { ++fired; });
  e.cancel(id);
  EXPECT_TRUE(e.has_pending());
  e.run();
  EXPECT_EQ(fired, 1);
}

TEST(Engine, CancelFiredEventIsNoOp) {
  Engine e;
  int fired = 0;
  const EventId id = e.schedule_at(10, [&] { ++fired; });
  e.run();
  e.cancel(id);  // already fired
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(e.has_pending());
  // live-count must not underflow: schedule another and verify it runs
  e.schedule_after(5, [&] { ++fired; });
  EXPECT_TRUE(e.has_pending());
  e.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, CancelInvalidIdIsNoOp) {
  Engine e;
  e.cancel(kInvalidEvent);
  e.cancel(99999);
  EXPECT_FALSE(e.has_pending());
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine e;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) e.schedule_after(10, recurse);
  };
  e.schedule_at(0, recurse);
  e.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(e.now(), 40);
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Engine e;
  SimTime seen = -1;
  e.schedule_at(100, [&] {
    e.schedule_after(50, [&] { seen = e.now(); });
  });
  e.run();
  EXPECT_EQ(seen, 150);
}

TEST(Engine, CountsFiredEvents) {
  Engine e;
  for (int i = 0; i < 7; ++i) e.schedule_at(i, [] {});
  e.run();
  EXPECT_EQ(e.events_fired(), 7u);
}

TEST(Engine, RunUntilSkipsCanceledHead) {
  Engine e;
  int fired = 0;
  const auto a = e.schedule_at(10, [&] { ++fired; });
  e.schedule_at(20, [&] { ++fired; });
  e.cancel(a);
  e.run_until(15);
  EXPECT_EQ(fired, 0);
  e.run_until(25);
  EXPECT_EQ(fired, 1);
}

TEST(Engine, CancelOfFiredIdIsNoOpForRecycledSlot) {
  Engine e;
  int a_hits = 0, b_hits = 0;
  const EventId a = e.schedule_at(10, [&] { ++a_hits; });
  e.run();
  // The slot is recycled for b; a's stale id carries the old generation.
  const EventId b = e.schedule_at(20, [&] { ++b_hits; });
  EXPECT_NE(a, b);
  e.cancel(a);  // must not hit b
  EXPECT_TRUE(e.has_pending());
  e.run();
  EXPECT_EQ(a_hits, 1);
  EXPECT_EQ(b_hits, 1);
}

TEST(Engine, PeriodicFiresEveryPeriod) {
  Engine e;
  std::vector<SimTime> fires;
  e.schedule_periodic(10, 25, [&] { fires.push_back(e.now()); });
  e.run_until(100);
  EXPECT_EQ(fires, (std::vector<SimTime>{10, 35, 60, 85}));
  EXPECT_TRUE(e.has_pending());  // still armed
  EXPECT_EQ(e.events_fired(), 4u);
}

TEST(Engine, PeriodicCancelStopsFiring) {
  Engine e;
  int fires = 0;
  const EventId id = e.schedule_periodic(10, 10, [&] { ++fires; });
  e.run_until(35);
  EXPECT_EQ(fires, 3);
  e.cancel(id);
  EXPECT_FALSE(e.has_pending());
  e.run_until(100);
  EXPECT_EQ(fires, 3);
}

TEST(Engine, PeriodicCanCancelItselfFromCallback) {
  Engine e;
  int fires = 0;
  EventId id = kInvalidEvent;
  id = e.schedule_periodic(5, 5, [&] {
    if (++fires == 3) e.cancel(id);
  });
  e.run_until(1000);
  EXPECT_EQ(fires, 3);
  EXPECT_FALSE(e.has_pending());
  EXPECT_EQ(e.now(), 1000);
}

TEST(Engine, PeriodicCountsAsOnePendingEvent) {
  Engine e;
  e.schedule_periodic(10, 10, [] {});
  EXPECT_TRUE(e.has_pending());
  e.run_until(55);
  EXPECT_TRUE(e.has_pending());
  EXPECT_EQ(e.events_fired(), 5u);
  EXPECT_EQ(e.slab_slots(), 1u);
}

TEST(Engine, SlotsRecycleThroughFreeList) {
  Engine e;
  int fired = 0;
  for (int round = 0; round < 100; ++round) {
    e.schedule_after(1, [&] { ++fired; });
    const EventId doomed = e.schedule_after(2, [&] { ++fired; });
    e.cancel(doomed);
    e.run_until(e.now() + 2);
  }
  EXPECT_EQ(fired, 100);
  // Two slots in flight at peak; the slab never grows past that.
  EXPECT_LE(e.slab_slots(), 2u);
  EXPECT_EQ(e.free_slots(), e.slab_slots());
}

}  // namespace
}  // namespace eo::sim
