#include "core/vb_policy.h"

#include <gtest/gtest.h>

namespace eo::core {
namespace {

TEST(VbPolicy, DisabledFeaturesNeverUseVb) {
  Features f;  // vanilla
  VbPolicy p(&f);
  EXPECT_FALSE(p.use_vb_futex(100, 8));
  EXPECT_FALSE(p.use_vb_epoll(100, 8));
}

TEST(VbPolicy, AutoDisableBelowCoreCount) {
  Features f = Features::optimized();
  VbPolicy p(&f);
  // Paper: VB is off while all waiters could get dedicated cores on wakeup.
  EXPECT_FALSE(p.use_vb_futex(7, 8));
  EXPECT_TRUE(p.use_vb_futex(8, 8));
  EXPECT_TRUE(p.use_vb_futex(31, 8));
  EXPECT_FALSE(p.use_vb_epoll(3, 4));
  EXPECT_TRUE(p.use_vb_epoll(4, 4));
}

TEST(VbPolicy, AlwaysOnWhenAutoDisableOff) {
  Features f = Features::optimized();
  f.vb_auto_disable = false;
  VbPolicy p(&f);
  EXPECT_TRUE(p.use_vb_futex(1, 8));
  EXPECT_TRUE(p.use_vb_epoll(1, 8));
}

TEST(VbPolicy, FutexAndEpollIndependent) {
  Features f;
  f.vb_futex = true;
  f.vb_epoll = false;
  f.vb_auto_disable = false;
  VbPolicy p(&f);
  EXPECT_TRUE(p.use_vb_futex(1, 8));
  EXPECT_FALSE(p.use_vb_epoll(100, 8));
}

TEST(VbPolicy, SingleCoreAlwaysOversubscribed) {
  Features f = Features::optimized();
  VbPolicy p(&f);
  EXPECT_TRUE(p.use_vb_futex(1, 1));
}

}  // namespace
}  // namespace eo::core
