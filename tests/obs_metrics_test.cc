// MetricRegistry, Counter handles, and the Sampler ring (src/obs).
#include <gtest/gtest.h>

#include "common/histogram.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "sim/engine.h"

namespace eo::obs {
namespace {

TEST(MetricRegistry, CounterHandleIncrementsCell) {
  MetricRegistry reg;
  const Counter c = reg.counter("test.hits");
  c.inc();
  c.inc(41);
  const auto snap = reg.snapshot_counters();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].name, "test.hits");
#if defined(EO_METRICS_ENABLED) && EO_METRICS_ENABLED
  EXPECT_EQ(snap[0].value, 42u);
#else
  EXPECT_EQ(snap[0].value, 0u);
#endif
}

TEST(MetricRegistry, DefaultCounterIsSafeSink) {
  // A module whose set_metrics was never called still increments something
  // valid; the increments just land in the thread-local sink.
  Counter c;
  for (int i = 0; i < 1000; ++i) c.inc();
}

TEST(MetricRegistry, SnapshotPreservesRegistrationOrder) {
  MetricRegistry reg;
  reg.counter("b.second");
  reg.counter("a.first");
  reg.counter("c.third");
  const auto snap = reg.snapshot_counters();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "b.second");
  EXPECT_EQ(snap[1].name, "a.first");
  EXPECT_EQ(snap[2].name, "c.third");
}

TEST(MetricRegistry, ExternalCounterReadsLiveValue) {
  MetricRegistry reg;
  std::uint64_t cell = 7;
  reg.register_counter("ext.cell", &cell);
  EXPECT_EQ(reg.snapshot_counters()[0].value, 7u);
  cell = 19;
  EXPECT_EQ(reg.snapshot_counters()[0].value, 19u);
}

TEST(MetricRegistry, GaugeReadsThroughCallback) {
  MetricRegistry reg;
  std::int64_t v = -3;
  reg.register_gauge("g.live", [&v] { return v; });
  EXPECT_EQ(reg.snapshot_gauges()[0].value, -3);
  v = 12;
  EXPECT_EQ(reg.snapshot_gauges()[0].value, 12);
}

TEST(MetricRegistry, HistogramRefAndHas) {
  MetricRegistry reg;
  Histogram h;
  h.add(100);
  reg.register_histogram("h.lat", &h);
  ASSERT_EQ(reg.n_histograms(), 1u);
  EXPECT_EQ(reg.histograms()[0].hist->total_count(), 1u);
  EXPECT_TRUE(reg.has("h.lat"));
  EXPECT_FALSE(reg.has("h.other"));
}

TEST(SeriesStore, OverwritesOldestAndCountsDropped) {
  SeriesStore s(2, 3);
  CoreSample cores[2] = {};
  for (int i = 0; i < 5; ++i) {
    TickSample t;
    t.ts = (i + 1) * 10;
    cores[0].rq_depth = i;
    s.push(t, cores);
  }
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.dropped(), 2u);
  std::vector<TickSample> ticks;
  std::vector<CoreSample> per_core;
  s.copy_ordered(&ticks, &per_core);
  ASSERT_EQ(ticks.size(), 3u);
  ASSERT_EQ(per_core.size(), 6u);  // frame-major, 2 cores per frame
  // Oldest retained frame is push #3 (ts 30).
  EXPECT_EQ(ticks[0].ts, 30);
  EXPECT_EQ(ticks[2].ts, 50);
  EXPECT_EQ(per_core[0].rq_depth, 2);
  EXPECT_EQ(per_core[4].rq_depth, 4);
}

TEST(Sampler, PeriodicTicksAndDeltas) {
  sim::Engine e;
  Sampler s(&e, 1);
  std::uint64_t cs = 0;
  SamplerConfig cfg;
  cfg.enabled = true;
  cfg.interval = 10;
  s.start(cfg,
          [&cs](CoreSample* cores, GlobalSample* g) {
            cores[0] = CoreSample{};
            *g = GlobalSample{};
            g->context_switches = cs;
            cs += 3;  // grows 3 per sample
          },
          nullptr);
  ASSERT_TRUE(s.enabled());
  e.run_until(100);
  EXPECT_EQ(s.ticks(), 10u);
  std::vector<TickSample> ticks;
  s.series().copy_ordered(&ticks, nullptr);
  ASSERT_EQ(ticks.size(), 10u);
  EXPECT_EQ(ticks[0].ts, 10);
  EXPECT_EQ(ticks[0].d_context_switches, 0u);  // no previous sample
  EXPECT_EQ(ticks[1].d_context_switches, 3u);
  EXPECT_EQ(ticks[9].d_context_switches, 3u);
  s.stop();
  EXPECT_FALSE(s.enabled());
}

TEST(Sampler, DisabledConfigIsNoOp) {
  sim::Engine e;
  Sampler s(&e, 1);
  s.start(SamplerConfig{}, [](CoreSample*, GlobalSample*) {}, nullptr);
  EXPECT_FALSE(s.enabled());
  e.run();  // no pending periodic event: drains immediately
  EXPECT_EQ(s.ticks(), 0u);
}

TEST(Sampler, HonorsRingCapacityOverride) {
  sim::Engine e;
  Sampler s(&e, 1);
  SamplerConfig cfg;
  cfg.enabled = true;
  cfg.interval = 1;
  cfg.ring_capacity = 4;
  s.start(cfg, [](CoreSample* c, GlobalSample* g) {
    c[0] = CoreSample{};
    *g = GlobalSample{};
  }, nullptr);
  e.run_until(20);
  EXPECT_EQ(s.ticks(), 20u);
  EXPECT_EQ(s.series().size(), 4u);
  EXPECT_EQ(s.series().dropped(), 16u);
}

}  // namespace
}  // namespace eo::obs
