// ServeHost / ConnectionFleet tests. The load-bearing one is the
// allocation-counting check (same global-new harness as
// sim_event_fn_test.cc): once a host is warm, the entire request path —
// arrival draw, slot-slab claim, epoll post, worker wake, service computes,
// latency record, slot free — must not touch the heap. That property is what
// lets the fleet scale to a million connections without the allocator on the
// critical path.
#include "traffic/fleet.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "traffic/slo.h"

// --- allocation-counting harness (whole test binary) ---
namespace {
std::atomic<std::uint64_t> g_news{0};
}  // namespace

void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace eo::traffic {
namespace {

/// Allocations performed by `body`.
template <typename Body>
std::uint64_t allocs_during(Body&& body) {
  const std::uint64_t before = g_news.load(std::memory_order_relaxed);
  body();
  return g_news.load(std::memory_order_relaxed) - before;
}

ServeHostConfig small_host() {
  ServeHostConfig hc;
  hc.n_connections = 4096;
  hc.max_pending = 1024;
  return hc;
}

/// Offered load as `frac` of one 8-core host's CPU capacity.
double offered(const ServeHostConfig& hc, double frac) {
  return frac * 8e9 / mean_request_cost_ns(hc);
}

TEST(Fleet, RequestPathIsAllocationFreeWhenWarm) {
  // Also covers the latency-attribution timestamps: stamping arrival/dequeue
  // and recording the queueing/service/sched-delay histograms rides the same
  // path, so the zero below proves attribution adds no steady-state
  // allocations either.
  kern::KernelConfig kc;
  kc.topo = hw::Topology::make_cores(8, 1);
  kern::Kernel k(kc);
  const ServeHostConfig hc = small_host();
  std::vector<Connection> conns(hc.n_connections);
  ArrivalConfig ac;
  // Saturating load: the request slab and the epoll ready ring reach their
  // steady-state footprint during warmup, so nothing grows afterwards.
  ac.rate_per_sec = offered(hc, 1.3);
  ServeHost host(k, hc, conns.data(), ac, 7);
  host.start(/*inject_until=*/45_ms);
  k.run_until(20_ms);  // warm: slabs, rings, wake-chain pool, engine heap
  const std::uint64_t n = allocs_during([&] { k.run_until(45_ms); });
  EXPECT_EQ(n, 0u);
  // Drain, stop the workers, and check the books balance.
  k.run_until(50_ms);
  host.stop();
  k.run_to_exit(k.now() + 1_s);
  EXPECT_GT(host.completed(), 0u);
  EXPECT_GT(host.shed(), 0u);  // 1.3x load must shed
  EXPECT_EQ(host.pending(), 0u);
  EXPECT_EQ(host.issued(), host.completed());
}

TEST(Fleet, ConnectionRecordsBalanceAfterDrain) {
  kern::KernelConfig kc;
  kc.topo = hw::Topology::make_cores(8, 1);
  kern::Kernel k(kc);
  const ServeHostConfig hc = small_host();
  std::vector<Connection> conns(hc.n_connections);
  ArrivalConfig ac;
  ac.rate_per_sec = offered(hc, 0.6);
  ServeHost host(k, hc, conns.data(), ac, 11);
  host.start(/*inject_until=*/30_ms);
  k.run_until(40_ms);
  host.stop();
  k.run_to_exit(k.now() + 1_s);

  std::uint64_t issued = 0, completed = 0, shed = 0, inflight = 0;
  for (const Connection& c : conns) {
    issued += c.issued;
    completed += c.completed;
    shed += c.shed;
    inflight += c.inflight;
  }
  EXPECT_EQ(inflight, 0u);
  EXPECT_EQ(issued, host.issued());
  EXPECT_EQ(completed, host.completed());
  EXPECT_EQ(shed, host.shed());
  EXPECT_EQ(issued, completed);
  EXPECT_EQ(host.latency().total_count(), host.completed());
  // At 0.6x load spread over 4096 connections, many carry traffic.
  std::uint64_t active = 0;
  for (const Connection& c : conns) active += c.issued > 0 ? 1 : 0;
  EXPECT_GT(active, hc.n_connections / 2);
}

TEST(Fleet, OverloadShedsInsteadOfQueueing) {
  FleetConfig fc;
  fc.n_hosts = 1;
  fc.host = small_host();
  fc.host.max_pending = 8;  // tiny slab: overload must shed, never queue
  fc.kernel.topo = hw::Topology::make_cores(8, 1);
  fc.arrival.rate_per_sec = offered(fc.host, 3.0);
  fc.warmup = 2_ms;
  fc.window = 10_ms;
  fc.drain = 2_ms;
  ConnectionFleet fleet(fc);
  const FleetResult r = fleet.run();
  EXPECT_GT(r.shed, 0u);
  EXPECT_GT(r.completed, 0u);
  EXPECT_EQ(r.latency.total_count(), r.completed);
  // Shed requests never enter the latency histogram, so the tail reflects at
  // most max_pending in flight — bounded, not collapse.
  const SloPoint p =
      SloReporter::summarize(fc.arrival.rate_per_sec, r, fc.window + fc.drain);
  EXPECT_GT(p.shed_fraction, 0.1);
  EXPECT_LT(p.achieved_ops_s, p.offered_ops_s);
}

TEST(Fleet, RunIsDeterministic) {
  FleetConfig fc;
  fc.n_hosts = 2;
  fc.host = small_host();
  fc.host.n_connections = 2048;
  fc.kernel.topo = hw::Topology::make_cores(8, 1);
  fc.arrival.kind = ArrivalKind::kOnOff;
  fc.arrival.rate_per_sec = offered(fc.host, 0.8);
  fc.warmup = 2_ms;
  fc.window = 10_ms;
  fc.drain = 2_ms;
  fc.seed = 1234;

  ConnectionFleet a(fc);
  ConnectionFleet b(fc);
  const FleetResult ra = a.run();
  const FleetResult rb = b.run();
  EXPECT_EQ(ra.issued, rb.issued);
  EXPECT_EQ(ra.completed, rb.completed);
  EXPECT_EQ(ra.shed, rb.shed);
  EXPECT_EQ(ra.active_connections, rb.active_connections);
  EXPECT_EQ(ra.latency.total_count(), rb.latency.total_count());
  EXPECT_EQ(ra.latency.p50(), rb.latency.p50());
  EXPECT_EQ(ra.latency.p99(), rb.latency.p99());
  EXPECT_EQ(ra.latency.p999(), rb.latency.p999());
  EXPECT_EQ(ra.stats.context_switches, rb.stats.context_switches);
  // The per-connection slabs must agree record by record.
  for (std::size_t i = 0; i < a.total_connections(); ++i) {
    ASSERT_EQ(a.connections()[i].issued, b.connections()[i].issued) << i;
    ASSERT_EQ(a.connections()[i].completed, b.connections()[i].completed) << i;
  }

  // A different seed must give a different run (the axes are live).
  FleetConfig fc2 = fc;
  fc2.seed = 4321;
  ConnectionFleet c(fc2);
  EXPECT_NE(c.run().latency.p50(), ra.latency.p50());
}

TEST(Fleet, ParallelRunMatchesSequential) {
  // jobs=N is a pure reordering of independent per-host simulations: every
  // aggregate and every per-connection record must match the sequential run
  // exactly, with metrics sampling on so the snapshot pick is covered too.
  FleetConfig fc;
  fc.n_hosts = 4;
  fc.host = small_host();
  fc.host.n_connections = 2048;
  fc.kernel.topo = hw::Topology::make_cores(8, 1);
  fc.kernel.metrics.enabled = true;
  fc.arrival.kind = ArrivalKind::kPoisson;
  fc.arrival.rate_per_sec = offered(fc.host, 0.8);
  fc.warmup = 2_ms;
  fc.window = 10_ms;
  fc.drain = 2_ms;
  fc.seed = 77;

  ConnectionFleet a(fc);
  const FleetResult ra = a.run();
  fc.jobs = 4;
  ConnectionFleet b(fc);
  const FleetResult rb = b.run();
  EXPECT_GT(ra.completed, 0u);
  EXPECT_EQ(ra.issued, rb.issued);
  EXPECT_EQ(ra.completed, rb.completed);
  EXPECT_EQ(ra.shed, rb.shed);
  EXPECT_EQ(ra.active_connections, rb.active_connections);
  EXPECT_EQ(ra.latency.total_count(), rb.latency.total_count());
  EXPECT_EQ(ra.latency.p50(), rb.latency.p50());
  EXPECT_EQ(ra.latency.p99(), rb.latency.p99());
  EXPECT_EQ(ra.latency.p999(), rb.latency.p999());
  EXPECT_EQ(ra.stats.context_switches, rb.stats.context_switches);
  EXPECT_EQ(ra.stats.wakeups, rb.stats.wakeups);
  for (std::size_t i = 0; i < a.total_connections(); ++i) {
    ASSERT_EQ(a.connections()[i].issued, b.connections()[i].issued) << i;
    ASSERT_EQ(a.connections()[i].completed, b.connections()[i].completed) << i;
  }
  // Both runs sampled host 0 (no violations anywhere): same snapshot pick.
  ASSERT_NE(ra.metrics, nullptr);
  ASSERT_NE(rb.metrics, nullptr);
  EXPECT_EQ(ra.metrics->watchdog_violations, 0u);
  EXPECT_EQ(ra.metrics->watchdog_checks, rb.metrics->watchdog_checks);
  EXPECT_EQ(ra.metrics->tick_series.size(), rb.metrics->tick_series.size());

  // Every host survives aggregation: the summed stats equal the sum of the
  // retained per-host entries (FleetResult used to drop all but one host).
  ASSERT_EQ(ra.host_stats.size(), 4u);
  std::uint64_t cs = 0, wakeups = 0;
  for (const auto& s : ra.host_stats) {
    cs += s.context_switches;
    wakeups += s.wakeups;
  }
  EXPECT_EQ(cs, ra.stats.context_switches);
  EXPECT_EQ(wakeups, ra.stats.wakeups);

  // Attribution histograms cover exactly the completed requests.
  EXPECT_EQ(ra.queueing.total_count(), ra.completed);
  EXPECT_EQ(ra.service.total_count(), ra.completed);
  EXPECT_EQ(ra.sched_delay.total_count(), ra.completed);

  // The merged fleet document has every host and renders byte-identically
  // whatever the jobs value — the contract serve_parallel_golden_fleet pins
  // end to end.
  ASSERT_NE(ra.fleet_metrics, nullptr);
  ASSERT_NE(rb.fleet_metrics, nullptr);
  EXPECT_EQ(ra.fleet_metrics->n_hosts, 4);
  EXPECT_EQ(ra.fleet_metrics->hosts.size(), 4u);
  EXPECT_EQ(obs::render_fleet(*ra.fleet_metrics, "json"),
            obs::render_fleet(*rb.fleet_metrics, "json"));
}

}  // namespace
}  // namespace eo::traffic
