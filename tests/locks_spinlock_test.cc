// Parameterized correctness tests over all ten spinlock algorithms: mutual
// exclusion, completion under contention, and progress on multiple cores.
#include "locks/spinlocks.h"

#include <gtest/gtest.h>

#include <memory>

#include "runtime/sim_thread.h"

namespace eo::locks {
namespace {

using runtime::Env;
using runtime::SimThread;

class SpinLockTest : public ::testing::TestWithParam<SpinLockKind> {};

struct Shared {
  int in_cs = 0;
  int max_in_cs = 0;
  int total = 0;
};

SimThread contender(Env env, std::shared_ptr<SpinLock> lock,
                    std::shared_ptr<Shared> sh, int slot, int iters) {
  for (int i = 0; i < iters; ++i) {
    co_await lock->lock(env, slot);
    ++sh->in_cs;
    sh->max_in_cs = std::max(sh->max_in_cs, sh->in_cs);
    co_await env.compute(2_us);
    --sh->in_cs;
    ++sh->total;
    co_await lock->unlock(env, slot);
    co_await env.compute(5_us);
  }
  co_return;
}

TEST_P(SpinLockTest, MutualExclusionFourCores) {
  kern::KernelConfig c;
  c.topo = hw::Topology::make_cores(4, 1);
  kern::Kernel k(c);
  auto lock = std::shared_ptr<SpinLock>(make_spinlock(GetParam(), k, 8));
  auto sh = std::make_shared<Shared>();
  const int iters = 15;
  for (int i = 0; i < 8; ++i) {
    runtime::spawn(k, "c" + std::to_string(i),
                   [lock, sh, i, iters](Env env) {
                     return contender(env, lock, sh, i, iters);
                   });
  }
  ASSERT_TRUE(k.run_to_exit(30_s)) << to_string(GetParam());
  EXPECT_EQ(sh->max_in_cs, 1) << "mutual exclusion violated by "
                              << to_string(GetParam());
  EXPECT_EQ(sh->total, 8 * iters);
}

TEST_P(SpinLockTest, OversubscribedCompletion) {
  // 16 threads on 2 cores: spinning waiters must not livelock the holder
  // forever (slices expire; the paper's pathology is slowness, not deadlock).
  kern::KernelConfig c;
  c.topo = hw::Topology::make_cores(2, 1);
  kern::Kernel k(c);
  auto lock = std::shared_ptr<SpinLock>(make_spinlock(GetParam(), k, 16));
  auto sh = std::make_shared<Shared>();
  for (int i = 0; i < 16; ++i) {
    runtime::spawn(k, "c" + std::to_string(i), [lock, sh, i](Env env) {
      return contender(env, lock, sh, i, 5);
    });
  }
  ASSERT_TRUE(k.run_to_exit(120_s)) << to_string(GetParam());
  EXPECT_EQ(sh->total, 16 * 5);
  EXPECT_EQ(sh->max_in_cs, 1);
}

TEST_P(SpinLockTest, UncontendedFastPath) {
  kern::KernelConfig c;
  c.topo = hw::Topology::make_cores(1, 1);
  kern::Kernel k(c);
  auto lock = std::shared_ptr<SpinLock>(make_spinlock(GetParam(), k, 2));
  bool done = false;
  runtime::spawn(k, "solo", [lock, &done](Env env) -> SimThread {
    for (int i = 0; i < 100; ++i) {
      co_await lock->lock(env, 0);
      co_await lock->unlock(env, 0);
    }
    done = true;
    co_return;
  });
  ASSERT_TRUE(k.run_to_exit(5_s));
  EXPECT_TRUE(done);
  // No contention: essentially no spin time.
  EXPECT_LT(k.total_spin_busy(), 1_ms);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SpinLockTest,
                         ::testing::ValuesIn(all_spinlock_kinds()),
                         [](const auto& info) {
                           std::string n = to_string(info.param);
                           for (auto& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

TEST(SpinLockFactory, AllKindsConstructible) {
  kern::KernelConfig c;
  kern::Kernel k(c);
  for (const auto kind : all_spinlock_kinds()) {
    auto lock = make_spinlock(kind, k, 4);
    ASSERT_NE(lock, nullptr);
    EXPECT_STREQ(lock->name(), to_string(kind));
  }
}

}  // namespace
}  // namespace eo::locks
