// End-to-end smoke tests of the simulated kernel: task execution, compute
// timing, yielding, fair sharing, spinning, futex blocking, and exits.
#include "kern/kernel.h"

#include <gtest/gtest.h>

#include "runtime/env.h"
#include "runtime/sim_thread.h"

namespace eo {
namespace {

using kern::Kernel;
using kern::KernelConfig;
using runtime::Env;
using runtime::SimThread;

KernelConfig one_core() {
  KernelConfig c;
  c.topo = hw::Topology::make_cores(1, 1);
  return c;
}

TEST(KernelSmoke, SingleComputeTaskRunsAndExits) {
  Kernel k(one_core());
  SimTime done_at = -1;
  runtime::spawn(k, "t", [&done_at](Env env) -> SimThread {
    co_await env.compute(10_ms);
    done_at = env.now();
    co_return;
  });
  ASSERT_TRUE(k.run_to_exit(1_s));
  EXPECT_GE(done_at, 10_ms);
  // Overheads (idle kick, context switch) are small.
  EXPECT_LE(done_at, 10_ms + 100_us);
  EXPECT_EQ(k.live_tasks(), 0);
}

TEST(KernelSmoke, TwoTasksTimeShareOneCore) {
  Kernel k(one_core());
  SimTime end_a = 0, end_b = 0;
  runtime::spawn(k, "a", [&end_a](Env env) -> SimThread {
    co_await env.compute(20_ms);
    end_a = env.now();
    co_return;
  });
  runtime::spawn(k, "b", [&end_b](Env env) -> SimThread {
    co_await env.compute(20_ms);
    end_b = env.now();
    co_return;
  });
  ASSERT_TRUE(k.run_to_exit(1_s));
  // Both need ~40ms wall in total on one core; each should finish near 40ms
  // (they interleave), certainly not at 20ms.
  EXPECT_GE(end_a, 35_ms);
  EXPECT_GE(end_b, 35_ms);
  EXPECT_LE(std::max(end_a, end_b), 45_ms);
  EXPECT_GT(k.stats().context_switches, 10u);
}

TEST(KernelSmoke, TwoCoresRunInParallel) {
  KernelConfig c;
  c.topo = hw::Topology::make_cores(2, 1);
  Kernel k(c);
  SimTime end_a = 0, end_b = 0;
  runtime::spawn(k, "a", [&end_a](Env env) -> SimThread {
    co_await env.compute(20_ms);
    end_a = env.now();
    co_return;
  });
  runtime::spawn(k, "b", [&end_b](Env env) -> SimThread {
    co_await env.compute(20_ms);
    end_b = env.now();
    co_return;
  });
  ASSERT_TRUE(k.run_to_exit(1_s));
  EXPECT_LE(end_a, 21_ms);
  EXPECT_LE(end_b, 21_ms);
}

TEST(KernelSmoke, YieldAlternatesTasks) {
  Kernel k(one_core());
  std::vector<int> order;
  for (int i = 0; i < 2; ++i) {
    runtime::spawn(k, "y" + std::to_string(i),
                   [&order, i](Env env) -> SimThread {
                     for (int r = 0; r < 5; ++r) {
                       co_await env.compute(100_us);
                       order.push_back(i);
                       co_await env.yield();
                     }
                     co_return;
                   });
  }
  ASSERT_TRUE(k.run_to_exit(1_s));
  ASSERT_EQ(order.size(), 10u);
  // With equal vruntime and yields, execution strictly alternates.
  int alternations = 0;
  for (size_t j = 1; j < order.size(); ++j) {
    if (order[j] != order[j - 1]) ++alternations;
  }
  EXPECT_GE(alternations, 7);
}

TEST(KernelSmoke, AtomicOpsWork) {
  Kernel k(one_core());
  kern::SimWord* w = k.alloc_word(5);
  std::uint64_t loaded = 0, old_faa = 0, old_xchg = 0;
  std::uint64_t cas_ok = 99, cas_fail = 99;
  runtime::spawn(k, "atomics", [&, w](Env env) -> SimThread {
    loaded = co_await env.load(w);
    old_faa = co_await env.fetch_add(w, 3);     // 5 -> 8
    cas_fail = co_await env.cas(w, 5, 100);     // fails, still 8
    cas_ok = co_await env.cas(w, 8, 20);        // 8 -> 20
    old_xchg = co_await env.exchange(w, 7);     // 20 -> 7
    co_return;
  });
  ASSERT_TRUE(k.run_to_exit(1_s));
  EXPECT_EQ(loaded, 5u);
  EXPECT_EQ(old_faa, 5u);
  EXPECT_EQ(cas_fail, 0u);
  EXPECT_EQ(cas_ok, 1u);
  EXPECT_EQ(old_xchg, 20u);
  EXPECT_EQ(w->peek(), 7u);
}

TEST(KernelSmoke, SpinUntilReleasedByStore) {
  KernelConfig c;
  c.topo = hw::Topology::make_cores(2, 1);
  Kernel k(c);
  kern::SimWord* flag = k.alloc_word(0);
  SimTime spin_done = -1;
  runtime::spawn(k, "spinner", [&, flag](Env env) -> SimThread {
    co_await env.spin_until_eq(flag, 1, 1);
    spin_done = env.now();
    co_return;
  });
  runtime::spawn(k, "setter", [flag](Env env) -> SimThread {
    co_await env.compute(5_ms);
    co_await env.store(flag, 1);
    co_return;
  });
  ASSERT_TRUE(k.run_to_exit(1_s));
  // The spinner observes the store within the coherence delay.
  EXPECT_GE(spin_done, 5_ms);
  EXPECT_LE(spin_done, 5_ms + 50_us);
  // Spinning burned ~5ms of CPU.
  EXPECT_GE(k.total_spin_busy(), 4_ms);
}

TEST(KernelSmoke, SpinTimeoutFires) {
  Kernel k(one_core());
  kern::SimWord* flag = k.alloc_word(0);
  std::uint64_t result = 99;
  SimTime end = 0;
  runtime::spawn(k, "spin-to", [&, flag](Env env) -> SimThread {
    result = co_await env.spin_until_timeout(
        flag, kern::SpinPredicate::eq(1), 1, 2_ms);
    end = env.now();
    co_return;
  });
  ASSERT_TRUE(k.run_to_exit(1_s));
  EXPECT_EQ(result, 0u);
  EXPECT_GE(end, 2_ms);
  EXPECT_LE(end, 3_ms);
}

TEST(KernelSmoke, FutexWaitWake) {
  KernelConfig c;
  c.topo = hw::Topology::make_cores(2, 1);
  Kernel k(c);
  kern::SimWord* w = k.alloc_word(0);
  std::uint64_t wait_rc = 99;
  SimTime woke_at = -1;
  std::uint64_t n_woken = 99;
  runtime::spawn(k, "waiter", [&, w](Env env) -> SimThread {
    wait_rc = co_await env.futex_wait(w, 0);
    woke_at = env.now();
    co_return;
  });
  runtime::spawn(k, "waker", [&, w](Env env) -> SimThread {
    co_await env.compute(3_ms);
    co_await env.store(w, 1);
    n_woken = co_await env.futex_wake(w, 1);
    co_return;
  });
  ASSERT_TRUE(k.run_to_exit(1_s));
  EXPECT_EQ(wait_rc, 0u);
  EXPECT_EQ(n_woken, 1u);
  EXPECT_GE(woke_at, 3_ms);
  EXPECT_LE(woke_at, 3_ms + 100_us);
  // The waiter slept (no busy-wait): spin time ~0.
  EXPECT_LE(k.total_spin_busy(), 100_us);
}

TEST(KernelSmoke, FutexWaitValueMismatchReturnsEwouldblock) {
  Kernel k(one_core());
  kern::SimWord* w = k.alloc_word(7);
  std::uint64_t rc = 99;
  runtime::spawn(k, "waiter", [&, w](Env env) -> SimThread {
    rc = co_await env.futex_wait(w, 0);  // value is 7, expected 0
    co_return;
  });
  ASSERT_TRUE(k.run_to_exit(1_s));
  EXPECT_EQ(rc, 1u);
}

TEST(KernelSmoke, FutexWakeWithNoWaiters) {
  Kernel k(one_core());
  kern::SimWord* w = k.alloc_word(0);
  std::uint64_t n = 99;
  runtime::spawn(k, "waker", [&, w](Env env) -> SimThread {
    n = co_await env.futex_wake(w, 10);
    co_return;
  });
  ASSERT_TRUE(k.run_to_exit(1_s));
  EXPECT_EQ(n, 0u);
}

TEST(KernelSmoke, SleepWakesAfterDuration) {
  Kernel k(one_core());
  SimTime woke = -1;
  runtime::spawn(k, "sleeper", [&](Env env) -> SimThread {
    co_await env.sleep(7_ms);
    woke = env.now();
    co_return;
  });
  ASSERT_TRUE(k.run_to_exit(1_s));
  EXPECT_GE(woke, 7_ms);
  EXPECT_LE(woke, 7_ms + 100_us);
}

TEST(KernelSmoke, EpollPostThenWait) {
  Kernel k(one_core());
  const int ep = k.epoll_create();
  std::uint64_t got = 0;
  runtime::spawn(k, "worker", [&, ep](Env env) -> SimThread {
    got = co_await env.epoll_wait(ep);
    co_return;
  });
  k.engine().schedule_at(2_ms, [&k, ep] { k.epoll_post_external(ep, 1234); });
  ASSERT_TRUE(k.run_to_exit(1_s));
  EXPECT_EQ(got, 1234u);
}

TEST(KernelSmoke, EpollWaitConsumesBufferedEvent) {
  Kernel k(one_core());
  const int ep = k.epoll_create();
  k.epoll_post_external(ep, 55);  // buffered before any waiter
  std::uint64_t got = 0;
  runtime::spawn(k, "worker", [&, ep](Env env) -> SimThread {
    got = co_await env.epoll_wait(ep);
    co_return;
  });
  ASSERT_TRUE(k.run_to_exit(1_s));
  EXPECT_EQ(got, 55u);
}

TEST(KernelSmoke, ManyTasksAllExit) {
  KernelConfig c;
  c.topo = hw::Topology::make_cores(4, 2);
  Kernel k(c);
  for (int i = 0; i < 64; ++i) {
    runtime::spawn(k, "t" + std::to_string(i), [](Env env) -> SimThread {
      for (int r = 0; r < 10; ++r) {
        co_await env.compute(200_us);
        co_await env.yield();
      }
      co_return;
    });
  }
  ASSERT_TRUE(k.run_to_exit(10_s));
  EXPECT_EQ(k.live_tasks(), 0);
  for (const auto& t : k.tasks()) {
    EXPECT_TRUE(t->exited()) << t->name;
    EXPECT_GE(t->stats.cpu_time, 2_ms - 100_us) << t->name;
  }
}

TEST(KernelSmoke, UtilizationNearFullWhenComputeBound) {
  Kernel k(one_core());
  runtime::spawn(k, "busy", [](Env env) -> SimThread {
    co_await env.compute(50_ms);
    co_return;
  });
  ASSERT_TRUE(k.run_to_exit(1_s));
  // Busy time over the workload's actual span (not the chunked clock).
  const double util = static_cast<double>(k.total_busy()) /
                      static_cast<double>(k.last_exit_time()) * 100.0;
  EXPECT_GE(util, 95.0);
  EXPECT_LE(util, 100.5);
}

}  // namespace
}  // namespace eo
