// Property sweep: mutual exclusion and completion hold for every lock
// implementation across kernel configurations (vanilla / VB / BWD / VM),
// core counts, and thread counts.
#include <gtest/gtest.h>

#include <memory>

#include "locks/blocking_locks.h"
#include "locks/spinlocks.h"
#include "runtime/mutex.h"
#include "runtime/sim_thread.h"

namespace eo {
namespace {

using runtime::Env;
using runtime::SimThread;

struct Shared {
  int in_cs = 0;
  bool violated = false;
  int total = 0;
};

enum class LockFamily { kSpin, kBlocking, kPthread };

struct Case {
  LockFamily family;
  int variant;  // index into the family's kind list (ignored for pthread)
  int cores;
  int threads;
  int features;  // 0 vanilla, 1 optimized, 2 vm+ple
};

class LockPropertyTest : public ::testing::TestWithParam<Case> {};

TEST_P(LockPropertyTest, MutualExclusionHolds) {
  const Case c = GetParam();
  kern::KernelConfig kc;
  kc.topo = hw::Topology::make_cores(c.cores, c.cores > 2 ? 2 : 1);
  kc.features = c.features == 0   ? core::Features::vanilla()
                : c.features == 1 ? core::Features::optimized()
                                  : core::Features::vm_ple();
  kern::Kernel k(kc);

  std::shared_ptr<locks::SpinLock> spin;
  std::shared_ptr<locks::BlockingLock> block;
  std::shared_ptr<runtime::SimMutex> mutex;
  switch (c.family) {
    case LockFamily::kSpin:
      spin = locks::make_spinlock(
          locks::all_spinlock_kinds()[static_cast<size_t>(c.variant)], k,
          c.threads);
      break;
    case LockFamily::kBlocking:
      block = locks::make_blocking_lock(
          locks::all_blocking_lock_kinds()[static_cast<size_t>(c.variant)], k,
          c.threads);
      break;
    case LockFamily::kPthread:
      mutex = std::make_shared<runtime::SimMutex>(k);
      break;
  }
  auto sh = std::make_shared<Shared>();
  const int iters = 8;
  for (int i = 0; i < c.threads; ++i) {
    runtime::spawn(k, "t" + std::to_string(i),
                   [spin, block, mutex, sh, i, iters](Env env) -> SimThread {
                     for (int r = 0; r < iters; ++r) {
                       if (spin) co_await spin->lock(env, i);
                       if (block) co_await block->lock(env, i);
                       if (mutex) co_await mutex->lock(env);
                       if (++sh->in_cs > 1) sh->violated = true;
                       co_await env.compute(2_us);
                       --sh->in_cs;
                       ++sh->total;
                       if (spin) co_await spin->unlock(env, i);
                       if (block) co_await block->unlock(env, i);
                       if (mutex) co_await mutex->unlock(env);
                       co_await env.compute(6_us);
                     }
                     co_return;
                   });
  }
  ASSERT_TRUE(k.run_to_exit(300_s));
  EXPECT_FALSE(sh->violated);
  EXPECT_EQ(sh->total, c.threads * iters);
}

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  // Every spinlock under oversubscription with BWD on and off.
  for (int v = 0; v < static_cast<int>(locks::all_spinlock_kinds().size());
       ++v) {
    cases.push_back({LockFamily::kSpin, v, 2, 8, 0});
    cases.push_back({LockFamily::kSpin, v, 2, 8, 1});
  }
  // Every blocking lock with VB on and off, and under a VM with PLE.
  for (int v = 0;
       v < static_cast<int>(locks::all_blocking_lock_kinds().size()); ++v) {
    cases.push_back({LockFamily::kBlocking, v, 2, 10, 0});
    cases.push_back({LockFamily::kBlocking, v, 2, 10, 1});
    cases.push_back({LockFamily::kBlocking, v, 4, 4, 2});
  }
  // The futex mutex across shapes.
  cases.push_back({LockFamily::kPthread, 0, 1, 6, 0});
  cases.push_back({LockFamily::kPthread, 0, 1, 6, 1});
  cases.push_back({LockFamily::kPthread, 0, 8, 24, 1});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, LockPropertyTest,
                         ::testing::ValuesIn(make_cases()),
                         [](const auto& info) {
                           const Case& c = info.param;
                           std::string n;
                           switch (c.family) {
                             case LockFamily::kSpin:
                               n = locks::to_string(
                                   locks::all_spinlock_kinds()
                                       [static_cast<size_t>(c.variant)]);
                               break;
                             case LockFamily::kBlocking:
                               n = std::string("blk_") +
                                   locks::to_string(
                                       locks::all_blocking_lock_kinds()
                                           [static_cast<size_t>(c.variant)]);
                               break;
                             case LockFamily::kPthread:
                               n = "pthread_mutex";
                               break;
                           }
                           for (auto& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           n += "_c" + std::to_string(c.cores) + "_t" +
                                std::to_string(c.threads) + "_f" +
                                std::to_string(c.features);
                           return n;
                         });

}  // namespace
}  // namespace eo
