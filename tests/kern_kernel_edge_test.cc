// Edge-case tests of the kernel: preemption timing, SMT throughput, epoll
// corner cases, futex wake counts, and VB interaction with wakeup ordering.
#include <gtest/gtest.h>

#include "kern/kernel.h"
#include "runtime/sim_thread.h"

namespace eo {
namespace {

using kern::Kernel;
using kern::KernelConfig;
using runtime::Env;
using runtime::SimThread;

TEST(KernelEdge, WakeupPreemptsLongRunner) {
  KernelConfig c;
  c.topo = hw::Topology::make_cores(1, 1);
  Kernel k(c);
  SimTime reacted = -1;
  runtime::spawn(k, "hog", [](Env env) -> SimThread {
    co_await env.compute(100_ms);
    co_return;
  });
  runtime::spawn(k, "sleeper", [&reacted](Env env) -> SimThread {
    co_await env.sleep(5_ms);
    reacted = env.now();  // must not wait for the hog's full compute
    co_return;
  });
  ASSERT_TRUE(k.run_to_exit(1_s));
  EXPECT_GE(reacted, 5_ms);
  EXPECT_LE(reacted, 5_ms + 2_ms) << "sleeper-fairness preemption missing";
}

TEST(KernelEdge, SmtSiblingsShareThroughput) {
  auto run = [](bool smt, int threads) {
    KernelConfig c;
    c.topo = smt ? hw::Topology::make_smt(2, 1) : hw::Topology::make_cores(2, 1);
    Kernel k(c);
    for (int i = 0; i < threads; ++i) {
      runtime::spawn(k, "t", [](Env env) -> SimThread {
        co_await env.compute(10_ms);
        co_return;
      });
    }
    k.run_to_exit(10_s);
    return k.last_exit_time();
  };
  const auto cores2 = run(false, 2);
  const auto ht2 = run(true, 2);
  // Two busy hyper-threads run at ~60% each: ~1.67x the full-core time.
  EXPECT_GT(ht2, cores2 * 3 / 2);
  EXPECT_LT(ht2, cores2 * 2);
  // A lone thread on an SMT pair runs at full speed.
  const auto ht1 = run(true, 1);
  EXPECT_LE(ht1, run(false, 1) + 1_ms);
}

TEST(KernelEdge, FutexWakeCountsAndOrder) {
  KernelConfig c;
  c.topo = hw::Topology::make_cores(4, 1);
  Kernel k(c);
  kern::SimWord* w = k.alloc_word(0);
  std::vector<int> wake_order;
  for (int i = 0; i < 3; ++i) {
    runtime::spawn(k, "w" + std::to_string(i),
                   [&wake_order, w, i](Env env) -> SimThread {
                     co_await env.compute((i + 1) * 100_us);  // stagger arrival
                     co_await env.futex_wait(w, 0);
                     wake_order.push_back(i);
                     co_return;
                   });
  }
  std::uint64_t n1 = 99, n2 = 99;
  runtime::spawn(k, "waker", [&, w](Env env) -> SimThread {
    co_await env.compute(2_ms);  // let all three park
    co_await env.store(w, 1);
    n1 = co_await env.futex_wake(w, 2);
    co_await env.compute(2_ms);
    n2 = co_await env.futex_wake(w, 10);
    co_return;
  });
  ASSERT_TRUE(k.run_to_exit(5_s));
  EXPECT_EQ(n1, 2u);
  EXPECT_EQ(n2, 1u);
  // FIFO: earliest waiter woken first.
  ASSERT_EQ(wake_order.size(), 3u);
  EXPECT_EQ(wake_order[0], 0);
  EXPECT_EQ(wake_order[1], 1);
  EXPECT_EQ(wake_order[2], 2);
}

TEST(KernelEdge, EpollMultipleEventsBuffered) {
  KernelConfig c;
  c.topo = hw::Topology::make_cores(1, 1);
  Kernel k(c);
  const int ep = k.epoll_create();
  for (std::uint64_t d = 1; d <= 3; ++d) k.epoll_post_external(ep, d);
  std::vector<std::uint64_t> got;
  runtime::spawn(k, "w", [&, ep](Env env) -> SimThread {
    for (int i = 0; i < 3; ++i) got.push_back(co_await env.epoll_wait(ep));
    co_return;
  });
  ASSERT_TRUE(k.run_to_exit(1_s));
  EXPECT_EQ(got, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(KernelEdge, EpollTaskToTaskPost) {
  KernelConfig c;
  c.topo = hw::Topology::make_cores(2, 1);
  Kernel k(c);
  const int ep = k.epoll_create();
  std::uint64_t got = 0;
  runtime::spawn(k, "consumer", [&, ep](Env env) -> SimThread {
    got = co_await env.epoll_wait(ep);
    co_return;
  });
  runtime::spawn(k, "producer", [ep](Env env) -> SimThread {
    co_await env.compute(1_ms);
    co_await env.epoll_post(ep, 77);
    co_return;
  });
  ASSERT_TRUE(k.run_to_exit(1_s));
  EXPECT_EQ(got, 77u);
}

TEST(KernelEdge, VbWakeDuringCheckQuantum) {
  // All threads on one core VB-park; the waker (external timer via a second
  // core) clears a flag while the parked thread is mid check-quantum.
  KernelConfig c;
  c.topo = hw::Topology::make_cores(2, 1);
  c.features = core::Features::optimized();
  c.features.vb_auto_disable = false;  // force VB even for single waiters
  Kernel k(c);
  kern::SimWord* w = k.alloc_word(0);
  SimTime woke = -1;
  runtime::spawn(k, "waiter", [&, w](Env env) -> SimThread {
    co_await env.futex_wait(w, 0);
    woke = env.now();
    co_return;
  });
  runtime::spawn(k, "waker", [w](Env env) -> SimThread {
    co_await env.compute(2_ms);
    co_await env.store(w, 1);
    co_await env.futex_wake(w, 1);
    co_return;
  });
  ASSERT_TRUE(k.run_to_exit(5_s));
  EXPECT_GE(woke, 2_ms);
  EXPECT_LE(woke, 2_ms + 200_us);
  EXPECT_GE(k.stats().vb_parks, 1u);
}

TEST(KernelEdge, ExitWhileOthersBlockedDoesNotHang) {
  KernelConfig c;
  c.topo = hw::Topology::make_cores(1, 1);
  Kernel k(c);
  kern::SimWord* w = k.alloc_word(0);
  runtime::spawn(k, "blocked-forever", [w](Env env) -> SimThread {
    co_await env.futex_wait(w, 0);
    co_return;
  });
  runtime::spawn(k, "worker", [w](Env env) -> SimThread {
    co_await env.compute(1_ms);
    co_await env.store(w, 1);
    co_await env.futex_wake(w, 1);
    co_return;
  });
  ASSERT_TRUE(k.run_to_exit(2_s));
}

TEST(KernelEdge, ZeroWakeOnEmptyAndMismatchedWord) {
  KernelConfig c;
  c.topo = hw::Topology::make_cores(1, 1);
  Kernel k(c);
  kern::SimWord* a = k.alloc_word(0);
  kern::SimWord* b = k.alloc_word(0);
  std::uint64_t woken_b = 99;
  runtime::spawn(k, "waiter-a", [a](Env env) -> SimThread {
    co_await env.futex_wait(a, 0);
    co_return;
  });
  runtime::spawn(k, "waker-b", [&, a, b](Env env) -> SimThread {
    co_await env.compute(1_ms);
    woken_b = co_await env.futex_wake(b, 10);  // nobody waits on b
    co_await env.store(a, 1);
    co_await env.futex_wake(a, 1);
    co_return;
  });
  ASSERT_TRUE(k.run_to_exit(2_s));
  EXPECT_EQ(woken_b, 0u) << "wake must match the futex word, not the bucket";
}

TEST(KernelEdge, TaskStatsAccumulate) {
  KernelConfig c;
  c.topo = hw::Topology::make_cores(1, 1);
  Kernel k(c);
  runtime::spawn(k, "a", [](Env env) -> SimThread {
    for (int i = 0; i < 10; ++i) {
      co_await env.compute(500_us);
      co_await env.yield();
    }
    co_return;
  });
  runtime::spawn(k, "b", [](Env env) -> SimThread {
    co_await env.compute(5_ms);
    co_return;
  });
  ASSERT_TRUE(k.run_to_exit(2_s));
  const auto& a = *k.tasks()[0];
  EXPECT_NEAR(static_cast<double>(a.stats.cpu_time), 5e6, 5e5);
  EXPECT_GE(a.stats.voluntary_switches, 10u);
}

}  // namespace
}  // namespace eo
