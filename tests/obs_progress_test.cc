// The live progress feed's machine contract: `JsonlProgressSink` must emit
// one well-formed JSON object per event no matter what the cell label
// contains — sweep axes are built from workload and config names, and a
// hostile name (quotes, backslashes, newlines, control bytes) must come out
// escaped through common/json, not corrupt the JSONL stream. A tail-reader
// parsing line-by-line is the consumer being protected here.
#include "obs/progress.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/json.h"

namespace eo::obs {
namespace {

/// Runs `evs` through a JsonlProgressSink writing to a temp file and returns
/// the raw bytes the sink produced.
std::string emit_jsonl(const std::vector<ProgressEvent>& evs) {
  std::FILE* f = std::tmpfile();
  EXPECT_NE(f, nullptr);
  {
    JsonlProgressSink sink(f);
    for (const ProgressEvent& ev : evs) sink.emit(ev);
  }
  std::fflush(f);
  std::rewind(f);
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

std::vector<std::string> split_lines(const std::string& s) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : s) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  EXPECT_TRUE(cur.empty()) << "feed does not end in a newline";
  return lines;
}

// A label exercising every escape class: quote, backslash, newline, tab,
// carriage return, a raw control byte, and the folded-format delimiter.
const char* kHostileLabel = "evil \"cell\"\\name;\nwith\ttabs\r\x01!";
// What a conforming JSON parser hands back. common/json's validation-only
// parser maps \uXXXX escapes (carriage return and the control byte, which
// escape() emits as \u000d / \u0001) to '?'.
const char* kHostileRoundTrip = "evil \"cell\"\\name;\nwith\ttabs??!";

TEST(JsonlProgressSink, EveryEventKindIsOneParseableLine) {
  std::vector<ProgressEvent> evs(5);
  evs[0].kind = ProgressEvent::Kind::kHostStart;
  evs[0].host = 0;
  evs[0].n_hosts = 4;
  evs[1].kind = ProgressEvent::Kind::kHostProgress;
  evs[1].host = 0;
  evs[1].n_hosts = 4;
  evs[1].fraction = 0.25;
  evs[1].completed = 10;
  evs[1].shed = 1;
  evs[2].kind = ProgressEvent::Kind::kHostFinish;
  evs[2].host = 0;
  evs[2].n_hosts = 4;
  evs[2].completed = 40;
  evs[2].shed = 2;
  evs[2].watchdog_violations = 0;
  evs[3].kind = ProgressEvent::Kind::kCellStart;
  evs[3].label = kHostileLabel;
  evs[3].total = 6;
  evs[4].kind = ProgressEvent::Kind::kCellFinish;
  evs[4].label = kHostileLabel;
  evs[4].done = 1;
  evs[4].total = 6;
  evs[4].ok = true;
  evs[4].exec_ms = 1.5;
  evs[4].attempts = 1;

  const std::vector<std::string> lines = split_lines(emit_jsonl(evs));
  ASSERT_EQ(lines.size(), 5u);
  const char* kinds[] = {"host_start", "host_progress", "host_finish",
                         "cell_start", "cell_finish"};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    json::Value v;
    std::string err;
    ASSERT_TRUE(json::parse(lines[i], &v, &err))
        << "line " << i << " is not valid JSON: " << err << "\n"
        << lines[i];
    ASSERT_TRUE(v.is_object());
    const json::Value* event = v.get("event");
    ASSERT_NE(event, nullptr);
    ASSERT_TRUE(event->is_string());
    EXPECT_EQ(event->str, kinds[i]);
  }
}

TEST(JsonlProgressSink, HostileCellNameRoundTripsEscaped) {
  ProgressEvent ev;
  ev.kind = ProgressEvent::Kind::kCellFinish;
  ev.label = kHostileLabel;
  ev.done = 3;
  ev.total = 9;
  ev.ok = false;
  ev.exec_ms = 0.25;
  ev.attempts = 2;
  const std::vector<std::string> lines = split_lines(emit_jsonl({ev}));
  ASSERT_EQ(lines.size(), 1u);
  // Raw newline/quote bytes inside the emitted line would break a tail
  // reader; everything hostile must have been escaped.
  EXPECT_EQ(lines[0].find('\n'), std::string::npos);
  EXPECT_EQ(lines[0].find('\x01'), std::string::npos);
  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(lines[0], &v, &err)) << err << "\n" << lines[0];
  const json::Value* cell = v.get("cell");
  ASSERT_NE(cell, nullptr);
  ASSERT_TRUE(cell->is_string());
  EXPECT_EQ(cell->str, kHostileRoundTrip);
  const json::Value* status = v.get("status");
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->str, "incomplete");
}

TEST(JsonlProgressSink, NotApplicableCellStaysParseable) {
  ProgressEvent ev;
  ev.kind = ProgressEvent::Kind::kCellFinish;
  ev.label = kHostileLabel;
  ev.not_applicable = true;
  ev.done = 2;
  ev.total = 4;
  const std::vector<std::string> lines = split_lines(emit_jsonl({ev}));
  ASSERT_EQ(lines.size(), 1u);
  json::Value v;
  std::string err;
  ASSERT_TRUE(json::parse(lines[0], &v, &err)) << err;
  const json::Value* status = v.get("status");
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->str, "n/a");
}

TEST(LineProgressSink, HostileCellNameDoesNotCrash) {
  // The human feed makes no JSON promise, but it must not blow up either.
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  {
    LineProgressSink sink(f);
    ProgressEvent ev;
    ev.kind = ProgressEvent::Kind::kCellFinish;
    ev.label = kHostileLabel;
    ev.done = 1;
    ev.total = 1;
    ev.exec_ms = 1.0;
    sink.emit(ev);
  }
  std::fclose(f);
}

}  // namespace
}  // namespace eo::obs
