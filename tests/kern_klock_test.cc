#include "kern/klock.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace eo::kern {
namespace {

TEST(KLock, FreeLockNoWait) {
  KLock l;
  EXPECT_TRUE(l.free_at(0));
  EXPECT_EQ(l.acquire(100, 50), 0);
  EXPECT_FALSE(l.free_at(120));
  EXPECT_TRUE(l.free_at(150));
}

TEST(KLock, SerializesOverlappingAcquires) {
  KLock l;
  EXPECT_EQ(l.acquire(0, 100), 0);    // holds [0, 100)
  EXPECT_EQ(l.acquire(30, 100), 70);  // waits until 100, holds [100, 200)
  EXPECT_EQ(l.acquire(50, 100), 150); // waits until 200
}

TEST(KLock, NoContentionAfterRelease) {
  KLock l;
  l.acquire(0, 100);
  EXPECT_EQ(l.acquire(500, 100), 0);
}

TEST(KLock, ConvoyAccumulates) {
  // N back-to-back acquirers at the same instant: the k-th waits k*hold.
  KLock l;
  for (int k = 0; k < 10; ++k) {
    EXPECT_EQ(l.acquire(1000, 200), k * 200);
  }
  EXPECT_EQ(l.acquisitions(), 10u);
  EXPECT_EQ(l.total_wait(), 200 * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8 + 9));
  EXPECT_EQ(l.total_hold(), 2000);
}

}  // namespace
}  // namespace eo::kern
