// FleetAggregator contract tests: the merged eo-metrics-fleet document is a
// pure function of the per-host inputs (add_host order must not matter, down
// to the rendered bytes), counters sum exactly, gauges reduce to
// min/mean/max, fleet histograms merge the raw per-host distributions, and
// every recorded watchdog violation is attributable via its `host=<h>`
// prefix. The structural validator is exercised on both the happy path and
// targeted corruptions.
#include "obs/fleet_agg.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/histogram.h"

namespace eo::obs {
namespace {

/// A synthetic host snapshot: deterministic, distinct per host index.
struct SyntheticHost {
  MetricsDoc doc;
  Histogram lat;

  explicit SyntheticHost(int h) {
    doc.n_cores = 4;
    doc.interval = 1_ms;
    doc.ticks = 10 + static_cast<std::uint64_t>(h);
    doc.dropped_ticks = static_cast<std::uint64_t>(h);
    doc.counters.push_back({"sched.switches", 100u * (h + 1)});
    doc.counters.push_back({"vb.parks", 7u * (h + 1)});
    doc.gauges.push_back({"rq.depth", 2 * h + 1});
    doc.core_series.resize(8);
    for (auto& cs : doc.core_series) cs.rq_depth = h + 1;
    doc.watchdog_checks = 50;
    if (h == 1) {
      doc.watchdog_violations = 1;
      doc.violation_records.push_back(
          {/*ts=*/123, "affinity", "core 2 ran a pinned-away task"});
    }
    for (int i = 0; i < 100; ++i) lat.add(1000 * (h + 1) + i);
  }

  FleetHostSample sample() const {
    FleetHostSample s;
    s.host = -1;  // caller fills in
    s.doc = &doc;
    s.histograms.emplace_back("serve.latency", &lat);
    s.issued = 10u * static_cast<std::uint64_t>(lat.total_count());
    s.completed = lat.total_count();
    s.shed = 5;
    s.p99_ns = lat.p99();
    return s;
  }
};

FleetMetricsDoc merge_in_order(const std::vector<SyntheticHost>& hosts,
                               const std::vector<int>& order) {
  FleetAggregator agg;
  for (int h : order) {
    FleetHostSample s = hosts[static_cast<std::size_t>(h)].sample();
    s.host = h;
    agg.add_host(s);
  }
  return agg.finish();
}

TEST(FleetAgg, MergeIsAddHostOrderIndependent) {
  std::vector<SyntheticHost> hosts;
  for (int h = 0; h < 4; ++h) hosts.emplace_back(h);
  const FleetMetricsDoc fwd = merge_in_order(hosts, {0, 1, 2, 3});
  const FleetMetricsDoc rev = merge_in_order(hosts, {3, 1, 2, 0});
  // Byte-identical rendering, not just field-wise equality: this is the
  // property that makes --jobs=N fleet exports match --jobs=1.
  EXPECT_EQ(render_fleet(fwd, "json"), render_fleet(rev, "json"));
  EXPECT_EQ(fwd.hosts.size(), 4u);
  for (std::size_t h = 0; h < 4; ++h) {
    EXPECT_EQ(fwd.hosts[h].host, static_cast<int>(h));
  }
}

TEST(FleetAgg, CountersSumAndGaugesReduce) {
  std::vector<SyntheticHost> hosts;
  for (int h = 0; h < 3; ++h) hosts.emplace_back(h);
  const FleetMetricsDoc doc = merge_in_order(hosts, {2, 0, 1});
  ASSERT_EQ(doc.counters.size(), 2u);
  EXPECT_EQ(doc.counters[0].name, "sched.switches");
  EXPECT_EQ(doc.counters[0].value, 100u * (1 + 2 + 3));
  EXPECT_EQ(doc.counters[1].value, 7u * (1 + 2 + 3));
  // Gauge values per host: 1, 3, 5 -> min 1, max 5, mean 3.
  ASSERT_EQ(doc.gauges.size(), 1u);
  EXPECT_EQ(doc.gauges[0].min, 1);
  EXPECT_EQ(doc.gauges[0].max, 5);
  EXPECT_DOUBLE_EQ(doc.gauges[0].mean, 3.0);
  // Ticks sum; per-host mean rq depth comes from the retained core series.
  EXPECT_EQ(doc.ticks, 10u + 11u + 12u);
  EXPECT_DOUBLE_EQ(doc.hosts[2].mean_rq_depth, 3.0);
}

TEST(FleetAgg, HistogramsMergeRawDistributions) {
  std::vector<SyntheticHost> hosts;
  for (int h = 0; h < 3; ++h) hosts.emplace_back(h);
  const FleetMetricsDoc doc = merge_in_order(hosts, {0, 1, 2});
  ASSERT_EQ(doc.histograms.size(), 1u);
  EXPECT_EQ(doc.histograms[0].name, "serve.latency");
  EXPECT_EQ(doc.histograms[0].count, 300u);
  // The fleet quantile comes from the true merged distribution: a reference
  // merge of the same raw histograms must agree exactly.
  Histogram ref;
  for (const auto& h : hosts) ref.merge(h.lat);
  EXPECT_EQ(doc.histograms[0].p99, ref.p99());
  EXPECT_EQ(doc.histograms[0].min, ref.min());
  EXPECT_EQ(doc.histograms[0].max, ref.max());
}

TEST(FleetAgg, ViolationsAreHostTagged) {
  std::vector<SyntheticHost> hosts;
  for (int h = 0; h < 3; ++h) hosts.emplace_back(h);
  const FleetMetricsDoc doc = merge_in_order(hosts, {2, 1, 0});
  EXPECT_EQ(doc.watchdog_checks, 150u);
  EXPECT_EQ(doc.watchdog_violations, 1u);
  ASSERT_EQ(doc.violation_records.size(), 1u);
  EXPECT_EQ(doc.violation_records[0].invariant, "host=1 affinity");
  EXPECT_EQ(doc.violation_records[0].detail,
            "core 2 ran a pinned-away task");

  // The standalone single-doc tagger applies the same prefix, once.
  const MetricsDoc tagged = tag_host_violations(hosts[1].doc, 1);
  ASSERT_EQ(tagged.violation_records.size(), 1u);
  EXPECT_EQ(tagged.violation_records[0].invariant, "host=1 affinity");
}

TEST(FleetAgg, RenderedJsonValidates) {
  std::vector<SyntheticHost> hosts;
  for (int h = 0; h < 3; ++h) hosts.emplace_back(h);
  const std::string json = render_fleet(merge_in_order(hosts, {0, 1, 2}),
                                        "json");
  std::string err;
  EXPECT_TRUE(validate_fleet_metrics_json(json, &err)) << err;

  // Targeted corruptions must be caught, with the reason naming the field.
  auto corrupt = [&](const std::string& from, const std::string& to) {
    std::string bad = json;
    const auto pos = bad.find(from);
    ASSERT_NE(pos, std::string::npos) << from;
    bad.replace(pos, from.size(), to);
    std::string why;
    EXPECT_FALSE(validate_fleet_metrics_json(bad, &why)) << from;
  };
  corrupt("\"eo-metrics-fleet\"", "\"eo-metrics\"");   // wrong schema
  corrupt("\"host\":0", "\"host\":7");                 // hosts not 0..n-1
  corrupt("\"host=1 affinity\"", "\"affinity\"");      // untagged violation
}

TEST(FleetAgg, ReportRendersHostTable) {
  std::vector<SyntheticHost> hosts;
  for (int h = 0; h < 2; ++h) hosts.emplace_back(h);
  const std::string report =
      render_fleet(merge_in_order(hosts, {1, 0}), "report");
  EXPECT_NE(report.find("hosts=2"), std::string::npos);
  EXPECT_NE(report.find("host=1 affinity"), std::string::npos);
}

}  // namespace
}  // namespace eo::obs
