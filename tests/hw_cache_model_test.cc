// Tests for the analytic cache model, asserting the qualitative shape of
// Figure 4's indirect-cost analysis.
#include "hw/cache_model.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace eo::hw {
namespace {

class CacheModelTest : public ::testing::Test {
 protected:
  CacheModel cm{CacheParams{}, TlbParams{}};
};

TEST_F(CacheModelTest, SteadyCostIncreasesWithFootprintRandom) {
  double prev = 0;
  for (std::uint64_t fp = 16_KiB; fp <= 256_MiB; fp *= 2) {
    const double c = cm.steady_access_ns(AccessPattern::kRandomRead, fp);
    EXPECT_GE(c, prev - 1e-9) << fp;
    prev = c;
  }
}

TEST_F(CacheModelTest, SequentialCheaperThanRandomForLargeSets) {
  const double seq = cm.steady_access_ns(AccessPattern::kSequentialRead, 64_MiB);
  const double rnd = cm.steady_access_ns(AccessPattern::kRandomRead, 64_MiB);
  EXPECT_LT(seq, rnd / 4.0);
}

TEST_F(CacheModelTest, RmwCostsMoreThanRead) {
  for (std::uint64_t fp : {256_KiB, 4_MiB, 64_MiB}) {
    EXPECT_GT(cm.steady_access_ns(AccessPattern::kRandomRMW, fp),
              cm.steady_access_ns(AccessPattern::kRandomRead, fp));
    EXPECT_GT(cm.steady_access_ns(AccessPattern::kSequentialRMW, fp),
              cm.steady_access_ns(AccessPattern::kSequentialRead, fp));
  }
}

TEST_F(CacheModelTest, SwitchPenaltyZeroWhenBothFitL2) {
  EXPECT_EQ(cm.switch_penalty(AccessPattern::kSequentialRead, 64_KiB, 64_KiB),
            0);
}

TEST_F(CacheModelTest, SequentialSwitchPenaltyGrowsToMillisecond) {
  // The paper: ~1 ms per context switch at a 128 MB array (64 MB sub-array).
  const auto small =
      cm.switch_penalty(AccessPattern::kSequentialRead, 256_KiB, 256_KiB);
  const auto large =
      cm.switch_penalty(AccessPattern::kSequentialRead, 64_MiB, 64_MiB);
  EXPECT_GT(small, 0);
  EXPECT_LT(small, 20_us);
  EXPECT_GT(large, 700_us);
  EXPECT_LT(large, 1500_us);
}

TEST_F(CacheModelTest, RandomRmwSwitchPenaltyZero) {
  // Paper: the L2 is not a factor for RMW; cold-start misses would have
  // missed anyway.
  EXPECT_EQ(cm.switch_penalty(AccessPattern::kRandomRMW, 8_MiB, 8_MiB), 0);
}

TEST_F(CacheModelTest, TlbConstructiveRegionForRandomRead) {
  // Figure 4's rnd-r curve: halving the footprint from 512KB->256KB (total
  // array 512KB) pays off via the L1 dTLB...
  const double full = cm.steady_access_ns(AccessPattern::kRandomRead, 512_KiB);
  const double half = cm.steady_access_ns(AccessPattern::kRandomRead, 256_KiB);
  EXPECT_LT(half, full);
  // ...and beyond 4MB total, halving pays off via the STLB.
  const double full8 = cm.steady_access_ns(AccessPattern::kRandomRead, 8_MiB);
  const double half4 = cm.steady_access_ns(AccessPattern::kRandomRead, 4_MiB);
  EXPECT_LT(half4, full8);
}

TEST_F(CacheModelTest, MigrationPenaltyCrossSocketCostsMore) {
  const auto in_node = cm.migration_penalty(4_MiB, false);
  const auto cross = cm.migration_penalty(4_MiB, true);
  EXPECT_GT(in_node, 0);
  EXPECT_GT(cross, in_node);
}

TEST_F(CacheModelTest, MigrationPenaltyBoundedByCacheSizes) {
  // Penalty saturates once the working set exceeds the caches.
  EXPECT_EQ(cm.migration_penalty(64_MiB, false),
            cm.migration_penalty(128_MiB, false));
}

TEST_F(CacheModelTest, ComputeRateFactorIdentityAtReference) {
  MemProfile prof;
  prof.working_set = 1_MiB;
  prof.pattern = AccessPattern::kRandomRead;
  prof.mem_intensity = 0.5;
  EXPECT_DOUBLE_EQ(cm.compute_rate_factor(prof, 1_MiB, 1_MiB), 1.0);
}

TEST_F(CacheModelTest, ComputeRateFactorScalesWithIntensity) {
  MemProfile lo, hi;
  lo.working_set = hi.working_set = 8_MiB;
  lo.pattern = hi.pattern = AccessPattern::kRandomRead;
  lo.mem_intensity = 0.1;
  hi.mem_intensity = 0.9;
  const double flo = cm.compute_rate_factor(lo, 8_MiB, 1_MiB);
  const double fhi = cm.compute_rate_factor(hi, 8_MiB, 1_MiB);
  EXPECT_GT(fhi, flo);
  EXPECT_GT(flo, 1.0);
}

TEST_F(CacheModelTest, PatternNames) {
  EXPECT_STREQ(to_string(AccessPattern::kSequentialRead), "seq-r");
  EXPECT_STREQ(to_string(AccessPattern::kRandomRMW), "rnd-rmw");
  EXPECT_TRUE(is_random(AccessPattern::kRandomRead));
  EXPECT_FALSE(is_random(AccessPattern::kSequentialRMW));
  EXPECT_TRUE(is_rmw(AccessPattern::kSequentialRMW));
}

}  // namespace
}  // namespace eo::hw
