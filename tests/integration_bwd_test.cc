// Integration tests of busy-waiting detection end-to-end.
#include <gtest/gtest.h>

#include "metrics/experiment.h"
#include "workloads/pipeline.h"
#include "workloads/suite.h"

namespace eo {
namespace {

using metrics::RunConfig;
using metrics::run_experiment;

TEST(BwdIntegration, DeschedulesOversubscribedSpinners) {
  RunConfig rc;
  rc.cpus = 2;
  rc.sockets = 1;
  core::Features f;
  f.bwd = true;
  rc.features = f;
  rc.deadline = 300_s;
  const auto r = run_experiment(rc, [&](kern::Kernel& k) {
    workloads::PipelineConfig pc;
    pc.n_stages = 8;
    pc.items = 50;
    pc.stage_work = 50_us;
    workloads::spawn_spin_pipeline(k, pc);
  });
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.stats.bwd_descheduled, 20u);
  EXPECT_GT(r.bwd.sensitivity(), 0.95);
}

TEST(BwdIntegration, SpeedsUpOversubscribedSpinPipeline) {
  auto run = [&](bool bwd) {
    RunConfig rc;
    rc.cpus = 2;
    rc.sockets = 1;
    core::Features f;
    f.bwd = bwd;
    rc.features = f;
    rc.deadline = 600_s;
    return run_experiment(rc, [&](kern::Kernel& k) {
      workloads::PipelineConfig pc;
      pc.n_stages = 8;
      pc.items = 60;
      pc.stage_work = 50_us;
      workloads::spawn_spin_pipeline(k, pc);
    });
  };
  const auto vanilla = run(false);
  const auto bwd = run(true);
  ASSERT_TRUE(vanilla.completed && bwd.completed);
  EXPECT_LT(bwd.exec_time, vanilla.exec_time)
      << "BWD must recover CPU from futile spinning";
  EXPECT_LT(bwd.spin_busy, vanilla.spin_busy / 2);
}

TEST(BwdIntegration, NoHarmWithoutOversubscription) {
  // 8 spinning stages on 8 cores: spinners have dedicated cores, and BWD's
  // descheduling must not slow the pipeline down materially (nothing else
  // to run; the skip expires trivially).
  auto run = [&](bool bwd) {
    RunConfig rc;
    rc.cpus = 8;
    rc.sockets = 1;
    core::Features f;
    f.bwd = bwd;
    rc.features = f;
    rc.deadline = 300_s;
    return run_experiment(rc, [&](kern::Kernel& k) {
      workloads::PipelineConfig pc;
      pc.n_stages = 8;
      pc.items = 60;
      pc.stage_work = 50_us;
      workloads::spawn_spin_pipeline(k, pc);
    });
  };
  const auto vanilla = run(false);
  const auto bwd = run(true);
  ASSERT_TRUE(vanilla.completed && bwd.completed);
  EXPECT_LT(bwd.exec_time, vanilla.exec_time * 3 / 2);
}

TEST(BwdIntegration, FalsePositiveRateLowOnBlockingWorkload) {
  const auto& spec = workloads::find_benchmark("ft");
  RunConfig rc;
  rc.cpus = 8;
  rc.sockets = 2;
  core::Features f;
  f.bwd = true;
  rc.features = f;
  rc.ref_footprint = spec.ref_footprint();
  rc.deadline = 300_s;
  const auto r = run_experiment(rc, [&](kern::Kernel& k) {
    workloads::spawn_benchmark(k, spec, 32, 3, 0.1);
  });
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.bwd.windows, 100u);
  EXPECT_GT(r.bwd.specificity(), 0.99);
}

TEST(BwdIntegration, PleChargesExitsOnlyForPauseSpinsInVm) {
  auto run = [&](bool vm, bool pause) {
    RunConfig rc;
    rc.cpus = 2;
    rc.sockets = 1;
    rc.features = vm ? core::Features::vm_ple() : core::Features::vanilla();
    rc.deadline = 600_s;
    return run_experiment(rc, [&](kern::Kernel& k) {
      workloads::PipelineConfig pc;
      pc.n_stages = 8;
      pc.items = 30;
      pc.stage_work = 50_us;
      pc.uses_pause = pause;
      workloads::spawn_spin_pipeline(k, pc);
    });
  };
  const auto native = run(false, true);
  const auto vm_nopause = run(true, false);
  const auto vm_pause = run(true, true);
  ASSERT_TRUE(native.completed && vm_nopause.completed && vm_pause.completed);
  EXPECT_EQ(native.stats.ple_exits, 0u);
  EXPECT_EQ(vm_nopause.stats.ple_exits, 0u)
      << "PLE cannot see spin loops without PAUSE (paper Figure 14)";
  EXPECT_GT(vm_pause.stats.ple_exits, 0u);
  // ...and even then it does not rescue the workload (vCPU granularity).
  EXPECT_GE(vm_pause.exec_time, native.exec_time * 9 / 10);
}

}  // namespace
}  // namespace eo
