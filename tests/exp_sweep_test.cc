// Sweep grid semantics: expansion is row-major with the first axis slowest,
// appliers edit the base config in axis order, and flat indices are stable —
// the contract the runner's `--jobs` independence rests on.
#include <gtest/gtest.h>

#include "exp/sweep.h"

namespace eo {
namespace {

using exp::Cell;
using exp::Sweep;

TEST(SweepTest, ZeroAxisSweepHasOneCell) {
  Sweep s("empty");
  EXPECT_EQ(s.size(), 1u);
  const auto cells = s.expand();
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].flat, 0u);
  EXPECT_TRUE(cells[0].idx.empty());
  EXPECT_TRUE(cells[0].coords.empty());
}

TEST(SweepTest, ExpansionIsRowMajorLastAxisFastest) {
  Sweep s("grid");
  s.axis("outer", {"a", "b"}).axis("inner", {"x", "y", "z"});
  EXPECT_EQ(s.size(), 6u);
  EXPECT_EQ(s.dims(), (std::vector<std::size_t>{2, 3}));

  const auto cells = s.expand();
  ASSERT_EQ(cells.size(), 6u);
  const std::vector<std::pair<std::size_t, std::size_t>> want = {
      {0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}};
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].flat, i);
    ASSERT_EQ(cells[i].idx.size(), 2u);
    EXPECT_EQ(cells[i].at(0), want[i].first);
    EXPECT_EQ(cells[i].at(1), want[i].second);
  }
  EXPECT_EQ(cells[0].id(), "a/x");
  EXPECT_EQ(cells[1].id(), "a/y");
  EXPECT_EQ(cells[3].id(), "b/x");
  EXPECT_EQ(cells[5].id(), "b/z");
}

TEST(SweepTest, FlatIndexMatchesExpansionOrder) {
  Sweep s("grid");
  s.axis("a", {"0", "1"}).axis("b", {"0", "1", "2"}).axis("c", {"0", "1"});
  const auto cells = s.expand();
  for (const Cell& c : cells) {
    EXPECT_EQ(s.flat_index({c.at(0), c.at(1), c.at(2)}), c.flat);
  }
  // Spot check: {1, 2, 0} = 1*6 + 2*2 + 0.
  EXPECT_EQ(s.flat_index({1, 2, 0}), 10u);
}

TEST(SweepTest, AppliersEditBaseConfigInAxisOrder) {
  metrics::RunConfig base;
  base.cpus = 2;
  base.seed = 11;
  Sweep s("cfg");
  s.base(base)
      .axis("cpus", {"4c", "8c"},
            [](metrics::RunConfig& rc, std::size_t i) {
              rc.cpus = i == 0 ? 4 : 8;
            })
      .axis("smt", {"off", "on"}, [](metrics::RunConfig& rc, std::size_t i) {
        rc.smt = i == 1;
        // Later axes see earlier axes' edits.
        if (rc.cpus == 8) rc.seed = 99;
      });
  const auto cells = s.expand();
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0].cfg.cpus, 4u);
  EXPECT_FALSE(cells[0].cfg.smt);
  EXPECT_EQ(cells[0].cfg.seed, 11u);
  EXPECT_EQ(cells[1].cfg.cpus, 4u);
  EXPECT_TRUE(cells[1].cfg.smt);
  EXPECT_EQ(cells[2].cfg.cpus, 8u);
  EXPECT_EQ(cells[2].cfg.seed, 99u);
  EXPECT_TRUE(cells[3].cfg.smt);
}

TEST(SweepTest, NullApplierLeavesConfigUntouched) {
  metrics::RunConfig base;
  base.cpus = 16;
  Sweep s("sel");
  s.base(base).axis("benchmark", {"ocean", "lu", "radix"});
  for (const Cell& c : s.expand()) {
    EXPECT_EQ(c.cfg.cpus, 16u);
  }
}

TEST(SweepTest, AccessorsReflectDeclaration) {
  Sweep s("acc");
  s.axis("first", {"f0"}).axis("second", {"s0", "s1"});
  EXPECT_EQ(s.name(), "acc");
  EXPECT_EQ(s.n_axes(), 2u);
  EXPECT_EQ(s.axis_name(0), "first");
  EXPECT_EQ(s.axis_name(1), "second");
  EXPECT_EQ(s.labels(1), (std::vector<std::string>{"s0", "s1"}));
}

}  // namespace
}  // namespace eo
