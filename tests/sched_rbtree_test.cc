#include "sched/rbtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"

namespace eo::sched {
namespace {

struct Item {
  RbNode node;
  long key = 0;
  long seq = 0;  // tie-break to make ordering deterministic for checks
};

struct ItemLess {
  bool operator()(const Item& a, const Item& b) const { return a.key < b.key; }
};

using Tree = RbTree<Item, &Item::node, ItemLess>;

TEST(RbTree, EmptyBasics) {
  Tree t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.leftmost(), nullptr);
  EXPECT_GE(t.validate(), 0);
}

TEST(RbTree, InsertEraseSingle) {
  Tree t;
  Item a;
  a.key = 5;
  t.insert(&a);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.leftmost(), &a);
  EXPECT_TRUE(t.contains(&a));
  t.erase(&a);
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.contains(&a));
}

TEST(RbTree, LeftmostIsMinimum) {
  Tree t;
  std::vector<Item> items(100);
  Rng rng(7);
  for (auto& it : items) {
    it.key = static_cast<long>(rng.next_below(1000));
    t.insert(&it);
  }
  long min_key = std::min_element(items.begin(), items.end(),
                                  [](const Item& a, const Item& b) {
                                    return a.key < b.key;
                                  })
                     ->key;
  ASSERT_NE(t.leftmost(), nullptr);
  EXPECT_EQ(t.leftmost()->key, min_key);
  EXPECT_GE(t.validate(), 0);
}

TEST(RbTree, InOrderTraversalIsSorted) {
  Tree t;
  std::vector<Item> items(200);
  Rng rng(11);
  for (auto& it : items) {
    it.key = static_cast<long>(rng.next_below(500));
    t.insert(&it);
  }
  long prev = -1;
  std::size_t count = 0;
  for (Item* i = t.leftmost(); i != nullptr; i = t.next(i)) {
    EXPECT_GE(i->key, prev);
    prev = i->key;
    ++count;
  }
  EXPECT_EQ(count, items.size());
}

// Property test: a long random insert/erase sequence matches std::multiset
// and preserves red-black invariants throughout.
TEST(RbTree, RandomOpsMatchMultiset) {
  Tree t;
  std::vector<Item> pool(400);
  std::vector<Item*> in_tree;
  std::multiset<long> reference;
  Rng rng(1234);
  std::size_t next_free = 0;

  for (int step = 0; step < 20000; ++step) {
    const bool do_insert =
        in_tree.empty() ||
        (next_free < pool.size() && rng.next_below(100) < 55);
    if (do_insert && next_free < pool.size()) {
      Item* it = &pool[next_free++];
      it->key = static_cast<long>(rng.next_below(1000));
      t.insert(it);
      in_tree.push_back(it);
      reference.insert(it->key);
    } else if (!in_tree.empty()) {
      const auto idx = rng.next_below(in_tree.size());
      Item* it = in_tree[idx];
      t.erase(it);
      reference.erase(reference.find(it->key));
      in_tree[idx] = in_tree.back();
      in_tree.pop_back();
      // Erased nodes can be reinserted.
      if (rng.chance(0.3)) {
        it->key = static_cast<long>(rng.next_below(1000));
        t.insert(it);
        in_tree.push_back(it);
        reference.insert(it->key);
      }
    }
    if (step % 64 == 0) {
      ASSERT_GE(t.validate(), 0) << "red-black violation at step " << step;
      ASSERT_EQ(t.size(), reference.size());
      if (!reference.empty()) {
        ASSERT_NE(t.leftmost(), nullptr);
        ASSERT_EQ(t.leftmost()->key, *reference.begin());
      }
    }
  }
  // Full in-order check at the end.
  std::vector<long> keys;
  for (Item* i = t.leftmost(); i != nullptr; i = t.next(i)) {
    keys.push_back(i->key);
  }
  std::vector<long> expected(reference.begin(), reference.end());
  EXPECT_EQ(keys, expected);
}

TEST(RbTree, EqualKeysAllRetained) {
  Tree t;
  std::vector<Item> items(50);
  for (auto& it : items) {
    it.key = 42;
    t.insert(&it);
  }
  EXPECT_EQ(t.size(), 50u);
  EXPECT_GE(t.validate(), 0);
  std::size_t n = 0;
  for (Item* i = t.leftmost(); i != nullptr; i = t.next(i)) ++n;
  EXPECT_EQ(n, 50u);
  for (auto& it : items) t.erase(&it);
  EXPECT_TRUE(t.empty());
}

TEST(RbTree, AscendingAndDescendingInserts) {
  for (const bool ascending : {true, false}) {
    Tree t;
    std::vector<Item> items(128);
    for (int i = 0; i < 128; ++i) {
      items[static_cast<size_t>(i)].key = ascending ? i : 127 - i;
      t.insert(&items[static_cast<size_t>(i)]);
      ASSERT_GE(t.validate(), 0);
    }
    EXPECT_EQ(t.leftmost()->key, 0);
  }
}

}  // namespace
}  // namespace eo::sched
