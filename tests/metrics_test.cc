// Tests for the metrics layer: latency recorder, table printer, and the
// experiment harness.
#include <gtest/gtest.h>

#include <sstream>

#include "metrics/experiment.h"
#include "metrics/latency_recorder.h"
#include "metrics/table_printer.h"
#include "runtime/sim_thread.h"

namespace eo::metrics {
namespace {

TEST(LatencyRecorder, BasicStats) {
  LatencyRecorder r;
  for (int i = 1; i <= 100; ++i) r.record(i * 1000);  // 1..100 us
  EXPECT_EQ(r.count(), 100u);
  EXPECT_NEAR(r.mean_us(), 50.5, 1.0);
  EXPECT_NEAR(r.p50_us(), 50.0, 3.0);
  EXPECT_NEAR(r.p99_us(), 99.0, 4.0);
  EXPECT_NEAR(r.max_us(), 100.0, 4.0);
}

TEST(LatencyRecorder, Throughput) {
  LatencyRecorder r;
  for (int i = 0; i < 500; ++i) r.record(10_us);
  EXPECT_DOUBLE_EQ(r.throughput(1_s), 500.0);
  EXPECT_DOUBLE_EQ(r.throughput(500_ms), 1000.0);
  EXPECT_DOUBLE_EQ(r.throughput(0), 0.0);
}

TEST(LatencyRecorder, ClearResets) {
  LatencyRecorder r;
  r.record(5_us);
  r.clear();
  EXPECT_EQ(r.count(), 0u);
  EXPECT_EQ(r.p99_us(), 0.0);
}

TEST(TablePrinter, AlignedOutput) {
  std::ostringstream os;
  TablePrinter t({"name", "value"}, os);
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "22"});
  t.print();
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Every line in an aligned table has the same column start for "value".
  const auto h = out.find("value");
  ASSERT_NE(h, std::string::npos);
}

TEST(TablePrinter, CsvOutput) {
  std::ostringstream os;
  TablePrinter t({"x", "y"}, os);
  t.add_row({"1", "2"});
  t.print_csv();
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(TablePrinter, CsvEscapesPerRfc4180) {
  // Cells with a comma, quote, or newline get quoted (with embedded quotes
  // doubled); plain cells stay unquoted.
  std::ostringstream os;
  TablePrinter t({"name", "note"}, os);
  t.add_row({"a,b", "plain"});
  t.add_row({"say \"hi\"", "line1\nline2"});
  t.print_csv();
  EXPECT_EQ(os.str(),
            "name,note\n"
            "\"a,b\",plain\n"
            "\"say \"\"hi\"\"\",\"line1\nline2\"\n");
}

TEST(LatencyRecorder, P999Us) {
  LatencyRecorder r;
  for (int i = 0; i < 999; ++i) r.record(10_us);
  r.record(1000_us);
  r.record(1000_us);
  EXPECT_NEAR(r.p99_us(), 10.0, 1.0);
  EXPECT_NEAR(r.p999_us(), 1000.0, 1000.0 * 0.04);
}

TEST(TablePrinter, NumberFormatting) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::integer(-7), "-7");
}

TEST(Experiment, MakeKernelConfigHonorsShape) {
  RunConfig rc;
  rc.cpus = 6;
  rc.sockets = 2;
  rc.smt = true;
  rc.seed = 99;
  rc.ref_footprint = 1_MiB;
  const auto kc = make_kernel_config(rc);
  EXPECT_EQ(kc.topo.n_cores(), 6);
  EXPECT_TRUE(kc.topo.smt_enabled());
  EXPECT_EQ(kc.seed, 99u);
  EXPECT_EQ(kc.ref_footprint, 1_MiB);
}

TEST(Experiment, RunReportsCompletionAndTime) {
  RunConfig rc;
  rc.cpus = 2;
  rc.sockets = 1;
  const auto r = run_experiment(rc, [](kern::Kernel& k) {
    runtime::spawn(k, "t", [](runtime::Env env) -> runtime::SimThread {
      co_await env.compute(3_ms);
      co_return;
    });
  });
  EXPECT_TRUE(r.completed);
  EXPECT_GE(r.exec_time, 3_ms);
  EXPECT_LT(r.exec_time, 4_ms);
}

TEST(Experiment, DeadlineReportsIncomplete) {
  RunConfig rc;
  rc.cpus = 1;
  rc.sockets = 1;
  rc.deadline = 2_ms;
  const auto r = run_experiment(rc, [](kern::Kernel& k) {
    runtime::spawn(k, "t", [](runtime::Env env) -> runtime::SimThread {
      co_await env.compute(100_ms);
      co_return;
    });
  });
  EXPECT_FALSE(r.completed);
  EXPECT_GE(r.exec_time, 2_ms);
}

}  // namespace
}  // namespace eo::metrics
