// Tests for the memcached server model and the mutilate client.
#include "workloads/memcached.h"

#include <gtest/gtest.h>

#include "metrics/experiment.h"
#include "workloads/mutilate.h"

namespace eo::workloads {
namespace {

TEST(Memcached, ProcessesAllRequests) {
  metrics::RunConfig rc;
  rc.cpus = 4;
  rc.sockets = 1;
  auto kc = metrics::make_kernel_config(rc);
  kern::Kernel k(kc);
  MemcachedConfig mc;
  mc.n_workers = 4;
  MemcachedSim server(k, mc);
  server.start();
  for (int i = 0; i < 200; ++i) {
    k.engine().schedule_at(i * 50_us,
                           [&server, i] { server.post_request(i % 11 != 0); });
  }
  k.run_until(200_ms);
  EXPECT_EQ(server.completed(), 200u);
  EXPECT_EQ(server.latencies().count(), 200u);
  EXPECT_GT(server.latencies().mean_us(), 0.0);
  server.stop();
  EXPECT_TRUE(k.run_to_exit(k.now() + 1_s));
}

TEST(Memcached, LatencyGrowsWithLoad) {
  auto run_at = [](double rate) {
    metrics::RunConfig rc;
    rc.cpus = 4;
    rc.sockets = 1;
    auto kc = metrics::make_kernel_config(rc);
    kern::Kernel k(kc);
    MemcachedConfig mc;
    mc.n_workers = 4;
    MemcachedSim server(k, mc);
    server.start();
    MutilateConfig cc;
    cc.rate_ops_per_sec = rate;
    cc.until = 300_ms;
    MutilateClient client(server, cc);
    client.start();
    k.run_until(350_ms);
    const double p99 = server.latencies().p99_us();
    server.stop();
    k.run_to_exit(k.now() + 1_s);
    return p99;
  };
  const double light = run_at(20000);
  const double heavy = run_at(500000);
  EXPECT_GT(heavy, light);
}

TEST(Memcached, ResetMeasurementDiscardsWarmup) {
  metrics::RunConfig rc;
  rc.cpus = 2;
  rc.sockets = 1;
  auto kc = metrics::make_kernel_config(rc);
  kern::Kernel k(kc);
  MemcachedConfig mc;
  mc.n_workers = 2;
  MemcachedSim server(k, mc);
  server.start();
  for (int i = 0; i < 50; ++i) {
    k.engine().schedule_at(i * 100_us, [&server] { server.post_request(true); });
  }
  k.run_until(50_ms);
  EXPECT_EQ(server.completed(), 50u);
  server.reset_measurement();
  EXPECT_EQ(server.completed(), 0u);
  EXPECT_EQ(server.latencies().count(), 0u);
  server.stop();
  k.run_to_exit(k.now() + 1_s);
}

TEST(Mutilate, OpenLoopRateApproximatelyHonored) {
  metrics::RunConfig rc;
  rc.cpus = 8;
  rc.sockets = 1;
  auto kc = metrics::make_kernel_config(rc);
  kern::Kernel k(kc);
  MemcachedConfig mc;
  mc.n_workers = 8;
  MemcachedSim server(k, mc);
  server.start();
  MutilateConfig cc;
  cc.rate_ops_per_sec = 100000;
  cc.until = 500_ms;
  MutilateClient client(server, cc);
  client.start();
  k.run_until(500_ms);
  // Poisson arrivals at 100k/s over 0.5s: ~50000 +- noise.
  EXPECT_NEAR(static_cast<double>(client.injected()), 50000.0, 2000.0);
  server.stop();
  k.run_to_exit(k.now() + 1_s);
}

}  // namespace
}  // namespace eo::workloads
