// Arrival-process tests: every process must be a deterministic function of
// (config, seed), produce strictly increasing times, and hit its configured
// long-run mean rate — the property the offered-load axis of the serving
// bench depends on.
#include "traffic/arrival.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace eo::traffic {
namespace {

std::vector<SimTime> draw(const ArrivalConfig& cfg, std::uint64_t seed,
                          int n) {
  ArrivalProcess p(cfg, seed);
  std::vector<SimTime> out;
  out.reserve(static_cast<std::size_t>(n));
  SimTime t = 0;
  for (int i = 0; i < n; ++i) out.push_back(t = p.next_after(t));
  return out;
}

std::uint64_t count_until(const ArrivalConfig& cfg, std::uint64_t seed,
                          SimTime horizon) {
  ArrivalProcess p(cfg, seed);
  std::uint64_t n = 0;
  SimTime t = 0;
  while ((t = p.next_after(t)) < horizon) ++n;
  return n;
}

ArrivalConfig config_of(ArrivalKind kind) {
  ArrivalConfig cfg;
  cfg.kind = kind;
  cfg.rate_per_sec = 1e6;
  cfg.mean_burst = 1_ms;        // many on-off cycles per simulated second
  cfg.diurnal_period = 100_ms;  // many full "days" per simulated second
  return cfg;
}

TEST(Arrival, TimesAreStrictlyIncreasing) {
  for (const ArrivalKind kind : {ArrivalKind::kPoisson, ArrivalKind::kOnOff,
                                 ArrivalKind::kDiurnal}) {
    const std::vector<SimTime> ts = draw(config_of(kind), 42, 20000);
    SimTime prev = 0;
    for (const SimTime t : ts) {
      ASSERT_GT(t, prev) << to_string(kind);
      prev = t;
    }
  }
}

TEST(Arrival, SequenceIsAPureFunctionOfConfigAndSeed) {
  for (const ArrivalKind kind : {ArrivalKind::kPoisson, ArrivalKind::kOnOff,
                                 ArrivalKind::kDiurnal}) {
    const ArrivalConfig cfg = config_of(kind);
    EXPECT_EQ(draw(cfg, 7, 5000), draw(cfg, 7, 5000)) << to_string(kind);
    EXPECT_NE(draw(cfg, 7, 5000), draw(cfg, 8, 5000)) << to_string(kind);
  }
}

TEST(Arrival, PoissonHitsTheMeanRate) {
  const std::uint64_t n = count_until(config_of(ArrivalKind::kPoisson), 1, 1_s);
  EXPECT_NEAR(static_cast<double>(n), 1e6, 0.02 * 1e6);
}

TEST(Arrival, OnOffAveragesToTheMeanRateAcrossBursts) {
  // ~250 on-off cycles in the horizon: burst noise averages out.
  const std::uint64_t n = count_until(config_of(ArrivalKind::kOnOff), 1, 1_s);
  EXPECT_NEAR(static_cast<double>(n), 1e6, 0.10 * 1e6);
}

TEST(Arrival, OnOffVisitsBothRates) {
  const ArrivalConfig cfg = config_of(ArrivalKind::kOnOff);
  ArrivalProcess p(cfg, 3);
  std::set<double> rates;
  SimTime t = 0;
  for (int i = 0; i < 50000; ++i) rates.insert(p.rate_at(t = p.next_after(t)));
  ASSERT_EQ(rates.size(), 2u);  // burst rate and lull rate, nothing else
  const double burst = *rates.rbegin();
  const double lull = *rates.begin();
  EXPECT_DOUBLE_EQ(burst, cfg.rate_per_sec * cfg.burst_factor);
  EXPECT_GT(burst, lull);
  // Derived lull rate keeps the long-run mean at rate_per_sec.
  EXPECT_NEAR(cfg.on_fraction * burst + (1 - cfg.on_fraction) * lull,
              cfg.rate_per_sec, 1e-6 * cfg.rate_per_sec);
}

TEST(Arrival, DiurnalAveragesToTheMeanOverFullPeriods) {
  // Thinning is exact, so over whole periods the mean must come out.
  const std::uint64_t n =
      count_until(config_of(ArrivalKind::kDiurnal), 1, 1_s);
  EXPECT_NEAR(static_cast<double>(n), 1e6, 0.03 * 1e6);
}

TEST(Arrival, DiurnalIntensityFollowsTheSinusoid) {
  const ArrivalConfig cfg = config_of(ArrivalKind::kDiurnal);
  const ArrivalProcess p(cfg, 1);
  const double peak = cfg.rate_per_sec * (1 + cfg.diurnal_amplitude);
  const double trough = cfg.rate_per_sec * (1 - cfg.diurnal_amplitude);
  EXPECT_NEAR(p.rate_at(cfg.diurnal_period / 4), peak, 1e-3 * peak);
  EXPECT_NEAR(p.rate_at(3 * cfg.diurnal_period / 4), trough, 1e-3 * peak);
  EXPECT_NEAR(p.rate_at(0), cfg.rate_per_sec, 1e-3 * peak);
}

TEST(Arrival, UnitBurstFactorDegeneratesToPoisson) {
  ArrivalConfig cfg = config_of(ArrivalKind::kOnOff);
  cfg.burst_factor = 1.0;  // ON and OFF rates coincide
  const std::uint64_t n = count_until(cfg, 1, 1_s);
  EXPECT_NEAR(static_cast<double>(n), 1e6, 0.02 * 1e6);
}

}  // namespace
}  // namespace eo::traffic
