// Integration tests of runtime core reconfiguration (the elasticity story).
#include <gtest/gtest.h>

#include "metrics/experiment.h"
#include "runtime/sim_thread.h"
#include "workloads/suite.h"

namespace eo {
namespace {

using runtime::Env;
using runtime::SimThread;

TEST(Elasticity, ScaleDownEvictsAndCompletes) {
  kern::KernelConfig kc;
  kc.topo = hw::Topology::make_cores(8, 2);
  kern::Kernel k(kc);
  for (int i = 0; i < 16; ++i) {
    runtime::spawn(k, "t" + std::to_string(i), [](Env env) -> SimThread {
      for (int r = 0; r < 20; ++r) {
        co_await env.compute(500_us);
        co_await env.yield();
      }
      co_return;
    });
  }
  k.run_until(5_ms);
  k.set_online_cores(2);
  EXPECT_EQ(k.online_cores(), 2);
  ASSERT_TRUE(k.run_to_exit(10_s));
  // Threads evicted from offlined cores were migrated.
  EXPECT_GT(k.stats().total_migrations(), 0u);
}

TEST(Elasticity, ScaleUpSpeedsUpOversubscribedThreads) {
  auto run = [&](int final_cores) {
    kern::KernelConfig kc;
    kc.topo = hw::Topology::make_cores(32, 2);
    kern::Kernel k(kc);
    k.set_online_cores(8);
    for (int i = 0; i < 32; ++i) {
      runtime::spawn(k, "t" + std::to_string(i), [](Env env) -> SimThread {
        co_await env.compute(20_ms);
        co_return;
      });
    }
    k.run_until(5_ms);
    k.set_online_cores(final_cores);
    EXPECT_TRUE(k.run_to_exit(60_s));
    return k.last_exit_time();
  };
  const auto t8 = run(8);
  const auto t32 = run(32);
  // 32 oversubscribed threads exploit the added CPUs (the paper's point):
  // close to a 4x speedup after the resize.
  EXPECT_LT(t32, t8 * 2 / 5);
}

TEST(Elasticity, ScaleDownThenUpRoundTrip) {
  kern::KernelConfig kc;
  kc.topo = hw::Topology::make_cores(16, 2);
  kern::Kernel k(kc);
  for (int i = 0; i < 16; ++i) {
    runtime::spawn(k, "t" + std::to_string(i), [](Env env) -> SimThread {
      for (int r = 0; r < 40; ++r) co_await env.compute(250_us);
      co_return;
    });
  }
  k.run_until(2_ms);
  k.set_online_cores(4);
  k.run_until(20_ms);
  k.set_online_cores(16);
  ASSERT_TRUE(k.run_to_exit(10_s));
}

TEST(Elasticity, PinnedTaskViolationDetected) {
  kern::KernelConfig kc;
  kc.topo = hw::Topology::make_cores(8, 1);
  kern::Kernel k(kc);
  runtime::SpawnOpts opts;
  opts.pin_cpu = 7;
  runtime::spawn(
      k, "pinned",
      [](Env env) -> SimThread {
        for (int r = 0; r < 100; ++r) co_await env.compute(1_ms);
        co_return;
      },
      opts);
  k.run_until(2_ms);
  k.set_online_cores(4);  // takes away core 7
  k.run_until(10_ms);
  EXPECT_TRUE(k.pinned_violation())
      << "pinning cannot adapt to shrinking CPU allocations (paper 4.2)";
}

TEST(Elasticity, VbSurvivesResizeWithBlockedThreads) {
  // Resize while threads are VB-parked at a barrier; nothing may be lost.
  kern::KernelConfig kc;
  kc.topo = hw::Topology::make_cores(8, 2);
  kc.features = core::Features::optimized();
  kern::Kernel k(kc);
  const auto& spec = workloads::find_benchmark("ocean");
  workloads::spawn_benchmark(k, spec, 32, 5, 0.05);
  k.run_until(10_ms);
  k.set_online_cores(4);
  k.run_until(30_ms);
  k.set_online_cores(8);
  EXPECT_TRUE(k.run_to_exit(300_s));
}

}  // namespace
}  // namespace eo
