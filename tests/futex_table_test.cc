#include "futex/futex.h"

#include <gtest/gtest.h>

#include "kern/kernel.h"

namespace eo::futex {
namespace {

class FutexTableTest : public ::testing::Test {
 protected:
  kern::KernelConfig cfg_;
  kern::Kernel k_{cfg_};  // used only as a SimWord/Task factory
  FutexTable table_{16};
};

TEST_F(FutexTableTest, BucketStableForWord) {
  auto* w = k_.alloc_word(0);
  EXPECT_EQ(&table_.bucket_for(w), &table_.bucket_for(w));
}

TEST_F(FutexTableTest, WordsSpreadAcrossBuckets) {
  // Not all words may hash to one bucket.
  std::set<Bucket*> seen;
  for (int i = 0; i < 64; ++i) {
    seen.insert(&table_.bucket_for(k_.alloc_word(0)));
  }
  EXPECT_GT(seen.size(), 4u);
}

TEST_F(FutexTableTest, RemoveFindsWaiter) {
  auto* w = k_.alloc_word(0);
  kern::Task* t1 = k_.create_task("t1");
  kern::Task* t2 = k_.create_task("t2");
  auto& b = table_.bucket_for(w);
  t2->waiter.vb = true;
  b.waiters.push_back(&t1->waiter);
  b.waiters.push_back(&t2->waiter);
  EXPECT_EQ(table_.total_waiters(), 2u);
  EXPECT_TRUE(table_.remove(b, t1));
  EXPECT_FALSE(table_.remove(b, t1));
  EXPECT_TRUE(WaiterList::detached(&t1->waiter));
  EXPECT_EQ(b.waiters.size(), 1u);
  EXPECT_EQ(b.waiters.front()->task, t2);
  EXPECT_TRUE(b.waiters.front()->vb);
}

TEST_F(FutexTableTest, FifoOrderPreserved) {
  auto* w = k_.alloc_word(0);
  auto& b = table_.bucket_for(w);
  std::vector<kern::Task*> tasks;
  for (int i = 0; i < 5; ++i) {
    tasks.push_back(k_.create_task("t" + std::to_string(i)));
    b.waiters.push_back(&tasks.back()->waiter);
  }
  std::size_t i = 0;
  for (const WaiterLink* l = b.waiters.begin_link(); l != b.waiters.end_link();
       l = l->next) {
    ASSERT_LT(i, tasks.size());
    EXPECT_EQ(l->task, tasks[i++]);
  }
  EXPECT_EQ(i, 5u);
}

TEST_F(FutexTableTest, PopFrontDetachesInFifoOrder) {
  auto* w = k_.alloc_word(0);
  auto& b = table_.bucket_for(w);
  kern::Task* t1 = k_.create_task("t1");
  kern::Task* t2 = k_.create_task("t2");
  b.waiters.push_back(&t1->waiter);
  b.waiters.push_back(&t2->waiter);
  EXPECT_EQ(b.waiters.pop_front()->task, t1);
  EXPECT_TRUE(WaiterList::detached(&t1->waiter));
  EXPECT_EQ(b.waiters.pop_front()->task, t2);
  EXPECT_TRUE(b.waiters.empty());
  // A detached link may be re-enqueued (tasks block repeatedly).
  b.waiters.push_back(&t1->waiter);
  EXPECT_EQ(b.waiters.size(), 1u);
}

}  // namespace
}  // namespace eo::futex
