// Allocation contract for the kernel's two hottest paths: once a kernel is
// warm (engine slab, wake-chain pool, runqueue storage at steady-state
// footprint), a context switch and a futex wait/wake round trip must not
// touch the heap. Futex waiters ride intrusive WaiterLinks embedded in
// Task, wake chains are pooled and spliced, and engine callbacks are inline
// EventFns — so the steady state is pointer work only. Same global-new
// harness as sim_event_fn_test.cc / traffic_fleet_test.cc.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "common/units.h"
#include "kern/kernel.h"
#include "runtime/sim_thread.h"

// --- allocation-counting harness (whole test binary) ---
namespace {
std::atomic<std::uint64_t> g_news{0};
}  // namespace

void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace eo::kern {
namespace {

/// Allocations performed by `body`.
template <typename Body>
std::uint64_t allocs_during(Body&& body) {
  const std::uint64_t before = g_news.load(std::memory_order_relaxed);
  body();
  return g_news.load(std::memory_order_relaxed) - before;
}

TEST(KernHotPath, ContextSwitchesAllocationFreeWhenWarm) {
  KernelConfig c;
  c.topo = hw::Topology::make_cores(1, 1);
  Kernel k(c);
  // Four oversubscribed compute+yield threads on one core: every yield is a
  // real context switch through deschedule/pick/begin.
  for (int i = 0; i < 4; ++i) {
    runtime::spawn(k, "t", [](runtime::Env env) -> runtime::SimThread {
      for (int r = 0; r < 2000; ++r) {
        co_await env.compute(10_us);
        co_await env.yield();
      }
      co_return;
    });
  }
  k.run_until(5_ms);  // warm: engine slab, runqueue storage, timer events
  const std::uint64_t n = allocs_during([&] { k.run_until(60_ms); });
  EXPECT_EQ(n, 0u);
  EXPECT_TRUE(k.run_to_exit(k.now() + 10_s));
  EXPECT_GT(k.stats().context_switches, 1000u);
}

TEST(KernHotPath, FutexRoundTripAllocationFreeWhenWarm) {
  KernelConfig c;
  c.topo = hw::Topology::make_cores(2, 1);
  Kernel k(c);
  SimWord* w = k.alloc_word(0);
  // Ping-pong: the waiter truly blocks (value reset to 0 after each round),
  // so every iteration exercises bucket enqueue, wake-chain splice, the
  // serialized wake steps, and both sides' context switches.
  runtime::spawn(k, "waiter", [w](runtime::Env env) -> runtime::SimThread {
    for (int r = 0; r < 3000; ++r) {
      co_await env.futex_wait(w, 0);
      co_await env.store(w, 0);
    }
    co_return;
  });
  runtime::spawn(k, "waker", [w](runtime::Env env) -> runtime::SimThread {
    for (int r = 0; r < 3000; ++r) {
      co_await env.compute(5_us);
      co_await env.store(w, 1);
      co_await env.futex_wake(w, 1);
    }
    co_return;
  });
  k.run_until(2_ms);  // warm: one pooled wake chain, engine heap at depth
  const std::uint64_t n = allocs_during([&] { k.run_until(14_ms); });
  EXPECT_EQ(n, 0u);
  EXPECT_TRUE(k.run_to_exit(k.now() + 10_s));
  EXPECT_GT(k.stats().futex_wakes, 1000u);
}

}  // namespace
}  // namespace eo::kern
