// Policy-contract conformance suite: every policy registered in
// sched::policy_names() must uphold the SchedPolicy interface contracts
// documented in src/sched/policy.h — the VB-park and BWD-skip mechanism
// contracts, queue bookkeeping, migration teardown, tunable export — and
// run an oversubscribed kernel deterministically and watchdog-clean. A new
// policy added to the registry is picked up here automatically.
#include "sched/policy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "hw/topology.h"
#include "metrics/experiment.h"
#include "obs/metrics.h"
#include "sched/cfs.h"
#include "traffic/fleet.h"
#include "workloads/suite.h"

namespace eo::sched {
namespace {

class PolicyContractTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    topo_ = hw::Topology::make_cores(4, 1);
    policy_ = make_policy(GetParam(), &topo_, &cfs_, &params_);
    ASSERT_NE(policy_, nullptr);
  }

  SchedEntity* make(std::int64_t vruntime = 0) {
    entities_.push_back(std::make_unique<SchedEntity>());
    entities_.back()->vruntime = vruntime;
    entities_.back()->tid = next_tid_++;
    return entities_.back().get();
  }

  /// Picks repeatedly (returning each entity to the queue) until `want` is
  /// picked or `bound` picks elapse; returns how many picks it took, or -1.
  int picks_until(int cpu, const SchedEntity* want, int bound) {
    for (int i = 1; i <= bound; ++i) {
      SchedEntity* p = policy_->pick_next(cpu);
      if (p == nullptr) return -1;
      policy_->account(cpu, 1_ms);
      policy_->put_prev(cpu, p);
      if (p == want) return i;
    }
    return -1;
  }

  hw::Topology topo_;
  CfsParams cfs_;
  PolicyParams params_;
  std::unique_ptr<SchedPolicy> policy_;
  std::vector<std::unique_ptr<SchedEntity>> entities_;
  std::int32_t next_tid_ = 1;
};

TEST_P(PolicyContractTest, NameMatchesRegistry) {
  EXPECT_EQ(policy_->name(), GetParam());
}

TEST_P(PolicyContractTest, EnqueueDequeueBookkeeping) {
  auto* a = make(10);
  auto* b = make(20);
  policy_->enqueue(0, a, false);
  policy_->enqueue(0, b, true);
  EXPECT_EQ(policy_->nr_running(0), 2);
  EXPECT_EQ(policy_->nr_schedulable(0), 2);
  EXPECT_EQ(policy_->nr_running(1), 0);
  policy_->dequeue(0, a);
  policy_->dequeue(0, b);
  EXPECT_EQ(policy_->nr_running(0), 0);
  EXPECT_FALSE(a->on_rq);
}

TEST_P(PolicyContractTest, EveryEntityRunsWhenWorkBlocks) {
  // FIFO-family disciplines run an entity until it blocks, so the
  // no-starvation contract is stated under blocking work: each picked
  // entity leaves the queue (blocks) and everyone must get a turn.
  std::vector<SchedEntity*> all;
  for (int i = 0; i < 3; ++i) {
    all.push_back(make(i * 10));
    policy_->enqueue(0, all.back(), false);
  }
  std::vector<const SchedEntity*> seen;
  for (int i = 0; i < 3; ++i) {
    SchedEntity* p = policy_->pick_next(0);
    ASSERT_NE(p, nullptr);
    policy_->account(0, 1_ms);
    policy_->put_prev(0, p);
    policy_->dequeue(0, p);
    EXPECT_EQ(std::count(seen.begin(), seen.end(), p), 0)
        << "entity picked twice while others waited";
    seen.push_back(p);
  }
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_EQ(policy_->pick_next(0), nullptr);
}

TEST_P(PolicyContractTest, SlicePositive) {
  auto* a = make(0);
  policy_->enqueue(0, a, false);
  EXPECT_GT(policy_->slice_for(0, a), 0);
}

TEST_P(PolicyContractTest, VbParkedSortsBehindSchedulableWork) {
  auto* a = make(10);  // would be the fair first choice
  auto* b = make(20);
  policy_->enqueue(0, a, false);
  policy_->enqueue(0, b, false);
  policy_->vb_park(0, a);
  EXPECT_EQ(policy_->nr_running(0), 2);    // VB keeps load stable
  EXPECT_EQ(policy_->nr_schedulable(0), 1);
  EXPECT_EQ(policy_->nr_vb_blocked(0), 1);
  SchedEntity* p = policy_->pick_next(0);
  EXPECT_EQ(p, b) << "parked entity picked while schedulable work exists";
  policy_->put_prev(0, p);
}

TEST_P(PolicyContractTest, VbParkedPickedOnlyWhenAlone) {
  auto* a = make(10);
  policy_->enqueue(0, a, false);
  policy_->vb_park(0, a);
  // Nothing else runnable: the parked entity gets its flag-check quantum.
  SchedEntity* p = policy_->pick_next(0);
  EXPECT_EQ(p, a);
  EXPECT_TRUE(p->vb_blocked);
  // ...and a real wakeup must preempt the flag-check quantum.
  auto* waker = make(1000);
  EXPECT_TRUE(policy_->should_preempt(0, waker));
  policy_->vb_clear_current(0, p);
  EXPECT_FALSE(p->vb_blocked);
  EXPECT_EQ(policy_->nr_vb_blocked(0), 0);
  policy_->put_prev(0, p);
}

TEST_P(PolicyContractTest, VbUnparkPromptlySchedulable) {
  auto* a = make(10);
  auto* b = make(20);
  policy_->enqueue(0, a, false);
  policy_->enqueue(0, b, false);
  policy_->vb_park(0, a);
  policy_->vb_unpark(0, a);
  EXPECT_EQ(policy_->nr_vb_blocked(0), 0);
  EXPECT_FALSE(a->vb_blocked);
  EXPECT_GT(picks_until(0, a, 2), 0) << "unparked entity not promptly run";
}

TEST_P(PolicyContractTest, BwdSkippedPassedOverThenRuns) {
  auto* a = make(10);  // fair first choice, then skipped
  auto* b = make(20);
  auto* c = make(30);
  for (auto* e : {a, b, c}) policy_->enqueue(0, e, false);
  policy_->bwd_mark_skip(0, a);
  EXPECT_EQ(policy_->nr_bwd_skipped(0), 1);
  SchedEntity* first = policy_->pick_next(0);
  EXPECT_NE(first, a) << "skipped entity picked immediately";
  policy_->account(0, 1_ms);
  policy_->put_prev(0, first);
  // The skip must expire after the rest of the queue had a turn.
  EXPECT_GT(picks_until(0, a, 10), 0) << "skipped entity starved";
  EXPECT_FALSE(a->bwd_skip);
  EXPECT_EQ(policy_->nr_bwd_skipped(0), 0);
}

TEST_P(PolicyContractTest, AllSkippedClearsVacuously) {
  auto* a = make(10);
  auto* b = make(20);
  policy_->enqueue(0, a, false);
  policy_->enqueue(0, b, false);
  policy_->bwd_mark_skip(0, a);
  policy_->bwd_mark_skip(0, b);
  SchedEntity* p = policy_->pick_next(0);
  ASSERT_NE(p, nullptr) << "all-skipped queue must still yield a pick";
  EXPECT_FALSE(a->bwd_skip);
  EXPECT_FALSE(b->bwd_skip);
  EXPECT_EQ(policy_->nr_bwd_skipped(0), 0);
  policy_->put_prev(0, p);
}

// Regression (satellite of the SchedPolicy refactor): dequeuing a skipped
// entity — a migration pull is the real-world path — must tear down the skip
// state so the entity is schedulable on its next queue.
TEST_P(PolicyContractTest, DequeueTearsDownSkipState) {
  auto* a = make(10);
  auto* b = make(20);
  policy_->enqueue(0, a, false);
  policy_->enqueue(0, b, false);
  policy_->bwd_mark_skip(0, a);
  policy_->dequeue(0, a);
  EXPECT_FALSE(a->bwd_skip);
  EXPECT_EQ(policy_->nr_bwd_skipped(0), 0);
  policy_->place_migrated(0, 1, a);
  EXPECT_EQ(policy_->nr_running(1), 1);
  SchedEntity* p = policy_->pick_next(1);
  EXPECT_EQ(p, a) << "migrated entity still carries skip state";
  policy_->put_prev(1, p);
}

TEST_P(PolicyContractTest, DetachAllReturnsAndCleansEverything) {
  auto* a = make(10);
  auto* b = make(20);
  auto* c = make(30);
  for (auto* e : {a, b, c}) policy_->enqueue(0, e, false);
  policy_->vb_park(0, b);
  policy_->bwd_mark_skip(0, c);
  const auto all = policy_->detach_all(0);
  EXPECT_EQ(all.size(), 3u);
  EXPECT_EQ(policy_->nr_running(0), 0);
  EXPECT_EQ(policy_->nr_vb_blocked(0), 0);
  EXPECT_EQ(policy_->nr_bwd_skipped(0), 0);
  for (auto* e : all) {
    EXPECT_FALSE(e->on_rq);
    EXPECT_FALSE(e->bwd_skip);
  }
}

TEST_P(PolicyContractTest, PlaceFreshJoinsWithoutPreempting) {
  auto* a = make(0);
  policy_->enqueue(0, a, false);
  ASSERT_EQ(policy_->pick_next(0), a);
  policy_->account(0, 1_ms);
  auto* fresh = make(0);
  policy_->place_fresh(0, fresh);
  EXPECT_EQ(policy_->nr_running(0), 2);
  EXPECT_FALSE(policy_->should_preempt(0, fresh))
      << "a freshly placed entity preempted the incumbent";
  policy_->put_prev(0, a);
}

TEST_P(PolicyContractTest, BalancePullsTowardIdleCore) {
  for (int i = 0; i < 4; ++i) policy_->enqueue(0, make(i * 10), false);
  const auto d = policy_->balance(1, [](int) { return true; },
                                  /*newly_idle=*/true);
  ASSERT_TRUE(d.has_value()) << "no pull toward an idle core from a 4-deep "
                                "queue";
  EXPECT_EQ(d->dst_cpu, 1);
  EXPECT_EQ(d->src_cpu, 0);
  ASSERT_NE(d->victim, nullptr);
  EXPECT_FALSE(d->victim->vb_blocked) << "policy migrated a VB-parked entity";
  policy_->dequeue(d->src_cpu, d->victim);
  policy_->place_migrated(d->src_cpu, d->dst_cpu, d->victim);
  EXPECT_EQ(policy_->nr_running(0), 3);
  EXPECT_EQ(policy_->nr_running(1), 1);
}

TEST_P(PolicyContractTest, ExportTunablesUnderPolicyPrefix) {
  obs::MetricRegistry reg;
  policy_->export_tunables(&reg);
  const auto gauges = reg.snapshot_gauges();
  ASSERT_GT(gauges.size(), 0u) << "policy exports no tunables";
  const std::string prefix = "sched." + GetParam() + ".";
  for (const auto& g : gauges) {
    EXPECT_EQ(g.name.compare(0, prefix.size(), prefix), 0)
        << "tunable '" << g.name << "' not under '" << prefix << "'";
  }
}

// Kernel-level: an oversubscribed blocking workload (16 threads on 4 cores,
// VB+BWD enabled) must complete, be watchdog-clean, and be deterministic
// run-to-run under every policy.
TEST_P(PolicyContractTest, OversubscribedRunDeterministicAndWatchdogClean) {
  const auto& spec = workloads::find_benchmark("cg");
  auto run = [&] {
    metrics::RunConfig rc;
    rc.cpus = 4;
    rc.sockets = 1;
    rc.sched = GetParam();
    rc.features = core::Features::optimized();
    rc.ref_footprint = spec.ref_footprint();
    rc.deadline = 600_s;
    rc.metrics.enabled = true;
    return metrics::run_experiment(rc, [&](kern::Kernel& k) {
      workloads::spawn_benchmark(k, spec, 16, /*seed=*/7, /*scale=*/0.02);
    });
  };
  const auto r1 = run();
  const auto r2 = run();
  ASSERT_TRUE(r1.completed);
  EXPECT_EQ(r1.exec_time, r2.exec_time) << "policy is not deterministic";
  ASSERT_NE(r1.metrics, nullptr);
  EXPECT_EQ(r1.metrics->watchdog_violations, 0u);
}

// Every policy must keep the per-task delay accounting conserved: whatever
// its dispatch order, VB parking, or skip handling does, each task's state
// times must sum to its kernel-ground-truth lifetime, and the sampler's
// per-tick conservation + consistency cross-check must stay violation-free.
TEST_P(PolicyContractTest, TaskstatsConserved) {
  if (!obs::kTaskstatsEnabled) GTEST_SKIP() << "metrics compiled out";
  const auto& spec = workloads::find_benchmark("cg");
  metrics::RunConfig rc;
  rc.cpus = 4;
  rc.sockets = 1;
  rc.sched = GetParam();
  rc.features = core::Features::optimized();
  rc.ref_footprint = spec.ref_footprint();
  rc.deadline = 600_s;
  rc.metrics.enabled = true;
  rc.taskstats = true;
  const auto r = metrics::run_experiment(rc, [&](kern::Kernel& k) {
    workloads::spawn_benchmark(k, spec, 16, /*seed=*/7, /*scale=*/0.02);
  });
  ASSERT_TRUE(r.completed);
  ASSERT_NE(r.taskstats, nullptr);
  ASSERT_EQ(r.taskstats->tasks.size(), 16u);
  for (const auto& t : r.taskstats->tasks) {
    EXPECT_TRUE(t.finished);
    EXPECT_EQ(t.times.total(), t.lifetime)
        << GetParam() << ": " << t.name << "/" << t.tid;
    EXPECT_GT(t.times[obs::TaskDelayState::kOncpu], 0)
        << GetParam() << ": " << t.name << "/" << t.tid;
  }
  ASSERT_NE(r.metrics, nullptr);
  EXPECT_GT(r.metrics->watchdog_checks, 0u);
  EXPECT_EQ(r.metrics->watchdog_violations, 0u);
}

TEST_P(PolicyContractTest, ParallelHostsMatchSequentialRun) {
  // The fleet engine may fan its per-host kernels out onto host threads
  // (FleetConfig.jobs); every policy must produce bit-identical fleet
  // results either way — per-host kernels share nothing, so any divergence
  // means hidden cross-kernel state inside the policy plugin.
  auto run = [&](std::size_t jobs) {
    traffic::FleetConfig fc;
    fc.n_hosts = 3;
    fc.host.n_connections = 2048;
    fc.host.max_pending = 512;
    fc.kernel.policy = GetParam();
    // ~0.7x of the 8-core host's capacity: busy but not shedding-dominated.
    fc.arrival.rate_per_sec =
        0.7 * 8e9 / traffic::mean_request_cost_ns(fc.host);
    fc.warmup = 2_ms;
    fc.window = 8_ms;
    fc.drain = 2_ms;
    fc.seed = 99;
    fc.jobs = jobs;
    traffic::ConnectionFleet fleet(fc);
    return fleet.run();
  };
  const traffic::FleetResult seq = run(1);
  const traffic::FleetResult par = run(4);
  ASSERT_GT(seq.completed, 0u);
  EXPECT_EQ(seq.issued, par.issued);
  EXPECT_EQ(seq.completed, par.completed);
  EXPECT_EQ(seq.shed, par.shed);
  EXPECT_EQ(seq.active_connections, par.active_connections);
  EXPECT_EQ(seq.latency.total_count(), par.latency.total_count());
  EXPECT_EQ(seq.latency.p50(), par.latency.p50());
  EXPECT_EQ(seq.latency.p99(), par.latency.p99());
  EXPECT_EQ(seq.latency.p999(), par.latency.p999());
  EXPECT_EQ(seq.stats.context_switches, par.stats.context_switches);
  EXPECT_EQ(seq.stats.wakeups, par.stats.wakeups);
  EXPECT_EQ(seq.stats.vb_parks, par.stats.vb_parks);
}

INSTANTIATE_TEST_SUITE_P(PolicyZoo, PolicyContractTest,
                         ::testing::ValuesIn(policy_names()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace eo::sched
