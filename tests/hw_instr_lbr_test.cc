// Tests for the instruction-stream, LBR, and PMC models that feed BWD.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/units.h"
#include "hw/instr_stream.h"
#include "hw/lbr.h"
#include "hw/pmc.h"
#include "hw/ple.h"

namespace eo::hw {
namespace {

TEST(InstrStream, RegularCodeMatchesProfiledRates) {
  InstrStreamModel m;
  Rng rng(1);
  // The paper's profile: per 100us, ~300000 instructions, ~6667 L1 misses,
  // ~337 TLB misses.
  std::uint64_t instr = 0, l1 = 0, tlb = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const auto s = m.sample(SegmentKind::kRegular, 100_us, rng);
    instr += s.instructions;
    l1 += s.l1d_misses;
    tlb += s.tlb_misses;
  }
  EXPECT_NEAR(static_cast<double>(instr) / n, 300000.0, 3000.0);
  EXPECT_NEAR(static_cast<double>(l1) / n, 6667.0, 100.0);
  EXPECT_NEAR(static_cast<double>(tlb) / n, 337.0, 10.0);
}

TEST(InstrStream, RegularWindowAlmostNeverMissFree) {
  InstrStreamModel m;
  Rng rng(2);
  int miss_free = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto s = m.sample(SegmentKind::kRegular, 100_us, rng);
    if (s.l1d_misses == 0 && s.tlb_misses == 0) ++miss_free;
  }
  EXPECT_EQ(miss_free, 0) << "a 100us regular window with zero misses should"
                          << " be essentially impossible (Poisson mean 6667)";
}

TEST(InstrStream, TightLoopIsMissFree) {
  InstrStreamModel m;
  Rng rng(3);
  const auto s = m.sample(SegmentKind::kTightLoop, 150_us, rng);
  EXPECT_EQ(s.l1d_misses, 0u);
  EXPECT_EQ(s.tlb_misses, 0u);
  EXPECT_GT(s.instructions, 0u);
}

TEST(InstrStream, SpinAlmostAlwaysMissFree) {
  InstrStreamModel m;
  Rng rng(4);
  int missy = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto s = m.sample(SegmentKind::kSpin, 100_us, rng);
    if (s.l1d_misses > 0) ++missy;
  }
  // The stray-miss probability keeps sensitivity just under 100% (Table 2).
  EXPECT_GT(missy, 0);
  EXPECT_LT(static_cast<double>(missy) / n, 0.01);
}

TEST(InstrStream, SpinIterations) {
  InstrStreamModel m;
  EXPECT_EQ(m.spin_iterations(0), 0u);
  EXPECT_GE(m.spin_iterations(100_us), 16u);  // easily fills the LBR
  EXPECT_EQ(m.spin_iterations(8), 2u);        // 4ns per iteration
}

TEST(Lbr, SpinRunFillsEntries) {
  InstrStreamModel m;
  LbrState lbr;
  lbr.on_execute(SegmentKind::kSpin, 7, 1_us, m);
  EXPECT_TRUE(lbr.all_entries_identical_backward());
  EXPECT_EQ(lbr.current_site(), 7);
}

TEST(Lbr, VeryShortSpinDoesNotFill) {
  InstrStreamModel m;
  LbrState lbr;
  lbr.on_execute(SegmentKind::kSpin, 7, 20, m);  // 20ns -> 5 iterations
  EXPECT_FALSE(lbr.all_entries_identical_backward());
}

TEST(Lbr, RegularCodeResetsRun) {
  InstrStreamModel m;
  LbrState lbr;
  lbr.on_execute(SegmentKind::kSpin, 7, 1_us, m);
  ASSERT_TRUE(lbr.all_entries_identical_backward());
  lbr.on_execute(SegmentKind::kRegular, kVariedSites, 100, m);
  EXPECT_FALSE(lbr.all_entries_identical_backward());
}

TEST(Lbr, SiteChangeRestartsRun) {
  InstrStreamModel m;
  LbrState lbr;
  lbr.on_execute(SegmentKind::kSpin, 7, 1_us, m);
  lbr.on_execute(SegmentKind::kSpin, 8, 30, m);  // ~7 iterations at new site
  EXPECT_FALSE(lbr.all_entries_identical_backward());
  lbr.on_execute(SegmentKind::kSpin, 8, 1_us, m);
  EXPECT_TRUE(lbr.all_entries_identical_backward());
  EXPECT_EQ(lbr.current_site(), 8);
}

TEST(Lbr, ClearResets) {
  InstrStreamModel m;
  LbrState lbr;
  lbr.on_execute(SegmentKind::kSpin, 7, 1_us, m);
  lbr.clear();
  EXPECT_FALSE(lbr.all_entries_identical_backward());
}

TEST(Pmc, AccumulateAndClear) {
  Pmc pmc;
  EXPECT_TRUE(pmc.window_miss_free());
  pmc.accumulate(PmcSample{100, 2, 1});
  EXPECT_EQ(pmc.instructions(), 100u);
  EXPECT_EQ(pmc.l1d_misses(), 2u);
  EXPECT_EQ(pmc.tlb_misses(), 1u);
  EXPECT_FALSE(pmc.window_miss_free());
  pmc.clear();
  EXPECT_TRUE(pmc.window_miss_free());
  EXPECT_EQ(pmc.instructions(), 0u);
}

TEST(Ple, DisabledByDefault) {
  PleModel ple;
  EXPECT_FALSE(ple.enabled());
  EXPECT_EQ(ple.exits_for(1_ms), 0u);
}

TEST(Ple, ExitsProportionalToSpinTime) {
  PleParams p;
  p.enabled = true;
  PleModel ple(p);
  EXPECT_EQ(ple.exits_for(5_us), 0u);          // below one window
  EXPECT_EQ(ple.exits_for(100_us), 10u);       // 10us per exit
  EXPECT_EQ(ple.overhead_for(100_us), 20_us);  // 2us per exit
}

}  // namespace
}  // namespace eo::hw
