#include "core/bwd.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/units.h"
#include "hw/instr_stream.h"

namespace eo::core {
namespace {

class BwdTest : public ::testing::Test {
 protected:
  Features f_ = Features::optimized();
  BwdDetector det_{&f_};
  hw::InstrStreamModel instr_;
  hw::LbrState lbr_;
  hw::Pmc pmc_;
  Rng rng_{3};

  void exec(hw::SegmentKind kind, hw::BranchSite site, SimDuration dur) {
    lbr_.on_execute(kind, site, dur, instr_);
    pmc_.accumulate(instr_.sample(kind, dur, rng_));
    truth_.busy += dur;
    if (kind == hw::SegmentKind::kSpin) {
      truth_.spin += dur;
      if (truth_.dominant_site == hw::kVariedSites) {
        truth_.dominant_site = site;
      } else if (truth_.dominant_site != site) {
        truth_.multiple_spin_sites = true;
      }
    }
  }

  BwdWindowTruth truth_;
};

TEST_F(BwdTest, PureSpinWindowDetected) {
  exec(hw::SegmentKind::kSpin, 5, 100_us);
  const auto v = det_.evaluate(lbr_, pmc_, truth_);
  EXPECT_TRUE(v.ground_truth_spin);
  // Detection is near-certain (stray misses are ~1e-3 per window).
  EXPECT_TRUE(v.detected || pmc_.l1d_misses() > 0);
}

TEST_F(BwdTest, RegularWindowNotDetected) {
  exec(hw::SegmentKind::kRegular, hw::kVariedSites, 100_us);
  const auto v = det_.evaluate(lbr_, pmc_, truth_);
  EXPECT_FALSE(v.ground_truth_spin);
  EXPECT_FALSE(v.detected);
}

TEST_F(BwdTest, MixedWindowNotDetected) {
  // Regular code then spin: the regular part's misses block detection even
  // though the LBR tail is uniform.
  exec(hw::SegmentKind::kRegular, hw::kVariedSites, 50_us);
  exec(hw::SegmentKind::kSpin, 5, 50_us);
  const auto v = det_.evaluate(lbr_, pmc_, truth_);
  EXPECT_FALSE(v.ground_truth_spin);
  EXPECT_FALSE(v.detected);
}

TEST_F(BwdTest, TightLoopIsFalsePositive) {
  exec(hw::SegmentKind::kTightLoop, 9, 100_us);
  const auto v = det_.evaluate(lbr_, pmc_, truth_);
  EXPECT_FALSE(v.ground_truth_spin) << "a tight compute loop is not spinning";
  EXPECT_TRUE(v.detected) << "...but it defeats all three heuristics";
}

TEST_F(BwdTest, IdleWindowNeverFires) {
  const auto v = det_.evaluate(lbr_, pmc_, truth_);
  EXPECT_FALSE(v.detected);
  EXPECT_FALSE(v.ground_truth_spin);
}

TEST_F(BwdTest, HeuristicAblationLbrOnly) {
  f_.bwd_use_l1 = false;
  f_.bwd_use_tlb = false;
  // With only the LBR heuristic, a window that ends in a long uniform run
  // is detected even though it had regular execution (and misses) earlier.
  exec(hw::SegmentKind::kRegular, hw::kVariedSites, 50_us);
  exec(hw::SegmentKind::kSpin, 5, 50_us);
  const auto v = det_.evaluate(lbr_, pmc_, truth_);
  EXPECT_TRUE(v.detected);
  EXPECT_FALSE(v.ground_truth_spin);
}

TEST_F(BwdTest, AccuracyAccumulator) {
  BwdAccuracy acc;
  acc.add({true, true});    // TP
  acc.add({false, true});   // FN
  acc.add({true, false});   // FP
  acc.add({false, false});  // TN
  acc.add({false, false});  // TN
  EXPECT_EQ(acc.windows, 5u);
  EXPECT_EQ(acc.tp, 1u);
  EXPECT_EQ(acc.fn, 1u);
  EXPECT_EQ(acc.fp, 1u);
  EXPECT_EQ(acc.tn, 2u);
  EXPECT_DOUBLE_EQ(acc.sensitivity(), 0.5);
  EXPECT_DOUBLE_EQ(acc.specificity(), 2.0 / 3.0);
}

TEST_F(BwdTest, MultipleSpinSitesNotGroundTruth) {
  exec(hw::SegmentKind::kSpin, 5, 50_us);
  exec(hw::SegmentKind::kSpin, 6, 50_us);
  const auto v = det_.evaluate(lbr_, pmc_, truth_);
  EXPECT_FALSE(v.ground_truth_spin);
}

}  // namespace
}  // namespace eo::core
