#include "common/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace eo {
namespace {

TEST(Histogram, EmptyBasics) {
  Histogram h;
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(Histogram, EmptyQuantilesAndExtremaAreZero) {
  // Every summary accessor must be safe on a histogram with no samples.
  Histogram h;
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.p50(), 0);
  EXPECT_EQ(h.p95(), 0);
  EXPECT_EQ(h.p99(), 0);
  EXPECT_EQ(h.p999(), 0);
  EXPECT_EQ(h.quantile(0.0), 0);
  EXPECT_EQ(h.quantile(1.0), 0);
}

TEST(Histogram, P999TracksTail) {
  // 999 fast samples and two 100x outliers: p99 stays near the bulk while
  // p999 must reach the outliers' bucket (with quantile rank q*(n-1), a
  // 1-in-1000 tail needs n > 1000 samples to surface at q=0.999).
  Histogram h;
  for (int i = 0; i < 999; ++i) h.add(1000);
  h.add(100000, 2);
  EXPECT_NEAR(static_cast<double>(h.p99()), 1000.0, 1000.0 * 0.04);
  EXPECT_GE(h.p999(), 100000);
  EXPECT_NEAR(static_cast<double>(h.p999()), 100000.0, 100000.0 * 0.04);
}

TEST(Histogram, P999OnSingleValue) {
  Histogram h;
  h.add(777);
  EXPECT_EQ(h.p999(), h.p50());
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.add(1234);
  EXPECT_EQ(h.total_count(), 1u);
  EXPECT_EQ(h.min(), 1234);
  EXPECT_EQ(h.max(), 1234);
  EXPECT_EQ(h.p50(), 1234);
  EXPECT_DOUBLE_EQ(h.mean(), 1234.0);
}

TEST(Histogram, SmallValuesExact) {
  // Values below the sub-bucket count are recorded exactly.
  Histogram h;
  for (int v = 0; v < 32; ++v) h.add(v);
  EXPECT_EQ(h.quantile(0.0), 0);
  EXPECT_EQ(h.max(), 31);
}

TEST(Histogram, QuantileAccuracyUniform) {
  Histogram h;
  Rng rng(5);
  std::vector<std::int64_t> vals;
  for (int i = 0; i < 100000; ++i) {
    const auto v = static_cast<std::int64_t>(rng.next_below(1000000));
    vals.push_back(v);
    h.add(v);
  }
  std::sort(vals.begin(), vals.end());
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    const auto exact = vals[static_cast<size_t>(q * (vals.size() - 1))];
    const auto approx = h.quantile(q);
    // Log-bucketed: ~3% relative error budget.
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                static_cast<double>(exact) * 0.04 + 32)
        << "q=" << q;
  }
}

TEST(Histogram, MeanMatches) {
  Histogram h;
  double sum = 0;
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const auto v = static_cast<std::int64_t>(rng.next_below(50000));
    h.add(v);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(h.mean(), sum / 10000.0, 1e-6);
}

TEST(Histogram, NegativeClampsToZero) {
  Histogram h;
  h.add(-5);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.total_count(), 1u);
}

TEST(Histogram, MergeEqualsCombined) {
  Histogram a, b, combined;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const auto v = static_cast<std::int64_t>(rng.next_below(1 << 20));
    if (i % 2 == 0) {
      a.add(v);
    } else {
      b.add(v);
    }
    combined.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.total_count(), combined.total_count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_EQ(a.p95(), combined.p95());
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.add(100, 5);
  h.clear();
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_EQ(h.p99(), 0);
}

TEST(Histogram, WeightedAdd) {
  Histogram h;
  h.add(10, 99);
  h.add(1000000, 1);
  EXPECT_EQ(h.total_count(), 100u);
  EXPECT_EQ(h.p50(), 10);
  EXPECT_GT(h.quantile(1.0), 900000);
}

TEST(Summary, Moments) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Summary, MergeMatchesCombined) {
  Summary a, b, c;
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double() * 100;
    (i % 3 == 0 ? a : b).add(v);
    c.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), c.count());
  EXPECT_NEAR(a.mean(), c.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), c.variance(), 1e-6);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

}  // namespace
}  // namespace eo
