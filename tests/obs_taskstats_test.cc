// Per-task delay accounting (sim-taskstats) contracts:
//  * arithmetic — `TaskDelayAcct` charges every interval to exactly one
//    state, so the state times always sum to the task's lifetime (the
//    conservation invariant the watchdog enforces at runtime);
//  * coverage — real kernel runs land time in the right states (on-CPU,
//    rq wait, futex/epoll blocking, timed sleep, VB parking);
//  * hot-path cost — a warm kernel accounts without touching the heap
//    (same global-new harness as kern_hotpath_alloc_test.cc);
//  * export — the `eo-taskstats` JSON section validates, and the validator
//    rejects every corruption of it (missing fields, wrong types, broken
//    conservation); the folded flamegraph export sanitizes hostile frames.
#include "obs/taskstats.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>

#include "common/json.h"
#include "common/units.h"
#include "kern/kernel.h"
#include "metrics/experiment.h"
#include "runtime/sim_thread.h"
#include "workloads/suite.h"

// --- allocation-counting harness (whole test binary) ---
namespace {
std::atomic<std::uint64_t> g_news{0};
}  // namespace

void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace eo::obs {
namespace {

/// Allocations performed by `body`.
template <typename Body>
std::uint64_t allocs_during(Body&& body) {
  const std::uint64_t before = g_news.load(std::memory_order_relaxed);
  body();
  return g_news.load(std::memory_order_relaxed) - before;
}

SimDuration state_time(const TaskstatsRecord& r, TaskDelayState s) {
  return r.times[s];
}

/// First record whose task name matches, or nullptr.
const TaskstatsRecord* find_task(const TaskstatsDoc& doc,
                                 const std::string& name) {
  for (const auto& r : doc.tasks) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

// --- TaskDelayAcct arithmetic ---------------------------------------------

TEST(TaskDelayAcct, ChargesEveryIntervalToExactlyOneState) {
  if (!kTaskstatsEnabled) GTEST_SKIP() << "metrics compiled out";
  TaskDelayAcct a;
  a.start(100, TaskDelayState::kRunnable);
  a.transition(150, TaskDelayState::kOncpu);      // 50ns runnable
  a.transition(250, TaskDelayState::kFutexBlocked);  // 100ns oncpu
  a.transition(250, TaskDelayState::kVbParked);   // same-timestamp: free
  a.finish(400);                                  // 150ns vb_parked
  EXPECT_TRUE(a.started());
  EXPECT_TRUE(a.finished());
  EXPECT_EQ(a.lifetime(999), 300);
  const TaskDelaySnapshot s = a.snapshot(999);
  EXPECT_EQ(s[TaskDelayState::kRunnable], 50);
  EXPECT_EQ(s[TaskDelayState::kOncpu], 100);
  EXPECT_EQ(s[TaskDelayState::kFutexBlocked], 0);
  EXPECT_EQ(s[TaskDelayState::kVbParked], 150);
  EXPECT_EQ(s.total(), a.lifetime(999));
  EXPECT_TRUE(a.conserved(999));
}

TEST(TaskDelayAcct, LiveSnapshotChargesOpenIntervalToCurrentState) {
  if (!kTaskstatsEnabled) GTEST_SKIP() << "metrics compiled out";
  TaskDelayAcct a;
  a.start(0, TaskDelayState::kRunnable);
  a.transition(10, TaskDelayState::kOncpu);
  // Still on-CPU at t=70: the open interval belongs to kOncpu.
  const TaskDelaySnapshot s = a.snapshot(70);
  EXPECT_EQ(s[TaskDelayState::kRunnable], 10);
  EXPECT_EQ(s[TaskDelayState::kOncpu], 60);
  EXPECT_EQ(s.total(), a.lifetime(70));
  EXPECT_TRUE(a.conserved(70));
  // The snapshot is a pure read: taking it twice changes nothing.
  const TaskDelaySnapshot s2 = a.snapshot(70);
  EXPECT_EQ(s2.total(), s.total());
}

TEST(TaskDelayAcct, IgnoresUseBeforeStartAndAfterFinish) {
  if (!kTaskstatsEnabled) GTEST_SKIP() << "metrics compiled out";
  TaskDelayAcct a;
  a.transition(50, TaskDelayState::kOncpu);  // before start: no-op
  EXPECT_FALSE(a.started());
  EXPECT_TRUE(a.conserved(50));
  EXPECT_EQ(a.lifetime(50), 0);
  a.start(100, TaskDelayState::kRunnable);
  a.finish(130);
  a.transition(200, TaskDelayState::kOncpu);  // after finish: no-op
  a.finish(300);                              // double finish: no-op
  EXPECT_EQ(a.lifetime(999), 30);
  EXPECT_EQ(a.snapshot(999)[TaskDelayState::kRunnable], 30);
  EXPECT_TRUE(a.conserved(999));
}

TEST(TaskDelaySnapshot, DeltaIsComponentWise) {
  if (!kTaskstatsEnabled) GTEST_SKIP() << "metrics compiled out";
  TaskDelayAcct a;
  a.start(0, TaskDelayState::kOncpu);
  const TaskDelaySnapshot early = a.snapshot(40);
  a.transition(100, TaskDelayState::kRunnable);
  const TaskDelaySnapshot late = a.snapshot(130);
  const TaskDelaySnapshot d = TaskDelaySnapshot::delta(late, early);
  EXPECT_EQ(d[TaskDelayState::kOncpu], 60);
  EXPECT_EQ(d[TaskDelayState::kRunnable], 30);
  EXPECT_EQ(d.total(), 90);  // exactly the window between the snapshots
}

// --- kernel-run conservation and state coverage ---------------------------

TEST(TaskstatsKernel, ComputeYieldRunConservesAndLandsCpuStates) {
  if (!kTaskstatsEnabled) GTEST_SKIP() << "metrics compiled out";
  kern::KernelConfig c;
  c.topo = hw::Topology::make_cores(1, 1);
  kern::Kernel k(c);
  // Four oversubscribed compute+yield threads on one core: every task both
  // executes and waits in the runqueue.
  for (int i = 0; i < 4; ++i) {
    runtime::spawn(k, "spin", [](runtime::Env env) -> runtime::SimThread {
      for (int r = 0; r < 200; ++r) {
        co_await env.compute(10_us);
        co_await env.yield();
      }
      co_return;
    });
  }
  // Mid-run: live tasks must already conserve (open intervals included).
  k.run_until(3_ms);
  const TaskstatsDoc mid = k.snapshot_taskstats();
  ASSERT_EQ(mid.tasks.size(), 4u);
  for (const auto& r : mid.tasks) {
    EXPECT_FALSE(r.finished);
    EXPECT_EQ(r.times.total(), r.lifetime) << r.name << "/" << r.tid;
  }
  ASSERT_TRUE(k.run_to_exit(10_s));
  const TaskstatsDoc doc = k.snapshot_taskstats();
  ASSERT_EQ(doc.tasks.size(), 4u);
  for (const auto& r : doc.tasks) {
    EXPECT_TRUE(r.finished);
    EXPECT_GT(r.lifetime, 0);
    EXPECT_EQ(r.times.total(), r.lifetime) << r.name << "/" << r.tid;
    EXPECT_GT(state_time(r, TaskDelayState::kOncpu), 0);
    EXPECT_GT(state_time(r, TaskDelayState::kRunnable), 0);
  }
}

/// A strictly alternating futex ping-pong on two words. Each side publishes
/// its token (store 1) before waking, so a coalesced wake still leaves the
/// partner's next wait seeing the value and returning immediately — robust
/// under any scheduling, unlike a one-word pattern where a racing waker's
/// wakes coalesce and the waiter ends up waiting on a count it never sees.
void spawn_pingpong(kern::Kernel& k, const char* waiter_name,
                    const char* waker_name) {
  kern::SimWord* a = k.alloc_word(0);
  kern::SimWord* b = k.alloc_word(0);
  runtime::spawn(k, waiter_name,
                 [a, b](runtime::Env env) -> runtime::SimThread {
                   for (int r = 0; r < 50; ++r) {
                     co_await env.futex_wait(a, 0);
                     co_await env.store(a, 0);
                     co_await env.store(b, 1);
                     co_await env.futex_wake(b, 1);
                   }
                   co_return;
                 });
  runtime::spawn(k, waker_name,
                 [a, b](runtime::Env env) -> runtime::SimThread {
                   for (int r = 0; r < 50; ++r) {
                     co_await env.compute(5_us);
                     co_await env.store(a, 1);
                     co_await env.futex_wake(a, 1);
                     co_await env.futex_wait(b, 0);
                     co_await env.store(b, 0);
                   }
                   co_return;
                 });
}

TEST(TaskstatsKernel, BlockingStatesLandWhereTheyBelong) {
  if (!kTaskstatsEnabled) GTEST_SKIP() << "metrics compiled out";
  kern::KernelConfig c;
  c.topo = hw::Topology::make_cores(2, 1);
  kern::Kernel k(c);  // vanilla features: waits really sleep
  spawn_pingpong(k, "fx-waiter", "fx-waker");
  const int epfd = k.epoll_create();
  runtime::spawn(k, "ep-waiter",
                 [epfd](runtime::Env env) -> runtime::SimThread {
                   for (int r = 0; r < 20; ++r) {
                     co_await env.epoll_wait(epfd);
                   }
                   co_return;
                 });
  runtime::spawn(k, "ep-poster",
                 [epfd](runtime::Env env) -> runtime::SimThread {
                   for (int r = 0; r < 20; ++r) {
                     co_await env.compute(20_us);
                     co_await env.epoll_post(epfd, 1);
                   }
                   co_return;
                 });
  runtime::spawn(k, "sleeper", [](runtime::Env env) -> runtime::SimThread {
    for (int r = 0; r < 10; ++r) {
      co_await env.sleep(50_us);
      co_await env.compute(1_us);
    }
    co_return;
  });
  ASSERT_TRUE(k.run_to_exit(10_s));
  const TaskstatsDoc doc = k.snapshot_taskstats();
  ASSERT_EQ(doc.tasks.size(), 5u);
  for (const auto& r : doc.tasks) {
    EXPECT_TRUE(r.finished);
    EXPECT_EQ(r.times.total(), r.lifetime) << r.name << "/" << r.tid;
  }
  const TaskstatsRecord* fx = find_task(doc, "fx-waiter");
  ASSERT_NE(fx, nullptr);
  EXPECT_GT(state_time(*fx, TaskDelayState::kFutexBlocked), 0);
  EXPECT_EQ(state_time(*fx, TaskDelayState::kVbParked), 0);  // vanilla
  const TaskstatsRecord* ep = find_task(doc, "ep-waiter");
  ASSERT_NE(ep, nullptr);
  EXPECT_GT(state_time(*ep, TaskDelayState::kEpollBlocked), 0);
  const TaskstatsRecord* sl = find_task(doc, "sleeper");
  ASSERT_NE(sl, nullptr);
  EXPECT_GT(state_time(*sl, TaskDelayState::kSleeping), 0);
}

TEST(TaskstatsKernel, VbParkingIsAccountedAsVbParkedNotBlocked) {
  if (!kTaskstatsEnabled) GTEST_SKIP() << "metrics compiled out";
  kern::KernelConfig c;
  c.topo = hw::Topology::make_cores(1, 1);
  c.features.vb_futex = true;
  c.features.vb_auto_disable = false;  // park even below the core count
  kern::Kernel k(c);
  spawn_pingpong(k, "vb-waiter", "vb-waker");
  ASSERT_TRUE(k.run_to_exit(10_s));
  const TaskstatsDoc doc = k.snapshot_taskstats();
  const TaskstatsRecord* waiter = find_task(doc, "vb-waiter");
  ASSERT_NE(waiter, nullptr);
  EXPECT_EQ(waiter->times.total(), waiter->lifetime);
  EXPECT_GT(state_time(*waiter, TaskDelayState::kVbParked), 0);
  // A VB park is not a real sleep: no futex-blocked time on this path.
  EXPECT_EQ(state_time(*waiter, TaskDelayState::kFutexBlocked), 0);
}

TEST(TaskstatsKernel, ExperimentRunExportsConservedDocWatchdogClean) {
  if (!kTaskstatsEnabled) GTEST_SKIP() << "metrics compiled out";
  const auto& spec = workloads::find_benchmark("cg");
  metrics::RunConfig rc;
  rc.cpus = 4;
  rc.sockets = 1;
  rc.features = core::Features::optimized();
  rc.ref_footprint = spec.ref_footprint();
  rc.deadline = 600_s;
  rc.metrics.enabled = true;
  rc.taskstats = true;
  const auto r = metrics::run_experiment(rc, [&](kern::Kernel& k) {
    workloads::spawn_benchmark(k, spec, 16, /*seed=*/7, /*scale=*/0.02);
  });
  ASSERT_TRUE(r.completed);
  ASSERT_NE(r.taskstats, nullptr);
  ASSERT_EQ(r.taskstats->tasks.size(), 16u);
  for (const auto& t : r.taskstats->tasks) {
    EXPECT_TRUE(t.finished);
    EXPECT_EQ(t.times.total(), t.lifetime) << t.name << "/" << t.tid;
  }
  // The sampler cross-checked conservation + state consistency every tick.
  ASSERT_NE(r.metrics, nullptr);
  EXPECT_GT(r.metrics->watchdog_checks, 0u);
  EXPECT_EQ(r.metrics->watchdog_violations, 0u);
}

TEST(TaskstatsKernel, WarmAccountingIsAllocationFree) {
  if (!kTaskstatsEnabled) GTEST_SKIP() << "metrics compiled out";
  kern::KernelConfig c;
  c.topo = hw::Topology::make_cores(2, 1);
  kern::Kernel k(c);
  kern::SimWord* w = k.alloc_word(0);
  // Futex ping-pong crosses every hot accounting site (oncpu, runnable,
  // futex-blocked transitions) thousands of times.
  runtime::spawn(k, "waiter", [w](runtime::Env env) -> runtime::SimThread {
    for (int r = 0; r < 3000; ++r) {
      co_await env.futex_wait(w, 0);
      co_await env.store(w, 0);
    }
    co_return;
  });
  runtime::spawn(k, "waker", [w](runtime::Env env) -> runtime::SimThread {
    for (int r = 0; r < 3000; ++r) {
      co_await env.compute(5_us);
      co_await env.store(w, 1);
      co_await env.futex_wake(w, 1);
    }
    co_return;
  });
  k.run_until(2_ms);  // warm
  const std::uint64_t n = allocs_during([&] { k.run_until(14_ms); });
  EXPECT_EQ(n, 0u) << "delay accounting touched the heap on the warm path";
  EXPECT_TRUE(k.run_to_exit(k.now() + 10_s));
}

// --- eo-taskstats JSON + validator corruption suite -----------------------

/// A small fully-consistent document (two tasks, exact conservation).
TaskstatsDoc sample_doc() {
  TaskstatsDoc doc;
  TaskstatsRecord a;
  a.tid = 1;
  a.name = "worker";
  a.finished = true;
  a.lifetime = 100;
  a.times.t[static_cast<std::size_t>(TaskDelayState::kOncpu)] = 60;
  a.times.t[static_cast<std::size_t>(TaskDelayState::kRunnable)] = 40;
  doc.tasks.push_back(a);
  TaskstatsRecord b;
  b.tid = 2;
  b.name = "io;weird name";  // hostile for the folded format
  b.finished = false;
  b.lifetime = 30;
  b.times.t[static_cast<std::size_t>(TaskDelayState::kFutexBlocked)] = 30;
  doc.tasks.push_back(b);
  return doc;
}

std::string render_json(const TaskstatsDoc& doc) {
  std::ostringstream os;
  json::Writer w(os);
  write_taskstats_json(w, doc);
  return os.str();
}

/// Validates `text` as an eo-taskstats section; returns the verdict and the
/// validator's error message via `err`.
bool validate_text(const std::string& text, std::string* err) {
  json::Value v;
  if (!json::parse(text, &v, err)) return false;
  return validate_taskstats_value(v, err);
}

/// Replaces the first occurrence of `from` (which must exist) with `to`.
std::string corrupt(const std::string& text, const std::string& from,
                    const std::string& to) {
  const std::size_t pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << "corruption anchor '" << from
                                    << "' not found in:\n"
                                    << text;
  std::string out = text;
  out.replace(pos, from.size(), to);
  return out;
}

TEST(TaskstatsJson, RenderedDocumentValidates) {
  std::string err;
  EXPECT_TRUE(validate_text(render_json(sample_doc()), &err)) << err;
}

TEST(TaskstatsJson, RenderedKernelSnapshotValidates) {
  if (!kTaskstatsEnabled) GTEST_SKIP() << "metrics compiled out";
  kern::KernelConfig c;
  c.topo = hw::Topology::make_cores(2, 1);
  kern::Kernel k(c);
  for (int i = 0; i < 4; ++i) {
    runtime::spawn(k, "t", [](runtime::Env env) -> runtime::SimThread {
      for (int r = 0; r < 100; ++r) {
        co_await env.compute(10_us);
        co_await env.yield();
      }
      co_return;
    });
  }
  ASSERT_TRUE(k.run_to_exit(10_s));
  std::string err;
  EXPECT_TRUE(validate_text(render_json(k.snapshot_taskstats()), &err)) << err;
}

TEST(TaskstatsJson, ValidatorRejectsEveryCorruption) {
  const std::string good = render_json(sample_doc());
  struct Case {
    const char* what;
    const char* from;
    const char* to;
  };
  const Case cases[] = {
      {"wrong schema", "\"schema\":\"eo-taskstats\"",
       "\"schema\":\"eo-metrics\""},
      {"wrong schema version", "\"schema_version\":1", "\"schema_version\":2"},
      {"n_tasks/array mismatch", "\"n_tasks\":2", "\"n_tasks\":3"},
      {"tid wrong type", "\"tid\":1", "\"tid\":\"one\""},
      {"name wrong type", "\"name\":\"worker\"", "\"name\":17"},
      {"finished wrong type", "\"finished\":true", "\"finished\":1"},
      {"negative lifetime", "\"lifetime_ns\":100", "\"lifetime_ns\":-100"},
      {"missing state field", "\"oncpu_ns\":60,", ""},
      {"negative state time", "\"runnable_ns\":40", "\"runnable_ns\":-40"},
      {"broken conservation", "\"oncpu_ns\":60", "\"oncpu_ns\":61"},
      {"tasks not an array", "\"tasks\":[", "\"tasks\":0,\"x\":["},
  };
  for (const Case& c : cases) {
    std::string err;
    EXPECT_FALSE(validate_text(corrupt(good, c.from, c.to), &err))
        << "validator accepted: " << c.what;
    EXPECT_FALSE(err.empty()) << c.what;
  }
  // The conservation error names the culprit so a human can find the task.
  std::string err;
  ASSERT_FALSE(validate_text(corrupt(good, "\"oncpu_ns\":60", "\"oncpu_ns\":61"),
                             &err));
  EXPECT_NE(err.find("lifetime_ns"), std::string::npos) << err;
  EXPECT_NE(err.find("tid=1"), std::string::npos) << err;
  // Non-object roots are rejected, not crashed on.
  EXPECT_FALSE(validate_text("[1,2,3]", &err));
  EXPECT_FALSE(validate_text("42", &err));
}

// --- folded-stack flamegraph export ---------------------------------------

TEST(TaskstatsFolded, RendersOneLinePerNonzeroStateSanitized) {
  const std::string folded = render_folded(sample_doc(), "serve test");
  // ';' and whitespace are format delimiters: sanitized out of every frame.
  EXPECT_EQ(folded,
            "serve_test;worker/1;oncpu 60\n"
            "serve_test;worker/1;runnable 40\n"
            "serve_test;io:weird_name/2;futex_blocked 30\n");
}

TEST(TaskstatsFolded, EmptyNamesGetPlaceholderFrames) {
  TaskstatsDoc doc;
  TaskstatsRecord r;
  r.tid = 9;
  r.lifetime = 5;
  r.times.t[static_cast<std::size_t>(TaskDelayState::kOncpu)] = 5;
  doc.tasks.push_back(r);
  EXPECT_EQ(render_folded(doc, ""), "?;?/9;oncpu 5\n");
}

}  // namespace
}  // namespace eo::obs
