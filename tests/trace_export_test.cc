// Exporter tests: the Chrome JSON emitted for a real kernel run passes the
// structural validator, CSV row counts match the event stream, and equal
// seeds render byte-identical files. Kernel-driven cases skip themselves in
// EO_TRACE=OFF builds (the instrumentation compiles away, so runs emit no
// events); the validator unit tests always run.
#include <gtest/gtest.h>

#include <sstream>

#include "metrics/experiment.h"
#include "trace/export.h"
#include "workloads/suite.h"

namespace eo {
namespace {

using metrics::RunConfig;
using metrics::RunResult;
using metrics::run_experiment;

RunResult traced_run(std::uint64_t seed) {
  const auto& spec = workloads::find_benchmark("cg");
  RunConfig rc;
  rc.cpus = 4;
  rc.sockets = 2;
  rc.seed = seed;
  rc.features = core::Features::optimized();
  rc.ref_footprint = spec.ref_footprint();
  rc.deadline = 300_s;
  rc.trace.enabled = true;
  rc.trace.ring_capacity = 1u << 20;
  return run_experiment(rc, [&](kern::Kernel& k) {
    workloads::spawn_benchmark(k, spec, 16, 42, 0.05);
  });
}

#define SKIP_IF_UNTRACED(r)                                              \
  do {                                                                   \
    ASSERT_TRUE((r).trace != nullptr);                                   \
    if ((r).trace->events.empty()) {                                     \
      GTEST_SKIP() << "EO_TRACE=OFF build: no instrumentation compiled"; \
    }                                                                    \
  } while (0)

TEST(TraceExport, KernelRunProducesValidChromeJson) {
  const auto r = traced_run(7);
  SKIP_IF_UNTRACED(r);
  EXPECT_EQ(r.trace->dropped, 0u);
  const std::string json = trace::render(*r.trace, "json");
  std::string err;
  EXPECT_TRUE(trace::validate_chrome_trace_json(json, &err)) << err;
}

TEST(TraceExport, CsvHasOneRowPerEventPlusHeader) {
  const auto r = traced_run(7);
  SKIP_IF_UNTRACED(r);
  const std::string csv = trace::render(*r.trace, "csv");
  std::istringstream is(csv);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) ++lines;
  EXPECT_EQ(lines, r.trace->events.size() + 1);
  EXPECT_EQ(csv.substr(0, csv.find('\n')),
            "ts_ns,core,kind,kind_name,tid,arg0,arg1");
}

TEST(TraceExport, IdenticalSeedsRenderByteIdentical) {
  const auto a = traced_run(9);
  const auto b = traced_run(9);
  SKIP_IF_UNTRACED(a);
  ASSERT_TRUE(b.trace != nullptr);
  EXPECT_EQ(trace::render(*a.trace, "json"), trace::render(*b.trace, "json"));
  EXPECT_EQ(trace::render(*a.trace, "csv"), trace::render(*b.trace, "csv"));
}

TEST(TraceExport, ValidatorAcceptsMinimalEnvelope) {
  std::string err;
  EXPECT_TRUE(trace::validate_chrome_trace_json(
      R"({"traceEvents":[{"name":"x","ph":"i","ts":1.5,"pid":0,"tid":0}]})",
      &err))
      << err;
  EXPECT_TRUE(trace::validate_chrome_trace_json(R"({"traceEvents":[]})", &err))
      << err;
}

TEST(TraceExport, ValidatorRejectsMalformedInput) {
  std::string err;
  // Truncated document.
  EXPECT_FALSE(trace::validate_chrome_trace_json(R"({"traceEvents":[)", &err));
  // Root must be an object with a traceEvents array.
  EXPECT_FALSE(trace::validate_chrome_trace_json(R"([])", &err));
  EXPECT_FALSE(trace::validate_chrome_trace_json(R"({"events":[]})", &err));
  // Event missing its phase.
  EXPECT_FALSE(trace::validate_chrome_trace_json(
      R"({"traceEvents":[{"name":"x","ts":0}]})", &err));
  // Negative timestamp on a non-metadata event.
  EXPECT_FALSE(trace::validate_chrome_trace_json(
      R"({"traceEvents":[{"name":"x","ph":"i","ts":-1}]})", &err));
}

}  // namespace
}  // namespace eo
