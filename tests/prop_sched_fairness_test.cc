// Property tests of scheduler fairness and conservation invariants, swept
// over thread and core counts with parameterized gtest.
#include <gtest/gtest.h>

#include "metrics/experiment.h"
#include "runtime/sim_thread.h"

namespace eo {
namespace {

using runtime::Env;
using runtime::SimThread;

class FairnessSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};  // cores, threads

TEST_P(FairnessSweep, CpuTimeSharedFairly) {
  const auto [cores, threads] = GetParam();
  kern::KernelConfig kc;
  kc.topo = hw::Topology::make_cores(cores, cores > 4 ? 2 : 1);
  kern::Kernel k(kc);
  const SimDuration horizon = 200_ms;
  for (int i = 0; i < threads; ++i) {
    runtime::spawn(k, "t" + std::to_string(i), [horizon](Env env) -> SimThread {
      // Run forever-ish; the test stops at the horizon.
      while (env.now() < horizon * 2) co_await env.compute(1_ms);
      co_return;
    });
  }
  k.run_until(horizon);
  SimDuration min_cpu = horizon, max_cpu = 0, total = 0;
  for (const auto& t : k.tasks()) {
    min_cpu = std::min(min_cpu, t->stats.cpu_time);
    max_cpu = std::max(max_cpu, t->stats.cpu_time);
    total += t->stats.cpu_time;
  }
  // Fairness: no compute-bound thread gets less than 60% of its fair share
  // or more than ~1.7x of it.
  const double fair = static_cast<double>(horizon) *
                      std::min(cores, threads) / threads;
  EXPECT_GT(static_cast<double>(min_cpu), fair * 0.60);
  EXPECT_LT(static_cast<double>(max_cpu), fair * 1.70);
  // Conservation: total CPU time cannot exceed cores * wall.
  EXPECT_LE(total, horizon * cores);
  // Work conservation: compute-bound tasks keep every core >90% busy.
  if (threads >= cores) {
    EXPECT_GT(static_cast<double>(total),
              static_cast<double>(horizon * cores) * 0.90);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FairnessSweep,
    ::testing::Values(std::make_tuple(1, 2), std::make_tuple(1, 5),
                      std::make_tuple(2, 8), std::make_tuple(4, 4),
                      std::make_tuple(4, 16), std::make_tuple(8, 32)),
    [](const auto& info) {
      return "c" + std::to_string(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

TEST(SchedInvariants, VoluntarySwitchPerYield) {
  kern::KernelConfig kc;
  kc.topo = hw::Topology::make_cores(1, 1);
  kern::Kernel k(kc);
  const int yields = 100;
  for (int i = 0; i < 2; ++i) {
    runtime::spawn(k, "y", [yields](Env env) -> SimThread {
      for (int r = 0; r < yields; ++r) {
        co_await env.compute(10_us);
        co_await env.yield();
      }
      co_return;
    });
  }
  ASSERT_TRUE(k.run_to_exit(10_s));
  EXPECT_GE(k.stats().voluntary_switches, static_cast<std::uint64_t>(2 * yields));
}

TEST(SchedInvariants, SlicePreemptionBoundsMonopolization) {
  // One long-running task plus one periodically waking task on one core:
  // the waker's wakeup latency is bounded by slice mechanics, so it achieves
  // a steady round rate.
  kern::KernelConfig kc;
  kc.topo = hw::Topology::make_cores(1, 1);
  kern::Kernel k(kc);
  runtime::spawn(k, "hog", [](Env env) -> SimThread {
    co_await env.compute(300_ms);
    co_return;
  });
  int rounds = 0;
  runtime::spawn(k, "ticker", [&rounds](Env env) -> SimThread {
    for (int r = 0; r < 50; ++r) {
      co_await env.sleep(1_ms);
      co_await env.compute(100_us);
      ++rounds;
    }
    co_return;
  });
  k.run_until(250_ms);
  EXPECT_GE(rounds, 40) << "waking task starved by the compute hog";
}

}  // namespace
}  // namespace eo
