// SchedStats X-macro sync: the struct, summary(), and the metric-registry
// bridge must all cover every field. A field added to the struct without
// going through EO_SCHED_STATS_FIELDS trips the sizeof static_assert in
// sched_stats.cc at compile time; these tests pin the runtime halves.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sched/sched_stats.h"

namespace eo::sched {
namespace {

std::vector<std::string> field_names() {
  std::vector<std::string> names;
#define EO_SCHED_STATS_NAME(name) names.push_back(#name);
  EO_SCHED_STATS_FIELDS(EO_SCHED_STATS_NAME)
#undef EO_SCHED_STATS_NAME
  return names;
}

// Gives each field a distinct value via the layout the static_assert pins
// (plain uint64 fields, declaration order).
SchedStats make_distinct() {
  SchedStats s;
  std::uint64_t vals[sizeof(SchedStats) / sizeof(std::uint64_t)];
  for (std::size_t i = 0; i < std::size(vals); ++i) {
    vals[i] = 1000 + i;
  }
  std::memcpy(&s, vals, sizeof(s));
  return s;
}

TEST(SchedStats, SummaryCoversEveryField) {
  const SchedStats s = make_distinct();
  const std::string sum = s.summary();
  const auto names = field_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    const std::string want = names[i] + "=" + std::to_string(1000 + i);
    EXPECT_NE(sum.find(want), std::string::npos)
        << "summary() is missing '" << want << "': " << sum;
  }
}

TEST(SchedStats, RegistryBridgeCoversEveryFieldInOrder) {
  const SchedStats s = make_distinct();
  obs::MetricRegistry reg;
  s.register_metrics(&reg);
  const auto snap = reg.snapshot_counters();
  const auto names = field_names();
  ASSERT_EQ(snap.size(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(snap[i].name, "sched." + names[i]);
    EXPECT_EQ(snap[i].value, 1000 + i);
  }
}

TEST(SchedStats, BridgeReadsLiveCells) {
  SchedStats s;
  obs::MetricRegistry reg;
  s.register_metrics(&reg);
  s.context_switches = 17;
  bool found = false;
  for (const auto& c : reg.snapshot_counters()) {
    if (c.name == "sched.context_switches") {
      EXPECT_EQ(c.value, 17u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SchedStats, TotalMigrationsSumsBothKinds) {
  SchedStats s;
  s.migrations_in_node = 3;
  s.migrations_cross_node = 4;
  EXPECT_EQ(s.total_migrations(), 7u);
}

}  // namespace
}  // namespace eo::sched
