// bench::Cli argument parsing: strict scale/seed/jobs parses (no silent
// coercion of "0.5x" or "abc"), flag gating (--trace* only when the spec
// supports tracing), and defaults from the CliSpec.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/cli.h"

namespace eo {
namespace {

using exp::Cli;
using exp::CliSpec;

CliSpec plain_spec() {
  CliSpec s;
  s.id = "bench_under_test";
  s.summary = "test spec";
  s.default_scale = 0.25;
  s.default_seed = 42;
  return s;
}

CliSpec trace_spec() {
  CliSpec s = plain_spec();
  s.supports_trace = true;
  return s;
}

bool try_parse(std::vector<std::string> args, const CliSpec& spec, Cli* out,
               std::string* err) {
  args.insert(args.begin(), spec.id);
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (auto& a : args) argv.push_back(a.data());
  return Cli::parse_into(static_cast<int>(argv.size()), argv.data(), spec, out,
                         err);
}

TEST(CliTest, DefaultsComeFromSpec) {
  Cli cli;
  std::string err;
  ASSERT_TRUE(try_parse({}, plain_spec(), &cli, &err)) << err;
  EXPECT_DOUBLE_EQ(cli.scale, 0.25);
  EXPECT_EQ(cli.seed, 42u);
  EXPECT_EQ(cli.jobs, 0u);
  EXPECT_TRUE(cli.json_path.empty());
  EXPECT_TRUE(cli.filter.empty());
  EXPECT_FALSE(cli.list);
  EXPECT_FALSE(cli.tracing());
}

TEST(CliTest, ParsesFullFlagSet) {
  Cli cli;
  std::string err;
  ASSERT_TRUE(try_parse({"2.5", "--json=out.json", "--jobs=4",
                         "--filter=ocean/", "--list", "--seed=9"},
                        plain_spec(), &cli, &err))
      << err;
  EXPECT_DOUBLE_EQ(cli.scale, 2.5);
  EXPECT_EQ(cli.json_path, "out.json");
  EXPECT_EQ(cli.jobs, 4u);
  EXPECT_EQ(cli.filter, "ocean/");
  EXPECT_TRUE(cli.list);
  EXPECT_EQ(cli.seed, 9u);
}

TEST(CliTest, RejectsGarbageScale) {
  Cli cli;
  std::string err;
  // The old parse_scale accepted "0.5x" (as 0.5) and ignored "abc" — both
  // must now be hard errors.
  EXPECT_FALSE(try_parse({"0.5x"}, plain_spec(), &cli, &err));
  EXPECT_NE(err.find("invalid scale"), std::string::npos);
  EXPECT_FALSE(try_parse({"abc"}, plain_spec(), &cli, &err));
  EXPECT_NE(err.find("invalid scale"), std::string::npos);
  EXPECT_FALSE(try_parse({"0"}, plain_spec(), &cli, &err));
  EXPECT_FALSE(try_parse({"-1"}, plain_spec(), &cli, &err));
}

TEST(CliTest, RejectsExtraPositional) {
  Cli cli;
  std::string err;
  EXPECT_FALSE(try_parse({"1.0", "2.0"}, plain_spec(), &cli, &err));
  EXPECT_NE(err.find("extra positional"), std::string::npos);
}

TEST(CliTest, RejectsUnknownFlag) {
  Cli cli;
  std::string err;
  EXPECT_FALSE(try_parse({"--bogus"}, plain_spec(), &cli, &err));
  EXPECT_NE(err.find("unknown flag"), std::string::npos);
}

TEST(CliTest, RejectsNonIntegerJobsAndSeed) {
  Cli cli;
  std::string err;
  EXPECT_FALSE(try_parse({"--jobs=two"}, plain_spec(), &cli, &err));
  EXPECT_NE(err.find("--jobs"), std::string::npos);
  EXPECT_FALSE(try_parse({"--jobs=-1"}, plain_spec(), &cli, &err));
  EXPECT_FALSE(try_parse({"--seed=1.5"}, plain_spec(), &cli, &err));
  EXPECT_NE(err.find("--seed"), std::string::npos);
}

TEST(CliTest, RejectsEmptyJsonPath) {
  Cli cli;
  std::string err;
  EXPECT_FALSE(try_parse({"--json="}, plain_spec(), &cli, &err));
  EXPECT_NE(err.find("--json"), std::string::npos);
}

TEST(CliTest, TraceFlagsGatedBySpec) {
  Cli cli;
  std::string err;
  // Not supported: --trace* reads as an unknown flag.
  EXPECT_FALSE(try_parse({"--trace=t.json"}, plain_spec(), &cli, &err));
  EXPECT_NE(err.find("unknown flag"), std::string::npos);
  EXPECT_FALSE(try_parse({"--trace-only"}, plain_spec(), &cli, &err));
  // Supported: parses into the trace fields.
  ASSERT_TRUE(try_parse({"--trace=t.json", "--trace-format=csv",
                         "--trace-only"},
                        trace_spec(), &cli, &err))
      << err;
  EXPECT_TRUE(cli.tracing());
  EXPECT_EQ(cli.trace_path, "t.json");
  EXPECT_EQ(cli.trace_format, "csv");
  EXPECT_TRUE(cli.trace_only);
}

TEST(CliTest, RejectsBadTraceFormat) {
  Cli cli;
  std::string err;
  EXPECT_FALSE(try_parse({"--trace-format=xml"}, trace_spec(), &cli, &err));
  EXPECT_NE(err.find("--trace-format"), std::string::npos);
  EXPECT_FALSE(try_parse({"--trace="}, trace_spec(), &cli, &err));
}

TEST(CliTest, MetricsFlagsParseUniformly) {
  Cli cli;
  std::string err;
  // Defaults: sampling off, 1 ms interval, JSON format.
  ASSERT_TRUE(try_parse({}, plain_spec(), &cli, &err)) << err;
  EXPECT_FALSE(cli.metrics);
  EXPECT_TRUE(cli.metrics_path.empty());
  EXPECT_EQ(cli.metrics_interval_us, 1000u);
  EXPECT_EQ(cli.metrics_format, "json");
  // Bare --metrics samples without exporting a document.
  ASSERT_TRUE(try_parse({"--metrics"}, plain_spec(), &cli, &err)) << err;
  EXPECT_TRUE(cli.metrics);
  EXPECT_TRUE(cli.metrics_path.empty());
  // --metrics=<path> samples and exports; the other knobs ride along.
  ASSERT_TRUE(try_parse({"--metrics=m.json", "--metrics-interval=250",
                         "--metrics-format=csv"},
                        plain_spec(), &cli, &err))
      << err;
  EXPECT_TRUE(cli.metrics);
  EXPECT_EQ(cli.metrics_path, "m.json");
  EXPECT_EQ(cli.metrics_interval_us, 250u);
  EXPECT_EQ(cli.metrics_format, "csv");
  // Unlike --trace, the metrics flags are not gated behind supports_trace:
  // every bench accepts them, including trace-capable ones.
  ASSERT_TRUE(try_parse({"--metrics"}, trace_spec(), &cli, &err)) << err;
  EXPECT_TRUE(cli.metrics);
}

TEST(CliTest, RejectsBadMetricsArguments) {
  Cli cli;
  std::string err;
  EXPECT_FALSE(try_parse({"--metrics="}, plain_spec(), &cli, &err));
  EXPECT_NE(err.find("--metrics"), std::string::npos);
  EXPECT_FALSE(try_parse({"--metrics-interval=0"}, plain_spec(), &cli, &err));
  EXPECT_NE(err.find("--metrics-interval"), std::string::npos);
  EXPECT_FALSE(try_parse({"--metrics-interval=abc"}, plain_spec(), &cli,
                         &err));
  EXPECT_FALSE(try_parse({"--metrics-format=xml"}, plain_spec(), &cli, &err));
  EXPECT_NE(err.find("--metrics-format"), std::string::npos);
}

TEST(CliTest, UsageMentionsMetricsFlags) {
  const std::string plain = Cli::usage(plain_spec());
  EXPECT_NE(plain.find("--metrics"), std::string::npos);
  EXPECT_NE(plain.find("--metrics-interval"), std::string::npos);
  EXPECT_NE(plain.find("--metrics-format"), std::string::npos);
}

TEST(CliTest, RunnerOptionsCarryJobsAndFilter) {
  Cli cli;
  std::string err;
  ASSERT_TRUE(try_parse({"--jobs=3", "--filter=lu"}, plain_spec(), &cli, &err))
      << err;
  const exp::RunnerOptions o = cli.runner_options();
  EXPECT_EQ(o.jobs, 3u);
  EXPECT_EQ(o.filter, "lu");
}

TEST(CliTest, UsageMentionsTraceFlagsOnlyWhenSupported) {
  const std::string plain = Cli::usage(plain_spec());
  const std::string traced = Cli::usage(trace_spec());
  EXPECT_EQ(plain.find("--trace"), std::string::npos);
  EXPECT_NE(traced.find("--trace"), std::string::npos);
  EXPECT_NE(plain.find("--json"), std::string::npos);
}

}  // namespace
}  // namespace eo
