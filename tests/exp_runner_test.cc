// ExperimentRunner semantics: stable cell ordering independent of --jobs,
// substring filtering, not-applicable cells, and the bounded
// retry-at-longer-deadline loop for runs that miss their simulated deadline.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "exp/runner.h"
#include "exp/sweep.h"

namespace eo {
namespace {

using exp::Cell;
using exp::CellOutcome;
using exp::CellRun;
using exp::ExperimentRunner;
using exp::Outcomes;
using exp::RunnerOptions;
using exp::Sweep;

RunnerOptions quiet(std::size_t jobs = 1) {
  RunnerOptions o;
  o.jobs = jobs;
  o.progress = false;
  return o;
}

Sweep small_grid() {
  Sweep s("grid");
  s.axis("a", {"a0", "a1"}).axis("b", {"b0", "b1", "b2"});
  return s;
}

// Deterministic synthetic run keyed on the cell's coordinates.
CellRun synthetic(const Cell& cell) {
  CellRun r;
  r.run.completed = true;
  r.run.exec_time = static_cast<SimDuration>(1000 * (cell.flat + 1));
  r.set("flat", static_cast<double>(cell.flat));
  return r;
}

TEST(RunnerTest, OutcomesLandAtStableFlatIndices) {
  ExperimentRunner runner(small_grid(), quiet());
  const Outcomes out =
      runner.run([](const Cell& cell, const metrics::RunConfig&) {
        return synthetic(cell);
      });
  ASSERT_EQ(out.size(), 6u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].cell.flat, i);
    EXPECT_TRUE(out[i].ran());
    EXPECT_EQ(out[i].value("flat"), static_cast<double>(i));
    EXPECT_EQ(out[i].attempts, 1);
  }
  EXPECT_EQ(out.at({1, 2}).cell.id(), "a1/b2");
}

TEST(RunnerTest, JobsOneAndJobsManyProduceIdenticalCells) {
  auto fn = [](const Cell& cell, const metrics::RunConfig&) {
    return synthetic(cell);
  };
  const Outcomes seq = ExperimentRunner(small_grid(), quiet(1)).run(fn);
  const Outcomes par = ExperimentRunner(small_grid(), quiet(4)).run(fn);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].cell.id(), par[i].cell.id());
    EXPECT_EQ(seq[i].run.exec_time, par[i].run.exec_time);
    EXPECT_EQ(seq[i].extra, par[i].extra);
    EXPECT_EQ(seq[i].attempts, par[i].attempts);
  }
}

TEST(RunnerTest, FilterSkipsNonMatchingCellsWithoutRunningThem) {
  RunnerOptions o = quiet();
  o.filter = "a1/";
  std::atomic<int> calls{0};
  const Outcomes out = ExperimentRunner(small_grid(), o)
                           .run([&](const Cell& cell,
                                    const metrics::RunConfig&) {
                             ++calls;
                             return synthetic(cell);
                           });
  EXPECT_EQ(calls.load(), 3);
  ASSERT_EQ(out.size(), 6u);
  for (const CellOutcome& c : out) {
    const bool matches = c.cell.id().find("a1/") != std::string::npos;
    EXPECT_EQ(c.skipped, !matches);
    EXPECT_EQ(c.ran(), matches);
    EXPECT_EQ(c.attempts, matches ? 1 : 0);
  }
}

TEST(RunnerTest, NotApplicableCellsAreNeverRetried) {
  std::atomic<int> calls{0};
  const Outcomes out =
      ExperimentRunner(small_grid(), quiet())
          .run([&](const Cell& cell, const metrics::RunConfig&) {
            ++calls;
            // a0×b1 is a meaningless configuration.
            if (cell.at(0) == 0 && cell.at(1) == 1) return CellRun::na();
            return synthetic(cell);
          });
  EXPECT_EQ(calls.load(), 6);  // one call per cell, no retries
  EXPECT_TRUE(out.at({0, 1}).not_applicable);
  EXPECT_FALSE(out.at({0, 1}).ran());
  EXPECT_EQ(out.at({0, 1}).attempts, 1);
  EXPECT_TRUE(out.at({0, 0}).ran());
}

TEST(RunnerTest, DeadlineMissRetriesWithStretchedDeadline) {
  metrics::RunConfig base;
  base.deadline = 1000;
  Sweep s("retry");
  s.base(base).axis("cell", {"only"});
  RunnerOptions o = quiet();
  o.max_attempts = 3;
  o.deadline_factor = 4.0;
  std::vector<SimTime> seen_deadlines;
  const Outcomes out = ExperimentRunner(s, o).run(
      [&](const Cell&, const metrics::RunConfig& cfg) {
        seen_deadlines.push_back(cfg.deadline);
        CellRun r;
        // The workload needs 3000 simulated ns: misses the first deadline,
        // completes once the runner stretches it.
        r.run.completed = cfg.deadline >= 3000;
        r.run.exec_time = r.run.completed ? 3000 : cfg.deadline;
        return r;
      });
  ASSERT_EQ(seen_deadlines.size(), 2u);
  EXPECT_EQ(seen_deadlines[0], 1000u);
  EXPECT_EQ(seen_deadlines[1], 4000u);
  const CellOutcome& c = out.at({0});
  EXPECT_TRUE(c.run.completed);
  EXPECT_EQ(c.attempts, 2);
  EXPECT_EQ(c.final_deadline, 4000u);
}

TEST(RunnerTest, RetriesAreBoundedByMaxAttempts) {
  metrics::RunConfig base;
  base.deadline = 1000;
  Sweep s("hopeless");
  s.base(base).axis("cell", {"only"});
  RunnerOptions o = quiet();
  o.max_attempts = 3;
  o.deadline_factor = 4.0;
  std::atomic<int> calls{0};
  const Outcomes out = ExperimentRunner(s, o).run(
      [&](const Cell&, const metrics::RunConfig& cfg) {
        ++calls;
        CellRun r;
        r.run.completed = false;  // never finishes
        r.run.exec_time = cfg.deadline;
        return r;
      });
  EXPECT_EQ(calls.load(), 3);
  const CellOutcome& c = out.at({0});
  EXPECT_FALSE(c.run.completed);
  EXPECT_EQ(c.attempts, 3);
  EXPECT_EQ(c.final_deadline, 16000u);  // stretched twice: 1000 → 4000 → 16000
}

TEST(RunnerTest, ListPrintsFilteredCellIds) {
  RunnerOptions o = quiet();
  o.filter = "b2";
  std::ostringstream os;
  ExperimentRunner(small_grid(), o).list(os);
  EXPECT_EQ(os.str(), "a0/b2\na1/b2\n");
}

}  // namespace
}  // namespace eo
