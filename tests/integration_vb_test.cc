// Integration tests of virtual blocking: semantics preserved, wakeup path
// cheap, load stabilized, and the paper's headline behaviours.
#include <gtest/gtest.h>

#include "metrics/experiment.h"
#include "workloads/microbench.h"
#include "workloads/suite.h"

namespace eo {
namespace {

using metrics::RunConfig;
using metrics::run_experiment;

TEST(VbIntegration, BarrierSemanticsIdenticalUnderVb) {
  // The same barrier microbenchmark completes with the same number of
  // voluntary synchronizations whether blocking is real or virtual.
  for (const bool vb : {false, true}) {
    RunConfig rc;
    rc.cpus = 4;
    rc.sockets = 1;
    rc.features = vb ? core::Features::optimized() : core::Features::vanilla();
    const auto r = run_experiment(rc, [&](kern::Kernel& k) {
      workloads::spawn_sync_micro(k, 16, workloads::SyncPrimitive::kBarrier,
                                  50);
    });
    ASSERT_TRUE(r.completed) << (vb ? "vb" : "vanilla");
  }
}

TEST(VbIntegration, VbParksInsteadOfSleepingWhenOversubscribed) {
  RunConfig rc;
  rc.cpus = 2;
  rc.sockets = 1;
  rc.features = core::Features::optimized();
  const auto r = run_experiment(rc, [&](kern::Kernel& k) {
    workloads::spawn_sync_micro(k, 16, workloads::SyncPrimitive::kBarrier, 40);
  });
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.stats.vb_parks, 100u);
  // Most waits park virtually; only the below-threshold early waiters sleep.
  EXPECT_GT(r.stats.vb_parks, r.stats.futex_sleeps);
}

TEST(VbIntegration, AutoDisableFallsBackWhenUndersubscribed) {
  RunConfig rc;
  rc.cpus = 8;
  rc.sockets = 1;
  rc.features = core::Features::optimized();
  const auto r = run_experiment(rc, [&](kern::Kernel& k) {
    // 4 threads on 8 cores: never oversubscribed, VB should stay off.
    workloads::spawn_sync_micro(k, 4, workloads::SyncPrimitive::kBarrier, 40);
  });
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.stats.vb_parks, 0u);
  EXPECT_GT(r.stats.futex_sleeps, 0u);
}

TEST(VbIntegration, GroupWakeupFasterWithVb) {
  auto run = [&](bool vb) {
    RunConfig rc;
    rc.cpus = 1;
    rc.sockets = 1;
    rc.features = vb ? core::Features::optimized() : core::Features::vanilla();
    rc.deadline = 120_s;
    return run_experiment(rc, [&](kern::Kernel& k) {
      workloads::spawn_sync_micro(k, 16, workloads::SyncPrimitive::kCond, 400);
    });
  };
  const auto vanilla = run(false);
  const auto vb = run(true);
  ASSERT_TRUE(vanilla.completed);
  ASSERT_TRUE(vb.completed);
  // Figure 10(a): clear speedup for condition-variable broadcasts.
  EXPECT_LT(vb.exec_time, vanilla.exec_time * 0.85);
}

TEST(VbIntegration, MigrationsCollapseUnderVb) {
  const auto& spec = workloads::find_benchmark("streamcluster");
  auto run = [&](bool vb) {
    RunConfig rc;
    rc.cpus = 8;
    rc.sockets = 2;
    rc.features = vb ? core::Features::optimized() : core::Features::vanilla();
    rc.ref_footprint = spec.ref_footprint();
    rc.deadline = 300_s;
    return run_experiment(rc, [&](kern::Kernel& k) {
      workloads::spawn_benchmark(k, spec, 32, 3, 0.1);
    });
  };
  const auto vanilla = run(false);
  const auto vb = run(true);
  ASSERT_TRUE(vanilla.completed);
  ASSERT_TRUE(vb.completed);
  // Table 1's signature: VB eliminates most migrations and the utilization
  // loss of the vanilla wakeup path.
  EXPECT_LT(vb.stats.total_migrations(),
            std::max<std::uint64_t>(1, vanilla.stats.total_migrations() / 2));
  EXPECT_GT(vb.utilization_percent, vanilla.utilization_percent);
  // And execution time does not regress.
  EXPECT_LE(vb.exec_time, vanilla.exec_time * 11 / 10);
}

TEST(VbIntegration, NoOverheadWhenNotOversubscribed) {
  // Paper: for unaffected benchmarks VB introduces no more than ~0.5%
  // overhead. Compare 8T on 8 cores with and without VB.
  const auto& spec = workloads::find_benchmark("barnes");
  auto run = [&](bool vb) {
    RunConfig rc;
    rc.cpus = 8;
    rc.sockets = 2;
    rc.features = vb ? core::Features::optimized() : core::Features::vanilla();
    rc.ref_footprint = spec.ref_footprint();
    return run_experiment(rc, [&](kern::Kernel& k) {
      workloads::spawn_benchmark(k, spec, 8, 3, 0.1);
    });
  };
  const auto vanilla = run(false);
  const auto vb = run(true);
  ASSERT_TRUE(vanilla.completed && vb.completed);
  EXPECT_NEAR(static_cast<double>(vb.exec_time),
              static_cast<double>(vanilla.exec_time),
              static_cast<double>(vanilla.exec_time) * 0.02);
}

}  // namespace
}  // namespace eo
