// Footprint contract for the million-connection scenario: the per-connection
// record is 16 bytes, so a million resident connections cost 16 MB; the
// per-request slot is 24 bytes (arrival + dequeue timestamps for latency
// attribution, plus the packed connection/op word), so the request slab
// never exceeds max_pending * 24 bytes per host. The static_asserts in
// traffic/fleet.h catch growth at compile time; these tests pin the numbers
// in the ctest report and check the derived slab arithmetic.
#include "traffic/fleet.h"

#include <gtest/gtest.h>

namespace eo::traffic {
namespace {

TEST(TrafficSizeof, ConnectionRecordIs16Bytes) {
  EXPECT_EQ(sizeof(Connection), 16u);
  EXPECT_LE(alignof(Connection), 4u);
}

TEST(TrafficSizeof, PendingRequestSlotIs24Bytes) {
  EXPECT_EQ(sizeof(PendingRequest), 24u);
  EXPECT_LE(alignof(PendingRequest), 8u);
}

TEST(TrafficSizeof, DefaultFleetIsOneMillionConnectionsIn16MB) {
  const FleetConfig fc;  // 32 hosts x 32768 connections
  ConnectionFleet fleet(fc);
  EXPECT_EQ(fleet.total_connections(), 1048576u);
  EXPECT_EQ(fleet.total_connections() * sizeof(Connection),
            std::size_t{16} << 20);
}

}  // namespace
}  // namespace eo::traffic
