// InvariantWatchdog: corrupted frames must fire, clean runs must not.
#include <gtest/gtest.h>

#include "metrics/experiment.h"
#include "obs/sampler.h"
#include "obs/watchdog.h"
#include "workloads/suite.h"

namespace eo::obs {
namespace {

// One internally consistent frame: 2 cores, 3 runnable (1 parked), 1 asleep.
struct Frame {
  CoreSample cores[2];
  GlobalSample g;

  Frame() {
    cores[0].rq_depth = 2;
    cores[0].schedulable = 1;
    cores[0].vb_parked = 1;
    cores[0].running = 1;
    cores[0].online = 1;
    cores[1].rq_depth = 1;
    cores[1].schedulable = 1;
    cores[1].running = 1;
    cores[1].online = 1;
    g.live_tasks = 4;
    g.online_cores = 2;
    g.tasks_runnable = 3;
    g.tasks_sleeping = 1;
    g.context_switches = 10;
    g.wakeups = 5;
    g.migrations = 2;
    g.vb_parks = 3;
    g.vb_unparks = 2;
  }
};

TEST(Watchdog, CleanFramesRecordNothing) {
  InvariantWatchdog wd;
  Frame f;
  for (int i = 0; i < 5; ++i) {
    f.g.context_switches += 2;
    EXPECT_EQ(wd.check(i * 100, f.cores, 2, f.g), 0);
  }
  EXPECT_EQ(wd.checks(), 5u);
  EXPECT_EQ(wd.violations(), 0u);
  EXPECT_TRUE(wd.records().empty());
}

TEST(Watchdog, RqDepthSumMismatchFires) {
  InvariantWatchdog wd;
  Frame f;
  f.g.tasks_runnable = 7;  // truth says 7, cores sum to 3
  f.g.live_tasks = 8;      // keep the live split consistent
  EXPECT_GT(wd.check(0, f.cores, 2, f.g), 0);
  ASSERT_FALSE(wd.records().empty());
  EXPECT_EQ(wd.records()[0].invariant, "rq_depth_sum");
}

TEST(Watchdog, SchedulableSplitFires) {
  InvariantWatchdog wd;
  Frame f;
  f.cores[0].schedulable = 2;  // rq_depth 2 - parked 1 != 2
  EXPECT_GT(wd.check(0, f.cores, 2, f.g), 0);
  EXPECT_EQ(wd.records()[0].invariant, "schedulable_split");
}

TEST(Watchdog, VbParkedBoundFires) {
  InvariantWatchdog wd;
  Frame f;
  f.cores[1].vb_parked = 5;  // > rq_depth 1
  EXPECT_GT(wd.check(0, f.cores, 2, f.g), 0);
  EXPECT_EQ(wd.records()[0].invariant, "vb_parked_bound");
}

TEST(Watchdog, BwdSkippedBoundFires) {
  InvariantWatchdog wd;
  Frame f;
  f.cores[0].bwd_skipped = 2;  // only 1 queued entity besides the runner
  EXPECT_GT(wd.check(0, f.cores, 2, f.g), 0);
  EXPECT_EQ(wd.records()[0].invariant, "bwd_skipped_bound");
}

TEST(Watchdog, OfflineCoreWithWorkFires) {
  InvariantWatchdog wd;
  Frame f;
  f.cores[1].online = 0;
  EXPECT_GT(wd.check(0, f.cores, 2, f.g), 0);
  EXPECT_EQ(wd.records()[0].invariant, "offline_core_empty");
}

TEST(Watchdog, LiveTaskSplitFires) {
  InvariantWatchdog wd;
  Frame f;
  f.g.tasks_sleeping = 9;
  EXPECT_GT(wd.check(0, f.cores, 2, f.g), 0);
  EXPECT_EQ(wd.records()[0].invariant, "live_task_split");
}

TEST(Watchdog, VbParkPairingFires) {
  InvariantWatchdog wd;
  Frame f;
  f.g.vb_unparks = f.g.vb_parks + 1;
  EXPECT_GT(wd.check(0, f.cores, 2, f.g), 0);
  EXPECT_EQ(wd.records()[0].invariant, "vb_park_pairing");
}

TEST(Watchdog, CorruptedCounterRegressionFires) {
  InvariantWatchdog wd;
  Frame f;
  EXPECT_EQ(wd.check(0, f.cores, 2, f.g), 0);
  f.g.context_switches -= 1;  // monotonic counter regresses
  EXPECT_GT(wd.check(100, f.cores, 2, f.g), 0);
  ASSERT_FALSE(wd.records().empty());
  EXPECT_EQ(wd.records()[0].invariant, "counter_monotonic");
  EXPECT_NE(wd.records()[0].detail.find("context_switches"),
            std::string::npos);
}

TEST(Watchdog, RegistryCounterRegressionFires) {
  MetricRegistry reg;
  std::uint64_t cell = 100;
  reg.register_counter("test.mono", &cell);
  InvariantWatchdog wd(&reg);
  Frame f;
  EXPECT_EQ(wd.check(0, f.cores, 2, f.g), 0);
  cell = 50;  // corrupt: regress a registered counter
  EXPECT_GT(wd.check(100, f.cores, 2, f.g), 0);
  EXPECT_EQ(wd.records()[0].invariant, "counter_monotonic");
  EXPECT_NE(wd.records()[0].detail.find("test.mono"), std::string::npos);
}

TEST(Watchdog, RecordingCapsButCountingContinues) {
  InvariantWatchdog wd;
  Frame f;
  f.g.tasks_sleeping = 42;  // live_task_split fires every frame
  for (std::size_t i = 0; i < InvariantWatchdog::kMaxRecorded + 10; ++i) {
    wd.check(static_cast<SimTime>(i), f.cores, 2, f.g);
  }
  EXPECT_EQ(wd.records().size(), InvariantWatchdog::kMaxRecorded);
  EXPECT_EQ(wd.violations(), InvariantWatchdog::kMaxRecorded + 10);
}

TEST(Watchdog, ClearResets) {
  InvariantWatchdog wd;
  Frame f;
  f.g.tasks_sleeping = 42;
  wd.check(0, f.cores, 2, f.g);
  EXPECT_GT(wd.violations(), 0u);
  wd.clear();
  EXPECT_EQ(wd.checks(), 0u);
  EXPECT_EQ(wd.violations(), 0u);
  EXPECT_TRUE(wd.records().empty());
}

// End-to-end: a fig09-style oversubscribed run (VB parks, futex sleeps, BWD
// deschedules, migrations all active) sampled live must cross-check clean.
TEST(Watchdog, CleanOnRealOversubscribedRun) {
  metrics::RunConfig rc;
  rc.cpus = 8;
  rc.sockets = 2;
  rc.features = core::Features::optimized();
  rc.deadline = 600_s;
  rc.metrics.enabled = true;
  rc.metrics.interval = 200_us;
  const auto& spec = workloads::find_benchmark("cg");
  rc.ref_footprint = spec.ref_footprint();
  const auto r = metrics::run_experiment(rc, [&](kern::Kernel& k) {
    workloads::spawn_benchmark(k, spec, 32, /*seed=*/7, /*scale=*/0.05);
  });
  ASSERT_TRUE(r.completed);
  ASSERT_NE(r.metrics, nullptr);
  EXPECT_GT(r.metrics->watchdog_checks, 10u);
  EXPECT_EQ(r.metrics->watchdog_violations, 0u);
  EXPECT_TRUE(r.metrics->violation_records.empty());
  // The run actually exercised VB: parked counts must appear in the series.
  EXPECT_GT(r.metrics->ticks, 0u);
}

}  // namespace
}  // namespace eo::obs
