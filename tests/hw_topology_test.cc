#include "hw/topology.h"

#include <gtest/gtest.h>

namespace eo::hw {
namespace {

TEST(Topology, CoresSingleSocket) {
  const auto t = Topology::make_cores(8, 1);
  EXPECT_EQ(t.n_cores(), 8);
  EXPECT_EQ(t.n_sockets(), 1);
  EXPECT_FALSE(t.smt_enabled());
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(t.socket_of(i), 0);
    EXPECT_EQ(t.smt_sibling(i), -1);
  }
}

TEST(Topology, CoresTwoSockets) {
  const auto t = Topology::make_cores(8, 2);
  EXPECT_EQ(t.socket_of(0), 0);
  EXPECT_EQ(t.socket_of(3), 0);
  EXPECT_EQ(t.socket_of(4), 1);
  EXPECT_EQ(t.socket_of(7), 1);
  EXPECT_TRUE(t.same_socket(0, 3));
  EXPECT_FALSE(t.same_socket(3, 4));
}

TEST(Topology, SmtSiblings) {
  const auto t = Topology::make_smt(8, 2);
  EXPECT_TRUE(t.smt_enabled());
  EXPECT_EQ(t.smt_sibling(0), 1);
  EXPECT_EQ(t.smt_sibling(1), 0);
  EXPECT_EQ(t.smt_sibling(6), 7);
  // Siblings share a socket.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(t.socket_of(i), t.socket_of(t.smt_sibling(i)));
  }
  // 4 physical cores, 2 per socket.
  EXPECT_EQ(t.socket_of(0), 0);
  EXPECT_EQ(t.socket_of(3), 0);
  EXPECT_EQ(t.socket_of(4), 1);
}

TEST(Topology, CoresInSocket) {
  const auto t = Topology::make_cores(8, 2);
  const auto s0 = t.cores_in_socket(0);
  const auto s1 = t.cores_in_socket(1);
  EXPECT_EQ(s0.size(), 4u);
  EXPECT_EQ(s1.size(), 4u);
}

TEST(Topology, DescribeMentionsShape) {
  const auto t = Topology::make_smt(8, 2);
  const auto s = t.describe();
  EXPECT_NE(s.find("hyper-threads"), std::string::npos);
  EXPECT_NE(s.find("2 socket"), std::string::npos);
}

}  // namespace
}  // namespace eo::hw
