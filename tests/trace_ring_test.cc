// Unit tests for the tracing core: ring wraparound/drop accounting, the
// disabled-tracer fast path, and deterministic snapshot merging. These drive
// Tracer::emit directly, so they hold in EO_TRACE=OFF builds too.
#include <gtest/gtest.h>

#include "sim/engine.h"
#include "trace/trace.h"

namespace eo::trace {
namespace {

TraceEvent make_event(SimTime ts, std::uint64_t arg0) {
  TraceEvent e;
  e.ts = ts;
  e.arg0 = arg0;
  return e;
}

TEST(TraceRing, FillsWithoutDroppingUpToCapacity) {
  TraceRing r(4);
  for (std::uint64_t i = 0; i < 4; ++i) r.push(make_event(i, i));
  EXPECT_EQ(r.size(), 4u);
  EXPECT_EQ(r.dropped(), 0u);
  std::vector<TraceEvent> out;
  r.copy_ordered(&out);
  ASSERT_EQ(out.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(out[i].arg0, i);
}

TEST(TraceRing, WrapsOverwritingOldestAndCountsDropped) {
  TraceRing r(4);
  for (std::uint64_t i = 0; i < 10; ++i) r.push(make_event(i, i));
  EXPECT_EQ(r.size(), 4u);
  EXPECT_EQ(r.dropped(), 6u);
  std::vector<TraceEvent> out;
  r.copy_ordered(&out);
  ASSERT_EQ(out.size(), 4u);
  // The four newest survive, oldest-first.
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(out[i].arg0, 6 + i);
}

TEST(TraceRing, ClearResets) {
  TraceRing r(2);
  for (std::uint64_t i = 0; i < 5; ++i) r.push(make_event(i, i));
  r.clear();
  EXPECT_EQ(r.size(), 0u);
  EXPECT_EQ(r.dropped(), 0u);
  std::vector<TraceEvent> out;
  r.copy_ordered(&out);
  EXPECT_TRUE(out.empty());
}

TEST(Tracer, DisabledEmitsNothing) {
  sim::Engine e;
  TraceConfig cfg;  // enabled = false
  Tracer t(&e, 2, cfg);
  for (int i = 0; i < 100; ++i) {
    t.emit(i % 2, EventKind::kSwitchIn, i);
  }
  EXPECT_EQ(t.total_events(), 0u);
  EXPECT_EQ(t.total_dropped(), 0u);
  EXPECT_TRUE(t.snapshot().events.empty());
}

TEST(Tracer, EnableCapturesAndDisableStops) {
  sim::Engine e;
  TraceConfig cfg;
  Tracer t(&e, 2, cfg);
  t.emit(0, EventKind::kSwitchIn, 1);  // before enable: dropped on the floor
  t.set_enabled(true);
  t.emit(0, EventKind::kSwitchIn, 2);
  t.set_enabled(false);
  t.emit(0, EventKind::kSwitchIn, 3);  // after disable: ignored
  const Trace tr = t.snapshot();
  ASSERT_EQ(tr.events.size(), 1u);
  EXPECT_EQ(tr.events[0].tid, 2);
}

TEST(Tracer, SnapshotMergesTimeOrderedWithRingTieBreak) {
  sim::Engine e;
  TraceConfig cfg;
  cfg.enabled = true;
  Tracer t(&e, 3, cfg);
  // now() == 0 for all: ties must come out in ring (core) order even though
  // emission interleaves the cores.
  t.emit(2, EventKind::kSwitchIn, 30);
  t.emit(0, EventKind::kSwitchIn, 10);
  t.emit(1, EventKind::kSwitchIn, 20);
  e.schedule_after(5, [&] {
    t.emit(1, EventKind::kSwitchOut, 21);
    t.emit(0, EventKind::kSwitchOut, 11);
  });
  e.run_until(10);
  const Trace tr = t.snapshot();
  ASSERT_EQ(tr.events.size(), 5u);
  EXPECT_EQ(tr.events[0].tid, 10);
  EXPECT_EQ(tr.events[1].tid, 20);
  EXPECT_EQ(tr.events[2].tid, 30);
  EXPECT_EQ(tr.events[3].tid, 11);  // ts=5, ring 0 before ring 1
  EXPECT_EQ(tr.events[4].tid, 21);
  EXPECT_EQ(tr.events[3].ts, 5);
}

TEST(Tracer, AmbientRingCollectsCorelessEvents) {
  sim::Engine e;
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.ring_capacity = 8;
  Tracer t(&e, 2, cfg);
  t.emit(-1, EventKind::kEpollPost, 0, 7);
  const Trace tr = t.snapshot();
  ASSERT_EQ(tr.events.size(), 1u);
  EXPECT_EQ(tr.events[0].core, -1);
  EXPECT_EQ(tr.events[0].arg0, 7u);
}

TEST(Tracer, DroppedAggregatesAcrossRings) {
  sim::Engine e;
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.ring_capacity = 2;
  Tracer t(&e, 2, cfg);
  for (int i = 0; i < 5; ++i) t.emit(0, EventKind::kSwitchIn, i);
  for (int i = 0; i < 3; ++i) t.emit(1, EventKind::kSwitchIn, i);
  EXPECT_EQ(t.total_dropped(), 3u + 1u);
  EXPECT_EQ(t.snapshot().dropped, 4u);
  EXPECT_EQ(t.total_events(), 4u);
}

}  // namespace
}  // namespace eo::trace
