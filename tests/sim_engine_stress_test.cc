// Engine stress/property tests: randomized schedule/cancel interleavings
// checked against a reference model, id-reuse-after-generation-bump safety,
// slab recycling bounds, and order-equivalence of the periodic path with the
// self-re-arming pattern it replaced.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "sim/engine.h"

namespace eo::sim {
namespace {

// --- randomized model check -------------------------------------------------
//
// Schedules, cancels, and run_until() calls are drawn at random from outside
// the engine; a flat reference model predicts the exact fire sequence
// (equal-timestamp ties break by insertion order) plus the has_pending /
// events_fired counters after every run.

struct RefEvent {
  SimTime when = 0;
  bool canceled = false;
  bool fired = false;
};

class ModelStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModelStress, MatchesReferenceModel) {
  Rng rng(GetParam());
  Engine e;
  std::vector<RefEvent> refs;
  std::vector<EventId> ids;
  std::vector<std::size_t> log;  // indices of fired refs, in fire order
  std::vector<std::size_t> expected;

  for (int step = 0; step < 4000; ++step) {
    const std::uint64_t op = rng.next_below(100);
    if (op < 55) {
      // Schedule, with a deliberately coarse time grid so timestamp ties are
      // common and the insertion-order tie-break is exercised hard.
      const SimTime when = e.now() + static_cast<SimTime>(rng.next_below(40));
      const std::size_t idx = refs.size();
      refs.push_back(RefEvent{when});
      ids.push_back(e.schedule_at(when, [&log, idx] { log.push_back(idx); }));
    } else if (op < 80) {
      if (!ids.empty()) {
        // Cancel a random id: pending (real cancel), fired, or already
        // canceled (both must be no-ops, even if the slot has since been
        // recycled for a newer event — the generation tag guards reuse).
        const std::size_t j = rng.next_below(ids.size());
        e.cancel(ids[j]);
        if (!refs[j].fired) refs[j].canceled = true;
      }
    } else if (op < 85) {
      e.cancel(kInvalidEvent);
      e.cancel(0xdeadbeefdeadbeefull);  // never-issued id
    } else {
      const SimTime deadline =
          e.now() + static_cast<SimTime>(rng.next_below(60));
      e.run_until(deadline);
      for (std::size_t i = 0; i < refs.size(); ++i) {
        if (!refs[i].canceled && !refs[i].fired && refs[i].when <= deadline) {
          refs[i].fired = true;
        }
      }
      std::uint64_t live = 0;
      for (const RefEvent& r : refs) {
        if (!r.canceled && !r.fired) ++live;
      }
      ASSERT_EQ(e.has_pending(), live > 0) << "after step " << step;
    }
  }
  e.run();  // drain the stragglers
  for (RefEvent& r : refs) {
    if (!r.canceled && !r.fired) r.fired = true;
  }

  // Expected order: by (when, insertion index) over never-canceled events.
  for (std::size_t i = 0; i < refs.size(); ++i) {
    if (refs[i].fired) expected.push_back(i);
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [&refs](std::size_t a, std::size_t b) {
                     return refs[a].when < refs[b].when;
                   });
  EXPECT_EQ(log, expected);
  EXPECT_EQ(e.events_fired(), log.size());
  EXPECT_FALSE(e.has_pending());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelStress,
                         ::testing::Values(1u, 2u, 3u, 0xc0ffeeu, 77u));

// --- id reuse / generation safety -------------------------------------------

TEST(EngineStress, StaleIdsNeverTouchRecycledSlots) {
  Engine e;
  int fired = 0;
  std::vector<EventId> stale;
  // Churn one logical event through the same slot many times, keeping every
  // dead id around and re-canceling all of them each round.
  for (int round = 0; round < 200; ++round) {
    const EventId id = e.schedule_after(1, [&fired] { ++fired; });
    for (const EventId s : stale) e.cancel(s);  // must all be no-ops
    EXPECT_TRUE(e.has_pending());
    if (round % 2 == 0) {
      e.run_until(e.now() + 1);
      stale.push_back(id);  // fired id
    } else {
      e.cancel(id);
      stale.push_back(id);  // canceled id
    }
  }
  EXPECT_EQ(fired, 100);
  EXPECT_FALSE(e.has_pending());
  // The whole churn recycled a single slot's worth of slab.
  EXPECT_LE(e.slab_slots(), 1u);
}

TEST(EngineStress, SlabIsBoundedByPeakPendingNotThroughput) {
  Engine e;
  std::uint64_t fired = 0;
  std::uint64_t* sink = &fired;
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < 10; ++i) {
      e.schedule_after(i + 1, [sink] { ++*sink; });
    }
    e.run();
  }
  EXPECT_EQ(fired, 10000u);
  EXPECT_LE(e.slab_slots(), 10u);
  EXPECT_EQ(e.free_slots(), e.slab_slots());
}

// --- periodic path: order-equivalence with self-re-arming --------------------
//
// The periodic event takes its next occurrence's sequence number at fire
// time, immediately before the callback — the same point a self-re-arming
// callback schedules its successor. Run both patterns against an identical
// stream of interfering one-shots (many at exactly the timer's fire times)
// and require identical logs.

void run_interference(Engine& e, std::vector<int>& log) {
  // One-shots colliding with timer fires at t = 100, 200, ..., scheduled
  // both before the timer exists and from inside callbacks.
  for (int k = 1; k <= 5; ++k) {
    e.schedule_at(100 * k, [&e, &log, k] {
      log.push_back(1000 + k);
      e.schedule_at(e.now(), [&log, k] { log.push_back(2000 + k); });
    });
  }
  e.run_until(1000);
}

TEST(EngineStress, PeriodicPathIsOrderIdenticalToSelfRearming) {
  std::vector<int> periodic_log;
  std::vector<int> rearm_log;
  {
    Engine e;
    e.schedule_periodic(100, 100, [&] { periodic_log.push_back(7); });
    run_interference(e, periodic_log);
  }
  {
    Engine e;
    // The old RepeatingTimer pattern: re-arm first, then the body.
    struct Rearm {
      Engine* e;
      std::vector<int>* log;
      void fire() {
        e->schedule_after(100, [this] { fire(); });
        log->push_back(7);
      }
    } timer{&e, &rearm_log};
    e.schedule_after(100, [&timer] { timer.fire(); });
    run_interference(e, rearm_log);
  }
  EXPECT_EQ(periodic_log, rearm_log);
  ASSERT_FALSE(periodic_log.empty());
  EXPECT_EQ(std::count(periodic_log.begin(), periodic_log.end(), 7), 10);
}

TEST(EngineStress, ManyStaggeredPeriodicsKeepExactPhase) {
  Engine e;
  std::vector<std::vector<SimTime>> fires(8);
  std::vector<EventId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(e.schedule_periodic(10 + i, 100, [&e, &fires, i] {
      fires[static_cast<size_t>(i)].push_back(e.now());
    }));
  }
  e.run_until(1000);
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(fires[static_cast<size_t>(i)].size(), 10u) << "timer " << i;
    for (int k = 0; k < 10; ++k) {
      EXPECT_EQ(fires[static_cast<size_t>(i)][static_cast<size_t>(k)],
                10 + i + 100 * static_cast<SimTime>(k));
    }
  }
  for (const EventId id : ids) e.cancel(id);
  EXPECT_FALSE(e.has_pending());
  e.run_until(2000);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(fires[static_cast<size_t>(i)].size(), 10u);
  }
}

}  // namespace
}  // namespace eo::sim
