// Property: a simulation is a pure function of its configuration — identical
// seeds give bit-identical schedules and metrics; different seeds perturb
// stochastic workloads but not correctness.
#include <gtest/gtest.h>

#include <cstdio>

#include "exp/result.h"
#include "exp/runner.h"
#include "exp/sweep.h"
#include "metrics/experiment.h"
#include "obs/export.h"
#include "obs/fleet_agg.h"
#include "obs/progress.h"
#include "trace/export.h"
#include "traffic/fleet.h"
#include "workloads/memcached.h"
#include "workloads/mutilate.h"
#include "workloads/suite.h"

namespace eo {
namespace {

using metrics::RunConfig;
using metrics::run_experiment;

class DeterminismTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DeterminismTest, IdenticalSeedIdenticalRun) {
  const auto& spec = workloads::find_benchmark(GetParam());
  auto run = [&](std::uint64_t seed) {
    RunConfig rc;
    rc.cpus = 4;
    rc.sockets = 2;
    rc.seed = seed;
    rc.features = core::Features::optimized();
    rc.ref_footprint = spec.ref_footprint();
    rc.deadline = 300_s;
    return run_experiment(rc, [&](kern::Kernel& k) {
      workloads::spawn_benchmark(k, spec, 16, 42, 0.05);
    });
  };
  const auto a = run(7);
  const auto b = run(7);
  ASSERT_TRUE(a.completed && b.completed);
  EXPECT_EQ(a.exec_time, b.exec_time);
  EXPECT_EQ(a.stats.context_switches, b.stats.context_switches);
  EXPECT_EQ(a.stats.total_migrations(), b.stats.total_migrations());
  EXPECT_EQ(a.stats.vb_parks, b.stats.vb_parks);
  EXPECT_EQ(a.bwd.windows, b.bwd.windows);
  EXPECT_EQ(a.bwd.fp, b.bwd.fp);
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, DeterminismTest,
                         ::testing::Values("ocean", "streamcluster", "lu",
                                           "canneal"));

TEST(Determinism, MemcachedRunsReproduce) {
  auto run = [] {
    RunConfig rc;
    rc.cpus = 4;
    rc.sockets = 1;
    rc.features = core::Features::optimized();
    auto kc = metrics::make_kernel_config(rc);
    kern::Kernel k(kc);
    workloads::MemcachedConfig mc;
    mc.n_workers = 8;
    workloads::MemcachedSim server(k, mc);
    server.start();
    workloads::MutilateConfig cc;
    cc.rate_ops_per_sec = 200000;
    cc.until = 100_ms;
    cc.seed = 5;
    workloads::MutilateClient client(server, cc);
    client.start();
    k.run_until(150_ms);
    const auto done = server.completed();
    const auto p99 = server.latencies().p99_us();
    server.stop();
    k.run_to_exit(k.now() + 1_s);
    return std::make_pair(done, p99);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

#if defined(EO_TRACE_ENABLED)
// The tracing property from src/trace/trace.h: a trace is a pure function of
// the simulation, so identical seeds export byte-identical files.
TEST(Determinism, IdenticalSeedByteIdenticalTrace) {
  const auto& spec = workloads::find_benchmark("ocean");
  auto render = [&] {
    RunConfig rc;
    rc.cpus = 4;
    rc.sockets = 2;
    rc.seed = 7;
    rc.features = core::Features::optimized();
    rc.ref_footprint = spec.ref_footprint();
    rc.deadline = 300_s;
    rc.trace.enabled = true;
    rc.trace.ring_capacity = 1u << 20;
    const auto r = run_experiment(rc, [&](kern::Kernel& k) {
      workloads::spawn_benchmark(k, spec, 16, 42, 0.05);
    });
    EXPECT_TRUE(r.trace != nullptr);
    EXPECT_FALSE(r.trace->events.empty());
    return std::make_pair(trace::render(*r.trace, "json"),
                          trace::render(*r.trace, "csv"));
  };
  const auto a = render();
  const auto b = render();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}
#endif  // EO_TRACE_ENABLED

// The sweep-runner property behind `--json`: a full bench document is a pure
// function of (sweep, seed), so two same-seed runs render byte-identical JSON
// (modulo the meta block, pinned here) regardless of the host-thread count.
TEST(Determinism, SameSeedSweepRendersByteIdenticalJson) {
  auto render = [](std::size_t jobs) {
    const auto& spec = workloads::find_benchmark("ocean");
    metrics::RunConfig base;
    base.cpus = 4;
    base.sockets = 2;
    base.seed = 7;
    base.ref_footprint = spec.ref_footprint();
    base.deadline = 300_s;
    exp::Sweep sweep("determinism");
    sweep.base(base).axis("kernel", {"vanilla", "optimized"},
                          [](metrics::RunConfig& rc, std::size_t i) {
                            rc.features = i == 0 ? core::Features::vanilla()
                                                 : core::Features::optimized();
                          });
    exp::RunnerOptions opts;
    opts.jobs = jobs;
    opts.progress = false;
    const exp::Outcomes out =
        exp::ExperimentRunner(sweep, opts)
            .run([&](const exp::Cell&, const metrics::RunConfig& cfg) {
              return run_experiment(cfg, [&](kern::Kernel& k) {
                workloads::spawn_benchmark(k, spec, 16, 42, 0.05);
              });
            });
    exp::ResultDoc doc("prop_determinism", 0.05, 7);
    doc.set_meta("git_rev", "pinned");  // exclude the volatile meta block
    doc.add_sweep(sweep, out);
    return doc.render();
  };
  const std::string a = render(1);
  const std::string b = render(1);
  const std::string c = render(2);
  EXPECT_EQ(a, b);  // rerun with the same seed
  EXPECT_EQ(a, c);  // --jobs must not change the cells
  std::string err;
  EXPECT_TRUE(exp::validate_result_json(a, &err)) << err;
}

// The telemetry property from src/obs/: the eo-metrics document is a pure
// function of the simulation, so identical seeds export byte-identical JSON.
TEST(Determinism, IdenticalSeedByteIdenticalMetricsDoc) {
  const auto& spec = workloads::find_benchmark("ocean");
  auto render_doc = [&] {
    RunConfig rc;
    rc.cpus = 4;
    rc.sockets = 2;
    rc.seed = 7;
    rc.features = core::Features::optimized();
    rc.ref_footprint = spec.ref_footprint();
    rc.deadline = 300_s;
    rc.metrics.enabled = true;
    rc.metrics.interval = 500_us;
    const auto r = run_experiment(rc, [&](kern::Kernel& k) {
      workloads::spawn_benchmark(k, spec, 16, 42, 0.05);
    });
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.metrics != nullptr);
    return obs::render(*r.metrics, "json");
  };
  const std::string a = render_doc();
  const std::string b = render_doc();
  EXPECT_EQ(a, b);
  std::string err;
  EXPECT_TRUE(obs::validate_metrics_json(a, &err)) << err;
}

// The fleet-telemetry property from src/obs/fleet_agg.h: the merged
// eo-metrics-fleet document is a pure function of the per-host simulations —
// byte-identical across reruns and host-thread counts, and unperturbed by a
// live progress feed (which chunks each host's window to emit host_progress
// events but schedules nothing in the engine).
TEST(Determinism, FleetMetricsDocByteIdenticalAcrossJobsAndProgress) {
  std::FILE* devnull = std::fopen("/dev/null", "w");
  ASSERT_NE(devnull, nullptr);
  auto render_fleet_doc = [](std::size_t jobs, obs::ProgressSink* sink) {
    traffic::FleetConfig fc;
    fc.n_hosts = 3;
    fc.host.n_connections = 2048;
    fc.host.max_pending = 1024;
    fc.kernel.topo = hw::Topology::make_cores(4, 1);
    fc.kernel.metrics.enabled = true;
    fc.arrival.rate_per_sec =
        0.8 * 4e9 / traffic::mean_request_cost_ns(fc.host);
    fc.warmup = 2_ms;
    fc.window = 8_ms;
    fc.drain = 2_ms;
    fc.seed = 99;
    fc.jobs = jobs;
    fc.progress = sink;
    traffic::ConnectionFleet fleet(fc);
    const traffic::FleetResult r = fleet.run();
    EXPECT_GT(r.completed, 0u);
    EXPECT_NE(r.fleet_metrics, nullptr);
    return r.fleet_metrics ? obs::render_fleet(*r.fleet_metrics, "json")
                           : std::string();
  };
  obs::JsonlProgressSink jsonl(devnull);
  const std::string a = render_fleet_doc(1, nullptr);
  const std::string b = render_fleet_doc(1, nullptr);
  const std::string c = render_fleet_doc(4, nullptr);
  const std::string d = render_fleet_doc(4, &jsonl);
  EXPECT_EQ(a, b);  // rerun with the same seed
  EXPECT_EQ(a, c);  // host-thread fan-out must not change the document
  EXPECT_EQ(a, d);  // the progress feed is pure observation
  std::string err;
  EXPECT_TRUE(obs::validate_fleet_metrics_json(a, &err)) << err;
  std::fclose(devnull);
}

// The taskstats property from src/obs/taskstats.h: per-task delay accounting
// is a pure function of the simulation. The embedded eo-taskstats section and
// the folded flamegraph are byte-identical across reruns, and the fleet's
// blame decomposition and representative-host taskstats are unperturbed by
// host-thread fan-out.
TEST(Determinism, TaskstatsByteIdenticalAcrossRunsAndJobs) {
  const auto& spec = workloads::find_benchmark("ocean");
  auto render_one = [&] {
    RunConfig rc;
    rc.cpus = 4;
    rc.sockets = 2;
    rc.seed = 7;
    rc.features = core::Features::optimized();
    rc.ref_footprint = spec.ref_footprint();
    rc.deadline = 300_s;
    rc.metrics.enabled = true;
    rc.metrics.interval = 500_us;
    rc.taskstats = true;
    const auto r = run_experiment(rc, [&](kern::Kernel& k) {
      workloads::spawn_benchmark(k, spec, 16, 42, 0.05);
    });
    EXPECT_TRUE(r.completed);
    EXPECT_NE(r.metrics, nullptr);
    EXPECT_NE(r.taskstats, nullptr);
    std::string out = obs::render(*r.metrics, "json");
    if (r.taskstats) out += obs::render_folded(*r.taskstats, "prop");
    return out;
  };
  const std::string a = render_one();
  const std::string b = render_one();
  EXPECT_EQ(a, b);

  auto render_fleet = [](std::size_t jobs) {
    traffic::FleetConfig fc;
    fc.n_hosts = 3;
    fc.host.n_connections = 2048;
    fc.host.max_pending = 1024;
    fc.kernel.topo = hw::Topology::make_cores(4, 1);
    fc.kernel.metrics.enabled = true;
    fc.kernel.taskstats = true;
    fc.arrival.rate_per_sec =
        0.8 * 4e9 / traffic::mean_request_cost_ns(fc.host);
    fc.warmup = 2_ms;
    fc.window = 8_ms;
    fc.drain = 2_ms;
    fc.seed = 99;
    fc.jobs = jobs;
    traffic::ConnectionFleet fleet(fc);
    const traffic::FleetResult r = fleet.run();
    EXPECT_GT(r.completed, 0u);
    std::string out =
        r.taskstats ? obs::render_folded(*r.taskstats, "fleet") : std::string();
    out += "|requests=" + std::to_string(r.blame.requests);
#define EO_BLAME_LINE(name) \
    out += "|" #name "=" + std::to_string(r.blame.name);
    EO_SERVE_BLAME_FIELDS(EO_BLAME_LINE)
#undef EO_BLAME_LINE
    return out;
  };
  const std::string f1 = render_fleet(1);
  const std::string f4 = render_fleet(4);
  EXPECT_EQ(f1, f4);  // blame + taskstats must not depend on --jobs
}

// Sampling must be pure observation: turning metrics on cannot perturb the
// simulation itself.
TEST(Determinism, MetricsOnDoesNotPerturbSimulation) {
  const auto& spec = workloads::find_benchmark("ocean");
  auto run = [&](bool metrics_on) {
    RunConfig rc;
    rc.cpus = 4;
    rc.sockets = 2;
    rc.seed = 7;
    rc.features = core::Features::optimized();
    rc.ref_footprint = spec.ref_footprint();
    rc.deadline = 300_s;
    rc.metrics.enabled = metrics_on;
    rc.metrics.interval = 500_us;
    return run_experiment(rc, [&](kern::Kernel& k) {
      workloads::spawn_benchmark(k, spec, 16, 42, 0.05);
    });
  };
  const auto off = run(false);
  const auto on = run(true);
  ASSERT_TRUE(off.completed && on.completed);
  EXPECT_EQ(off.exec_time, on.exec_time);
  EXPECT_EQ(off.stats.context_switches, on.stats.context_switches);
  EXPECT_EQ(off.stats.total_migrations(), on.stats.total_migrations());
  EXPECT_EQ(off.stats.vb_parks, on.stats.vb_parks);
  EXPECT_EQ(off.metrics, nullptr);
  ASSERT_NE(on.metrics, nullptr);
  EXPECT_GT(on.metrics->ticks, 0u);
}

TEST(Determinism, SeedChangesPerturbStochasticRuns) {
  const auto& spec = workloads::find_benchmark("facesim");  // jittered
  auto run = [&](std::uint64_t wl_seed) {
    RunConfig rc;
    rc.cpus = 4;
    rc.sockets = 1;
    rc.ref_footprint = spec.ref_footprint();
    rc.deadline = 300_s;
    return run_experiment(rc, [&](kern::Kernel& k) {
      workloads::spawn_benchmark(k, spec, 16, wl_seed, 0.05);
    });
  };
  const auto a = run(1);
  const auto b = run(2);
  ASSERT_TRUE(a.completed && b.completed);
  EXPECT_NE(a.exec_time, b.exec_time);
}

}  // namespace
}  // namespace eo
