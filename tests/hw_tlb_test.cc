#include "hw/tlb_model.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace eo::hw {
namespace {

TEST(Tlb, ReachMatchesTestbed) {
  TlbModel t;
  // 64 x 4KB and 1536 x 4KB (paper Section 2.3).
  EXPECT_EQ(t.l1_reach(), 256_KiB);
  EXPECT_EQ(t.l2_reach(), 6_MiB);
}

TEST(Tlb, SmallFootprintAlwaysHits) {
  TlbModel t;
  EXPECT_DOUBLE_EQ(t.l1_hit_prob(64_KiB), 1.0);
  EXPECT_DOUBLE_EQ(t.combined_hit_prob(64_KiB), 1.0);
  EXPECT_DOUBLE_EQ(t.random_access_extra_ns(64_KiB), 0.0);
}

TEST(Tlb, HitProbMonotonicallyDecreases) {
  TlbModel t;
  double prev = 2.0;
  for (std::uint64_t fp = 64_KiB; fp <= 256_MiB; fp *= 2) {
    const double p = t.l1_hit_prob(fp);
    EXPECT_LE(p, prev);
    prev = p;
  }
}

TEST(Tlb, RandomExtraCostIncreasesWithFootprint) {
  TlbModel t;
  double prev = -1.0;
  for (std::uint64_t fp = 128_KiB; fp <= 256_MiB; fp *= 2) {
    const double c = t.random_access_extra_ns(fp);
    EXPECT_GE(c, prev);
    prev = c;
  }
  // Beyond both reaches, walks dominate.
  EXPECT_GT(t.random_access_extra_ns(256_MiB), 20.0);
}

TEST(Tlb, HalvingFootprintIntoReachIsConstructive) {
  // The Figure 4 argument: a sub-array that fits a TLB level is much cheaper
  // to access randomly than the full array that does not.
  TlbModel t;
  const double full = t.random_access_extra_ns(12_MiB);   // beyond L2 reach
  const double half = t.random_access_extra_ns(3_MiB);    // within L2 reach
  EXPECT_GT(full, half + 5.0);
}

TEST(Tlb, SequentialResidualSmall) {
  TlbModel t;
  // Sequential translation cost is amortized over a page of elements.
  EXPECT_LT(t.sequential_access_extra_ns(256_MiB, 8), 0.05);
}

}  // namespace
}  // namespace eo::hw
