// Unit tests for the CFS runqueue, including the VB and BWD extensions.
#include "sched/runqueue.h"

#include <gtest/gtest.h>

#include <vector>

namespace eo::sched {
namespace {

class RunqueueTest : public ::testing::Test {
 protected:
  CfsParams params;
  Runqueue rq{0, &params};

  SchedEntity* make(std::int64_t vruntime) {
    entities_.push_back(std::make_unique<SchedEntity>());
    entities_.back()->vruntime = vruntime;
    return entities_.back().get();
  }

  std::vector<std::unique_ptr<SchedEntity>> entities_;
};

TEST_F(RunqueueTest, PickLowestVruntime) {
  auto* a = make(100);
  auto* b = make(50);
  auto* c = make(200);
  rq.enqueue(a, false);
  rq.enqueue(b, false);
  rq.enqueue(c, false);
  EXPECT_EQ(rq.nr_running(), 3);
  EXPECT_EQ(rq.pick_next(), b);
  rq.put_prev(b);
  EXPECT_TRUE(rq.tree_valid());
}

TEST_F(RunqueueTest, SliceShrinksWithLoadDownToMinimum) {
  auto* a = make(0);
  rq.enqueue(a, false);
  EXPECT_EQ(rq.slice_for(a), params.sched_latency);  // alone: 3ms
  for (int i = 0; i < 3; ++i) rq.enqueue(make(0), false);
  EXPECT_EQ(rq.slice_for(a), params.sched_latency / 4);  // 750us
  for (int i = 0; i < 28; ++i) rq.enqueue(make(0), false);
  EXPECT_EQ(rq.slice_for(a), params.min_granularity);  // floor
}

TEST_F(RunqueueTest, AccountCurrAdvancesVruntimeAndMin) {
  auto* a = make(0);
  rq.enqueue(a, false);
  ASSERT_EQ(rq.pick_next(), a);
  rq.account_curr(1_ms);
  EXPECT_EQ(a->vruntime, 1_ms);
  EXPECT_GE(rq.min_vruntime(), 1_ms);
}

TEST_F(RunqueueTest, SleeperPlacementBounded) {
  auto* a = make(0);
  rq.enqueue(a, false);
  ASSERT_EQ(rq.pick_next(), a);
  rq.account_curr(100_ms);
  rq.put_prev(a);
  // A long sleeper wakes: it gets a bounded credit, not its ancient vruntime.
  auto* sleeper = make(0);
  rq.enqueue(sleeper, /*wakeup=*/true);
  EXPECT_GE(sleeper->vruntime, rq.min_vruntime() - params.sleeper_bonus);
}

TEST_F(RunqueueTest, ShouldPreemptRequiresGap) {
  auto* a = make(10_ms);
  rq.enqueue(a, false);
  ASSERT_EQ(rq.pick_next(), a);
  auto* close = make(10_ms - 100_us);  // within wakeup granularity
  EXPECT_FALSE(rq.should_preempt(close));
  auto* far = make(10_ms - 2_ms);
  EXPECT_TRUE(rq.should_preempt(far));
}

TEST_F(RunqueueTest, VbParkSortsLastAndKeepsCounts) {
  auto* a = make(100);
  auto* b = make(50);
  rq.enqueue(a, false);
  rq.enqueue(b, false);
  rq.vb_park(a);
  EXPECT_EQ(rq.nr_running(), 2);
  EXPECT_EQ(rq.nr_vb_blocked(), 1);
  EXPECT_EQ(rq.nr_schedulable(), 1);
  // b picked before the parked a despite a's original lower... (a had 100).
  EXPECT_EQ(rq.pick_next(), b);
  rq.put_prev(b);
  EXPECT_TRUE(a->vb_blocked);
  EXPECT_GE(a->vruntime, kVbVruntimeBase);
}

TEST_F(RunqueueTest, VbParkedPickedWhenAlone) {
  auto* a = make(100);
  rq.enqueue(a, false);
  rq.vb_park(a);
  // All parked: the scheduler still picks it (for the flag-check quantum).
  EXPECT_EQ(rq.pick_next(), a);
}

TEST_F(RunqueueTest, VbParkedFifoOrder) {
  auto* a = make(10);
  auto* b = make(20);
  auto* c = make(30);
  for (auto* e : {a, b, c}) rq.enqueue(e, false);
  rq.vb_park(c);
  rq.vb_park(a);
  rq.vb_park(b);
  // Park order c, a, b is preserved at the tail.
  EXPECT_EQ(rq.pick_next(), c);
  rq.put_prev(c);
}

TEST_F(RunqueueTest, VbUnparkRestoresPromptScheduling) {
  auto* a = make(100);
  auto* b = make(50);
  rq.enqueue(a, false);
  rq.enqueue(b, false);
  rq.vb_park(a);
  const auto saved = a->saved_vruntime;
  EXPECT_EQ(saved, 100);
  rq.vb_unpark(a);
  EXPECT_FALSE(a->vb_blocked);
  EXPECT_EQ(rq.nr_vb_blocked(), 0);
  EXPECT_LT(a->vruntime, kVbVruntimeBase);
  EXPECT_EQ(rq.pick_next(), b);  // b still first (lower vruntime)
  rq.put_prev(b);
}

TEST_F(RunqueueTest, VbClearCurrent) {
  auto* a = make(100);
  rq.enqueue(a, false);
  rq.vb_park(a);
  ASSERT_EQ(rq.pick_next(), a);  // check quantum
  rq.vb_clear_current(a);
  EXPECT_FALSE(a->vb_blocked);
  EXPECT_EQ(rq.nr_vb_blocked(), 0);
  EXPECT_LT(a->vruntime, kVbVruntimeBase);
  rq.put_prev(a);
}

TEST_F(RunqueueTest, BwdSkipPassedOverUntilOthersRan) {
  auto* a = make(10);
  auto* b = make(20);
  auto* c = make(30);
  for (auto* e : {a, b, c}) rq.enqueue(e, false);
  // a was descheduled by BWD.
  rq.bwd_mark_skip(a);
  // Next picks go to b and c even though a has the lowest vruntime.
  SchedEntity* p1 = rq.pick_next();
  EXPECT_EQ(p1, b);
  rq.account_curr(1_ms);
  rq.put_prev(p1);
  SchedEntity* p2 = rq.pick_next();
  EXPECT_EQ(p2, c);
  rq.account_curr(1_ms);
  rq.put_prev(p2);
  // Both others ran: the skip has expired.
  SchedEntity* p3 = rq.pick_next();
  EXPECT_EQ(p3, a);
  EXPECT_FALSE(a->bwd_skip);
  rq.put_prev(p3);
}

TEST_F(RunqueueTest, AllSkippedClearsVacuously) {
  auto* a = make(10);
  auto* b = make(20);
  rq.enqueue(a, false);
  rq.enqueue(b, false);
  rq.bwd_mark_skip(a);
  rq.bwd_mark_skip(b);
  SchedEntity* p = rq.pick_next();
  EXPECT_EQ(p, a);  // lowest vruntime once flags cleared
  EXPECT_FALSE(a->bwd_skip);
  EXPECT_FALSE(b->bwd_skip);
  rq.put_prev(p);
}

TEST_F(RunqueueTest, MigrationCandidateSkipsParkedAndPinned) {
  auto* a = make(10);
  auto* b = make(20);
  auto* c = make(30);
  for (auto* e : {a, b, c}) rq.enqueue(e, false);
  rq.vb_park(c);
  b->pinned = true;
  EXPECT_EQ(rq.migration_candidate(), a);
  rq.vb_park(a);
  EXPECT_EQ(rq.migration_candidate(), nullptr);
}

TEST_F(RunqueueTest, DetachAllEmptiesQueue) {
  for (int i = 0; i < 5; ++i) rq.enqueue(make(i), false);
  rq.vb_park(rq.migration_candidate());
  const auto all = rq.detach_all();
  EXPECT_EQ(all.size(), 5u);
  EXPECT_EQ(rq.nr_running(), 0);
  EXPECT_EQ(rq.nr_vb_blocked(), 0);
  for (auto* e : all) EXPECT_FALSE(e->on_rq);
}

// Regression: dequeuing a BWD-skipped entity (e.g. a migration pull) used to
// leave the skip flag and round bookkeeping behind, so the entity carried a
// stale skip sequence into its next queue and the old queue kept counting it
// toward skip-round termination.
TEST_F(RunqueueTest, DequeueClearsBwdSkipState) {
  auto* a = make(10);
  auto* b = make(20);
  rq.enqueue(a, false);
  rq.enqueue(b, false);
  rq.bwd_mark_skip(a);
  EXPECT_EQ(rq.count_bwd_skipped(), 1);
  rq.dequeue(a);
  EXPECT_FALSE(a->bwd_skip);
  EXPECT_EQ(a->bwd_skip_seq, 0u);
  EXPECT_EQ(rq.count_bwd_skipped(), 0);
  // Re-enqueued elsewhere (same queue here), it is schedulable immediately.
  rq.enqueue(a, false);
  EXPECT_EQ(rq.pick_next(), a);
  rq.put_prev(a);
}

TEST_F(RunqueueTest, DetachAllClearsBwdSkipState) {
  auto* a = make(10);
  auto* b = make(20);
  rq.enqueue(a, false);
  rq.enqueue(b, false);
  rq.bwd_mark_skip(b);
  const auto all = rq.detach_all();
  EXPECT_EQ(all.size(), 2u);
  EXPECT_EQ(rq.count_bwd_skipped(), 0);
  for (auto* e : all) {
    EXPECT_FALSE(e->bwd_skip);
    EXPECT_EQ(e->bwd_skip_seq, 0u);
  }
}

// --- QueueTuning disciplines (the policy zoo's building blocks) ---

class TunedRunqueueTest : public ::testing::Test {
 protected:
  SchedEntity* make(std::int64_t vruntime) {
    entities_.push_back(std::make_unique<SchedEntity>());
    entities_.back()->vruntime = vruntime;
    return entities_.back().get();
  }

  CfsParams params;
  std::vector<std::unique_ptr<SchedEntity>> entities_;
};

TEST_F(TunedRunqueueTest, ArrivalKeysPickInArrivalOrder) {
  QueueTuning t;
  t.arrival_keys = true;
  t.wakeup_preempt = false;
  Runqueue rq{0, &params, &t};
  auto* a = make(300);  // vruntime is ignored as the sort key
  auto* b = make(200);
  auto* c = make(100);
  rq.enqueue(a, false);
  rq.enqueue(b, true);  // wakeup placement must not reorder FIFO queues
  rq.enqueue(c, false);
  EXPECT_EQ(rq.pick_next(), a);
  rq.account_curr(1_ms);
  rq.put_prev(a);  // still runnable: keeps its key, stays at the head
  EXPECT_EQ(rq.pick_next(), a);
  rq.put_prev(a);
}

TEST_F(TunedRunqueueTest, RequeueTailRotatesRoundRobin) {
  QueueTuning t;
  t.arrival_keys = true;
  t.requeue_tail = true;
  t.wakeup_preempt = false;
  Runqueue rq{0, &params, &t};
  auto* a = make(0);
  auto* b = make(0);
  auto* c = make(0);
  for (auto* e : {a, b, c}) rq.enqueue(e, false);
  for (auto* expect : {a, b, c, a, b, c}) {
    SchedEntity* p = rq.pick_next();
    EXPECT_EQ(p, expect);
    rq.account_curr(1_ms);
    rq.put_prev(p);
  }
}

TEST_F(TunedRunqueueTest, FixedQuantumOverridesSliceAndBlocksPreempt) {
  QueueTuning t;
  t.arrival_keys = true;
  t.wakeup_preempt = false;
  t.fixed_quantum = 5_ms;
  Runqueue rq{0, &params, &t};
  auto* a = make(0);
  rq.enqueue(a, false);
  for (int i = 0; i < 3; ++i) rq.enqueue(make(0), false);
  EXPECT_EQ(rq.slice_for(a), 5_ms);  // not sched_latency / 4
  ASSERT_EQ(rq.pick_next(), a);
  auto* waker = make(0);
  EXPECT_FALSE(rq.should_preempt(waker));
}

TEST_F(TunedRunqueueTest, ArrivalKeysKeepVbContract) {
  QueueTuning t;
  t.arrival_keys = true;
  t.wakeup_preempt = false;
  Runqueue rq{0, &params, &t};
  auto* a = make(0);
  auto* b = make(0);
  rq.enqueue(a, false);
  rq.enqueue(b, false);
  rq.vb_park(a);
  EXPECT_EQ(rq.nr_schedulable(), 1);
  EXPECT_EQ(rq.pick_next(), b);  // parked a sits behind b
  rq.put_prev(b);
  rq.vb_unpark(a);
  // A VB unpark goes to the queue head even under FIFO ordering, so the
  // waker is promptly scheduled (the paper's modified-wakeup behavior).
  EXPECT_EQ(rq.pick_next(), a);
  rq.put_prev(a);
}

TEST_F(TunedRunqueueTest, BwdSkipRoundHoldsUnderArrivalKeys) {
  QueueTuning t;
  t.arrival_keys = true;
  t.wakeup_preempt = false;
  Runqueue rq{0, &params, &t};
  auto* a = make(0);
  auto* b = make(0);
  auto* c = make(0);
  for (auto* e : {a, b, c}) rq.enqueue(e, false);
  rq.bwd_mark_skip(a);
  // FIFO runs-to-block: b keeps the queue head across put_prev, so the
  // skip round is two consecutive b picks before a's skip expires.
  SchedEntity* p1 = rq.pick_next();
  EXPECT_EQ(p1, b);
  rq.put_prev(p1);
  SchedEntity* p2 = rq.pick_next();
  EXPECT_EQ(p2, b);
  rq.put_prev(p2);
  SchedEntity* p3 = rq.pick_next();
  EXPECT_EQ(p3, a);
  EXPECT_FALSE(a->bwd_skip);
  rq.put_prev(p3);
}

namespace {
/// Always prefers a designated entity when it is eligible.
class PreferBias : public PickBias {
 public:
  explicit PreferBias(SchedEntity* want) : want_(want) {}
  SchedEntity* choose(const Runqueue& rq, SchedEntity* fair) override {
    for (SchedEntity* e = rq.first_queued(); e; e = rq.next_queued(e)) {
      if (e == want_ && !e->vb_blocked && !e->bwd_skip) return e;
    }
    return fair;
  }

 private:
  SchedEntity* want_;
};
}  // namespace

TEST_F(TunedRunqueueTest, PickBiasOverridesFairChoice) {
  Runqueue rq{0, &params};
  auto* a = make(10);
  auto* b = make(20);
  rq.enqueue(a, false);
  rq.enqueue(b, false);
  PreferBias bias(b);
  rq.set_pick_bias(&bias);
  EXPECT_EQ(rq.pick_next(), b);  // fair choice would be a
  rq.put_prev(b);
  rq.set_pick_bias(nullptr);
  EXPECT_EQ(rq.pick_next(), a);
  rq.put_prev(a);
}

TEST_F(TunedRunqueueTest, PickBiasNotConsultedForSkipExpiry) {
  Runqueue rq{0, &params};
  auto* a = make(10);
  auto* b = make(20);
  rq.enqueue(a, false);
  rq.enqueue(b, false);
  rq.bwd_mark_skip(a);
  PreferBias bias(a);
  rq.set_pick_bias(&bias);
  // a is skip-flagged: the bias cannot resurrect it.
  SchedEntity* p1 = rq.pick_next();
  EXPECT_EQ(p1, b);
  rq.put_prev(p1);
  // Skip round over: a is picked on the expiry path (bias not consulted,
  // and it must not matter — a is the fair choice anyway).
  SchedEntity* p2 = rq.pick_next();
  EXPECT_EQ(p2, a);
  EXPECT_FALSE(a->bwd_skip);
  rq.put_prev(p2);
}

}  // namespace
}  // namespace eo::sched
