#include "sched/load_balancer.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace eo::sched {
namespace {

class BalancerTest : public ::testing::Test {
 protected:
  BalancerTest() : topo_(hw::Topology::make_cores(4, 2)), lb_(&topo_, &params_) {
    for (int i = 0; i < 4; ++i) {
      rqs_owned_.push_back(std::make_unique<Runqueue>(i, &params_));
      rqs_.push_back(rqs_owned_.back().get());
    }
  }

  SchedEntity* add(int cpu, std::int64_t vr = 0) {
    entities_.push_back(std::make_unique<SchedEntity>());
    entities_.back()->vruntime = vr;
    rqs_[static_cast<size_t>(cpu)]->enqueue(entities_.back().get(), false);
    return entities_.back().get();
  }

  static bool always_online(int) { return true; }

  CfsParams params_;
  hw::Topology topo_;
  LoadBalancer lb_;
  std::vector<std::unique_ptr<Runqueue>> rqs_owned_;
  std::vector<Runqueue*> rqs_;
  std::vector<std::unique_ptr<SchedEntity>> entities_;
};

TEST_F(BalancerTest, NoPullWhenBalanced) {
  for (int c = 0; c < 4; ++c) add(c);
  EXPECT_FALSE(lb_.find_pull(0, rqs_, always_online, false).has_value());
}

TEST_F(BalancerTest, PullsFromBusiest) {
  add(1);
  add(1);
  add(1);
  const auto d = lb_.find_pull(0, rqs_, always_online, false);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->src_cpu, 1);
  EXPECT_EQ(d->dst_cpu, 0);
  EXPECT_FALSE(d->cross_socket);  // cores 0,1 share socket 0
}

TEST_F(BalancerTest, PrefersSameSocket) {
  // core 1 (socket 0) and core 2 (socket 1) both busier than core 0.
  add(1);
  add(1);
  add(2);
  add(2);
  add(2);  // core 2 busiest overall
  const auto d = lb_.find_pull(0, rqs_, always_online, false);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->src_cpu, 1) << "same-socket pull wins even if remote is busier";
}

TEST_F(BalancerTest, CrossSocketWhenLocalBalanced) {
  add(2);
  add(2);
  add(2);
  const auto d = lb_.find_pull(0, rqs_, always_online, false);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->src_cpu, 2);
  EXPECT_TRUE(d->cross_socket);
}

TEST_F(BalancerTest, NewlyIdleLowersThreshold) {
  add(1);
  add(1);  // imbalance of 2 vs empty core 0... make it exactly 1:
  rqs_[1]->dequeue(entities_.back().get());
  EXPECT_FALSE(lb_.find_pull(0, rqs_, always_online, false).has_value())
      << "periodic balance needs imbalance >= 2";
  EXPECT_TRUE(lb_.find_pull(0, rqs_, always_online, true).has_value())
      << "newly-idle balance pulls at imbalance 1";
}

TEST_F(BalancerTest, VbParkedCountsAsLoadButNeverMigrates) {
  auto* a = add(1);
  auto* b = add(1);
  auto* c = add(1);
  rqs_[1]->vb_park(a);
  rqs_[1]->vb_park(b);
  rqs_[1]->vb_park(c);
  // Load looks high (VB keeps parked threads counted) but there is no legal
  // victim, so no decision is produced.
  EXPECT_FALSE(lb_.find_pull(0, rqs_, always_online, true).has_value());
}

TEST_F(BalancerTest, OfflineCoresExcluded) {
  add(1);
  add(1);
  add(1);
  const auto offline1 = [](int i) { return i != 1; };
  const auto d = lb_.find_pull(0, rqs_, offline1, false);
  EXPECT_FALSE(d.has_value());
}

}  // namespace
}  // namespace eo::sched
