// ResultDoc rendering and the eo-bench-result structural validator: a
// runner-produced document must validate and render deterministically; the
// validator must reject documents that drift from the schema.
#include <gtest/gtest.h>

#include "exp/result.h"
#include "exp/runner.h"
#include "exp/sweep.h"

namespace eo {
namespace {

using exp::Cell;
using exp::CellRun;
using exp::ExperimentRunner;
using exp::Outcomes;
using exp::ResultDoc;
using exp::RunnerOptions;
using exp::Sweep;
using exp::validate_result_json;

RunnerOptions quiet() {
  RunnerOptions o;
  o.jobs = 1;
  o.progress = false;
  return o;
}

Sweep demo_sweep() {
  Sweep s("demo");
  s.axis("benchmark", {"hist", "scan"}).axis("threads", {"8T", "32T"});
  return s;
}

Outcomes run_demo(const Sweep& s) {
  return ExperimentRunner(s, quiet())
      .run([](const Cell& cell, const metrics::RunConfig&) {
        if (cell.at(0) == 1 && cell.at(1) == 1) return CellRun::na();
        CellRun r;
        r.run.completed = true;
        r.run.exec_time = static_cast<SimDuration>(1'000'000 * (cell.flat + 1));
        r.run.utilization_percent = 50.0 + static_cast<double>(cell.flat);
        r.set("tput_ops_s", 1e6 / static_cast<double>(cell.flat + 1));
        return r;
      });
}

ResultDoc demo_doc() {
  const Sweep s = demo_sweep();
  ResultDoc doc("demo_bench", 1.0, 7);
  doc.set_meta("git_rev", "0123abcd");  // pin the volatile block
  doc.add_sweep(s, run_demo(s));
  return doc;
}

TEST(ResultTest, RunnerProducedDocumentValidates) {
  std::string err;
  EXPECT_TRUE(validate_result_json(demo_doc().render(), &err)) << err;
}

TEST(ResultTest, RenderIsDeterministic) {
  // Two independently built documents from the same inputs are
  // byte-identical — the property behind same-seed --json reruns.
  EXPECT_EQ(demo_doc().render(), demo_doc().render());
}

TEST(ResultTest, HistoryRendersValidatesAndRoundTrips) {
  // The perf-trajectory history (bench_perf_smoke --gate) lives in the
  // volatile meta block: the document still validates, parse_history gets
  // the entries back, and entries beyond the cap age out oldest-first.
  ResultDoc doc = demo_doc();
  exp::PerfHistoryEntry e1;
  e1.git_rev = "aaaa0001";
  e1.stamp = "2026-08-01T00:00:00Z";
  e1.ns_per_item = {{"engine_schedule_fire", 60.5}, {"futex_round_trip", 330.0}};
  exp::PerfHistoryEntry e2;
  e2.git_rev = "aaaa0002";
  e2.stamp = "2026-08-02T00:00:00Z";
  e2.ns_per_item = {{"engine_schedule_fire", 58.25}};
  doc.add_history(e1);
  doc.add_history(e2);
  const std::string text = doc.render();
  std::string err;
  ASSERT_TRUE(validate_result_json(text, &err)) << err;
  const auto back = exp::parse_history(text);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].git_rev, "aaaa0001");
  EXPECT_EQ(back[1].stamp, "2026-08-02T00:00:00Z");
  ASSERT_EQ(back[0].ns_per_item.size(), 2u);
  EXPECT_EQ(back[0].ns_per_item[0].first, "engine_schedule_fire");
  EXPECT_DOUBLE_EQ(back[0].ns_per_item[0].second, 60.5);
  // Cap: appending far past kMaxHistory keeps only the newest entries.
  ResultDoc capped = demo_doc();
  for (std::size_t i = 0; i < ResultDoc::kMaxHistory + 10; ++i) {
    exp::PerfHistoryEntry e;
    e.git_rev = "rev" + std::to_string(i);
    e.stamp = "s";
    capped.add_history(e);
  }
  const auto kept = exp::parse_history(capped.render());
  ASSERT_EQ(kept.size(), ResultDoc::kMaxHistory);
  EXPECT_EQ(kept.front().git_rev, "rev10");
  EXPECT_EQ(kept.back().git_rev,
            "rev" + std::to_string(ResultDoc::kMaxHistory + 9));
  std::string err2;
  EXPECT_TRUE(validate_result_json(capped.render(), &err2)) << err2;
}

TEST(ResultValidatorTest, RejectsMalformedHistory) {
  ResultDoc doc = demo_doc();
  exp::PerfHistoryEntry e;
  e.git_rev = "aaaa0001";
  e.stamp = "2026-08-01T00:00:00Z";
  e.ns_per_item = {{"engine_schedule_fire", 60.5}};
  doc.add_history(e);
  const std::string good = doc.render();
  auto corrupt = [&](const std::string& from, const std::string& to) {
    const std::size_t pos = good.find(from);
    EXPECT_NE(pos, std::string::npos) << from;
    std::string out = good;
    out.replace(pos, from.size(), to);
    return out;
  };
  std::string err;
  EXPECT_FALSE(validate_result_json(
      corrupt("\"history\":[", "\"history\":0,\"x\":["), &err));
  EXPECT_FALSE(validate_result_json(
      corrupt("\"stamp\":\"2026-08-01T00:00:00Z\"", "\"stamp\":5"), &err));
  EXPECT_FALSE(validate_result_json(
      corrupt("\"engine_schedule_fire\":60.5",
              "\"engine_schedule_fire\":\"fast\""),
      &err));
  EXPECT_NE(err.find("history"), std::string::npos) << err;
}

TEST(ResultTest, SkippedAndNaCellsValidate) {
  const Sweep s = demo_sweep();
  RunnerOptions o = quiet();
  o.filter = "hist/";
  const Outcomes out = ExperimentRunner(s, o).run(
      [](const Cell&, const metrics::RunConfig&) {
        CellRun r;
        r.run.completed = true;
        return r;
      });
  ResultDoc doc("demo_bench", 1.0, 7);
  doc.set_meta("git_rev", "0123abcd");
  doc.add_sweep(s, out);
  std::string err;
  EXPECT_TRUE(validate_result_json(doc.render(), &err)) << err;
}

TEST(ResultTest, MultiSweepDocumentValidates) {
  const Sweep a = demo_sweep();
  Sweep b("second");
  b.axis("quantum", {"1us", "2us"});
  const Outcomes out_b = ExperimentRunner(b, quiet())
                             .run([](const Cell&, const metrics::RunConfig&) {
                               CellRun r;
                               r.run.completed = true;
                               return r;
                             });
  ResultDoc doc("demo_bench", 0.5, 3);
  doc.set_meta("git_rev", "0123abcd");
  doc.set_meta("host_note", 1.5);
  doc.add_sweep(a, run_demo(a));
  doc.add_sweep(b, out_b);
  std::string err;
  EXPECT_TRUE(validate_result_json(doc.render(), &err)) << err;
}

// --- validator reject cases ------------------------------------------------

/// A hand-written minimal valid document; the reject tests mutate it.
std::string minimal_doc(const std::string& schema_name, int version,
                        const std::string& cells) {
  return std::string("{\"schema\":\"") + schema_name +
         "\",\"schema_version\":" + std::to_string(version) +
         ",\"bench\":\"mini\",\"scale\":1,\"seed\":7,"
         "\"meta\":{\"git_rev\":\"abc123\"},"
         "\"sweeps\":[{\"name\":\"s\","
         "\"axes\":[{\"name\":\"a\",\"values\":[\"x\",\"y\"]}],"
         "\"cells\":[" +
         cells + "]}]}";
}

std::string full_cell(const std::string& coord) {
  return std::string("{\"coords\":[\"") + coord +
         "\"],\"completed\":true,\"attempts\":1,\"deadline_ms\":60000,"
         "\"exec_ms\":1.5,\"utilization_percent\":50,\"spin_busy_ms\":0,"
         "\"context_switches\":10,\"migrations_in_node\":0,"
         "\"migrations_cross_node\":0,\"vb_parks\":0,\"wakeup_p50_ns\":0,"
         "\"wakeup_p95_ns\":0,\"wakeup_p99_ns\":0,\"wakeup_count\":0,"
         "\"bwd\":{\"windows\":0,\"tp\":0,\"fp\":0,\"fn\":0,\"tn\":0}}";
}

TEST(ResultValidatorTest, AcceptsMinimalHandWrittenDocument) {
  std::string err;
  const std::string doc = minimal_doc(
      exp::kResultSchemaName, exp::kResultSchemaVersion,
      full_cell("x") + "," + full_cell("y"));
  EXPECT_TRUE(validate_result_json(doc, &err)) << err;
}

TEST(ResultValidatorTest, RejectsMalformedJson) {
  std::string err;
  EXPECT_FALSE(validate_result_json("{\"schema\":", &err));
  EXPECT_FALSE(validate_result_json("", &err));
}

TEST(ResultValidatorTest, RejectsWrongSchemaName) {
  std::string err;
  const std::string doc =
      minimal_doc("bogus-schema", exp::kResultSchemaVersion,
                  full_cell("x") + "," + full_cell("y"));
  EXPECT_FALSE(validate_result_json(doc, &err));
  EXPECT_NE(err.find("schema"), std::string::npos);
}

TEST(ResultValidatorTest, RejectsWrongSchemaVersion) {
  std::string err;
  const std::string doc =
      minimal_doc(exp::kResultSchemaName, exp::kResultSchemaVersion + 1,
                  full_cell("x") + "," + full_cell("y"));
  EXPECT_FALSE(validate_result_json(doc, &err));
  EXPECT_NE(err.find("schema_version"), std::string::npos);
}

TEST(ResultValidatorTest, RejectsCellCountMismatch) {
  std::string err;
  // Two axis values but only one cell.
  const std::string doc = minimal_doc(
      exp::kResultSchemaName, exp::kResultSchemaVersion, full_cell("x"));
  EXPECT_FALSE(validate_result_json(doc, &err));
  EXPECT_NE(err.find("cells"), std::string::npos);
}

TEST(ResultValidatorTest, RejectsCoordOutsideAxisValues) {
  std::string err;
  const std::string doc =
      minimal_doc(exp::kResultSchemaName, exp::kResultSchemaVersion,
                  full_cell("x") + "," + full_cell("z"));
  EXPECT_FALSE(validate_result_json(doc, &err));
  EXPECT_NE(err.find("axis values"), std::string::npos);
}

TEST(ResultValidatorTest, RejectsMissingNumericCellField) {
  std::string cell = full_cell("y");
  const std::size_t pos = cell.find("\"exec_ms\":1.5,");
  ASSERT_NE(pos, std::string::npos);
  cell.erase(pos, std::string("\"exec_ms\":1.5,").size());
  std::string err;
  const std::string doc = minimal_doc(
      exp::kResultSchemaName, exp::kResultSchemaVersion,
      full_cell("x") + "," + cell);
  EXPECT_FALSE(validate_result_json(doc, &err));
  EXPECT_NE(err.find("exec_ms"), std::string::npos);
}

TEST(ResultValidatorTest, RejectsMissingBwdBlock) {
  std::string cell = full_cell("y");
  const std::string bwd =
      ",\"bwd\":{\"windows\":0,\"tp\":0,\"fp\":0,\"fn\":0,\"tn\":0}";
  const std::size_t pos = cell.find(bwd);
  ASSERT_NE(pos, std::string::npos);
  cell.erase(pos, bwd.size());
  std::string err;
  const std::string doc = minimal_doc(
      exp::kResultSchemaName, exp::kResultSchemaVersion,
      full_cell("x") + "," + cell);
  EXPECT_FALSE(validate_result_json(doc, &err));
  EXPECT_NE(err.find("bwd"), std::string::npos);
}

TEST(ResultValidatorTest, RejectsNonNumericExtra) {
  std::string cell = full_cell("y");
  cell.insert(cell.size() - 1, ",\"extra\":{\"note\":\"fast\"}");
  std::string err;
  const std::string doc = minimal_doc(
      exp::kResultSchemaName, exp::kResultSchemaVersion,
      full_cell("x") + "," + cell);
  EXPECT_FALSE(validate_result_json(doc, &err));
  EXPECT_NE(err.find("extra"), std::string::npos);
}

TEST(ResultValidatorTest, RejectsMissingGitRev) {
  const std::string doc =
      "{\"schema\":\"eo-bench-result\",\"schema_version\":1,"
      "\"bench\":\"mini\",\"scale\":1,\"seed\":7,\"meta\":{},"
      "\"sweeps\":[{\"name\":\"s\","
      "\"axes\":[{\"name\":\"a\",\"values\":[\"x\"]}],"
      "\"cells\":[" +
      full_cell("x") + "]}]}";
  std::string err;
  EXPECT_FALSE(validate_result_json(doc, &err));
  EXPECT_NE(err.find("git_rev"), std::string::npos);
}

TEST(ResultValidatorTest, RejectsEmptySweepsAndBadScale) {
  std::string err;
  EXPECT_FALSE(validate_result_json(
      "{\"schema\":\"eo-bench-result\",\"schema_version\":1,"
      "\"bench\":\"mini\",\"scale\":1,\"seed\":7,"
      "\"meta\":{\"git_rev\":\"abc\"},\"sweeps\":[]}",
      &err));
  const std::string bad_scale =
      "{\"schema\":\"eo-bench-result\",\"schema_version\":1,"
      "\"bench\":\"mini\",\"scale\":0,\"seed\":7,"
      "\"meta\":{\"git_rev\":\"abc\"},\"sweeps\":[{\"name\":\"s\","
      "\"axes\":[{\"name\":\"a\",\"values\":[\"x\"]}],\"cells\":[" +
      full_cell("x") + "]}]}";
  EXPECT_FALSE(validate_result_json(bad_scale, &err));
  EXPECT_NE(err.find("scale"), std::string::npos);
}

}  // namespace
}  // namespace eo
