// Parameterized correctness tests for the blocking/spin-then-park locks
// (pthread mutex wrapper, Mutexee, MCS-TP, SHFLLOCK).
#include "locks/blocking_locks.h"

#include <gtest/gtest.h>

#include <memory>

#include "runtime/sim_thread.h"

namespace eo::locks {
namespace {

using runtime::Env;
using runtime::SimThread;

class BlockingLockTest
    : public ::testing::TestWithParam<std::tuple<BlockingLockKind, bool>> {};

struct Shared {
  int in_cs = 0;
  int max_in_cs = 0;
  int total = 0;
};

SimThread contender(Env env, std::shared_ptr<BlockingLock> lock,
                    std::shared_ptr<Shared> sh, int slot, int iters) {
  for (int i = 0; i < iters; ++i) {
    co_await lock->lock(env, slot);
    ++sh->in_cs;
    sh->max_in_cs = std::max(sh->max_in_cs, sh->in_cs);
    co_await env.compute(3_us);
    --sh->in_cs;
    ++sh->total;
    co_await lock->unlock(env, slot);
    co_await env.compute(8_us);
  }
  co_return;
}

TEST_P(BlockingLockTest, MutualExclusionAndCompletion) {
  const auto [kind, oversubscribed] = GetParam();
  kern::KernelConfig c;
  c.topo = hw::Topology::make_cores(oversubscribed ? 2 : 4, 1);
  kern::Kernel k(c);
  const int threads = oversubscribed ? 12 : 4;
  auto lock = std::shared_ptr<BlockingLock>(
      make_blocking_lock(kind, k, threads));
  auto sh = std::make_shared<Shared>();
  const int iters = 10;
  for (int i = 0; i < threads; ++i) {
    runtime::spawn(k, "c" + std::to_string(i),
                   [lock, sh, i, iters](Env env) {
                     return contender(env, lock, sh, i, iters);
                   });
  }
  ASSERT_TRUE(k.run_to_exit(120_s)) << to_string(kind);
  EXPECT_EQ(sh->max_in_cs, 1) << to_string(kind);
  EXPECT_EQ(sh->total, threads * iters) << to_string(kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, BlockingLockTest,
    ::testing::Combine(::testing::ValuesIn(all_blocking_lock_kinds()),
                       ::testing::Bool()),
    [](const auto& info) {
      std::string n = to_string(std::get<0>(info.param));
      n += std::get<1>(info.param) ? "_oversub" : "_matched";
      return n;
    });

TEST(BlockingLockMisc, MutexeeParksUnderLongHold) {
  // A long critical section exhausts the spin budget and forces the park
  // path (the futex dependency the paper blames).
  kern::KernelConfig c;
  c.topo = hw::Topology::make_cores(2, 1);
  kern::Kernel k(c);
  auto lock = std::shared_ptr<BlockingLock>(
      make_blocking_lock(BlockingLockKind::kMutexee, k, 4));
  auto sh = std::make_shared<Shared>();
  for (int i = 0; i < 2; ++i) {
    runtime::spawn(k, "c" + std::to_string(i), [lock, sh, i](Env env) -> SimThread {
      for (int r = 0; r < 5; ++r) {
        co_await lock->lock(env, i);
        ++sh->total;
        co_await env.compute(200_us);  // far beyond the spin budget
        co_await lock->unlock(env, i);
      }
      co_return;
    });
  }
  ASSERT_TRUE(k.run_to_exit(30_s));
  EXPECT_EQ(sh->total, 10);
  EXPECT_GT(k.stats().futex_sleeps, 0u) << "park path never exercised";
}

}  // namespace
}  // namespace eo::locks
