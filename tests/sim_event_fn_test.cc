// EventFn unit tests: the inline-vs-overflow capture-size contract, move
// semantics, and — via a global allocation-counting harness — the engine's
// guarantee that schedule/cancel/fire perform no heap allocation for
// callbacks within inline capacity once the slab and heap are warm.
#include "sim/event_fn.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <utility>

#include "sim/engine.h"

// --- allocation-counting harness (whole test binary) ---
namespace {
std::atomic<std::uint64_t> g_news{0};
}  // namespace

void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace eo::sim {
namespace {

/// Allocations performed by `body`.
template <typename Body>
std::uint64_t allocs_during(Body&& body) {
  const std::uint64_t before = g_news.load(std::memory_order_relaxed);
  body();
  return g_news.load(std::memory_order_relaxed) - before;
}

TEST(EventFn, InlineCapacityIsThreeWords) {
  EXPECT_EQ(EventFn::kInlineSize, 3 * sizeof(void*));
  EXPECT_EQ(sizeof(EventFn), 4 * sizeof(void*));
}

TEST(EventFn, PointerCapturesAreInlineAndAllocationFree) {
  int target = 0;
  int* p = &target;
  const std::uint64_t n = allocs_during([&] {
    EventFn f([p] { *p += 7; });  // one-word capture: the kernel's shape
    ASSERT_TRUE(f.is_inline());
    f();
  });
  EXPECT_EQ(n, 0u);
  EXPECT_EQ(target, 7);
}

TEST(EventFn, CaptureAtExactCapacityIsInline) {
  std::uint64_t a = 1, b = 2, c = 3;
  std::uint64_t sum = 0;
  std::uint64_t* out = &sum;
  // Three words, the documented limit (one slot is spent on `out`'s word
  // being part of the three: a, b, out — exactly 24 bytes).
  EventFn f([a, b, out] { *out = a + b; });
  EXPECT_TRUE(f.is_inline());
  f();
  EXPECT_EQ(sum, 3u);
  (void)c;
}

TEST(EventFn, OversizeCaptureOverflowsToHeapAndStillWorks) {
  std::uint64_t a = 1, b = 2, c = 3, d = 4;
  std::uint64_t sum = 0;
  std::uint64_t* out = &sum;
  std::uint64_t n = 0;
  {
    EventFn f;
    n = allocs_during([&] {
      f = EventFn([a, b, c, d, out] { *out = a + b + c + d; });  // 40 bytes
    });
    EXPECT_FALSE(f.is_inline());
    f();
  }
  EXPECT_EQ(sum, 10u);
  EXPECT_GE(n, 1u);  // the overflow path allocates exactly once for the body
}

TEST(EventFn, FunctionPointersAreInline) {
  static int hits;
  hits = 0;
  void (*fp)() = [] { ++hits; };
  const std::uint64_t n = allocs_during([&] {
    EventFn f(fp);
    EXPECT_TRUE(f.is_inline());
    f();
    EventFn g([] { ++hits; });  // capture-free lambda: same fast path
    EXPECT_TRUE(g.is_inline());
    g();
  });
  EXPECT_EQ(n, 0u);
  EXPECT_EQ(hits, 2);
}

TEST(EventFn, MoveTransfersAndEmptiesSource) {
  int hits = 0;
  int* p = &hits;
  EventFn a([p] { ++*p; });
  EventFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EventFn c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move)
  c();
  EXPECT_EQ(hits, 2);
}

TEST(EventFn, NonTrivialInlineCaptureRelocatesOwnership) {
  // shared_ptr is 16 bytes (inline) but not trivially copyable: moves must
  // go through the relocate path and the refcount must stay exact.
  auto owner = std::make_shared<int>(41);
  std::weak_ptr<int> watch = owner;
  {
    EventFn a([owner] { ++*owner; });
    EXPECT_TRUE(a.is_inline());
    owner.reset();
    EXPECT_EQ(watch.use_count(), 1);  // held by a's capture only
    EventFn b(std::move(a));
    EXPECT_EQ(watch.use_count(), 1);  // relocated, not duplicated
    b();
    EXPECT_EQ(*watch.lock(), 42);
  }
  EXPECT_TRUE(watch.expired());  // destroying the EventFn released it
}

TEST(EventFn, ResetDestroysHeldCallable) {
  auto owner = std::make_shared<int>(0);
  std::weak_ptr<int> watch = owner;
  EventFn f([owner] {});
  owner.reset();
  EXPECT_FALSE(watch.expired());
  f.reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_FALSE(static_cast<bool>(f));
}

// --- the engine-level no-allocation guarantee (acceptance criterion) ---

TEST(EventFn, EngineScheduleCancelFireAllocationFreeWhenWarm) {
  constexpr int kBatch = 64;
  Engine e;
  std::uint64_t fired = 0;
  std::uint64_t* sink = &fired;

  // Warm-up: size the slab, the free list, and the heap's backing vector to
  // the working set used below.
  std::vector<EventId> ids;
  ids.reserve(2 * kBatch);
  for (int i = 0; i < 2 * kBatch; ++i) {
    ids.push_back(e.schedule_after(i + 1, [sink] { ++*sink; }));
  }
  for (int i = 0; i < kBatch; ++i) e.cancel(ids[static_cast<size_t>(2 * i)]);
  e.run();
  ids.clear();

  // Steady state: schedule + fire and schedule + cancel with inline-capacity
  // callbacks must not touch the heap at all.
  const std::uint64_t n = allocs_during([&] {
    for (int round = 0; round < 50; ++round) {
      for (int i = 0; i < kBatch; ++i) {
        ids.push_back(e.schedule_after(i + 1, [sink] { ++*sink; }));
      }
      for (int i = 0; i < kBatch; i += 2) {
        e.cancel(ids[static_cast<size_t>(i)]);
      }
      e.run();
      ids.clear();
    }
  });
  EXPECT_EQ(n, 0u);
  EXPECT_EQ(fired, 64u + 50u * 32u);
}

TEST(EventFn, EnginePeriodicSteadyStateAllocationFree) {
  Engine e;
  std::uint64_t fires = 0;
  std::uint64_t* sink = &fires;
  const EventId id = e.schedule_periodic(10, 10, [sink] { ++*sink; });
  e.run_until(100);  // warm: slab chunk + heap vector
  const std::uint64_t n = allocs_during([&] { e.run_until(10000); });
  EXPECT_EQ(n, 0u);
  EXPECT_EQ(fires, 1000u);
  e.cancel(id);
  EXPECT_FALSE(e.has_pending());
}

}  // namespace
}  // namespace eo::sim
