// Tests for the synthetic benchmark catalogue and its spawning machinery.
#include "workloads/suite.h"

#include <gtest/gtest.h>

#include <set>

#include "metrics/experiment.h"

namespace eo::workloads {
namespace {

TEST(SuiteCatalogue, Has32BenchmarksInFigure1Order) {
  const auto& s = suite();
  ASSERT_EQ(s.size(), 32u);
  EXPECT_EQ(s.front().name, "blackscholes");
  EXPECT_EQ(s.back().name, "lu");
  std::set<std::string> names;
  for (const auto& b : s) names.insert(b.name);
  EXPECT_EQ(names.size(), 32u) << "duplicate benchmark names";
}

TEST(SuiteCatalogue, OriginsAreValid) {
  for (const auto& b : suite()) {
    EXPECT_TRUE(b.origin == "parsec" || b.origin == "splash2" ||
                b.origin == "npb")
        << b.name;
  }
}

TEST(SuiteCatalogue, Fig9SelectionMatchesPaper) {
  const auto names = fig9_benchmarks();
  EXPECT_EQ(names.size(), 13u);
  for (const auto& n : names) {
    const auto& spec = find_benchmark(n);
    EXPECT_FALSE(spec.excluded_from_fig9) << n;
    EXPECT_FALSE(spec.is_spin_based())
        << n << ": Figure 9 studies blocking synchronization";
  }
  // The paper's exclusions are in the catalogue but not in the selection.
  EXPECT_TRUE(find_benchmark("dedup").excluded_from_fig9);
  EXPECT_TRUE(find_benchmark("cholesky").excluded_from_fig9);
  EXPECT_TRUE(find_benchmark("radiosity").excluded_from_fig9);
}

TEST(SuiteCatalogue, SpinBenchmarksArePresent) {
  EXPECT_TRUE(find_benchmark("lu").is_spin_based());
  EXPECT_TRUE(find_benchmark("volrend").is_spin_based());
  EXPECT_TRUE(find_benchmark("cholesky").is_spin_based());
}

TEST(SuiteCatalogue, SyncIntervalsMatchFigure3Shape) {
  // Most benchmarks synchronize no more often than every ~400us; the
  // shortest blocking interval is facesim's 160us (the paper's minimum).
  int below_160 = 0;
  for (const auto& b : suite()) {
    if (b.sync == SyncKind::kNone || b.is_spin_based()) continue;
    if (b.interval < 160_us && b.sync != SyncKind::kBlockingWavefront) {
      ++below_160;
    }
  }
  EXPECT_LE(below_160, 3);
  EXPECT_EQ(find_benchmark("facesim").interval, 160_us);
}

TEST(SuiteSpawn, BenchmarkRunsToCompletion) {
  const auto& spec = find_benchmark("blackscholes");
  metrics::RunConfig rc;
  rc.cpus = 4;
  rc.sockets = 1;
  rc.ref_footprint = spec.ref_footprint();
  const auto r = metrics::run_experiment(rc, [&](kern::Kernel& k) {
    spawn_benchmark(k, spec, 8, 1, 0.05);
  });
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.exec_time, 0);
}

TEST(SuiteSpawn, EverySyncKindCompletesSmall) {
  // One representative per synchronization kind, tiny scale.
  for (const char* name : {"swaptions", "canneal", "ocean", "ua", "dedup",
                           "volrend", "lu"}) {
    const auto& spec = find_benchmark(name);
    metrics::RunConfig rc;
    rc.cpus = 4;
    rc.sockets = 2;
    rc.ref_footprint = spec.ref_footprint();
    rc.deadline = 120_s;
    const auto r = metrics::run_experiment(rc, [&](kern::Kernel& k) {
      spawn_benchmark(k, spec, 8, 1, 0.02);
    });
    EXPECT_TRUE(r.completed) << name;
  }
}

TEST(SuiteSpawn, StrongScalingKeepsTotalWork) {
  // Doubling threads halves the per-round chunk: total compute stays ~equal,
  // so on ample cores the 16T run is at most ~2x faster, not 2x slower.
  const auto& spec = find_benchmark("barnes");
  auto run = [&](int threads) {
    metrics::RunConfig rc;
    rc.cpus = 16;
    rc.sockets = 2;
    rc.ref_footprint = spec.ref_footprint();
    return metrics::run_experiment(rc, [&](kern::Kernel& k) {
      spawn_benchmark(k, spec, threads, 1, 0.05);
    });
  };
  const auto r8 = run(8);
  const auto r16 = run(16);
  ASSERT_TRUE(r8.completed);
  ASSERT_TRUE(r16.completed);
  EXPECT_LT(r16.exec_time, r8.exec_time);
  EXPECT_GT(r16.exec_time, r8.exec_time / 4);
}

}  // namespace
}  // namespace eo::workloads
