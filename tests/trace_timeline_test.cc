// TimelineAnalyzer cross-checks: replaying a kernel run's trace must
// re-derive the kernel's own live counters — context switches, wakeups, VB
// parks and flag-check quanta, BWD deschedules — and reproduce the
// wakeup-latency histogram the kernel recorded. Skips in EO_TRACE=OFF
// builds, where runs emit no events.
#include <gtest/gtest.h>

#include <numeric>

#include "metrics/experiment.h"
#include "trace/timeline.h"
#include "workloads/suite.h"

namespace eo {
namespace {

using metrics::RunConfig;
using metrics::RunResult;
using metrics::run_experiment;

RunResult traced_run(const char* bench, core::Features f) {
  const auto& spec = workloads::find_benchmark(bench);
  RunConfig rc;
  rc.cpus = 4;
  rc.sockets = 2;
  rc.features = f;
  rc.ref_footprint = spec.ref_footprint();
  rc.deadline = 300_s;
  rc.trace.enabled = true;
  rc.trace.ring_capacity = 1u << 20;
  return run_experiment(rc, [&](kern::Kernel& k) {
    workloads::spawn_benchmark(k, spec, 16, 42, 0.05);
  });
}

#define SKIP_IF_UNTRACED(r)                                              \
  do {                                                                   \
    ASSERT_TRUE((r).trace != nullptr);                                   \
    if ((r).trace->events.empty()) {                                     \
      GTEST_SKIP() << "EO_TRACE=OFF build: no instrumentation compiled"; \
    }                                                                    \
  } while (0)

TEST(TraceTimeline, ReplayMatchesSchedStats) {
  const auto r = traced_run("cg", core::Features::optimized());
  SKIP_IF_UNTRACED(r);
  ASSERT_EQ(r.trace->dropped, 0u);
  const auto tl = trace::TimelineAnalyzer::analyze(*r.trace);
  EXPECT_EQ(tl.events, r.trace->events.size());
  EXPECT_EQ(tl.context_switches, r.stats.context_switches);
  EXPECT_EQ(tl.wakeups, r.stats.wakeups);
  EXPECT_EQ(tl.vb_parks, r.stats.vb_parks);
  EXPECT_EQ(tl.vb_skip_quanta, r.stats.vb_check_quanta);
  EXPECT_EQ(tl.bwd_desched, r.stats.bwd_descheduled);
  EXPECT_EQ(tl.bwd_desched_true + tl.bwd_desched_false, tl.bwd_desched);
  // Per-task skip counts sum to the total.
  const auto sum = std::accumulate(
      tl.vb_skips_by_tid.begin(), tl.vb_skips_by_tid.end(), std::uint64_t{0},
      [](std::uint64_t acc, const auto& kv) { return acc + kv.second; });
  EXPECT_EQ(sum, tl.vb_skip_quanta);
}

TEST(TraceTimeline, WakeupLatencyReproducesKernelHistogram) {
  const auto r = traced_run("cg", core::Features::optimized());
  SKIP_IF_UNTRACED(r);
  ASSERT_EQ(r.trace->dropped, 0u);
  const auto tl = trace::TimelineAnalyzer::analyze(*r.trace);
  ASSERT_GT(r.wakeup_latency.total_count(), 0u);
  EXPECT_EQ(tl.wakeup_latency.total_count(), r.wakeup_latency.total_count());
  // The paper-facing acceptance bound is 1%; the records carry the exact
  // latencies the kernel histogrammed, so the quantiles match exactly.
  EXPECT_EQ(tl.wakeup_latency.p50(), r.wakeup_latency.p50());
  EXPECT_EQ(tl.wakeup_latency.p99(), r.wakeup_latency.p99());
  EXPECT_EQ(tl.wakeup_latency.min(), r.wakeup_latency.min());
  EXPECT_EQ(tl.wakeup_latency.max(), r.wakeup_latency.max());
}

TEST(TraceTimeline, RqDepthTimelineIsConsistent) {
  const auto r = traced_run("cg", core::Features::vanilla());
  SKIP_IF_UNTRACED(r);
  const auto tl = trace::TimelineAnalyzer::analyze(*r.trace);
  ASSERT_EQ(tl.rq_depth.size(), static_cast<std::size_t>(r.trace->n_cores));
  bool any = false;
  for (const auto& core_points : tl.rq_depth) {
    SimTime prev = -1;
    for (const auto& p : core_points) {
      EXPECT_GE(p.ts, prev);  // time-ordered per core
      prev = p.ts;
      any = true;
    }
  }
  EXPECT_TRUE(any);
  EXPECT_GE(tl.span_end, tl.span_begin);
}

TEST(TraceTimeline, VanillaRunHasNoVbOrBwdRecords) {
  const auto r = traced_run("cg", core::Features::vanilla());
  SKIP_IF_UNTRACED(r);
  const auto tl = trace::TimelineAnalyzer::analyze(*r.trace);
  EXPECT_EQ(tl.vb_parks, 0u);
  EXPECT_EQ(tl.vb_skip_quanta, 0u);
  EXPECT_EQ(tl.bwd_samples, 0u);
  EXPECT_EQ(tl.bwd_desched, 0u);
  EXPECT_GT(tl.context_switches, 0u);
}

}  // namespace
}  // namespace eo
