#include "epollsim/epoll.h"

#include "common/logging.h"

namespace eo::epollsim {

int EpollTable::create() {
  const int id = static_cast<int>(instances_.size());
  instances_.emplace_back();
  instances_.back().id = id;
  return id;
}

EpollInstance& EpollTable::get(int epfd) {
  EO_CHECK(epfd >= 0 && epfd < static_cast<int>(instances_.size()))
      << "bad epoll fd " << epfd;
  return instances_[static_cast<size_t>(epfd)];
}

const EpollInstance& EpollTable::get(int epfd) const {
  EO_CHECK(epfd >= 0 && epfd < static_cast<int>(instances_.size()))
      << "bad epoll fd " << epfd;
  return instances_[static_cast<size_t>(epfd)];
}

bool EpollTable::remove_waiter(EpollInstance& ep, const kern::Task* task) {
  for (auto it = ep.waiters.begin(); it != ep.waiters.end(); ++it) {
    if (it->task == task) {
      ep.waiters.erase(it);
      return true;
    }
  }
  return false;
}

}  // namespace eo::epollsim
