#include "epollsim/epoll.h"

#include "common/logging.h"

namespace eo::epollsim {

int EpollTable::create() {
  const int id = static_cast<int>(instances_.size());
  instances_.emplace_back();
  instances_.back().id = id;
  return id;
}

EpollInstance& EpollTable::get(int epfd) {
  EO_CHECK(epfd >= 0 && epfd < static_cast<int>(instances_.size()))
      << "bad epoll fd " << epfd;
  return instances_[static_cast<size_t>(epfd)];
}

const EpollInstance& EpollTable::get(int epfd) const {
  EO_CHECK(epfd >= 0 && epfd < static_cast<int>(instances_.size()))
      << "bad epoll fd " << epfd;
  return instances_[static_cast<size_t>(epfd)];
}

bool EpollTable::remove_waiter(EpollInstance& ep, const kern::Task* task) {
  return ep.waiters.erase_first(
      [task](const EpollWaiter& w) { return w.task == task; });
}

}  // namespace eo::epollsim
