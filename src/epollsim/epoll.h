// Epoll subsystem data structures.
//
// Models event-based blocking as used by memcached/libevent: an epoll
// instance accumulates ready events; epoll_wait consumes one or blocks.
// Waiters block either by vanilla sleep or — with VB enabled for epoll, as
// the paper implemented ("we implemented VB in epoll by removing the sleep
// queue and emulating sleeping via schedule skipping") — by VB parking.
//
// As with futex, orchestration lives in the Kernel; this module owns the
// instance table.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "kern/klock.h"

namespace eo::kern {
struct Task;
}

namespace eo::epollsim {

struct EpollWaiter {
  kern::Task* task = nullptr;
  bool vb = false;
};

struct EpollInstance {
  int id = -1;
  kern::KLock lock;
  /// Posted-but-unconsumed event payloads (FIFO).
  std::deque<std::uint64_t> ready;
  /// Tasks blocked in epoll_wait (FIFO).
  std::deque<EpollWaiter> waiters;
  /// Diagnostics.
  std::uint64_t posted = 0;
  std::uint64_t consumed = 0;
};

class EpollTable {
 public:
  /// Creates a new instance; returns its fd.
  int create();

  EpollInstance& get(int epfd);
  const EpollInstance& get(int epfd) const;

  /// Removes a specific waiter. Returns true if found.
  bool remove_waiter(EpollInstance& ep, const kern::Task* task);

  std::size_t size() const { return instances_.size(); }

 private:
  std::vector<EpollInstance> instances_;
};

}  // namespace eo::epollsim
