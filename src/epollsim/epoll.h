// Epoll subsystem data structures.
//
// Models event-based blocking as used by memcached/libevent: an epoll
// instance accumulates ready events; epoll_wait consumes one or blocks.
// Waiters block either by vanilla sleep or — with VB enabled for epoll, as
// the paper implemented ("we implemented VB in epoll by removing the sleep
// queue and emulating sleeping via schedule skipping") — by VB parking.
//
// As with futex, orchestration lives in the Kernel; this module owns the
// instance table.
#pragma once

#include <cstdint>
#include <vector>

#include "common/fifo_ring.h"
#include "kern/klock.h"
#include "obs/metrics.h"
#include "trace/trace.h"

namespace eo::kern {
struct Task;
}

namespace eo::epollsim {

struct EpollWaiter {
  kern::Task* task = nullptr;
  bool vb = false;
};

struct EpollInstance {
  int id = -1;
  kern::KLock lock;
  /// Posted-but-unconsumed event payloads (FIFO). A ring, not a deque: the
  /// open-loop serving path posts and consumes millions of events per run,
  /// and deque block churn would put heap traffic on every request.
  FifoRing<std::uint64_t> ready;
  /// Tasks blocked in epoll_wait (FIFO).
  FifoRing<EpollWaiter> waiters;
  /// Diagnostics.
  std::uint64_t posted = 0;
  std::uint64_t consumed = 0;
};

class EpollTable {
 public:
  /// Wires the event tracer (may be null).
  void set_tracer(trace::Tracer* t) { tracer_ = t; }

  /// Wires the metric counters: instance-lock acquisitions and the
  /// contended subset.
  void set_metrics(obs::Counter locks, obs::Counter contended) {
    m_locks_ = locks;
    m_contended_ = contended;
  }

  /// Creates a new instance; returns its fd.
  int create();

  EpollInstance& get(int epfd);
  const EpollInstance& get(int epfd) const;

  /// Acquires the instance lock at `now` for `hold`, tracing the queueing
  /// delay as a kEpollLock record attributed to `core`/`tid`. Returns the
  /// wait time; the caller's total cost is wait + hold. Inline for the same
  /// reason as FutexTable::lock_bucket.
  SimDuration lock_instance(EpollInstance& ep, SimTime now, SimDuration hold,
                            int core, std::int32_t tid) {
    const SimDuration wait = ep.lock.acquire(now, hold);
    m_locks_.inc();
    if (wait > 0) m_contended_.inc();
    EO_TRACE_EVENT(tracer_, core, trace::EventKind::kEpollLock, tid,
                   static_cast<std::uint64_t>(wait),
                   static_cast<std::uint64_t>(hold));
    return wait;
  }

  /// Removes a specific waiter. Returns true if found.
  bool remove_waiter(EpollInstance& ep, const kern::Task* task);

  std::size_t size() const { return instances_.size(); }

 private:
  std::vector<EpollInstance> instances_;
  trace::Tracer* tracer_ = nullptr;
  obs::Counter m_locks_;
  obs::Counter m_contended_;
};

}  // namespace eo::epollsim
