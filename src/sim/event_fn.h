// EventFn: the engine's callback type — a move-only `void()` callable with
// small-buffer inline storage.
//
// The discrete-event hot loop stores, moves, and invokes one callback per
// event; `std::function` there meant a possible heap allocation per schedule
// and a type-erased manager call per move. EventFn is sized for the kernel's
// actual captures (a `this` pointer plus one or two words: `[this, &c]`,
// `[this, t, w]`, `[this, chain]`) and follows the same cure applied to spin
// predicates (`kern::SpinPredicate`): the common case is a flat value.
//
//  * Callables with `sizeof <= kInlineSize` (3 pointers), pointer alignment,
//    and a noexcept move constructor are stored inline — scheduling them
//    never allocates. Trivially-copyable ones (every capture-of-pointers
//    lambda, plain function pointers, capture-free lambdas) additionally
//    move by memcpy with no per-type code at all.
//  * Larger or over-aligned callables fall back to one heap allocation, so
//    the type stays a drop-in replacement for `std::function<void()>`.
//
// The inline-size contract is part of the engine's performance surface:
// `tests/sim_event_fn_test.cc` asserts both the no-allocation guarantee and
// the exact capacity, so growing a kernel lambda past three words is a
// deliberate, test-visible decision.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace eo::sim {

class EventFn {
 public:
  /// Inline capture capacity, in bytes (three pointers' worth).
  static constexpr std::size_t kInlineSize = 3 * sizeof(void*);

  EventFn() noexcept = default;
  EventFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                     std::is_invocable_r_v<void, D&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (sizeof(D) <= kInlineSize &&
                  alignof(D) <= alignof(void*) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      if constexpr (std::is_trivially_copyable_v<D> &&
                    std::is_trivially_destructible_v<D>) {
        ops_ = &InlineOps<D>::kTrivial;
      } else {
        ops_ = &InlineOps<D>::kOps;
      }
    } else {
      ptr_slot() = new D(std::forward<F>(f));
      ops_ = &HeapOps<D>::kOps;
    }
  }

  EventFn(EventFn&& o) noexcept { move_from(o); }
  EventFn& operator=(EventFn&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  /// Invokes the callable. Precondition: non-empty.
  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Destroys the held callable (no-op when empty).
  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  /// True when the callable lives in the inline buffer (test introspection).
  bool is_inline() const noexcept { return ops_ != nullptr && !ops_->heap; }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs into `dst` and destroys `src`. Null means the bytes
    /// are trivially relocatable: moving is a memcpy of the inline buffer
    /// (also correct for the heap case, which relocates its pointer).
    void (*relocate)(void* dst, void* src) noexcept;
    /// Null means trivially destructible (nothing owned).
    void (*destroy)(void* storage) noexcept;
    bool heap;
  };

  template <class D>
  struct InlineOps {
    static D* obj(void* s) { return std::launder(reinterpret_cast<D*>(s)); }
    static void invoke(void* s) { (*obj(s))(); }
    static void relocate(void* dst, void* src) noexcept {
      D* from = obj(src);
      ::new (dst) D(std::move(*from));
      from->~D();
    }
    static void destroy(void* s) noexcept { obj(s)->~D(); }
    static constexpr Ops kTrivial{&invoke, nullptr, nullptr, false};
    static constexpr Ops kOps{&invoke, &relocate, &destroy, false};
  };

  template <class D>
  struct HeapOps {
    static D* obj(void* s) {
      return *std::launder(reinterpret_cast<D**>(s));
    }
    static void invoke(void* s) { (*obj(s))(); }
    static void destroy(void* s) noexcept { delete obj(s); }
    // relocate is null: moving a heap callable memcpys its pointer.
    static constexpr Ops kOps{&invoke, nullptr, &destroy, true};
  };

  void*& ptr_slot() { return *reinterpret_cast<void**>(storage_); }

  void move_from(EventFn& o) noexcept {
    ops_ = o.ops_;
    if (ops_ != nullptr) {
      if (ops_->relocate != nullptr) {
        ops_->relocate(storage_, o.storage_);
      } else {
        std::memcpy(storage_, o.storage_, kInlineSize);
      }
      o.ops_ = nullptr;
    }
  }

  alignas(void*) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

static_assert(sizeof(EventFn) == 4 * sizeof(void*),
              "EventFn must stay four words: inline buffer + ops pointer");

}  // namespace eo::sim
