// Discrete-event simulation engine.
//
// The engine owns the simulated clock and a min-heap of pending events. All
// kernel activity (scheduler ticks, timer interrupts, compute completions,
// wakeups) is expressed as events. The engine is strictly single-threaded:
// one engine per simulated machine, and benches parallelize across engines,
// never within one.
//
// Hot-path layout (see src/sim/README.md for the full story):
//
//  * Callbacks are `EventFn` — inline small-buffer callables, so scheduling
//    a kernel lambda (`[this, &c]`-shaped captures) performs no heap
//    allocation and heap sifts move 24-byte PODs, never type-erased objects.
//  * Event state lives in a slab of slots recycled through a free list;
//    `EventId` encodes (slot index, generation), so `cancel` and the
//    fired-check are two array accesses — no hashing, no lazy tombstone set.
//    Stale heap entries (canceled or re-armed slots) are recognized by a
//    generation mismatch and skipped when popped.
//  * Periodic events (`schedule_periodic`) re-arm in place: one slot and one
//    callback for the lifetime of the timer, one heap push per fire.
//
// Determinism: events at equal timestamps fire in insertion order (a
// monotonically increasing sequence number breaks ties), so a run is a pure
// function of the configuration and RNG seeds. A periodic event's next
// occurrence takes its sequence number at fire time, immediately before the
// callback runs — exactly where a self-re-arming callback would schedule it,
// so the periodic path is order-identical to the pop-push pattern it
// replaces.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "common/units.h"
#include "sim/event_fn.h"

namespace eo::sim {

/// Identifies a scheduled event so it can be canceled: bits [0,32) are the
/// slab slot index, bits [32,64) the slot's generation at arming time.
/// Generations start at 1, so no valid id equals kInvalidEvent.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Single-threaded discrete-event executor.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `when` (>= now). Returns an id
  /// usable with `cancel`.
  EventId schedule_at(SimTime when, EventFn fn);

  /// Schedules `fn` to run `delay` nanoseconds from now.
  EventId schedule_after(SimDuration delay, EventFn fn);

  /// Schedules `fn` to run every `period` nanoseconds, first at
  /// now + first_delay, re-arming in place until canceled. The next
  /// occurrence is armed immediately before each fire, so the callback may
  /// cancel its own id to stop the timer. Counts as one pending event.
  EventId schedule_periodic(SimDuration first_delay, SimDuration period,
                            EventFn fn);

  /// Cancels a pending event (one-shot or periodic). O(1): bumps the slot's
  /// generation so the heap entry is skipped when popped, and recycles the
  /// slot. Canceling an already-fired or invalid id is a no-op.
  void cancel(EventId id);

  /// Runs events until the queue is empty or `deadline` is passed. The clock
  /// is left at the time of the last fired event (or `deadline` if it is
  /// reached). Returns the number of events fired.
  std::uint64_t run_until(SimTime deadline);

  /// Runs until the event queue drains completely. Never returns while a
  /// periodic event is armed.
  std::uint64_t run();

  /// True if any event (not canceled) is pending.
  bool has_pending() const { return live_events_ > 0; }

  /// Number of events fired since construction (each periodic fire counts).
  std::uint64_t events_fired() const { return fired_; }

  // --- slab introspection (tests and diagnostics) ---
  /// Slots ever allocated; bounded by the peak number of concurrently
  /// pending events, not by throughput.
  std::size_t slab_slots() const { return n_slots_; }
  /// Slots currently on the free list.
  std::size_t free_slots() const;

 private:
  // Chunked so slot references stay stable while the slab grows (a periodic
  // callback runs with its slot borrowed; growth must not move slots).
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kNoFreeSlot = 0xffffffffu;

  struct Slot {
    EventFn fn;
    SimDuration period = 0;  ///< > 0 while armed periodic
    /// Bumped on every disarm (fire or cancel); a heap entry is live iff its
    /// recorded generation equals the slot's. Starts at 1 and skips 0 on
    /// wrap so ids never collide with kInvalidEvent.
    std::uint32_t gen = 1;
    std::uint32_t next_free = kNoFreeSlot;  ///< valid while on the free list
  };

  /// Heap entries are flat PODs; the callback stays in the slab and is never
  /// touched by sifts.
  struct HeapEntry {
    SimTime when;
    std::uint64_t seq;  ///< insertion order, breaks equal-timestamp ties
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;  // earlier insertion fires first
    }
  };

  Slot& slot(std::uint32_t i) {
    return chunks_[i >> kChunkShift][i & (kChunkSize - 1)];
  }
  const Slot& slot(std::uint32_t i) const {
    return chunks_[i >> kChunkShift][i & (kChunkSize - 1)];
  }
  static EventId make_id(std::uint32_t idx, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | idx;
  }

  std::uint32_t alloc_slot();
  void retire_slot(Slot& s, std::uint32_t idx);
  std::uint32_t arm(SimTime when, SimDuration period, EventFn fn);
  /// Fires the heap head if it is live and due by `deadline`. Returns false
  /// when the head is past the deadline or the heap is empty (stale entries
  /// are drained so the caller's emptiness/peek checks see a live event).
  bool fire_next(SimTime deadline);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
  std::uint64_t live_events_ = 0;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, Later> heap_;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t n_slots_ = 0;
  std::uint32_t free_head_ = kNoFreeSlot;
};

}  // namespace eo::sim
