// Discrete-event simulation engine.
//
// The engine owns the simulated clock and a min-heap of pending events. All
// kernel activity (scheduler ticks, timer interrupts, compute completions,
// wakeups) is expressed as events. The engine is strictly single-threaded:
// one engine per simulated machine, and benches parallelize across engines,
// never within one.
//
// Determinism: events at equal timestamps fire in insertion order (a
// monotonically increasing sequence number breaks ties), so a run is a pure
// function of the configuration and RNG seeds.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/units.h"

namespace eo::sim {

/// Identifies a scheduled event so it can be canceled.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Single-threaded discrete-event executor.
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `when` (>= now). Returns an id
  /// usable with `cancel`.
  EventId schedule_at(SimTime when, std::function<void()> fn);

  /// Schedules `fn` to run `delay` nanoseconds from now.
  EventId schedule_after(SimDuration delay, std::function<void()> fn);

  /// Cancels a pending event. Canceling an already-fired or invalid id is a
  /// no-op (lazy deletion: the heap entry is skipped when popped).
  void cancel(EventId id);

  /// Runs events until the queue is empty or `deadline` is passed. The clock
  /// is left at the time of the last fired event (or `deadline` if it is
  /// reached). Returns the number of events fired.
  std::uint64_t run_until(SimTime deadline);

  /// Runs until the event queue drains completely.
  std::uint64_t run();

  /// True if any event (not canceled) is pending.
  bool has_pending() const { return live_events_ > 0; }

  /// Number of events fired since construction.
  std::uint64_t events_fired() const { return fired_; }

 private:
  struct Event {
    SimTime when;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;  // earlier insertion fires first
    }
  };

  bool pop_next(Event& out);

  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t fired_ = 0;
  std::uint64_t live_events_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  // Ids scheduled but not yet fired or canceled. Cancellation is lazy: the
  // heap entry stays and is skipped when popped.
  std::unordered_set<EventId> pending_;
};

}  // namespace eo::sim
