#include "sim/engine.h"

#include <limits>

#include "common/logging.h"

namespace eo::sim {

std::uint32_t Engine::alloc_slot() {
  if (free_head_ != kNoFreeSlot) {
    const std::uint32_t idx = free_head_;
    Slot& s = slot(idx);
    free_head_ = s.next_free;
    s.next_free = kNoFreeSlot;
    return idx;
  }
  if ((n_slots_ & (kChunkSize - 1)) == 0) {
    chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
  }
  return n_slots_++;
}

void Engine::retire_slot(Slot& s, std::uint32_t idx) {
  // Invalidate every id and heap entry minted for this arming. Skipping 0 on
  // wrap keeps make_id() != kInvalidEvent; a stale entry colliding after a
  // full 2^32 reuse cycle of one slot is beyond any simulated horizon.
  if (++s.gen == 0) s.gen = 1;
  s.period = 0;
  s.next_free = free_head_;
  free_head_ = idx;
}

std::uint32_t Engine::arm(SimTime when, SimDuration period, EventFn fn) {
  const std::uint32_t idx = alloc_slot();
  Slot& s = slot(idx);
  s.fn = std::move(fn);
  s.period = period;
  heap_.push(HeapEntry{when, next_seq_++, idx, s.gen});
  ++live_events_;
  return idx;
}

EventId Engine::schedule_at(SimTime when, EventFn fn) {
  EO_CHECK_GE(when, now_) << "event scheduled in the past";
  EO_CHECK(fn) << "empty event callback";
  const std::uint32_t idx = arm(when, 0, std::move(fn));
  return make_id(idx, slot(idx).gen);
}

EventId Engine::schedule_after(SimDuration delay, EventFn fn) {
  EO_CHECK_GE(delay, 0);
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Engine::schedule_periodic(SimDuration first_delay, SimDuration period,
                                  EventFn fn) {
  EO_CHECK_GE(first_delay, 0);
  EO_CHECK_GT(period, 0);
  EO_CHECK(fn) << "empty event callback";
  const std::uint32_t idx = arm(now_ + first_delay, period, std::move(fn));
  return make_id(idx, slot(idx).gen);
}

void Engine::cancel(EventId id) {
  if (id == kInvalidEvent) return;
  const auto idx = static_cast<std::uint32_t>(id);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (idx >= n_slots_) return;
  Slot& s = slot(idx);
  if (s.gen != gen) return;  // already fired, canceled, or slot reused
  s.fn.reset();              // release captures immediately
  retire_slot(s, idx);
  --live_events_;
}

bool Engine::fire_next(SimTime deadline) {
  for (;;) {
    if (heap_.empty()) return false;
    const HeapEntry top = heap_.top();
    Slot* s = &slot(top.slot);
    if (s->gen != top.gen) {
      heap_.pop();  // stale: canceled (or the slot was since recycled)
      continue;
    }
    if (top.when > deadline) return false;
    heap_.pop();
    now_ = top.when;
    ++fired_;
    if (s->period > 0) {
      // Re-arm in place: same slot, same generation, next occurrence takes
      // its sequence number now — the exact point a self-re-arming callback
      // would schedule it, preserving equal-timestamp insertion order.
      heap_.push(
          HeapEntry{top.when + s->period, next_seq_++, top.slot, top.gen});
      // Borrow the callback for the call: it may cancel its own id (which
      // resets the slot) or schedule events that grow the slab.
      EventFn fn = std::move(s->fn);
      fn();
      Slot& again = slot(top.slot);
      if (again.gen == top.gen) {
        again.fn = std::move(fn);
      }
      // else: the callback canceled the timer; the borrowed fn dies here and
      // the re-armed heap entry is skipped as stale when it surfaces.
    } else {
      EventFn fn = std::move(s->fn);
      retire_slot(*s, top.slot);
      --live_events_;
      fn();
    }
    return true;
  }
}

std::uint64_t Engine::run_until(SimTime deadline) {
  std::uint64_t n = 0;
  while (fire_next(deadline)) ++n;
  if (now_ < deadline) now_ = deadline;
  return n;
}

std::uint64_t Engine::run() {
  std::uint64_t n = 0;
  const SimTime forever = std::numeric_limits<SimTime>::max();
  while (fire_next(forever)) ++n;
  return n;
}

std::size_t Engine::free_slots() const {
  std::size_t n = 0;
  for (std::uint32_t i = free_head_; i != kNoFreeSlot; i = slot(i).next_free) {
    ++n;
  }
  return n;
}

}  // namespace eo::sim
