#include "sim/engine.h"

#include "common/logging.h"

namespace eo::sim {

EventId Engine::schedule_at(SimTime when, std::function<void()> fn) {
  EO_CHECK_GE(when, now_) << "event scheduled in the past";
  const EventId id = next_id_++;
  heap_.push(Event{when, id, std::move(fn)});
  pending_.insert(id);
  ++live_events_;
  return id;
}

EventId Engine::schedule_after(SimDuration delay, std::function<void()> fn) {
  EO_CHECK_GE(delay, 0);
  return schedule_at(now_ + delay, std::move(fn));
}

void Engine::cancel(EventId id) {
  if (id == kInvalidEvent) return;
  // Only a still-pending event can be canceled; canceling a fired event is a
  // harmless no-op.
  if (pending_.erase(id) > 0) --live_events_;
}

bool Engine::pop_next(Event& out) {
  while (!heap_.empty()) {
    // priority_queue::top is const; the function object must be moved out, so
    // we const_cast on the way to pop. This is the standard idiom; the heap
    // invariant is unaffected because the element is removed immediately.
    Event& top = const_cast<Event&>(heap_.top());
    if (pending_.find(top.id) == pending_.end()) {
      heap_.pop();  // canceled; skip
      continue;
    }
    out = std::move(top);
    heap_.pop();
    return true;
  }
  return false;
}

std::uint64_t Engine::run_until(SimTime deadline) {
  std::uint64_t n = 0;
  Event ev;
  for (;;) {
    // Skip canceled entries so the deadline peek sees a live event.
    while (!heap_.empty() &&
           pending_.find(heap_.top().id) == pending_.end()) {
      heap_.pop();
    }
    if (heap_.empty() || heap_.top().when > deadline) break;
    if (!pop_next(ev)) break;
    pending_.erase(ev.id);
    --live_events_;
    now_ = ev.when;
    ++fired_;
    ++n;
    ev.fn();
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

std::uint64_t Engine::run() {
  std::uint64_t n = 0;
  Event ev;
  while (pop_next(ev)) {
    pending_.erase(ev.id);
    --live_events_;
    now_ = ev.when;
    ++fired_;
    ++n;
    ev.fn();
  }
  return n;
}

}  // namespace eo::sim
