// Performance-monitoring-counter window accumulator.
//
// BWD configures two PMCs per core — L1D misses and dTLB misses — and reads
// and clears them every monitoring interval. This class is that pair of
// counters plus the retired-instruction count used by tests and the timer
// overhead accounting.
#pragma once

#include <cstdint>

#include "hw/instr_stream.h"

namespace eo::hw {

class Pmc {
 public:
  void accumulate(const PmcSample& s) {
    instructions_ += s.instructions;
    l1d_misses_ += s.l1d_misses;
    tlb_misses_ += s.tlb_misses;
  }

  std::uint64_t instructions() const { return instructions_; }
  std::uint64_t l1d_misses() const { return l1d_misses_; }
  std::uint64_t tlb_misses() const { return tlb_misses_; }

  /// BWD heuristics #2 and #3: no misses of either kind in the window.
  bool window_miss_free() const { return l1d_misses_ == 0 && tlb_misses_ == 0; }

  void clear() {
    instructions_ = 0;
    l1d_misses_ = 0;
    tlb_misses_ = 0;
  }

 private:
  std::uint64_t instructions_ = 0;
  std::uint64_t l1d_misses_ = 0;
  std::uint64_t tlb_misses_ = 0;
};

}  // namespace eo::hw
