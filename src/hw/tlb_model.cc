#include "hw/tlb_model.h"

#include <algorithm>

namespace eo::hw {

namespace {
double capped_fraction(double capacity, double demand) {
  if (demand <= 0.0) return 1.0;
  return std::min(1.0, capacity / demand);
}
}  // namespace

double TlbModel::l1_hit_prob(std::uint64_t footprint) const {
  return capped_fraction(static_cast<double>(l1_reach()) * p_.l1_effectiveness,
                         static_cast<double>(footprint));
}

double TlbModel::combined_hit_prob(std::uint64_t footprint) const {
  return capped_fraction(static_cast<double>(l2_reach()) * p_.l2_effectiveness,
                         static_cast<double>(footprint));
}

double TlbModel::random_access_extra_ns(std::uint64_t footprint) const {
  const double p1 = l1_hit_prob(footprint);
  const double p12 = combined_hit_prob(footprint);
  const double p_l2_only = std::max(0.0, p12 - p1);
  const double p_walk = std::max(0.0, 1.0 - p12);
  return p_l2_only * p_.l2_hit_extra_ns + p_walk * p_.walk_extra_ns;
}

double TlbModel::sequential_access_extra_ns(std::uint64_t footprint,
                                            std::uint32_t element_size) const {
  // One translation per page; the hardware page walker overlaps with the
  // stream, so charge ~20% of a walk once per page when the footprint
  // exceeds combined reach, amortized over the elements in a page.
  const double accesses_per_page =
      static_cast<double>(p_.page_size) / static_cast<double>(element_size);
  const double p12 = combined_hit_prob(footprint);
  const double walk_per_page = (1.0 - p12) * 0.2 * p_.walk_extra_ns;
  return walk_per_page / accesses_per_page;
}

}  // namespace eo::hw
