// Two-level data-TLB model.
//
// Matches the paper's testbed (Xeon E5-2695, Broadwell): a 64-entry L1 dTLB
// and a 1536-entry L2 STLB over 4 KB pages, giving translation reach of
// 256 KB and 6 MB respectively. The model is analytic: for a thread randomly
// accessing a resident footprint of F bytes, the probability that a given
// access hits each TLB level follows from how much of the footprint's page
// set fits in that level (with an effectiveness factor < 1 for set-conflict
// effects). This capacity arithmetic is exactly the argument the paper uses
// to explain Figure 4's constructive region.
#pragma once

#include <cstdint>

#include "common/units.h"

namespace eo::hw {

struct TlbParams {
  std::uint32_t l1_entries = 64;
  std::uint32_t l2_entries = 1536;
  std::uint32_t page_size = 4096;
  /// Fraction of nominal capacity usable before conflict misses appear.
  double l1_effectiveness = 0.75;
  double l2_effectiveness = 0.90;
  /// Extra latency of an access whose translation hits only the L2 STLB.
  double l2_hit_extra_ns = 3.0;
  /// Extra latency of a page walk (both levels miss).
  double walk_extra_ns = 25.0;
};

/// Analytic TLB cost model.
class TlbModel {
 public:
  explicit TlbModel(const TlbParams& p = {}) : p_(p) {}

  const TlbParams& params() const { return p_; }

  /// Translation reach (bytes addressable) of each level.
  std::uint64_t l1_reach() const {
    return static_cast<std::uint64_t>(p_.l1_entries) * p_.page_size;
  }
  std::uint64_t l2_reach() const {
    return static_cast<std::uint64_t>(p_.l2_entries) * p_.page_size;
  }

  /// Probability that a uniformly random access into a footprint of
  /// `footprint` bytes finds its translation in the L1 dTLB.
  double l1_hit_prob(std::uint64_t footprint) const;

  /// Probability the translation is found in L1 or L2.
  double combined_hit_prob(std::uint64_t footprint) const;

  /// Expected extra nanoseconds per random access spent on translation, for
  /// a steady-state thread touching `footprint` bytes.
  double random_access_extra_ns(std::uint64_t footprint) const;

  /// Expected extra nanoseconds per access for a *sequential* scan: one new
  /// translation per page, amortized over page_size/element accesses; page
  /// walks largely overlap the streaming so only a small residual is charged.
  double sequential_access_extra_ns(std::uint64_t footprint,
                                    std::uint32_t element_size) const;

 private:
  TlbParams p_;
};

}  // namespace eo::hw
