// Pause-Loop Exiting (PLE) model.
//
// Intel PLE (and AMD Pause Filter) is a *hardware* spin detector that only
// operates on virtual CPUs: when a vCPU executes PAUSE in a tight loop more
// than `gap` times within `window` cycles, the CPU forces a VM exit and the
// hypervisor may yield the pCPU to another vCPU.
//
// The paper's evaluation (Figures 13b and 14) finds PLE ineffective for
// thread oversubscription, for two structural reasons reproduced here:
//  1. It only sees spins whose body contains PAUSE/NOP; user-customized
//     spin loops (NPB lu, SPLASH-2 volrend) never trigger it.
//  2. It acts at vCPU granularity. When *threads* oversubscribe vCPUs, the
//     guest thread keeps spinning when its vCPU resumes, so a directed yield
//     costs a VM exit without freeing the guest's CPU time for the critical
//     thread.
// The model therefore charges VM-exit overhead for PAUSE-based spins in VM
// mode but does not (cannot) deschedule the spinning *thread*.
#pragma once

#include <cstdint>

#include "common/units.h"

namespace eo::hw {

struct PleParams {
  bool enabled = false;
  /// Continuous PAUSE-spinning needed to trigger one exit. Real hardware
  /// uses cycle windows (ple_window=4096 cycles by default in KVM, grown
  /// adaptively); ~10 µs of solid spinning per exit is representative.
  SimDuration spin_per_exit = 10'000;  // ns
  /// Cost of one VM exit + hypervisor directed-yield attempt.
  SimDuration exit_cost = 2'000;  // ns
};

/// Stateless PLE cost model.
class PleModel {
 public:
  explicit PleModel(const PleParams& p = {}) : p_(p) {}

  const PleParams& params() const { return p_; }
  bool enabled() const { return p_.enabled; }

  /// Number of VM exits triggered by `dur` of continuous PAUSE-based
  /// spinning, and the total overhead charged to the spinning vCPU.
  std::uint64_t exits_for(SimDuration dur) const {
    if (!p_.enabled || dur <= 0 || p_.spin_per_exit <= 0) return 0;
    return static_cast<std::uint64_t>(dur / p_.spin_per_exit);
  }

  SimDuration overhead_for(SimDuration dur) const {
    return static_cast<SimDuration>(exits_for(dur)) * p_.exit_cost;
  }

 private:
  PleParams p_;
};

}  // namespace eo::hw
