// Analytic cache-hierarchy model.
//
// Reproduces the capacity arguments of the paper's Section 2.3: the indirect
// cost of a context switch is the sum of (a) lost cache warmth / prefetcher
// disruption when a resuming thread finds its lines evicted, and (b) the
// *steady-state* rate difference from each thread touching a smaller
// per-thread footprint (constructive for TLB-bound random access,
// destructive for L2-resident sequential access).
//
// Geometry matches the paper's Xeon E5-2695 testbed: 32 KB L1D, 256 KB L2
// per core, ~35 MB shared L3 per socket, 64 B lines. Latencies are nominal
// Broadwell numbers at 2.1 GHz.
#pragma once

#include <cstdint>

#include "common/units.h"
#include "hw/tlb_model.h"

namespace eo::hw {

/// Data-access pattern of a compute phase (the four microbenchmark patterns
/// of Figure 4).
enum class AccessPattern {
  kSequentialRead,
  kSequentialRMW,
  kRandomRead,
  kRandomRMW,
};

const char* to_string(AccessPattern p);
bool is_random(AccessPattern p);
bool is_rmw(AccessPattern p);

/// Memory behaviour of a workload phase, used by the scheduler to charge
/// context-switch and migration penalties and to scale compute rates.
struct MemProfile {
  std::uint64_t working_set = 0;  ///< total bytes the program touches
  AccessPattern pattern = AccessPattern::kSequentialRead;
  /// Fraction of execution time that is memory-access bound (0 = pure ALU).
  double mem_intensity = 0.3;
};

struct CacheParams {
  std::uint64_t l1d_bytes = 32ull * 1024;
  std::uint64_t l2_bytes = 256ull * 1024;
  std::uint64_t l3_bytes = 35ull * 1024 * 1024;
  std::uint32_t line_bytes = 64;
  double l1_lat_ns = 2.0;
  double l2_lat_ns = 6.0;
  double l3_lat_ns = 17.0;
  double mem_lat_ns = 85.0;
  /// Usable fraction of capacity before conflict misses.
  double effectiveness = 0.85;
  /// Fraction of a sequential stream's miss latency hidden by the hardware
  /// prefetcher when the stream is undisturbed.
  double prefetch_hide = 0.80;
  /// Per-line cost of re-establishing prefetch streams after a context
  /// switch disrupts sequentiality (calibrated so a 128 MB scan pays ~1 ms
  /// per switch, Figure 4).
  double prefetch_restart_ns_per_line = 1.8;
  /// Extra per-access cost of a store (write buffer pressure).
  double store_extra_ns = 1.0;
};

/// Analytic model; all methods are pure functions of the parameters.
class CacheModel {
 public:
  explicit CacheModel(const CacheParams& cp = {}, const TlbParams& tp = {})
      : p_(cp), tlb_(tp) {}

  const CacheParams& params() const { return p_; }
  const TlbModel& tlb() const { return tlb_; }

  /// Steady-state nanoseconds per 8-byte element access for a thread whose
  /// resident footprint is `footprint` bytes (includes TLB cost).
  double steady_access_ns(AccessPattern pattern, std::uint64_t footprint) const;

  /// One-time penalty (ns) charged when a thread resumes a compute phase on
  /// a core where other threads with combined footprint `others_footprint`
  /// ran since it was switched out.
  SimDuration switch_penalty(AccessPattern pattern, std::uint64_t footprint,
                             std::uint64_t others_footprint) const;

  /// Penalty charged when a thread is migrated to a different core
  /// (cold private caches; colder still across sockets).
  SimDuration migration_penalty(std::uint64_t working_set,
                                bool cross_socket) const;

  /// Multiplier on compute duration for a phase with profile `prof` executed
  /// with `footprint` resident bytes, relative to the same phase executed
  /// with `ref_footprint` (the calibration point). >1 means slower.
  double compute_rate_factor(const MemProfile& prof, std::uint64_t footprint,
                             std::uint64_t ref_footprint) const;

 private:
  double miss_source_latency(std::uint64_t footprint) const;

  CacheParams p_;
  TlbModel tlb_;
};

}  // namespace eo::hw
