// Last Branch Record model.
//
// The real LBR is a 16-entry ring of (from, to) addresses of retired
// branches, with call/return filtering enabled so nested-function spin
// implementations still look uniform. BWD's heuristic #1 asks: "are all 16
// entries identical backward branches?" — equivalently, were the most recent
// >= 16 retired branches the same backward branch?
//
// The model tracks exactly that sufficient statistic: the identity of the
// branch site producing the current uniform run, and the run's length in
// branches. Regular code retires a varied branch stream, which resets the
// run; spin and tight-loop segments extend it.
#pragma once

#include <cstdint>

#include "common/units.h"
#include "hw/instr_stream.h"

namespace eo::hw {

/// Branch-site identifier. Each static spin loop (or tight loop) in a
/// workload has a unique site; kVariedSites marks ordinary code.
using BranchSite = std::int64_t;
inline constexpr BranchSite kVariedSites = -1;

/// Per-core LBR state.
class LbrState {
 public:
  static constexpr int kEntries = 16;

  /// Records that the core executed `dur` of code of the given kind.
  /// `site` identifies the loop for spin/tight segments (use kVariedSites
  /// for regular code; the kind alone does not imply uniform branches).
  void on_execute(SegmentKind kind, BranchSite site, SimDuration dur,
                  const InstrStreamModel& model);

  /// Heuristics #1: all kEntries entries are identical backward branches.
  bool all_entries_identical_backward() const {
    return run_site_ != kVariedSites && run_branches_ >= kEntries;
  }

  /// Site of the current uniform run (kVariedSites if none).
  BranchSite current_site() const { return run_site_; }

  /// Clears the records (done at the end of each BWD monitoring period:
  /// "All the LBR and PMC records are cleared for each monitoring period").
  void clear();

 private:
  BranchSite run_site_ = kVariedSites;
  std::uint64_t run_branches_ = 0;
};

}  // namespace eo::hw
