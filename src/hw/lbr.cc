#include "hw/lbr.h"

namespace eo::hw {

void LbrState::on_execute(SegmentKind kind, BranchSite site, SimDuration dur,
                          const InstrStreamModel& model) {
  if (dur <= 0) return;
  switch (kind) {
    case SegmentKind::kRegular:
      // Varied branch stream: any amount of regular execution replaces the
      // ring contents with non-uniform entries.
      run_site_ = kVariedSites;
      run_branches_ = 0;
      break;
    case SegmentKind::kTightLoop:
    case SegmentKind::kSpin: {
      if (site == run_site_) {
        run_branches_ += model.spin_iterations(dur);
      } else {
        run_site_ = site;
        run_branches_ = model.spin_iterations(dur);
      }
      break;
    }
  }
}

void LbrState::clear() {
  run_site_ = kVariedSites;
  run_branches_ = 0;
}

}  // namespace eo::hw
