// PleModel is header-only; anchor translation unit.
#include "hw/ple.h"
