// Machine topology model.
//
// Models the paper's testbed shape: a dual-socket Xeon (E5-2695-class) with
// optional SMT. Experiments run in a "container" restricted to a subset of
// logical CPUs; the `Topology` describes the CPUs the simulated kernel may
// use and their socket/SMT relationships, which drive NUMA-aware load
// balancing, in-node vs cross-node migration accounting, and the SMT
// throughput penalty.
#pragma once

#include <string>
#include <vector>

namespace eo::hw {

/// One logical CPU visible to the simulated kernel.
struct CoreInfo {
  int id = 0;            ///< dense index [0, n_cores)
  int socket = 0;        ///< NUMA node
  int smt_sibling = -1;  ///< id of the hyper-thread sibling, or -1
};

/// Describes the set of logical CPUs available to a simulation.
class Topology {
 public:
  /// `n_cores` full cores split evenly across `n_sockets` (no SMT).
  static Topology make_cores(int n_cores, int n_sockets = 1);

  /// `n_threads` hyper-threads as sibling pairs on `n_threads / 2` physical
  /// cores, split across `n_sockets`. `n_threads` must be even.
  static Topology make_smt(int n_threads, int n_sockets = 1);

  int n_cores() const { return static_cast<int>(cores_.size()); }
  int n_sockets() const { return n_sockets_; }
  const CoreInfo& core(int id) const { return cores_[static_cast<size_t>(id)]; }
  int socket_of(int id) const { return core(id).socket; }
  bool same_socket(int a, int b) const { return socket_of(a) == socket_of(b); }
  bool smt_enabled() const { return smt_; }

  /// Sibling hyper-thread of `id`, or -1.
  int smt_sibling(int id) const { return core(id).smt_sibling; }

  /// Cores in the given socket.
  std::vector<int> cores_in_socket(int socket) const;

  std::string describe() const;

 private:
  std::vector<CoreInfo> cores_;
  int n_sockets_ = 1;
  bool smt_ = false;
};

/// Throughput factor applied to a hyper-thread whose sibling is also busy.
/// Two active siblings each run at ~60% of a dedicated core, reflecting
/// shared execution ports — the reason Figure 9's 8-hyperthread configuration
/// is slower than 8 full cores.
inline constexpr double kSmtBusySiblingFactor = 0.6;

}  // namespace eo::hw
