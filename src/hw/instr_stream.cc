#include "hw/instr_stream.h"

namespace eo::hw {

const char* to_string(SegmentKind k) {
  switch (k) {
    case SegmentKind::kRegular:
      return "regular";
    case SegmentKind::kTightLoop:
      return "tight-loop";
    case SegmentKind::kSpin:
      return "spin";
  }
  return "?";
}

PmcSample InstrStreamModel::sample(SegmentKind kind, SimDuration dur,
                                   Rng& rng) const {
  PmcSample s;
  if (dur <= 0) return s;
  const double us = to_us(dur);
  switch (kind) {
    case SegmentKind::kRegular: {
      const double instr = p_.instr_per_us * us;
      s.instructions = static_cast<std::uint64_t>(instr);
      s.l1d_misses = rng.poisson(instr * p_.l1_miss_per_instr);
      s.tlb_misses = rng.poisson(instr * p_.tlb_miss_per_instr);
      break;
    }
    case SegmentKind::kTightLoop: {
      // Register-resident loop: full issue rate, essentially no data traffic.
      s.instructions = static_cast<std::uint64_t>(p_.instr_per_us * us);
      s.l1d_misses = 0;
      s.tlb_misses = 0;
      break;
    }
    case SegmentKind::kSpin: {
      s.instructions = spin_iterations(dur) * 3;  // test, compare, branch
      // Occasionally the spun-on line is invalidated by another core and the
      // re-read counts as a miss; this is the only source of BWD false
      // negatives.
      if (rng.chance(p_.spin_stray_miss_prob * us)) s.l1d_misses = 1;
      break;
    }
  }
  return s;
}

std::uint64_t InstrStreamModel::spin_iterations(SimDuration dur) const {
  if (dur <= 0) return 0;
  return static_cast<std::uint64_t>(static_cast<double>(dur) /
                                    p_.spin_iteration_ns);
}

}  // namespace eo::hw
