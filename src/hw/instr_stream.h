// Instruction-stream model for the PMC/LBR machinery.
//
// BWD (Section 3.2) consumes three hardware signals: the last-branch-record
// ring, L1D miss counts, and TLB miss counts. Rather than hard-coding
// detector outcomes, the simulator generates these signals from a stochastic
// model of each code segment, using the rates the paper itself profiled
// across PARSEC/SPLASH-2/NPB: 3000 instructions retired per microsecond,
// one L1D miss per 45 instructions, one TLB miss per 890 instructions
// (≈6667 L1 and ≈337 TLB misses per 100 µs window). Detection then *follows*
// from the model, so sensitivity/specificity are genuine measurements.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/units.h"

namespace eo::hw {

/// Character of the code a task is currently executing, as seen by the PMUs.
enum class SegmentKind {
  /// Ordinary application code: varied branches, the profiled miss rates.
  kRegular,
  /// A tight compute loop with essentially no data traffic (the rare shape
  /// responsible for BWD false positives, Table 3).
  kTightLoop,
  /// A busy-wait loop: identical backward branches, fully cached operands.
  kSpin,
};

const char* to_string(SegmentKind k);

struct InstrProfile {
  double instr_per_us = 3000.0;
  double l1_miss_per_instr = 1.0 / 45.0;
  double tlb_miss_per_instr = 1.0 / 890.0;
  /// Cycles per spin-loop iteration (a few cycles; ~5 iterations per 10 ns
  /// at 2.1 GHz). Expressed as ns per iteration.
  double spin_iteration_ns = 4.0;
  /// Residual probability that a spin window still shows a stray miss (e.g.
  /// the line holding the lock was invalidated by the releasing core); this
  /// is what keeps BWD's true-positive rate just under 100% (Table 2).
  double spin_stray_miss_prob = 0.000015;
};

/// Sampled PMC deltas for a stretch of execution.
struct PmcSample {
  std::uint64_t instructions = 0;
  std::uint64_t l1d_misses = 0;
  std::uint64_t tlb_misses = 0;
};

/// Generates PMC deltas for a segment execution of a given duration.
class InstrStreamModel {
 public:
  explicit InstrStreamModel(const InstrProfile& p = {}) : p_(p) {}

  const InstrProfile& profile() const { return p_; }

  PmcSample sample(SegmentKind kind, SimDuration dur, Rng& rng) const;

  /// Number of spin-loop iterations (== backward branches) executed in `dur`.
  std::uint64_t spin_iterations(SimDuration dur) const;

 private:
  InstrProfile p_;
};

}  // namespace eo::hw
