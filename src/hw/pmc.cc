// Pmc is header-only; this translation unit exists so the build file can
// list every hw component uniformly and to anchor the vtable-free class.
#include "hw/pmc.h"
