#include "hw/topology.h"

#include <sstream>

#include "common/logging.h"

namespace eo::hw {

Topology Topology::make_cores(int n_cores, int n_sockets) {
  EO_CHECK_GT(n_cores, 0);
  EO_CHECK_GT(n_sockets, 0);
  Topology t;
  t.n_sockets_ = n_sockets;
  t.smt_ = false;
  t.cores_.resize(static_cast<size_t>(n_cores));
  // Round-robin in blocks: first half of the cores on socket 0, etc., which
  // mirrors how a container is typically given a contiguous CPU range.
  const int per_socket = (n_cores + n_sockets - 1) / n_sockets;
  for (int i = 0; i < n_cores; ++i) {
    t.cores_[static_cast<size_t>(i)] = CoreInfo{i, i / per_socket, -1};
  }
  return t;
}

Topology Topology::make_smt(int n_threads, int n_sockets) {
  EO_CHECK_GT(n_threads, 0);
  EO_CHECK_EQ(n_threads % 2, 0) << "SMT topology needs an even thread count";
  Topology t;
  t.n_sockets_ = n_sockets;
  t.smt_ = true;
  t.cores_.resize(static_cast<size_t>(n_threads));
  const int n_phys = n_threads / 2;
  const int phys_per_socket = (n_phys + n_sockets - 1) / n_sockets;
  for (int i = 0; i < n_threads; ++i) {
    const int phys = i / 2;
    const int sibling = (i % 2 == 0) ? i + 1 : i - 1;
    t.cores_[static_cast<size_t>(i)] = CoreInfo{i, phys / phys_per_socket, sibling};
  }
  return t;
}

std::vector<int> Topology::cores_in_socket(int socket) const {
  std::vector<int> out;
  for (const auto& c : cores_) {
    if (c.socket == socket) out.push_back(c.id);
  }
  return out;
}

std::string Topology::describe() const {
  std::ostringstream os;
  os << n_cores() << (smt_ ? " hyper-threads" : " cores") << " across "
     << n_sockets_ << " socket(s)";
  return os.str();
}

}  // namespace eo::hw
