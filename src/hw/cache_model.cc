#include "hw/cache_model.h"

#include <algorithm>
#include <cmath>

namespace eo::hw {

const char* to_string(AccessPattern p) {
  switch (p) {
    case AccessPattern::kSequentialRead:
      return "seq-r";
    case AccessPattern::kSequentialRMW:
      return "seq-rmw";
    case AccessPattern::kRandomRead:
      return "rnd-r";
    case AccessPattern::kRandomRMW:
      return "rnd-rmw";
  }
  return "?";
}

bool is_random(AccessPattern p) {
  return p == AccessPattern::kRandomRead || p == AccessPattern::kRandomRMW;
}

bool is_rmw(AccessPattern p) {
  return p == AccessPattern::kSequentialRMW || p == AccessPattern::kRandomRMW;
}

namespace {
double capped(double capacity, double demand) {
  if (demand <= 0.0) return 1.0;
  return std::min(1.0, capacity / demand);
}
}  // namespace

double CacheModel::miss_source_latency(std::uint64_t footprint) const {
  // Which level feeds a streaming miss, by footprint.
  const auto fp = static_cast<double>(footprint);
  if (fp <= static_cast<double>(p_.l2_bytes) * p_.effectiveness) return p_.l2_lat_ns;
  if (fp <= static_cast<double>(p_.l3_bytes) * p_.effectiveness) return p_.l3_lat_ns;
  return p_.mem_lat_ns;
}

double CacheModel::steady_access_ns(AccessPattern pattern,
                                    std::uint64_t footprint) const {
  constexpr double kElementBytes = 8.0;
  if (is_random(pattern)) {
    const auto fp = static_cast<double>(footprint);
    const double h1 = capped(static_cast<double>(p_.l1d_bytes) * p_.effectiveness, fp);
    const double h12 = capped(static_cast<double>(p_.l2_bytes) * p_.effectiveness, fp);
    const double h123 = capped(static_cast<double>(p_.l3_bytes) * 0.95, fp);
    double cost;
    if (is_rmw(pattern)) {
      // Dirty lines must be written back toward L3/memory, so an L2 hit does
      // not save the L3 traffic: charge L2-resident accesses at L3 latency
      // (the paper: "for read-modify-write, the L2 cache is not an important
      // factor").
      cost = h1 * p_.l1_lat_ns + (h123 - h1) * p_.l3_lat_ns +
             (1.0 - h123) * p_.mem_lat_ns + p_.store_extra_ns;
    } else {
      cost = h1 * p_.l1_lat_ns + (h12 - h1) * p_.l2_lat_ns +
             (h123 - h12) * p_.l3_lat_ns + (1.0 - h123) * p_.mem_lat_ns;
    }
    return cost + tlb_.random_access_extra_ns(footprint);
  }
  // Sequential: one line fetch per line_bytes/8 elements, largely hidden by
  // the prefetcher; plus a small TLB residual.
  const double accesses_per_line = p_.line_bytes / kElementBytes;
  const double miss = miss_source_latency(footprint);
  double cost = p_.l1_lat_ns + miss * (1.0 - p_.prefetch_hide) / accesses_per_line;
  if (is_rmw(pattern)) {
    // Writeback doubles the line traffic and adds store cost.
    cost += 0.5 * miss * (1.0 - p_.prefetch_hide) / accesses_per_line +
            0.5 * p_.store_extra_ns;
  }
  return cost + tlb_.sequential_access_extra_ns(footprint, 8);
}

SimDuration CacheModel::switch_penalty(AccessPattern pattern,
                                       std::uint64_t footprint,
                                       std::uint64_t others_footprint) const {
  // If everyone's data fits together in the L2, nothing is lost.
  const double combined =
      static_cast<double>(footprint) + static_cast<double>(others_footprint);
  if (combined <= static_cast<double>(p_.l2_bytes) * p_.effectiveness) return 0;

  const auto line = static_cast<double>(p_.line_bytes);
  if (!is_random(pattern)) {
    // Loss of sequentiality: prefetch streams restart cold across the whole
    // (L3-capped) footprint that will be re-scanned this slice.
    const double lines =
        std::min<double>(static_cast<double>(footprint),
                         static_cast<double>(p_.l3_bytes)) /
        line;
    double ns = lines * p_.prefetch_restart_ns_per_line;
    if (is_rmw(pattern)) ns *= 0.75;  // writeback path overlaps some restart cost
    return static_cast<SimDuration>(ns);
  }
  if (is_rmw(pattern)) {
    // Random RMW: cold-start misses would have written back / missed anyway;
    // the warm-L2 advantage is negligible (paper: L2 not a factor for RMW).
    return 0;
  }
  // Random read: the warm L2 content (up to min(fp, L2)) was evicted; each
  // lost line costs an L3 round-trip when next touched, weighted by the
  // probability it would have been an L2 hit in steady state.
  const double warm_bytes = std::min<double>(static_cast<double>(footprint),
                                             static_cast<double>(p_.l2_bytes) *
                                                 p_.effectiveness);
  const double reuse_prob =
      capped(static_cast<double>(p_.l2_bytes) * p_.effectiveness,
             static_cast<double>(footprint));
  const double ns =
      (warm_bytes / line) * (p_.l3_lat_ns - p_.l2_lat_ns) * reuse_prob;
  return static_cast<SimDuration>(ns);
}

SimDuration CacheModel::migration_penalty(std::uint64_t working_set,
                                          bool cross_socket) const {
  const auto line = static_cast<double>(p_.line_bytes);
  // Private caches (L1+L2) must refill from L3.
  const double priv_bytes = std::min<double>(
      static_cast<double>(working_set), static_cast<double>(p_.l2_bytes));
  double ns = (priv_bytes / line) * (p_.l3_lat_ns - p_.l2_lat_ns);
  if (cross_socket) {
    // The L3-resident share must additionally cross the interconnect.
    const double l3_bytes = std::min<double>(
        static_cast<double>(working_set), static_cast<double>(p_.l3_bytes));
    // Only a fraction is re-touched before the next migration/balance.
    ns += (l3_bytes / line) * (p_.mem_lat_ns - p_.l3_lat_ns) * 0.05;
  }
  return static_cast<SimDuration>(ns);
}

double CacheModel::compute_rate_factor(const MemProfile& prof,
                                       std::uint64_t footprint,
                                       std::uint64_t ref_footprint) const {
  if (prof.mem_intensity <= 0.0 || prof.working_set == 0) return 1.0;
  const double cur = steady_access_ns(prof.pattern, footprint);
  const double ref = steady_access_ns(prof.pattern, ref_footprint);
  if (ref <= 0.0) return 1.0;
  return (1.0 - prof.mem_intensity) + prof.mem_intensity * (cur / ref);
}

}  // namespace eo::hw
