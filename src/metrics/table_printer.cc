#include "metrics/table_printer.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.h"

namespace eo::metrics {

TablePrinter::TablePrinter(std::vector<std::string> headers, std::ostream& os)
    : os_(os), headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  EO_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TablePrinter::integer(std::int64_t v) { return std::to_string(v); }

void TablePrinter::print() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os_ << std::left << std::setw(static_cast<int>(widths[i]) + 2) << row[i];
    }
    os_ << '\n';
  };
  print_row(headers_);
  std::string sep;
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    sep += std::string(widths[i], '-') + "  ";
  }
  os_ << sep << '\n';
  for (const auto& row : rows_) print_row(row);
  os_.flush();
}

void TablePrinter::print_csv() const {
  // RFC 4180: cells containing a comma, quote, CR, or LF are quoted with
  // embedded quotes doubled; everything else is emitted verbatim.
  auto csv_cell = [&](const std::string& cell) {
    if (cell.find_first_of(",\"\r\n") == std::string::npos) {
      os_ << cell;
      return;
    }
    os_ << '"';
    for (char ch : cell) {
      if (ch == '"') os_ << '"';
      os_ << ch;
    }
    os_ << '"';
  };
  auto csv_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os_ << ',';
      csv_cell(row[i]);
    }
    os_ << '\n';
  };
  csv_row(headers_);
  for (const auto& row : rows_) csv_row(row);
  os_.flush();
}

}  // namespace eo::metrics
