// LatencyRecorder is header-only; anchor translation unit.
#include "metrics/latency_recorder.h"
