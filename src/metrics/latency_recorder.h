// Request-latency recorder for the server workloads (memcached, Figure 12).
#pragma once

#include <cstdint>

#include "common/histogram.h"
#include "common/units.h"

namespace eo::metrics {

class LatencyRecorder {
 public:
  void record(SimDuration latency) { hist_.add(latency); }

  std::uint64_t count() const { return hist_.total_count(); }
  double mean_us() const { return to_us(static_cast<SimDuration>(hist_.mean())); }
  double p50_us() const { return to_us(hist_.p50()); }
  double p95_us() const { return to_us(hist_.p95()); }
  double p99_us() const { return to_us(hist_.p99()); }
  double p999_us() const { return to_us(hist_.p999()); }
  double max_us() const { return to_us(hist_.max()); }

  /// Completed operations per second of simulated time.
  double throughput(SimDuration window) const {
    if (window <= 0) return 0.0;
    return static_cast<double>(count()) / to_sec(window);
  }

  void clear() { hist_.clear(); }
  const Histogram& histogram() const { return hist_; }

 private:
  Histogram hist_;
};

}  // namespace eo::metrics
