#include "metrics/experiment.h"

#include "common/logging.h"
#include "hw/topology.h"

namespace eo::metrics {

kern::KernelConfig make_kernel_config(const RunConfig& cfg) {
  kern::KernelConfig kc;
  kc.topo = cfg.smt ? hw::Topology::make_smt(cfg.cpus, cfg.sockets)
                    : hw::Topology::make_cores(cfg.cpus, cfg.sockets);
  kc.features = cfg.features;
  kc.costs = cfg.costs;
  kc.policy = cfg.sched;
  kc.policy_params = cfg.sched_params;
  kc.seed = cfg.seed;
  kc.ref_footprint = cfg.ref_footprint;
  kc.trace = cfg.trace;
  kc.metrics = cfg.metrics;
  kc.taskstats = cfg.taskstats;
  return kc;
}

RunResult run_experiment(const RunConfig& cfg,
                         const std::function<void(kern::Kernel&)>& setup) {
  kern::Kernel k(make_kernel_config(cfg));
  setup(k);
  RunResult r;
  r.completed = k.run_to_exit(cfg.deadline);
  r.exec_time = r.completed ? k.last_exit_time() : k.now();
  r.utilization_percent = k.cpu_utilization_percent();
  r.spin_busy = k.total_spin_busy();
  r.stats = k.stats();
  r.bwd = k.bwd_accuracy();
  r.pinned_violation = k.pinned_violation();
  r.wakeup_latency = k.wakeup_latency();
  if (k.tracer().enabled()) {
    r.trace = std::make_shared<trace::Trace>(k.snapshot_trace());
  }
  if (k.sampler().enabled()) {
    r.metrics = std::make_shared<obs::MetricsDoc>(k.snapshot_metrics());
  }
  if (cfg.taskstats) {
    r.taskstats = std::make_shared<obs::TaskstatsDoc>(k.snapshot_taskstats());
  }
  return r;
}

}  // namespace eo::metrics
