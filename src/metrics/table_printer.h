// Aligned table output for the bench harnesses.
//
// Every bench regenerates a paper table/figure as rows on stdout; this
// printer keeps the output machine-greppable (a stable header, aligned
// columns, and an optional CSV mirror).
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace eo::metrics {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers,
                        std::ostream& os = std::cout);

  /// Adds a row; cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Formats a double with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string integer(std::int64_t v);

  /// Prints the table (header, separator, rows), aligned.
  void print() const;

  /// Prints as CSV (for plotting scripts).
  void print_csv() const;

 private:
  std::ostream& os_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace eo::metrics
