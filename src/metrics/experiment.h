// Experiment harness: one simulated machine run, with the paper's standard
// configurations (vanilla / optimized, container / VM, N cores or N
// hyper-threads) expressed declaratively. Benches compose these into sweeps
// and run independent configurations on host threads via ThreadPool.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/histogram.h"
#include "core/bwd.h"
#include "core/config.h"
#include "kern/kernel.h"
#include "obs/export.h"
#include "obs/sampler.h"
#include "sched/sched_stats.h"
#include "trace/trace.h"

namespace eo::metrics {

struct RunConfig {
  /// Logical CPUs visible to the container.
  int cpus = 8;
  int sockets = 2;
  /// If true, the CPUs are hyper-thread pairs on cpus/2 physical cores.
  bool smt = false;
  core::Features features;
  core::CostModel costs;
  /// Scheduler policy plugin (one of sched::policy_names()).
  std::string sched = "cfs";
  /// Tunables consumed by the non-CFS policies (quantum, history depth...).
  sched::PolicyParams sched_params;
  std::uint64_t seed = 1;
  /// Simulated-time budget; a workload not finishing by then is reported
  /// as incomplete with exec_time == deadline.
  SimTime deadline = 60_s;
  /// Reference per-thread footprint for compute-rate scaling (0 = off).
  std::uint64_t ref_footprint = 0;
  /// Event tracing; when enabled the result carries the merged trace.
  trace::TraceConfig trace;
  /// Live telemetry; when enabled the result carries the eo-metrics doc.
  obs::SamplerConfig metrics;
  /// Per-task delay accounting export: embed the `eo-taskstats` section in
  /// the metrics doc and carry the standalone snapshot in the result.
  bool taskstats = false;
};

struct RunResult {
  bool completed = false;
  SimDuration exec_time = 0;
  double utilization_percent = 0.0;
  SimDuration spin_busy = 0;
  sched::SchedStats stats;
  core::BwdAccuracy bwd;
  bool pinned_violation = false;
  /// Unblock -> first-run latency distribution (always collected).
  Histogram wakeup_latency;
  /// Merged event trace; null unless cfg.trace.enabled.
  std::shared_ptr<trace::Trace> trace;
  /// Telemetry snapshot; null unless cfg.metrics.enabled.
  std::shared_ptr<obs::MetricsDoc> metrics;
  /// Per-task delay accounting snapshot; null unless cfg.taskstats.
  std::shared_ptr<obs::TaskstatsDoc> taskstats;
};

/// Builds a kernel per `cfg`, lets `setup` spawn the workload, runs to
/// completion (or deadline), and collects the result.
RunResult run_experiment(const RunConfig& cfg,
                         const std::function<void(kern::Kernel&)>& setup);

/// Builds the KernelConfig for a RunConfig (for benches that need to drive
/// the kernel manually, e.g. open-loop servers and elasticity sweeps).
kern::KernelConfig make_kernel_config(const RunConfig& cfg);

}  // namespace eo::metrics
