// KLock is header-only; anchor translation unit.
#include "kern/klock.h"
