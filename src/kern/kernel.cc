#include "kern/kernel.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace eo::kern {

namespace {
thread_local Task* g_current_task = nullptr;

Task* task_of(sched::SchedEntity* se) { return static_cast<Task*>(se->task); }
}  // namespace

const char* to_string(TaskState s) {
  switch (s) {
    case TaskState::kNew:
      return "new";
    case TaskState::kRunnable:
      return "runnable";
    case TaskState::kRunning:
      return "running";
    case TaskState::kSleeping:
      return "sleeping";
    case TaskState::kExited:
      return "exited";
  }
  return "?";
}

Kernel::Kernel(KernelConfig cfg)
    : cfg_(std::move(cfg)),
      tracer_(&engine_, cfg_.topo.n_cores(), cfg_.trace),
      cache_(cfg_.cache, cfg_.tlb),
      instr_(cfg_.instr),
      ple_([&] {
        hw::PleParams p = cfg_.ple;
        p.enabled = cfg_.features.ple && cfg_.features.mode == core::ExecMode::kVm;
        return p;
      }()),
      vb_policy_(&cfg_.features),
      bwd_(&cfg_.features),
      watchdog_(&metric_registry_),
      sampler_(&engine_, cfg_.topo.n_cores()),
      rng_(cfg_.seed) {
  const int n = cfg_.topo.n_cores();
  policy_ =
      sched::make_policy(cfg_.policy, &cfg_.topo, &cfg_.cfs,
                         &cfg_.policy_params);
  EO_CHECK(policy_ != nullptr)
      << "unknown scheduler policy '" << cfg_.policy << "'";
  cores_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    cores_.push_back(std::make_unique<Core>(i));
    cores_.back()->rng = rng_.split();
  }
  n_online_ = n;
  futex_.set_tracer(&tracer_);
  epolls_.set_tracer(&tracer_);
  vb_policy_.set_tracer(&tracer_);
  bwd_.set_tracer(&tracer_);
  for (int i = 0; i < n; ++i) {
    Core& c = core(i);
    c.balance_timer.set_trace(&tracer_, i, sched::TimerId::kBalance);
    c.bwd_timer.set_trace(&tracer_, i, sched::TimerId::kBwd);
    // Stagger periodic timers so cores do not balance in lockstep.
    c.balance_timer.start(&engine_, cfg_.cfs.balance_interval,
                          i * 200_us, [this, &c] { balance_timer_fire(c); });
    if (cfg_.features.bwd) {
      c.bwd_timer.start(&engine_, cfg_.features.bwd_interval, i * 5_us,
                        [this, &c] { bwd_timer_fire(c); });
    }
  }
  register_metrics();
  sampler_.start(
      cfg_.metrics,
      [this](obs::CoreSample* cs, obs::GlobalSample* g) {
        collect_sample(cs, g);
      },
      &watchdog_);
}

Kernel::~Kernel() = default;

Task* Kernel::current() { return g_current_task; }

// ---------------------------------------------------------------------------
// Task lifecycle
// ---------------------------------------------------------------------------

Task* Kernel::create_task(std::string name) {
  tasks_.push_back(std::make_unique<Task>(next_tid_++, std::move(name)));
  return tasks_.back().get();
}

void Kernel::attach_coroutine(Task* t, std::coroutine_handle<> top) {
  EO_CHECK(!t->top) << "coroutine already attached";
  t->top = top;
  t->resume_point = top;
}

void Kernel::start_task(Task* t, int cpu) {
  EO_CHECK(t->state == TaskState::kNew);
  EO_CHECK(t->top) << "start_task before attach_coroutine";
  if (cpu < 0) {
    // Round-robin over online cores.
    do {
      cpu = next_start_cpu_;
      next_start_cpu_ = (next_start_cpu_ + 1) % n_cores();
    } while (!core(cpu).online);
  }
  EO_CHECK(core(cpu).online);
  t->state = TaskState::kRunnable;
  t->delay.start(now(), obs::TaskDelayState::kRunnable);
  t->last_cpu = cpu;
  ++live_tasks_;
  Core& c = core(cpu);
  EO_TRACE_EVENT(&tracer_, cpu, trace::EventKind::kTaskStart, t->tid,
                 static_cast<std::uint64_t>(cpu), 0);
  policy_->place_fresh(cpu, &t->se);
  if (c.current == nullptr) {
    kick(c);
  }
}

void Kernel::pin_task(Task* t, int cpu) {
  EO_CHECK(cpu >= 0 && cpu < n_cores());
  t->pinned = true;
  t->pin_cpu = cpu;
  t->se.pinned = true;
}

SimWord* Kernel::alloc_word(std::uint64_t init) {
  words_.emplace_back();
  words_.back().value_ = init;
  words_.back().id_ = static_cast<std::uint64_t>(words_.size());
  return &words_.back();
}

int Kernel::epoll_create() { return epolls_.create(); }

// ---------------------------------------------------------------------------
// Execution control
// ---------------------------------------------------------------------------

void Kernel::run_until(SimTime t) { engine_.run_until(t); }

bool Kernel::run_to_exit(SimTime deadline) {
  // Chunked so we can stop as soon as every task exits (the periodic timers
  // would otherwise keep the event queue non-empty forever).
  while (live_tasks_ > 0 && now() < deadline) {
    const SimTime next = std::min<SimTime>(now() + 5_ms, deadline);
    engine_.run_until(next);
  }
  return live_tasks_ == 0;
}

void Kernel::set_online_cores(int n) {
  EO_CHECK(n >= 1 && n <= n_cores());
  // Bring cores online first so eviction targets exist.
  for (int i = 0; i < n; ++i) {
    Core& c = core(i);
    if (c.online) continue;
    c.online = true;
    c.balance_timer.start(&engine_, cfg_.cfs.balance_interval, i * 200_us,
                          [this, &c] { balance_timer_fire(c); });
    if (cfg_.features.bwd) {
      c.bwd_timer.start(&engine_, cfg_.features.bwd_interval, i * 5_us,
                        [this, &c] { bwd_timer_fire(c); });
    }
  }
  n_online_ = 0;
  for (int i = 0; i < n_cores(); ++i) {
    if (i < n) ++n_online_;
  }
  for (int i = n; i < n_cores(); ++i) {
    Core& c = core(i);
    if (!c.online) continue;
    if (c.current != nullptr && c.current->in_kernel) {
      // Mid wake-chain; retry shortly rather than corrupting the chain.
      const int target = n;
      engine_.schedule_after(200_us, [this, target] {
        if (n_online_ <= target) set_online_cores(target);
      });
      continue;
    }
    c.online = false;
    c.balance_timer.stop();
    c.bwd_timer.stop();
    if (c.run_event != sim::kInvalidEvent) {
      // Stop whatever is running and requeue it.
      stop_run(c);
    }
    if (c.current != nullptr) {
      deschedule_current(c, /*requeue=*/true, /*voluntary=*/false);
    }
    if (c.busy_valid) {
      c.metrics.busy += now() - c.busy_since;
      c.busy_valid = false;
    }
    // Evict every queued entity to online cores, round-robin.
    auto evicted = policy_->detach_all(c.id);
    int rr = 0;
    for (sched::SchedEntity* se : evicted) {
      Task* t = task_of(se);
      int dst = -1;
      for (int k = 0; k < n_online_; ++k) {
        const int cand = (rr + k) % n_online_;
        if (core(cand).online) {
          dst = cand;
          break;
        }
      }
      rr = (dst + 1) % std::max(1, n_online_);
      EO_CHECK_GE(dst, 0);
      Core& d = core(dst);
      const bool cross = !cfg_.topo.same_socket(c.id, d.id);
      (cross ? stats_.migrations_cross_node : stats_.migrations_in_node)++;
      ++t->stats.migrations;
      t->resume_penalty = std::max(
          t->resume_penalty,
          cache_.migration_penalty(t->mem.working_set, cross) +
              cfg_.costs.migration_base);
      if (t->pinned && t->pin_cpu == c.id) pinned_violation_ = true;
      t->last_cpu = dst;
      EO_TRACE_EVENT(&tracer_, dst, trace::EventKind::kMigration, t->tid,
                     static_cast<std::uint64_t>(c.id),
                     static_cast<std::uint64_t>(dst));
      // Rehome at the destination's fairness floor, like a fresh arrival.
      policy_->place_fresh(dst, se);
      // Post-migration queue wait is attributed to kMigrating until the
      // task first runs at the destination; VB-parked evictees keep their
      // park attribution (they are not waiting for the CPU).
      if (!se->vb_blocked) {
        t->delay.transition(now(), obs::TaskDelayState::kMigrating);
      }
      kick(d);
    }
  }
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

double Kernel::cpu_utilization_percent() const {
  const SimDuration wall = now() - metrics_reset_time_;
  if (wall <= 0) return 0.0;
  double busy = 0;
  for (const auto& cp : cores_) {
    busy += static_cast<double>(cp->metrics.busy);
    if (cp->busy_valid) busy += static_cast<double>(now() - cp->busy_since);
  }
  return busy / static_cast<double>(wall) * 100.0;
}

SimDuration Kernel::total_busy() const {
  SimDuration b = 0;
  for (const auto& cp : cores_) {
    b += cp->metrics.busy;
    if (cp->busy_valid) b += now() - cp->busy_since;
  }
  return b;
}

SimDuration Kernel::total_spin_busy() const {
  SimDuration b = 0;
  for (const auto& cp : cores_) b += cp->metrics.spin_busy;
  return b;
}

void Kernel::reset_metrics() {
  for (auto& cp : cores_) {
    cp->metrics = CoreMetrics{};
    if (cp->busy_valid) cp->busy_since = now();
  }
  stats_ = sched::SchedStats{};
  bwd_accuracy_ = core::BwdAccuracy{};
  wakeup_latency_.clear();
  metrics_reset_time_ = now();
}

trace::Trace Kernel::snapshot_trace() const {
  trace::Trace tr = tracer_.snapshot();
  tr.task_names.reserve(tasks_.size());
  for (const auto& tp : tasks_) {
    tr.task_names.emplace_back(tp->tid, tp->name);
  }
  return tr;
}

// ---------------------------------------------------------------------------
// Live telemetry (src/obs)
// ---------------------------------------------------------------------------

void Kernel::register_metrics() {
  obs::MetricRegistry& r = metric_registry_;
  // Counters register in subsystem order; registration order is the export
  // order, so keep it stable.
  stats_.register_metrics(&r);
  // The policy's counters are kernel-wide cells (one kernel, one host
  // thread), registered in one shot.
  sched::ObsHooks hooks;
  hooks.tracer = &tracer_;
  hooks.rq_enqueues = r.counter("sched.rq.enqueues");
  hooks.rq_dequeues = r.counter("sched.rq.dequeues");
  hooks.rq_picks = r.counter("sched.rq.picks");
  hooks.balance_attempts = r.counter("sched.balance.attempts");
  hooks.balance_pulls = r.counter("sched.balance.pulls");
  policy_->attach(hooks);
  futex_.set_metrics(r.counter("futex.bucket_locks"),
                     r.counter("futex.bucket_locks_contended"));
  epolls_.set_metrics(r.counter("epoll.instance_locks"),
                      r.counter("epoll.instance_locks_contended"));
  vb_policy_.set_metrics(r.counter("vb.decisions"),
                         r.counter("vb.chose_vb"));
  bwd_.set_metrics(r.counter("bwd.windows_evaluated"),
                   r.counter("bwd.windows_detected"));
  r.register_counter("bwd.truth_windows", &bwd_accuracy_.windows);
  r.register_counter("bwd.truth_tp", &bwd_accuracy_.tp);
  r.register_counter("bwd.truth_fp", &bwd_accuracy_.fp);
  r.register_counter("bwd.truth_fn", &bwd_accuracy_.fn);
  r.register_counter("bwd.truth_tn", &bwd_accuracy_.tn);
  policy_->export_tunables(&r);
  r.register_gauge("kern.live_tasks",
                   [this] { return static_cast<std::int64_t>(live_tasks_); });
  r.register_gauge("kern.online_cores",
                   [this] { return static_cast<std::int64_t>(n_online_); });
  r.register_histogram("kern.wakeup_latency_ns", &wakeup_latency_);
}

void Kernel::collect_sample(obs::CoreSample* cores,
                            obs::GlobalSample* g) const {
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    const Core& c = *cores_[i];
    obs::CoreSample& s = cores[i];
    s.rq_depth = policy_->nr_running(c.id);
    s.schedulable = policy_->nr_schedulable(c.id);
    s.vb_parked = policy_->nr_vb_blocked(c.id);
    s.bwd_skipped = policy_->nr_bwd_skipped(c.id);
    s.running = c.current != nullptr ? 1 : 0;
    s.online = c.online ? 1 : 0;
  }
  g->live_tasks = live_tasks_;
  g->online_cores = n_online_;
  g->tasks_runnable = 0;
  g->tasks_sleeping = 0;
  for (const auto& tp : tasks_) {
    switch (tp->state) {
      case TaskState::kRunnable:
      case TaskState::kRunning:
        ++g->tasks_runnable;
        break;
      case TaskState::kSleeping:
        ++g->tasks_sleeping;
        break;
      case TaskState::kNew:
      case TaskState::kExited:
        break;
    }
  }
  g->context_switches = stats_.context_switches;
  g->wakeups = stats_.wakeups;
  g->migrations = stats_.total_migrations();
  g->vb_parks = stats_.vb_parks;
  g->vb_unparks = stats_.vb_unparks;
  // Taskstats conservation + consistency cross-check, fed to the watchdog.
  // Conservation (state times sum to lifetime) is necessary; the kernel-state
  // mapping makes the check non-vacuous: a transition hook wired to the wrong
  // call site shows up as a delay state the kernel state forbids.
  g->taskstats_bad = 0;
  for (const auto& tp : tasks_) {
    const Task& t = *tp;
    bool ok = t.delay.conserved(now());
    if (obs::kTaskstatsEnabled && ok) {
      switch (t.state) {
        case TaskState::kNew:
          ok = !t.delay.started();
          break;
        case TaskState::kRunnable:
          ok = t.delay.started() && !t.delay.finished() &&
               (t.delay.state() == obs::TaskDelayState::kRunnable ||
                t.delay.state() == obs::TaskDelayState::kVbParked ||
                t.delay.state() == obs::TaskDelayState::kBwdSkipDelayed ||
                t.delay.state() == obs::TaskDelayState::kMigrating);
          break;
        case TaskState::kRunning:
          ok = t.delay.started() && !t.delay.finished() &&
               t.delay.state() == obs::TaskDelayState::kOncpu;
          break;
        case TaskState::kSleeping:
          ok = t.delay.started() && !t.delay.finished() &&
               (t.delay.state() == obs::TaskDelayState::kFutexBlocked ||
                t.delay.state() == obs::TaskDelayState::kEpollBlocked ||
                t.delay.state() == obs::TaskDelayState::kSleeping);
          break;
        case TaskState::kExited:
          ok = t.delay.finished();
          break;
      }
    }
    if (!ok) ++g->taskstats_bad;
  }
}

obs::MetricsDoc Kernel::snapshot_metrics() const {
  obs::MetricsDoc doc;
  doc.n_cores = n_cores();
  doc.interval = sampler_.interval();
  doc.ticks = sampler_.ticks();
  doc.dropped_ticks = sampler_.series().dropped();
  doc.counters = metric_registry_.snapshot_counters();
  doc.gauges = metric_registry_.snapshot_gauges();
  for (const auto& h : metric_registry_.histograms()) {
    doc.histograms.push_back(obs::summarize_histogram(h.name, *h.hist));
  }
  sampler_.series().copy_ordered(&doc.tick_series, &doc.core_series);
  doc.watchdog_checks = watchdog_.checks();
  doc.watchdog_violations = watchdog_.violations();
  doc.violation_records = watchdog_.records();
  if (cfg_.taskstats) {
    doc.taskstats =
        std::make_shared<obs::TaskstatsDoc>(snapshot_taskstats());
  }
  return doc;
}

obs::TaskstatsDoc Kernel::snapshot_taskstats() const {
  obs::TaskstatsDoc doc;
  doc.tasks.reserve(tasks_.size());
  for (const auto& tp : tasks_) {
    const Task& t = *tp;
    if (!t.delay.started()) continue;
    obs::TaskstatsRecord r;
    r.tid = static_cast<std::uint64_t>(t.tid);
    r.name = t.name;
    r.finished = t.delay.finished();
    r.lifetime = t.delay.lifetime(now());
    r.times = t.delay.snapshot(now());
    doc.tasks.push_back(std::move(r));
  }
  return doc;
}

// ---------------------------------------------------------------------------
// Segment / busy accounting
// ---------------------------------------------------------------------------

void Kernel::account_segment(Core& c) {
  const SimTime t = now();
  if (c.current == nullptr) {
    c.seg_start = t;
    return;
  }
  const SimDuration dur = t - c.seg_start;
  c.seg_start = t;
  if (dur <= 0) return;
  // LBR/PMC/window state feeds only bwd_timer_fire, whose timer runs only
  // when features.bwd is on; with BWD off the synthetic PMC sampling (two
  // Poisson draws per segment from c.rng, which has no other consumer) is
  // pure cost, so the whole block is skipped. BWD-on runs are unchanged.
  if (cfg_.features.bwd) {
    const auto sample = instr_.sample(c.seg_kind, dur, c.rng);
    c.pmc.accumulate(sample);
    c.lbr.on_execute(c.seg_kind, c.seg_site, dur, instr_);
    c.window.busy += dur;
    if (c.seg_kind == hw::SegmentKind::kSpin) {
      c.window.spin += dur;
      if (c.window.dominant_site == hw::kVariedSites) {
        c.window.dominant_site = c.seg_site;
      } else if (c.window.dominant_site != c.seg_site) {
        c.window.multiple_spin_sites = true;
      }
    }
  }
  if (c.seg_kind == hw::SegmentKind::kSpin) {
    c.metrics.spin_busy += dur;
    c.current->stats.spin_time += dur;
    if (ple_.enabled() && c.seg_pause) {
      const auto exits = ple_.exits_for(dur);
      stats_.ple_exits += exits;
      if (auto* a = std::get_if<SpinUntilAction>(&c.current->pending)) {
        a->ple_overhead += ple_.overhead_for(dur);
      }
    }
  }
}

void Kernel::set_segment(Core& c, hw::SegmentKind kind, hw::BranchSite site,
                         bool pause) {
  account_segment(c);
  c.seg_kind = kind;
  c.seg_site = site;
  c.seg_pause = pause;
}

void Kernel::account_tick(Core& c) {
  Task* t = c.current;
  EO_CHECK(t != nullptr);
  SimDuration ran = now() - t->se.exec_start;
  if (ran < 0) ran = 0;
  policy_->account(c.id, ran + t->overhead);
  t->overhead = 0;
  t->stats.cpu_time += ran;
  t->se.exec_start = now();
}

// ---------------------------------------------------------------------------
// Core scheduling
// ---------------------------------------------------------------------------

bool Kernel::smt_sibling_busy(const Core& c) const {
  if (!cfg_.topo.smt_enabled()) return false;
  const int sib = cfg_.topo.smt_sibling(c.id);
  if (sib < 0) return false;
  const Core& s = *cores_[static_cast<size_t>(sib)];
  return s.current != nullptr;
}

double Kernel::execution_speed(const Core& c) const {
  return smt_sibling_busy(c) ? hw::kSmtBusySiblingFactor : 1.0;
}

SimDuration Kernel::slice_left(Core& c, Task* t) const {
  const SimDuration slice = policy_->slice_for(c.id, &t->se);
  return slice - (now() - t->se.exec_start);
}

void Kernel::kick(Core& c) {
  if (!c.online || c.kick_pending || c.current != nullptr || c.in_switch) {
    return;
  }
  c.kick_pending = true;
  engine_.schedule_after(cfg_.costs.idle_kick, [this, &c] {
    c.kick_pending = false;
    if (c.online && c.current == nullptr && !c.in_switch) schedule(c);
  });
}

void Kernel::schedule(Core& c) {
  EO_CHECK(c.current == nullptr);
  EO_CHECK(!c.in_switch);
  if (!c.online) return;
  if (c.preempt_event != sim::kInvalidEvent) {
    engine_.cancel(c.preempt_event);
    c.preempt_event = sim::kInvalidEvent;
  }
  c.need_resched = false;

  sched::SchedEntity* se = policy_->pick_next(c.id);
  if (se == nullptr) {
    // Newly idle: try to pull work before idling.
    if (try_balance(c, /*newly_idle=*/true)) se = policy_->pick_next(c.id);
  }
  if (se == nullptr) {
    if (c.busy_valid) {
      c.metrics.busy += now() - c.busy_since;
      c.busy_valid = false;
    }
    account_segment(c);  // resets seg_start
    return;
  }
  Task* t = task_of(se);
  if (!c.busy_valid) {
    c.busy_valid = true;
    c.busy_since = now();
  }

  SimDuration cost = cfg_.costs.sched_pick;
  const bool real_switch = (t != c.last_task);
  if (real_switch) {
    cost += cfg_.costs.context_switch;
    ++stats_.context_switches;
    // Charge the resuming thread's cache-refill penalty based on what ran
    // in between (approximated by the previous occupant's working set).
    // Only compute phases repay a cold cache: a thread resuming into a spin
    // loop or a VB flag-check quantum touches one line and must not
    // accumulate refill debt. The penalty does not stack across repeated
    // switch-ins either — the cache is only cold once — so it combines by
    // max, not sum.
    if (c.last_task != nullptr && !c.last_task->exited() &&
        t->mem.working_set > 0 && !t->se.vb_blocked &&
        !std::holds_alternative<SpinUntilAction>(t->pending)) {
      const SimDuration pen = cache_.switch_penalty(
          t->mem.pattern, t->mem.working_set, c.last_task->mem.working_set);
      t->resume_penalty = std::max(t->resume_penalty, pen);
    }
  }
  EO_TRACE_EVENT(&tracer_, c.id, trace::EventKind::kSwitchIn, t->tid,
                 static_cast<std::uint64_t>(t->se.vruntime),
                 real_switch ? 1u : 0u);
  c.last_task = t;
  c.current = t;
  t->state = TaskState::kRunning;
  // Time on a core is on-CPU time, including the switch-in cost below and VB
  // flag-check quanta — the paper's direct oversubscription cost.
  t->delay.transition(now(), obs::TaskDelayState::kOncpu);
  t->last_cpu = c.id;
  c.in_switch = true;
  set_segment(c, hw::SegmentKind::kRegular, hw::kVariedSites, false);
  c.run_event = engine_.schedule_after(cost, [this, &c] {
    c.run_event = sim::kInvalidEvent;
    c.in_switch = false;
    Task* cur = c.current;
    EO_CHECK(cur != nullptr);
    cur->se.exec_start = now();
    begin_current(c);
  });
}

void Kernel::begin_current(Core& c) {
  Task* t = c.current;
  EO_CHECK(t != nullptr);

  if (c.need_resched && policy_->nr_schedulable(c.id) > 0 &&
      !t->se.vb_blocked) {
    // A better candidate woke during the switch; go around again.
    deschedule_current(c, /*requeue=*/true, /*voluntary=*/false);
    schedule(c);
    return;
  }
  c.need_resched = false;

  if (t->se.vb_blocked) {
    setup_vb_check(c, t);
    return;
  }

  if (t->runnable_since >= 0) {
    // First real run after an unblock: the paper's wakeup latency.
    const SimDuration lat = now() - t->runnable_since;
    t->runnable_since = -1;
    wakeup_latency_.add(lat);
    EO_TRACE_EVENT(&tracer_, c.id, trace::EventKind::kRunAfterWake, t->tid,
                   static_cast<std::uint64_t>(lat), 0);
  }

  if (std::holds_alternative<std::monostate>(t->pending)) {
    resume_step(c, t);
    return;
  }
  if (auto* a = std::get_if<ComputeAction>(&t->pending)) {
    setup_compute(c, t, *a);
    return;
  }
  if (auto* a = std::get_if<SpinUntilAction>(&t->pending)) {
    if (a->pred(a->word->value_)) {
      t->overhead += cfg_.costs.spin_check + a->ple_overhead;
      finish_action(t, 1);
      resume_step(c, t);
    } else {
      setup_spin(c, t, *a);
    }
    return;
  }
  EO_CHECK(false) << "task " << t->name << " scheduled with pending action it"
                  << " cannot resume (index " << t->pending.index() << ")";
}

void Kernel::resume_step(Core& c, Task* t) {
  for (;;) {
    EO_CHECK_EQ(c.current, t);
    EO_CHECK(std::holds_alternative<std::monostate>(t->pending));
    g_current_task = t;
    t->resume_point.resume();
    g_current_task = nullptr;

    if (auto* a = std::get_if<AtomicAction>(&t->pending)) {
      perform_atomic(c, t, *a);
      t->pending = std::monostate{};
      continue;
    }
    if (auto* a = std::get_if<SetMemProfileAction>(&t->pending)) {
      t->mem = a->profile;
      t->pending = std::monostate{};
      continue;
    }
    if (auto* a = std::get_if<ComputeAction>(&t->pending)) {
      // Convert work duration to wall time once, using the task's memory
      // profile at issue time.
      if (a->remaining_wall < 0) {
        double factor = 1.0;
        if (cfg_.ref_footprint > 0 && t->mem.working_set > 0) {
          factor = cache_.compute_rate_factor(t->mem, t->mem.working_set,
                                              cfg_.ref_footprint);
        }
        a->remaining_wall = static_cast<SimDuration>(
            std::ceil(static_cast<double>(a->duration) * factor));
        if (a->remaining_wall < 1) a->remaining_wall = 1;
      }
      setup_compute(c, t, *a);
      return;
    }
    if (auto* a = std::get_if<SpinUntilAction>(&t->pending)) {
      if (a->pred(a->word->value_)) {
        t->overhead += cfg_.costs.spin_check;
        finish_action(t, 1);
        continue;
      }
      setup_spin(c, t, *a);
      return;
    }
    if (auto* a = std::get_if<FutexWaitAction>(&t->pending)) {
      if (handle_futex_wait(c, t, *a)) continue;
      return;
    }
    if (auto* a = std::get_if<FutexWakeAction>(&t->pending)) {
      if (handle_futex_wake(c, t, *a)) continue;
      return;
    }
    if (auto* a = std::get_if<EpollWaitAction>(&t->pending)) {
      if (handle_epoll_wait(c, t, *a)) continue;
      return;
    }
    if (auto* a = std::get_if<EpollPostAction>(&t->pending)) {
      if (handle_epoll_post(c, t, *a)) continue;
      return;
    }
    if (std::holds_alternative<YieldAction>(t->pending)) {
      finish_action(t, 0);
      deschedule_current(c, /*requeue=*/true, /*voluntary=*/true);
      schedule(c);
      return;
    }
    if (auto* a = std::get_if<SleepAction>(&t->pending)) {
      handle_sleep(c, t, *a);
      return;
    }
    if (std::holds_alternative<ExitAction>(t->pending)) {
      handle_exit(c, t);
      return;
    }
    EO_CHECK(false) << "unhandled action index " << t->pending.index()
                    << " task=" << t->name << " state=" << to_string(t->state)
                    << " now=" << now();
  }
}

void Kernel::finish_action(Task* t, std::uint64_t result) {
  t->action_result = result;
  t->pending = std::monostate{};
}

// ---------------------------------------------------------------------------
// Compute / spin execution
// ---------------------------------------------------------------------------

void Kernel::setup_compute(Core& c, Task* t, ComputeAction& a) {
  EO_CHECK_GE(a.remaining_wall, 0);
  if (t->resume_penalty > 0) {
    a.remaining_wall += t->resume_penalty;
    t->resume_penalty = 0;
  }
  SimDuration sl = slice_left(c, t);
  if (sl <= 0) {
    if (policy_->nr_schedulable(c.id) > 0) {
      deschedule_current(c, /*requeue=*/true, /*voluntary=*/false);
      schedule(c);
      return;
    }
    account_tick(c);  // renew the slice in place
    sl = policy_->slice_for(c.id, &t->se);
  }
  const double speed = execution_speed(c);
  const auto need = static_cast<SimDuration>(
      std::ceil(static_cast<double>(a.remaining_wall) / speed));
  const SimDuration run_for = std::min(need, sl);
  set_segment(c, a.kind, a.site, false);
  c.run_start = now();
  c.run_speed = speed;
  c.run_event =
      engine_.schedule_after(run_for, [this, &c] { compute_event(c); });
}

void Kernel::compute_event(Core& c) {
  c.run_event = sim::kInvalidEvent;
  Task* t = c.current;
  EO_CHECK(t != nullptr);
  auto* a = std::get_if<ComputeAction>(&t->pending);
  EO_CHECK(a != nullptr);
  const SimDuration elapsed = now() - c.run_start;
  a->remaining_wall -= static_cast<SimDuration>(
      static_cast<double>(elapsed) * c.run_speed + 0.5);
  if (a->remaining_wall <= 0) {
    set_segment(c, hw::SegmentKind::kRegular, hw::kVariedSites, false);
    finish_action(t, 0);
    resume_step(c, t);
    return;
  }
  // Slice expired mid-compute.
  if (policy_->nr_schedulable(c.id) > 0) {
    deschedule_current(c, /*requeue=*/true, /*voluntary=*/false);
    schedule(c);
  } else {
    setup_compute(c, t, *a);
  }
}

void Kernel::setup_spin(Core& c, Task* t, SpinUntilAction& a) {
  // Spinning touches a single cached line; any accumulated refill penalty is
  // meaningless for it and must not leak into later compute.
  t->resume_penalty = 0;
  if (a.deadline >= 0 && now() >= a.deadline) {
    // Spin budget exhausted (possibly while descheduled).
    t->overhead += cfg_.costs.spin_check;
    finish_action(t, 0);
    resume_step(c, t);
    return;
  }
  SimDuration sl = slice_left(c, t);
  if (sl <= 0) {
    if (policy_->nr_schedulable(c.id) > 0) {
      deschedule_current(c, /*requeue=*/true, /*voluntary=*/false);
      schedule(c);
      return;
    }
    account_tick(c);
    sl = policy_->slice_for(c.id, &t->se);
  }
  if (a.deadline >= 0) sl = std::min(sl, a.deadline - now());
  set_segment(c, hw::SegmentKind::kSpin, a.site, a.uses_pause);
  a.exit_scheduled = false;
  auto& spinners = a.word->running_spinners_;
  if (std::find(spinners.begin(), spinners.end(), t) == spinners.end()) {
    spinners.push_back(t);
  }
  c.run_start = now();
  c.run_speed = 1.0;
  c.run_event =
      engine_.schedule_after(sl, [this, &c] { spin_slice_event(c); });
}

void Kernel::spin_slice_event(Core& c) {
  c.run_event = sim::kInvalidEvent;
  Task* t = c.current;
  EO_CHECK(t != nullptr);
  auto* a = std::get_if<SpinUntilAction>(&t->pending);
  EO_CHECK(a != nullptr);
  if (a->exit_scheduled) return;  // an exit is imminent; let it fire
  if (a->deadline >= 0 && now() >= a->deadline) {
    // Timed out: stop spinning and report failure.
    account_segment(c);
    set_segment(c, hw::SegmentKind::kRegular, hw::kVariedSites, false);
    auto& spinners = a->word->running_spinners_;
    spinners.erase(std::remove(spinners.begin(), spinners.end(), t),
                   spinners.end());
    t->overhead += cfg_.costs.spin_check;
    finish_action(t, 0);
    resume_step(c, t);
    return;
  }
  if (policy_->nr_schedulable(c.id) > 0) {
    deschedule_current(c, /*requeue=*/true, /*voluntary=*/false);
    schedule(c);
  } else {
    // Alone on the queue: keep spinning with a renewed slice.
    account_tick(c);
    SimDuration next = policy_->slice_for(c.id, &t->se);
    if (a->deadline >= 0) next = std::min(next, a->deadline - now());
    if (next < 1) next = 1;
    c.run_event = engine_.schedule_after(next,
                                         [this, &c] { spin_slice_event(c); });
  }
}

void Kernel::notify_spinners(SimWord* word) {
  if (word->running_spinners_.empty()) return;
  // Copy: exits mutate the list.
  const auto spinners = word->running_spinners_;
  for (Task* t : spinners) {
    auto* a = std::get_if<SpinUntilAction>(&t->pending);
    if (a == nullptr || a->exit_scheduled) continue;
    if (a->pred(word->value_)) {
      a->exit_scheduled = true;
      SimWord* w = word;
      engine_.schedule_after(cfg_.costs.spin_observe,
                             [this, t, w] { spin_exit_event(t, w); });
    }
  }
}

void Kernel::spin_exit_event(Task* t, SimWord* w) {
  if (t->state != TaskState::kRunning) return;
  auto* a = std::get_if<SpinUntilAction>(&t->pending);
  if (a == nullptr || !a->exit_scheduled) return;
  EO_CHECK_GE(t->se.cpu, 0);
  Core& c = core(t->se.cpu);
  if (c.current != t) return;
  if (c.run_event != sim::kInvalidEvent) {
    engine_.cancel(c.run_event);
    c.run_event = sim::kInvalidEvent;
  }
  set_segment(c, hw::SegmentKind::kRegular, hw::kVariedSites, false);
  auto& spinners = w->running_spinners_;
  spinners.erase(std::remove(spinners.begin(), spinners.end(), t),
                 spinners.end());
  t->overhead += cfg_.costs.spin_check + a->ple_overhead;
  finish_action(t, 1);
  resume_step(c, t);
}

void Kernel::stop_run(Core& c) {
  Task* t = c.current;
  EO_CHECK(t != nullptr);
  const bool had_event = c.run_event != sim::kInvalidEvent;
  if (had_event) {
    engine_.cancel(c.run_event);
    c.run_event = sim::kInvalidEvent;
  }
  if (auto* a = std::get_if<ComputeAction>(&t->pending)) {
    if (had_event) {
      const SimDuration elapsed = now() - c.run_start;
      a->remaining_wall -= static_cast<SimDuration>(
          static_cast<double>(elapsed) * c.run_speed + 0.5);
      if (a->remaining_wall < 1) a->remaining_wall = 1;
    }
  } else if (auto* a = std::get_if<SpinUntilAction>(&t->pending)) {
    auto& spinners = a->word->running_spinners_;
    spinners.erase(std::remove(spinners.begin(), spinners.end(), t),
                   spinners.end());
    a->exit_scheduled = false;
  }
}

void Kernel::deschedule_current(Core& c, bool requeue, bool voluntary) {
  Task* t = c.current;
  EO_CHECK(t != nullptr);
  account_segment(c);
  stop_run(c);
  account_tick(c);
  if (voluntary) {
    ++t->stats.voluntary_switches;
    ++stats_.voluntary_switches;
  } else {
    ++t->stats.involuntary_switches;
    ++stats_.involuntary_switches;
  }
  EO_TRACE_EVENT(&tracer_, c.id, trace::EventKind::kSwitchOut, t->tid,
                 static_cast<std::uint64_t>(t->se.vruntime),
                 voluntary ? 1u : 0u);
  policy_->put_prev(c.id, &t->se);
  if (requeue) {
    t->state = TaskState::kRunnable;
    // A VB-parked task back on the queue waits in kVbParked; otherwise this
    // is plain runqueue wait. Callers that requeue for a different reason
    // (BWD skip, VB park-in-progress) refine the state right after, at the
    // same timestamp, so no time is misattributed.
    t->delay.transition(now(), t->se.vb_blocked
                                   ? obs::TaskDelayState::kVbParked
                                   : obs::TaskDelayState::kRunnable);
  } else {
    // Blocking/exit paths: the caller sets the task's new state (and its
    // delay state) immediately after.
    policy_->dequeue(c.id, &t->se);
  }
  c.current = nullptr;
  if (c.preempt_event != sim::kInvalidEvent) {
    engine_.cancel(c.preempt_event);
    c.preempt_event = sim::kInvalidEvent;
  }
  c.need_resched = false;
}

void Kernel::setup_vb_check(Core& c, Task* t) {
  ++stats_.vb_check_quanta;
  EO_TRACE_EVENT(&tracer_, c.id, trace::EventKind::kVbSkipQuantum, t->tid,
                 stats_.vb_check_quanta, 0);
  set_segment(c, hw::SegmentKind::kRegular, hw::kVariedSites, false);
  const SimDuration q = cfg_.costs.vb_check_quantum;
  c.run_start = now();
  c.run_speed = 1.0;
  c.run_event = engine_.schedule_after(q, [this, &c, q] {
    c.run_event = sim::kInvalidEvent;
    Task* cur = c.current;
    EO_CHECK(cur != nullptr);
    c.metrics.vb_check += q;
    if (!cur->se.vb_blocked) {
      // The flag was cleared mid-quantum: resume for real.
      account_tick(c);
      begin_current(c);
      return;
    }
    deschedule_current(c, /*requeue=*/true, /*voluntary=*/true);
    schedule(c);
  });
}

// ---------------------------------------------------------------------------
// Preemption
// ---------------------------------------------------------------------------

void Kernel::maybe_preempt(Core& c, const sched::SchedEntity* wakee) {
  if (!c.online) return;
  if (c.current == nullptr) {
    if (!c.in_switch) kick(c);
    return;
  }
  if (!policy_->should_preempt(c.id, wakee)) return;
  if (c.current->in_kernel || c.in_switch) {
    c.need_resched = true;
    return;
  }
  // Wakeup preemption is immediate in CFS once the vruntime gap exceeds the
  // wakeup granularity; the paper's 750 us minimum slice governs tick-driven
  // preemption between runnable tasks, which the slice computation enforces.
  do_preempt(c);
}

void Kernel::do_preempt(Core& c) {
  deschedule_current(c, /*requeue=*/true, /*voluntary=*/false);
  schedule(c);
}

// ---------------------------------------------------------------------------
// Atomic operations
// ---------------------------------------------------------------------------

void Kernel::perform_atomic(Core& c, Task* t, const AtomicAction& a) {
  (void)c;
  EO_CHECK(a.word != nullptr);
  t->overhead += cfg_.costs.atomic_op;
  auto& v = a.word->value_;
  const std::uint64_t old = v;
  bool stored = false;
  std::uint64_t result = 0;
  switch (a.op) {
    case AtomicOp::kLoad:
      result = old;
      break;
    case AtomicOp::kStore:
      v = a.a;
      stored = true;
      break;
    case AtomicOp::kExchange:
      v = a.a;
      stored = true;
      result = old;
      break;
    case AtomicOp::kCompareSwap:
      if (old == a.a) {
        v = a.b;
        stored = true;
        result = 1;
      } else {
        result = 0;
      }
      break;
    case AtomicOp::kFetchAdd:
      v = old + a.a;
      stored = true;
      result = old;
      break;
  }
  t->action_result = result;
  if (stored && v != old) notify_spinners(a.word);
}

// ---------------------------------------------------------------------------
// Futex
// ---------------------------------------------------------------------------

bool Kernel::handle_futex_wait(Core& c, Task* t, const FutexWaitAction& a) {
  auto& b = futex_.bucket_for(a.word);
  SimDuration cost = cfg_.costs.syscall_entry;
  cost += futex_.lock_bucket(b, now(), cfg_.costs.bucket_lock_hold, c.id,
                             t->tid) +
          cfg_.costs.bucket_lock_hold;
  if (a.word->value_ != a.expected) {
    // EWOULDBLOCK: the value changed; return to userspace.
    t->overhead += cost;
    finish_action(t, 1);
    return true;
  }
  int same_word = 0;
  for (const futex::WaiterLink* l = b.waiters.begin_link();
       l != b.waiters.end_link(); l = l->next) {
    if (l->task->wait_word == a.word) ++same_word;
  }
  const bool vb = vb_policy_.use_vb_futex(same_word + 1, n_online_, c.id,
                                          t->tid);
  t->waiter.vb = vb;
  b.waiters.push_back(&t->waiter);
  t->wait_word = a.word;
  t->vb_waiting = vb;
  t->block_start = now();
  ++t->stats.futex_waits;
  EO_TRACE_EVENT(&tracer_, c.id, trace::EventKind::kFutexWait, t->tid,
                 a.word->id_, vb ? 1u : 0u);
  if (vb) {
    ++stats_.vb_parks;
    ++t->stats.vb_parks;
    t->overhead += cost + cfg_.costs.vb_park;
    deschedule_current(c, /*requeue=*/true, /*voluntary=*/true);
    policy_->vb_park(c.id, &t->se);
    t->delay.transition(now(), obs::TaskDelayState::kVbParked);
  } else {
    ++stats_.futex_sleeps;
    if (!vb && cfg_.features.vb_futex) ++stats_.vb_fallback_vanilla;
    t->overhead += cost + cfg_.costs.futex_wait_setup;
    deschedule_current(c, /*requeue=*/false, /*voluntary=*/true);
    t->state = TaskState::kSleeping;
    t->delay.transition(now(), obs::TaskDelayState::kFutexBlocked);
  }
  schedule(c);
  return false;
}

bool Kernel::handle_futex_wake(Core& c, Task* t, const FutexWakeAction& a) {
  auto& b = futex_.bucket_for(a.word);
  SimDuration cost = cfg_.costs.syscall_entry;
  // Fill a pooled chain in place: matching waiters are spliced from the
  // bucket's intrusive list onto the chain's, so the steady-state wake
  // performs no allocation at all.
  WakeChain* chain = alloc_chain();
  const int want = a.n <= 0 ? 0 : a.n;
  SimDuration hold = cfg_.costs.bucket_lock_hold;
  // Only waiters on this word are woken: buckets are shared by hash, and
  // futex_wake matches the (uaddr) key while walking the bucket queue.
  for (futex::WaiterLink* l = b.waiters.begin_link();
       l != b.waiters.end_link() &&
       static_cast<int>(chain->waiters.size()) < want;) {
    futex::WaiterLink* next = l->next;
    if (l->task->wait_word == a.word) {
      b.waiters.erase(l);
      chain->waiters.push_back(l);
      hold += cfg_.costs.wake_q_move;
    }
    l = next;
  }
  cost += futex_.lock_bucket(b, now(), hold, c.id, t->tid) + hold;
  ++stats_.futex_wakes;
  EO_TRACE_EVENT(&tracer_, c.id, trace::EventKind::kFutexWake, t->tid,
                 a.word->id_,
                 static_cast<std::uint64_t>(chain->waiters.size()));
  if (chain->waiters.empty()) {
    release_chain(chain);
    t->overhead += cost;
    finish_action(t, 0);
    return true;
  }
  start_wake_chain(c, t, chain, cost, /*delivered=*/false);
  return false;
}

Kernel::WakeChain* Kernel::alloc_chain() {
  if (!chain_free_.empty()) {
    WakeChain* chain = chain_free_.back();
    chain_free_.pop_back();
    return chain;
  }
  chain_storage_.emplace_back();
  return &chain_storage_.back();
}

void Kernel::release_chain(WakeChain* chain) {
  EO_CHECK(chain->waiters.empty());  // every waiter was popped by a step
  chain->waker = nullptr;
  chain->waker_cpu = -1;
  chain->result = 0;
  chain->delivered = false;
  chain_free_.push_back(chain);
}

void Kernel::start_wake_chain(Core& c, Task* waker, WakeChain* chain,
                              SimDuration initial_cost, bool delivered) {
  waker->in_kernel = true;
  chain->waker = waker;
  chain->waker_cpu = c.id;
  chain->delivered = delivered;
  EO_TRACE_EVENT(&tracer_, c.id, trace::EventKind::kWakeupBegin, waker->tid,
                 static_cast<std::uint64_t>(chain->waiters.size()), 0);
  engine_.schedule_after(initial_cost,
                         [this, chain] { wake_chain_step(chain); });
}

void Kernel::wake_chain_step(WakeChain* chain) {
  if (!chain->waiters.empty()) {
    // Pop before waking: once woken the task may block again and reuse its
    // embedded link, so it must already be off the chain.
    futex::WaiterLink* w = chain->waiters.pop_front();
    Task* task = w->task;
    const bool vb = w->vb;
    if (!chain->delivered) finish_action(task, 0);
    const SimDuration cost = vb ? wake_task_vb(task) : wake_task_vanilla(task);
    ++chain->result;
    engine_.schedule_after(cost, [this, chain] { wake_chain_step(chain); });
    return;
  }
  // Chain complete: recycle it, then resume the waker (which may start a
  // fresh chain immediately).
  Task* w = chain->waker;
  const int waker_cpu = chain->waker_cpu;
  const std::uint64_t result = chain->result;
  release_chain(chain);
  w->in_kernel = false;
  EO_TRACE_EVENT(&tracer_, waker_cpu, trace::EventKind::kWakeupEnd,
                 w->tid, result, 0);
  finish_action(w, result);
  if (w->state != TaskState::kRunning) {
    // Waker was evicted (core offlining); it resumes when next scheduled.
    return;
  }
  EO_CHECK_GE(w->se.cpu, 0);
  Core& c = core(w->se.cpu);
  EO_CHECK_EQ(c.current, w);
  if (c.need_resched && policy_->nr_schedulable(c.id) > 0) {
    deschedule_current(c, /*requeue=*/true, /*voluntary=*/false);
    schedule(c);
    return;
  }
  c.need_resched = false;
  resume_step(c, w);
}

int Kernel::select_wake_cpu(Task* t) {
  if (t->pinned && core(t->pin_cpu).online) return t->pin_cpu;
  int prev = t->last_cpu;
  if (prev < 0 || !core(prev).online) prev = -1;
  if (prev >= 0 && policy_->nr_schedulable(prev) == 0 &&
      core(prev).current == nullptr) {
    return prev;  // wake-affine fast path: previous core is idle
  }
  // Scan for the least-loaded online core, preferring the previous socket.
  int best = prev >= 0 ? prev : 0;
  int best_load = 1 << 30;
  const int prev_socket = prev >= 0 ? cfg_.topo.socket_of(prev) : -1;
  for (int i = 0; i < n_cores(); ++i) {
    Core& ci = core(i);
    if (!ci.online) continue;
    int load = policy_->nr_running(i) + (ci.current != nullptr ? 0 : -1);
    // Prefer same socket on ties by biasing other-socket loads up.
    if (prev_socket >= 0 && cfg_.topo.socket_of(i) != prev_socket) load += 1;
    if (i == prev) load -= 1;  // mild wake-affinity
    if (load < best_load) {
      best_load = load;
      best = i;
    }
  }
  return best;
}

SimDuration Kernel::wake_task_vanilla(Task* t) {
  EO_CHECK(t->state == TaskState::kSleeping);
  ++stats_.wakeups;
  ++t->stats.wakeups;
  t->stats.sleep_time += now() - t->block_start;
  t->wait_word = nullptr;
  t->wait_epfd = -1;
  SimDuration cost =
      cfg_.costs.ttwu_base + n_online_ * cfg_.costs.ttwu_scan_per_core;
  const int cpu = select_wake_cpu(t);
  Core& tc = core(cpu);
  cost += tc.rq_lock.acquire(now(), cfg_.costs.rq_lock_hold) +
          cfg_.costs.rq_lock_hold;
  const bool wake_migrated = t->last_cpu >= 0 && cpu != t->last_cpu;
  if (wake_migrated) {
    ++stats_.wakeup_migrations;
    const bool cross = !cfg_.topo.same_socket(cpu, t->last_cpu);
    (cross ? stats_.migrations_cross_node : stats_.migrations_in_node)++;
    ++t->stats.migrations;
    t->resume_penalty = std::max(
        t->resume_penalty, cache_.migration_penalty(t->mem.working_set,
                                                    cross) +
                               cfg_.costs.migration_base);
    EO_TRACE_EVENT(&tracer_, cpu, trace::EventKind::kMigration, t->tid,
                   static_cast<std::uint64_t>(t->last_cpu),
                   static_cast<std::uint64_t>(cpu));
  }
  t->state = TaskState::kRunnable;
  // Cross-CPU wakeup placements charge the post-wake queue wait to
  // kMigrating (the cache-cold dispatch delay); same-CPU wakes to kRunnable.
  t->delay.transition(now(), wake_migrated ? obs::TaskDelayState::kMigrating
                                           : obs::TaskDelayState::kRunnable);
  t->last_cpu = cpu;
  t->runnable_since = now();
  EO_TRACE_EVENT(&tracer_, cpu, trace::EventKind::kWakeup, t->tid,
                 static_cast<std::uint64_t>(cpu), 0);
  policy_->enqueue(cpu, &t->se, /*wakeup=*/true);
  maybe_preempt(tc, &t->se);
  return cost;
}

SimDuration Kernel::wake_task_vb(Task* t) {
  EO_CHECK(t->vb_waiting);
  ++stats_.vb_unparks;
  ++stats_.wakeups;
  ++t->stats.wakeups;
  t->stats.sleep_time += now() - t->block_start;
  t->wait_word = nullptr;
  t->wait_epfd = -1;
  t->vb_waiting = false;
  EO_CHECK_GE(t->se.cpu, 0);
  Core& tc = core(t->se.cpu);
  t->runnable_since = now();
  EO_TRACE_EVENT(&tracer_, t->se.cpu, trace::EventKind::kWakeup, t->tid,
                 static_cast<std::uint64_t>(t->se.cpu), 1);
  if (tc.current == t) {
    // Mid flag-check quantum: clear in place; the quantum event resumes it.
    // The task is on a core, so its delay state is already kOncpu.
    policy_->vb_clear_current(tc.id, &t->se);
  } else {
    policy_->vb_unpark(tc.id, &t->se);
    t->state = TaskState::kRunnable;
    // Unparked: the remaining queue wait is ordinary rq wait, not park time.
    t->delay.transition(now(), obs::TaskDelayState::kRunnable);
    maybe_preempt(tc, &t->se);
  }
  return cfg_.costs.vb_unpark;
}

// ---------------------------------------------------------------------------
// Epoll
// ---------------------------------------------------------------------------

bool Kernel::handle_epoll_wait(Core& c, Task* t, const EpollWaitAction& a) {
  auto& ep = epolls_.get(a.epfd);
  SimDuration cost = cfg_.costs.syscall_entry;
  cost += epolls_.lock_instance(ep, now(), cfg_.costs.bucket_lock_hold, c.id,
                                t->tid) +
          cfg_.costs.bucket_lock_hold;
  if (!ep.ready.empty()) {
    const std::uint64_t data = ep.ready.front();
    ep.ready.pop_front();
    ++ep.consumed;
    t->overhead += cost;
    finish_action(t, data);
    return true;
  }
  const bool vb = vb_policy_.use_vb_epoll(
      static_cast<int>(ep.waiters.size()) + 1, n_online_, c.id, t->tid);
  ep.waiters.push_back(epollsim::EpollWaiter{t, vb});
  t->wait_epfd = a.epfd;
  t->vb_waiting = vb;
  t->block_start = now();
  EO_TRACE_EVENT(&tracer_, c.id, trace::EventKind::kEpollWait, t->tid,
                 static_cast<std::uint64_t>(a.epfd), vb ? 1u : 0u);
  if (vb) {
    ++stats_.vb_parks;
    ++t->stats.vb_parks;
    t->overhead += cost + cfg_.costs.vb_park;
    deschedule_current(c, /*requeue=*/true, /*voluntary=*/true);
    policy_->vb_park(c.id, &t->se);
    t->delay.transition(now(), obs::TaskDelayState::kVbParked);
  } else {
    ++stats_.futex_sleeps;
    t->overhead += cost + cfg_.costs.futex_wait_setup;
    deschedule_current(c, /*requeue=*/false, /*voluntary=*/true);
    t->state = TaskState::kSleeping;
    t->delay.transition(now(), obs::TaskDelayState::kEpollBlocked);
  }
  schedule(c);
  return false;
}

bool Kernel::handle_epoll_post(Core& c, Task* t, const EpollPostAction& a) {
  auto& ep = epolls_.get(a.epfd);
  SimDuration cost = cfg_.costs.syscall_entry;
  cost += epolls_.lock_instance(ep, now(), cfg_.costs.bucket_lock_hold, c.id,
                                t->tid) +
          cfg_.costs.bucket_lock_hold;
  ++ep.posted;
  EO_TRACE_EVENT(&tracer_, c.id, trace::EventKind::kEpollPost, t->tid,
                 static_cast<std::uint64_t>(a.epfd),
                 ep.waiters.empty() ? 0u : 1u);
  if (ep.waiters.empty()) {
    ep.ready.push_back(a.data);
    t->overhead += cost;
    finish_action(t, 0);
    return true;
  }
  const auto w = ep.waiters.front();
  ep.waiters.pop_front();
  ++ep.consumed;
  finish_action(w.task, a.data);
  // Deliver via the same serialized wake machinery, but the result is
  // already set on the waiter; the chain only performs the wakeups.
  WakeChain* chain = alloc_chain();
  w.task->waiter.vb = w.vb;
  chain->waiters.push_back(&w.task->waiter);
  start_wake_chain(c, t, chain, cost, /*delivered=*/true);
  return false;
}

void Kernel::epoll_post_external(int epfd, std::uint64_t data) {
  auto& ep = epolls_.get(epfd);
  ++ep.posted;
  EO_TRACE_EVENT(&tracer_, -1, trace::EventKind::kEpollPost, 0,
                 static_cast<std::uint64_t>(epfd),
                 ep.waiters.empty() ? 0u : 1u);
  if (ep.waiters.empty()) {
    ep.ready.push_back(data);
    return;
  }
  const auto w = ep.waiters.front();
  ep.waiters.pop_front();
  ++ep.consumed;
  finish_action(w.task, data);
  // Interrupt-context wakeup: the cost is paid by the "IRQ", not a task.
  if (w.vb) {
    wake_task_vb(w.task);
  } else {
    wake_task_vanilla(w.task);
  }
}

// ---------------------------------------------------------------------------
// Sleep / exit
// ---------------------------------------------------------------------------

void Kernel::handle_sleep(Core& c, Task* t, const SleepAction& a) {
  t->block_start = now();
  EO_TRACE_EVENT(&tracer_, c.id, trace::EventKind::kSleep, t->tid,
                 a.duration > 0 ? static_cast<std::uint64_t>(a.duration) : 1u,
                 0);
  deschedule_current(c, /*requeue=*/false, /*voluntary=*/true);
  t->state = TaskState::kSleeping;
  t->delay.transition(now(), obs::TaskDelayState::kSleeping);
  const SimDuration d = std::max<SimDuration>(a.duration, 1);
  engine_.schedule_after(d, [this, t] {
    if (t->state != TaskState::kSleeping) return;
    finish_action(t, 0);
    wake_task_vanilla(t);
  });
  schedule(c);
}

void Kernel::handle_exit(Core& c, Task* t) {
  EO_TRACE_EVENT(&tracer_, c.id, trace::EventKind::kTaskExit, t->tid, 0, 0);
  deschedule_current(c, /*requeue=*/false, /*voluntary=*/true);
  t->state = TaskState::kExited;
  // The final interval (still kOncpu: exit happens from the CPU) is charged
  // and the record sealed; lifetime is now fixed.
  t->delay.finish(now());
  --live_tasks_;
  if (live_tasks_ == 0) last_exit_time_ = now();
  schedule(c);
}

// ---------------------------------------------------------------------------
// BWD timer
// ---------------------------------------------------------------------------

void Kernel::bwd_timer_fire(Core& c) {
  if (!c.online) return;
  ++stats_.bwd_timer_fires;
  account_segment(c);
  const auto verdict =
      bwd_.evaluate(c.lbr, c.pmc, c.window, c.id,
                    c.current != nullptr ? c.current->tid : 0);
  if (c.window.busy > 0) bwd_accuracy_.add(verdict);
  if (verdict.detected) {
    ++stats_.bwd_detections;
    Task* t = c.current;
    if (t != nullptr && !t->in_kernel && !c.in_switch &&
        policy_->nr_schedulable(c.id) > 0) {
      ++stats_.bwd_descheduled;
      ++t->stats.bwd_descheduled;
      EO_TRACE_EVENT(&tracer_, c.id, trace::EventKind::kBwdDesched, t->tid,
                     verdict.ground_truth_spin ? 1u : 0u, 0);
      deschedule_current(c, /*requeue=*/true, /*voluntary=*/false);
      policy_->bwd_mark_skip(c.id, &t->se);
      // The whole delay a detection induces — from the skip mark until the
      // task next gets the CPU — is attributed to the skip, even after the
      // skip window itself expires.
      t->delay.transition(now(), obs::TaskDelayState::kBwdSkipDelayed);
      schedule(c);
    }
  }
  // Timer overhead is charged to whoever is running.
  if (c.current != nullptr) c.current->overhead += cfg_.costs.bwd_timer_fire;
  c.lbr.clear();
  c.pmc.clear();
  c.window = core::BwdWindowTruth{};
}

// ---------------------------------------------------------------------------
// Load balancing
// ---------------------------------------------------------------------------

void Kernel::balance_timer_fire(Core& c) {
  if (!c.online) return;
  try_balance(c, /*newly_idle=*/false);
}

bool Kernel::try_balance(Core& c, bool newly_idle) {
  if (!c.online) return false;
  const auto d = policy_->balance(
      c.id, [this](int i) { return core(i).online; }, newly_idle);
  if (!d) return false;
  apply_migration(*d);
  return true;
}

void Kernel::apply_migration(const sched::BalanceDecision& d) {
  Core& dst = core(d.dst_cpu);
  Task* t = task_of(d.victim);
  policy_->dequeue(d.src_cpu, d.victim);
  (d.cross_socket ? stats_.migrations_cross_node
                  : stats_.migrations_in_node)++;
  ++t->stats.migrations;
  t->resume_penalty = std::max(
      t->resume_penalty,
      cache_.migration_penalty(t->mem.working_set, d.cross_socket) +
          cfg_.costs.migration_base);
  t->last_cpu = d.dst_cpu;
  EO_TRACE_EVENT(&tracer_, d.dst_cpu, trace::EventKind::kMigration, t->tid,
                 static_cast<std::uint64_t>(d.src_cpu),
                 static_cast<std::uint64_t>(d.dst_cpu));
  // Translate the victim into the destination queue's fairness window.
  policy_->place_migrated(d.src_cpu, d.dst_cpu, d.victim);
  // Queue wait at the destination until first dispatch is kMigrating;
  // VB-parked victims keep their park attribution.
  if (!t->se.vb_blocked) {
    t->delay.transition(now(), obs::TaskDelayState::kMigrating);
  }
  kick(dst);
}

}  // namespace eo::kern
