// wake_q: deferred-wakeup list.
//
// Linux's futex_wake moves waiters from the hash-bucket queue onto a
// temporary wake_q under the bucket lock (cheap), releases the lock, and
// only then performs the expensive per-waiter try_to_wake_up calls. The
// paper identifies both halves as serialization sources under
// oversubscription. The structure itself is trivial; the costs are charged
// by the kernel when it drains the list.
#pragma once

#include <vector>

namespace eo::kern {

struct Task;

struct WakeQ {
  std::vector<Task*> tasks;

  void add(Task* t) { tasks.push_back(t); }
  bool empty() const { return tasks.empty(); }
  std::size_t size() const { return tasks.size(); }
  void clear() { tasks.clear(); }
};

}  // namespace eo::kern
