// Simulated task (thread).
//
// The analogue of `task_struct`: identity, run state, the embedded
// scheduling entity, the coroutine driving the thread's program, the pending
// action being interpreted by the kernel, and per-task statistics.
#pragma once

#include <coroutine>
#include <cstdint>
#include <memory>
#include <string>

#include "common/units.h"
#include "futex/waiter_link.h"
#include "hw/cache_model.h"
#include "kern/action.h"
#include "obs/taskstats.h"
#include "sched/entity.h"

namespace eo::kern {

enum class TaskState {
  kNew,       ///< created, not yet started
  kRunnable,  ///< on a runqueue (possibly VB-parked)
  kRunning,   ///< currently on a core
  kSleeping,  ///< off the runqueue (vanilla blocking or nanosleep)
  kExited,
};

const char* to_string(TaskState s);

struct TaskStats {
  SimDuration cpu_time = 0;       ///< wall time on a core (incl. spinning)
  SimDuration spin_time = 0;      ///< portion of cpu_time spent busy-waiting
  SimDuration sleep_time = 0;     ///< time blocked (vanilla sleep or VB park)
  std::uint64_t voluntary_switches = 0;
  std::uint64_t involuntary_switches = 0;
  std::uint64_t migrations = 0;
  std::uint64_t wakeups = 0;
  std::uint64_t futex_waits = 0;
  std::uint64_t vb_parks = 0;
  std::uint64_t bwd_descheduled = 0;
};

struct Task {
  Task(int tid_in, std::string name_in) : tid(tid_in), name(std::move(name_in)) {
    se.task = this;
    se.tid = tid_in;
    waiter.task = this;
  }
  ~Task() {
    if (top) top.destroy();
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  int tid;
  std::string name;
  TaskState state = TaskState::kNew;
  sched::SchedEntity se;

  /// Owning handle of the thread's top-level coroutine.
  std::coroutine_handle<> top;
  /// Innermost suspended coroutine; what the kernel resumes.
  std::coroutine_handle<> resume_point;

  /// Action awaiting kernel interpretation.
  Action pending;
  /// Result delivered to the awaitable's await_resume.
  std::uint64_t action_result = 0;

  /// Cost of synchronously interpreted operations, charged as wall time at
  /// the next scheduling boundary.
  SimDuration overhead = 0;
  /// One-shot penalty (cache refill after context switch / migration)
  /// charged when the task next runs.
  SimDuration resume_penalty = 0;

  /// Memory behaviour of the current program phase.
  hw::MemProfile mem;

  int last_cpu = -1;
  bool pinned = false;
  int pin_cpu = -1;

  /// Set while the kernel is executing an asynchronous wake chain on this
  /// task's behalf (non-preemptible, as kernel code is).
  bool in_kernel = false;

  /// Intrusive wait-queue membership: spliced into a futex bucket, an epoll
  /// wake chain, or an in-flight WakeChain (at most one at a time). The
  /// link's vb flag is the blocking mode chosen at wait time.
  futex::WaiterLink waiter;

  /// Block bookkeeping: the futex word or epoll fd the task waits on.
  SimWord* wait_word = nullptr;
  int wait_epfd = -1;
  /// Blocked via virtual blocking (still on the runqueue) vs vanilla sleep.
  bool vb_waiting = false;
  /// Time the current block started (for sleep_time accounting).
  SimTime block_start = 0;
  /// Time the task last became runnable after an unblock; -1 when it has
  /// already run since. Feeds the wakeup-latency histogram and trace.
  SimTime runnable_since = -1;

  TaskStats stats;

  /// Per-state delay accounting (sim-taskstats): every instant of the task's
  /// lifetime is attributed to exactly one obs::TaskDelayState. Updated at
  /// the kernel's state-transition points; the sampler cross-checks the
  /// conservation invariant (state times sum to lifetime) on every tick.
  obs::TaskDelayAcct delay;

  /// Keeps the thread-function object (lambda captures) alive for the
  /// coroutine frame's lifetime.
  std::shared_ptr<void> keepalive;

  bool exited() const { return state == TaskState::kExited; }
};

}  // namespace eo::kern
