// The simulated OS kernel.
//
// Owns the event engine, the cores and their scheduler policy (a pluggable
// sched::SchedPolicy; CFS is the default plugin), the futex and epoll
// subsystems, the per-core hardware monitoring state (LBR/PMC), and the
// paper's two mechanisms (virtual blocking and busy-waiting detection). It
// interprets the Actions issued by task coroutines, advancing simulated time
// through engine events.
//
// Threading model: one Kernel instance is strictly single-(host-)threaded.
// Benches run many Kernels concurrently, one per host thread.
#pragma once

#include <coroutine>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/bwd.h"
#include "core/config.h"
#include "core/vb_policy.h"
#include "epollsim/epoll.h"
#include "futex/futex.h"
#include "hw/cache_model.h"
#include "hw/instr_stream.h"
#include "hw/lbr.h"
#include "hw/ple.h"
#include "hw/pmc.h"
#include "hw/topology.h"
#include "kern/klock.h"
#include "kern/task.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/watchdog.h"
#include "sched/cfs.h"
#include "sched/hrtimer.h"
#include "sched/policy.h"
#include "sched/sched_stats.h"
#include "sim/engine.h"
#include "trace/trace.h"

namespace eo::kern {

struct KernelConfig {
  hw::Topology topo = hw::Topology::make_cores(8, 1);
  sched::CfsParams cfs;
  /// Scheduler policy plugin: one of sched::policy_names() ("cfs", "fifo",
  /// "rr", "pcfs"); see src/sched/README.md.
  std::string policy = "cfs";
  /// Tunables for the non-CFS policies (ignored by "cfs").
  sched::PolicyParams policy_params;
  core::Features features;
  core::CostModel costs;
  hw::CacheParams cache;
  hw::TlbParams tlb;
  hw::InstrProfile instr;
  hw::PleParams ple;  ///< `enabled` is overridden from features.ple
  std::uint64_t seed = 0x5eedbeef;
  /// Reference per-thread footprint for compute-rate calibration; 0 means
  /// "use the task's own footprint" (no relative scaling).
  std::uint64_t ref_footprint = 0;
  /// Event tracing (sim-ftrace); disabled by default.
  trace::TraceConfig trace;
  /// Live telemetry sampling (sim-top); disabled by default.
  obs::SamplerConfig metrics;
  /// Export the per-task delay accounting (sim-taskstats) as an
  /// `eo-taskstats` section of the metrics snapshot. The accounting itself
  /// is always maintained when metrics are compiled in (it is pure
  /// bookkeeping and never perturbs the simulation); this flag only gates
  /// the export.
  bool taskstats = false;
};

/// Per-core utilization/diagnostic counters.
struct CoreMetrics {
  SimDuration busy = 0;        ///< any execution (incl. kernel wake chains)
  SimDuration spin_busy = 0;   ///< busy time spent in spin segments
  SimDuration vb_check = 0;    ///< busy time spent in VB flag-check quanta
};

class Kernel {
 public:
  explicit Kernel(KernelConfig cfg);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // --- configuration access ---
  const KernelConfig& config() const { return cfg_; }
  sim::Engine& engine() { return engine_; }
  SimTime now() const { return engine_.now(); }
  int n_cores() const { return static_cast<int>(cores_.size()); }
  int online_cores() const { return n_online_; }

  // --- task lifecycle (used by the runtime layer) ---
  /// Creates a task; the runtime attaches a coroutine before starting it.
  Task* create_task(std::string name);
  /// Attaches the top-level coroutine (owning handle + initial resume point).
  void attach_coroutine(Task* t, std::coroutine_handle<> top);
  /// Places the task on a runqueue (round-robin if cpu < 0) and makes it
  /// runnable. Must be called once, after attach_coroutine.
  void start_task(Task* t, int cpu = -1);
  /// Pins the task to a core (wakeups and balancing will not move it).
  void pin_task(Task* t, int cpu);

  /// Thread-local current task, set while the kernel resumes a coroutine;
  /// used by the runtime's awaitables.
  static Task* current();

  // --- simulated resources ---
  SimWord* alloc_word(std::uint64_t init = 0);
  int epoll_create();
  /// Injects an event into an epoll instance from outside the simulation
  /// (e.g. the client load generator); wakes a waiter if one is blocked.
  void epoll_post_external(int epfd, std::uint64_t data);

  // --- execution ---
  /// Runs the simulation until `t` (absolute).
  void run_until(SimTime t);
  /// Runs until all started tasks have exited or `deadline` passes.
  /// Returns true if all tasks exited.
  bool run_to_exit(SimTime deadline);
  int live_tasks() const { return live_tasks_; }
  /// Time the last live task exited (valid once live_tasks() == 0); the
  /// workload's true completion time, independent of run chunking.
  SimTime last_exit_time() const { return last_exit_time_; }

  // --- elasticity ---
  /// Brings cores [0, n) online and the rest offline, migrating tasks off
  /// offlined cores (models runtime CPU re-provisioning of a container).
  void set_online_cores(int n);

  // --- scheduling policy ---
  sched::SchedPolicy& policy() { return *policy_; }
  const sched::SchedPolicy& policy() const { return *policy_; }

  // --- tracing ---
  trace::Tracer& tracer() { return tracer_; }
  const trace::Tracer& tracer() const { return tracer_; }
  /// Merged, time-ordered trace with task-name metadata attached.
  trace::Trace snapshot_trace() const;

  // --- live telemetry (src/obs) ---
  const obs::MetricRegistry& metric_registry() const {
    return metric_registry_;
  }
  const obs::Sampler& sampler() const { return sampler_; }
  const obs::InvariantWatchdog& watchdog() const { return watchdog_; }
  /// Registry values, retained time series, and the watchdog verdict, ready
  /// for the obs exporters.
  obs::MetricsDoc snapshot_metrics() const;
  /// Per-task delay accounting snapshot (one record per task, creation
  /// order); open intervals are charged to the current state, so every
  /// record satisfies the conservation invariant at `now()`.
  obs::TaskstatsDoc snapshot_taskstats() const;

  // --- metrics ---
  const sched::SchedStats& stats() const { return stats_; }
  const core::BwdAccuracy& bwd_accuracy() const { return bwd_accuracy_; }
  /// Unblock -> first-run latency of every wakeup (vanilla and VB).
  const Histogram& wakeup_latency() const { return wakeup_latency_; }
  const CoreMetrics& core_metrics(int cpu) const {
    return cores_[static_cast<size_t>(cpu)]->metrics;
  }
  /// Aggregate utilization of online cores since the last reset, as a
  /// percentage where each core contributes up to 100 (Table 1 style).
  double cpu_utilization_percent() const;
  SimDuration total_busy() const;
  SimDuration total_spin_busy() const;
  /// Clears utilization/stat counters (not task state); call after warmup.
  void reset_metrics();

  const std::vector<std::unique_ptr<Task>>& tasks() const { return tasks_; }

 private:
  struct Core {
    explicit Core(int id_in) : id(id_in) {}

    int id;
    bool online = true;
    KLock rq_lock;
    Task* current = nullptr;

    /// Pending completion/quantum event for the running task.
    sim::EventId run_event = sim::kInvalidEvent;
    /// Deferred wakeup-preemption event (min_granularity enforcement).
    sim::EventId preempt_event = sim::kInvalidEvent;
    /// A kick (idle wake) is already scheduled.
    bool kick_pending = false;
    /// Wakeup preemption requested while current is non-preemptible.
    bool need_resched = false;
    /// Currently charging a context-switch delay.
    bool in_switch = false;

    /// The task last run, to distinguish real switches from re-picks.
    Task* last_task = nullptr;

    /// Busy-interval accounting: busy_since is valid while busy_valid.
    bool busy_valid = false;
    SimTime busy_since = 0;

    /// Start and SMT speed of the current compute/spin run interval.
    SimTime run_start = 0;
    double run_speed = 1.0;

    /// Execution-segment tracking for LBR/PMC accounting.
    SimTime seg_start = 0;
    hw::SegmentKind seg_kind = hw::SegmentKind::kRegular;
    hw::BranchSite seg_site = hw::kVariedSites;
    bool seg_pause = false;

    hw::LbrState lbr;
    hw::Pmc pmc;
    core::BwdWindowTruth window;
    sched::RepeatingTimer bwd_timer;
    sched::RepeatingTimer balance_timer;
    Rng rng;

    CoreMetrics metrics;
  };

  /// One asynchronous futex/epoll wake chain (serialized in the waker).
  /// Chains are pooled by the kernel (alloc_chain/release_chain): a wakeup
  /// borrows a chain and the engine events capture a raw pointer, so the
  /// steady state performs no allocation and no atomic refcounting per wake.
  /// Waiters are spliced from the bucket's intrusive list straight onto the
  /// chain's (each Task embeds one WaiterLink), so filling a chain never
  /// touches the heap either. Exactly one engine event per chain is in
  /// flight at a time, and chain events are never canceled, so the kernel
  /// (which outlives its engine events) is the only owner.
  struct WakeChain {
    Task* waker = nullptr;
    int waker_cpu = -1;
    futex::WaiterList waiters;
    std::uint64_t result = 0;
    /// Results were already delivered to the waiters (epoll path).
    bool delivered = false;
  };

  WakeChain* alloc_chain();
  void release_chain(WakeChain* chain);

  // --- scheduling machinery ---
  Core& core(int id) { return *cores_[static_cast<size_t>(id)]; }
  void schedule(Core& c);
  void begin_current(Core& c);
  void resume_step(Core& c, Task* t);
  void setup_compute(Core& c, Task* t, ComputeAction& a);
  void compute_event(Core& c);
  void setup_spin(Core& c, Task* t, SpinUntilAction& a);
  void spin_slice_event(Core& c);
  void spin_exit_event(Task* t, SimWord* w);
  void setup_vb_check(Core& c, Task* t);
  void finish_action(Task* t, std::uint64_t result);
  /// Cancels the pending run event, accruing compute progress / spinner
  /// registration as appropriate.
  void stop_run(Core& c);
  /// Accounts vruntime/busy/LBR for the running interval ending now, and
  /// removes current from the core (requeue => stays runnable).
  void deschedule_current(Core& c, bool requeue, bool voluntary);
  void account_segment(Core& c);
  /// Charges vruntime/cpu_time for execution since exec_start and restarts
  /// the interval (slice renewal).
  void account_tick(Core& c);
  void set_segment(Core& c, hw::SegmentKind kind, hw::BranchSite site,
                   bool pause);
  void kick(Core& c);
  void maybe_preempt(Core& c, const sched::SchedEntity* wakee);
  void do_preempt(Core& c);
  bool smt_sibling_busy(const Core& c) const;
  double execution_speed(const Core& c) const;
  SimDuration slice_left(Core& c, Task* t) const;

  // --- action handlers ---
  void perform_atomic(Core& c, Task* t, const AtomicAction& a);
  bool handle_futex_wait(Core& c, Task* t, const FutexWaitAction& a);
  bool handle_futex_wake(Core& c, Task* t, const FutexWakeAction& a);
  bool handle_epoll_wait(Core& c, Task* t, const EpollWaitAction& a);
  bool handle_epoll_post(Core& c, Task* t, const EpollPostAction& a);
  void handle_sleep(Core& c, Task* t, const SleepAction& a);
  void handle_exit(Core& c, Task* t);

  // --- wake machinery ---
  /// Launches a chain whose `waiters` the caller filled in place (borrowed
  /// from alloc_chain, so the steady state builds no per-wake vector).
  /// `delivered` marks chains whose waiters already carry their results
  /// (epoll path).
  void start_wake_chain(Core& c, Task* waker, WakeChain* chain,
                        SimDuration initial_cost, bool delivered);
  void wake_chain_step(WakeChain* chain);
  /// Vanilla wakeup of a sleeping task: core selection, enqueue, preempt.
  /// Returns the waker-side cost.
  SimDuration wake_task_vanilla(Task* t);
  /// VB wakeup: clear the flag, restore vruntime. Returns waker-side cost.
  SimDuration wake_task_vb(Task* t);
  int select_wake_cpu(Task* t);
  void notify_spinners(SimWord* word);
  void spinner_exit(Core& c, Task* t);

  // --- live telemetry ---
  void register_metrics();
  /// Sampler callback: fills one CoreSample per core plus the ground truth.
  void collect_sample(obs::CoreSample* cores, obs::GlobalSample* g) const;

  // --- timers ---
  void bwd_timer_fire(Core& c);
  void balance_timer_fire(Core& c);
  bool try_balance(Core& c, bool newly_idle);
  void apply_migration(const sched::BalanceDecision& d);

  KernelConfig cfg_;
  sim::Engine engine_;
  trace::Tracer tracer_;
  hw::CacheModel cache_;
  hw::InstrStreamModel instr_;
  hw::PleModel ple_;
  core::VbPolicy vb_policy_;
  core::BwdDetector bwd_;
  /// The pluggable scheduler (built from cfg_.policy); owns every per-core
  /// queue and all scheduling decisions. The kernel applies the mechanism.
  std::unique_ptr<sched::SchedPolicy> policy_;
  futex::FutexTable futex_;
  epollsim::EpollTable epolls_;

  /// Wake-chain pool: stable storage plus a free list of recycled chains.
  std::deque<WakeChain> chain_storage_;
  std::vector<WakeChain*> chain_free_;

  std::vector<std::unique_ptr<Core>> cores_;
  int n_online_ = 0;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::deque<SimWord> words_;
  int next_tid_ = 1;
  int next_start_cpu_ = 0;
  int live_tasks_ = 0;

  sched::SchedStats stats_;
  core::BwdAccuracy bwd_accuracy_;
  obs::MetricRegistry metric_registry_;
  obs::InvariantWatchdog watchdog_;
  obs::Sampler sampler_;
  Histogram wakeup_latency_;
  SimTime metrics_reset_time_ = 0;
  SimTime last_exit_time_ = 0;
  bool pinned_violation_ = false;
  Rng rng_;

 public:
  /// A pinned task's core went offline (the paper: such programs crashed).
  bool pinned_violation() const { return pinned_violation_; }
};

}  // namespace eo::kern
