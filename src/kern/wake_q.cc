// WakeQ is header-only; anchor translation unit.
#include "kern/wake_q.h"
