// Actions: the syscall/instruction interface between simulated threads and
// the simulated kernel.
//
// A simulated thread is a C++20 coroutine. When it needs simulated time to
// pass — computing, spinning, blocking — it co_awaits an awaitable that
// stores one of these Action values on its Task and suspends; the kernel
// interprets the action, advances simulated time, and eventually resumes the
// coroutine with a result. Cheap operations (atomic instructions) are
// interpreted synchronously in the kernel's resume loop and only accumulate
// cost; scheduling-relevant operations (compute, spin, futex, epoll) end the
// resume loop and are driven by events.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "common/units.h"
#include "hw/cache_model.h"
#include "hw/instr_stream.h"
#include "hw/lbr.h"

namespace eo::kern {

struct Task;

/// A simulated shared-memory word. Workload code never touches the value
/// directly; all access goes through atomic actions so the kernel can notify
/// spinners on stores. The simulation is single-threaded, so atomicity is by
/// construction; the action cost models the instruction latency.
class SimWord {
 public:
  std::uint64_t peek() const { return value_; }
  /// Stable per-kernel id (allocation order); used as the futex hash key so
  /// runs are independent of heap addresses.
  std::uint64_t id() const { return id_; }

 private:
  friend class Kernel;
  std::uint64_t id_ = 0;
  std::uint64_t value_ = 0;
  /// Tasks currently spinning on this word *while running on a core*.
  std::vector<Task*> running_spinners_;
};

enum class AtomicOp {
  kLoad,
  kStore,         ///< operand a = value
  kExchange,      ///< operand a = new value; result = old
  kCompareSwap,   ///< a = expected, b = desired; result = 1 on success
  kFetchAdd,      ///< a = addend; result = old value
};

/// Run `duration` of computation. `duration` is work at the calibration
/// rate; the kernel converts it to wall time using the task's memory profile
/// and charges context-switch / migration penalties on resumption.
struct ComputeAction {
  SimDuration duration = 0;
  hw::SegmentKind kind = hw::SegmentKind::kRegular;
  /// Branch site for kTightLoop segments (feeds the LBR model).
  hw::BranchSite site = hw::kVariedSites;
  /// Internal: wall-time remaining; <0 until the kernel initializes it.
  SimDuration remaining_wall = -1;
};

struct AtomicAction {
  SimWord* word = nullptr;
  AtomicOp op = AtomicOp::kLoad;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Predicate over a SimWord value for spin loops, as a flat value type.
///
/// Spin setup is one of the simulator's hottest paths (every lock acquisition
/// and barrier wait issues one); a `std::function` here heap-allocated on the
/// host for every capturing predicate. The common comparisons are expressed
/// as a kind enum, and anything richer goes through a capture-free function
/// pointer with one 64-bit argument — no allocation in either case.
class SpinPredicate {
 public:
  using Fn = bool (*)(std::uint64_t value, std::uint64_t arg);

  /// Default: "until nonzero" (never relied upon; actions always set one).
  constexpr SpinPredicate() : SpinPredicate(Kind::kNe, 0, 0, nullptr) {}

  static constexpr SpinPredicate eq(std::uint64_t v) {
    return {Kind::kEq, v, 0, nullptr};
  }
  static constexpr SpinPredicate ne(std::uint64_t v) {
    return {Kind::kNe, v, 0, nullptr};
  }
  static constexpr SpinPredicate ge(std::uint64_t v) {
    return {Kind::kGe, v, 0, nullptr};
  }
  /// True when `(value & mask) == want`.
  static constexpr SpinPredicate masked_eq(std::uint64_t mask,
                                           std::uint64_t want) {
    return {Kind::kMaskedEq, want, mask, nullptr};
  }
  /// Escape hatch for shapes the enum does not cover; `fn` must be a plain
  /// function (or capture-free lambda) and receives `arg` alongside the value.
  static constexpr SpinPredicate fn(Fn f, std::uint64_t arg = 0) {
    return {Kind::kFn, arg, 0, f};
  }

  bool operator()(std::uint64_t value) const {
    switch (kind_) {
      case Kind::kEq:
        return value == a_;
      case Kind::kNe:
        return value != a_;
      case Kind::kGe:
        return value >= a_;
      case Kind::kMaskedEq:
        return (value & b_) == a_;
      case Kind::kFn:
        return fn_(value, a_);
    }
    return false;
  }

 private:
  enum class Kind : std::uint8_t { kEq, kNe, kGe, kMaskedEq, kFn };

  constexpr SpinPredicate(Kind k, std::uint64_t a, std::uint64_t b, Fn f)
      : kind_(k), a_(a), b_(b), fn_(f) {}

  Kind kind_;
  std::uint64_t a_;
  std::uint64_t b_;
  Fn fn_;
};

/// Busy-wait until `pred(word value)` is true. The task occupies its core
/// while spinning (this is the pathology BWD addresses).
struct SpinUntilAction {
  SimWord* word = nullptr;
  SpinPredicate pred;
  hw::BranchSite site = 0;
  /// Body contains PAUSE/NOP (visible to PLE in VM mode).
  bool uses_pause = false;
  /// Absolute give-up time (< 0 = spin forever). A timed-out spin resumes
  /// with result 0; success resumes with 1. Used by spin-then-park locks.
  SimTime deadline = -1;
  /// Internal: an exit event is already scheduled for this spinner.
  bool exit_scheduled = false;
  /// Internal: accumulated PLE exit overhead to charge on spin exit.
  SimDuration ple_overhead = 0;
};

/// futex(FUTEX_WAIT): block if *word == expected. Result: 0 = woken,
/// 1 = EWOULDBLOCK (value changed).
struct FutexWaitAction {
  SimWord* word = nullptr;
  std::uint64_t expected = 0;
};

/// futex(FUTEX_WAKE): wake up to n waiters. Result: number woken.
struct FutexWakeAction {
  SimWord* word = nullptr;
  int n = 1;
};

/// epoll_wait: block until an event is available. Result: the event payload.
struct EpollWaitAction {
  int epfd = -1;
};

/// Post an event to an epoll instance (e.g. a request arriving on a
/// connection). Result: none.
struct EpollPostAction {
  int epfd = -1;
  std::uint64_t data = 0;
};

/// sched_yield().
struct YieldAction {};

/// nanosleep(duration) — real timed sleep, off the runqueue.
struct SleepAction {
  SimDuration duration = 0;
};

/// Switch the task's memory profile (entering a new program phase).
struct SetMemProfileAction {
  hw::MemProfile profile;
};

/// Thread termination (issued by the coroutine's final suspend).
struct ExitAction {};

using Action =
    std::variant<std::monostate, ComputeAction, AtomicAction, SpinUntilAction,
                 FutexWaitAction, FutexWakeAction, EpollWaitAction,
                 EpollPostAction, YieldAction, SleepAction,
                 SetMemProfileAction, ExitAction>;

}  // namespace eo::kern
