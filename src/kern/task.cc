#include "kern/task.h"

namespace eo::kern {
// to_string(TaskState) is defined alongside the kernel (kernel.cc) to keep
// task.h header-only consumers light; this TU anchors the module.
}  // namespace eo::kern
