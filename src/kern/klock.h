// Kernel-lock serialization model.
//
// The paper's wakeup-path analysis hinges on lock *serialization*: the futex
// hash-bucket lock and the per-core runqueue locks force concurrent wakers
// and schedulers through one-at-a-time critical sections. In a
// discrete-event simulation a lock is a resource with a `next_free` time:
// acquiring at time t waits max(0, next_free - t), then occupies it for the
// hold duration. This captures queueing delay (including convoys when many
// wakers hammer one runqueue) without simulating the lock-word cacheline.
#pragma once

#include <cstdint>

#include "common/units.h"

namespace eo::kern {

class KLock {
 public:
  /// Acquires at `now`, holding for `hold`. Returns the wait time (0 if the
  /// lock was free); the caller's total cost is wait + hold.
  SimDuration acquire(SimTime now, SimDuration hold) {
    const SimTime start = now > next_free_ ? now : next_free_;
    const SimDuration wait = start - now;
    next_free_ = start + hold;
    ++acquisitions_;
    total_wait_ += wait;
    total_hold_ += hold;
    return wait;
  }

  /// True if an acquire at `now` would not wait.
  bool free_at(SimTime now) const { return next_free_ <= now; }

  std::uint64_t acquisitions() const { return acquisitions_; }
  SimDuration total_wait() const { return total_wait_; }
  SimDuration total_hold() const { return total_hold_; }

 private:
  SimTime next_free_ = 0;
  std::uint64_t acquisitions_ = 0;
  SimDuration total_wait_ = 0;
  SimDuration total_hold_ = 0;
};

}  // namespace eo::kern
