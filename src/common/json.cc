#include "common/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace eo::json {

const Value* Value::get(const std::string& key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Parser: full grammar (objects, arrays, strings with escapes, numbers,
// true/false/null), recursive descent over the raw text.
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  bool parse(Value* out, std::string* err) {
    skip_ws();
    if (!value(out)) {
      if (err != nullptr) {
        *err = "JSON parse error near offset " + std::to_string(pos_) + ": " +
               err_;
      }
      return false;
    }
    skip_ws();
    if (pos_ != s_.size()) {
      if (err != nullptr) {
        *err = "trailing garbage at offset " + std::to_string(pos_);
      }
      return false;
    }
    return true;
  }

 private:
  bool fail(const char* why) {
    if (err_.empty()) err_ = why;
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return fail("bad literal");
    pos_ += n;
    return true;
  }

  bool value(Value* out) {
    if (pos_ >= s_.size()) return fail("unexpected end");
    const char c = s_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out->type = Value::kString;
      return string(&out->str);
    }
    if (c == 't') {
      out->type = Value::kBool;
      out->b = true;
      return literal("true");
    }
    if (c == 'f') {
      out->type = Value::kBool;
      out->b = false;
      return literal("false");
    }
    if (c == 'n') {
      out->type = Value::kNull;
      return literal("null");
    }
    return number(out);
  }

  bool object(Value* out) {
    out->type = Value::kObject;
    consume('{');
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!string(&key)) return fail("expected object key");
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      Value v;
      if (!value(&v)) return false;
      out->fields.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool array(Value* out) {
    out->type = Value::kArray;
    consume('[');
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      skip_ws();
      Value v;
      if (!value(&v)) return false;
      out->items.push_back(std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  bool string(std::string* out) {
    if (!consume('"')) return fail("expected string");
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return fail("raw control char");
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return fail("dangling escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out->push_back(e);
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 'b':
        case 'f':
          out->push_back(' ');
          break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return fail("short \\u escape");
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) {
              return fail("bad \\u escape");
            }
          }
          pos_ += 4;
          out->push_back('?');  // validation only needs well-formedness
          break;
        }
        default:
          return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool number(Value* out) {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    char* end = nullptr;
    const std::string tok = s_.substr(start, pos_ - start);
    out->num = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("bad number");
    out->type = Value::kNumber;
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string err_;
};

}  // namespace

bool parse(const std::string& text, Value* out, std::string* err) {
  return Parser(text).parse(out, err);
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

void Writer::sep() {
  if (pending_value_) {
    // Value directly follows its key; no separator.
    pending_value_ = false;
    return;
  }
  if (stack_.empty()) return;
  if (!stack_.back().first) os_ << ',';
  stack_.back().first = false;
}

void Writer::begin_object() {
  sep();
  os_ << '{';
  stack_.push_back({/*array=*/false, /*first=*/true});
}

void Writer::end_object() {
  os_ << '}';
  stack_.pop_back();
}

void Writer::begin_array() {
  sep();
  os_ << '[';
  stack_.push_back({/*array=*/true, /*first=*/true});
}

void Writer::end_array() {
  os_ << ']';
  stack_.pop_back();
}

Writer& Writer::key(const std::string& k) {
  sep();
  os_ << '"' << escape(k) << "\":";
  pending_value_ = true;
  return *this;
}

void Writer::value(const std::string& s) {
  sep();
  os_ << '"' << escape(s) << '"';
}

void Writer::value(const char* s) { value(std::string(s)); }

void Writer::value(double d) {
  sep();
  if (!std::isfinite(d)) {
    // JSON has no NaN/Inf; the validators would reject the bare tokens.
    os_ << "null";
    return;
  }
  char buf[40];
  const auto res = std::to_chars(buf, buf + sizeof(buf), d);
  os_.write(buf, res.ptr - buf);
}

void Writer::value(std::int64_t v) {
  sep();
  os_ << v;
}

void Writer::value(std::uint64_t v) {
  sep();
  os_ << v;
}

void Writer::value(bool v) {
  sep();
  os_ << (v ? "true" : "false");
}

void Writer::null() {
  sep();
  os_ << "null";
}

}  // namespace eo::json
