// Deterministic random number generation.
//
// Every stochastic component of the simulator draws from an `Rng` that is
// seeded explicitly, so a simulation run is a pure function of its
// configuration. The generator is xoshiro256**, which is fast, has a 256-bit
// state, and passes BigCrush; we avoid std::mt19937 because its 5 KB state
// makes per-entity generators expensive and its distributions are not
// reproducible across standard library implementations. All distribution
// sampling is implemented here so results are bit-identical on any platform.
#pragma once

#include <cstdint>

namespace eo {

/// Deterministic xoshiro256** generator with portable distribution sampling.
class Rng {
 public:
  /// Seeds the generator. Two `Rng`s with the same seed produce identical
  /// streams on every platform.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Returns the next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). `bound` must be nonzero.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Poisson-distributed count with the given mean (>= 0). Uses inversion for
  /// small means and a normal approximation (rounded, clamped at 0) for large
  /// means; both paths are deterministic.
  std::uint64_t poisson(double mean);

  /// Standard normal deviate (Box-Muller, deterministic).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli trial with success probability p in [0, 1].
  bool chance(double p);

  /// Splits off an independent generator; used to give each simulated entity
  /// its own stream so adding an entity does not perturb the others.
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace eo
