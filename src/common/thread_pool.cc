#include "common/thread_pool.h"

#include <atomic>

#include "common/logging.h"

namespace eo {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::thread::hardware_concurrency();
    if (n_threads == 0) n_threads = 4;
  }
  workers_.reserve(n_threads);
  for (std::size_t i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> fn) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    EO_CHECK(!stopping_) << "submit on stopped pool";
    queue_.push_back(std::move(fn));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_idle_.wait(lk, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_task_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lk(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t n_threads) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  ThreadPool pool(n_threads);
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([&fn, i] { fn(i); });
  }
  pool.wait_idle();
}

}  // namespace eo
