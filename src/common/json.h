// Dependency-free JSON support shared by the exporters and validators.
//
// Two halves:
//  * `Value` + `parse` — a full-grammar recursive-descent parser producing a
//    small DOM. Used by the structural validators (trace export, bench result
//    documents) so an emitted file is known well-formed before a human or a
//    plotting script ever opens it.
//  * `Writer` — a streaming serializer with comma/nesting bookkeeping and
//    deterministic number formatting (shortest round-trip via to_chars), so
//    identical inputs render byte-identical documents.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace eo::json {

struct Value {
  enum Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = kNull;
  std::string str;                                  // kString
  double num = 0;                                   // kNumber
  bool b = false;                                   // kBool
  std::vector<Value> items;                         // kArray
  std::vector<std::pair<std::string, Value>> fields;  // kObject

  /// Object field lookup; null when absent or not an object.
  const Value* get(const std::string& key) const;

  bool is_string() const { return type == kString; }
  bool is_number() const { return type == kNumber; }
  bool is_object() const { return type == kObject; }
  bool is_array() const { return type == kArray; }
  bool is_bool() const { return type == kBool; }
};

/// Parses `text` as one JSON document (no trailing garbage). Returns false
/// and fills `err` (if non-null) with a position-annotated reason on failure.
bool parse(const std::string& text, Value* out, std::string* err);

/// Escapes a string for embedding inside a JSON string literal (no quotes).
std::string escape(const std::string& s);

/// Streaming JSON writer. The caller drives the document shape; the writer
/// inserts commas, quotes keys, escapes strings, and formats numbers
/// deterministically. Misuse (a bare value where a key is required) is a
/// programming error and only detected by the validators downstream.
class Writer {
 public:
  explicit Writer(std::ostream& os) : os_(os) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Starts an object field; must be followed by exactly one value (or
  /// container). Returns *this so `w.key("x").value(1)` chains.
  Writer& key(const std::string& k);

  void value(const std::string& s);
  void value(const char* s);
  void value(double d);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v);
  void null();

  // One-call object fields.
  template <typename T>
  void field(const std::string& k, const T& v) {
    key(k);
    value(v);
  }

 private:
  void sep();

  std::ostream& os_;
  struct Level {
    bool array = false;
    bool first = true;
  };
  std::vector<Level> stack_;
  bool pending_value_ = false;  // a key was just written
};

}  // namespace eo::json
