// Growable FIFO ring buffer.
//
// `std::deque` allocates and frees a block roughly every 64 elements when a
// queue oscillates across a block boundary, which puts heap traffic on paths
// that are otherwise allocation-free (the epoll ready queue, for one, sits on
// the request path of every open-loop serving scenario). `FifoRing` stores
// elements in one power-of-two circular buffer that only ever grows: once a
// queue has seen its peak depth, push/pop are plain stores with no heap
// activity — the same "warm up, then zero steady-state allocation" contract
// as the event engine's slot slab.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace eo {

template <typename T>
class FifoRing {
 public:
  FifoRing() = default;

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  /// Slots allocated; never shrinks.
  std::size_t capacity() const { return buf_.size(); }

  /// Pre-sizes the buffer (rounded up to a power of two).
  void reserve(std::size_t n) {
    if (n > buf_.size()) grow(round_up(n));
  }

  void push_back(T v) {
    if (count_ == buf_.size()) grow(buf_.size() == 0 ? 8 : buf_.size() * 2);
    buf_[wrap(head_ + count_)] = std::move(v);
    ++count_;
  }

  T& front() {
    EO_CHECK(count_ > 0);
    return buf_[head_];
  }
  const T& front() const {
    EO_CHECK(count_ > 0);
    return buf_[head_];
  }

  void pop_front() {
    EO_CHECK(count_ > 0);
    buf_[head_] = T{};  // drop payload references eagerly
    head_ = wrap(head_ + 1);
    --count_;
  }

  /// FIFO-indexed access: at(0) is the front.
  T& at(std::size_t i) {
    EO_CHECK(i < count_);
    return buf_[wrap(head_ + i)];
  }
  const T& at(std::size_t i) const {
    EO_CHECK(i < count_);
    return buf_[wrap(head_ + i)];
  }

  /// Removes the first element matching `pred`, preserving FIFO order of the
  /// rest. Returns true if one was removed. O(n) — for rare teardown paths
  /// (waiter removal on task exit), never the steady state.
  template <typename Pred>
  bool erase_first(Pred pred) {
    for (std::size_t i = 0; i < count_; ++i) {
      if (!pred(at(i))) continue;
      for (std::size_t j = i; j + 1 < count_; ++j) at(j) = std::move(at(j + 1));
      buf_[wrap(head_ + count_ - 1)] = T{};
      --count_;
      return true;
    }
    return false;
  }

  void clear() {
    for (std::size_t i = 0; i < count_; ++i) at(i) = T{};
    head_ = 0;
    count_ = 0;
  }

 private:
  static std::size_t round_up(std::size_t n) {
    std::size_t p = 8;
    while (p < n) p *= 2;
    return p;
  }

  std::size_t wrap(std::size_t i) const { return i & (buf_.size() - 1); }

  void grow(std::size_t new_cap) {
    std::vector<T> next(new_cap);
    for (std::size_t i = 0; i < count_; ++i) next[i] = std::move(at(i));
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace eo
