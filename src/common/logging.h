// Minimal leveled logging and check macros.
//
// The simulator is deterministic and single-threaded per kernel instance, so
// logging is primarily a debugging aid; it is compiled in at all levels but
// filtered at runtime. `EO_CHECK` is used for internal invariants — a failed
// check is a bug in the simulator, not a user error — and aborts with a
// message, because continuing from a corrupted scheduler state would produce
// silently wrong experiment results.
#pragma once

#include <sstream>
#include <string>

namespace eo {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global log filter; messages below `level` are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace internal {

void log_message(LogLevel level, const char* file, int line,
                 const std::string& msg);

[[noreturn]] void check_failed(const char* file, int line, const char* expr,
                               const std::string& msg);

// Stream collector so log sites can use `<<` chains.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogLine() { log_message(level_, file_, line_, out_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream out_;
};

class CheckLine {
 public:
  CheckLine(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckLine() { check_failed(file_, line_, expr_, out_.str()); }
  template <typename T>
  CheckLine& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream out_;
};

}  // namespace internal
}  // namespace eo

#define EO_LOG(level)                                                     \
  if (::eo::LogLevel::level < ::eo::log_level()) {                        \
  } else                                                                  \
    ::eo::internal::LogLine(::eo::LogLevel::level, __FILE__, __LINE__)

#define EO_CHECK(cond)                                             \
  if (cond) {                                                      \
  } else                                                           \
    ::eo::internal::CheckLine(__FILE__, __LINE__, #cond)

#define EO_CHECK_EQ(a, b) EO_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define EO_CHECK_LE(a, b) EO_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define EO_CHECK_LT(a, b) EO_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define EO_CHECK_GE(a, b) EO_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "
#define EO_CHECK_GT(a, b) EO_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
