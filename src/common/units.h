// Simulated-time units.
//
// All simulated time in this library is carried as a signed 64-bit count of
// nanoseconds (`SimTime`). Signed arithmetic keeps interval math (deadline -
// now) safe, and 64 bits of nanoseconds covers ~292 years of simulated time,
// far beyond any experiment in this repository.
//
// User-defined literals are provided so calibration constants read like the
// paper: `750_us`, `3_ms`, `1500_ns`.
#pragma once

#include <cstdint>

namespace eo {

/// Simulated time, in nanoseconds since the start of the simulation.
using SimTime = std::int64_t;

/// Simulated duration, in nanoseconds.
using SimDuration = std::int64_t;

inline namespace literals {

constexpr SimDuration operator""_ns(unsigned long long v) {
  return static_cast<SimDuration>(v);
}
constexpr SimDuration operator""_us(unsigned long long v) {
  return static_cast<SimDuration>(v) * 1000;
}
constexpr SimDuration operator""_ms(unsigned long long v) {
  return static_cast<SimDuration>(v) * 1000 * 1000;
}
constexpr SimDuration operator""_s(unsigned long long v) {
  return static_cast<SimDuration>(v) * 1000 * 1000 * 1000;
}

}  // namespace literals

/// Converts a simulated duration to floating-point microseconds.
constexpr double to_us(SimDuration d) { return static_cast<double>(d) / 1e3; }

/// Converts a simulated duration to floating-point milliseconds.
constexpr double to_ms(SimDuration d) { return static_cast<double>(d) / 1e6; }

/// Converts a simulated duration to floating-point seconds.
constexpr double to_sec(SimDuration d) { return static_cast<double>(d) / 1e9; }

/// Bytes helpers for working-set sizes.
constexpr std::uint64_t operator""_KiB(unsigned long long v) {
  return static_cast<std::uint64_t>(v) * 1024;
}
constexpr std::uint64_t operator""_MiB(unsigned long long v) {
  return static_cast<std::uint64_t>(v) * 1024 * 1024;
}
constexpr std::uint64_t operator""_GiB(unsigned long long v) {
  return static_cast<std::uint64_t>(v) * 1024 * 1024 * 1024;
}

}  // namespace eo
