// FunctionRef: a non-owning, two-word view of a callable.
//
// For call-and-return parameters (predicates, visitors) `std::function`
// is the wrong tool: constructing one may allocate, and invoking one goes
// through its type-erased manager. FunctionRef is a (context pointer,
// thunk pointer) pair — no allocation ever, trivially copyable, and the
// call is a single indirect jump. It does not own the callable, so it is
// only safe as a function parameter invoked during the call (binding a
// temporary lambda argument is fine; storing a FunctionRef member is not).
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace eo {

template <class Sig>
class FunctionRef;

template <class R, class... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Binds any callable lvalue or temporary for the duration of the call.
  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                !std::is_function_v<std::remove_reference_t<F>> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f) noexcept  // NOLINT(google-explicit-constructor)
      : thunk_([](Storage s, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(s.obj))(
              std::forward<Args>(args)...);
        }) {
    storage_.obj = const_cast<void*>(
        static_cast<const void*>(std::addressof(f)));
  }

  /// Plain function (or captureless-lambda-decayed) pointer.
  FunctionRef(R (*fn)(Args...)) noexcept  // NOLINT(google-explicit-constructor)
      : thunk_([](Storage s, Args... args) -> R {
          return s.fn(std::forward<Args>(args)...);
        }) {
    storage_.fn = fn;
  }

  R operator()(Args... args) const {
    return thunk_(storage_, std::forward<Args>(args)...);
  }

 private:
  union Storage {
    void* obj;
    R (*fn)(Args...);
  };

  Storage storage_;
  R (*thunk_)(Storage, Args...);
};

}  // namespace eo
