#include "common/rng.h"

#include <cmath>

namespace eo {
namespace {

// splitmix64: used to expand the seed into the xoshiro state and to derive
// split streams. Reference: Vigna, "Further scramblings of Marsaglia's
// xorshift generators".
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // A zero state would be absorbing; splitmix64 cannot emit four zeros for
  // any seed, but keep the guard for clarity.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Lemire's nearly-divisionless bounded sampling with rejection to remove
  // modulo bias.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::exponential(double mean) {
  double u = next_double();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

std::uint64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 32.0) {
    // Knuth inversion.
    const double limit = std::exp(-mean);
    double prod = next_double();
    std::uint64_t n = 0;
    while (prod > limit) {
      prod *= next_double();
      ++n;
    }
    return n;
  }
  // Normal approximation with continuity correction; adequate for the large
  // counter means used by the PMC models (thousands per interval).
  const double v = normal(mean, std::sqrt(mean));
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
}

double Rng::normal(double mean, double stddev) {
  // Box-Muller; draws two uniforms per deviate (no caching keeps splits
  // simple and deterministic).
  double u1 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  return mean + stddev * r * std::cos(theta);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::split() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ull); }

}  // namespace eo
