// Histograms and summary statistics for experiment metrics.
//
// `Histogram` is a log-bucketed latency histogram (HdrHistogram-style, base-2
// buckets with linear sub-buckets) giving ~1.6% relative error on quantiles
// at any scale from nanoseconds to seconds, in O(1) memory. `Summary`
// accumulates mean/min/max/stddev via Welford's algorithm.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace eo {

/// Log-bucketed histogram over non-negative 64-bit values.
class Histogram {
 public:
  Histogram();

  void add(std::int64_t value, std::uint64_t count = 1);
  void merge(const Histogram& other);
  void clear();

  std::uint64_t total_count() const { return total_; }
  std::int64_t min() const;
  std::int64_t max() const;
  double mean() const;

  /// Quantile in [0, 1]; returns the upper edge of the bucket containing the
  /// q-th sample. Returns 0 for an empty histogram.
  std::int64_t quantile(double q) const;

  std::int64_t p50() const { return quantile(0.50); }
  std::int64_t p95() const { return quantile(0.95); }
  std::int64_t p99() const { return quantile(0.99); }
  std::int64_t p999() const { return quantile(0.999); }

 private:
  static constexpr int kSubBucketBits = 5;  // 32 linear sub-buckets per octave
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kOctaves = 64 - kSubBucketBits;

  static int bucket_index(std::int64_t value);
  static std::int64_t bucket_upper_edge(int index);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  double sum_ = 0.0;
};

/// Streaming mean/variance/min/max accumulator (Welford).
class Summary {
 public:
  void add(double v);
  void merge(const Summary& other);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace eo
