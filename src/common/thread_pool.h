// Host-side thread pool.
//
// Simulations are single-threaded and deterministic; the parallelism in this
// repository lives at the *experiment* level: a bench sweeps dozens of
// independent configurations (thread counts x core counts x policies), and
// each configuration's simulation runs on its own host thread. This pool is
// the shared harness for that fan-out.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace eo {

/// Fixed-size pool of host worker threads with a FIFO task queue.
class ThreadPool {
 public:
  /// Creates `n_threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t n_threads = 0);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void submit(std::function<void()> fn);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

  /// Runs `fn(i)` for i in [0, n) across the pool and waits for completion.
  /// Exceptions escaping a task abort the process (tasks are experiment
  /// bodies; a failed experiment must not be silently dropped).
  static void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                           std::size_t n_threads = 0);

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace eo
