#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.h"

namespace eo {

Histogram::Histogram() : buckets_(kOctaves * kSubBuckets, 0) {}

int Histogram::bucket_index(std::int64_t value) {
  if (value < 0) value = 0;
  const auto v = static_cast<std::uint64_t>(value);
  if (v < kSubBuckets) return static_cast<int>(v);
  // Octave = position of the highest set bit above the sub-bucket range;
  // within an octave the top kSubBucketBits bits below the leading bit select
  // the linear sub-bucket.
  const int msb = 63 - std::countl_zero(v);
  const int octave = msb - kSubBucketBits + 1;
  const auto sub =
      static_cast<int>((v >> (msb - kSubBucketBits)) & (kSubBuckets - 1));
  const int idx = octave * kSubBuckets + sub;
  return std::min<int>(idx, kOctaves * kSubBuckets - 1);
}

std::int64_t Histogram::bucket_upper_edge(int index) {
  const int octave = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  if (octave == 0) return sub;
  const int shift = octave - 1;
  const auto base = static_cast<std::uint64_t>(kSubBuckets) << shift;
  const auto width = static_cast<std::uint64_t>(1) << shift;
  return static_cast<std::int64_t>(base + width * (sub + 1) - 1);
}

void Histogram::add(std::int64_t value, std::uint64_t count) {
  if (count == 0) return;
  if (value < 0) value = 0;
  if (total_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  buckets_[static_cast<std::size_t>(bucket_index(value))] += count;
  total_ += count;
  sum_ += static_cast<double>(value) * static_cast<double>(count);
}

void Histogram::merge(const Histogram& other) {
  if (other.total_ == 0) return;
  if (total_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  total_ += other.total_;
  sum_ += other.sum_;
}

void Histogram::clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  total_ = 0;
  min_ = max_ = 0;
  sum_ = 0.0;
}

std::int64_t Histogram::min() const { return min_; }
std::int64_t Histogram::max() const { return max_; }

double Histogram::mean() const {
  return total_ ? sum_ / static_cast<double>(total_) : 0.0;
}

std::int64_t Histogram::quantile(double q) const {
  if (total_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > target) {
      const auto edge = bucket_upper_edge(static_cast<int>(i));
      return std::min(edge, max_);
    }
  }
  return max_;
}

void Summary::add(double v) {
  if (n_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++n_;
  const double delta = v - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (v - mean_);
}

void Summary::merge(const Summary& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / n;
  mean_ = (mean_ * static_cast<double>(n_) +
           other.mean_ * static_cast<double>(other.n_)) /
          n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double Summary::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Summary::stddev() const {
  const double v = variance();
  return v > 0 ? std::sqrt(v) : 0.0;
}

}  // namespace eo
