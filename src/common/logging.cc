#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace eo {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

// Serializes interleaved log lines when benches run simulations on multiple
// host threads.
std::mutex& log_mutex() {
  static std::mutex m;
  return m;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace internal {

void log_message(LogLevel level, const char* file, int line,
                 const std::string& msg) {
  std::lock_guard<std::mutex> lk(log_mutex());
  std::fprintf(stderr, "[%s %s:%d] %s\n", level_name(level), file, line,
               msg.c_str());
}

void check_failed(const char* file, int line, const char* expr,
                  const std::string& msg) {
  {
    std::lock_guard<std::mutex> lk(log_mutex());
    std::fprintf(stderr, "[CHECK FAILED %s:%d] %s %s\n", file, line, expr,
                 msg.c_str());
    std::fflush(stderr);
  }
  std::abort();
}

}  // namespace internal
}  // namespace eo
