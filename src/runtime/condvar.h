// SimCond: futex-sequence condition variable (glibc-style, simplified).
//
// wait() snapshots a sequence number, releases the mutex, futex_waits on the
// sequence, and reacquires the mutex; signal/broadcast bump the sequence and
// wake one/all. Broadcast storms under oversubscription are the paper's
// worst case for vanilla wakeups.
#pragma once

#include "kern/action.h"
#include "runtime/coro.h"
#include "runtime/env.h"
#include "runtime/mutex.h"

namespace eo::runtime {

class SimCond {
 public:
  explicit SimCond(kern::Kernel& k) : seq_(k.alloc_word(0)) {}

  /// Caller must hold `m`; atomically releases it and blocks until signaled,
  /// then reacquires. Spurious wakeups are possible (as with pthreads).
  SimCall<void> wait(Env env, SimMutex& m);

  SimCall<void> signal(Env env);
  SimCall<void> broadcast(Env env);

 private:
  kern::SimWord* seq_;
};

}  // namespace eo::runtime
