// SimSemaphore: futex-based counting semaphore (sem_wait/sem_post).
#pragma once

#include "kern/action.h"
#include "runtime/coro.h"
#include "runtime/env.h"

namespace eo::runtime {

class SimSemaphore {
 public:
  SimSemaphore(kern::Kernel& k, std::uint64_t initial)
      : value_(k.alloc_word(initial)) {}

  SimCall<void> wait(Env env);
  SimCall<void> post(Env env);

  std::uint64_t value() const { return value_->peek(); }

 private:
  kern::SimWord* value_;
};

}  // namespace eo::runtime
