// SimMutex: glibc-style futex mutex.
//
// Three-state protocol (0 = unlocked, 1 = locked/no waiters, 2 = locked with
// possible waiters), identical to glibc's low-level lock: the fast path is
// one CAS in userspace; contention traps into futex_wait, and unlock only
// issues futex_wake when waiters may exist. This is the mutex behind the
// paper's pthread_mutex results (Figure 10, and the hash-table lock in
// memcached).
#pragma once

#include "kern/action.h"
#include "runtime/coro.h"
#include "runtime/env.h"

namespace eo::runtime {

class SimMutex {
 public:
  /// Words are allocated from the kernel; the mutex must not outlive it.
  explicit SimMutex(kern::Kernel& k) : state_(k.alloc_word(0)) {}

  SimCall<void> lock(Env env);
  SimCall<void> unlock(Env env);

  /// Non-blocking attempt; returns true on success.
  SimCall<bool> try_lock(Env env);

  /// Diagnostic: current raw state.
  std::uint64_t raw_state() const { return state_->peek(); }

 private:
  kern::SimWord* state_;
};

}  // namespace eo::runtime
