#include "runtime/sim_thread.h"

#include <memory>
#include <utility>

#include "common/logging.h"

namespace eo::runtime {

kern::Task* spawn(kern::Kernel& k, std::string name, ThreadFn fn,
                  const SpawnOpts& opts) {
  kern::Task* t = k.create_task(std::move(name));
  t->mem = opts.mem;
  if (opts.pin_cpu >= 0) k.pin_task(t, opts.pin_cpu);
  // Box the callable so lambda captures outlive this call: a capturing
  // lambda coroutine stores its captures in the closure object, not the
  // coroutine frame.
  auto box = std::make_shared<ThreadFn>(std::move(fn));
  SimThread st = (*box)(Env(&k, t));
  EO_CHECK(st.handle);
  st.handle.promise().task = t;
  t->keepalive = box;
  k.attach_coroutine(t, st.handle);
  const int cpu = opts.pin_cpu >= 0 ? opts.pin_cpu : opts.cpu;
  k.start_task(t, cpu);
  return t;
}

}  // namespace eo::runtime
