#include "runtime/condvar.h"

namespace eo::runtime {

SimCall<void> SimCond::wait(Env env, SimMutex& m) {
  const std::uint64_t seq = co_await env.load(seq_);
  co_await m.unlock(env);
  co_await env.futex_wait(seq_, seq);
  co_await m.lock(env);
  co_return;
}

SimCall<void> SimCond::signal(Env env) {
  co_await env.fetch_add(seq_, 1);
  co_await env.futex_wake(seq_, 1);
  co_return;
}

SimCall<void> SimCond::broadcast(Env env) {
  co_await env.fetch_add(seq_, 1);
  co_await env.futex_wake(seq_, Env::kWakeAll);
  co_return;
}

}  // namespace eo::runtime
