#include "runtime/semaphore.h"

namespace eo::runtime {

SimCall<void> SimSemaphore::wait(Env env) {
  for (;;) {
    const std::uint64_t v = co_await env.load(value_);
    if (v > 0) {
      const std::uint64_t won = co_await env.cas(value_, v, v - 1);
      if (won) co_return;
      continue;
    }
    co_await env.futex_wait(value_, 0);
  }
}

SimCall<void> SimSemaphore::post(Env env) {
  co_await env.fetch_add(value_, 1);
  // Wake unconditionally: waking only when the previous value was zero loses
  // wakeups when two posts race ahead of a parked waiter (the second post
  // sees prev == 1 and skips the wake, stranding the second waiter).
  co_await env.futex_wake(value_, 1);
  co_return;
}

}  // namespace eo::runtime
