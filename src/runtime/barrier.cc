#include "runtime/barrier.h"

namespace eo::runtime {

SimCall<void> SimBarrier::wait(Env env) {
  const std::uint64_t gen = co_await env.load(gen_);
  const std::uint64_t arrived = co_await env.fetch_add(count_, 1) + 1;
  if (arrived == static_cast<std::uint64_t>(parties_)) {
    // Last arriver: reset and release the generation.
    co_await env.store(count_, 0);
    co_await env.store(gen_, gen + 1);
    co_await env.futex_wake(gen_, Env::kWakeAll);
    co_return;
  }
  for (;;) {
    const std::uint64_t g = co_await env.load(gen_);
    if (g != gen) break;
    co_await env.futex_wait(gen_, gen);
  }
  co_return;
}

}  // namespace eo::runtime
