#include "runtime/spin.h"

#include <atomic>

namespace eo::runtime {

hw::BranchSite next_spin_site() {
  // Sites only need to be distinct within a kernel; a global counter keeps
  // them distinct across concurrently running kernels too.
  static std::atomic<hw::BranchSite> next{1};
  return next.fetch_add(1);
}

SimCall<void> SpinFlag::wait_for(Env env, std::uint64_t v) {
  co_await env.spin_until_eq(w_, v, site_, pause_);
  co_return;
}

SimCall<void> SpinFlag::set(Env env, std::uint64_t v) {
  co_await env.store(w_, v);
  co_return;
}

SimCall<void> SpinBarrier::wait(Env env) {
  const std::uint64_t my_sense = co_await env.load(sense_);
  const std::uint64_t arrived = co_await env.fetch_add(count_, 1) + 1;
  if (arrived == static_cast<std::uint64_t>(parties_)) {
    co_await env.store(count_, 0);
    co_await env.store(sense_, my_sense + 1);  // releases the spinners
    co_return;
  }
  co_await env.spin_until(sense_, kern::SpinPredicate::ne(my_sense), site_,
                          pause_);
  co_return;
}

}  // namespace eo::runtime
