#include "runtime/mutex.h"

namespace eo::runtime {

SimCall<void> SimMutex::lock(Env env) {
  // Fast path: 0 -> 1. (Awaited results are bound to named locals before
  // branching throughout this codebase: GCC 12 miscompiles `co_await` used
  // directly in a branch condition.)
  const std::uint64_t fast = co_await env.cas(state_, 0, 1);
  if (fast) co_return;
  // Contended: advertise waiters (state 2) and sleep.
  for (;;) {
    const std::uint64_t prev = co_await env.exchange(state_, 2);
    if (prev == 0) co_return;  // acquired (as contended)
    co_await env.futex_wait(state_, 2);
  }
}

SimCall<void> SimMutex::unlock(Env env) {
  const std::uint64_t prev = co_await env.exchange(state_, 0);
  if (prev == 2) {
    // There may be waiters; wake one.
    co_await env.futex_wake(state_, 1);
  }
  co_return;
}

SimCall<bool> SimMutex::try_lock(Env env) {
  co_return static_cast<bool>(co_await env.cas(state_, 0, 1));
}

}  // namespace eo::runtime
