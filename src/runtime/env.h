// Env: the simulated thread's view of the machine.
//
// Every awaitable a workload can issue is built here. Env is a cheap value
// (kernel + task pointers) passed by value into coroutines.
#pragma once

#include <cstdint>
#include <functional>

#include "common/units.h"
#include "hw/cache_model.h"
#include "hw/instr_stream.h"
#include "hw/lbr.h"
#include "kern/action.h"
#include "kern/kernel.h"
#include "kern/task.h"
#include "runtime/coro.h"

namespace eo::runtime {

class Env {
 public:
  Env(kern::Kernel* k, kern::Task* t) : k_(k), t_(t) {}

  kern::Kernel& kernel() const { return *k_; }
  kern::Task& task() const { return *t_; }
  SimTime now() const { return k_->now(); }
  int tid() const { return t_->tid; }

  /// Allocates a simulated shared word (lives as long as the kernel).
  kern::SimWord* word(std::uint64_t init = 0) const {
    return k_->alloc_word(init);
  }

  // --- execution ---
  /// Runs `work` of computation (calibrated-rate nanoseconds).
  ActionAwaiter compute(SimDuration work,
                        hw::SegmentKind kind = hw::SegmentKind::kRegular,
                        hw::BranchSite site = hw::kVariedSites) const {
    return {t_, kern::ComputeAction{work, kind, site, -1}};
  }

  /// Runs a tight register-resident loop (the BWD false-positive shape).
  ActionAwaiter tight_loop(SimDuration work, hw::BranchSite site) const {
    return {t_, kern::ComputeAction{work, hw::SegmentKind::kTightLoop, site, -1}};
  }

  // --- atomics ---
  ActionAwaiter load(kern::SimWord* w) const {
    return {t_, kern::AtomicAction{w, kern::AtomicOp::kLoad, 0, 0}};
  }
  ActionAwaiter store(kern::SimWord* w, std::uint64_t v) const {
    return {t_, kern::AtomicAction{w, kern::AtomicOp::kStore, v, 0}};
  }
  /// Returns 1 on success, 0 on failure.
  ActionAwaiter cas(kern::SimWord* w, std::uint64_t expected,
                    std::uint64_t desired) const {
    return {t_, kern::AtomicAction{w, kern::AtomicOp::kCompareSwap, expected,
                                   desired}};
  }
  /// Returns the previous value.
  ActionAwaiter exchange(kern::SimWord* w, std::uint64_t v) const {
    return {t_, kern::AtomicAction{w, kern::AtomicOp::kExchange, v, 0}};
  }
  /// Returns the previous value.
  ActionAwaiter fetch_add(kern::SimWord* w, std::uint64_t v) const {
    return {t_, kern::AtomicAction{w, kern::AtomicOp::kFetchAdd, v, 0}};
  }

  // --- busy waiting ---
  /// Spins until `pred(word value)` holds. `site` identifies the static spin
  /// loop (for the LBR model); `uses_pause` marks PAUSE/NOP-based bodies
  /// (visible to PLE in VM mode). `pred` is a flat kern::SpinPredicate value
  /// (eq/ne/ge/masked_eq or a function pointer) — no per-spin allocation.
  ActionAwaiter spin_until(kern::SimWord* w, kern::SpinPredicate pred,
                           hw::BranchSite site, bool uses_pause = false) const {
    return {t_, kern::SpinUntilAction{w, pred, site, uses_pause,
                                      -1, false, 0}};
  }

  /// Bounded spin: gives up after `timeout`; resumes with 1 on success, 0 on
  /// timeout (the spin-then-park pattern of Mutexee / MCS-TP / SHFLLOCK).
  ActionAwaiter spin_until_timeout(kern::SimWord* w, kern::SpinPredicate pred,
                                   hw::BranchSite site, SimDuration timeout,
                                   bool uses_pause = false) const {
    return {t_, kern::SpinUntilAction{w, pred, site, uses_pause,
                                      k_->now() + timeout, false, 0}};
  }
  /// Convenience: spin until the word equals `v`.
  ActionAwaiter spin_until_eq(kern::SimWord* w, std::uint64_t v,
                              hw::BranchSite site,
                              bool uses_pause = false) const {
    return spin_until(w, kern::SpinPredicate::eq(v), site, uses_pause);
  }

  // --- blocking ---
  /// Returns 0 if woken by futex_wake, 1 on EWOULDBLOCK.
  ActionAwaiter futex_wait(kern::SimWord* w, std::uint64_t expected) const {
    return {t_, kern::FutexWaitAction{w, expected}};
  }
  /// Returns the number of waiters woken.
  ActionAwaiter futex_wake(kern::SimWord* w, int n) const {
    return {t_, kern::FutexWakeAction{w, n}};
  }
  static constexpr int kWakeAll = 1 << 20;

  /// Returns the posted event payload.
  ActionAwaiter epoll_wait(int epfd) const {
    return {t_, kern::EpollWaitAction{epfd}};
  }
  ActionAwaiter epoll_post(int epfd, std::uint64_t data) const {
    return {t_, kern::EpollPostAction{epfd, data}};
  }

  // --- scheduling ---
  ActionAwaiter yield() const { return {t_, kern::YieldAction{}}; }
  ActionAwaiter sleep(SimDuration d) const {
    return {t_, kern::SleepAction{d}};
  }
  ActionAwaiter set_mem_profile(const hw::MemProfile& p) const {
    return {t_, kern::SetMemProfileAction{p}};
  }

 private:
  kern::Kernel* k_;
  kern::Task* t_;
};

}  // namespace eo::runtime
