// User-level busy-wait helpers.
//
// These model the "user-customized spinning" the paper studies (NPB lu's
// plain variable-test loop, SPLASH-2 volrend): flags and barriers that spin
// rather than block, with no special instructions in the loop body unless
// `uses_pause` is set.
#pragma once

#include "hw/lbr.h"
#include "kern/action.h"
#include "runtime/coro.h"
#include "runtime/env.h"

namespace eo::runtime {

/// Allocates unique spin-site ids per static spin loop.
hw::BranchSite next_spin_site();

/// A shared flag that readers spin on.
class SpinFlag {
 public:
  explicit SpinFlag(kern::Kernel& k, bool uses_pause = false)
      : w_(k.alloc_word(0)), site_(next_spin_site()), pause_(uses_pause) {}

  /// Busy-waits until the flag holds `v`.
  SimCall<void> wait_for(Env env, std::uint64_t v);

  SimCall<void> set(Env env, std::uint64_t v);

  std::uint64_t peek() const { return w_->peek(); }
  kern::SimWord* word() const { return w_; }
  hw::BranchSite site() const { return site_; }

 private:
  kern::SimWord* w_;
  hw::BranchSite site_;
  bool pause_;
};

/// Sense-reversing centralized spin barrier (lu-style custom sync).
class SpinBarrier {
 public:
  SpinBarrier(kern::Kernel& k, int parties, bool uses_pause = false)
      : count_(k.alloc_word(0)),
        sense_(k.alloc_word(0)),
        parties_(parties),
        site_(next_spin_site()),
        pause_(uses_pause) {}

  SimCall<void> wait(Env env);

 private:
  kern::SimWord* count_;
  kern::SimWord* sense_;
  int parties_;
  hw::BranchSite site_;
  bool pause_;
};

}  // namespace eo::runtime
