// Coroutine machinery for simulated threads.
//
// A simulated thread's program is a C++20 coroutine of type `SimThread`.
// Library code (locks, barriers) is written as `SimCall<T>` coroutines that
// compose via symmetric transfer, so a workload reads like pthreads code:
//
//   SimThread worker(Env env, Args a) {
//     co_await env.compute(200_us);
//     co_await mutex.lock(env);       // SimCall<void>
//     ...
//   }
//
// Suspension protocol: leaf awaitables (Env::compute etc.) store an Action
// on the Task and record the innermost coroutine handle as the resume point;
// control then unwinds to the kernel, which interprets the action and later
// resumes the resume point. SimCall frames chain continuations so completion
// of a nested call transfers straight back to its awaiter.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

#include "kern/action.h"
#include "kern/task.h"

namespace eo::runtime {

/// Top-level coroutine type of a simulated thread.
class SimThread {
 public:
  struct promise_type {
    kern::Task* task = nullptr;

    SimThread get_return_object() {
      return SimThread{
          std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept {
        // Signal thread termination to the kernel; control returns to the
        // kernel's resume loop, which interprets the Exit action.
        h.promise().task->pending = kern::ExitAction{};
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };

  using handle_type = std::coroutine_handle<promise_type>;
  explicit SimThread(handle_type h) : handle(h) {}
  handle_type handle;
};

/// Composable nested coroutine (like cppcoro::task<T>), used for library
/// primitives. Lazily started; completion symmetric-transfers back to the
/// awaiter. The frame is destroyed by await_resume.
template <typename T>
class [[nodiscard]] SimCall {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;
    T value{};

    SimCall get_return_object() {
      return SimCall{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_value(T v) { value = std::move(v); }
    void unhandled_exception() { std::terminate(); }
  };

  using handle_type = std::coroutine_handle<promise_type>;

  explicit SimCall(handle_type h) : h_(h) {}
  SimCall(SimCall&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  SimCall(const SimCall&) = delete;
  SimCall& operator=(const SimCall&) = delete;
  ~SimCall() {
    if (h_) h_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    h_.promise().continuation = parent;
    return h_;  // start the child
  }
  T await_resume() {
    T v = std::move(h_.promise().value);
    h_.destroy();
    h_ = nullptr;
    return v;
  }

 private:
  handle_type h_;
};

template <>
class [[nodiscard]] SimCall<void> {
 public:
  struct promise_type {
    std::coroutine_handle<> continuation;

    SimCall get_return_object() {
      return SimCall{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };

  using handle_type = std::coroutine_handle<promise_type>;

  explicit SimCall(handle_type h) : h_(h) {}
  SimCall(SimCall&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  SimCall(const SimCall&) = delete;
  SimCall& operator=(const SimCall&) = delete;
  ~SimCall() {
    if (h_) h_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    h_.promise().continuation = parent;
    return h_;
  }
  void await_resume() {
    h_.destroy();
    h_ = nullptr;
  }

 private:
  handle_type h_;
};

/// Leaf awaitable: hands one Action to the kernel and resumes with its
/// 64-bit result.
class ActionAwaiter {
 public:
  ActionAwaiter(kern::Task* t, kern::Action action)
      : t_(t), action_(std::move(action)) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    t_->resume_point = h;
    t_->pending = std::move(action_);
  }
  std::uint64_t await_resume() const noexcept { return t_->action_result; }

 private:
  kern::Task* t_;
  kern::Action action_;
};

}  // namespace eo::runtime
