// SimBarrier: glibc-style centralized futex barrier.
//
// A generation counter plus an arrival counter: the last arriver flips the
// generation and futex_wakes everyone. Group wakeups of N-1 threads are the
// worst case for the vanilla wakeup path and the best case for virtual
// blocking (paper Figure 10: barrier 1.52x, cond 2.34x on one core).
#pragma once

#include "kern/action.h"
#include "runtime/coro.h"
#include "runtime/env.h"

namespace eo::runtime {

class SimBarrier {
 public:
  SimBarrier(kern::Kernel& k, int parties)
      : count_(k.alloc_word(0)), gen_(k.alloc_word(0)), parties_(parties) {}

  SimCall<void> wait(Env env);

  int parties() const { return parties_; }

 private:
  kern::SimWord* count_;
  kern::SimWord* gen_;
  int parties_;
};

}  // namespace eo::runtime
