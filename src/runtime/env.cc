// Env is header-only; anchor translation unit.
#include "runtime/env.h"
