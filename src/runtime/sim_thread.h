// Spawning simulated threads.
#pragma once

#include <functional>
#include <string>

#include "hw/cache_model.h"
#include "kern/kernel.h"
#include "runtime/coro.h"
#include "runtime/env.h"

namespace eo::runtime {

struct SpawnOpts {
  /// Initial core (-1 = round-robin).
  int cpu = -1;
  /// Pin to this core (-1 = unpinned).
  int pin_cpu = -1;
  /// Memory behaviour of the thread's compute phases.
  hw::MemProfile mem{};
};

using ThreadFn = std::function<SimThread(Env)>;

/// Creates and starts a simulated thread running `fn`. The callable (and its
/// captures) is kept alive for the task's lifetime, so capturing lambdas are
/// safe.
kern::Task* spawn(kern::Kernel& k, std::string name, ThreadFn fn,
                  const SpawnOpts& opts = {});

}  // namespace eo::runtime
