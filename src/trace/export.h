// Trace exporters.
//
// Two formats:
//  * Chrome trace-event JSON — loadable in Perfetto (ui.perfetto.dev) or
//    chrome://tracing. Per-core run slices ("X" events, one lane per core),
//    runqueue-depth counter tracks, and instant events for everything else.
//  * CSV — one row per record (`ts_ns,core,kind,kind_name,tid,arg0,arg1`),
//    for ad-hoc analysis with pandas/awk.
//
// `validate_chrome_trace_json` is a dependency-free structural checker used
// by the ctest smoke tests: it fully parses the JSON text and verifies the
// trace-event envelope, so an exported file is known loadable before a human
// ever opens it.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.h"

namespace eo::trace {

/// Writes the Chrome trace-event JSON for `t` to `os`.
void write_chrome_json(const Trace& t, std::ostream& os);

/// Writes the compact CSV form of `t` to `os`.
void write_csv(const Trace& t, std::ostream& os);

/// Renders `t` in the given format ("json" or "csv") as a string.
std::string render(const Trace& t, const std::string& format);

/// Writes `t` to `path` in the given format. JSON output is validated with
/// `validate_chrome_trace_json` before the file is written. Returns false
/// (and fills `err`) on validation or I/O failure.
bool export_to_file(const Trace& t, const std::string& path,
                    const std::string& format, std::string* err);

/// Structural validator for Chrome trace JSON: the text must parse as JSON,
/// the root must be an object with a "traceEvents" array, and every element
/// must be an object carrying string "ph" and "name" fields (plus a numeric
/// "ts" for non-metadata phases). No external dependencies.
bool validate_chrome_trace_json(const std::string& text, std::string* err);

}  // namespace eo::trace
