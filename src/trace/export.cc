#include "trace/export.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/json.h"

namespace eo::trace {

namespace {

/// Microsecond timestamp with nanosecond precision, as Chrome expects.
std::string us(SimTime ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  return buf;
}

std::string json_escape(const std::string& s) { return json::escape(s); }

}  // namespace

void write_chrome_json(const Trace& t, std::ostream& os) {
  std::map<std::int32_t, std::string> names(t.task_names.begin(),
                                            t.task_names.end());
  auto task_label = [&](std::int32_t tid) {
    auto it = names.find(tid);
    if (it == names.end()) return std::string("tid") + std::to_string(tid);
    return it->second + "/" + std::to_string(tid);
  };

  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  // Metadata: one process, one named thread lane per core plus an ambient
  // lane for IRQ-context events.
  sep();
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"sim-kernel\"}}";
  for (int c = 0; c <= t.n_cores; ++c) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << c + 1
       << ",\"args\":{\"name\":\""
       << (c < t.n_cores ? "core " + std::to_string(c) : std::string("irq"))
       << "\"}}";
  }

  // Lane for a record: cores at tid 1..N, ambient at N+1.
  auto lane = [&](const TraceEvent& e) {
    const int c = e.core >= 0 && e.core < t.n_cores ? e.core : t.n_cores;
    return c + 1;
  };

  // Run slices: pair switch_in with the next switch_out on the same core.
  std::vector<SimTime> slice_start(static_cast<std::size_t>(t.n_cores) + 1, -1);
  std::vector<std::int32_t> slice_tid(static_cast<std::size_t>(t.n_cores) + 1,
                                      0);
  for (const TraceEvent& e : t.events) {
    const auto l = static_cast<std::size_t>(lane(e)) - 1;
    const auto kind = static_cast<EventKind>(e.kind);
    if (kind == EventKind::kSwitchIn) {
      slice_start[l] = e.ts;
      slice_tid[l] = e.tid;
      continue;
    }
    if (kind == EventKind::kSwitchOut && slice_start[l] >= 0) {
      sep();
      os << "{\"name\":\"" << json_escape(task_label(slice_tid[l]))
         << "\",\"ph\":\"X\",\"ts\":" << us(slice_start[l])
         << ",\"dur\":" << us(e.ts - slice_start[l]) << ",\"pid\":0,\"tid\":"
         << l + 1 << ",\"args\":{\"vruntime\":" << e.arg0
         << ",\"voluntary\":" << e.arg1 << "}}";
      slice_start[l] = -1;
      continue;
    }
    if (kind == EventKind::kEnqueue || kind == EventKind::kDequeue) {
      // Runqueue depth as a counter track per core.
      sep();
      os << "{\"name\":\"rq_depth core" << (e.core >= 0 ? e.core : -1)
         << "\",\"ph\":\"C\",\"ts\":" << us(e.ts)
         << ",\"pid\":0,\"args\":{\"nr_running\":" << e.arg0 << "}}";
      continue;
    }
    // Everything else: a thread-scoped instant on its core lane.
    sep();
    os << "{\"name\":\"" << to_string(kind)
       << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << us(e.ts)
       << ",\"pid\":0,\"tid\":" << lane(e) << ",\"args\":{\"task\":\""
       << json_escape(task_label(e.tid)) << "\",\"arg0\":" << e.arg0
       << ",\"arg1\":" << e.arg1 << "}}";
  }
  os << "\n],\"otherData\":{\"dropped_events\":\"" << t.dropped << "\"}}\n";
}

void write_csv(const Trace& t, std::ostream& os) {
  os << "ts_ns,core,kind,kind_name,tid,arg0,arg1\n";
  for (const TraceEvent& e : t.events) {
    os << e.ts << ',' << e.core << ',' << e.kind << ','
       << to_string(static_cast<EventKind>(e.kind)) << ',' << e.tid << ','
       << e.arg0 << ',' << e.arg1 << '\n';
  }
}

std::string render(const Trace& t, const std::string& format) {
  std::ostringstream os;
  if (format == "csv") {
    write_csv(t, os);
  } else {
    write_chrome_json(t, os);
  }
  return os.str();
}

bool export_to_file(const Trace& t, const std::string& path,
                    const std::string& format, std::string* err) {
  const std::string text = render(t, format);
  if (format != "csv" && !validate_chrome_trace_json(text, err)) return false;
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    if (err != nullptr) *err = "cannot open " + path + " for writing";
    return false;
  }
  f << text;
  f.close();
  if (!f) {
    if (err != nullptr) *err = "write to " + path + " failed";
    return false;
  }
  return true;
}

// The JSON grammar itself is handled by the shared parser in common/json.h;
// this function checks the Chrome trace-event envelope on the parsed DOM.
bool validate_chrome_trace_json(const std::string& text, std::string* err) {
  json::Value root;
  if (!json::parse(text, &root, err)) return false;
  if (!root.is_object()) {
    if (err != nullptr) *err = "root is not an object";
    return false;
  }
  const json::Value* events = root.get("traceEvents");
  if (events == nullptr || !events->is_array()) {
    if (err != nullptr) *err = "missing traceEvents array";
    return false;
  }
  for (std::size_t i = 0; i < events->items.size(); ++i) {
    const json::Value& e = events->items[i];
    const std::string at = "traceEvents[" + std::to_string(i) + "]";
    if (!e.is_object()) {
      if (err != nullptr) *err = at + " is not an object";
      return false;
    }
    const json::Value* ph = e.get("ph");
    const json::Value* name = e.get("name");
    if (ph == nullptr || !ph->is_string() || ph->str.empty()) {
      if (err != nullptr) *err = at + " lacks a string \"ph\"";
      return false;
    }
    if (name == nullptr || !name->is_string()) {
      if (err != nullptr) *err = at + " lacks a string \"name\"";
      return false;
    }
    if (ph->str != "M") {  // metadata events carry no timestamp
      const json::Value* ts = e.get("ts");
      if (ts == nullptr || !ts->is_number() || ts->num < 0) {
        if (err != nullptr) *err = at + " lacks a non-negative numeric \"ts\"";
        return false;
      }
    }
  }
  return true;
}

}  // namespace eo::trace
