#include "trace/export.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

namespace eo::trace {

namespace {

/// Microsecond timestamp with nanosecond precision, as Chrome expects.
std::string us(SimTime ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace

void write_chrome_json(const Trace& t, std::ostream& os) {
  std::map<std::int32_t, std::string> names(t.task_names.begin(),
                                            t.task_names.end());
  auto task_label = [&](std::int32_t tid) {
    auto it = names.find(tid);
    if (it == names.end()) return std::string("tid") + std::to_string(tid);
    return it->second + "/" + std::to_string(tid);
  };

  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  // Metadata: one process, one named thread lane per core plus an ambient
  // lane for IRQ-context events.
  sep();
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
        "\"args\":{\"name\":\"sim-kernel\"}}";
  for (int c = 0; c <= t.n_cores; ++c) {
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << c + 1
       << ",\"args\":{\"name\":\""
       << (c < t.n_cores ? "core " + std::to_string(c) : std::string("irq"))
       << "\"}}";
  }

  // Lane for a record: cores at tid 1..N, ambient at N+1.
  auto lane = [&](const TraceEvent& e) {
    const int c = e.core >= 0 && e.core < t.n_cores ? e.core : t.n_cores;
    return c + 1;
  };

  // Run slices: pair switch_in with the next switch_out on the same core.
  std::vector<SimTime> slice_start(static_cast<std::size_t>(t.n_cores) + 1, -1);
  std::vector<std::int32_t> slice_tid(static_cast<std::size_t>(t.n_cores) + 1,
                                      0);
  for (const TraceEvent& e : t.events) {
    const auto l = static_cast<std::size_t>(lane(e)) - 1;
    const auto kind = static_cast<EventKind>(e.kind);
    if (kind == EventKind::kSwitchIn) {
      slice_start[l] = e.ts;
      slice_tid[l] = e.tid;
      continue;
    }
    if (kind == EventKind::kSwitchOut && slice_start[l] >= 0) {
      sep();
      os << "{\"name\":\"" << json_escape(task_label(slice_tid[l]))
         << "\",\"ph\":\"X\",\"ts\":" << us(slice_start[l])
         << ",\"dur\":" << us(e.ts - slice_start[l]) << ",\"pid\":0,\"tid\":"
         << l + 1 << ",\"args\":{\"vruntime\":" << e.arg0
         << ",\"voluntary\":" << e.arg1 << "}}";
      slice_start[l] = -1;
      continue;
    }
    if (kind == EventKind::kEnqueue || kind == EventKind::kDequeue) {
      // Runqueue depth as a counter track per core.
      sep();
      os << "{\"name\":\"rq_depth core" << (e.core >= 0 ? e.core : -1)
         << "\",\"ph\":\"C\",\"ts\":" << us(e.ts)
         << ",\"pid\":0,\"args\":{\"nr_running\":" << e.arg0 << "}}";
      continue;
    }
    // Everything else: a thread-scoped instant on its core lane.
    sep();
    os << "{\"name\":\"" << to_string(kind)
       << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << us(e.ts)
       << ",\"pid\":0,\"tid\":" << lane(e) << ",\"args\":{\"task\":\""
       << json_escape(task_label(e.tid)) << "\",\"arg0\":" << e.arg0
       << ",\"arg1\":" << e.arg1 << "}}";
  }
  os << "\n],\"otherData\":{\"dropped_events\":\"" << t.dropped << "\"}}\n";
}

void write_csv(const Trace& t, std::ostream& os) {
  os << "ts_ns,core,kind,kind_name,tid,arg0,arg1\n";
  for (const TraceEvent& e : t.events) {
    os << e.ts << ',' << e.core << ',' << e.kind << ','
       << to_string(static_cast<EventKind>(e.kind)) << ',' << e.tid << ','
       << e.arg0 << ',' << e.arg1 << '\n';
  }
}

std::string render(const Trace& t, const std::string& format) {
  std::ostringstream os;
  if (format == "csv") {
    write_csv(t, os);
  } else {
    write_chrome_json(t, os);
  }
  return os.str();
}

bool export_to_file(const Trace& t, const std::string& path,
                    const std::string& format, std::string* err) {
  const std::string text = render(t, format);
  if (format != "csv" && !validate_chrome_trace_json(text, err)) return false;
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    if (err != nullptr) *err = "cannot open " + path + " for writing";
    return false;
  }
  f << text;
  f.close();
  if (!f) {
    if (err != nullptr) *err = "write to " + path + " failed";
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Minimal JSON parser for the validator. Parses the full grammar (objects,
// arrays, strings with escapes, numbers, true/false/null); the caller then
// checks the trace-event envelope on a pared-down DOM.
// ---------------------------------------------------------------------------

namespace {

struct JsonValue;
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

struct JsonValue {
  enum Type { kNull, kBool, kNumber, kString, kArray, kObject } type = kNull;
  std::string str;                 // kString
  double num = 0;                  // kNumber
  bool b = false;                  // kBool
  std::vector<JsonValue> items;    // kArray
  JsonObject fields;               // kObject

  const JsonValue* get(const std::string& key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(JsonValue* out, std::string* err) {
    skip_ws();
    if (!value(out)) {
      if (err != nullptr) {
        *err = "JSON parse error near offset " + std::to_string(pos_) + ": " +
               err_;
      }
      return false;
    }
    skip_ws();
    if (pos_ != s_.size()) {
      if (err != nullptr) {
        *err = "trailing garbage at offset " + std::to_string(pos_);
      }
      return false;
    }
    return true;
  }

 private:
  bool fail(const char* why) {
    if (err_.empty()) err_ = why;
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return fail("bad literal");
    pos_ += n;
    return true;
  }

  bool value(JsonValue* out) {
    if (pos_ >= s_.size()) return fail("unexpected end");
    const char c = s_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out->type = JsonValue::kString;
      return string(&out->str);
    }
    if (c == 't') {
      out->type = JsonValue::kBool;
      out->b = true;
      return literal("true");
    }
    if (c == 'f') {
      out->type = JsonValue::kBool;
      out->b = false;
      return literal("false");
    }
    if (c == 'n') {
      out->type = JsonValue::kNull;
      return literal("null");
    }
    return number(out);
  }

  bool object(JsonValue* out) {
    out->type = JsonValue::kObject;
    consume('{');
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!string(&key)) return fail("expected object key");
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      JsonValue v;
      if (!value(&v)) return false;
      out->fields.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool array(JsonValue* out) {
    out->type = JsonValue::kArray;
    consume('[');
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      skip_ws();
      JsonValue v;
      if (!value(&v)) return false;
      out->items.push_back(std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  bool string(std::string* out) {
    if (!consume('"')) return fail("expected string");
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return fail("raw control char");
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return fail("dangling escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out->push_back(e);
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 'b':
        case 'f':
          out->push_back(' ');
          break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return fail("short \\u escape");
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) {
              return fail("bad \\u escape");
            }
          }
          pos_ += 4;
          out->push_back('?');  // validation only needs well-formedness
          break;
        }
        default:
          return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool number(JsonValue* out) {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    char* end = nullptr;
    const std::string tok = s_.substr(start, pos_ - start);
    out->num = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("bad number");
    out->type = JsonValue::kNumber;
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string err_;
};

}  // namespace

bool validate_chrome_trace_json(const std::string& text, std::string* err) {
  JsonValue root;
  if (!JsonParser(text).parse(&root, err)) return false;
  if (root.type != JsonValue::kObject) {
    if (err != nullptr) *err = "root is not an object";
    return false;
  }
  const JsonValue* events = root.get("traceEvents");
  if (events == nullptr || events->type != JsonValue::kArray) {
    if (err != nullptr) *err = "missing traceEvents array";
    return false;
  }
  for (std::size_t i = 0; i < events->items.size(); ++i) {
    const JsonValue& e = events->items[i];
    const std::string at = "traceEvents[" + std::to_string(i) + "]";
    if (e.type != JsonValue::kObject) {
      if (err != nullptr) *err = at + " is not an object";
      return false;
    }
    const JsonValue* ph = e.get("ph");
    const JsonValue* name = e.get("name");
    if (ph == nullptr || ph->type != JsonValue::kString || ph->str.empty()) {
      if (err != nullptr) *err = at + " lacks a string \"ph\"";
      return false;
    }
    if (name == nullptr || name->type != JsonValue::kString) {
      if (err != nullptr) *err = at + " lacks a string \"name\"";
      return false;
    }
    if (ph->str != "M") {  // metadata events carry no timestamp
      const JsonValue* ts = e.get("ts");
      if (ts == nullptr || ts->type != JsonValue::kNumber || ts->num < 0) {
        if (err != nullptr) *err = at + " lacks a non-negative numeric \"ts\"";
        return false;
      }
    }
  }
  return true;
}

}  // namespace eo::trace
