// Offline timeline analysis of an exported trace.
//
// `TimelineAnalyzer` replays a merged event stream and re-derives the
// paper's own metrics from first principles — independently of the kernel's
// live counters. That independence is the point: a bench's reported numbers
// can be cross-checked against the event-level schedule that produced them
// (the trace tests assert the two agree), and a trace captured from any run
// can be mined for the same statistics after the fact.
//
// Derived metrics:
//  * wakeup-latency histogram — unblock (wakeup/vb_clear) to first run;
//  * per-core runqueue-depth timeline — from enqueue/dequeue records;
//  * context-switch / wakeup / futex / vb counts — replayed, comparable
//    against sched::SchedStats;
//  * VB flag-check (skip) quanta per task;
//  * BWD deschedules split into true and false positives using the
//    ground-truth bit carried by the bwd_desched record;
//  * futex bucket-lock wait histogram — the paper's lock-serialization cost.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/histogram.h"
#include "common/units.h"
#include "trace/trace.h"

namespace eo::trace {

/// One sample of a core's runqueue depth (nr_running after the change).
struct RqDepthPoint {
  SimTime ts = 0;
  std::uint64_t depth = 0;
};

struct TimelineStats {
  std::uint64_t events = 0;

  // Scheduling.
  std::uint64_t switch_in = 0;          ///< every on-core interval
  std::uint64_t context_switches = 0;   ///< real switches (task changed)
  std::uint64_t wakeups = 0;
  std::uint64_t migrations = 0;

  // Blocking.
  std::uint64_t futex_waits = 0;
  std::uint64_t futex_wakes = 0;
  std::uint64_t epoll_waits = 0;
  std::uint64_t epoll_posts = 0;

  // Virtual blocking.
  std::uint64_t vb_parks = 0;
  std::uint64_t vb_clears = 0;
  std::uint64_t vb_skip_quanta = 0;
  std::map<std::int32_t, std::uint64_t> vb_skips_by_tid;

  // Busy-waiting detection.
  std::uint64_t bwd_samples = 0;
  std::uint64_t bwd_desched = 0;
  std::uint64_t bwd_desched_true = 0;   ///< window was genuinely pure spin
  std::uint64_t bwd_desched_false = 0;
  std::uint64_t bwd_skip_clears = 0;

  /// Unblock -> first-run latency, paired from wakeup/run_after_wake records.
  Histogram wakeup_latency;
  /// Futex bucket-lock queueing delay per acquisition.
  Histogram bucket_lock_wait;

  /// Per-core runqueue-depth samples, time-ordered.
  std::vector<std::vector<RqDepthPoint>> rq_depth;

  SimTime span_begin = 0;
  SimTime span_end = 0;
};

class TimelineAnalyzer {
 public:
  /// Replays `trace` (events must be time-ordered, as `Tracer::snapshot`
  /// produces) and derives the statistics above.
  static TimelineStats analyze(const Trace& trace);
};

}  // namespace eo::trace
