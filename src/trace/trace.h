// Kernel event tracing (sim-ftrace).
//
// The simulator's analogue of ftrace / `perf sched record`: every layer of
// the kernel stack emits fixed-size POD `TraceEvent` records into per-core
// ring buffers. Emission is designed to be negligible on the fast path:
//
//  * compile-time gate — with `EO_TRACE=OFF` (CMake) the `EO_TRACE_EVENT`
//    macro expands to nothing, so instrumented code carries zero cost;
//  * runtime gate — with tracing compiled in but disabled, `Tracer::emit`
//    is a single predicted branch; ring storage is only allocated once
//    tracing is enabled;
//  * fixed-capacity rings — emission never allocates; when a ring wraps the
//    oldest records are overwritten and counted as dropped.
//
// Traces are deterministic: timestamps come from the discrete-event engine,
// and per-ring order is emission order, so identical seeds produce
// byte-identical traces (a property test enforces this). See
// `src/trace/README.md` for the event catalogue and exporter docs.
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/units.h"
#include "sim/engine.h"

namespace eo::trace {

/// Every instrumented point in the kernel. Keep the order stable: the values
/// are written into exported traces, and the CSV exporter emits the numeric
/// kind alongside the name.
enum class EventKind : std::uint16_t {
  // Task lifecycle.
  kTaskStart,      ///< task became runnable for the first time (arg0=cpu)
  kTaskExit,       ///< task exited
  // Context switching (kern/kernel.cc).
  kSwitchIn,       ///< task picked onto a core (arg0=vruntime, arg1=real switch)
  kSwitchOut,      ///< task removed from a core (arg0=vruntime, arg1=voluntary)
  kRunAfterWake,   ///< first run after an unblock (arg0=latency ns)
  // Wakeups (kern/kernel.cc).
  kWakeupBegin,    ///< waker entered the wake chain (arg0=waiter count)
  kWakeup,         ///< a wakee became runnable (arg0=target cpu, arg1=vb)
  kWakeupEnd,      ///< waker finished the wake chain (arg0=woken count)
  kMigration,      ///< task moved between cores (arg0=src, arg1=dst)
  // Runqueue (sched/runqueue.cc).
  kEnqueue,        ///< entity added (arg0=nr_running after, arg1=vruntime)
  kDequeue,        ///< entity removed (arg0=nr_running after, arg1=vruntime)
  kPickNext,       ///< entity chosen to run (arg0=nr_running, arg1=vruntime)
  // Timers (sched/hrtimer.cc). Timers re-arm in place via the engine's
  // periodic-event path, so one record per fire is the only per-tick cost.
  kTimerFire,      ///< repeating timer fired (arg0=timer id)
  // Futex (kern/kernel.cc + futex/futex.cc).
  kFutexWait,      ///< task blocked on a word (arg0=word id, arg1=vb)
  kFutexWake,      ///< futex_wake issued (arg0=word id, arg1=waiters matched)
  kFutexBucketLock,///< bucket lock acquired (arg0=wait ns, arg1=hold ns)
  // Epoll (kern/kernel.cc + epollsim/epoll.cc).
  kEpollWait,      ///< task blocked in epoll_wait (arg0=epfd, arg1=vb)
  kEpollPost,      ///< event posted (arg0=epfd, arg1=had waiter)
  kEpollLock,      ///< instance lock acquired (arg0=wait ns, arg1=hold ns)
  // Virtual blocking (core/vb_policy.cc + sched/runqueue.cc + kernel).
  kVbDecision,     ///< policy decision (arg0=use vb, arg1=waiters after)
  kVbPark,         ///< entity marked blocked at the tree tail (arg0=saved vrt)
  kVbSkipQuantum,  ///< flag-check quantum granted to a parked entity
  kVbClear,        ///< blocked flag cleared / vruntime restored
  // Busy-waiting detection (core/bwd.cc + kernel + runqueue).
  kBwdSample,      ///< monitor window evaluated (arg0=detected, arg1=truth)
  kBwdDesched,     ///< spinner descheduled (arg0=ground-truth spin)
  kBwdSkipClear,   ///< skip flag expired in pick_next
  // Misc.
  kSleep,          ///< nanosleep started (arg0=duration ns)
  kCount,          ///< number of kinds (not a real event)
};

/// Stable lower_snake name for exporters ("switch_in", "futex_wait", ...).
const char* to_string(EventKind k);

/// One trace record. POD, 32 bytes; the emit fast path is a branch plus a
/// store of this struct into a preallocated ring slot.
struct TraceEvent {
  SimTime ts = 0;           ///< engine time at emission (ns)
  std::int32_t tid = 0;     ///< task id, 0 if none
  std::int16_t core = -1;   ///< core id, -1 for ambient/IRQ context
  std::uint16_t kind = 0;   ///< EventKind
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
};
static_assert(std::is_trivially_copyable_v<TraceEvent>, "emit must be a store");
static_assert(sizeof(TraceEvent) == 32, "keep the record cache-friendly");

struct TraceConfig {
  bool enabled = false;
  /// Capacity of each per-core ring, in events (32 B each).
  std::size_t ring_capacity = 1u << 16;
};

/// Fixed-capacity overwrite-oldest ring of TraceEvents.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity);

  void push(const TraceEvent& e) {
    buf_[head_] = e;
    head_ = head_ + 1 == buf_.size() ? 0 : head_ + 1;
    if (count_ < buf_.size()) {
      ++count_;
    } else {
      ++dropped_;
    }
  }

  std::size_t capacity() const { return buf_.size(); }
  std::size_t size() const { return count_; }
  /// Events overwritten because the ring was full.
  std::uint64_t dropped() const { return dropped_; }

  /// Appends the retained events, oldest first, to `out`.
  void copy_ordered(std::vector<TraceEvent>* out) const;

  void clear() {
    head_ = 0;
    count_ = 0;
    dropped_ = 0;
  }

 private:
  std::vector<TraceEvent> buf_;
  std::size_t head_ = 0;   ///< next write position
  std::size_t count_ = 0;  ///< events retained (<= capacity)
  std::uint64_t dropped_ = 0;
};

/// A finished trace: merged, time-ordered events plus labeling metadata.
struct Trace {
  int n_cores = 0;
  std::uint64_t dropped = 0;
  std::vector<TraceEvent> events;
  /// tid -> human-readable task name, for exporters.
  std::vector<std::pair<std::int32_t, std::string>> task_names;
};

/// Per-kernel tracer: one ring per core plus an ambient ring for events with
/// no core context (external epoll posts). Owned by the Kernel; every
/// instrumented module holds a raw pointer. Timestamps are read from the
/// engine at emission so call sites never thread `now` through.
class Tracer {
 public:
  Tracer(const sim::Engine* engine, int n_cores, TraceConfig cfg);

  bool enabled() const { return enabled_; }
  /// Enabling allocates the rings on first use; disabling keeps them.
  void set_enabled(bool on);

  void emit(int core, EventKind kind, std::int32_t tid, std::uint64_t arg0 = 0,
            std::uint64_t arg1 = 0) {
    if (!enabled_) return;
    TraceEvent e;
    e.ts = engine_->now();
    e.tid = tid;
    e.core = static_cast<std::int16_t>(core);
    e.kind = static_cast<std::uint16_t>(kind);
    e.arg0 = arg0;
    e.arg1 = arg1;
    rings_[ring_index(core)].push(e);
  }

  std::uint64_t total_events() const;
  std::uint64_t total_dropped() const;

  /// Merges the rings into one time-ordered record stream. Ties are broken
  /// by ring (core) index, then per-ring emission order, so the result is a
  /// pure function of the simulation.
  Trace snapshot() const;

  void clear();

 private:
  std::size_t ring_index(int core) const {
    return core >= 0 && core < n_cores_ ? static_cast<std::size_t>(core)
                                        : static_cast<std::size_t>(n_cores_);
  }

  const sim::Engine* engine_;
  int n_cores_;
  std::size_t ring_capacity_;
  bool enabled_ = false;
  std::vector<TraceRing> rings_;  ///< n_cores + 1 (last = ambient), lazy
};

}  // namespace eo::trace

// Emit macro used at every instrumentation point. `tracer` may be null (the
// module was never wired); with EO_TRACE=OFF the whole call compiles out and
// its arguments are not evaluated.
#if defined(EO_TRACE_ENABLED) && EO_TRACE_ENABLED
#define EO_TRACE_EVENT(tracer, core, kind, tid, arg0, arg1)               \
  do {                                                                    \
    ::eo::trace::Tracer* eo_trace_t_ = (tracer);                          \
    if (eo_trace_t_ != nullptr) {                                         \
      eo_trace_t_->emit((core), (kind), (tid), (arg0), (arg1));           \
    }                                                                     \
  } while (0)
#else
// Arguments are referenced in dead code (never evaluated at runtime) so an
// EO_TRACE=OFF build does not emit unused-variable warnings at call sites.
#define EO_TRACE_EVENT(tracer, core, kind, tid, arg0, arg1)              \
  do {                                                                   \
    if (false) {                                                         \
      (void)(tracer);                                                    \
      (void)(core);                                                      \
      (void)(tid);                                                       \
      (void)(arg0);                                                      \
      (void)(arg1);                                                      \
    }                                                                    \
  } while (0)
#endif
