#include "trace/trace.h"

#include <algorithm>

#include "common/logging.h"

namespace eo::trace {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kTaskStart:
      return "task_start";
    case EventKind::kTaskExit:
      return "task_exit";
    case EventKind::kSwitchIn:
      return "switch_in";
    case EventKind::kSwitchOut:
      return "switch_out";
    case EventKind::kRunAfterWake:
      return "run_after_wake";
    case EventKind::kWakeupBegin:
      return "wakeup_begin";
    case EventKind::kWakeup:
      return "wakeup";
    case EventKind::kWakeupEnd:
      return "wakeup_end";
    case EventKind::kMigration:
      return "migration";
    case EventKind::kEnqueue:
      return "enqueue";
    case EventKind::kDequeue:
      return "dequeue";
    case EventKind::kPickNext:
      return "pick_next";
    case EventKind::kTimerFire:
      return "timer_fire";
    case EventKind::kFutexWait:
      return "futex_wait";
    case EventKind::kFutexWake:
      return "futex_wake";
    case EventKind::kFutexBucketLock:
      return "futex_bucket_lock";
    case EventKind::kEpollWait:
      return "epoll_wait";
    case EventKind::kEpollPost:
      return "epoll_post";
    case EventKind::kEpollLock:
      return "epoll_lock";
    case EventKind::kVbDecision:
      return "vb_decision";
    case EventKind::kVbPark:
      return "vb_park";
    case EventKind::kVbSkipQuantum:
      return "vb_skip_quantum";
    case EventKind::kVbClear:
      return "vb_clear";
    case EventKind::kBwdSample:
      return "bwd_sample";
    case EventKind::kBwdDesched:
      return "bwd_desched";
    case EventKind::kBwdSkipClear:
      return "bwd_skip_clear";
    case EventKind::kSleep:
      return "sleep";
    case EventKind::kCount:
      break;
  }
  return "?";
}

TraceRing::TraceRing(std::size_t capacity) : buf_(capacity) {
  EO_CHECK_GT(capacity, 0u);
}

void TraceRing::copy_ordered(std::vector<TraceEvent>* out) const {
  if (count_ == 0) return;
  // Oldest record: right after head when full, slot 0 otherwise.
  const std::size_t start = count_ == buf_.size() ? head_ : 0;
  for (std::size_t i = 0; i < count_; ++i) {
    out->push_back(buf_[(start + i) % buf_.size()]);
  }
}

Tracer::Tracer(const sim::Engine* engine, int n_cores, TraceConfig cfg)
    : engine_(engine), n_cores_(n_cores), ring_capacity_(cfg.ring_capacity) {
  EO_CHECK(engine != nullptr);
  EO_CHECK_GE(n_cores, 1);
  set_enabled(cfg.enabled);
}

void Tracer::set_enabled(bool on) {
  if (on && rings_.empty()) {
    rings_.reserve(static_cast<std::size_t>(n_cores_) + 1);
    for (int i = 0; i <= n_cores_; ++i) rings_.emplace_back(ring_capacity_);
  }
  enabled_ = on;
}

std::uint64_t Tracer::total_events() const {
  std::uint64_t n = 0;
  for (const auto& r : rings_) n += r.size();
  return n;
}

std::uint64_t Tracer::total_dropped() const {
  std::uint64_t n = 0;
  for (const auto& r : rings_) n += r.dropped();
  return n;
}

Trace Tracer::snapshot() const {
  Trace t;
  t.n_cores = n_cores_;
  t.dropped = total_dropped();
  t.events.reserve(total_events());
  for (const auto& r : rings_) r.copy_ordered(&t.events);
  // Each ring is already time-ordered (engine time is monotonic), so a
  // stable sort by timestamp yields a deterministic merge: ties keep ring
  // order (core 0 .. N, ambient last) and per-ring emission order.
  std::stable_sort(
      t.events.begin(), t.events.end(),
      [](const TraceEvent& a, const TraceEvent& b) { return a.ts < b.ts; });
  return t;
}

void Tracer::clear() {
  for (auto& r : rings_) r.clear();
}

}  // namespace eo::trace
