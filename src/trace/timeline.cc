#include "trace/timeline.h"

namespace eo::trace {

TimelineStats TimelineAnalyzer::analyze(const Trace& trace) {
  TimelineStats s;
  s.events = trace.events.size();
  s.rq_depth.resize(static_cast<std::size_t>(trace.n_cores));
  if (!trace.events.empty()) {
    s.span_begin = trace.events.front().ts;
    s.span_end = trace.events.back().ts;
  }

  // tid -> time it last became runnable after an unblock, awaiting its
  // first run. Re-wakes before a run overwrite, matching the kernel's
  // single `runnable_since` slot.
  std::map<std::int32_t, SimTime> pending_wake;

  for (const TraceEvent& e : trace.events) {
    switch (static_cast<EventKind>(e.kind)) {
      case EventKind::kSwitchIn:
        ++s.switch_in;
        if (e.arg1 != 0) ++s.context_switches;
        break;
      case EventKind::kWakeup:
        ++s.wakeups;
        pending_wake[e.tid] = e.ts;
        break;
      case EventKind::kRunAfterWake: {
        auto it = pending_wake.find(e.tid);
        if (it != pending_wake.end()) {
          s.wakeup_latency.add(e.ts - it->second);
          pending_wake.erase(it);
        }
        break;
      }
      case EventKind::kMigration:
        ++s.migrations;
        break;
      case EventKind::kEnqueue:
      case EventKind::kDequeue:
        if (e.core >= 0 && e.core < trace.n_cores) {
          s.rq_depth[static_cast<std::size_t>(e.core)].push_back(
              RqDepthPoint{e.ts, e.arg0});
        }
        break;
      case EventKind::kFutexWait:
        ++s.futex_waits;
        break;
      case EventKind::kFutexWake:
        ++s.futex_wakes;
        break;
      case EventKind::kFutexBucketLock:
        s.bucket_lock_wait.add(static_cast<std::int64_t>(e.arg0));
        break;
      case EventKind::kEpollWait:
        ++s.epoll_waits;
        break;
      case EventKind::kEpollPost:
        ++s.epoll_posts;
        break;
      case EventKind::kVbPark:
        ++s.vb_parks;
        break;
      case EventKind::kVbClear:
        ++s.vb_clears;
        break;
      case EventKind::kVbSkipQuantum:
        ++s.vb_skip_quanta;
        ++s.vb_skips_by_tid[e.tid];
        break;
      case EventKind::kBwdSample:
        ++s.bwd_samples;
        break;
      case EventKind::kBwdDesched:
        ++s.bwd_desched;
        (e.arg0 != 0 ? s.bwd_desched_true : s.bwd_desched_false)++;
        break;
      case EventKind::kBwdSkipClear:
        ++s.bwd_skip_clears;
        break;
      default:
        break;
    }
  }
  return s;
}

}  // namespace eo::trace
