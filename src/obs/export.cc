#include "obs/export.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/histogram.h"
#include "common/json.h"
#include "common/logging.h"
#include "metrics/table_printer.h"

namespace eo::obs {

namespace {

void render_json(const MetricsDoc& doc, std::ostream& os) {
  EO_CHECK_EQ(doc.core_series.size(),
              doc.tick_series.size() * static_cast<std::size_t>(doc.n_cores));
  json::Writer w(os);
  w.begin_object();
  w.field("schema", kMetricsSchemaName);
  w.field("schema_version", kMetricsSchemaVersion);
  w.field("n_cores", doc.n_cores);
  w.field("interval_ns", static_cast<std::int64_t>(doc.interval));
  w.field("ticks", doc.ticks);
  w.field("dropped_ticks", doc.dropped_ticks);

  w.key("counters");
  w.begin_array();
  for (const auto& c : doc.counters) {
    w.begin_object();
    w.field("name", c.name);
    w.field("value", c.value);
    w.end_object();
  }
  w.end_array();

  w.key("gauges");
  w.begin_array();
  for (const auto& g : doc.gauges) {
    w.begin_object();
    w.field("name", g.name);
    w.field("value", g.value);
    w.end_object();
  }
  w.end_array();

  w.key("histograms");
  w.begin_array();
  for (const auto& h : doc.histograms) {
    w.begin_object();
    w.field("name", h.name);
    w.field("count", h.count);
    w.field("min", h.min);
    w.field("max", h.max);
    w.field("mean", h.mean);
    w.field("p50", h.p50);
    w.field("p95", h.p95);
    w.field("p99", h.p99);
    w.field("p999", h.p999);
    w.end_object();
  }
  w.end_array();

  w.key("series");
  w.begin_object();
  w.key("ticks");
  w.begin_array();
  for (const auto& t : doc.tick_series) {
    w.begin_object();
    w.field("ts_ns", static_cast<std::int64_t>(t.ts));
    w.field("live_tasks", t.live_tasks);
    w.field("online_cores", t.online_cores);
    w.field("d_context_switches", t.d_context_switches);
    w.field("d_wakeups", t.d_wakeups);
    w.field("d_migrations", t.d_migrations);
    w.end_object();
  }
  w.end_array();
  w.key("cores");
  w.begin_array();
  for (int c = 0; c < doc.n_cores; ++c) {
    w.begin_object();
    w.field("core", c);
    w.key("samples");
    w.begin_array();
    for (std::size_t f = 0; f < doc.tick_series.size(); ++f) {
      const CoreSample& s =
          doc.core_series[f * static_cast<std::size_t>(doc.n_cores) +
                          static_cast<std::size_t>(c)];
      w.begin_object();
      w.field("rq", s.rq_depth);
      w.field("sched", s.schedulable);
      w.field("vb", s.vb_parked);
      w.field("skip", s.bwd_skipped);
      w.field("run", static_cast<int>(s.running));
      w.field("on", static_cast<int>(s.online));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();  // series

  w.key("watchdog");
  w.begin_object();
  w.field("checks", doc.watchdog_checks);
  w.field("violations", doc.watchdog_violations);
  w.key("records");
  w.begin_array();
  for (const auto& v : doc.violation_records) {
    w.begin_object();
    w.field("ts_ns", static_cast<std::int64_t>(v.ts));
    w.field("invariant", v.invariant);
    w.field("detail", v.detail);
    w.end_object();
  }
  w.end_array();
  w.end_object();  // watchdog

  if (doc.taskstats != nullptr) {
    w.key("taskstats");
    write_taskstats_json(w, *doc.taskstats);
  }
  w.end_object();
  os << "\n";
}

void render_csv(const MetricsDoc& doc, std::ostream& os) {
  os << "ts_ns,core,rq_depth,schedulable,vb_parked,bwd_skipped,running,"
        "online,live_tasks,online_cores,d_context_switches,d_wakeups,"
        "d_migrations\n";
  for (std::size_t f = 0; f < doc.tick_series.size(); ++f) {
    const TickSample& t = doc.tick_series[f];
    // One global row (core == -1), then one row per core.
    os << t.ts << ",-1,,,,,,," << t.live_tasks << ',' << t.online_cores << ','
       << t.d_context_switches << ',' << t.d_wakeups << ',' << t.d_migrations
       << '\n';
    for (int c = 0; c < doc.n_cores; ++c) {
      const CoreSample& s =
          doc.core_series[f * static_cast<std::size_t>(doc.n_cores) +
                          static_cast<std::size_t>(c)];
      os << t.ts << ',' << c << ',' << s.rq_depth << ',' << s.schedulable
         << ',' << s.vb_parked << ',' << s.bwd_skipped << ','
         << static_cast<int>(s.running) << ',' << static_cast<int>(s.online)
         << ",,,,,\n";
    }
  }
}

void render_report(const MetricsDoc& doc, std::ostream& os) {
  os << "eo-metrics report: cores=" << doc.n_cores
     << " interval=" << to_us(doc.interval) << "us ticks=" << doc.ticks
     << " retained=" << doc.tick_series.size()
     << " dropped=" << doc.dropped_ticks << "\n";
  os << "watchdog: checks=" << doc.watchdog_checks
     << " violations=" << doc.watchdog_violations << "\n";
  for (const auto& v : doc.violation_records) {
    os << "  VIOLATION t=" << v.ts << "ns " << v.invariant << ": " << v.detail
       << "\n";
  }

  if (!doc.tick_series.empty()) {
    os << "\n";
    metrics::TablePrinter t(
        {"core", "avg_rq", "max_rq", "avg_sched", "avg_vb", "avg_skip",
         "run%", "on%"},
        os);
    const auto frames = doc.tick_series.size();
    for (int c = 0; c < doc.n_cores; ++c) {
      double rq = 0, sched = 0, vb = 0, skip = 0, run = 0, on = 0;
      std::int32_t max_rq = 0;
      for (std::size_t f = 0; f < frames; ++f) {
        const CoreSample& s =
            doc.core_series[f * static_cast<std::size_t>(doc.n_cores) +
                            static_cast<std::size_t>(c)];
        rq += s.rq_depth;
        sched += s.schedulable;
        vb += s.vb_parked;
        skip += s.bwd_skipped;
        run += s.running;
        on += s.online;
        max_rq = std::max(max_rq, s.rq_depth);
      }
      const double n = static_cast<double>(frames);
      t.add_row({metrics::TablePrinter::integer(c),
                 metrics::TablePrinter::num(rq / n),
                 metrics::TablePrinter::integer(max_rq),
                 metrics::TablePrinter::num(sched / n),
                 metrics::TablePrinter::num(vb / n),
                 metrics::TablePrinter::num(skip / n),
                 metrics::TablePrinter::num(run / n * 100.0, 1),
                 metrics::TablePrinter::num(on / n * 100.0, 1)});
    }
    t.print();
  }

  os << "\ncounters:\n";
  for (const auto& c : doc.counters) {
    os << "  " << c.name << " " << c.value << "\n";
  }
  if (!doc.gauges.empty()) {
    os << "gauges:\n";
    for (const auto& g : doc.gauges) {
      os << "  " << g.name << " " << g.value << "\n";
    }
  }
  if (!doc.histograms.empty()) {
    os << "histograms:\n";
    for (const auto& h : doc.histograms) {
      os << "  " << h.name << " count=" << h.count << " min=" << h.min
         << " max=" << h.max << " mean=" << h.mean << " p50=" << h.p50
         << " p95=" << h.p95 << " p99=" << h.p99 << " p999=" << h.p999
         << "\n";
    }
  }
}

bool fail(std::string* err, const std::string& msg) {
  if (err) *err = msg;
  return false;
}

bool require_number(const json::Value& obj, const char* key,
                    std::string* err) {
  const json::Value* v = obj.get(key);
  if (!v || !v->is_number()) {
    return fail(err, std::string("missing numeric field '") + key + "'");
  }
  return true;
}

bool validate_named_values(const json::Value& root, const char* key,
                           std::string* err) {
  const json::Value* arr = root.get(key);
  if (!arr || !arr->is_array()) {
    return fail(err, std::string("'") + key + "' missing or not an array");
  }
  for (const auto& e : arr->items) {
    if (!e.is_object()) return fail(err, std::string(key) + " entry not an object");
    const json::Value* name = e.get("name");
    if (!name || !name->is_string() || name->str.empty()) {
      return fail(err, std::string(key) + " entry missing string 'name'");
    }
    if (!require_number(e, "value", err)) return false;
  }
  return true;
}

}  // namespace

HistogramSummary summarize_histogram(const std::string& name,
                                     const Histogram& hist) {
  HistogramSummary s;
  s.name = name;
  s.count = hist.total_count();
  s.min = hist.min();
  s.max = hist.max();
  s.mean = hist.mean();
  s.p50 = hist.p50();
  s.p95 = hist.p95();
  s.p99 = hist.p99();
  s.p999 = hist.p999();
  return s;
}

std::string render(const MetricsDoc& doc, const std::string& format) {
  std::ostringstream os;
  if (format == "json") {
    render_json(doc, os);
  } else if (format == "csv") {
    render_csv(doc, os);
  } else if (format == "report") {
    render_report(doc, os);
  } else {
    EO_CHECK(false) << "unknown metrics format '" << format << "'";
  }
  return os.str();
}

bool export_to_file(const MetricsDoc& doc, const std::string& path,
                    const std::string& format, std::string* err) {
  if (format != "json" && format != "csv" && format != "report") {
    return fail(err, "unknown metrics format '" + format + "'");
  }
  const std::string text = render(doc, format);
  if (format == "json" && !validate_metrics_json(text, err)) return false;
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return fail(err, "cannot open " + path + " for writing");
  f << text;
  f.close();
  if (!f) return fail(err, "write to " + path + " failed");
  return true;
}

bool validate_metrics_json(const std::string& text, std::string* err) {
  json::Value root;
  if (!json::parse(text, &root, err)) return false;
  if (!root.is_object()) return fail(err, "document root is not an object");
  const json::Value* schema = root.get("schema");
  if (!schema || !schema->is_string() || schema->str != kMetricsSchemaName) {
    return fail(err,
                std::string("'schema' is not \"") + kMetricsSchemaName + "\"");
  }
  const json::Value* version = root.get("schema_version");
  if (!version || !version->is_number() ||
      version->num != kMetricsSchemaVersion) {
    return fail(err, "'schema_version' is not " +
                         std::to_string(kMetricsSchemaVersion));
  }
  for (const char* key : {"n_cores", "interval_ns", "ticks", "dropped_ticks"}) {
    if (!require_number(root, key, err)) return false;
  }
  const int n_cores = static_cast<int>(root.get("n_cores")->num);
  if (n_cores <= 0) return fail(err, "'n_cores' must be positive");
  if (!validate_named_values(root, "counters", err)) return false;
  if (!validate_named_values(root, "gauges", err)) return false;
  const json::Value* hists = root.get("histograms");
  if (!hists || !hists->is_array()) {
    return fail(err, "'histograms' missing or not an array");
  }
  for (const auto& h : hists->items) {
    if (!h.is_object()) return fail(err, "histogram entry not an object");
    const json::Value* name = h.get("name");
    if (!name || !name->is_string()) {
      return fail(err, "histogram entry missing string 'name'");
    }
    for (const char* key :
         {"count", "min", "max", "mean", "p50", "p95", "p99", "p999"}) {
      if (!require_number(h, key, err)) return false;
    }
  }

  const json::Value* series = root.get("series");
  if (!series || !series->is_object()) {
    return fail(err, "'series' missing or not an object");
  }
  const json::Value* ticks = series->get("ticks");
  if (!ticks || !ticks->is_array()) {
    return fail(err, "series missing array 'ticks'");
  }
  for (const auto& t : ticks->items) {
    if (!t.is_object()) return fail(err, "tick entry not an object");
    for (const char* key : {"ts_ns", "live_tasks", "online_cores",
                            "d_context_switches", "d_wakeups",
                            "d_migrations"}) {
      if (!require_number(t, key, err)) return false;
    }
  }
  const json::Value* cores = series->get("cores");
  if (!cores || !cores->is_array() ||
      cores->items.size() != static_cast<std::size_t>(n_cores)) {
    return fail(err, "series 'cores' missing or not n_cores entries");
  }
  for (const auto& c : cores->items) {
    if (!c.is_object()) return fail(err, "core series entry not an object");
    if (!require_number(c, "core", err)) return false;
    const json::Value* samples = c.get("samples");
    if (!samples || !samples->is_array() ||
        samples->items.size() != ticks->items.size()) {
      return fail(err, "core samples missing or misaligned with ticks");
    }
    for (const auto& s : samples->items) {
      if (!s.is_object()) return fail(err, "core sample not an object");
      for (const char* key : {"rq", "sched", "vb", "skip", "run", "on"}) {
        if (!require_number(s, key, err)) return false;
      }
    }
  }

  const json::Value* wd = root.get("watchdog");
  if (!wd || !wd->is_object()) {
    return fail(err, "'watchdog' missing or not an object");
  }
  if (!require_number(*wd, "checks", err)) return false;
  if (!require_number(*wd, "violations", err)) return false;
  const json::Value* records = wd->get("records");
  if (!records || !records->is_array()) {
    return fail(err, "watchdog missing array 'records'");
  }
  for (const auto& r : records->items) {
    if (!r.is_object()) return fail(err, "watchdog record not an object");
    if (!require_number(r, "ts_ns", err)) return false;
    const json::Value* inv = r.get("invariant");
    if (!inv || !inv->is_string()) {
      return fail(err, "watchdog record missing string 'invariant'");
    }
  }

  // Optional embedded `eo-taskstats` section (present when the run asked for
  // per-task delay accounting export).
  const json::Value* ts = root.get("taskstats");
  if (ts != nullptr && !validate_taskstats_value(*ts, err)) return false;
  return true;
}

}  // namespace eo::obs
