#include "obs/taskstats.h"

#include <fstream>
#include <sstream>

#include "common/json.h"

namespace eo::obs {

const char* to_string(TaskDelayState s) {
  switch (s) {
#define EO_TDS_NAME(name, wire)  \
  case TaskDelayState::name:     \
    return #wire;
    EO_TASK_DELAY_STATES(EO_TDS_NAME)
#undef EO_TDS_NAME
  }
  return "?";
}

void write_taskstats_json(json::Writer& w, const TaskstatsDoc& doc) {
  w.begin_object();
  w.field("schema", kTaskstatsSchemaName);
  w.field("schema_version", kTaskstatsSchemaVersion);
  w.field("n_tasks", static_cast<std::uint64_t>(doc.tasks.size()));
  w.key("tasks");
  w.begin_array();
  for (const TaskstatsRecord& r : doc.tasks) {
    w.begin_object();
    w.field("tid", r.tid);
    w.field("name", r.name);
    w.field("finished", r.finished);
    w.field("lifetime_ns", static_cast<std::int64_t>(r.lifetime));
#define EO_TDS_FIELD(name, wire)                 \
    w.field(#wire "_ns", static_cast<std::int64_t>( \
                             r.times[TaskDelayState::name]));
    EO_TASK_DELAY_STATES(EO_TDS_FIELD)
#undef EO_TDS_FIELD
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

namespace {

bool fail(std::string* err, const std::string& msg) {
  if (err) *err = msg;
  return false;
}

}  // namespace

bool validate_taskstats_value(const json::Value& v, std::string* err) {
  if (!v.is_object()) return fail(err, "taskstats is not an object");
  const json::Value* schema = v.get("schema");
  if (!schema || !schema->is_string() || schema->str != kTaskstatsSchemaName) {
    return fail(err, std::string("taskstats 'schema' is not \"") +
                         kTaskstatsSchemaName + "\"");
  }
  const json::Value* version = v.get("schema_version");
  if (!version || !version->is_number() ||
      version->num != kTaskstatsSchemaVersion) {
    return fail(err, "taskstats 'schema_version' is not " +
                         std::to_string(kTaskstatsSchemaVersion));
  }
  const json::Value* n_tasks = v.get("n_tasks");
  if (!n_tasks || !n_tasks->is_number()) {
    return fail(err, "taskstats missing numeric 'n_tasks'");
  }
  const json::Value* tasks = v.get("tasks");
  if (!tasks || !tasks->is_array()) {
    return fail(err, "taskstats missing array 'tasks'");
  }
  if (static_cast<double>(tasks->items.size()) != n_tasks->num) {
    return fail(err, "taskstats 'n_tasks' disagrees with the tasks array");
  }
  for (const json::Value& t : tasks->items) {
    if (!t.is_object()) return fail(err, "taskstats task is not an object");
    const json::Value* tid = t.get("tid");
    if (!tid || !tid->is_number()) {
      return fail(err, "taskstats task missing numeric 'tid'");
    }
    const json::Value* name = t.get("name");
    if (!name || !name->is_string()) {
      return fail(err, "taskstats task missing string 'name'");
    }
    const json::Value* finished = t.get("finished");
    if (!finished || !finished->is_bool()) {
      return fail(err, "taskstats task missing bool 'finished'");
    }
    const json::Value* lifetime = t.get("lifetime_ns");
    if (!lifetime || !lifetime->is_number() || lifetime->num < 0) {
      return fail(err, "taskstats task missing non-negative 'lifetime_ns'");
    }
    double sum = 0;
#define EO_TDS_CHECK(name, wire)                                         \
    {                                                                    \
      const json::Value* f = t.get(#wire "_ns");                         \
      if (!f || !f->is_number() || f->num < 0) {                         \
        return fail(err, "taskstats task missing non-negative '" #wire   \
                         "_ns'");                                        \
      }                                                                  \
      sum += f->num;                                                     \
    }
    EO_TASK_DELAY_STATES(EO_TDS_CHECK)
#undef EO_TDS_CHECK
    // Conservation is part of the schema: state times must sum to the
    // kernel-ground-truth lifetime exactly. Both sides are integers well
    // under 2^53, so double equality is exact here.
    if (sum != lifetime->num) {
      return fail(err, "taskstats task tid=" +
                           std::to_string(static_cast<long long>(tid->num)) +
                           " state times sum to " +
                           std::to_string(static_cast<long long>(sum)) +
                           " != lifetime_ns " +
                           std::to_string(
                               static_cast<long long>(lifetime->num)));
    }
  }
  return true;
}

namespace {

/// The folded format delimits frames with ';' and the count with the last
/// space, so those characters cannot appear inside a frame name.
std::string sanitize_frame(const std::string& s) {
  std::string out = s.empty() ? std::string("?") : s;
  for (char& c : out) {
    if (c == ';') c = ':';
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') c = '_';
  }
  return out;
}

}  // namespace

std::string render_folded(const TaskstatsDoc& doc,
                          const std::string& workload) {
  std::ostringstream os;
  const std::string root = sanitize_frame(workload);
  for (const TaskstatsRecord& r : doc.tasks) {
    // Task frames are "<name>/<tid>" so same-named workers stay distinct
    // stacks instead of merging into one frame.
    const std::string task =
        sanitize_frame(r.name) + "/" + std::to_string(r.tid);
    for (std::size_t i = 0; i < kNumTaskDelayStates; ++i) {
      const SimDuration ns = r.times.t[i];
      if (ns <= 0) continue;
      os << root << ';' << task << ';'
         << to_string(static_cast<TaskDelayState>(i)) << ' ' << ns << '\n';
    }
  }
  return os.str();
}

bool export_folded_to_file(const TaskstatsDoc& doc, const std::string& workload,
                           const std::string& path, std::string* err) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    if (err) *err = "cannot open " + path + " for writing";
    return false;
  }
  f << render_folded(doc, workload);
  f.close();
  if (!f) {
    if (err) *err = "write to " + path + " failed";
    return false;
  }
  return true;
}

}  // namespace eo::obs
