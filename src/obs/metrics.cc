#include "obs/metrics.h"

#include "common/logging.h"

namespace eo::obs {

namespace {
/// Sink for unwired handles. Thread-local so kernels running concurrently on
/// different host threads never share (and race on) one cell.
thread_local std::uint64_t g_counter_sink = 0;
}  // namespace

Counter::Counter() : cell_(&g_counter_sink) {}

void MetricRegistry::check_new_name(const std::string& name) const {
  EO_CHECK(!name.empty()) << "empty metric name";
  EO_CHECK(!has(name)) << "duplicate metric name '" << name << "'";
}

bool MetricRegistry::has(const std::string& name) const {
  for (const auto& c : counters_) {
    if (c.name == name) return true;
  }
  for (const auto& g : gauges_) {
    if (g.name == name) return true;
  }
  for (const auto& h : histograms_) {
    if (h.name == name) return true;
  }
  return false;
}

Counter MetricRegistry::counter(const std::string& name) {
  check_new_name(name);
  owned_.push_back(0);
  counters_.push_back({name, &owned_.back()});
  return Counter(&owned_.back());
}

void MetricRegistry::register_counter(const std::string& name,
                                      const std::uint64_t* cell) {
  check_new_name(name);
  EO_CHECK(cell != nullptr);
  counters_.push_back({name, cell});
}

void MetricRegistry::register_gauge(const std::string& name,
                                    std::function<std::int64_t()> read) {
  check_new_name(name);
  EO_CHECK(read != nullptr);
  gauges_.push_back({name, std::move(read)});
}

void MetricRegistry::register_histogram(const std::string& name,
                                        const Histogram* hist) {
  check_new_name(name);
  EO_CHECK(hist != nullptr);
  histograms_.push_back({name, hist});
}

std::vector<MetricRegistry::CounterValue> MetricRegistry::snapshot_counters()
    const {
  std::vector<CounterValue> out;
  out.reserve(counters_.size());
  for (const auto& c : counters_) out.push_back({c.name, *c.cell});
  return out;
}

void MetricRegistry::counter_values(std::vector<std::uint64_t>* out) const {
  out->resize(counters_.size());
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    (*out)[i] = *counters_[i].cell;
  }
}

std::vector<MetricRegistry::GaugeValue> MetricRegistry::snapshot_gauges()
    const {
  std::vector<GaugeValue> out;
  out.reserve(gauges_.size());
  for (const auto& g : gauges_) out.push_back({g.name, g.read()});
  return out;
}

}  // namespace eo::obs
