// Per-task delay accounting (sim-taskstats).
//
// The simulated kernel's analogue of Linux delayacct/taskstats: every
// `kern::Task` embeds a fixed-size `TaskDelayAcct` that attributes the task's
// entire lifetime to exactly one `TaskDelayState` at every instant — on-CPU
// execution, runqueue wait, futex/epoll blocking, timed sleep, VB parking,
// BWD schedule-skip delay, and post-migration wait. Transitions happen at the
// existing kernel state-change points (schedule/deschedule, futex/epoll
// wait+wake, VB park/unpark, BWD timer fire, load-balance migration), so the
// accounting is exact by construction: the integer state times always sum to
// the kernel's wall-clock ground truth for the task. The sampler cross-checks
// that conservation (plus kernel-state <-> delay-state consistency) on every
// tick and the invariant watchdog records any discrepancy as a
// `taskstats_conserved` violation.
//
// On top of the raw accumulators:
//  * `TaskstatsDoc` — a per-kernel snapshot (one record per task, creation
//    order) embedded into the `eo-metrics` document as a versioned
//    `eo-taskstats` section when `KernelConfig::taskstats` is set, and
//    validated structurally (including conservation) by `json_check`.
//  * `render_folded` — a folded-stack "state flamegraph" exporter
//    (`workload;task;state count` lines) collapsible by inferno/speedscope.
//  * the `src/traffic` critical-path analyzer consumes `TaskDelaySnapshot`
//    deltas to decompose each request's latency into a blame table (see
//    `traffic::BlameBreakdown`).
//
// Everything is allocation-free on the simulation hot path (the accumulators
// are plain arrays inside `Task`), deterministic (snapshots are pure
// functions of the simulation), and compiles to no-ops under
// CMake `-DEO_METRICS=OFF`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace eo::json {
class Writer;
struct Value;
}  // namespace eo::json

namespace eo::obs {

/// X-macro over the delay states: enumerator name + snake_case wire name.
/// Keeps the enum, `to_string`, the JSON fields, the validator, and the
/// folded-stack exporter in sync by construction.
#define EO_TASK_DELAY_STATES(X)        \
  X(kOncpu, oncpu)                     \
  X(kRunnable, runnable)               \
  X(kFutexBlocked, futex_blocked)     \
  X(kEpollBlocked, epoll_blocked)     \
  X(kSleeping, sleeping)               \
  X(kVbParked, vb_parked)             \
  X(kBwdSkipDelayed, bwd_skip_delayed) \
  X(kMigrating, migrating)

/// Where a task's time goes. Exactly one state holds at every instant of a
/// started task's lifetime:
///  * `kOncpu`          — executing on a core (including VB flag-check
///                        quanta: time on CPU is on-CPU time).
///  * `kRunnable`       — on a runqueue, waiting for a core (rq wait).
///  * `kFutexBlocked`   — descheduled inside `futex_wait` (vanilla blocking).
///  * `kEpollBlocked`   — descheduled inside `epoll_wait` (vanilla blocking).
///  * `kSleeping`       — timed sleep.
///  * `kVbParked`       — virtually blocked: kernel-runnable but skipped by
///                        the VB policy until its wake flag is set.
///  * `kBwdSkipDelayed` — preempted by a BWD detection and skip-flagged;
///                        measured until the task next gets the CPU, i.e. the
///                        full scheduling delay a (mis)detection induces.
///  * `kMigrating`      — runqueue wait immediately after a cross-CPU
///                        placement (wakeup steal or load-balance pull),
///                        until first dispatch on the new core. Migrations
///                        are instantaneous in the simulator, so this
///                        isolates the post-migration wait they cause.
enum class TaskDelayState : std::uint8_t {
#define EO_TDS_ENUM(name, wire) name,
  EO_TASK_DELAY_STATES(EO_TDS_ENUM)
#undef EO_TDS_ENUM
};

inline constexpr std::size_t kNumTaskDelayStates = 8;

/// Wire name ("oncpu", "vb_parked", ...).
const char* to_string(TaskDelayState s);

#if defined(EO_METRICS_ENABLED) && EO_METRICS_ENABLED
inline constexpr bool kTaskstatsEnabled = true;
#else
inline constexpr bool kTaskstatsEnabled = false;
#endif

/// A point-in-time copy of one task's accumulated state times. The open
/// interval since the last transition is charged to the current state, so
/// `total()` equals the task's lifetime at the snapshot instant exactly
/// (integer arithmetic, no rounding).
struct TaskDelaySnapshot {
  SimDuration t[kNumTaskDelayStates] = {};

  SimDuration operator[](TaskDelayState s) const {
    return t[static_cast<std::size_t>(s)];
  }
  SimDuration total() const {
    SimDuration sum = 0;
    for (std::size_t i = 0; i < kNumTaskDelayStates; ++i) sum += t[i];
    return sum;
  }
  /// Component-wise `later - earlier`: the time spent per state over the
  /// window between two snapshots of the same task.
  static TaskDelaySnapshot delta(const TaskDelaySnapshot& later,
                                 const TaskDelaySnapshot& earlier) {
    TaskDelaySnapshot d;
    for (std::size_t i = 0; i < kNumTaskDelayStates; ++i) {
      d.t[i] = later.t[i] - earlier.t[i];
    }
    return d;
  }
};

/// The fixed-size accumulator embedded in `kern::Task`. All methods are
/// no-ops when metrics are compiled out, so the kernel call sites need no
/// `#ifdef`s and a `-DEO_METRICS=OFF` build pays nothing.
class TaskDelayAcct {
 public:
#if defined(EO_METRICS_ENABLED) && EO_METRICS_ENABLED
  /// Begins accounting at task start (kernel `start_task`).
  void start(SimTime now, TaskDelayState s) {
    start_ = now;
    since_ = now;
    state_ = s;
    started_ = true;
  }

  /// Charges the interval since the last transition to the current state and
  /// switches to `s`. Same-timestamp transitions are free (zero-duration).
  void transition(SimTime now, TaskDelayState s) {
    if (!started_ || finished_) return;
    times_[static_cast<std::size_t>(state_)] += now - since_;
    since_ = now;
    state_ = s;
  }

  /// Closes accounting at task exit. The final open interval is charged to
  /// the state the task exited from.
  void finish(SimTime now) {
    if (!started_ || finished_) return;
    times_[static_cast<std::size_t>(state_)] += now - since_;
    since_ = now;
    end_ = now;
    finished_ = true;
  }

  bool started() const { return started_; }
  bool finished() const { return finished_; }
  TaskDelayState state() const { return state_; }

  /// Ground-truth lifetime: start -> exit (or `now` while alive).
  SimDuration lifetime(SimTime now) const {
    if (!started_) return 0;
    return (finished_ ? end_ : now) - start_;
  }

  TaskDelaySnapshot snapshot(SimTime now) const {
    TaskDelaySnapshot s;
    for (std::size_t i = 0; i < kNumTaskDelayStates; ++i) s.t[i] = times_[i];
    if (started_ && !finished_) {
      s.t[static_cast<std::size_t>(state_)] += now - since_;
    }
    return s;
  }

  /// The conservation invariant: state times sum to the lifetime exactly,
  /// every component is non-negative, and the accounting clock never runs
  /// ahead of the kernel clock.
  bool conserved(SimTime now) const {
    if (!started_) return true;
    if (since_ > now) return false;
    const TaskDelaySnapshot s = snapshot(now);
    for (std::size_t i = 0; i < kNumTaskDelayStates; ++i) {
      if (s.t[i] < 0) return false;
    }
    return s.total() == lifetime(now);
  }

 private:
  SimDuration times_[kNumTaskDelayStates] = {};
  SimTime since_ = 0;
  SimTime start_ = 0;
  SimTime end_ = 0;
  TaskDelayState state_ = TaskDelayState::kRunnable;
  bool started_ = false;
  bool finished_ = false;
#else
  void start(SimTime, TaskDelayState) {}
  void transition(SimTime, TaskDelayState) {}
  void finish(SimTime) {}
  bool started() const { return false; }
  bool finished() const { return false; }
  TaskDelayState state() const { return TaskDelayState::kRunnable; }
  SimDuration lifetime(SimTime) const { return 0; }
  TaskDelaySnapshot snapshot(SimTime) const { return {}; }
  bool conserved(SimTime) const { return true; }
#endif
};

// --- the eo-taskstats document -------------------------------------------

inline constexpr int kTaskstatsSchemaVersion = 1;
inline constexpr const char* kTaskstatsSchemaName = "eo-taskstats";

/// One task's record in a kernel snapshot.
struct TaskstatsRecord {
  std::uint64_t tid = 0;
  std::string name;
  bool finished = false;
  SimDuration lifetime = 0;  ///< kernel ground truth at snapshot time
  TaskDelaySnapshot times;
};

/// A whole-kernel snapshot (`Kernel::snapshot_taskstats`): one record per
/// task in creation (tid) order, so the rendering is deterministic.
struct TaskstatsDoc {
  std::vector<TaskstatsRecord> tasks;
};

/// Writes the `eo-taskstats` v1 section (a complete JSON object) at the
/// writer's current position. Embedded under the "taskstats" key of an
/// `eo-metrics` document.
void write_taskstats_json(json::Writer& w, const TaskstatsDoc& doc);

/// Structural + conservation validation of a parsed `eo-taskstats` section:
/// schema/version, `n_tasks` arity, per-record field types, and that every
/// record's state times sum exactly to its `lifetime_ns`.
bool validate_taskstats_value(const json::Value& v, std::string* err);

/// Folded-stack "state flamegraph" export: one
/// `workload;task;state <nanoseconds>` line per nonzero state, tasks in
/// record order — directly collapsible by inferno / flamegraph.pl /
/// speedscope. Frame names have `;` and whitespace sanitized to keep the
/// format unambiguous.
std::string render_folded(const TaskstatsDoc& doc, const std::string& workload);

/// Renders and writes the folded file; false (with `err`) on I/O failure.
bool export_folded_to_file(const TaskstatsDoc& doc, const std::string& workload,
                           const std::string& path, std::string* err);

}  // namespace eo::obs
