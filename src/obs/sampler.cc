#include "obs/sampler.h"

#include "common/logging.h"
#include "obs/watchdog.h"

namespace eo::obs {

SeriesStore::SeriesStore(int n_cores, std::size_t capacity)
    : n_cores_(n_cores), capacity_(capacity) {
  EO_CHECK(n_cores > 0);
  EO_CHECK(capacity > 0);
  ticks_.resize(capacity);
  cores_.resize(capacity * static_cast<std::size_t>(n_cores));
}

void SeriesStore::push(const TickSample& tick, const CoreSample* cores) {
  EO_CHECK(capacity_ > 0) << "push into an empty (never-started) store";
  ticks_[head_] = tick;
  CoreSample* dst = &cores_[head_ * static_cast<std::size_t>(n_cores_)];
  for (int i = 0; i < n_cores_; ++i) dst[i] = cores[i];
  head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
  if (count_ < capacity_) {
    ++count_;
  } else {
    ++dropped_;
  }
}

void SeriesStore::copy_ordered(std::vector<TickSample>* tick_out,
                               std::vector<CoreSample>* core_out) const {
  const std::size_t start = count_ == capacity_ ? head_ : 0;
  for (std::size_t i = 0; i < count_; ++i) {
    const std::size_t slot = (start + i) % capacity_;
    if (tick_out) tick_out->push_back(ticks_[slot]);
    if (core_out) {
      const CoreSample* src =
          &cores_[slot * static_cast<std::size_t>(n_cores_)];
      core_out->insert(core_out->end(), src, src + n_cores_);
    }
  }
}

void SeriesStore::clear() {
  head_ = 0;
  count_ = 0;
  dropped_ = 0;
}

// series_ stays the default empty store until start() with sampling enabled:
// the ring (~4096 frames of TickSample + n_cores CoreSamples) dominated
// Kernel construction cost for the vast majority of kernels that never
// sample. start() sees capacity 0 != ring_capacity and builds it then.
Sampler::Sampler(sim::Engine* engine, int n_cores)
    : engine_(engine),
      n_cores_(n_cores),
      scratch_(static_cast<std::size_t>(n_cores)) {}

Sampler::~Sampler() { stop(); }

void Sampler::start(const SamplerConfig& cfg, Collect collect,
                    InvariantWatchdog* watchdog) {
  EO_CHECK(!enabled()) << "sampler already started";
  if (!cfg.enabled) return;
  EO_CHECK(cfg.interval > 0) << "non-positive sampling interval";
  cfg_ = cfg;
  collect_ = std::move(collect);
  EO_CHECK(collect_ != nullptr);
  watchdog_ = watchdog;
  if (cfg_.ring_capacity != series_.capacity()) {
    series_ = SeriesStore(n_cores_, cfg_.ring_capacity);
  }
  event_ = engine_->schedule_periodic(cfg_.interval, cfg_.interval,
                                      [this] { sample_now(); });
}

void Sampler::stop() {
  if (event_ != sim::kInvalidEvent) {
    engine_->cancel(event_);
    event_ = sim::kInvalidEvent;
  }
}

void Sampler::sample_now() {
  GlobalSample g;
  collect_(scratch_.data(), &g);

  TickSample t;
  t.ts = engine_->now();
  t.live_tasks = g.live_tasks;
  t.online_cores = g.online_cores;
  if (have_prev_) {
    t.d_context_switches = g.context_switches - prev_.context_switches;
    t.d_wakeups = g.wakeups - prev_.wakeups;
    t.d_migrations = g.migrations - prev_.migrations;
  }
  series_.push(t, scratch_.data());
  if (watchdog_ != nullptr) {
    // Mark cores whose sample moved since the previous frame; the watchdog
    // skips re-checking unchanged, previously clean cores. The mask affects
    // cost only — frames, series, and verdicts are byte-identical either
    // way (the eo-metrics determinism property pins this).
    const std::uint8_t* mask = nullptr;
    if (prev_cores_.size() == scratch_.size()) {
      changed_.resize(scratch_.size());
      for (std::size_t i = 0; i < scratch_.size(); ++i) {
        const CoreSample& a = scratch_[i];
        const CoreSample& b = prev_cores_[i];
        // Field-wise compare (not memcmp): struct padding is indeterminate.
        changed_[i] = a.rq_depth == b.rq_depth &&
                              a.schedulable == b.schedulable &&
                              a.vb_parked == b.vb_parked &&
                              a.bwd_skipped == b.bwd_skipped &&
                              a.running == b.running && a.online == b.online
                          ? 0
                          : 1;
      }
      mask = changed_.data();
    }
    watchdog_->check(t.ts, scratch_.data(), n_cores_, g, mask);
    prev_cores_ = scratch_;
  }
  prev_ = g;
  have_prev_ = true;
  ++ticks_;
}

}  // namespace eo::obs
