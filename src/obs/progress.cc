#include "obs/progress.h"

#include <sstream>

#include "common/json.h"

namespace eo::obs {
namespace {

const char* kind_name(ProgressEvent::Kind k) {
  switch (k) {
    case ProgressEvent::Kind::kHostStart:
      return "host_start";
    case ProgressEvent::Kind::kHostProgress:
      return "host_progress";
    case ProgressEvent::Kind::kHostFinish:
      return "host_finish";
    case ProgressEvent::Kind::kCellStart:
      return "cell_start";
    case ProgressEvent::Kind::kCellFinish:
      return "cell_finish";
  }
  return "?";
}

}  // namespace

void LineProgressSink::emit(const ProgressEvent& ev) {
  // Only terminal events; starts and window fractions would swamp a
  // terminal at 32 hosts x many cells.
  std::lock_guard<std::mutex> lock(mu_);
  switch (ev.kind) {
    case ProgressEvent::Kind::kHostFinish:
      std::fprintf(out_,
                   "  host %d/%d done: completed=%llu shed=%llu%s\n",
                   ev.host + 1, ev.n_hosts,
                   static_cast<unsigned long long>(ev.completed),
                   static_cast<unsigned long long>(ev.shed),
                   ev.watchdog_violations ? " WATCHDOG" : "");
      break;
    case ProgressEvent::Kind::kCellFinish:
      // Byte-compatible with the pre-sink ExperimentRunner stderr feed.
      if (ev.not_applicable) {
        std::fprintf(out_, "[%zu/%zu] %s: n/a\n", ev.done, ev.total,
                     ev.label.c_str());
      } else {
        std::fprintf(out_, "[%zu/%zu] %s: %s exec=%.2fms%s\n", ev.done,
                     ev.total, ev.label.c_str(),
                     ev.ok ? "ok" : "INCOMPLETE", ev.exec_ms,
                     ev.attempts > 1 ? " (retried)" : "");
      }
      break;
    case ProgressEvent::Kind::kHostStart:
    case ProgressEvent::Kind::kHostProgress:
    case ProgressEvent::Kind::kCellStart:
      break;
  }
  std::fflush(out_);
}

void JsonlProgressSink::emit(const ProgressEvent& ev) {
  std::ostringstream os;
  json::Writer w(os);
  w.begin_object();
  w.field("event", kind_name(ev.kind));
  switch (ev.kind) {
    case ProgressEvent::Kind::kHostStart:
      w.field("host", ev.host);
      w.field("n_hosts", ev.n_hosts);
      break;
    case ProgressEvent::Kind::kHostProgress:
      w.field("host", ev.host);
      w.field("n_hosts", ev.n_hosts);
      w.field("fraction", ev.fraction);
      w.field("completed", ev.completed);
      w.field("shed", ev.shed);
      break;
    case ProgressEvent::Kind::kHostFinish:
      w.field("host", ev.host);
      w.field("n_hosts", ev.n_hosts);
      w.field("completed", ev.completed);
      w.field("shed", ev.shed);
      w.field("watchdog_violations", ev.watchdog_violations);
      break;
    case ProgressEvent::Kind::kCellStart:
      w.field("cell", ev.label);
      w.field("total", ev.total);
      break;
    case ProgressEvent::Kind::kCellFinish:
      w.field("cell", ev.label);
      w.field("done", ev.done);
      w.field("total", ev.total);
      if (ev.not_applicable) {
        w.field("status", "n/a");
      } else {
        w.field("status", ev.ok ? "ok" : "incomplete");
        w.field("exec_ms", ev.exec_ms);
        w.field("attempts", ev.attempts);
      }
      break;
  }
  w.end_object();
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(out_, "%s\n", os.str().c_str());
  std::fflush(out_);
}

std::unique_ptr<ProgressSink> make_progress_sink(const std::string& mode,
                                                 std::FILE* out) {
  if (mode == "line") return std::make_unique<LineProgressSink>(out);
  if (mode == "jsonl") return std::make_unique<JsonlProgressSink>(out);
  return nullptr;  // "none"
}

}  // namespace eo::obs
