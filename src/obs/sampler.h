// Periodic per-core state sampler (sim-top).
//
// Rides `Engine::schedule_periodic()`: every configured simulated interval
// the sampler asks its owner (the Kernel) to fill one `CoreSample` per core
// plus one `GlobalSample`, derives the per-interval counter deltas, pushes
// the frame into fixed-capacity overwrite-oldest ring storage, and (when
// wired) hands the frame to the `InvariantWatchdog`.
//
// Sampling is pure observation: the periodic event reads kernel state but
// never touches it, so a run with sampling enabled is behaviourally
// identical to one without (a property test enforces this). Frames are
// captured between engine events, where kernel invariants hold.
#pragma once

#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

#include "common/units.h"
#include "sim/engine.h"

namespace eo::obs {

class InvariantWatchdog;

struct SamplerConfig {
  bool enabled = false;
  /// Simulated time between samples.
  SimDuration interval = 1_ms;
  /// Frames retained (oldest overwritten beyond this).
  std::size_t ring_capacity = 1u << 12;
};

/// Instantaneous per-core scheduler state at one sample point.
struct CoreSample {
  std::int32_t rq_depth = 0;     ///< nr_running (incl. running + VB-parked)
  std::int32_t schedulable = 0;  ///< nr_running minus VB-parked
  std::int32_t vb_parked = 0;    ///< entities parked by virtual blocking
  std::int32_t bwd_skipped = 0;  ///< entities carrying a BWD skip flag
  std::uint8_t running = 0;      ///< a task is on the core
  std::uint8_t online = 0;
};
static_assert(std::is_trivially_copyable_v<CoreSample>,
              "sampling must be a plain copy");

/// Kernel-wide ground truth captured with each frame. Counter fields are
/// cumulative; the sampler derives the per-interval deltas.
struct GlobalSample {
  std::int64_t live_tasks = 0;
  std::int32_t online_cores = 0;
  /// Tasks in state Runnable or Running (on a runqueue or a core).
  std::int64_t tasks_runnable = 0;
  /// Tasks in state Sleeping (vanilla block or nanosleep).
  std::int64_t tasks_sleeping = 0;
  std::uint64_t context_switches = 0;
  std::uint64_t wakeups = 0;
  std::uint64_t migrations = 0;
  std::uint64_t vb_parks = 0;
  std::uint64_t vb_unparks = 0;
  /// Tasks whose per-state delay accounting fails conservation (state times
  /// must sum to lifetime) or disagrees with the kernel task state. Must be
  /// zero; the watchdog reports any other value as a violation.
  std::uint64_t taskstats_bad = 0;
};

/// One retained time-series point (the global half; per-core halves are
/// stored alongside in the ring).
struct TickSample {
  SimTime ts = 0;
  std::int64_t live_tasks = 0;
  std::int32_t online_cores = 0;
  std::uint64_t d_context_switches = 0;  ///< delta since previous sample
  std::uint64_t d_wakeups = 0;
  std::uint64_t d_migrations = 0;
};

/// Fixed-capacity ring of frames: one TickSample plus n_cores CoreSamples
/// per frame, pushed together so the two series stay aligned.
class SeriesStore {
 public:
  /// An empty store: capacity 0, accepts no frames. The Sampler starts with
  /// one and only builds real ring storage on start() with sampling enabled,
  /// so kernels that never sample (the common case on the micro hot paths)
  /// pay nothing for the ring.
  SeriesStore() = default;
  SeriesStore(int n_cores, std::size_t capacity);
  SeriesStore(SeriesStore&&) = default;
  SeriesStore& operator=(SeriesStore&&) = default;

  void push(const TickSample& tick, const CoreSample* cores);

  int n_cores() const { return n_cores_; }
  std::size_t capacity() const { return capacity_; }
  /// Frames currently retained (<= capacity).
  std::size_t size() const { return count_; }
  /// Frames overwritten because the ring was full.
  std::uint64_t dropped() const { return dropped_; }

  /// Appends the retained frames, oldest first. `core_out` receives the
  /// per-core series frame-major: frame 0's cores 0..n-1, then frame 1's.
  void copy_ordered(std::vector<TickSample>* tick_out,
                    std::vector<CoreSample>* core_out) const;

  void clear();

 private:
  int n_cores_ = 0;
  std::size_t capacity_ = 0;
  std::vector<TickSample> ticks_;    ///< capacity entries
  std::vector<CoreSample> cores_;    ///< capacity * n_cores entries
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::uint64_t dropped_ = 0;
};

class Sampler {
 public:
  /// Fills one CoreSample per core (exactly `n_cores` of them) plus the
  /// global ground truth.
  using Collect = std::function<void(CoreSample* cores, GlobalSample* g)>;

  Sampler(sim::Engine* engine, int n_cores);
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Starts periodic sampling per `cfg` (no-op when cfg.enabled is false).
  /// `collect` supplies the state; `watchdog` may be null.
  void start(const SamplerConfig& cfg, Collect collect,
             InvariantWatchdog* watchdog);
  void stop();

  bool enabled() const { return event_ != sim::kInvalidEvent; }
  SimDuration interval() const { return cfg_.interval; }
  /// Total samples taken (including frames since overwritten).
  std::uint64_t ticks() const { return ticks_; }
  const SeriesStore& series() const { return series_; }

  /// Takes one sample immediately (also the periodic-event body).
  void sample_now();

 private:
  sim::Engine* engine_;
  int n_cores_;
  SamplerConfig cfg_;
  Collect collect_;
  InvariantWatchdog* watchdog_ = nullptr;
  sim::EventId event_ = sim::kInvalidEvent;
  SeriesStore series_;
  std::vector<CoreSample> scratch_;  ///< reused per tick, no allocation
  /// Previous frame's cores + per-core "differs from previous" mask, so the
  /// watchdog only re-checks cores that actually changed.
  std::vector<CoreSample> prev_cores_;
  std::vector<std::uint8_t> changed_;
  bool have_prev_ = false;
  GlobalSample prev_;
  std::uint64_t ticks_ = 0;
};

}  // namespace eo::obs
