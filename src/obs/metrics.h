// Live-telemetry metric registry (sim-schedstats).
//
// The registry names three metric kinds:
//
//  * counters — monotonically increasing uint64 cells. The hot-path handle
//    (`Counter`) is a raw pointer increment: no name lookup, no branch, no
//    indirection beyond the cell itself. With `EO_METRICS=OFF` (CMake) the
//    increment compiles to nothing, mirroring `EO_TRACE`.
//  * gauges — instantaneous int64 values read through a callback at snapshot
//    time (live tasks, online cores). Never on the hot path.
//  * histograms — pointers to externally owned `Histogram`s (wakeup latency);
//    the registry only snapshots their quantiles at export time.
//
// Registration happens once, at kernel construction, and the registration
// order is the export order — snapshots of the same simulation are therefore
// byte-identical. A default-constructed `Counter` points at a thread_local
// sink cell, so modules that were never wired still increment something
// valid (and, because the sink is thread-local, concurrently running kernels
// on different host threads never race on it).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

namespace eo {
class Histogram;
}

namespace eo::obs {

/// Hot-path counter handle: one 64-bit add, or nothing when EO_METRICS=OFF.
class Counter {
 public:
  /// Unwired handle: increments land in a thread-local sink cell.
  Counter();

  void inc(std::uint64_t n = 1) const {
#if defined(EO_METRICS_ENABLED) && EO_METRICS_ENABLED
    *cell_ += n;
#else
    (void)n;
#endif
  }

 private:
  friend class MetricRegistry;
  explicit Counter(std::uint64_t* cell) : cell_(cell) {}
  std::uint64_t* cell_;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Registers a registry-owned counter cell and returns its handle. Names
  /// must be unique across the registry.
  Counter counter(const std::string& name);

  /// Registers an externally owned counter cell (e.g. a SchedStats field).
  /// The cell must outlive the registry.
  void register_counter(const std::string& name, const std::uint64_t* cell);

  /// Registers a gauge; `read` is invoked at snapshot time.
  void register_gauge(const std::string& name,
                      std::function<std::int64_t()> read);

  /// Registers an externally owned histogram, snapshot at export time.
  void register_histogram(const std::string& name, const Histogram* hist);

  std::size_t n_counters() const { return counters_.size(); }
  std::size_t n_gauges() const { return gauges_.size(); }
  std::size_t n_histograms() const { return histograms_.size(); }
  bool has(const std::string& name) const;

  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    std::int64_t value = 0;
  };
  struct HistogramRef {
    std::string name;
    const Histogram* hist = nullptr;
  };

  /// Counter names and current values, in registration order.
  std::vector<CounterValue> snapshot_counters() const;
  /// Values only, in registration order, written into a caller-owned buffer
  /// (resized to n_counters()). The per-frame watchdog path: once the buffer
  /// has warmed to size, no allocation and no string copies.
  void counter_values(std::vector<std::uint64_t>* out) const;
  /// Name of the i-th registered counter, in registration order.
  const std::string& counter_name(std::size_t i) const {
    return counters_[i].name;
  }
  /// Gauge names and current values, in registration order.
  std::vector<GaugeValue> snapshot_gauges() const;
  const std::vector<HistogramRef>& histograms() const { return histograms_; }

 private:
  struct CounterEntry {
    std::string name;
    const std::uint64_t* cell = nullptr;
  };
  struct GaugeEntry {
    std::string name;
    std::function<std::int64_t()> read;
  };

  void check_new_name(const std::string& name) const;

  /// Owned counter cells; deque so registration never invalidates handles.
  std::deque<std::uint64_t> owned_;
  std::vector<CounterEntry> counters_;
  std::vector<GaugeEntry> gauges_;
  std::vector<HistogramRef> histograms_;
};

}  // namespace eo::obs
