// Counter-invariant watchdog.
//
// At every sample the watchdog cross-checks the sampled per-core gauges
// against the kernel's own ground truth, the way `TimelineAnalyzer`
// validates traces post-hoc — but live, while the run is still going:
//
//   * Σ per-core rq depth == tasks runnable-or-running (VB keeps parked
//     tasks on their runqueues, so parked tasks are part of both sides);
//   * live tasks == runnable-or-running + sleeping;
//   * Σ per-core VB-parked == vb_parks − vb_unparks;
//   * per-core sanity: 0 <= vb_parked <= rq_depth, schedulable == rq_depth −
//     vb_parked, bwd_skipped never exceeds the queued entities;
//   * per-task delay accounting conserves time (state times sum to the
//     kernel-ground-truth lifetime; the frame carries the offender count);
//   * monotonic counters (SchedStats and every registered counter) never
//     regress between samples.
//
// A violation means a bookkeeping bug in the kernel, not in the workload; a
// clean run must report zero. The checker is pure (state in, verdict out),
// so tests can feed it deliberately corrupted frames.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "obs/metrics.h"
#include "obs/sampler.h"

namespace eo::obs {

struct Violation {
  SimTime ts = 0;
  std::string invariant;  ///< stable short id, e.g. "rq_depth_sum"
  std::string detail;
};

class InvariantWatchdog {
 public:
  /// `registry` supplies the monotonic-counter set; may be null (the
  /// SchedStats counters inside GlobalSample are still checked).
  explicit InvariantWatchdog(const MetricRegistry* registry = nullptr)
      : registry_(registry) {}

  /// Checks one frame. Returns the number of violations found in it.
  ///
  /// `changed` (optional, n_cores entries) marks cores whose sample differs
  /// from the previous frame. The per-core invariants are pure functions of
  /// one CoreSample, so a core that is unchanged AND was clean last frame is
  /// provably still clean and its checks are skipped — the sampler passes
  /// the mask so steady-state checking costs O(changed cores). Null checks
  /// every core (the behaviour tests rely on).
  int check(SimTime ts, const CoreSample* cores, int n_cores,
            const GlobalSample& g, const std::uint8_t* changed = nullptr);

  std::uint64_t checks() const { return checks_; }
  std::uint64_t violations() const { return violations_; }
  /// Recorded violations, oldest first (recording caps at kMaxRecorded; the
  /// `violations()` total keeps counting).
  const std::vector<Violation>& records() const { return records_; }

  void clear();

  static constexpr std::size_t kMaxRecorded = 64;

 private:
  void record(SimTime ts, const char* invariant, std::string detail);

  const MetricRegistry* registry_;
  std::uint64_t checks_ = 0;
  std::uint64_t violations_ = 0;
  std::vector<Violation> records_;
  bool have_prev_ = false;
  GlobalSample prev_;
  /// Reused counter buffers (swapped each check, so neither reallocates).
  std::vector<std::uint64_t> prev_counters_;
  std::vector<std::uint64_t> cur_counters_;
  bool have_prev_counters_ = false;
  /// Last check's per-core verdict, for the unchanged-core skip.
  std::vector<std::uint8_t> core_violated_;
};

}  // namespace eo::obs
