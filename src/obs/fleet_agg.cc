#include "obs/fleet_agg.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/json.h"
#include "common/logging.h"
#include "metrics/table_printer.h"

namespace eo::obs {

namespace {

std::string host_prefixed(int host, const std::string& invariant) {
  return "host=" + std::to_string(host) + " " + invariant;
}

void render_fleet_json(const FleetMetricsDoc& doc, std::ostream& os) {
  json::Writer w(os);
  w.begin_object();
  w.field("schema", kFleetMetricsSchemaName);
  w.field("schema_version", kFleetMetricsSchemaVersion);
  w.field("n_hosts", doc.n_hosts);
  w.field("n_cores", doc.n_cores);
  w.field("interval_ns", static_cast<std::int64_t>(doc.interval));
  w.field("ticks", doc.ticks);
  w.field("dropped_ticks", doc.dropped_ticks);

  w.key("counters");
  w.begin_array();
  for (const auto& c : doc.counters) {
    w.begin_object();
    w.field("name", c.name);
    w.field("value", c.value);
    w.end_object();
  }
  w.end_array();

  w.key("gauges");
  w.begin_array();
  for (const auto& g : doc.gauges) {
    w.begin_object();
    w.field("name", g.name);
    w.field("min", g.min);
    w.field("mean", g.mean);
    w.field("max", g.max);
    w.end_object();
  }
  w.end_array();

  w.key("histograms");
  w.begin_array();
  for (const auto& h : doc.histograms) {
    w.begin_object();
    w.field("name", h.name);
    w.field("count", h.count);
    w.field("min", h.min);
    w.field("max", h.max);
    w.field("mean", h.mean);
    w.field("p50", h.p50);
    w.field("p95", h.p95);
    w.field("p99", h.p99);
    w.field("p999", h.p999);
    w.end_object();
  }
  w.end_array();

  w.key("hosts");
  w.begin_array();
  for (const auto& h : doc.hosts) {
    w.begin_object();
    w.field("host", h.host);
    w.field("issued", h.issued);
    w.field("completed", h.completed);
    w.field("shed", h.shed);
    w.field("p99_ns", h.p99_ns);
    w.field("queue_p99_ns", h.queue_p99_ns);
    w.field("service_p99_ns", h.service_p99_ns);
    w.field("sched_delay_p99_ns", h.sched_delay_p99_ns);
    w.field("mean_rq_depth", h.mean_rq_depth);
    w.field("vb_park_rate", h.vb_park_rate);
    w.field("bwd_skip_rate", h.bwd_skip_rate);
    w.field("ticks", h.ticks);
    w.field("watchdog_violations", h.watchdog_violations);
    w.end_object();
  }
  w.end_array();

  w.key("watchdog");
  w.begin_object();
  w.field("checks", doc.watchdog_checks);
  w.field("violations", doc.watchdog_violations);
  w.key("records");
  w.begin_array();
  for (const auto& v : doc.violation_records) {
    w.begin_object();
    w.field("ts_ns", static_cast<std::int64_t>(v.ts));
    w.field("invariant", v.invariant);
    w.field("detail", v.detail);
    w.end_object();
  }
  w.end_array();
  w.end_object();  // watchdog
  w.end_object();
  os << "\n";
}

void render_fleet_report(const FleetMetricsDoc& doc, std::ostream& os) {
  os << "eo-metrics-fleet report: hosts=" << doc.n_hosts
     << " cores/host=" << doc.n_cores << " interval=" << to_us(doc.interval)
     << "us ticks=" << doc.ticks << " dropped=" << doc.dropped_ticks << "\n";
  os << "watchdog: checks=" << doc.watchdog_checks
     << " violations=" << doc.watchdog_violations << "\n";
  for (const auto& v : doc.violation_records) {
    os << "  VIOLATION t=" << v.ts << "ns " << v.invariant << ": " << v.detail
       << "\n";
  }

  if (!doc.hosts.empty()) {
    os << "\n";
    metrics::TablePrinter t(
        {"host", "completed", "shed", "p99_us", "queue_us", "svc_us",
         "sched_us", "avg_rq", "vb/s", "skip/s", "wd"},
        os);
    for (const auto& h : doc.hosts) {
      t.add_row({metrics::TablePrinter::integer(h.host),
                 metrics::TablePrinter::integer(
                     static_cast<std::int64_t>(h.completed)),
                 metrics::TablePrinter::integer(
                     static_cast<std::int64_t>(h.shed)),
                 metrics::TablePrinter::num(static_cast<double>(h.p99_ns) /
                                            1000.0),
                 metrics::TablePrinter::num(
                     static_cast<double>(h.queue_p99_ns) / 1000.0),
                 metrics::TablePrinter::num(
                     static_cast<double>(h.service_p99_ns) / 1000.0),
                 metrics::TablePrinter::num(
                     static_cast<double>(h.sched_delay_p99_ns) / 1000.0),
                 metrics::TablePrinter::num(h.mean_rq_depth),
                 metrics::TablePrinter::num(h.vb_park_rate),
                 metrics::TablePrinter::num(h.bwd_skip_rate),
                 metrics::TablePrinter::integer(
                     static_cast<std::int64_t>(h.watchdog_violations))});
    }
    t.print();
  }

  os << "\ncounters (fleet sums):\n";
  for (const auto& c : doc.counters) {
    os << "  " << c.name << " " << c.value << "\n";
  }
  if (!doc.gauges.empty()) {
    os << "gauges (min/mean/max across hosts):\n";
    for (const auto& g : doc.gauges) {
      os << "  " << g.name << " " << g.min << "/" << g.mean << "/" << g.max
         << "\n";
    }
  }
  if (!doc.histograms.empty()) {
    os << "histograms (merged across hosts):\n";
    for (const auto& h : doc.histograms) {
      os << "  " << h.name << " count=" << h.count << " min=" << h.min
         << " max=" << h.max << " mean=" << h.mean << " p50=" << h.p50
         << " p95=" << h.p95 << " p99=" << h.p99 << " p999=" << h.p999
         << "\n";
    }
  }
}

bool fail(std::string* err, const std::string& msg) {
  if (err) *err = msg;
  return false;
}

bool require_number(const json::Value& obj, const char* key,
                    std::string* err) {
  const json::Value* v = obj.get(key);
  if (!v || !v->is_number()) {
    return fail(err, std::string("missing numeric field '") + key + "'");
  }
  return true;
}

}  // namespace

void FleetAggregator::add_host(const FleetHostSample& s) {
  EO_CHECK(s.doc != nullptr) << "fleet host sample without a MetricsDoc";
  EO_CHECK(s.host >= 0) << "fleet host sample without a host index";
  for (const auto& h : hosts_) {
    EO_CHECK(h.entry.host != s.host)
        << "duplicate fleet host index " << s.host;
  }

  HostAccum a;
  a.entry.host = s.host;
  a.entry.issued = s.issued;
  a.entry.completed = s.completed;
  a.entry.shed = s.shed;
  a.entry.p99_ns = s.p99_ns;
  a.entry.queue_p99_ns = s.queue_p99_ns;
  a.entry.service_p99_ns = s.service_p99_ns;
  a.entry.sched_delay_p99_ns = s.sched_delay_p99_ns;
  a.entry.vb_park_rate = s.vb_park_rate;
  a.entry.bwd_skip_rate = s.bwd_skip_rate;
  a.entry.ticks = s.doc->ticks;
  a.entry.watchdog_violations = s.doc->watchdog_violations;

  // Mean rq depth over everything the host retained: frames x cores.
  const std::size_t samples = s.doc->core_series.size();
  if (samples > 0) {
    // Integer sum first — exact, so the single division is order-free.
    std::int64_t rq_sum = 0;
    for (const auto& cs : s.doc->core_series) rq_sum += cs.rq_depth;
    a.entry.mean_rq_depth =
        static_cast<double>(rq_sum) / static_cast<double>(samples);
  }

  a.n_cores = s.doc->n_cores;
  a.interval = s.doc->interval;
  a.dropped_ticks = s.doc->dropped_ticks;
  a.counters = s.doc->counters;
  a.gauges = s.doc->gauges;
  a.watchdog_checks = s.doc->watchdog_checks;
  a.violations = s.doc->violation_records;
  a.histograms.reserve(s.histograms.size());
  for (const auto& [name, hist] : s.histograms) {
    EO_CHECK(hist != nullptr) << "null histogram '" << name << "'";
    a.histograms.emplace_back(name, *hist);  // deep copy; kernel may die
  }
  hosts_.push_back(std::move(a));
}

FleetMetricsDoc FleetAggregator::finish() const {
  EO_CHECK(!hosts_.empty()) << "finish() on an empty FleetAggregator";

  // Canonical order: host index. Everything below — including the
  // floating-point histogram merges — walks hosts in this order, so the
  // result is independent of add_host order.
  std::vector<const HostAccum*> order;
  order.reserve(hosts_.size());
  for (const auto& h : hosts_) order.push_back(&h);
  std::sort(order.begin(), order.end(),
            [](const HostAccum* a, const HostAccum* b) {
              return a->entry.host < b->entry.host;
            });

  FleetMetricsDoc doc;
  doc.n_hosts = static_cast<int>(order.size());
  doc.n_cores = order.front()->n_cores;
  doc.interval = order.front()->interval;

  const std::size_t n_counters = order.front()->counters.size();
  const std::size_t n_gauges = order.front()->gauges.size();
  const std::size_t n_hists = order.front()->histograms.size();
  doc.counters.resize(n_counters);
  std::vector<std::int64_t> gauge_sum(n_gauges, 0);
  doc.gauges.resize(n_gauges);
  std::vector<Histogram> merged(n_hists);

  for (std::size_t i = 0; i < order.size(); ++i) {
    const HostAccum& h = *order[i];
    EO_CHECK_EQ(h.n_cores, doc.n_cores);
    EO_CHECK_EQ(h.interval, doc.interval);
    EO_CHECK_EQ(h.counters.size(), n_counters);
    EO_CHECK_EQ(h.gauges.size(), n_gauges);
    EO_CHECK_EQ(h.histograms.size(), n_hists);

    doc.ticks += h.entry.ticks;
    doc.dropped_ticks += h.dropped_ticks;
    doc.watchdog_checks += h.watchdog_checks;
    doc.watchdog_violations += h.entry.watchdog_violations;

    for (std::size_t c = 0; c < n_counters; ++c) {
      if (i == 0) {
        doc.counters[c].name = h.counters[c].name;
      } else {
        EO_CHECK(doc.counters[c].name == h.counters[c].name)
            << "counter order mismatch across hosts: '"
            << doc.counters[c].name << "' vs '" << h.counters[c].name << "'";
      }
      doc.counters[c].value += h.counters[c].value;
    }
    for (std::size_t g = 0; g < n_gauges; ++g) {
      const std::int64_t v = h.gauges[g].value;
      if (i == 0) {
        doc.gauges[g].name = h.gauges[g].name;
        doc.gauges[g].min = v;
        doc.gauges[g].max = v;
      } else {
        EO_CHECK(doc.gauges[g].name == h.gauges[g].name)
            << "gauge order mismatch across hosts";
        doc.gauges[g].min = std::min(doc.gauges[g].min, v);
        doc.gauges[g].max = std::max(doc.gauges[g].max, v);
      }
      gauge_sum[g] += v;  // int64: exact, order-free
    }
    for (std::size_t m = 0; m < n_hists; ++m) {
      EO_CHECK(order.front()->histograms[m].first == h.histograms[m].first)
          << "histogram order mismatch across hosts";
      merged[m].merge(h.histograms[m].second);
    }

    doc.hosts.push_back(h.entry);
    for (const auto& v : h.violations) {
      Violation tagged = v;
      tagged.invariant = host_prefixed(h.entry.host, v.invariant);
      doc.violation_records.push_back(std::move(tagged));
    }
  }

  for (std::size_t g = 0; g < n_gauges; ++g) {
    doc.gauges[g].mean = static_cast<double>(gauge_sum[g]) /
                         static_cast<double>(order.size());
  }
  doc.histograms.reserve(n_hists);
  for (std::size_t m = 0; m < n_hists; ++m) {
    doc.histograms.push_back(
        summarize_histogram(order.front()->histograms[m].first, merged[m]));
  }
  return doc;
}

MetricsDoc tag_host_violations(const MetricsDoc& doc, int host) {
  MetricsDoc tagged = doc;
  for (auto& v : tagged.violation_records) {
    v.invariant = host_prefixed(host, v.invariant);
  }
  return tagged;
}

std::string render_fleet(const FleetMetricsDoc& doc,
                         const std::string& format) {
  std::ostringstream os;
  if (format == "json") {
    render_fleet_json(doc, os);
  } else if (format == "report") {
    render_fleet_report(doc, os);
  } else {
    EO_CHECK(false) << "unknown fleet metrics format '" << format << "'";
  }
  return os.str();
}

bool export_fleet_to_file(const FleetMetricsDoc& doc, const std::string& path,
                          const std::string& format, std::string* err) {
  if (format != "json" && format != "report") {
    return fail(err, "unknown fleet metrics format '" + format + "'");
  }
  const std::string text = render_fleet(doc, format);
  if (format == "json" && !validate_fleet_metrics_json(text, err)) {
    return false;
  }
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return fail(err, "cannot open " + path + " for writing");
  f << text;
  f.close();
  if (!f) return fail(err, "write to " + path + " failed");
  return true;
}

bool validate_fleet_metrics_json(const std::string& text, std::string* err) {
  json::Value root;
  if (!json::parse(text, &root, err)) return false;
  if (!root.is_object()) return fail(err, "document root is not an object");
  const json::Value* schema = root.get("schema");
  if (!schema || !schema->is_string() ||
      schema->str != kFleetMetricsSchemaName) {
    return fail(err, std::string("'schema' is not \"") +
                         kFleetMetricsSchemaName + "\"");
  }
  const json::Value* version = root.get("schema_version");
  if (!version || !version->is_number() ||
      version->num != kFleetMetricsSchemaVersion) {
    return fail(err, "'schema_version' is not " +
                         std::to_string(kFleetMetricsSchemaVersion));
  }
  for (const char* key :
       {"n_hosts", "n_cores", "interval_ns", "ticks", "dropped_ticks"}) {
    if (!require_number(root, key, err)) return false;
  }
  const int n_hosts = static_cast<int>(root.get("n_hosts")->num);
  if (n_hosts <= 0) return fail(err, "'n_hosts' must be positive");

  const json::Value* counters = root.get("counters");
  if (!counters || !counters->is_array()) {
    return fail(err, "'counters' missing or not an array");
  }
  for (const auto& c : counters->items) {
    if (!c.is_object()) return fail(err, "counter entry not an object");
    const json::Value* name = c.get("name");
    if (!name || !name->is_string() || name->str.empty()) {
      return fail(err, "counter entry missing string 'name'");
    }
    if (!require_number(c, "value", err)) return false;
  }

  const json::Value* gauges = root.get("gauges");
  if (!gauges || !gauges->is_array()) {
    return fail(err, "'gauges' missing or not an array");
  }
  for (const auto& g : gauges->items) {
    if (!g.is_object()) return fail(err, "gauge entry not an object");
    const json::Value* name = g.get("name");
    if (!name || !name->is_string() || name->str.empty()) {
      return fail(err, "gauge entry missing string 'name'");
    }
    for (const char* key : {"min", "mean", "max"}) {
      if (!require_number(g, key, err)) return false;
    }
  }

  const json::Value* hists = root.get("histograms");
  if (!hists || !hists->is_array()) {
    return fail(err, "'histograms' missing or not an array");
  }
  for (const auto& h : hists->items) {
    if (!h.is_object()) return fail(err, "histogram entry not an object");
    const json::Value* name = h.get("name");
    if (!name || !name->is_string()) {
      return fail(err, "histogram entry missing string 'name'");
    }
    for (const char* key :
         {"count", "min", "max", "mean", "p50", "p95", "p99", "p999"}) {
      if (!require_number(h, key, err)) return false;
    }
  }

  const json::Value* hosts = root.get("hosts");
  if (!hosts || !hosts->is_array() ||
      hosts->items.size() != static_cast<std::size_t>(n_hosts)) {
    return fail(err, "'hosts' missing or not n_hosts entries");
  }
  int expect = 0;
  for (const auto& h : hosts->items) {
    if (!h.is_object()) return fail(err, "host entry not an object");
    for (const char* key :
         {"host", "issued", "completed", "shed", "p99_ns", "queue_p99_ns",
          "service_p99_ns", "sched_delay_p99_ns", "mean_rq_depth",
          "vb_park_rate", "bwd_skip_rate", "ticks", "watchdog_violations"}) {
      if (!require_number(h, key, err)) return false;
    }
    if (static_cast<int>(h.get("host")->num) != expect) {
      return fail(err, "host entries not sorted 0..n_hosts-1");
    }
    ++expect;
  }

  const json::Value* wd = root.get("watchdog");
  if (!wd || !wd->is_object()) {
    return fail(err, "'watchdog' missing or not an object");
  }
  if (!require_number(*wd, "checks", err)) return false;
  if (!require_number(*wd, "violations", err)) return false;
  const json::Value* records = wd->get("records");
  if (!records || !records->is_array()) {
    return fail(err, "watchdog missing array 'records'");
  }
  for (const auto& r : records->items) {
    if (!r.is_object()) return fail(err, "watchdog record not an object");
    if (!require_number(r, "ts_ns", err)) return false;
    const json::Value* inv = r.get("invariant");
    if (!inv || !inv->is_string()) {
      return fail(err, "watchdog record missing string 'invariant'");
    }
    // The whole point of the fleet doc's records: attributability.
    if (inv->str.rfind("host=", 0) != 0) {
      return fail(err, "fleet watchdog record invariant lacks host= prefix");
    }
  }
  return true;
}

}  // namespace eo::obs
