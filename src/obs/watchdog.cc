#include "obs/watchdog.h"

#include <cstdio>

namespace eo::obs {

void InvariantWatchdog::record(SimTime ts, const char* invariant,
                               std::string detail) {
  ++violations_;
  if (records_.size() < kMaxRecorded) {
    records_.push_back({ts, invariant, std::move(detail)});
  }
}

int InvariantWatchdog::check(SimTime ts, const CoreSample* cores, int n_cores,
                             const GlobalSample& g,
                             const std::uint8_t* changed) {
  ++checks_;
  const std::uint64_t before = violations_;

  if (core_violated_.size() != static_cast<std::size_t>(n_cores)) {
    // First frame (or core count changed): treat every core as suspect.
    core_violated_.assign(static_cast<std::size_t>(n_cores), 1);
  }

  std::int64_t sum_rq = 0;
  std::int64_t sum_parked = 0;
  for (int i = 0; i < n_cores; ++i) {
    const CoreSample& c = cores[i];
    sum_rq += c.rq_depth;
    sum_parked += c.vb_parked;
    // Unchanged sample + clean last frame => provably still clean (the
    // per-core invariants read nothing but this CoreSample).
    if (changed != nullptr && !changed[i] && !core_violated_[i]) continue;
    const std::uint64_t v0 = violations_;
    // The core id is formatted lazily, only when a violation is recorded —
    // this loop is the sampler's per-frame hot path.
    char id[24];
    std::snprintf(id, sizeof(id), "core %d", i);
    if (c.rq_depth < 0 || c.vb_parked < 0 || c.bwd_skipped < 0) {
      record(ts, "core_nonnegative",
             std::string(id) + ": negative rq_depth/vb_parked/bwd_skipped");
    }
    if (c.vb_parked > c.rq_depth) {
      record(ts, "vb_parked_bound",
             std::string(id) + ": vb_parked " + std::to_string(c.vb_parked) +
                 " > rq_depth " + std::to_string(c.rq_depth));
    }
    if (c.schedulable != c.rq_depth - c.vb_parked) {
      record(ts, "schedulable_split",
             std::string(id) + ": schedulable " +
                 std::to_string(c.schedulable) + " != rq_depth " +
                 std::to_string(c.rq_depth) + " - vb_parked " +
                 std::to_string(c.vb_parked));
    }
    // Skip flags live on queued entities only (never on the running one).
    const std::int32_t queued = c.rq_depth - (c.running ? 1 : 0);
    if (c.bwd_skipped > queued) {
      record(ts, "bwd_skipped_bound",
             std::string(id) + ": bwd_skipped " +
                 std::to_string(c.bwd_skipped) + " > queued " +
                 std::to_string(queued));
    }
    if (!c.online && c.rq_depth != 0) {
      record(ts, "offline_core_empty",
             std::string(id) + ": offline with rq_depth " +
                 std::to_string(c.rq_depth));
    }
    core_violated_[i] = violations_ != v0 ? 1 : 0;
  }

  // VB keeps parked tasks on their runqueues, so every runnable-or-running
  // task is on exactly one queue (or one core) and vice versa.
  if (sum_rq != g.tasks_runnable) {
    record(ts, "rq_depth_sum",
           "sum(rq_depth) " + std::to_string(sum_rq) +
               " != runnable-or-running tasks " +
               std::to_string(g.tasks_runnable));
  }
  if (g.live_tasks != g.tasks_runnable + g.tasks_sleeping) {
    record(ts, "live_task_split",
           "live " + std::to_string(g.live_tasks) + " != runnable " +
               std::to_string(g.tasks_runnable) + " + sleeping " +
               std::to_string(g.tasks_sleeping));
  }
  // Per-task delay accounting must conserve time: for every task, the state
  // times sum exactly to the kernel-ground-truth lifetime, and the current
  // delay state must be one the kernel task state permits. The kernel counts
  // offenders while collecting the frame; any nonzero count is a violation.
  if (g.taskstats_bad != 0) {
    record(ts, "taskstats_conserved",
           std::to_string(g.taskstats_bad) +
               " task(s) fail delay-accounting conservation/consistency");
  }
  if (g.vb_parks < g.vb_unparks) {
    record(ts, "vb_park_pairing",
           "vb_unparks " + std::to_string(g.vb_unparks) + " > vb_parks " +
               std::to_string(g.vb_parks));
  } else if (sum_parked !=
             static_cast<std::int64_t>(g.vb_parks - g.vb_unparks)) {
    record(ts, "vb_parked_sum",
           "sum(vb_parked) " + std::to_string(sum_parked) +
               " != vb_parks - vb_unparks " +
               std::to_string(g.vb_parks - g.vb_unparks));
  }

  if (have_prev_) {
    const struct {
      const char* name;
      std::uint64_t prev, cur;
    } monotonic[] = {
        {"context_switches", prev_.context_switches, g.context_switches},
        {"wakeups", prev_.wakeups, g.wakeups},
        {"migrations", prev_.migrations, g.migrations},
        {"vb_parks", prev_.vb_parks, g.vb_parks},
        {"vb_unparks", prev_.vb_unparks, g.vb_unparks},
    };
    for (const auto& m : monotonic) {
      if (m.cur < m.prev) {
        record(ts, "counter_monotonic",
               std::string(m.name) + " regressed " + std::to_string(m.prev) +
                   " -> " + std::to_string(m.cur));
      }
    }
  }
  if (registry_ != nullptr) {
    // Values only, into a reused buffer: no strings, no allocation once the
    // buffers have warmed to the registry size. Names are looked up only if
    // a regression must be reported.
    registry_->counter_values(&cur_counters_);
    if (have_prev_counters_ && prev_counters_.size() == cur_counters_.size()) {
      for (std::size_t i = 0; i < cur_counters_.size(); ++i) {
        if (cur_counters_[i] < prev_counters_[i]) {
          record(ts, "counter_monotonic",
                 registry_->counter_name(i) + " regressed " +
                     std::to_string(prev_counters_[i]) + " -> " +
                     std::to_string(cur_counters_[i]));
        }
      }
    } else if (have_prev_counters_) {
      record(ts, "counter_set_stable",
             "registered counter count changed mid-run");
    }
    prev_counters_.swap(cur_counters_);
    have_prev_counters_ = true;
  }

  prev_ = g;
  have_prev_ = true;
  return static_cast<int>(violations_ - before);
}

void InvariantWatchdog::clear() {
  checks_ = 0;
  violations_ = 0;
  records_.clear();
  have_prev_ = false;
  prev_counters_.clear();
  cur_counters_.clear();
  have_prev_counters_ = false;
  core_violated_.clear();
}

}  // namespace eo::obs
