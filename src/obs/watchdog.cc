#include "obs/watchdog.h"

#include <sstream>

namespace eo::obs {

void InvariantWatchdog::record(SimTime ts, const char* invariant,
                               std::string detail) {
  ++violations_;
  if (records_.size() < kMaxRecorded) {
    records_.push_back({ts, invariant, std::move(detail)});
  }
}

int InvariantWatchdog::check(SimTime ts, const CoreSample* cores, int n_cores,
                             const GlobalSample& g) {
  ++checks_;
  const std::uint64_t before = violations_;

  std::int64_t sum_rq = 0;
  std::int64_t sum_parked = 0;
  for (int i = 0; i < n_cores; ++i) {
    const CoreSample& c = cores[i];
    sum_rq += c.rq_depth;
    sum_parked += c.vb_parked;
    std::ostringstream id;
    id << "core " << i;
    if (c.rq_depth < 0 || c.vb_parked < 0 || c.bwd_skipped < 0) {
      record(ts, "core_nonnegative",
             id.str() + ": negative rq_depth/vb_parked/bwd_skipped");
    }
    if (c.vb_parked > c.rq_depth) {
      record(ts, "vb_parked_bound",
             id.str() + ": vb_parked " + std::to_string(c.vb_parked) +
                 " > rq_depth " + std::to_string(c.rq_depth));
    }
    if (c.schedulable != c.rq_depth - c.vb_parked) {
      record(ts, "schedulable_split",
             id.str() + ": schedulable " + std::to_string(c.schedulable) +
                 " != rq_depth " + std::to_string(c.rq_depth) +
                 " - vb_parked " + std::to_string(c.vb_parked));
    }
    // Skip flags live on queued entities only (never on the running one).
    const std::int32_t queued = c.rq_depth - (c.running ? 1 : 0);
    if (c.bwd_skipped > queued) {
      record(ts, "bwd_skipped_bound",
             id.str() + ": bwd_skipped " + std::to_string(c.bwd_skipped) +
                 " > queued " + std::to_string(queued));
    }
    if (!c.online && c.rq_depth != 0) {
      record(ts, "offline_core_empty",
             id.str() + ": offline with rq_depth " +
                 std::to_string(c.rq_depth));
    }
  }

  // VB keeps parked tasks on their runqueues, so every runnable-or-running
  // task is on exactly one queue (or one core) and vice versa.
  if (sum_rq != g.tasks_runnable) {
    record(ts, "rq_depth_sum",
           "sum(rq_depth) " + std::to_string(sum_rq) +
               " != runnable-or-running tasks " +
               std::to_string(g.tasks_runnable));
  }
  if (g.live_tasks != g.tasks_runnable + g.tasks_sleeping) {
    record(ts, "live_task_split",
           "live " + std::to_string(g.live_tasks) + " != runnable " +
               std::to_string(g.tasks_runnable) + " + sleeping " +
               std::to_string(g.tasks_sleeping));
  }
  if (g.vb_parks < g.vb_unparks) {
    record(ts, "vb_park_pairing",
           "vb_unparks " + std::to_string(g.vb_unparks) + " > vb_parks " +
               std::to_string(g.vb_parks));
  } else if (sum_parked !=
             static_cast<std::int64_t>(g.vb_parks - g.vb_unparks)) {
    record(ts, "vb_parked_sum",
           "sum(vb_parked) " + std::to_string(sum_parked) +
               " != vb_parks - vb_unparks " +
               std::to_string(g.vb_parks - g.vb_unparks));
  }

  if (have_prev_) {
    const struct {
      const char* name;
      std::uint64_t prev, cur;
    } monotonic[] = {
        {"context_switches", prev_.context_switches, g.context_switches},
        {"wakeups", prev_.wakeups, g.wakeups},
        {"migrations", prev_.migrations, g.migrations},
        {"vb_parks", prev_.vb_parks, g.vb_parks},
        {"vb_unparks", prev_.vb_unparks, g.vb_unparks},
    };
    for (const auto& m : monotonic) {
      if (m.cur < m.prev) {
        record(ts, "counter_monotonic",
               std::string(m.name) + " regressed " + std::to_string(m.prev) +
                   " -> " + std::to_string(m.cur));
      }
    }
  }
  if (registry_ != nullptr) {
    const auto counters = registry_->snapshot_counters();
    if (prev_counters_.size() == counters.size()) {
      for (std::size_t i = 0; i < counters.size(); ++i) {
        if (counters[i].value < prev_counters_[i]) {
          record(ts, "counter_monotonic",
                 counters[i].name + " regressed " +
                     std::to_string(prev_counters_[i]) + " -> " +
                     std::to_string(counters[i].value));
        }
      }
    } else if (!prev_counters_.empty()) {
      record(ts, "counter_set_stable",
             "registered counter count changed mid-run");
    }
    prev_counters_.clear();
    for (const auto& c : counters) prev_counters_.push_back(c.value);
  }

  prev_ = g;
  have_prev_ = true;
  return static_cast<int>(violations_ - before);
}

void InvariantWatchdog::clear() {
  checks_ = 0;
  violations_ = 0;
  records_.clear();
  have_prev_ = false;
  prev_counters_.clear();
}

}  // namespace eo::obs
