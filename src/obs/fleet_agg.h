// Fleet-scale metrics aggregation.
//
// A `ConnectionFleet` run produces one per-host `MetricsDoc` (plus the raw
// workload histograms) per simulated host. Before this layer existed only a
// single representative host's telemetry survived the run; `FleetAggregator`
// instead retains every host's snapshot and merges them into one versioned
// `eo-metrics-fleet` document:
//
//  * counters        — summed across hosts (uint64, exact);
//  * gauges          — min / mean / max across hosts (mean from an exact
//                      int64 sum, divided once);
//  * histograms      — the raw per-host `Histogram`s merged bucket-wise, so
//                      fleet quantiles come from the true merged
//                      distribution, not from averaged per-host quantiles;
//  * watchdog        — checks/violations summed; each recorded violation's
//                      invariant id gains a `host=<h> ` prefix so a failure
//                      in a 32-host parallel run is attributable without
//                      re-running sequentially;
//  * hosts           — a per-host breakdown table (completed/shed, latency
//                      and attribution p99s, mean rq depth, VB-park and
//                      BWD-skip rates) for imbalance analysis.
//
// Determinism contract: `finish()` sorts hosts by index and performs every
// floating-point reduction in that canonical order, so the document is a
// pure function of the per-host inputs — independent of `add_host` call
// order, and therefore byte-identical between `--jobs=1` and `--jobs=N`
// runs (the same property `serve_parallel_golden` pins for the bench
// results).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/units.h"
#include "obs/export.h"

namespace eo::obs {

inline constexpr const char* kFleetMetricsSchemaName = "eo-metrics-fleet";
inline constexpr int kFleetMetricsSchemaVersion = 1;

/// One gauge reduced across hosts.
struct FleetGaugeValue {
  std::string name;
  std::int64_t min = 0;
  std::int64_t max = 0;
  double mean = 0.0;
};

/// One row of the per-host breakdown table.
struct FleetHostEntry {
  int host = -1;
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::int64_t p99_ns = 0;  ///< end-to-end request latency
  // Latency attribution (see ServeHost): where the p99 request's time went.
  std::int64_t queue_p99_ns = 0;
  std::int64_t service_p99_ns = 0;
  std::int64_t sched_delay_p99_ns = 0;
  /// Mean runqueue depth over the host's retained samples, all cores.
  double mean_rq_depth = 0.0;
  double vb_park_rate = 0.0;   ///< VB parks per simulated second
  double bwd_skip_rate = 0.0;  ///< BWD deschedules per simulated second
  std::uint64_t ticks = 0;
  std::uint64_t watchdog_violations = 0;
};

/// The merged fleet document. Like `MetricsDoc`, pure simulation state.
struct FleetMetricsDoc {
  int n_hosts = 0;
  int n_cores = 0;  ///< per host (hosts are homogeneous)
  SimDuration interval = 0;
  std::uint64_t ticks = 0;          ///< summed across hosts
  std::uint64_t dropped_ticks = 0;  ///< summed across hosts
  std::vector<MetricRegistry::CounterValue> counters;
  std::vector<FleetGaugeValue> gauges;
  std::vector<HistogramSummary> histograms;
  std::vector<FleetHostEntry> hosts;  ///< sorted by host index
  std::uint64_t watchdog_checks = 0;
  std::uint64_t watchdog_violations = 0;
  /// Host-tagged: each invariant id is prefixed with `host=<h> `.
  std::vector<Violation> violation_records;
};

/// One host's contribution, handed to `add_host` while the host kernel is
/// still alive. Only `doc` and the histogram pointers must stay valid for
/// the duration of the call — everything is copied.
struct FleetHostSample {
  int host = -1;
  /// The host's full metrics snapshot (required).
  const MetricsDoc* doc = nullptr;
  /// Raw histograms to merge fleet-wide (registry + workload histograms).
  /// Raw, not summaries: quantiles do not compose, bucket counts do.
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  // Workload scalars for the breakdown table, supplied by the driver.
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::int64_t p99_ns = 0;
  std::int64_t queue_p99_ns = 0;
  std::int64_t service_p99_ns = 0;
  std::int64_t sched_delay_p99_ns = 0;
  double vb_park_rate = 0.0;
  double bwd_skip_rate = 0.0;
};

/// Accumulates per-host samples and merges them canonically. Hosts may be
/// added in any order; `finish()` always produces the same document for the
/// same set of hosts. Not thread-safe — callers feed it after the fan-out
/// barrier, in whatever order their buffers sit.
class FleetAggregator {
 public:
  /// Copies everything needed from `s` (the doc and histograms need not
  /// outlive the call). Host indices must be unique; all hosts must share
  /// n_cores / interval / counter+gauge registration order (they come from
  /// identically configured kernels).
  void add_host(const FleetHostSample& s);

  std::size_t n_hosts() const { return hosts_.size(); }

  /// Sorts by host index and performs the canonical merge. May be called
  /// repeatedly (it does not consume the accumulated state).
  FleetMetricsDoc finish() const;

 private:
  struct HostAccum {
    FleetHostEntry entry;
    int n_cores = 0;
    SimDuration interval = 0;
    std::uint64_t dropped_ticks = 0;
    std::vector<MetricRegistry::CounterValue> counters;
    std::vector<MetricRegistry::GaugeValue> gauges;
    std::vector<std::pair<std::string, Histogram>> histograms;
    std::uint64_t watchdog_checks = 0;
    std::vector<Violation> violations;
  };
  std::vector<HostAccum> hosts_;
};

/// Prefixes every recorded violation's invariant id with `host=<h> ` on a
/// copy of `doc`, for single-doc exports that sit alongside a fleet run.
MetricsDoc tag_host_violations(const MetricsDoc& doc, int host);

/// Renders per format ("json" or "report").
std::string render_fleet(const FleetMetricsDoc& doc, const std::string& format);

/// Renders and writes; JSON output is validated before the write. Returns
/// false with a reason in `err` on failure.
bool export_fleet_to_file(const FleetMetricsDoc& doc, const std::string& path,
                          const std::string& format, std::string* err);

/// Structural validation of an `eo-metrics-fleet` JSON document.
bool validate_fleet_metrics_json(const std::string& text, std::string* err);

}  // namespace eo::obs
