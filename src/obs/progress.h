// Live progress feed.
//
// Long fleet runs (32 hosts x millions of simulated requests per sweep cell)
// used to be opaque until the final tables printed. `ProgressSink` is the
// push interface the drivers — `traffic::ConnectionFleet` (host started /
// window fraction / host finished, with running completed/shed counters and
// the watchdog verdict) and `exp::ExperimentRunner` (cell started/finished)
// — emit into while the run is still going. Two emitters ship:
//
//  * `LineProgressSink`  — human-oriented stderr lines. Cell-finish lines
//    keep the runner's historical `[n/m] id: ok exec=..ms` format; host
//    events print one terse line per finished host. Start/fraction events
//    are dropped to keep the feed readable.
//  * `JsonlProgressSink` — one JSON object per line for machine consumption
//    (dashboards, sweep babysitters): every event kind is emitted, flushed
//    per line so a tail-reader sees it live.
//
// Emitters are thread-safe (hosts and cells run concurrently on the host
// pool) and purely observational: they only read counters that the
// simulation already maintains, so attaching a sink never perturbs results —
// the `eo-bench-result` / `eo-metrics-fleet` documents are byte-identical
// with the feed on or off.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

namespace eo::obs {

/// One progress event. Fields are kind-dependent; unused ones keep their
/// defaults (the JSONL emitter only renders the fields its kind defines).
struct ProgressEvent {
  enum class Kind {
    kHostStart,     ///< host, n_hosts
    kHostProgress,  ///< host, n_hosts, fraction, completed, shed
    kHostFinish,    ///< host, n_hosts, completed, shed, watchdog_violations
    kCellStart,     ///< label, total
    kCellFinish,    ///< label, done, total, ok/not_applicable, exec_ms,
                    ///< attempts
  };
  Kind kind = Kind::kHostStart;

  // Fleet-host events.
  int host = -1;
  int n_hosts = 0;
  /// Fraction of the measurement window simulated so far, in [0, 1].
  double fraction = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t watchdog_violations = 0;

  // Sweep-cell events.
  std::string label;  ///< cell id
  bool ok = true;
  bool not_applicable = false;
  double exec_ms = 0.0;
  int attempts = 0;
  std::size_t done = 0;
  std::size_t total = 0;
};

/// The feed interface. `emit` must be callable from any host thread.
class ProgressSink {
 public:
  virtual ~ProgressSink() = default;
  virtual void emit(const ProgressEvent& ev) = 0;
};

/// Human-oriented line emitter (see file comment for the format).
class LineProgressSink : public ProgressSink {
 public:
  explicit LineProgressSink(std::FILE* out = stderr) : out_(out) {}
  void emit(const ProgressEvent& ev) override;

 private:
  std::FILE* out_;
  std::mutex mu_;
};

/// Machine-oriented JSONL emitter: one event per line, flushed per line.
class JsonlProgressSink : public ProgressSink {
 public:
  explicit JsonlProgressSink(std::FILE* out = stderr) : out_(out) {}
  void emit(const ProgressEvent& ev) override;

 private:
  std::FILE* out_;
  std::mutex mu_;
};

/// Builds the sink for a `--progress=<mode>` value: "line" and "jsonl" emit
/// to `out`; "none" returns null (no feed). Any other mode is a programming
/// error (the CLI validates before calling).
std::unique_ptr<ProgressSink> make_progress_sink(const std::string& mode,
                                                 std::FILE* out = stderr);

}  // namespace eo::obs
