// Metrics exporters.
//
// A finished run snapshots into a `MetricsDoc` — registry values, the
// retained time series, and the watchdog verdict — which renders to:
//
//  * "json"   — the `eo-metrics` document (schema below), validated by
//               `validate_metrics_json` / the `json_check` tool. Contains
//               only simulation-derived values, so same-seed runs render
//               byte-identical documents.
//  * "csv"    — one row per (sample, core) plus one global row per sample,
//               for plotting scripts.
//  * "report" — a schedstat/sim-top-style text summary (per-core averages,
//               counters, histogram quantiles).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/taskstats.h"
#include "obs/watchdog.h"

namespace eo::obs {

inline constexpr const char* kMetricsSchemaName = "eo-metrics";
inline constexpr int kMetricsSchemaVersion = 1;

/// Snapshot of one histogram's shape at export time.
struct HistogramSummary {
  std::string name;
  std::uint64_t count = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  double mean = 0.0;
  std::int64_t p50 = 0;
  std::int64_t p95 = 0;
  std::int64_t p99 = 0;
  std::int64_t p999 = 0;
};

/// Everything a run's telemetry exports. Pure simulation state: no host
/// timestamps, no machine identity.
struct MetricsDoc {
  int n_cores = 0;
  SimDuration interval = 0;
  std::uint64_t ticks = 0;          ///< samples taken over the whole run
  std::uint64_t dropped_ticks = 0;  ///< frames overwritten in the ring
  std::vector<MetricRegistry::CounterValue> counters;
  std::vector<MetricRegistry::GaugeValue> gauges;
  std::vector<HistogramSummary> histograms;
  /// Retained frames, oldest first; `core_series` is frame-major with
  /// exactly `n_cores` entries per frame.
  std::vector<TickSample> tick_series;
  std::vector<CoreSample> core_series;
  std::uint64_t watchdog_checks = 0;
  std::uint64_t watchdog_violations = 0;
  std::vector<Violation> violation_records;
  /// Optional per-task delay accounting (`eo-taskstats` section); null when
  /// the run did not request taskstats export. Shared so fleet snapshots can
  /// reference a host's doc without copying every task record.
  std::shared_ptr<TaskstatsDoc> taskstats;
};

/// Builds the export-time summary of `hist` under `name` — the one
/// quantile-snapshot routine shared by the kernel snapshot and the fleet
/// aggregator, so every document derives summaries identically.
HistogramSummary summarize_histogram(const std::string& name,
                                     const Histogram& hist);

/// Renders per format ("json", "csv", or "report").
std::string render(const MetricsDoc& doc, const std::string& format);

/// Renders and writes; JSON output is validated before the write. Returns
/// false with a reason in `err` on failure.
bool export_to_file(const MetricsDoc& doc, const std::string& path,
                    const std::string& format, std::string* err);

/// Structural validation of an `eo-metrics` JSON document.
bool validate_metrics_json(const std::string& text, std::string* err);

}  // namespace eo::obs
