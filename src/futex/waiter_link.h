// Intrusive futex waiter links.
//
// A blocked task sits on exactly one wait queue at a time (futex bucket,
// epoll instance, or an in-flight wake chain), so each Task embeds a single
// WaiterLink and queue membership is a pointer splice: no node allocation,
// no deque block churn, O(1) enqueue/dequeue/erase. This is the classic
// kernel `futex_q`/`wait_queue_entry` layout and what drives the futex
// round trip and context-switch micros to their ns/item floor.
//
// The link carries the owning task pointer and the vb flag explicitly
// (rather than recovering the Task via offsetof) so a WaiterList can be
// walked without knowing the embedding offset, and so the vb decision made
// at wait time travels with the waiter into the wake chain.
#pragma once

#include <cstddef>

#include "common/logging.h"

namespace eo::kern {
struct Task;
}  // namespace eo::kern

namespace eo::futex {

/// One waiter: embedded in Task, spliced into at most one WaiterList.
/// Detached links point at themselves (never null), so detach is
/// unconditional and double-detach is harmless.
struct WaiterLink {
  WaiterLink* next = nullptr;
  WaiterLink* prev = nullptr;
  kern::Task* task = nullptr;
  /// Waiting via virtual blocking (still on its runqueue) rather than asleep.
  bool vb = false;
};

/// FIFO list of WaiterLinks around a sentinel node. Not copyable or movable:
/// the sentinel's self-pointers pin the list's address (buckets live in a
/// never-reallocated vector; wake chains in a deque).
class WaiterList {
 public:
  WaiterList() { reset(); }
  WaiterList(const WaiterList&) = delete;
  WaiterList& operator=(const WaiterList&) = delete;

  bool empty() const { return head_.next == &head_; }
  std::size_t size() const { return size_; }

  /// Enqueues at the tail. The link must be detached.
  void push_back(WaiterLink* n) {
    EO_CHECK(detached(n));
    n->prev = head_.prev;
    n->next = &head_;
    head_.prev->next = n;
    head_.prev = n;
    ++size_;
  }

  WaiterLink* front() { return head_.next; }
  const WaiterLink* front() const { return head_.next; }

  /// Detaches and returns the head waiter; the list must be non-empty.
  WaiterLink* pop_front() {
    EO_CHECK(!empty());
    WaiterLink* n = head_.next;
    erase(n);
    return n;
  }

  /// Unlinks `n` from this list (it must be on it), leaving it detached.
  void erase(WaiterLink* n) {
    EO_CHECK(!detached(n));
    n->prev->next = n->next;
    n->next->prev = n->prev;
    n->next = n;
    n->prev = n;
    --size_;
  }

  /// True when the link is on no list. A default-constructed link (null
  /// pointers) counts as detached.
  static bool detached(const WaiterLink* n) {
    return n->next == n || n->next == nullptr;
  }

  /// Iteration bounds: `for (auto* l = list.begin_link(); l != list.end_link();
  /// l = l->next)`. The sentinel carries no task.
  WaiterLink* begin_link() { return head_.next; }
  const WaiterLink* begin_link() const { return head_.next; }
  const WaiterLink* end_link() const { return &head_; }

 private:
  void reset() {
    head_.next = &head_;
    head_.prev = &head_;
    size_ = 0;
  }

  WaiterLink head_;  ///< sentinel; task/vb unused
  std::size_t size_ = 0;
};

}  // namespace eo::futex
