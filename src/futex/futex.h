// Futex subsystem data structures.
//
// Mirrors the kernel futex design in Figure 5 of the paper: user-level
// words hash to buckets, each bucket has a lock and a FIFO queue of waiters.
// Under vanilla blocking a waiter is removed from the CPU runqueue and
// sleeps on the bucket; under virtual blocking it stays on the runqueue,
// flagged, and the bucket queue only preserves sleep/wakeup *order*.
//
// The wait/wake orchestration (scheduling, costs, wake chains) lives in the
// Kernel; this module owns the table so it can be unit-tested standalone.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "kern/klock.h"

namespace eo::kern {
struct Task;
class SimWord;
}  // namespace eo::kern

namespace eo::futex {

struct Waiter {
  kern::Task* task = nullptr;
  /// Waiting via virtual blocking (still on its runqueue) rather than asleep.
  bool vb = false;
};

struct Bucket {
  kern::KLock lock;
  std::deque<Waiter> waiters;
};

class FutexTable {
 public:
  explicit FutexTable(std::size_t n_buckets = 256);

  /// The bucket a word hashes to (stable for the word's lifetime).
  Bucket& bucket_for(const kern::SimWord* word);

  /// Removes a specific task from a bucket (used by requeue-free paths and
  /// tests). Returns true if found.
  bool remove(Bucket& b, const kern::Task* task);

  std::size_t n_buckets() const { return buckets_.size(); }

  /// Total waiters across all buckets (diagnostics).
  std::size_t total_waiters() const;

 private:
  std::vector<Bucket> buckets_;
};

}  // namespace eo::futex
