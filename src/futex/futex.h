// Futex subsystem data structures.
//
// Mirrors the kernel futex design in Figure 5 of the paper: user-level
// words hash to buckets, each bucket has a lock and a FIFO queue of waiters.
// Under vanilla blocking a waiter is removed from the CPU runqueue and
// sleeps on the bucket; under virtual blocking it stays on the runqueue,
// flagged, and the bucket queue only preserves sleep/wakeup *order*.
//
// The wait/wake orchestration (scheduling, costs, wake chains) lives in the
// Kernel; this module owns the table so it can be unit-tested standalone.
#pragma once

#include <cstdint>
#include <vector>

#include "futex/waiter_link.h"
#include "kern/klock.h"
#include "obs/metrics.h"
#include "trace/trace.h"

namespace eo::kern {
struct Task;
class SimWord;
}  // namespace eo::kern

namespace eo::futex {

struct Bucket {
  kern::KLock lock;
  /// Intrusive FIFO of WaiterLinks embedded in the waiting tasks: enqueue,
  /// dequeue, and wake-time splice are pointer operations with no heap
  /// traffic (each bucket used to own a std::deque).
  WaiterList waiters;
};

class FutexTable {
 public:
  explicit FutexTable(std::size_t n_buckets = 256);

  /// Wires the event tracer (may be null).
  void set_tracer(trace::Tracer* t) { tracer_ = t; }

  /// Wires the metric counters: bucket-lock acquisitions and the contended
  /// subset (nonzero queueing delay — the paper's wakeup-path serialization).
  void set_metrics(obs::Counter locks, obs::Counter contended) {
    m_locks_ = locks;
    m_contended_ = contended;
  }

  /// The bucket a word hashes to (stable for the word's lifetime).
  Bucket& bucket_for(const kern::SimWord* word);

  /// Acquires the bucket lock at `now` for `hold`, tracing the queueing
  /// delay (the paper's wakeup-path serialization cost) as a
  /// kFutexBucketLock record attributed to `core`/`tid`. Returns the wait
  /// time; the caller's total cost is wait + hold. Inline: this sits on the
  /// futex fast path and must cost one predicted branch when tracing is off.
  SimDuration lock_bucket(Bucket& b, SimTime now, SimDuration hold, int core,
                          std::int32_t tid) {
    const SimDuration wait = b.lock.acquire(now, hold);
    m_locks_.inc();
    if (wait > 0) m_contended_.inc();
    EO_TRACE_EVENT(tracer_, core, trace::EventKind::kFutexBucketLock, tid,
                   static_cast<std::uint64_t>(wait),
                   static_cast<std::uint64_t>(hold));
    return wait;
  }

  /// Removes a specific task from a bucket (used by requeue-free paths and
  /// tests). Returns true if found.
  bool remove(Bucket& b, const kern::Task* task);

  std::size_t n_buckets() const { return buckets_.size(); }

  /// Total waiters across all buckets (diagnostics).
  std::size_t total_waiters() const;

 private:
  std::vector<Bucket> buckets_;
  trace::Tracer* tracer_ = nullptr;
  obs::Counter m_locks_;
  obs::Counter m_contended_;
};

}  // namespace eo::futex
