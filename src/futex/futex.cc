#include "futex/futex.h"

#include "common/logging.h"
#include "kern/action.h"

namespace eo::futex {

FutexTable::FutexTable(std::size_t n_buckets) : buckets_(n_buckets) {
  EO_CHECK_GT(n_buckets, 0u);
}

Bucket& FutexTable::bucket_for(const kern::SimWord* word) {
  // Hash the stable word id (the kernel hashes the futex's physical
  // address; a heap pointer would make runs depend on allocator layout).
  std::uint64_t h = word->id();
  // Full splitmix64 finalizer: sequential ids must spread across buckets.
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  h ^= h >> 31;
  return buckets_[h % buckets_.size()];
}

bool FutexTable::remove(Bucket& b, const kern::Task* task) {
  for (WaiterLink* l = b.waiters.begin_link(); l != b.waiters.end_link();
       l = l->next) {
    if (l->task == task) {
      b.waiters.erase(l);
      return true;
    }
  }
  return false;
}

std::size_t FutexTable::total_waiters() const {
  std::size_t n = 0;
  for (const auto& b : buckets_) n += b.waiters.size();
  return n;
}

}  // namespace eo::futex
