#include "workloads/suite.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "common/rng.h"
#include "runtime/barrier.h"
#include "runtime/condvar.h"
#include "runtime/mutex.h"
#include "runtime/sim_thread.h"
#include "runtime/spin.h"

namespace eo::workloads {

using runtime::Env;
using runtime::SimThread;

const char* to_string(SyncKind k) {
  switch (k) {
    case SyncKind::kNone:
      return "none";
    case SyncKind::kMutex:
      return "mutex";
    case SyncKind::kBarrier:
      return "barrier";
    case SyncKind::kCondBroadcast:
      return "cond";
    case SyncKind::kBlockingWavefront:
      return "blocking-pipeline";
    case SyncKind::kSpinBarrier:
      return "spin-barrier";
    case SyncKind::kSpinWavefront:
      return "spin-pipeline";
  }
  return "?";
}

namespace {

using hw::AccessPattern;

BenchmarkSpec spec(std::string name, std::string origin, SyncKind sync,
                   SimDuration interval, int rounds, double cv,
                   std::uint64_t ws, AccessPattern pat, double mi) {
  BenchmarkSpec s;
  s.name = std::move(name);
  s.origin = std::move(origin);
  s.sync = sync;
  s.interval = interval;
  s.rounds = rounds;
  s.jitter_cv = cv;
  s.working_set = ws;
  s.pattern = pat;
  s.mem_intensity = mi;
  return s;
}

std::vector<BenchmarkSpec> build_suite() {
  std::vector<BenchmarkSpec> v;
  const auto SEQ = AccessPattern::kSequentialRead;
  const auto SRMW = AccessPattern::kSequentialRMW;
  const auto RND = AccessPattern::kRandomRead;
  const auto RRMW = AccessPattern::kRandomRMW;

  // ---- Group 1: unaffected by oversubscription (long sync intervals, light
  // memory pressure).
  v.push_back(spec("blackscholes", "parsec", SyncKind::kBarrier, 2_ms, 100,
                   0.05, 4_MiB, SEQ, 0.10));
  v.push_back(spec("canneal", "parsec", SyncKind::kMutex, 900_us, 250, 0.10,
                   4_MiB, RND, 0.15));
  v.push_back(spec("ferret", "parsec", SyncKind::kBlockingWavefront, 1200_us,
                   200, 0.10, 8_MiB, SEQ, 0.15));
  v.push_back(spec("swaptions", "parsec", SyncKind::kNone, 5_ms, 60, 0.05,
                   2_MiB, SEQ, 0.05));
  v.push_back(spec("vips", "parsec", SyncKind::kBarrier, 1500_us, 150, 0.10,
                   8_MiB, SEQ, 0.15));
  v.push_back(spec("barnes", "splash2", SyncKind::kBarrier, 1_ms, 200, 0.15,
                   16_MiB, SEQ, 0.20));
  v.push_back(spec("fft", "splash2", SyncKind::kBarrier, 1800_us, 80, 0.10,
                   32_MiB, SEQ, 0.15));
  v.push_back(spec("fmm", "splash2", SyncKind::kBarrier, 1200_us, 150, 0.20,
                   16_MiB, SEQ, 0.15));
  {
    auto s = spec("radiosity", "splash2", SyncKind::kMutex, 800_us, 250, 0.15,
                  8_MiB, RND, 0.15);
    s.cs_work = 1500;
    s.excluded_from_fig9 = true;  // short, unstable execution time
    v.push_back(s);
  }
  v.push_back(spec("raytrace", "splash2", SyncKind::kMutex, 1_ms, 200, 0.15,
                   16_MiB, RND, 0.15));

  // ---- Group 2: benefit from oversubscription (TLB-constructive random
  // working sets and/or high per-round imbalance that time-sharing smooths).
  {
    auto s = spec("ep", "npb", SyncKind::kNone, 3_ms, 100, 0.05, 96_MiB, RRMW,
                  0.45);
    s.tight_loops_per_sec = 8.0;  // Table 3: 99.92% specificity
    v.push_back(s);
  }
  v.push_back(spec("bodytrack", "parsec", SyncKind::kBarrier, 600_us, 300,
                   0.50, 64_MiB, RND, 0.30));
  v.push_back(spec("facesim", "parsec", SyncKind::kBarrier, 160_us, 600, 0.50,
                   48_MiB, RND, 0.25));
  v.push_back(spec("x264", "parsec", SyncKind::kBlockingWavefront, 700_us,
                   250, 0.40, 64_MiB, RND, 0.30));
  v.push_back(spec("water", "splash2", SyncKind::kBarrier, 900_us, 200, 0.35,
                   80_MiB, RRMW, 0.30));

  // ---- Group 3: suffer under oversubscription.
  {
    // dedup: fine-grained blocking pipeline (Figure 1's 2.78x bar).
    auto s = spec("dedup", "parsec", SyncKind::kBlockingWavefront, 15_us,
                  2500, 0.10, 16_MiB, SEQ, 0.15);
    s.excluded_from_fig9 = true;  // cannot scale past 8 threads
    v.push_back(s);
  }
  {
    // fluidanimate: per-cell mutexes whose count scales with threads.
    auto s = spec("fluidanimate", "parsec", SyncKind::kMutex, 70_us, 1200,
                  0.15, 32_MiB, SEQ, 0.20);
    s.cs_work = 800;
    s.locks_per_round = 1;
    s.locks_scale_with_threads = true;
    v.push_back(s);
  }
  v.push_back(spec("freqmine", "parsec", SyncKind::kBarrier, 400_us, 300, 0.02,
                   40_MiB, RND, 0.10));
  v.push_back(spec("streamcluster", "parsec", SyncKind::kCondBroadcast, 120_us,
                   800, 0.20, 16_MiB, SEQ, 0.20));
  {
    // cholesky: custom spin synchronization (Figure 1's 9.95x bar).
    auto s = spec("cholesky", "splash2", SyncKind::kSpinBarrier, 80_us, 500,
                  0.25, 16_MiB, RND, 0.20);
    s.excluded_from_fig9 = true;  // short, unstable execution time
    v.push_back(s);
  }
  v.push_back(spec("lu_cb", "splash2", SyncKind::kBarrier, 350_us, 300, 0.02,
                   32_MiB, SEQ, 0.20));
  v.push_back(spec("ocean", "splash2", SyncKind::kBarrier, 250_us, 400, 0.02,
                   64_MiB, RND, 0.10));
  v.push_back(spec("radix", "splash2", SyncKind::kBarrier, 500_us, 250, 0.02,
                   48_MiB, RRMW, 0.08));
  {
    auto s = spec("volrend", "splash2", SyncKind::kSpinBarrier, 200_us, 400,
                  0.30, 16_MiB, RND, 0.20);
    v.push_back(s);
  }
  {
    auto s = spec("is", "npb", SyncKind::kBarrier, 600_us, 200, 0.02, 64_MiB,
                  RRMW, 0.08);
    s.tight_loops_per_sec = 62.0;  // Table 3: is has the highest FP rate
    v.push_back(s);
  }
  {
    auto s = spec("cg", "npb", SyncKind::kBarrier, 180_us, 600, 0.02, 48_MiB,
                  RND, 0.12);
    s.tight_loops_per_sec = 56.0;
    v.push_back(s);
  }
  {
    auto s = spec("mg", "npb", SyncKind::kBarrier, 300_us, 400, 0.02, 56_MiB,
                  RND, 0.10);
    s.tight_loops_per_sec = 27.0;
    v.push_back(s);
  }
  {
    auto s = spec("ft", "npb", SyncKind::kBarrier, 800_us, 200, 0.02, 64_MiB,
                  RND, 0.08);
    s.tight_loops_per_sec = 1.0;
    v.push_back(s);
  }
  {
    auto s = spec("sp", "npb", SyncKind::kBarrier, 220_us, 500, 0.02, 48_MiB,
                  SRMW, 0.20);
    s.tight_loops_per_sec = 1.0;
    v.push_back(s);
  }
  {
    auto s = spec("bt", "npb", SyncKind::kBarrier, 280_us, 450, 0.02, 48_MiB,
                  SEQ, 0.20);
    s.tight_loops_per_sec = 9.0;
    v.push_back(s);
  }
  {
    auto s = spec("ua", "npb", SyncKind::kCondBroadcast, 100_us, 900, 0.30,
                  32_MiB, RND, 0.08);
    s.tight_loops_per_sec = 2.0;
    v.push_back(s);
  }
  {
    // lu: plain busy-loop flag test (Figure 6 right; Figure 1's 25.66x bar).
    auto s = spec("lu", "npb", SyncKind::kSpinBarrier, 30_us, 900, 0.25,
                  32_MiB, SEQ, 0.20);
    v.push_back(s);
  }
  return v;
}

}  // namespace

const std::vector<BenchmarkSpec>& suite() {
  static const std::vector<BenchmarkSpec> s = build_suite();
  return s;
}

const BenchmarkSpec& find_benchmark(const std::string& name) {
  for (const auto& b : suite()) {
    if (b.name == name) return b;
  }
  EO_CHECK(false) << "unknown benchmark " << name;
  __builtin_unreachable();
}

std::vector<std::string> fig9_benchmarks() {
  return {"fluidanimate", "freqmine", "streamcluster", "lu_cb", "ocean",
          "radix",        "is",       "cg",            "mg",    "ft",
          "sp",           "bt",       "ua"};
}

// ---------------------------------------------------------------------------
// Spawning
// ---------------------------------------------------------------------------

namespace {

/// Shared state of one benchmark instance; owned via shared_ptr captured by
/// the worker lambdas (kept alive by Task::keepalive).
struct BenchState {
  std::unique_ptr<runtime::SimBarrier> barrier;
  std::unique_ptr<runtime::SimMutex> mutex;
  std::vector<std::unique_ptr<runtime::SimMutex>> cell_mutexes;
  std::unique_ptr<runtime::SimCond> cond;
  std::unique_ptr<runtime::SpinBarrier> spin_barrier;
  std::vector<kern::SimWord*> flags;  // wavefront progress, one per thread
  std::vector<hw::BranchSite> sites;  // spin site per wavefront edge
  long long cond_round = 0;           // guarded by mutex
};

struct WorkerParams {
  BenchmarkSpec spec;
  int n_threads = 0;
  int idx = 0;
  int rounds = 0;
  SimDuration chunk = 0;
  std::uint64_t seed = 1;
  hw::BranchSite tight_site = 0;
};

SimDuration jittered(const WorkerParams& p, Rng& rng) {
  if (p.spec.jitter_cv <= 0.0) return p.chunk;
  const double f = 1.0 + p.spec.jitter_cv * (2.0 * rng.next_double() - 1.0);
  auto d = static_cast<SimDuration>(static_cast<double>(p.chunk) * f);
  return d < 1000 ? 1000 : d;
}

/// One chunk of application compute, with the occasional tight loop
/// (the Table 3 false-positive source).
runtime::SimCall<void> do_chunk(Env env, const WorkerParams& p, Rng& rng) {
  SimDuration work = jittered(p, rng);
  const double p_tight =
      p.spec.tight_loops_per_sec * to_sec(work);
  if (p.spec.tight_loops_per_sec > 0 && rng.chance(p_tight)) {
    const SimDuration tl = p.spec.tight_loop_len;
    co_await env.tight_loop(tl, p.tight_site);
    work = work > tl ? work - tl : 1000;
  }
  co_await env.compute(work);
  co_return;
}

SimThread bench_worker(Env env, std::shared_ptr<BenchState> st,
                       WorkerParams p) {
  // Per-thread deterministic stream.
  Rng rng(p.seed * 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(p.idx));
  // Declare this thread's memory behaviour (per-thread share of the set).
  hw::MemProfile prof;
  prof.working_set =
      p.spec.working_set / static_cast<std::uint64_t>(p.n_threads);
  prof.pattern = p.spec.pattern;
  prof.mem_intensity = p.spec.mem_intensity;
  co_await env.set_mem_profile(prof);

  const auto& spec = p.spec;
  switch (spec.sync) {
    case SyncKind::kNone: {
      for (int r = 0; r < p.rounds; ++r) {
        co_await do_chunk(env, p, rng);
      }
      break;
    }
    case SyncKind::kMutex: {
      // fluidanimate: the number of locks (and lock operations) grows with
      // the thread count — the inherent overhead VB cannot remove.
      int locks = spec.locks_per_round;
      if (spec.locks_scale_with_threads) {
        locks = spec.locks_per_round * std::max(1, p.n_threads / 16);
      }
      const int n_cells = static_cast<int>(st->cell_mutexes.size());
      for (int r = 0; r < p.rounds; ++r) {
        co_await do_chunk(env, p, rng);
        for (int l = 0; l < locks; ++l) {
          // Striped (per-cell) locks, as in fluidanimate's grid.
          runtime::SimMutex& m = *st->cell_mutexes[static_cast<size_t>(
              (p.idx + r + l) % n_cells)];
          co_await m.lock(env);
          co_await env.compute(spec.cs_work);
          co_await m.unlock(env);
        }
      }
      break;
    }
    case SyncKind::kBarrier: {
      for (int r = 0; r < p.rounds; ++r) {
        co_await do_chunk(env, p, rng);
        co_await st->barrier->wait(env);
      }
      break;
    }
    case SyncKind::kCondBroadcast: {
      // streamcluster/ua-style coordinator: the master runs a fixed serial
      // phase, broadcasts the round to the workers, then blocks until every
      // worker reports completion (futex on a done-counter).
      kern::SimWord* round_seq = st->flags[0];
      kern::SimWord* done = st->flags[1 % st->flags.size()];
      const auto workers = static_cast<std::uint64_t>(p.n_threads - 1);
      if (p.idx == 0) {
        for (int r = 0; r < p.rounds; ++r) {
          co_await env.compute(spec.serial_work);
          // Broadcast the round: bump the sequence and wake every waiter
          // (exactly what pthread_cond_broadcast does at futex level).
          co_await env.store(round_seq, static_cast<std::uint64_t>(r) + 1);
          co_await env.futex_wake(round_seq, Env::kWakeAll);
          // Block until every worker has reported completion.
          for (;;) {
            const std::uint64_t v = co_await env.load(done);
            if (v >= workers * static_cast<std::uint64_t>(r + 1)) break;
            co_await env.futex_wait(done, v);
          }
        }
      } else {
        for (int r = 0; r < p.rounds; ++r) {
          for (;;) {
            const std::uint64_t v = co_await env.load(round_seq);
            if (v >= static_cast<std::uint64_t>(r) + 1) break;
            co_await env.futex_wait(round_seq, v);
          }
          co_await do_chunk(env, p, rng);
          const std::uint64_t v = co_await env.fetch_add(done, 1) + 1;
          if (v >= workers * static_cast<std::uint64_t>(r + 1)) {
            co_await env.futex_wake(done, 1);
          }
        }
      }
      break;
    }
    case SyncKind::kBlockingWavefront: {
      // Ring pipeline with futex handoffs: thread i starts round r once its
      // predecessor finished round r (thread 0 lags the ring by one round).
      const int pred = (p.idx + p.n_threads - 1) % p.n_threads;
      kern::SimWord* pw = st->flags[static_cast<size_t>(pred)];
      kern::SimWord* mine = st->flags[static_cast<size_t>(p.idx)];
      for (int r = 0; r < p.rounds; ++r) {
        const std::uint64_t need =
            static_cast<std::uint64_t>(r) + (p.idx == 0 ? 0 : 1);
        for (;;) {
          const std::uint64_t v = co_await env.load(pw);
          if (v >= need) break;
          co_await env.futex_wait(pw, v);
        }
        co_await do_chunk(env, p, rng);
        co_await env.store(mine, static_cast<std::uint64_t>(r) + 1);
        co_await env.futex_wake(mine, Env::kWakeAll);
      }
      break;
    }
    case SyncKind::kSpinBarrier: {
      for (int r = 0; r < p.rounds; ++r) {
        co_await do_chunk(env, p, rng);
        co_await st->spin_barrier->wait(env);
      }
      break;
    }
    case SyncKind::kSpinWavefront: {
      const int pred = (p.idx + p.n_threads - 1) % p.n_threads;
      kern::SimWord* pw = st->flags[static_cast<size_t>(pred)];
      kern::SimWord* mine = st->flags[static_cast<size_t>(p.idx)];
      const hw::BranchSite site = st->sites[static_cast<size_t>(p.idx)];
      for (int r = 0; r < p.rounds; ++r) {
        const std::uint64_t need =
            static_cast<std::uint64_t>(r) + (p.idx == 0 ? 0 : 1);
        co_await env.spin_until(pw, kern::SpinPredicate::ge(need), site,
                                spec.spin_uses_pause);
        co_await do_chunk(env, p, rng);
        co_await env.store(mine, static_cast<std::uint64_t>(r) + 1);
      }
      break;
    }
  }
  co_return;
}

}  // namespace

void spawn_benchmark(kern::Kernel& k, const BenchmarkSpec& bspec,
                     int n_threads, std::uint64_t seed, double duration_scale) {
  EO_CHECK_GT(n_threads, 0);
  auto st = std::make_shared<BenchState>();
  st->mutex = std::make_unique<runtime::SimMutex>(k);
  for (int i = 0; i < 4; ++i) {
    st->cell_mutexes.push_back(std::make_unique<runtime::SimMutex>(k));
  }
  st->cond = std::make_unique<runtime::SimCond>(k);
  st->barrier = std::make_unique<runtime::SimBarrier>(k, n_threads);
  st->spin_barrier = std::make_unique<runtime::SpinBarrier>(
      k, n_threads, bspec.spin_uses_pause);
  st->flags.reserve(static_cast<size_t>(n_threads));
  st->sites.reserve(static_cast<size_t>(n_threads));
  for (int i = 0; i < n_threads; ++i) {
    st->flags.push_back(k.alloc_word(0));
    st->sites.push_back(runtime::next_spin_site());
  }

  int rounds = std::max(1, static_cast<int>(bspec.rounds * duration_scale));
  // Strong scaling: per-round chunk shrinks as threads grow beyond the
  // calibration point (Figure 3's intervals are measured at opt_threads).
  const SimDuration chunk = std::max<SimDuration>(
      1000, bspec.interval * bspec.opt_threads / n_threads);

  for (int i = 0; i < n_threads; ++i) {
    WorkerParams p;
    p.spec = bspec;
    p.n_threads = n_threads;
    p.idx = i;
    p.rounds = rounds;
    p.chunk = chunk;
    p.seed = seed;
    p.tight_site = runtime::next_spin_site();
    runtime::spawn(k, bspec.name + "-" + std::to_string(i),
                   [st, p](Env env) { return bench_worker(env, st, p); });
  }
}

}  // namespace eo::workloads
