// Memcached server model (paper Section 4.2, Figure 12).
//
// Worker threads block in epoll_wait (libevent style); each request is a GET
// or SET with a hash-table lookup protected by a pthread mutex, value
// copying proportional to the value size, and response serialization. The
// mutilate-style client (mutilate.h) posts open-loop Poisson arrivals.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/units.h"
#include "kern/kernel.h"
#include "metrics/latency_recorder.h"
#include "runtime/mutex.h"

namespace eo::workloads {

struct MemcachedConfig {
  int n_workers = 4;
  /// GET:SET ratio 10:1, 128 B keys, 2048 B values (the paper's mix).
  double get_fraction = 10.0 / 11.0;
  std::uint32_t key_bytes = 128;
  std::uint32_t value_bytes = 2048;
  /// CPU cost components per request.
  SimDuration parse_cost = 1500;      ///< request parsing + dispatch
  SimDuration lookup_cost = 300;      ///< hash lookup (under the mutex)
  SimDuration set_extra_cost = 1800;  ///< allocation + store for SETs
  /// Per-byte value copy cost (ns/byte).
  double copy_ns_per_byte = 0.8;
};

/// One in-flight or completed request.
struct McRequest {
  SimTime arrival = 0;
  bool is_get = true;
};

class MemcachedSim {
 public:
  MemcachedSim(kern::Kernel& k, const MemcachedConfig& cfg);

  /// Spawns the worker threads. Workers run until stop() is called and the
  /// queue drains.
  void start();

  /// Called by the client: registers a request arriving now and wakes a
  /// worker. Returns the request id.
  std::uint64_t post_request(bool is_get);

  /// Asks workers to exit after the pending queue drains.
  void stop();

  int epoll_fd() const { return epfd_; }
  kern::Kernel& kernel() { return k_; }
  metrics::LatencyRecorder& latencies() { return latencies_; }
  const MemcachedConfig& config() const { return cfg_; }
  std::uint64_t completed() const { return completed_; }

  /// Begins the measurement window (discards warmup latencies).
  void reset_measurement();

 private:
  friend struct McWorker;

  kern::Kernel& k_;
  MemcachedConfig cfg_;
  int epfd_ = -1;
  std::vector<McRequest> requests_;
  metrics::LatencyRecorder latencies_;
  std::uint64_t completed_ = 0;
  std::unique_ptr<runtime::SimMutex> table_mutex_;
  bool stopping_ = false;
};

}  // namespace eo::workloads
