#include "workloads/memcached.h"

#include "common/logging.h"
#include "runtime/sim_thread.h"

namespace eo::workloads {

using runtime::Env;
using runtime::SimThread;

namespace {
/// Sentinel event payload asking a worker to exit.
constexpr std::uint64_t kStopEvent = ~0ull;
}  // namespace

MemcachedSim::MemcachedSim(kern::Kernel& k, const MemcachedConfig& cfg)
    : k_(k), cfg_(cfg) {
  epfd_ = k_.epoll_create();
  table_mutex_ = std::make_unique<runtime::SimMutex>(k_);
  requests_.reserve(1 << 20);
}

void MemcachedSim::start() {
  for (int i = 0; i < cfg_.n_workers; ++i) {
    MemcachedSim* self = this;
    runtime::spawn(k_, "mc-worker-" + std::to_string(i),
                   [self](Env env) -> SimThread {
                     const MemcachedConfig& c = self->cfg_;
                     const SimDuration copy_cost = static_cast<SimDuration>(
                         c.copy_ns_per_byte * c.value_bytes);
                     for (;;) {
                       const std::uint64_t ev =
                           co_await env.epoll_wait(self->epfd_);
                       if (ev == kStopEvent) break;
                       const McRequest req =
                           self->requests_[static_cast<size_t>(ev)];
                       co_await env.compute(c.parse_cost);
                       co_await self->table_mutex_->lock(env);
                       co_await env.compute(c.lookup_cost);
                       co_await self->table_mutex_->unlock(env);
                       if (req.is_get) {
                         co_await env.compute(copy_cost);
                       } else {
                         co_await env.compute(c.set_extra_cost + copy_cost);
                       }
                       self->latencies_.record(env.now() - req.arrival);
                       ++self->completed_;
                     }
                     co_return;
                   });
  }
}

std::uint64_t MemcachedSim::post_request(bool is_get) {
  const auto id = static_cast<std::uint64_t>(requests_.size());
  requests_.push_back(McRequest{k_.now(), is_get});
  k_.epoll_post_external(epfd_, id);
  return id;
}

void MemcachedSim::stop() {
  stopping_ = true;
  for (int i = 0; i < cfg_.n_workers; ++i) {
    k_.epoll_post_external(epfd_, kStopEvent);
  }
}

void MemcachedSim::reset_measurement() {
  latencies_.clear();
  completed_ = 0;
}

}  // namespace eo::workloads
