// Microbenchmarks from the paper's Sections 2.3, 4.2 and 4.3:
//
//  * compute+yield      — Figure 2(a): direct context-switch cost.
//  * compute+atomic     — Figure 2(b): shared-counter contention.
//  * array traversal    — Figure 4: indirect cost of context switches for
//                         the four access patterns.
//  * sync primitives    — Figure 10: mutex / condvar / barrier loops.
//  * spin TP pair       — Table 2: holder + contender on one core.
//  * lock contention    — Figure 13: N threads hammering one spinlock.
#pragma once

#include <cstdint>
#include <memory>

#include "common/units.h"
#include "hw/cache_model.h"
#include "kern/kernel.h"
#include "locks/spinlocks.h"

namespace eo::workloads {

/// Figure 2(a): `n_threads` split `total_work` evenly; each yields every
/// `yield_every` of execution (the paper uses the 750 µs minimum slice).
void spawn_compute_yield(kern::Kernel& k, int n_threads, SimDuration total_work,
                         SimDuration yield_every);

/// Figure 2(b): as above, plus one shared atomic fetch-add per `chunk`.
void spawn_compute_atomic(kern::Kernel& k, int n_threads,
                          SimDuration total_work, SimDuration chunk);

/// Figure 4: `n_threads` traverse disjoint halves of an array of
/// `total_bytes` in `pattern`, yielding after each pass; `passes` total
/// array sweeps. The kernel's ref_footprint must be set to `total_bytes`
/// (the single-thread calibration rate).
void spawn_array_traversal(kern::Kernel& k, int n_threads,
                           hw::AccessPattern pattern, std::uint64_t total_bytes,
                           int passes);

/// Duration of one full single-thread array pass at the calibration rate
/// (elements * steady_access_ns(pattern, total_bytes)); used to size runs.
SimDuration array_pass_duration(const hw::CacheModel& cm,
                                hw::AccessPattern pattern,
                                std::uint64_t total_bytes);

enum class SyncPrimitive { kMutex, kCond, kBarrier };
const char* to_string(SyncPrimitive p);

/// Figure 10: threads repeatedly synchronize `iterations` times with a small
/// compute between rounds.
void spawn_sync_micro(kern::Kernel& k, int n_threads, SyncPrimitive prim,
                      int iterations);

/// Table 2: thread #1 holds `lock` for `hold_total`; thread #2 repeatedly
/// tries to acquire it (and releases immediately on success). Pin both to
/// core 0 to match the paper's single-core setup.
void spawn_tp_pair(kern::Kernel& k, std::shared_ptr<locks::SpinLock> lock,
                   SimDuration hold_total);

/// Figure 13: `n_threads` each perform `iterations` lock/unlock pairs with
/// `cs_work` inside and `local_work` outside the critical section.
void spawn_lock_contention(kern::Kernel& k,
                           std::shared_ptr<locks::SpinLock> lock,
                           int n_threads, int iterations, SimDuration cs_work,
                           SimDuration local_work);

}  // namespace eo::workloads
