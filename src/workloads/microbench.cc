#include "workloads/microbench.h"

#include "common/logging.h"
#include "runtime/barrier.h"
#include "runtime/condvar.h"
#include "runtime/mutex.h"
#include "runtime/sim_thread.h"
#include "runtime/spin.h"

namespace eo::workloads {

using runtime::Env;
using runtime::SimThread;

void spawn_compute_yield(kern::Kernel& k, int n_threads,
                         SimDuration total_work, SimDuration yield_every) {
  EO_CHECK_GT(n_threads, 0);
  const SimDuration per_thread = total_work / n_threads;
  for (int i = 0; i < n_threads; ++i) {
    runtime::spawn(k, "yield-" + std::to_string(i),
                   [per_thread, yield_every](Env env) -> SimThread {
                     SimDuration left = per_thread;
                     while (left > 0) {
                       const SimDuration c = std::min(left, yield_every);
                       co_await env.compute(c);
                       left -= c;
                       co_await env.yield();
                     }
                     co_return;
                   });
  }
}

void spawn_compute_atomic(kern::Kernel& k, int n_threads,
                          SimDuration total_work, SimDuration chunk) {
  EO_CHECK_GT(n_threads, 0);
  kern::SimWord* shared = k.alloc_word(0);
  const SimDuration per_thread = total_work / n_threads;
  for (int i = 0; i < n_threads; ++i) {
    runtime::spawn(k, "atomic-" + std::to_string(i),
                   [per_thread, chunk, shared](Env env) -> SimThread {
                     SimDuration left = per_thread;
                     while (left > 0) {
                       const SimDuration c = std::min(left, chunk);
                       co_await env.compute(c);
                       // __sync_fetch_and_add on the shared counter.
                       co_await env.fetch_add(shared, 1);
                       left -= c;
                     }
                     co_return;
                   });
  }
}

SimDuration array_pass_duration(const hw::CacheModel& cm,
                                hw::AccessPattern pattern,
                                std::uint64_t total_bytes) {
  const double elements = static_cast<double>(total_bytes) / 8.0;
  return static_cast<SimDuration>(elements *
                                  cm.steady_access_ns(pattern, total_bytes));
}

void spawn_array_traversal(kern::Kernel& k, int n_threads,
                           hw::AccessPattern pattern,
                           std::uint64_t total_bytes, int passes) {
  EO_CHECK_GT(n_threads, 0);
  // Work per thread per pass, expressed at the single-thread calibration
  // rate; the kernel rescales via the per-thread footprint.
  hw::CacheModel cm(hw::CacheParams{}, hw::TlbParams{});
  const SimDuration pass_work =
      array_pass_duration(cm, pattern, total_bytes) / n_threads;
  const std::uint64_t per_thread_bytes =
      total_bytes / static_cast<std::uint64_t>(n_threads);
  for (int i = 0; i < n_threads; ++i) {
    runtime::spawn(
        k, "array-" + std::to_string(i),
        [pattern, per_thread_bytes, pass_work, passes](Env env) -> SimThread {
          hw::MemProfile prof;
          prof.working_set = per_thread_bytes;
          prof.pattern = pattern;
          prof.mem_intensity = 1.0;  // pure memory traversal
          co_await env.set_mem_profile(prof);
          for (int p = 0; p < passes; ++p) {
            co_await env.compute(pass_work);
            co_await env.yield();  // the paper's benchmark yields per pass
          }
          co_return;
        });
  }
}

const char* to_string(SyncPrimitive p) {
  switch (p) {
    case SyncPrimitive::kMutex:
      return "pthread_mutex";
    case SyncPrimitive::kCond:
      return "pthread_cond";
    case SyncPrimitive::kBarrier:
      return "pthread_barrier";
  }
  return "?";
}

namespace {

struct SyncState {
  std::unique_ptr<runtime::SimMutex> mutex;
  std::unique_ptr<runtime::SimCond> cond;
  std::unique_ptr<runtime::SimBarrier> barrier;
  kern::SimWord* done = nullptr;  // workers-finished counter (cond rounds)
  long long round = 0;
  int n_threads = 0;
};

SimThread sync_worker(Env env, std::shared_ptr<SyncState> st,
                      SyncPrimitive prim, int idx, int iterations) {
  constexpr SimDuration kWork = 2_us;
  constexpr SimDuration kCs = 500;
  switch (prim) {
    case SyncPrimitive::kMutex: {
      for (int i = 0; i < iterations; ++i) {
        co_await env.compute(kWork);
        co_await st->mutex->lock(env);
        co_await env.compute(kCs);
        co_await st->mutex->unlock(env);
      }
      break;
    }
    case SyncPrimitive::kBarrier: {
      for (int i = 0; i < iterations; ++i) {
        co_await env.compute(kWork);
        co_await st->barrier->wait(env);
      }
      break;
    }
    case SyncPrimitive::kCond: {
      // Round-trip: the master broadcasts a round, then blocks until every
      // worker has processed it, so each iteration exercises a full group
      // sleep + group wakeup (the case VB accelerates most).
      const auto workers = static_cast<std::uint64_t>(st->n_threads - 1);
      if (idx == 0) {
        for (int i = 0; i < iterations; ++i) {
          co_await env.compute(kWork);
          co_await st->mutex->lock(env);
          ++st->round;
          co_await st->cond->broadcast(env);
          co_await st->mutex->unlock(env);
          if (workers == 0) continue;
          for (;;) {
            const std::uint64_t v = co_await env.load(st->done);
            if (v >= workers * static_cast<std::uint64_t>(i + 1)) break;
            co_await env.futex_wait(st->done, v);
          }
        }
      } else {
        for (int i = 0; i < iterations; ++i) {
          co_await st->mutex->lock(env);
          while (st->round <= i) co_await st->cond->wait(env, *st->mutex);
          co_await st->mutex->unlock(env);
          co_await env.compute(kWork);
          const std::uint64_t v = co_await env.fetch_add(st->done, 1) + 1;
          if (v >= workers * static_cast<std::uint64_t>(i + 1)) {
            co_await env.futex_wake(st->done, 1);
          }
        }
      }
      break;
    }
  }
  co_return;
}

}  // namespace

void spawn_sync_micro(kern::Kernel& k, int n_threads, SyncPrimitive prim,
                      int iterations) {
  auto st = std::make_shared<SyncState>();
  st->mutex = std::make_unique<runtime::SimMutex>(k);
  st->cond = std::make_unique<runtime::SimCond>(k);
  st->barrier = std::make_unique<runtime::SimBarrier>(k, n_threads);
  st->done = k.alloc_word(0);
  st->n_threads = n_threads;
  for (int i = 0; i < n_threads; ++i) {
    runtime::spawn(k, std::string(to_string(prim)) + "-" + std::to_string(i),
                   [st, prim, i, iterations](Env env) {
                     return sync_worker(env, st, prim, i, iterations);
                   });
  }
}

namespace {

SimThread tp_holder(Env env, std::shared_ptr<locks::SpinLock> lock,
                    SimDuration hold_total) {
  co_await lock->lock(env, 0);
  co_await env.compute(hold_total);
  co_await lock->unlock(env, 0);
  co_return;
}

SimThread tp_contender(Env env, std::shared_ptr<locks::SpinLock> lock,
                       SimDuration until) {
  while (env.now() < until) {
    co_await lock->lock(env, 1);
    co_await lock->unlock(env, 1);
    co_await env.compute(1_us);
  }
  co_return;
}

}  // namespace

void spawn_tp_pair(kern::Kernel& k, std::shared_ptr<locks::SpinLock> lock,
                   SimDuration hold_total) {
  runtime::SpawnOpts pin0;
  pin0.pin_cpu = 0;
  runtime::spawn(
      k, "tp-holder",
      [lock, hold_total](Env env) { return tp_holder(env, lock, hold_total); },
      pin0);
  const SimDuration until = hold_total;
  runtime::spawn(
      k, "tp-contender",
      [lock, until](Env env) { return tp_contender(env, lock, until); }, pin0);
}

void spawn_lock_contention(kern::Kernel& k,
                           std::shared_ptr<locks::SpinLock> lock,
                           int n_threads, int iterations, SimDuration cs_work,
                           SimDuration local_work) {
  for (int i = 0; i < n_threads; ++i) {
    runtime::spawn(k, "lock-" + std::to_string(i),
                   [lock, i, iterations, cs_work, local_work](Env env)
                       -> SimThread {
                     for (int it = 0; it < iterations; ++it) {
                       co_await lock->lock(env, i);
                       co_await env.compute(cs_work);
                       co_await lock->unlock(env, i);
                       co_await env.compute(local_work);
                     }
                     co_return;
                   });
  }
}

}  // namespace eo::workloads
