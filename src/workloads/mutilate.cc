#include "workloads/mutilate.h"

namespace eo::workloads {

MutilateClient::MutilateClient(MemcachedSim& server, const MutilateConfig& cfg)
    : server_(server), cfg_(cfg), rng_(cfg.seed) {}

void MutilateClient::start() { schedule_next(); }

void MutilateClient::schedule_next() {
  auto& engine = server_.kernel().engine();
  const double mean_gap_ns = 1e9 / cfg_.rate_ops_per_sec;
  auto gap = static_cast<SimDuration>(rng_.exponential(mean_gap_ns));
  if (gap < 1) gap = 1;
  engine.schedule_after(gap, [this] {
    if (server_.kernel().now() >= cfg_.until) return;  // stop the process
    const bool is_get = rng_.chance(server_.config().get_fraction);
    server_.post_request(is_get);
    ++injected_;
    schedule_next();
  });
}

}  // namespace eo::workloads
