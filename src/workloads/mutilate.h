// Mutilate-style open-loop load generator for the memcached model.
//
// Arrivals are a Poisson process at `rate_ops_per_sec`, injected as external
// epoll events (the network interrupt path); GET/SET is drawn per request.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/units.h"
#include "workloads/memcached.h"

namespace eo::workloads {

struct MutilateConfig {
  double rate_ops_per_sec = 100000.0;
  SimTime until = 2_s;  ///< stop injecting at this simulated time
  std::uint64_t seed = 42;
};

class MutilateClient {
 public:
  MutilateClient(MemcachedSim& server, const MutilateConfig& cfg);

  /// Schedules the arrival process on the server's kernel engine.
  void start();

  std::uint64_t injected() const { return injected_; }

 private:
  void schedule_next();

  MemcachedSim& server_;
  MutilateConfig cfg_;
  Rng rng_;
  std::uint64_t injected_ = 0;
};

}  // namespace eo::workloads
