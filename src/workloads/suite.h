// Synthetic models of the PARSEC 3.0, SPLASH-2, and NPB benchmarks.
//
// The paper's Section 2 reduces each benchmark's behaviour under thread
// oversubscription to a handful of parameters: the synchronization primitive
// it uses, the interval between synchronizations (Figure 3), per-round load
// imbalance, the working set and its access pattern (Figure 4's
// constructive/destructive cache effects), and — for the busy-waiting
// benchmarks — whether the spin is a library lock or a custom loop. This
// catalogue encodes those parameters for all 32 benchmarks of Figure 1; a
// benchmark model is spawned as N coroutine threads executing the matching
// synchronization pattern under strong scaling (total work fixed, per-round
// chunk ∝ 1/N).
//
// What each group of Figure 1 maps to:
//  * group 1 (unaffected): long sync intervals, light memory intensity;
//  * group 2 (benefit):    random-access working sets in the TLB-constructive
//                          region, and/or high per-round imbalance that
//                          oversubscription smooths;
//  * group 3 (suffer):     short intervals with barrier/cond wake storms
//                          (blocking group, Figure 9) or busy-wait
//                          synchronization (lu, cholesky, volrend; Figure 14).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "hw/cache_model.h"
#include "kern/kernel.h"

namespace eo::workloads {

enum class SyncKind {
  kNone,              ///< embarrassingly parallel (ep, blackscholes, ...)
  kMutex,             ///< mutex-protected critical sections
  kBarrier,           ///< futex barrier rounds
  kCondBroadcast,     ///< master broadcasts a condition each round
  kBlockingWavefront, ///< ring pipeline with futex handoffs (dedup, ferret)
  kSpinBarrier,       ///< custom sense-reversing spin barrier (volrend)
  kSpinWavefront,     ///< custom spin-flag ring pipeline (lu, cholesky)
};

const char* to_string(SyncKind k);

struct BenchmarkSpec {
  std::string name;
  std::string origin;  ///< "parsec", "splash2", or "npb"
  SyncKind sync = SyncKind::kBarrier;

  /// Per-thread work between synchronizations at opt_threads (Figure 3).
  SimDuration interval = 1_ms;
  /// Uniform per-round jitter: chunk *= 1 + U(-cv, +cv).
  double jitter_cv = 0.0;
  /// Number of synchronization episodes (fixed across thread counts).
  int rounds = 300;
  /// Critical-section length for mutex-based benchmarks.
  SimDuration cs_work = 2_us;
  /// Fixed serial coordinator phase per round (kCondBroadcast master): this
  /// does not shrink with the thread count (Amdahl section).
  SimDuration serial_work = 50_us;
  /// Lock acquisitions per round (fluidanimate's lock count scales with the
  /// thread count when locks_scale_with_threads is set).
  int locks_per_round = 1;
  bool locks_scale_with_threads = false;

  /// Total working set (per-thread footprint = working_set / n_threads).
  std::uint64_t working_set = 16ull << 20;
  hw::AccessPattern pattern = hw::AccessPattern::kSequentialRead;
  double mem_intensity = 0.15;

  /// Tight-loop phases (BWD false-positive source, Table 3): expected
  /// episodes per second of per-thread compute (0 = none).
  double tight_loops_per_sec = 0.0;
  SimDuration tight_loop_len = 150_us;

  /// Thread count at which the benchmark stops scaling (paper: 16 or 32).
  int opt_threads = 32;

  /// Custom spin loops contain PAUSE/NOP (detectable by PLE in VMs)?
  bool spin_uses_pause = false;

  /// Excluded from Figure 9's selection (dedup, cholesky, radiosity).
  bool excluded_from_fig9 = false;

  std::uint64_t ref_footprint() const {
    return working_set / static_cast<std::uint64_t>(opt_threads);
  }
  bool is_spin_based() const {
    return sync == SyncKind::kSpinBarrier || sync == SyncKind::kSpinWavefront;
  }
};

/// The 32 benchmarks of Figure 1, in its left-to-right order.
const std::vector<BenchmarkSpec>& suite();

/// Lookup by name; aborts if unknown.
const BenchmarkSpec& find_benchmark(const std::string& name);

/// The 13 blocking-synchronization benchmarks of Figure 9 / Table 1.
std::vector<std::string> fig9_benchmarks();

/// Spawns the benchmark's threads into `k`. `n_threads` is the oversubscribed
/// (or matched) thread count; work is strongly scaled. `duration_scale`
/// multiplies the round count (shorter smoke runs in tests).
void spawn_benchmark(kern::Kernel& k, const BenchmarkSpec& spec, int n_threads,
                     std::uint64_t seed = 1, double duration_scale = 1.0);

}  // namespace eo::workloads
