// Multi-stage spin pipeline (the BWD stress microbenchmark of Section 4.3):
// each stage is a thread that busy-waits on the completion of the previous
// stage before starting its own work, so one delayed stage cascades into
// downstream spinning.
#pragma once

#include "common/units.h"
#include "kern/kernel.h"

namespace eo::workloads {

struct PipelineConfig {
  int n_stages = 8;
  int items = 200;             ///< work items flowing through the pipeline
  SimDuration stage_work = 100_us;
  bool uses_pause = false;     ///< spin bodies contain PAUSE
  /// Bounded inter-stage buffering: a stage may run at most this many items
  /// ahead of its successor before busy-waiting (backpressure). Bounded
  /// queues are what make one delayed stage cascade into upstream spinning.
  int buffer = 2;
};

void spawn_spin_pipeline(kern::Kernel& k, const PipelineConfig& cfg);

}  // namespace eo::workloads
