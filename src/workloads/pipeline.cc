#include "workloads/pipeline.h"

#include <memory>
#include <vector>

#include "common/logging.h"
#include "runtime/sim_thread.h"
#include "runtime/spin.h"

namespace eo::workloads {

using runtime::Env;
using runtime::SimThread;

namespace {

struct PipeState {
  std::vector<kern::SimWord*> progress;  // items completed per stage
  std::vector<hw::BranchSite> sites;
};

SimThread stage_worker(Env env, std::shared_ptr<PipeState> st,
                       PipelineConfig cfg, int stage) {
  kern::SimWord* mine = st->progress[static_cast<size_t>(stage)];
  kern::SimWord* prev =
      stage > 0 ? st->progress[static_cast<size_t>(stage - 1)] : nullptr;
  kern::SimWord* succ = stage + 1 < cfg.n_stages
                            ? st->progress[static_cast<size_t>(stage + 1)]
                            : nullptr;
  const hw::BranchSite site = st->sites[static_cast<size_t>(stage)];
  for (int item = 0; item < cfg.items; ++item) {
    if (prev != nullptr) {
      // Wait for the input item.
      const auto need = static_cast<std::uint64_t>(item) + 1;
      co_await env.spin_until(prev, kern::SpinPredicate::ge(need), site,
                              cfg.uses_pause);
    }
    if (succ != nullptr && item >= cfg.buffer) {
      // Backpressure: do not run more than `buffer` items ahead of the
      // consumer (bounded inter-stage queue).
      const auto floor = static_cast<std::uint64_t>(item - cfg.buffer) + 1;
      co_await env.spin_until(succ, kern::SpinPredicate::ge(floor), site,
                              cfg.uses_pause);
    }
    co_await env.compute(cfg.stage_work);
    co_await env.store(mine, static_cast<std::uint64_t>(item) + 1);
  }
  co_return;
}

}  // namespace

void spawn_spin_pipeline(kern::Kernel& k, const PipelineConfig& cfg) {
  EO_CHECK_GT(cfg.n_stages, 0);
  auto st = std::make_shared<PipeState>();
  for (int i = 0; i < cfg.n_stages; ++i) {
    st->progress.push_back(k.alloc_word(0));
    st->sites.push_back(runtime::next_spin_site());
  }
  for (int i = 0; i < cfg.n_stages; ++i) {
    runtime::spawn(k, "stage-" + std::to_string(i), [st, cfg, i](Env env) {
      return stage_worker(env, st, cfg, i);
    });
  }
}

}  // namespace eo::workloads
