#include "traffic/slo.h"

namespace eo::traffic {

SloPoint SloReporter::summarize(double offered_ops_s, const FleetResult& r,
                                SimDuration measure) {
  SloPoint p;
  p.offered_ops_s = offered_ops_s;
  p.completed = r.completed;
  const double secs = static_cast<double>(measure) / 1e9;
  if (secs > 0) p.achieved_ops_s = static_cast<double>(r.completed) / secs;
  const std::uint64_t offered_in_window = r.issued + r.shed;
  if (offered_in_window > 0) {
    p.shed_fraction = static_cast<double>(r.shed) /
                      static_cast<double>(offered_in_window);
  }
  p.mean_us = r.latency.mean() / 1e3;
  p.p50_us = static_cast<double>(r.latency.p50()) / 1e3;
  p.p99_us = static_cast<double>(r.latency.p99()) / 1e3;
  p.p999_us = static_cast<double>(r.latency.p999()) / 1e3;
  p.queue_p99_us = static_cast<double>(r.queueing.p99()) / 1e3;
  p.service_p99_us = static_cast<double>(r.service.p99()) / 1e3;
  p.sched_delay_p99_us = static_cast<double>(r.sched_delay.p99()) / 1e3;
  return p;
}

double SloReporter::max_load_within(double p99_slo_us) const {
  double best = 0;
  for (const SloPoint& p : curve_) {
    if (p.p99_us <= p99_slo_us && p.offered_ops_s > best) {
      best = p.offered_ops_s;
    }
  }
  return best;
}

void SloReporter::print(std::FILE* out) const {
  std::fprintf(out, "%14s %14s %8s %10s %10s %10s %10s %10s %10s %10s\n",
               "offered(ops/s)", "achieved(ops/s)", "shed%", "mean(us)",
               "p50(us)", "p99(us)", "p999(us)", "qp99(us)", "svcp99(us)",
               "schp99(us)");
  for (const SloPoint& p : curve_) {
    std::fprintf(out,
                 "%14.0f %14.0f %7.2f%% %10.1f %10.1f %10.1f %10.1f %10.1f "
                 "%10.1f %10.1f\n",
                 p.offered_ops_s, p.achieved_ops_s, p.shed_fraction * 100.0,
                 p.mean_us, p.p50_us, p.p99_us, p.p999_us, p.queue_p99_us,
                 p.service_p99_us, p.sched_delay_p99_us);
  }
}

}  // namespace eo::traffic
