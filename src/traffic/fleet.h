// Million-connection open-loop serving fleet.
//
// The fig12 memcached model is testbed-sized: one machine, a closed set of
// requests, a growing request vector. This module scales the same epoll
// worker pattern to production shape: many simulated hosts, each serving
// tens of thousands of connections whose aggregate arrivals come from an
// open-loop `ArrivalProcess`, with every per-connection and per-request byte
// accounted for:
//
//  * `Connection` is a packed 16-byte record; the fleet keeps ONE flat slab
//    of n_hosts * conns_per_host of them resident for the whole sweep, so a
//    million connections cost 16 MB and a connection id is just an index.
//  * In-flight requests live in a per-host `PendingRequest` slot slab (the
//    engine's free-list idiom): posting a request allocates a slot, the
//    epoll payload is the slot index, completion frees it. The steady state
//    performs no heap allocation anywhere on the request path — arrival
//    draw, epoll post, worker wake, service, histogram record, slot free.
//  * When the slab is exhausted the host sheds the arrival (counted, never
//    queued) — the open-loop analogue of a full accept queue.
//
// Hosts are simulated independently and deterministically: host h's kernel
// and arrival stream are seeded from (fleet seed, h), so the fleet result is
// a pure function of its config, adding hosts never perturbs existing ones,
// and the hosts can run concurrently on a host-thread pool
// (`FleetConfig.jobs`) with results merged in host order — byte-identical to
// the sequential run.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/units.h"
#include "kern/kernel.h"
#include "obs/fleet_agg.h"
#include "obs/progress.h"
#include "obs/taskstats.h"
#include "traffic/arrival.h"

namespace eo::traffic {

/// X-macro over the request-latency blame categories (critical-path
/// analyzer). Keeps the struct, the merge, the exported counters, and the
/// bench table in sync.
#define EO_SERVE_BLAME_FIELDS(X) \
  X(backlog)                     \
  X(wake_park)                   \
  X(wake_sleep)                  \
  X(rq_wait)                     \
  X(skip_delay)                  \
  X(service_cpu)                 \
  X(other)

/// Critical-path decomposition of completed-request latency: each request's
/// arrival-to-completion time is split, exactly and by integer arithmetic,
/// into the delay states of the worker that served it (via
/// `obs::TaskDelaySnapshot` deltas around the epoll wait and the service
/// span):
///  * `backlog`     — the request sat in the ready queue while its eventual
///                    worker was still serving earlier requests;
///  * `wake_park`   — worker VB-parked between this request's arrival and
///                    its dequeue (the VB wake path's contribution);
///  * `wake_sleep`  — worker vanilla-blocked in epoll over the same span;
///  * `rq_wait`     — worker on a runqueue waiting for a core (wake-side and
///                    mid-service, including post-migration wait);
///  * `skip_delay`  — worker delayed by a BWD schedule-skip;
///  * `service_cpu` — worker on-CPU executing the request;
///  * `other`       — everything else (epoll-entry overhead on the wake
///                    side, i.e. on-CPU time before the worker blocked).
/// The categories sum to the summed latency of the counted requests, so the
/// blame table explains exactly where p99 movement under VB/BWD comes from.
struct BlameBreakdown {
  std::uint64_t requests = 0;
#define EO_BLAME_FIELD(name) SimDuration name = 0;
  EO_SERVE_BLAME_FIELDS(EO_BLAME_FIELD)
#undef EO_BLAME_FIELD

  SimDuration total() const {
    SimDuration sum = 0;
#define EO_BLAME_SUM(name) sum += name;
    EO_SERVE_BLAME_FIELDS(EO_BLAME_SUM)
#undef EO_BLAME_SUM
    return sum;
  }
  void merge(const BlameBreakdown& o) {
    requests += o.requests;
#define EO_BLAME_MERGE(name) name += o.name;
    EO_SERVE_BLAME_FIELDS(EO_BLAME_MERGE)
#undef EO_BLAME_MERGE
  }
};

/// Packed per-connection record. The million-connection scenario keeps one
/// of these per simulated connection resident, so the size is a contract
/// (tests/traffic_sizeof_test.cc gates it).
struct Connection {
  std::uint32_t issued = 0;       ///< requests arrived on this connection
  std::uint32_t completed = 0;    ///< responses delivered
  std::uint32_t last_latency_us = 0;
  std::uint16_t inflight = 0;     ///< issued - completed - shed
  std::uint16_t shed = 0;         ///< arrivals dropped (slab full), saturating
};
static_assert(sizeof(Connection) == 16, "per-connection record must stay packed");

/// One in-flight request: a slot in the per-host slab. Free slots chain
/// through `next_free`; live slots carry the arrival and worker-dequeue
/// timestamps and the connection index (bit 31 of conn_and_op flags a SET).
/// The two timestamps are the latency-attribution record: arrival→dequeue is
/// queueing delay, dequeue→completion is service (whose excess over the
/// request's ideal CPU cost is scheduling delay).
struct PendingRequest {
  SimTime arrival = 0;
  SimTime dequeued = 0;
  std::uint32_t conn_and_op = 0;
  std::uint32_t next_free = 0;
};
static_assert(sizeof(PendingRequest) == 24, "request slot must stay packed");

struct ServeHostConfig {
  /// Worker threads blocking in epoll_wait (libevent style). The headline
  /// scenario oversubscribes: 16 workers on 8 cores.
  int n_workers = 16;
  std::uint32_t n_connections = 32768;
  /// Request-slab slots; arrivals beyond this many in flight are shed.
  std::uint32_t max_pending = 8192;
  /// SET fraction (the paper's 10:1 GET:SET mix).
  double set_fraction = 1.0 / 11.0;
  /// CPU cost per request: parse + lookup + value copy (+ SET extra).
  SimDuration parse_cost = 2000;
  SimDuration lookup_cost = 500;
  SimDuration set_extra_cost = 1800;
  std::uint32_t value_bytes = 4096;
  double copy_ns_per_byte = 0.8;
};

/// Mean CPU cost of one request under `cfg`, in ns — the capacity yardstick
/// benches use to place offered-load points relative to saturation.
double mean_request_cost_ns(const ServeHostConfig& cfg);

/// One simulated host: workers + request slab + its slice of the fleet's
/// connection slab, driven by an aggregate open-loop arrival process.
class ServeHost {
 public:
  /// `conns` points at this host's `cfg.n_connections` connection records
  /// (fleet-owned storage outliving the host).
  ServeHost(kern::Kernel& k, const ServeHostConfig& cfg, Connection* conns,
            const ArrivalConfig& arrival, std::uint64_t seed);

  /// Spawns the workers and schedules the arrival process; arrivals stop at
  /// `inject_until` (simulated time).
  void start(SimTime inject_until);

  /// Asks workers to exit once the pending queue drains.
  void stop();

  /// Opens the measurement window: clears the latency/attribution
  /// histograms and the windowed counters (connection records keep
  /// accumulating).
  void begin_window();

  const Histogram& latency() const { return latency_; }
  /// Arrival → worker dequeue: time spent waiting in the epoll ready queue.
  const Histogram& queueing() const { return queueing_; }
  /// Worker dequeue → completion: CPU cost plus any preemption the worker
  /// suffered mid-request.
  const Histogram& service() const { return service_; }
  /// Service time minus the request's ideal CPU cost — the scheduler-induced
  /// part of the latency, the observable that explains why VB/BWD moves the
  /// SLO knee.
  const Histogram& sched_delay() const { return sched_delay_; }
  std::uint64_t issued() const { return issued_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t shed() const { return shed_; }
  /// Request slots currently in flight.
  std::uint32_t pending() const { return live_slots_; }
  int epoll_fd() const { return epfd_; }
  /// Windowed critical-path decomposition of completed-request latency.
  /// All-zero (except `requests`) when metrics are compiled out.
  const BlameBreakdown& blame() const { return blame_; }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// Per-worker blame bookkeeping. A worker serves one request start-to-
  /// finish, so the in-flight request's critical-path record is per-worker
  /// state, sized once at start() — nothing per-request is allocated.
  struct WorkerMark {
    obs::TaskDelaySnapshot wait_snap;  ///< taken just before epoll_wait
    SimTime wait_at = 0;
    obs::TaskDelaySnapshot deq_snap;  ///< taken when the wait returned
  };

  void schedule_arrival(SimTime at);
  void inject(SimTime now);
  void complete(std::uint32_t slot, SimTime now, int worker,
                const obs::TaskDelaySnapshot& done_snap);

  kern::Kernel& k_;
  ServeHostConfig cfg_;
  Connection* conns_;
  int epfd_ = -1;
  ArrivalProcess arrival_;
  Rng rng_;  ///< connection pick + GET/SET draw
  std::vector<PendingRequest> slab_;
  std::uint32_t free_head_ = kNoSlot;
  std::uint32_t live_slots_ = 0;
  SimTime inject_until_ = 0;
  /// Ideal value-copy cost, precomputed once so the worker loop and the
  /// attribution in complete() always agree on a request's ideal CPU cost.
  SimDuration copy_cost_ = 0;
  // Windowed counters (begin_window resets them).
  std::uint64_t issued_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t shed_ = 0;
  Histogram latency_;
  Histogram queueing_;
  Histogram service_;
  Histogram sched_delay_;
  BlameBreakdown blame_;
  std::vector<WorkerMark> marks_;  ///< n_workers entries, sized at start()
};

struct FleetConfig {
  int n_hosts = 32;
  ServeHostConfig host;
  /// Per-host aggregate arrival stream (rate_per_sec is per host).
  ArrivalConfig arrival;
  /// Kernel template; per-host seeds are derived from `seed`, not taken
  /// from here.
  kern::KernelConfig kernel;
  SimDuration warmup = 10_ms;
  SimDuration window = 40_ms;
  SimDuration drain = 5_ms;
  std::uint64_t seed = 1;
  /// Host threads simulating hosts concurrently: 1 = sequential (in the
  /// calling thread), 0 = hardware concurrency. Hosts are seeded
  /// independently and write disjoint state, and results are merged in host
  /// order, so the fleet result is identical for every `jobs` value (the
  /// serve_parallel_golden ctest pins this byte-for-byte).
  std::size_t jobs = 1;
  /// Live progress feed (host started / window fraction / host finished).
  /// Purely observational — attaching a sink never changes the result. Not
  /// owned; must outlive run(). Null = no feed.
  obs::ProgressSink* progress = nullptr;
};

/// Aggregated outcome of one fleet run (one offered-load point).
struct FleetResult {
  Histogram latency;  ///< merged measurement-window latencies, all hosts
  // Merged latency-attribution histograms (see the ServeHost accessors).
  Histogram queueing;
  Histogram service;
  Histogram sched_delay;
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed = 0;
  std::uint64_t total_connections = 0;
  /// Connections that carried at least one request over the whole run.
  std::uint64_t active_connections = 0;
  SimDuration window = 0;
  /// Scheduler counters summed field-wise across every host.
  sched::SchedStats stats;
  /// Per-host scheduler counters, host order (n_hosts entries).
  std::vector<sched::SchedStats> host_stats;
  /// Telemetry of one host when sampling is enabled: the first host whose
  /// watchdog recorded a violation, else host 0 (so sweep-level checks see
  /// failures anywhere in the fleet). Violation ids carry a `host=<h>`
  /// prefix.
  std::shared_ptr<obs::MetricsDoc> metrics;
  /// The merged fleet document — every host's telemetry, per-host breakdown
  /// included — when sampling is enabled, else null.
  std::shared_ptr<obs::FleetMetricsDoc> fleet_metrics;
  /// Request-latency blame, fleet-merged (host order) and per host. Also
  /// exported as `serve.blame.*` counters on each host's metrics document
  /// (and therefore summed into the fleet document) when
  /// `FleetConfig.kernel.taskstats` is set.
  BlameBreakdown blame;
  std::vector<BlameBreakdown> host_blames;
  /// Per-task delay accounting of the representative host (same pick as
  /// `metrics`); null unless `kernel.taskstats` is set.
  std::shared_ptr<obs::TaskstatsDoc> taskstats;
};

/// The fleet: owns the flat connection slab (all hosts, resident for the
/// object's lifetime) and runs the hosts — sequentially or on a host-thread
/// pool (`FleetConfig.jobs`), since each host's kernel, arrival stream, and
/// connection-slab slice are fully independent.
class ConnectionFleet {
 public:
  explicit ConnectionFleet(const FleetConfig& cfg);

  /// Simulates every host through warmup + window + drain and aggregates.
  FleetResult run();

  std::size_t total_connections() const { return conns_.size(); }
  const Connection* connections() const { return conns_.data(); }

 private:
  FleetConfig cfg_;
  std::vector<Connection> conns_;
};

}  // namespace eo::traffic
