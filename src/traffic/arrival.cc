#include "traffic/arrival.h"

#include <cmath>

#include "common/logging.h"

namespace eo::traffic {

const char* to_string(ArrivalKind k) {
  switch (k) {
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kOnOff: return "onoff";
    case ArrivalKind::kDiurnal: return "diurnal";
  }
  return "?";
}

ArrivalProcess::ArrivalProcess(const ArrivalConfig& cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed) {
  EO_CHECK(cfg_.rate_per_sec > 0) << "arrival rate must be positive";
  switch (cfg_.kind) {
    case ArrivalKind::kPoisson:
      peak_rate_ = cfg_.rate_per_sec;
      break;
    case ArrivalKind::kOnOff: {
      EO_CHECK(cfg_.on_fraction > 0 && cfg_.on_fraction <= 1)
          << "on_fraction must be in (0, 1]";
      EO_CHECK(cfg_.burst_factor >= 1) << "burst_factor must be >= 1";
      EO_CHECK(cfg_.burst_factor * cfg_.on_fraction <= 1)
          << "burst_factor * on_fraction must be <= 1 (mean rate must be "
             "attainable)";
      EO_CHECK(cfg_.mean_burst > 0);
      rate_on_ = cfg_.rate_per_sec * cfg_.burst_factor;
      // Solve on_fraction*rate_on + (1-on_fraction)*rate_off = rate.
      rate_off_ =
          cfg_.on_fraction < 1
              ? cfg_.rate_per_sec * (1.0 - cfg_.burst_factor * cfg_.on_fraction) /
                    (1.0 - cfg_.on_fraction)
              : cfg_.rate_per_sec;
      // Alternating renewal process: time-average ON fraction equals
      // mean_on / (mean_on + mean_off).
      mean_off_ = cfg_.on_fraction < 1
                      ? static_cast<SimDuration>(
                            static_cast<double>(cfg_.mean_burst) *
                            (1.0 - cfg_.on_fraction) / cfg_.on_fraction)
                      : 0;
      peak_rate_ = rate_on_;
      // First dwell: start in the state a stationary observer would likely
      // see, but keep it simple and deterministic — begin ON.
      on_ = true;
      state_until_ =
          static_cast<SimTime>(rng_.exponential(static_cast<double>(cfg_.mean_burst)));
      break;
    }
    case ArrivalKind::kDiurnal:
      EO_CHECK(cfg_.diurnal_amplitude >= 0 && cfg_.diurnal_amplitude < 1)
          << "diurnal_amplitude must be in [0, 1)";
      EO_CHECK(cfg_.diurnal_period > 0);
      peak_rate_ = cfg_.rate_per_sec * (1.0 + cfg_.diurnal_amplitude);
      break;
  }
}

void ArrivalProcess::advance_state(SimTime t) {
  while (state_until_ <= t) {
    on_ = !on_;
    const double mean = on_ ? static_cast<double>(cfg_.mean_burst)
                            : static_cast<double>(mean_off_);
    // A zero-length OFF state (on_fraction == 1) degenerates to always-ON.
    state_until_ += std::max<SimDuration>(
        1, static_cast<SimDuration>(rng_.exponential(std::max(mean, 1.0))));
  }
}

double ArrivalProcess::rate_at(SimTime t) const {
  switch (cfg_.kind) {
    case ArrivalKind::kPoisson:
      return cfg_.rate_per_sec;
    case ArrivalKind::kOnOff:
      // Only exact for t at-or-before the state frontier; the fleet asks at
      // arrival times, which always are.
      return t < state_until_ ? (on_ ? rate_on_ : rate_off_)
                              : (on_ ? rate_off_ : rate_on_);
    case ArrivalKind::kDiurnal: {
      const double phase = 2.0 * M_PI * static_cast<double>(t) /
                           static_cast<double>(cfg_.diurnal_period);
      return cfg_.rate_per_sec * (1.0 + cfg_.diurnal_amplitude * std::sin(phase));
    }
  }
  return 0.0;
}

SimTime ArrivalProcess::next_after(SimTime now) {
  switch (cfg_.kind) {
    case ArrivalKind::kPoisson: {
      const double mean_gap_ns = 1e9 / cfg_.rate_per_sec;
      const auto gap = static_cast<SimDuration>(rng_.exponential(mean_gap_ns));
      return now + std::max<SimDuration>(gap, 1);
    }
    case ArrivalKind::kOnOff: {
      // Exact piecewise-exponential sampling: draw at the current state's
      // rate; if the candidate lands past the state boundary, restart from
      // the boundary in the next state (memorylessness makes this exact).
      SimTime t = now;
      for (;;) {
        advance_state(t);
        const double rate = on_ ? rate_on_ : rate_off_;
        if (rate <= 0) {
          // Silent state: nothing can arrive until it ends.
          t = state_until_;
          continue;
        }
        const auto gap = std::max<SimDuration>(
            1, static_cast<SimDuration>(rng_.exponential(1e9 / rate)));
        if (t + gap <= state_until_) return t + gap;
        t = state_until_;
      }
    }
    case ArrivalKind::kDiurnal: {
      // Lewis-Shedler thinning against the peak envelope.
      const double mean_gap_ns = 1e9 / peak_rate_;
      SimTime t = now;
      for (;;) {
        const auto gap = std::max<SimDuration>(
            1, static_cast<SimDuration>(rng_.exponential(mean_gap_ns)));
        t += gap;
        if (rng_.next_double() * peak_rate_ <= rate_at(t)) return t;
      }
    }
  }
  return now + 1;
}

}  // namespace eo::traffic
