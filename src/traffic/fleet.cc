#include "traffic/fleet.h"

#include <algorithm>
#include <string>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "runtime/sim_thread.h"

namespace eo::traffic {

using runtime::Env;
using runtime::SimThread;

namespace {
/// Sentinel epoll payload asking a worker to exit.
constexpr std::uint64_t kStopEvent = ~0ull;
constexpr std::uint32_t kOpSetBit = 0x80000000u;
}  // namespace

double mean_request_cost_ns(const ServeHostConfig& cfg) {
  const double copy =
      cfg.copy_ns_per_byte * static_cast<double>(cfg.value_bytes);
  return static_cast<double>(cfg.parse_cost) +
         static_cast<double>(cfg.lookup_cost) + copy +
         cfg.set_fraction * static_cast<double>(cfg.set_extra_cost);
}

ServeHost::ServeHost(kern::Kernel& k, const ServeHostConfig& cfg,
                     Connection* conns, const ArrivalConfig& arrival,
                     std::uint64_t seed)
    : k_(k),
      cfg_(cfg),
      conns_(conns),
      arrival_(arrival, Rng(seed).next_u64()),
      rng_(Rng(seed ^ 0x746661726369ull).next_u64()) {
  EO_CHECK(cfg_.n_workers > 0);
  EO_CHECK(cfg_.n_connections > 0);
  EO_CHECK(cfg_.max_pending > 0);
  EO_CHECK(cfg_.n_connections < kOpSetBit)
      << "connection index must fit in 31 bits";
  copy_cost_ = static_cast<SimDuration>(
      cfg_.copy_ns_per_byte * static_cast<double>(cfg_.value_bytes));
  epfd_ = k_.epoll_create();
  // Build the slab with its free list fully chained; the request path only
  // ever pops/pushes the head.
  slab_.resize(cfg_.max_pending);
  for (std::uint32_t i = 0; i < cfg_.max_pending; ++i) {
    slab_[i].next_free = i + 1 < cfg_.max_pending ? i + 1 : kNoSlot;
  }
  free_head_ = 0;
}

void ServeHost::start(SimTime inject_until) {
  inject_until_ = inject_until;
  marks_.resize(static_cast<std::size_t>(cfg_.n_workers));
  for (int i = 0; i < cfg_.n_workers; ++i) {
    ServeHost* self = this;
    runtime::spawn(k_, "serve-worker-" + std::to_string(i),
                   [self, i](Env env) -> SimThread {
                     const ServeHostConfig& c = self->cfg_;
                     const SimDuration copy_cost = self->copy_cost_;
                     WorkerMark& m = self->marks_[static_cast<std::size_t>(i)];
                     for (;;) {
                       // Critical-path mark: the worker's delay-state clock
                       // just before it waits. The dequeue-time delta over
                       // this mark is the request's wake-side blame.
                       m.wait_at = env.now();
                       m.wait_snap = env.task().delay.snapshot(m.wait_at);
                       const std::uint64_t ev =
                           co_await env.epoll_wait(self->epfd_);
                       if (ev == kStopEvent) break;
                       const auto slot = static_cast<std::uint32_t>(ev);
                       PendingRequest& req = self->slab_[slot];
                       req.dequeued = env.now();
                       m.deq_snap = env.task().delay.snapshot(req.dequeued);
                       const bool is_set = (req.conn_and_op & kOpSetBit) != 0;
                       co_await env.compute(c.parse_cost);
                       co_await env.compute(c.lookup_cost);
                       co_await env.compute(is_set
                                                ? c.set_extra_cost + copy_cost
                                                : copy_cost);
                       self->complete(slot, env.now(), i,
                                      env.task().delay.snapshot(env.now()));
                     }
                     co_return;
                   });
  }
  schedule_arrival(arrival_.next_after(k_.now()));
}

void ServeHost::schedule_arrival(SimTime at) {
  if (at >= inject_until_) return;  // stop the process
  k_.engine().schedule_at(at, [this] {
    const SimTime now = k_.now();
    inject(now);
    schedule_arrival(arrival_.next_after(now));
  });
}

void ServeHost::inject(SimTime now) {
  const auto ci = static_cast<std::uint32_t>(
      rng_.next_below(cfg_.n_connections));
  Connection& conn = conns_[ci];
  if (free_head_ == kNoSlot) {
    // Slab full: shed (open-loop overload; never queue outside the model).
    ++shed_;
    if (conn.shed != 0xffffu) ++conn.shed;
    return;
  }
  const std::uint32_t slot = free_head_;
  PendingRequest& req = slab_[slot];
  free_head_ = req.next_free;
  ++live_slots_;
  req.arrival = now;
  req.conn_and_op = ci | (rng_.chance(cfg_.set_fraction) ? kOpSetBit : 0);
  ++conn.issued;
  ++conn.inflight;
  ++issued_;
  k_.epoll_post_external(epfd_, slot);
}

void ServeHost::complete(std::uint32_t slot, SimTime now, int worker,
                         const obs::TaskDelaySnapshot& done_snap) {
  PendingRequest& req = slab_[slot];
  const std::uint32_t ci = req.conn_and_op & ~kOpSetBit;
  const SimDuration lat = now - req.arrival;
  latency_.add(lat);
  if (obs::kTaskstatsEnabled) {
    // Critical-path blame: decompose this request's latency into the serving
    // worker's delay states. The wake window [wait_at, dequeued) and service
    // window [dequeued, now) are continuous spans of the worker's life, so
    // the snapshot-delta totals equal the window lengths exactly and the
    // categories below sum to `lat` by integer arithmetic.
    using S = obs::TaskDelayState;
    const WorkerMark& m = marks_[static_cast<std::size_t>(worker)];
    obs::TaskDelaySnapshot wake =
        obs::TaskDelaySnapshot::delta(m.deq_snap, m.wait_snap);
    const obs::TaskDelaySnapshot svc =
        obs::TaskDelaySnapshot::delta(done_snap, m.deq_snap);
    // Time the worker spent in the wake window before this request even
    // arrived is not the request's delay: subtract it from the blocked
    // states first (park, then sleep — the worker was blocked while idle),
    // spilling into the rest only if blocked time cannot cover it.
    SimDuration pre = req.arrival > m.wait_at ? req.arrival - m.wait_at : 0;
    for (const S s : {S::kVbParked, S::kEpollBlocked, S::kSleeping,
                      S::kFutexBlocked, S::kRunnable, S::kMigrating,
                      S::kBwdSkipDelayed, S::kOncpu}) {
      if (pre <= 0) break;
      SimDuration& w = wake.t[static_cast<std::size_t>(s)];
      const SimDuration take = w < pre ? w : pre;
      w -= take;
      pre -= take;
    }
    ++blame_.requests;
    blame_.backlog += m.wait_at > req.arrival ? m.wait_at - req.arrival : 0;
    blame_.wake_park += wake[S::kVbParked];
    blame_.wake_sleep +=
        wake[S::kEpollBlocked] + wake[S::kSleeping] + wake[S::kFutexBlocked];
    blame_.rq_wait += wake[S::kRunnable] + wake[S::kMigrating] +
                      svc[S::kRunnable] + svc[S::kMigrating];
    blame_.skip_delay += wake[S::kBwdSkipDelayed] + svc[S::kBwdSkipDelayed];
    blame_.service_cpu += svc[S::kOncpu];
    // Wake-side on-CPU time (epoll-entry overhead before the block) plus any
    // service-side blocked time (impossible for these workers, but counted
    // rather than dropped so the sum stays exact).
    blame_.other += wake[S::kOncpu] + svc[S::kVbParked] +
                    svc[S::kEpollBlocked] + svc[S::kSleeping] +
                    svc[S::kFutexBlocked];
  }
  // Attribution: queueing is epoll-ready-queue wait, service is everything
  // after the worker picked the request up, and scheduling delay is the
  // service time's excess over the request's ideal CPU cost (preemptions,
  // runqueue waits mid-request). All histogram adds — alloc-free.
  queueing_.add(req.dequeued - req.arrival);
  const SimDuration svc = now - req.dequeued;
  service_.add(svc);
  SimDuration ideal = cfg_.parse_cost + cfg_.lookup_cost + copy_cost_;
  if ((req.conn_and_op & kOpSetBit) != 0) ideal += cfg_.set_extra_cost;
  sched_delay_.add(svc > ideal ? svc - ideal : 0);
  Connection& conn = conns_[ci];
  ++conn.completed;
  --conn.inflight;
  conn.last_latency_us = static_cast<std::uint32_t>(
      std::min<SimDuration>(lat / 1000, 0xffffffff));
  ++completed_;
  req.next_free = free_head_;
  free_head_ = slot;
  --live_slots_;
}

void ServeHost::stop() {
  for (int i = 0; i < cfg_.n_workers; ++i) {
    k_.epoll_post_external(epfd_, kStopEvent);
  }
}

void ServeHost::begin_window() {
  latency_.clear();
  queueing_.clear();
  service_.clear();
  sched_delay_.clear();
  issued_ = 0;
  completed_ = 0;
  shed_ = 0;
  blame_ = BlameBreakdown{};
}

ConnectionFleet::ConnectionFleet(const FleetConfig& cfg) : cfg_(cfg) {
  EO_CHECK(cfg_.n_hosts > 0);
  EO_CHECK(cfg_.window > 0);
  conns_.resize(static_cast<std::size_t>(cfg_.n_hosts) *
                cfg_.host.n_connections);
}

FleetResult ConnectionFleet::run() {
  FleetResult res;
  res.total_connections = conns_.size();
  res.window = cfg_.window;
  const SimTime warm_end = cfg_.warmup;
  const SimTime win_end = cfg_.warmup + cfg_.window;

  // Each host fills its own outcome buffer; nothing shared is written while
  // hosts run (each kernel is single-threaded and the connection-slab slices
  // are disjoint), so the same body serves the sequential and the
  // parallel_for path, and the host-order merge below makes the result
  // independent of execution interleaving. (The progress sink is the one
  // shared object hosts touch mid-run; it is thread-safe and write-only.)
  struct HostOutcome {
    Histogram latency;
    Histogram queueing;
    Histogram service;
    Histogram sched_delay;
    std::uint64_t issued = 0;
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;
    sched::SchedStats stats;
    BlameBreakdown blame;
    bool violated = false;
    std::shared_ptr<obs::MetricsDoc> metrics;
    std::shared_ptr<obs::TaskstatsDoc> taskstats;
    /// Raw registry histograms, copied while the kernel was alive (the doc
    /// only carries quantile summaries, which do not merge).
    std::vector<std::pair<std::string, Histogram>> reg_hists;
  };
  const auto n_hosts = static_cast<std::size_t>(cfg_.n_hosts);
  std::vector<HostOutcome> outcomes(n_hosts);
  obs::ProgressSink* progress = cfg_.progress;

  const auto run_host = [&](std::size_t h) {
    HostOutcome& o = outcomes[h];
    // Per-host seed: a fixed mix of (fleet seed, host index), so the host
    // sequence is stable under reordering and fleet resizing.
    const std::uint64_t host_seed =
        Rng(cfg_.seed +
            0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(h) + 1))
            .next_u64();
    kern::KernelConfig kc = cfg_.kernel;
    kc.seed = host_seed;
    kern::Kernel k(kc);
    ServeHost host(k, cfg_.host, &conns_[h * cfg_.host.n_connections],
                   cfg_.arrival, host_seed);
    if (progress != nullptr) {
      obs::ProgressEvent ev;
      ev.kind = obs::ProgressEvent::Kind::kHostStart;
      ev.host = static_cast<int>(h);
      ev.n_hosts = cfg_.n_hosts;
      progress->emit(ev);
    }
    host.start(win_end);
    k.run_until(warm_end);
    host.begin_window();
    if (progress == nullptr) {
      k.run_until(win_end);
    } else {
      // Chunked run_until calls process exactly the same events as one call
      // — the feed reads counters between chunks without ever scheduling an
      // engine event, so the simulation is untouched.
      for (int q = 1; q <= 4; ++q) {
        k.run_until(warm_end + cfg_.window * q / 4);
        obs::ProgressEvent ev;
        ev.kind = obs::ProgressEvent::Kind::kHostProgress;
        ev.host = static_cast<int>(h);
        ev.n_hosts = cfg_.n_hosts;
        ev.fraction = static_cast<double>(q) / 4.0;
        ev.completed = host.completed();
        ev.shed = host.shed();
        progress->emit(ev);
      }
    }
    k.run_until(win_end + cfg_.drain);
    host.stop();
    k.run_to_exit(k.now() + 1_s);

    o.latency = host.latency();
    o.queueing = host.queueing();
    o.service = host.service();
    o.sched_delay = host.sched_delay();
    o.issued = host.issued();
    o.completed = host.completed();
    o.shed = host.shed();
    o.stats = k.stats();
    o.blame = host.blame();
    if (k.sampler().enabled()) {
      o.violated = k.watchdog().violations() != 0;
      // Every host's snapshot feeds the fleet aggregation (pre-PR 9 only a
      // representative host survived the run).
      o.metrics = std::make_shared<obs::MetricsDoc>(k.snapshot_metrics());
      const auto& refs = k.metric_registry().histograms();
      o.reg_hists.reserve(refs.size());
      for (const auto& r : refs) o.reg_hists.emplace_back(r.name, *r.hist);
      if (kc.taskstats) {
        // Blame rides the host document as plain counters — same names in
        // the same order on every host, so the fleet aggregator sums them
        // field-wise without knowing the struct.
        o.metrics->counters.push_back(
            {"serve.blame.requests", o.blame.requests});
#define EO_BLAME_COUNTER(name)              \
        o.metrics->counters.push_back(      \
            {"serve.blame." #name,          \
             static_cast<std::uint64_t>(o.blame.name)});
        EO_SERVE_BLAME_FIELDS(EO_BLAME_COUNTER)
#undef EO_BLAME_COUNTER
      }
    }
    if (kc.taskstats) {
      o.taskstats =
          std::make_shared<obs::TaskstatsDoc>(k.snapshot_taskstats());
    }
    if (progress != nullptr) {
      obs::ProgressEvent ev;
      ev.kind = obs::ProgressEvent::Kind::kHostFinish;
      ev.host = static_cast<int>(h);
      ev.n_hosts = cfg_.n_hosts;
      ev.completed = o.completed;
      ev.shed = o.shed;
      ev.watchdog_violations =
          k.sampler().enabled() ? k.watchdog().violations() : 0;
      progress->emit(ev);
    }
  };

  if (cfg_.jobs == 1 || n_hosts == 1) {
    for (std::size_t h = 0; h < n_hosts; ++h) run_host(h);
  } else {
    ThreadPool::parallel_for(n_hosts, run_host, cfg_.jobs);
  }

  // Merge in host order: every reduction below walks hosts 0..n-1, so the
  // result is independent of execution interleaving. The nominal simulated
  // duration normalizes the per-host VB/BWD activity rates.
  const double duration_s =
      static_cast<double>(cfg_.warmup + cfg_.window + cfg_.drain) / 1e9;
  obs::FleetAggregator agg;
  std::size_t pick = 0;  // representative: first violating host, else host 0
  bool have_violating = false;
  res.host_stats.reserve(n_hosts);
  for (std::size_t h = 0; h < n_hosts; ++h) {
    HostOutcome& o = outcomes[h];
    res.latency.merge(o.latency);
    res.queueing.merge(o.queueing);
    res.service.merge(o.service);
    res.sched_delay.merge(o.sched_delay);
    res.issued += o.issued;
    res.completed += o.completed;
    res.shed += o.shed;
    res.blame.merge(o.blame);
    res.host_blames.push_back(o.blame);
#define EO_FLEET_SUM(name) res.stats.name += o.stats.name;
    EO_SCHED_STATS_FIELDS(EO_FLEET_SUM)
#undef EO_FLEET_SUM
    res.host_stats.push_back(o.stats);
    if (o.violated && !have_violating) {
      pick = h;
      have_violating = true;
    }
    if (o.metrics != nullptr) {
      obs::FleetHostSample s;
      s.host = static_cast<int>(h);
      s.doc = o.metrics.get();
      s.histograms.reserve(o.reg_hists.size() + 4);
      for (const auto& [name, hist] : o.reg_hists) {
        s.histograms.emplace_back(name, &hist);
      }
      s.histograms.emplace_back("serve.latency", &o.latency);
      s.histograms.emplace_back("serve.queueing", &o.queueing);
      s.histograms.emplace_back("serve.service", &o.service);
      s.histograms.emplace_back("serve.sched_delay", &o.sched_delay);
      s.issued = o.issued;
      s.completed = o.completed;
      s.shed = o.shed;
      s.p99_ns = o.latency.p99();
      s.queue_p99_ns = o.queueing.p99();
      s.service_p99_ns = o.service.p99();
      s.sched_delay_p99_ns = o.sched_delay.p99();
      s.vb_park_rate = static_cast<double>(o.stats.vb_parks) / duration_s;
      s.bwd_skip_rate =
          static_cast<double>(o.stats.bwd_descheduled) / duration_s;
      agg.add_host(s);
    }
  }
  if (agg.n_hosts() > 0) {
    res.fleet_metrics =
        std::make_shared<obs::FleetMetricsDoc>(agg.finish());
    // The single-doc pick keeps working for consumers that want one host's
    // series; its violation ids get the same host tag the fleet doc carries.
    res.metrics = std::make_shared<obs::MetricsDoc>(obs::tag_host_violations(
        *outcomes[pick].metrics, static_cast<int>(pick)));
  }
  if (outcomes[pick].taskstats != nullptr) {
    res.taskstats = outcomes[pick].taskstats;
  }
  for (const Connection& c : conns_) {
    if (c.issued > 0) ++res.active_connections;
  }
  return res;
}

}  // namespace eo::traffic
