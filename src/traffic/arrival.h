// Open-loop arrival processes.
//
// Closed-loop clients (fig12's mutilate model) stop offering load when the
// server queues — exactly the regime where production tail latency is made.
// This module generates *open-loop* arrivals: request times are drawn from a
// stochastic intensity process that does not care how the server is doing.
// Three intensities are provided:
//
//  * Poisson  — homogeneous rate λ (the classical M/G/k client);
//  * on-off   — a 2-state MMPP: exponentially-dwelling ON (burst) and OFF
//               (lull) states whose rates average to λ, modelling
//               synchronized client bursts;
//  * diurnal  — a sinusoidally modulated λ(t), a compressed day/night cycle.
//
// Every draw comes from a seeded `common/rng` stream owned by the process,
// so an arrival sequence is a pure function of (config, seed): the traffic
// subsystem inherits the simulator's byte-identical determinism property.
// Time-varying intensities use Lewis-Shedler thinning against the peak-rate
// envelope, which is exact for any bounded λ(t).
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/units.h"

namespace eo::traffic {

enum class ArrivalKind : std::uint8_t {
  kPoisson,
  kOnOff,
  kDiurnal,
};

const char* to_string(ArrivalKind k);

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  /// Long-run mean arrival rate (aggregate over the connections this process
  /// drives), in arrivals per simulated second. Must be > 0.
  double rate_per_sec = 1000.0;

  // --- on-off (MMPP-2) parameters ---
  /// Long-run fraction of time spent in the ON (burst) state, in (0, 1].
  double on_fraction = 0.25;
  /// ON-state rate = burst_factor * rate_per_sec. The OFF-state rate is
  /// derived so the long-run mean stays rate_per_sec; requires
  /// burst_factor * on_fraction <= 1.
  double burst_factor = 3.0;
  /// Mean dwell time of one ON burst (exponential). OFF dwell is derived
  /// from on_fraction.
  SimDuration mean_burst = 10_ms;

  // --- diurnal parameters ---
  /// Peak deviation from the mean as a fraction of the mean, in [0, 1):
  /// λ(t) = rate_per_sec * (1 + amplitude * sin(2πt/period)).
  double diurnal_amplitude = 0.6;
  /// Length of one compressed "day".
  SimDuration diurnal_period = 1_s;
};

/// One arrival stream. Construction validates the config (EO_CHECK).
class ArrivalProcess {
 public:
  ArrivalProcess(const ArrivalConfig& cfg, std::uint64_t seed);

  /// Draws the next arrival time strictly after `now`. Calls must pass
  /// non-decreasing times (the fleet always passes the previous arrival).
  SimTime next_after(SimTime now);

  /// Instantaneous intensity at `t`, in arrivals per second. For the on-off
  /// process this reflects the state the process would be in at `t` given
  /// the dwell sequence drawn so far.
  double rate_at(SimTime t) const;

  const ArrivalConfig& config() const { return cfg_; }

 private:
  /// Advances the on-off state machine so state_until_ > t.
  void advance_state(SimTime t);

  ArrivalConfig cfg_;
  Rng rng_;
  // Derived on-off rates (per ns) and dwell means.
  double rate_on_ = 0.0;   ///< arrivals per second in ON
  double rate_off_ = 0.0;  ///< arrivals per second in OFF
  SimDuration mean_off_ = 0;
  bool on_ = true;
  SimTime state_until_ = 0;
  /// Peak envelope rate for thinning (diurnal).
  double peak_rate_ = 0.0;
};

}  // namespace eo::traffic
