// Offered-load vs tail-latency SLO curves.
//
// Open-loop serving results are read as a curve: sweep the offered load and
// report achieved throughput plus latency quantiles at each point. The
// interesting features are the p99/p999 knees — the load beyond which tail
// latency departs the service-time floor — and the highest load still inside
// a latency SLO. This module turns per-point `FleetResult`s into that curve
// and answers the SLO question; benches feed the points into the exp sweep
// JSON (`eo-bench-result`) for the machine-readable version.
#pragma once

#include <cstdio>
#include <vector>

#include "traffic/fleet.h"

namespace eo::traffic {

/// One point of the curve: an offered load (aggregate, all hosts) and the
/// measured outcome at that load.
struct SloPoint {
  double offered_ops_s = 0;
  double achieved_ops_s = 0;
  /// Arrivals shed because the request slab was full, as a fraction of
  /// arrivals offered in the window.
  double shed_fraction = 0;
  double mean_us = 0;
  double p50_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  // Where the tail went (p99 of each attribution histogram): queueing delay
  // before a worker picked the request up, service time, and the
  // scheduler-induced excess over the request's ideal CPU cost.
  double queue_p99_us = 0;
  double service_p99_us = 0;
  double sched_delay_p99_us = 0;
  std::uint64_t completed = 0;
};

class SloReporter {
 public:
  /// Collapses one fleet run into a curve point. `measure` is the interval
  /// completions were counted over (window + drain).
  static SloPoint summarize(double offered_ops_s, const FleetResult& r,
                            SimDuration measure);

  void add(const SloPoint& p) { curve_.push_back(p); }
  const std::vector<SloPoint>& curve() const { return curve_; }

  /// Highest offered load whose point meets `p99_slo_us` (0 if none does).
  /// The canonical SLO-capacity number for a VB-on vs VB-off comparison.
  double max_load_within(double p99_slo_us) const;

  /// Human-readable curve table.
  void print(std::FILE* out) const;

 private:
  std::vector<SloPoint> curve_;
};

}  // namespace eo::traffic
