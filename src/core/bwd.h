// Busy-waiting detection (paper Section 3.2).
//
// Every `bwd_interval` (100 µs) a per-core timer samples the core's LBR and
// PMCs. The detector flags spinning when, over the elapsed window:
//   1. all 16 LBR entries are identical backward branches,
//   2. there were no TLB misses, and
//   3. there were no L1D misses.
// Each heuristic can be disabled individually (for the ablation bench).
//
// The detector also receives the simulator's *ground truth* for the window
// (did the core spend the whole busy window spinning at one site?), which
// lets the accuracy tables (Tables 2 and 3) be computed as real confusion
// matrices over windows rather than asserted.
#pragma once

#include <cstdint>

#include "common/units.h"
#include "core/config.h"
#include "hw/lbr.h"
#include "hw/pmc.h"
#include "obs/metrics.h"
#include "trace/trace.h"

namespace eo::core {

/// Simulator-side ground truth about one monitoring window on one core.
struct BwdWindowTruth {
  SimDuration busy = 0;           ///< time the core executed anything
  SimDuration spin = 0;           ///< portion spent in spin segments
  hw::BranchSite dominant_site = hw::kVariedSites;
  bool multiple_spin_sites = false;
};

struct BwdVerdict {
  bool detected = false;          ///< heuristics fired
  bool ground_truth_spin = false; ///< window was genuinely pure spin
};

/// Confusion-matrix accumulator over windows with nonzero busy time.
struct BwdAccuracy {
  std::uint64_t windows = 0;
  std::uint64_t tp = 0;
  std::uint64_t fp = 0;
  std::uint64_t fn = 0;
  std::uint64_t tn = 0;

  void add(const BwdVerdict& v) {
    ++windows;
    if (v.ground_truth_spin) {
      v.detected ? ++tp : ++fn;
    } else {
      v.detected ? ++fp : ++tn;
    }
  }

  double sensitivity() const {
    const auto d = tp + fn;
    return d ? static_cast<double>(tp) / static_cast<double>(d) : 0.0;
  }
  double specificity() const {
    const auto d = fp + tn;
    return d ? static_cast<double>(tn) / static_cast<double>(d) : 0.0;
  }
};

class BwdDetector {
 public:
  explicit BwdDetector(const Features* features) : f_(features) {}

  /// Wires the event tracer: every evaluated window with busy time emits a
  /// kBwdSample record (may be null).
  void set_tracer(trace::Tracer* t) { tracer_ = t; }

  /// Wires the metric counters: windows evaluated and detections fired
  /// (counter increments stay valid from this const-qualified evaluate).
  void set_metrics(obs::Counter evaluations, obs::Counter detections) {
    m_evaluations_ = evaluations;
    m_detections_ = detections;
  }

  /// Evaluates one window. `truth` is only used for the ground-truth label;
  /// detection consumes nothing but the modeled hardware state. `core` and
  /// `tid` only label the trace record.
  BwdVerdict evaluate(const hw::LbrState& lbr, const hw::Pmc& pmc,
                      const BwdWindowTruth& truth, int core = -1,
                      std::int32_t tid = 0) const;

 private:
  const Features* f_;
  trace::Tracer* tracer_ = nullptr;
  obs::Counter m_evaluations_;
  obs::Counter m_detections_;
};

}  // namespace eo::core
