// Features/CostModel are header-only; anchor translation unit.
#include "core/config.h"
