#include "core/bwd.h"

namespace eo::core {

BwdVerdict BwdDetector::evaluate(const hw::LbrState& lbr, const hw::Pmc& pmc,
                                 const BwdWindowTruth& truth, int core,
                                 std::int32_t tid) const {
  BwdVerdict v;
  // Ground truth: the busy portion of the window was entirely one spin site.
  v.ground_truth_spin = truth.busy > 0 && truth.spin == truth.busy &&
                        !truth.multiple_spin_sites &&
                        truth.dominant_site != hw::kVariedSites;

  // Detection per the paper's three heuristics. A window with no retired
  // instructions (idle core) never fires.
  if (pmc.instructions() != 0) {
    bool detected = true;
    if (f_->bwd_use_lbr && !lbr.all_entries_identical_backward()) {
      detected = false;
    }
    if (f_->bwd_use_l1 && pmc.l1d_misses() != 0) detected = false;
    if (f_->bwd_use_tlb && pmc.tlb_misses() != 0) detected = false;
    v.detected = detected;
  }
  m_evaluations_.inc();
  if (v.detected) m_detections_.inc();
  if (truth.busy > 0) {
    EO_TRACE_EVENT(tracer_, core, trace::EventKind::kBwdSample, tid,
                   static_cast<std::uint64_t>(v.detected),
                   static_cast<std::uint64_t>(v.ground_truth_spin));
  }
  return v;
}

}  // namespace eo::core
