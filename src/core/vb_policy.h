// Virtual-blocking policy (paper Section 3.1).
//
// Decides, per blocking operation, whether to use virtual blocking or fall
// back to the vanilla sleep/wakeup path. The paper disables VB when it
// cannot help: "If the number of threads waiting on the bucket queue is
// smaller than the number of cores, i.e., all waiting threads are able to
// obtain a dedicated core when simultaneously waking up, VB is turned off."
//
// The mechanism itself (parking entities at the runqueue tail, restoring on
// wake) lives in sched::Runqueue and the Kernel; this class isolates the
// decision so it can be unit-tested and ablated.
#pragma once

#include "core/config.h"

namespace eo::core {

class VbPolicy {
 public:
  explicit VbPolicy(const Features* features) : f_(features) {}

  /// Should a futex_wait that would make the bucket hold `waiters_after`
  /// waiters (including the caller) block virtually?
  bool use_vb_futex(int waiters_after, int online_cores) const {
    if (!f_->vb_futex) return false;
    if (!f_->vb_auto_disable) return true;
    return waiters_after >= online_cores;
  }

  /// Same decision for an epoll_wait.
  bool use_vb_epoll(int waiters_after, int online_cores) const {
    if (!f_->vb_epoll) return false;
    if (!f_->vb_auto_disable) return true;
    return waiters_after >= online_cores;
  }

 private:
  const Features* f_;
};

}  // namespace eo::core
