// Virtual-blocking policy (paper Section 3.1).
//
// Decides, per blocking operation, whether to use virtual blocking or fall
// back to the vanilla sleep/wakeup path. The paper disables VB when it
// cannot help: "If the number of threads waiting on the bucket queue is
// smaller than the number of cores, i.e., all waiting threads are able to
// obtain a dedicated core when simultaneously waking up, VB is turned off."
//
// The mechanism itself (parking entities at the runqueue tail, restoring on
// wake) lives in sched::Runqueue and the Kernel; this class isolates the
// decision so it can be unit-tested and ablated.
#pragma once

#include <cstdint>

#include "core/config.h"
#include "obs/metrics.h"
#include "trace/trace.h"

namespace eo::core {

class VbPolicy {
 public:
  explicit VbPolicy(const Features* features) : f_(features) {}

  /// Wires the event tracer: decisions emit kVbDecision records (may be
  /// null, and core/tid may be omitted by callers without that context).
  void set_tracer(trace::Tracer* t) { tracer_ = t; }

  /// Wires the metric counters: decisions taken and the VB-chosen subset.
  void set_metrics(obs::Counter decisions, obs::Counter chose_vb) {
    m_decisions_ = decisions;
    m_chose_vb_ = chose_vb;
  }

  /// Should a futex_wait that would make the bucket hold `waiters_after`
  /// waiters (including the caller) block virtually?
  bool use_vb_futex(int waiters_after, int online_cores, int core = -1,
                    std::int32_t tid = 0) const {
    return decide(f_->vb_futex, waiters_after, online_cores, core, tid);
  }

  /// Same decision for an epoll_wait.
  bool use_vb_epoll(int waiters_after, int online_cores, int core = -1,
                    std::int32_t tid = 0) const {
    return decide(f_->vb_epoll, waiters_after, online_cores, core, tid);
  }

 private:
  bool decide(bool feature_on, int waiters_after, int online_cores, int core,
              std::int32_t tid) const {
    bool vb = false;
    if (feature_on) {
      // "If the number of threads waiting on the bucket queue is smaller
      // than the number of cores ... VB is turned off."
      vb = !f_->vb_auto_disable || waiters_after >= online_cores;
    }
    m_decisions_.inc();
    if (vb) m_chose_vb_.inc();
    EO_TRACE_EVENT(tracer_, core, trace::EventKind::kVbDecision, tid,
                   static_cast<std::uint64_t>(vb),
                   static_cast<std::uint64_t>(waiters_after));
    return vb;
  }

  const Features* f_;
  trace::Tracer* tracer_ = nullptr;
  obs::Counter m_decisions_;
  obs::Counter m_chose_vb_;
};

}  // namespace eo::core
