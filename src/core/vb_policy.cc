#include "core/vb_policy.h"

// VbPolicy is header-only (the decision sits on the futex/epoll blocking
// path); this TU anchors the header for the build.
