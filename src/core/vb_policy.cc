// VbPolicy is header-only; anchor translation unit.
#include "core/vb_policy.h"
