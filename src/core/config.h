// Simulation feature flags and calibrated cost model.
//
// `Features` selects which of the paper's mechanisms are active and whether
// the workload runs in a container (native host kernel) or a KVM guest
// (where PLE exists). `CostModel` carries every per-operation cost the
// simulated kernel charges; the headline constants are calibrated to the
// paper's measurements (1.5 µs direct context switch; multi-µs vanilla
// wakeup path; ~hundreds of ns for VB operations).
#pragma once

#include "common/units.h"

namespace eo::core {

/// Execution environment of the simulated workload.
enum class ExecMode {
  kContainer,  ///< native Linux / container: no hardware spin detection
  kVm,         ///< KVM guest: PLE available (for PAUSE-based spins only)
};

struct Features {
  /// Virtual blocking in futex (Section 3.1).
  bool vb_futex = false;
  /// Virtual blocking in epoll (Section 4.2).
  bool vb_epoll = false;
  /// Auto-disable VB when a bucket's waiter count is below the core count
  /// ("all waiting threads are able to obtain a dedicated core").
  bool vb_auto_disable = true;
  /// Busy-waiting detection (Section 3.2).
  bool bwd = false;
  /// BWD monitoring interval (paper: 100 µs, "the minimum interval that does
  /// not impose noticeable overhead").
  SimDuration bwd_interval = 100_us;
  /// Which BWD heuristics are required (for the ablation bench). All three
  /// are on by default: uniform LBR + no L1D misses + no TLB misses.
  bool bwd_use_lbr = true;
  bool bwd_use_l1 = true;
  bool bwd_use_tlb = true;
  /// Pause-loop exiting (only meaningful in kVm mode).
  bool ple = false;
  ExecMode mode = ExecMode::kContainer;

  /// Convenience presets matching the paper's configurations.
  static Features vanilla() { return Features{}; }
  static Features optimized() {
    Features f;
    f.vb_futex = true;
    f.vb_epoll = true;
    f.bwd = true;
    return f;
  }
  static Features vm_vanilla() {
    Features f;
    f.mode = ExecMode::kVm;
    return f;
  }
  static Features vm_ple() {
    Features f;
    f.mode = ExecMode::kVm;
    f.ple = true;
    return f;
  }
  static Features vm_optimized() {
    Features f = optimized();
    f.mode = ExecMode::kVm;
    return f;
  }
};

/// Per-operation costs charged by the simulated kernel, in nanoseconds.
struct CostModel {
  /// Direct cost of a context switch (paper Section 2.3: ~1.5 µs, dominated
  /// by user/kernel mode transitions and runqueue operations).
  SimDuration context_switch = 1500;

  /// Simulated atomic instruction (CAS / fetch-add / exchange / load / store).
  SimDuration atomic_op = 15;
  /// One iteration's predicate check when entering/leaving a spin loop.
  SimDuration spin_check = 10;
  /// Coherence delay before a running spinner observes a remote store.
  SimDuration spin_observe = 100;

  /// User->kernel transition for a blocking syscall.
  SimDuration syscall_entry = 300;
  /// futex_wait path: hash, validate, queue, deactivate, pick next.
  SimDuration futex_wait_setup = 700;
  /// Hold time of a futex hash-bucket lock per operation.
  SimDuration bucket_lock_hold = 200;
  /// Moving one waiter from the bucket queue to wake_q (under bucket lock).
  SimDuration wake_q_move = 150;
  /// try_to_wake_up base cost per waiter: state transition + activation +
  /// preemption check, executed serially in the waker's context.
  SimDuration ttwu_base = 2500;
  /// Idlest-core scan cost per online core during wakeup placement.
  SimDuration ttwu_scan_per_core = 100;
  /// Hold time of a per-core runqueue lock.
  SimDuration rq_lock_hold = 500;

  /// VB operations (no sleep queues, no core selection, no rq-lock storms).
  SimDuration vb_park = 150;
  SimDuration vb_unpark = 150;
  /// Quantum a VB-parked thread runs to check its flag when every thread on
  /// the core is blocked.
  SimDuration vb_check_quantum = 1000;

  /// Latency for an idle core to notice a newly enqueued task (IPI + wakeup
  /// from idle).
  SimDuration idle_kick = 1500;
  /// Cost of the scheduler pick path itself.
  SimDuration sched_pick = 200;

  /// Per-fire cost of the BWD monitoring timer (interrupt + LBR/PMC read).
  SimDuration bwd_timer_fire = 300;

  /// Fixed cost applied to a migrated task on its next run, on top of the
  /// cache-model refill penalty.
  SimDuration migration_base = 2000;
};

}  // namespace eo::core
