#include "exp/runner.h"

#include <cstdio>
#include <mutex>
#include <ostream>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace eo::exp {

double CellOutcome::value(const std::string& key, double def) const {
  for (const auto& [k, v] : extra) {
    if (k == key) return v;
  }
  return def;
}

void CellOutcome::set(const std::string& key, double v) {
  for (auto& [k, ev] : extra) {
    if (k == key) {
      ev = v;
      return;
    }
  }
  extra.emplace_back(key, v);
}

std::size_t Outcomes::flat_of(std::initializer_list<std::size_t> idx) const {
  EO_CHECK(idx.size() == dims_.size());
  std::size_t flat = 0;
  std::size_t axis = 0;
  for (const std::size_t i : idx) {
    EO_CHECK(i < dims_[axis]);
    flat = flat * dims_[axis] + i;
    ++axis;
  }
  return flat;
}

const CellOutcome& Outcomes::at(std::initializer_list<std::size_t> idx) const {
  return cells_[flat_of(idx)];
}

CellOutcome& Outcomes::at(std::initializer_list<std::size_t> idx) {
  return cells_[flat_of(idx)];
}

void ExperimentRunner::list(std::ostream& os) const {
  for (const Cell& c : sweep_.expand()) {
    const std::string id = c.id();
    if (!opts_.filter.empty() && id.find(opts_.filter) == std::string::npos) {
      continue;
    }
    os << id << "\n";
  }
}

Outcomes ExperimentRunner::run(const RunFn& fn) const {
  std::vector<Cell> cells = sweep_.expand();
  std::vector<CellOutcome> out(cells.size());
  std::vector<std::size_t> active;
  active.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out[i].cell = cells[i];
    const bool match = opts_.filter.empty() ||
                       out[i].cell.id().find(opts_.filter) != std::string::npos;
    if (match) {
      active.push_back(i);
    } else {
      out[i].skipped = true;
    }
  }

  std::mutex progress_mu;
  std::size_t done = 0;
  obs::ProgressSink* sink = opts_.sink.get();
  ThreadPool::parallel_for(
      active.size(),
      [&](std::size_t j) {
        CellOutcome& o = out[active[j]];
        if (sink != nullptr) {
          obs::ProgressEvent ev;
          ev.kind = obs::ProgressEvent::Kind::kCellStart;
          ev.label = o.cell.id();
          ev.total = active.size();
          sink->emit(ev);
        }
        metrics::RunConfig cfg = o.cell.cfg;
        CellRun r;
        int attempt = 0;
        for (;;) {
          ++attempt;
          r = fn(o.cell, cfg);
          if (r.not_applicable || r.run.completed ||
              attempt >= opts_.max_attempts) {
            break;
          }
          // Missed the simulated-time deadline: stretch and rerun.
          cfg.deadline = static_cast<SimTime>(
              static_cast<double>(cfg.deadline) * opts_.deadline_factor);
        }
        o.run = std::move(r.run);
        o.extra = std::move(r.extra);
        o.not_applicable = r.not_applicable;
        o.attempts = attempt;
        o.final_deadline = cfg.deadline;
        if (sink != nullptr) {
          std::size_t done_now;
          {
            std::lock_guard<std::mutex> lk(progress_mu);
            done_now = ++done;
          }
          obs::ProgressEvent ev;
          ev.kind = obs::ProgressEvent::Kind::kCellFinish;
          ev.label = o.cell.id();
          ev.done = done_now;
          ev.total = active.size();
          ev.not_applicable = o.not_applicable;
          ev.ok = o.run.completed;
          ev.exec_ms = o.ms();
          ev.attempts = o.attempts;
          sink->emit(ev);
        } else if (opts_.progress) {
          std::lock_guard<std::mutex> lk(progress_mu);
          ++done;
          if (o.not_applicable) {
            std::fprintf(stderr, "[%zu/%zu] %s: n/a\n", done, active.size(),
                         o.cell.id().c_str());
          } else {
            std::fprintf(stderr, "[%zu/%zu] %s: %s exec=%.2fms%s\n", done,
                         active.size(), o.cell.id().c_str(),
                         o.run.completed ? "ok" : "INCOMPLETE", o.ms(),
                         o.attempts > 1 ? " (retried)" : "");
          }
        }
      },
      opts_.jobs);

  return Outcomes(sweep_.dims(), std::move(out));
}

}  // namespace eo::exp
