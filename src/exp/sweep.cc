#include "exp/sweep.h"

#include "common/logging.h"

namespace eo::exp {

std::string Cell::id() const {
  std::string out;
  for (std::size_t i = 0; i < coords.size(); ++i) {
    if (i > 0) out += '/';
    out += coords[i];
  }
  return out;
}

Sweep& Sweep::axis(std::string axis_name, std::vector<std::string> labels,
                   Apply apply) {
  EO_CHECK(!labels.empty());
  for (const auto& l : labels) EO_CHECK(!l.empty());
  axes_.push_back(Axis{std::move(axis_name), std::move(labels),
                       std::move(apply)});
  return *this;
}

std::size_t Sweep::size() const {
  std::size_t n = 1;
  for (const auto& a : axes_) n *= a.labels.size();
  return n;
}

std::vector<std::size_t> Sweep::dims() const {
  std::vector<std::size_t> d;
  d.reserve(axes_.size());
  for (const auto& a : axes_) d.push_back(a.labels.size());
  return d;
}

std::size_t Sweep::flat_index(std::initializer_list<std::size_t> idx) const {
  EO_CHECK(idx.size() == axes_.size());
  std::size_t flat = 0;
  std::size_t axis = 0;
  for (const std::size_t i : idx) {
    EO_CHECK(i < axes_[axis].labels.size());
    flat = flat * axes_[axis].labels.size() + i;
    ++axis;
  }
  return flat;
}

std::vector<Cell> Sweep::expand() const {
  const std::size_t n = size();
  std::vector<Cell> cells;
  cells.reserve(n);
  std::vector<std::size_t> idx(axes_.size(), 0);
  for (std::size_t flat = 0; flat < n; ++flat) {
    Cell c;
    c.flat = flat;
    c.idx = idx;
    c.cfg = base_;
    c.coords.reserve(axes_.size());
    for (std::size_t a = 0; a < axes_.size(); ++a) {
      c.coords.push_back(axes_[a].labels[idx[a]]);
      if (axes_[a].apply) axes_[a].apply(c.cfg, idx[a]);
    }
    cells.push_back(std::move(c));
    // Odometer increment, last axis fastest.
    for (std::size_t a = axes_.size(); a-- > 0;) {
      if (++idx[a] < axes_[a].labels.size()) break;
      idx[a] = 0;
    }
  }
  return cells;
}

}  // namespace eo::exp
