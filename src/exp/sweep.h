// Declarative sweep grids for the bench harnesses.
//
// A bench declares its experiment as a `Sweep`: a base `metrics::RunConfig`
// plus named axes (benchmark × threads × cores/SMT × features × seed × ...).
// Each axis value carries a label (used for table headers, cell ids, JSON
// coordinates, and `--filter`) and an optional applier that edits the
// RunConfig for that value. `expand()` produces the full cross product in a
// stable row-major order (first axis slowest), which is the canonical job
// order of the ExperimentRunner and the cell order of the JSON document —
// results are therefore independent of `--jobs`.
#pragma once

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "metrics/experiment.h"

namespace eo::exp {

/// One point of a sweep grid.
struct Cell {
  /// Row-major flattened index into the grid (stable job order).
  std::size_t flat = 0;
  /// Per-axis value index, one entry per axis.
  std::vector<std::size_t> idx;
  /// Per-axis value label, one entry per axis.
  std::vector<std::string> coords;
  /// Base config with every axis applier applied, in axis order.
  metrics::RunConfig cfg;

  /// Value index on the given axis (benches use this to look up their own
  /// per-axis data, e.g. a BenchmarkSpec).
  std::size_t at(std::size_t axis) const { return idx[axis]; }

  /// Coordinate path, e.g. "ocean/32T(opt-8c)" — the `--filter` match target.
  std::string id() const;
};

class Sweep {
 public:
  /// Edits the RunConfig for the axis value with the given index.
  using Apply = std::function<void(metrics::RunConfig&, std::size_t)>;

  explicit Sweep(std::string name) : name_(std::move(name)) {}

  /// Sets the config every cell starts from (default-constructed otherwise).
  Sweep& base(const metrics::RunConfig& rc) {
    base_ = rc;
    return *this;
  }

  /// Appends an axis. Labels must be non-empty and unique within the axis;
  /// `apply` may be null for axes that only select bench-side data.
  Sweep& axis(std::string axis_name, std::vector<std::string> labels,
              Apply apply = nullptr);

  const std::string& name() const { return name_; }
  const metrics::RunConfig& base_config() const { return base_; }
  std::size_t n_axes() const { return axes_.size(); }
  const std::string& axis_name(std::size_t axis) const {
    return axes_[axis].name;
  }
  const std::vector<std::string>& labels(std::size_t axis) const {
    return axes_[axis].labels;
  }
  /// Number of cells (product of axis sizes; 1 for a zero-axis sweep).
  std::size_t size() const;
  /// Axis sizes, outermost first.
  std::vector<std::size_t> dims() const;
  /// Row-major flattened index of a coordinate tuple.
  std::size_t flat_index(std::initializer_list<std::size_t> idx) const;

  /// Expands the grid: cells in row-major order, first axis slowest.
  std::vector<Cell> expand() const;

 private:
  struct Axis {
    std::string name;
    std::vector<std::string> labels;
    Apply apply;
  };

  std::string name_;
  metrics::RunConfig base_;
  std::vector<Axis> axes_;
};

}  // namespace eo::exp
