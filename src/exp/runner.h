// Experiment runner: executes a Sweep's cells across host threads.
//
// The runner expands the grid, applies the `--filter` substring to cell ids,
// and dispatches the surviving cells to `ThreadPool::parallel_for`. Each cell
// writes its outcome into a slot addressed by its stable flat index, so the
// result set is identical for any `--jobs` value. A run that misses its
// simulated-time deadline is retried with the deadline stretched by
// `deadline_factor`, up to `max_attempts` total attempts; the final deadline
// and attempt count are recorded in the outcome.
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exp/sweep.h"
#include "metrics/experiment.h"
#include "obs/progress.h"

namespace eo::exp {

/// What a bench's run function returns for one cell: the simulation result
/// plus named derived values (throughput, latency quantiles, ...) that land
/// in the table and the JSON `extra` block.
struct CellRun {
  metrics::RunResult run;
  /// Derived per-cell values in insertion order (kept stable for JSON).
  std::vector<std::pair<std::string, double>> extra;
  /// Cell exists in the grid but the configuration is meaningless
  /// (e.g. PLE in container mode); never retried, rendered as "-".
  bool not_applicable = false;

  CellRun() = default;
  // Implicit: benches return `run_experiment(...)` directly.
  CellRun(metrics::RunResult r) : run(std::move(r)) {}  // NOLINT

  CellRun& set(const std::string& key, double v) {
    extra.emplace_back(key, v);
    return *this;
  }
  static CellRun na() {
    CellRun c;
    c.not_applicable = true;
    return c;
  }
};

/// One executed (or skipped) cell of the grid.
struct CellOutcome {
  Cell cell;
  metrics::RunResult run;
  std::vector<std::pair<std::string, double>> extra;
  /// Excluded by `--filter`; never executed.
  bool skipped = false;
  bool not_applicable = false;
  /// Number of executions (>1 means deadline retries; 0 if never run).
  int attempts = 0;
  /// Deadline in effect on the last attempt.
  SimTime final_deadline = 0;

  bool ran() const { return !skipped && !not_applicable; }
  double ms() const { return static_cast<double>(run.exec_time) / 1e6; }
  double value(const std::string& key, double def = 0.0) const;
  void set(const std::string& key, double v);
};

struct RunnerOptions {
  /// Host threads for the fan-out; 0 = hardware_concurrency.
  std::size_t jobs = 0;
  /// Substring match against cell ids; empty runs everything.
  std::string filter;
  /// Total attempts per cell (first run + retries) before reporting
  /// the run as incomplete.
  int max_attempts = 3;
  /// Deadline multiplier applied on each retry.
  double deadline_factor = 4.0;
  /// Stream per-cell progress lines to stderr.
  bool progress = true;
  /// Structured progress feed (cell started/finished). When set it replaces
  /// the stderr lines above — the line emitter reproduces them verbatim —
  /// and benches can hand the same sink to their fleets for host-level
  /// events. Shared: the runner emits from its worker threads.
  std::shared_ptr<obs::ProgressSink> sink;
};

/// Grid-shaped outcome container, cells in row-major flat order.
class Outcomes {
 public:
  Outcomes() = default;
  Outcomes(std::vector<std::size_t> dims, std::vector<CellOutcome> cells)
      : dims_(std::move(dims)), cells_(std::move(cells)) {}

  const std::vector<std::size_t>& dims() const { return dims_; }
  std::size_t size() const { return cells_.size(); }
  const CellOutcome& operator[](std::size_t flat) const { return cells_[flat]; }
  CellOutcome& operator[](std::size_t flat) { return cells_[flat]; }
  /// Access by coordinate tuple (must match the sweep's axis count).
  const CellOutcome& at(std::initializer_list<std::size_t> idx) const;
  CellOutcome& at(std::initializer_list<std::size_t> idx);

  auto begin() const { return cells_.begin(); }
  auto end() const { return cells_.end(); }
  auto begin() { return cells_.begin(); }
  auto end() { return cells_.end(); }

 private:
  std::size_t flat_of(std::initializer_list<std::size_t> idx) const;

  std::vector<std::size_t> dims_;
  std::vector<CellOutcome> cells_;
};

class ExperimentRunner {
 public:
  /// Executes one cell. `cfg` is the cell's config with the current deadline
  /// (already stretched on retries) — honor `cfg.deadline`, not `cell.cfg`.
  using RunFn =
      std::function<CellRun(const Cell& cell, const metrics::RunConfig& cfg)>;

  ExperimentRunner(Sweep sweep, RunnerOptions opts)
      : sweep_(std::move(sweep)), opts_(std::move(opts)) {}

  const Sweep& sweep() const { return sweep_; }

  /// Prints one cell id per line (the `--list` output).
  void list(std::ostream& os) const;

  /// Runs every non-filtered cell and returns the full grid of outcomes.
  Outcomes run(const RunFn& fn) const;

 private:
  Sweep sweep_;
  RunnerOptions opts_;
};

}  // namespace eo::exp
