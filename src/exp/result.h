// Machine-readable bench results (`BENCH_<id>.json`).
//
// Every bench binary can write its full result grid as a versioned JSON
// document via `--json=<path>`. The document is deterministic: two runs with
// the same scale and seed produce byte-identical files except for the `meta`
// block (git revision, host info, host-timing numbers). Layout:
//
//   {
//     "schema": "eo-bench-result",
//     "schema_version": 1,
//     "bench": "fig09_vb_blocking",
//     "scale": 1.0,
//     "seed": 7,
//     "meta": { "git_rev": "...", ... },          // volatile, host-specific
//     "sweeps": [
//       {
//         "name": "blocking",
//         "axes": [ { "name": "benchmark", "values": ["hist", ...] }, ... ],
//         "cells": [                              // row-major, axis 0 slowest
//           {
//             "coords": ["hist", "32T(opt)"],
//             "completed": true, "attempts": 1,
//             "exec_ms": ..., "utilization_percent": ..., "spin_busy_ms": ...,
//             "context_switches": ..., "migrations_in_node": ...,
//             "migrations_cross_node": ..., "vb_parks": ...,
//             "wakeup_p50_ns": ..., "wakeup_p95_ns": ..., "wakeup_p99_ns": ...,
//             "wakeup_count": ...,
//             "bwd": { "windows": ..., "tp": ..., "fp": ..., "fn": ..., "tn": ... },
//             "extra": { "tput_ops_s": ..., ... } // bench-specific derived values
//           },
//           { "coords": [...], "na": true },      // grid point not applicable
//           { "coords": [...], "skipped": true }  // excluded by --filter
//         ]
//       }
//     ]
//   }
//
// `validate_result_json` structurally checks a document against this schema
// (the `json_check` tool and the bench_json_smoke ctest use it).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/runner.h"
#include "exp/sweep.h"

namespace eo::exp {

inline constexpr int kResultSchemaVersion = 1;
inline constexpr const char* kResultSchemaName = "eo-bench-result";

/// One point of a bench's perf trajectory: the gated micro results of one
/// `--gate` run, stamped with the revision and a caller-supplied timestamp.
/// Recorded under `meta.history` (volatile like the rest of `meta`, so the
/// determinism/golden guarantees are unaffected).
struct PerfHistoryEntry {
  std::string git_rev;
  std::string stamp;  ///< caller-supplied wall-clock label, e.g. ISO date
  /// Measured ns/item per gated micro, registration order.
  std::vector<std::pair<std::string, double>> ns_per_item;
};

class ResultDoc {
 public:
  /// Oldest history entries beyond this many are dropped at append time, so
  /// the trajectory in a long-lived BENCH json stays bounded.
  static constexpr std::size_t kMaxHistory = 50;

  ResultDoc(std::string bench_id, double scale, std::uint64_t seed)
      : bench_id_(std::move(bench_id)), scale_(scale), seed_(seed) {}

  /// Appends one sweep's grid. The outcomes must come from a runner built on
  /// this sweep (cell count = product of axis sizes).
  void add_sweep(const Sweep& sweep, const Outcomes& outcomes);

  /// Volatile host metadata (excluded from determinism guarantees). The git
  /// revision is added automatically at render time unless already set.
  void set_meta(const std::string& key, const std::string& value);
  void set_meta(const std::string& key, double value);

  /// Appends one perf-trajectory point to `meta.history` (capped at
  /// kMaxHistory, oldest dropped). Callers carrying a trajectory forward
  /// append the prior file's entries first, then the fresh one.
  void add_history(PerfHistoryEntry entry);
  const std::vector<PerfHistoryEntry>& history() const { return history_; }

  /// Renders the document; output is deterministic given the same inputs.
  std::string render() const;

  /// Validates and writes the document; returns false (with `err`) on an
  /// invalid document or an I/O failure.
  bool write(const std::string& path, std::string* err) const;

 private:
  struct SweepBlock {
    std::string name;
    std::vector<std::pair<std::string, std::vector<std::string>>> axes;
    std::vector<CellOutcome> cells;
  };
  struct MetaEntry {
    std::string key;
    std::string str;
    double num = 0.0;
    bool is_num = false;
  };

  std::string bench_id_;
  double scale_;
  std::uint64_t seed_;
  std::vector<MetaEntry> meta_;
  std::vector<PerfHistoryEntry> history_;
  std::vector<SweepBlock> sweeps_;
};

/// Parses `meta.history` out of a previously written result document (for
/// benches carrying a perf trajectory across runs). Returns an empty vector
/// when the text is not a result document or has no history.
std::vector<PerfHistoryEntry> parse_history(const std::string& text);

/// Structural validation of a rendered result document.
bool validate_result_json(const std::string& text, std::string* err);

/// `git rev-parse HEAD` of the working tree, or "unknown".
std::string current_git_rev();

}  // namespace eo::exp
