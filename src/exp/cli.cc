#include "exp/cli.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "sched/policy.h"

namespace eo::exp {

namespace {

/// Strict positive-double parse: the whole string must be consumed.
bool parse_scale_str(const std::string& s, double* out) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size() || s.empty()) return false;
  if (!(v > 0)) return false;
  *out = v;
  return true;
}

/// Strict non-negative integer parse.
bool parse_uint_str(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  if (s[0] == '-' || s[0] == '+') return false;
  *out = v;
  return true;
}

/// "cfs|fifo|rr|pcfs" from the policy registry, for messages.
std::string policy_list() {
  std::string out;
  for (const auto& name : sched::policy_names()) {
    if (!out.empty()) out += '|';
    out += name;
  }
  return out;
}

}  // namespace

std::shared_ptr<obs::ProgressSink> Cli::progress_sink() const {
  return obs::make_progress_sink(progress);
}

RunnerOptions Cli::runner_options() const {
  RunnerOptions o;
  o.jobs = jobs;
  o.filter = filter;
  o.progress = progress != "none";
  // "line" keeps the runner's own stderr lines (byte-identical to the line
  // sink's cell events); only the structured mode needs a sink here.
  if (progress == "jsonl") o.sink = progress_sink();
  return o;
}

std::string Cli::usage(const CliSpec& spec) {
  std::ostringstream os;
  os << "usage: " << spec.id << " [scale] [options]\n"
     << "  " << spec.summary << "\n\n"
     << "  scale                positive work multiplier (default "
     << spec.default_scale << ")\n"
     << "  --json=<path>        write the result grid as a versioned JSON "
        "document\n"
     << "  --jobs=N             host threads for the sweep (default: all "
        "cores)\n"
     << "  --filter=<substr>    run only cells whose id contains <substr>\n"
     << "  --list               print the cell ids and exit\n"
     << "  --seed=N             workload seed (default " << spec.default_seed
     << ")\n"
     << "  --sched=<policy>     scheduler policy: " << policy_list()
     << " (default cfs)\n";
  if (spec.supports_trace) {
    os << "  --trace=<path>       capture an event trace of one "
          "representative run\n"
       << "  --trace-format=F     trace export format: json|csv (default "
          "json)\n"
       << "  --trace-only         skip the figure grid, run only the traced "
          "config\n";
  }
  os << "  --metrics[=<path>]   sample live telemetry per run; with a path, "
        "also\n"
        "                       export one representative eo-metrics "
        "document\n"
     << "  --metrics-interval=<us>\n"
        "                       sampling period in simulated microseconds "
        "(default 1000)\n"
     << "  --metrics-format=F   metrics export format: json|csv|report "
        "(default json)\n";
  if (spec.supports_fleet) {
    os << "  --fleet-metrics[=<path>]\n"
          "                       merge every host's telemetry into one\n"
          "                       eo-metrics-fleet document (implies "
          "--metrics);\n"
          "                       with a path, export the merged document\n";
  }
  os << "  --taskstats[=<path>] per-task delay accounting: embed the "
        "eo-taskstats\n"
        "                       section in metrics documents (implies "
        "--metrics);\n"
        "                       with a path, export a folded state "
        "flamegraph\n"
     << "  --progress=MODE      live progress feed: none|line|jsonl "
        "(default line)\n"
     << "  --help               show this help\n";
  return os.str();
}

bool Cli::parse_into(int argc, char** argv, const CliSpec& spec, Cli* out,
                     std::string* err) {
  out->scale = spec.default_scale;
  out->seed = spec.default_seed;
  bool have_scale = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.empty()) continue;
    if (arg[0] != '-') {
      if (have_scale) {
        *err = "unexpected extra positional argument '" + arg + "'";
        return false;
      }
      if (!parse_scale_str(arg, &out->scale)) {
        *err = "invalid scale '" + arg + "' (want a positive number)";
        return false;
      }
      have_scale = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      out->json_path = arg.substr(7);
      if (out->json_path.empty()) {
        *err = "empty --json= path";
        return false;
      }
    } else if (arg.rfind("--jobs=", 0) == 0) {
      std::uint64_t n = 0;
      if (!parse_uint_str(arg.substr(7), &n)) {
        *err = "invalid --jobs value '" + arg.substr(7) +
               "' (want a non-negative integer)";
        return false;
      }
      out->jobs = static_cast<std::size_t>(n);
    } else if (arg.rfind("--filter=", 0) == 0) {
      out->filter = arg.substr(9);
    } else if (arg == "--list") {
      out->list = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      if (!parse_uint_str(arg.substr(7), &out->seed)) {
        *err = "invalid --seed value '" + arg.substr(7) +
               "' (want a non-negative integer)";
        return false;
      }
    } else if (arg.rfind("--sched=", 0) == 0) {
      out->sched = arg.substr(8);
      const auto& names = sched::policy_names();
      bool known = false;
      for (const auto& name : names) known = known || name == out->sched;
      if (!known) {
        *err = "--sched must be one of " + policy_list() + " (got '" +
               out->sched + "')";
        return false;
      }
    } else if (spec.supports_trace && arg.rfind("--trace=", 0) == 0) {
      out->trace_path = arg.substr(8);
      if (out->trace_path.empty()) {
        *err = "empty --trace= path";
        return false;
      }
    } else if (spec.supports_trace && arg.rfind("--trace-format=", 0) == 0) {
      out->trace_format = arg.substr(15);
      if (out->trace_format != "json" && out->trace_format != "csv") {
        *err = "--trace-format must be 'json' or 'csv' (got '" +
               out->trace_format + "')";
        return false;
      }
    } else if (spec.supports_trace && arg == "--trace-only") {
      out->trace_only = true;
    } else if (arg == "--metrics") {
      out->metrics = true;
    } else if (arg.rfind("--metrics=", 0) == 0) {
      out->metrics = true;
      out->metrics_path = arg.substr(10);
      if (out->metrics_path.empty()) {
        *err = "empty --metrics= path";
        return false;
      }
    } else if (arg.rfind("--metrics-interval=", 0) == 0) {
      if (!parse_uint_str(arg.substr(19), &out->metrics_interval_us) ||
          out->metrics_interval_us == 0) {
        *err = "invalid --metrics-interval value '" + arg.substr(19) +
               "' (want a positive integer, microseconds)";
        return false;
      }
    } else if (spec.supports_fleet && arg == "--fleet-metrics") {
      out->fleet_metrics = true;
      out->metrics = true;
    } else if (spec.supports_fleet && arg.rfind("--fleet-metrics=", 0) == 0) {
      out->fleet_metrics = true;
      out->metrics = true;
      out->fleet_metrics_path = arg.substr(16);
      if (out->fleet_metrics_path.empty()) {
        *err = "empty --fleet-metrics= path";
        return false;
      }
    } else if (arg == "--taskstats") {
      out->taskstats = true;
      out->metrics = true;
    } else if (arg.rfind("--taskstats=", 0) == 0) {
      out->taskstats = true;
      out->metrics = true;
      out->taskstats_path = arg.substr(12);
      if (out->taskstats_path.empty()) {
        *err = "empty --taskstats= path";
        return false;
      }
    } else if (arg.rfind("--progress=", 0) == 0) {
      out->progress = arg.substr(11);
      if (out->progress != "none" && out->progress != "line" &&
          out->progress != "jsonl") {
        *err = "--progress must be 'none', 'line', or 'jsonl' (got '" +
               out->progress + "')";
        return false;
      }
    } else if (arg.rfind("--metrics-format=", 0) == 0) {
      out->metrics_format = arg.substr(17);
      if (out->metrics_format != "json" && out->metrics_format != "csv" &&
          out->metrics_format != "report") {
        *err = "--metrics-format must be 'json', 'csv', or 'report' (got '" +
               out->metrics_format + "')";
        return false;
      }
    } else {
      *err = "unknown flag '" + arg + "'";
      return false;
    }
  }
  return true;
}

Cli Cli::parse(int argc, char** argv, const CliSpec& spec) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--help") {
      std::fputs(usage(spec).c_str(), stdout);
      std::exit(0);
    }
  }
  Cli cli;
  std::string err;
  if (!parse_into(argc, argv, spec, &cli, &err)) {
    std::fprintf(stderr, "%s: error: %s\n\n%s", spec.id.c_str(), err.c_str(),
                 usage(spec).c_str());
    std::exit(2);
  }
  return cli;
}

}  // namespace eo::exp
