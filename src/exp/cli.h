// Uniform command line for the bench binaries.
//
//   <bench> [scale] [--json=<path>] [--jobs=N] [--filter=<substr>] [--list]
//           [--seed=N] [--sched=cfs|fifo|rr|pcfs] [--trace=<path>]
//           [--trace-format=json|csv] [--trace-only] [--metrics[=<path>]]
//           [--metrics-interval=<us>] [--metrics-format=json|csv|report]
//           [--taskstats[=<path>]] [--help]
//
// The positional `scale` multiplies the simulated work (rounds, requests);
// it must be a plain positive number — `0.5x` or `abc` are errors, not
// silently coerced. Every argument error prints the usage text to stderr and
// exits with status 2; `--help` prints it to stdout and exits 0.
#pragma once

#include <cstdint>
#include <string>

#include "exp/runner.h"

namespace eo::exp {

/// Static description of one bench binary.
struct CliSpec {
  /// Bench id, e.g. "fig09_vb_blocking" (names the JSON document).
  std::string id;
  /// One-line description shown in the usage text.
  std::string summary;
  double default_scale = 1.0;
  std::uint64_t default_seed = 7;
  /// Whether the bench accepts the --trace* flags.
  bool supports_trace = false;
  /// Whether the bench accepts the --fleet-metrics flag (benches that run a
  /// traffic::ConnectionFleet and can emit an eo-metrics-fleet document).
  bool supports_fleet = false;
};

class Cli {
 public:
  double scale = 1.0;
  std::uint64_t seed = 7;
  /// Host threads for the sweep fan-out (0 = hardware_concurrency).
  std::size_t jobs = 0;
  /// Destination for the machine-readable result document; empty = off.
  std::string json_path;
  /// Substring filter on cell ids; empty runs everything.
  std::string filter;
  /// Print the cell ids and exit without running.
  bool list = false;
  /// Scheduler policy plugin for every simulated kernel the bench builds
  /// (one of sched::policy_names()).
  std::string sched = "cfs";
  std::string trace_path;  ///< empty = tracing off
  std::string trace_format = "json";
  bool trace_only = false;
  /// Live telemetry (src/obs): --metrics enables per-cell sampling;
  /// --metrics=<path> additionally exports one representative full document.
  bool metrics = false;
  std::string metrics_path;  ///< empty = no standalone export
  std::uint64_t metrics_interval_us = 1000;
  std::string metrics_format = "json";
  /// Live progress feed: "line" (human stderr lines, the default), "jsonl"
  /// (one JSON event per line, machine-readable), or "none".
  std::string progress = "line";
  /// Fleet observability (--fleet-metrics, benches with supports_fleet):
  /// retain every host's telemetry and merge it into one eo-metrics-fleet
  /// document; with a path, export the merged document there. Implies
  /// --metrics.
  bool fleet_metrics = false;
  std::string fleet_metrics_path;  ///< empty = no standalone export
  /// Per-task delay accounting (--taskstats): embed the `eo-taskstats`
  /// section in every exported metrics document; with a path, additionally
  /// export a folded-stack state flamegraph there. Implies --metrics.
  bool taskstats = false;
  std::string taskstats_path;  ///< empty = no folded-stack export

  bool tracing() const { return !trace_path.empty(); }

  /// The sink for `--progress` ("none" returns null). Each call builds a
  /// fresh sink; benches that feed both the runner and a fleet should call
  /// once and share it.
  std::shared_ptr<obs::ProgressSink> progress_sink() const;

  /// Runner options carrying jobs/filter plus the progress configuration:
  /// "line" keeps the runner's own stderr lines, "jsonl" attaches a JSONL
  /// sink, "none" silences the feed.
  RunnerOptions runner_options() const;

  /// Usage text for the spec (the --help / error output).
  static std::string usage(const CliSpec& spec);

  /// Parses into `out`; returns false with a reason in `err` on any argument
  /// error. Does not print or exit (the testable core of `parse`).
  static bool parse_into(int argc, char** argv, const CliSpec& spec, Cli* out,
                         std::string* err);

  /// Parses or dies: argument errors print the reason + usage to stderr and
  /// exit 2; `--help` prints usage to stdout and exits 0.
  static Cli parse(int argc, char** argv, const CliSpec& spec);
};

}  // namespace eo::exp
